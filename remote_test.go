package power5prio

import (
	"net/http/httptest"
	"testing"

	"power5prio/internal/remote"
)

// TestWithRemoteWorkers: a System sharding its measurements across two
// workers returns bit-identical results to a local System, and the
// batch stats account the remote traffic.
func TestWithRemoteWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("chip-level simulation")
	}
	w1 := httptest.NewServer(remote.NewServer(remote.ServerConfig{Workers: 2}).Handler())
	defer w1.Close()
	w2 := httptest.NewServer(remote.NewServer(remote.ServerConfig{Workers: 2}).Handler())
	defer w2.Close()

	opts := DefaultMeasureOptions()
	opts.MinReps = 2
	opts.WarmupReps = 0
	specs := []Spec{
		{A: "cpu_int"},
		{A: "cpu_int", B: "ldint_l1", PA: High, PB: Low},
		{A: "cpu_int", B: "mcf", PA: Medium, PB: Medium},
		{A: "ldint_l1", B: "cpu_int", PA: Low, PB: VeryHigh},
		{A: "cpu_int", B: "ldint_l1", PA: High, PB: Low}, // duplicate
	}

	local := New(DefaultConfig(), WithMeasureOptions(opts))
	want, err := local.MeasureBatch(nil, specs)
	if err != nil {
		t.Fatal(err)
	}

	sys := New(DefaultConfig(), WithMeasureOptions(opts), WithRemoteWorkers(w1.URL, w2.URL))
	got, err := sys.MeasureBatch(nil, specs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range specs {
		if got[i] != want[i] {
			t.Errorf("spec %v: remote result differs from local\nremote %+v\nlocal  %+v", specs[i], got[i], want[i])
		}
	}
	st := sys.BatchStats()
	if st.Remote.Jobs != 4 {
		t.Errorf("Remote.Jobs = %d, want 4 unique measurements", st.Remote.Jobs)
	}
	if st.Remote.WorkerErrors != 0 || st.Remote.Retries != 0 {
		t.Errorf("healthy fleet reported failures: %+v", st.Remote)
	}

	// WithBackend accepts the same fleet explicitly (upfront health
	// check included).
	backend := remote.New(w1.URL, w2.URL)
	if err := backend.Healthy(nil); err != nil {
		t.Fatal(err)
	}
	sys2 := New(DefaultConfig(), WithMeasureOptions(opts), WithBackend(backend))
	got2, err := sys2.MeasureBatch(nil, specs[:2])
	if err != nil {
		t.Fatal(err)
	}
	for i := range got2 {
		if got2[i] != want[i] {
			t.Errorf("WithBackend spec %v diverged", specs[i])
		}
	}
}
