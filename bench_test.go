// Benchmarks regenerating each of the paper's tables and figures at
// reduced fidelity, plus the ablation studies DESIGN.md calls out. Each
// benchmark reports domain metrics (simulated cycles per second, headline
// result values) alongside the usual time/op.
//
// The full-fidelity regeneration lives in cmd/p5exp; these benches keep
// the harness honest and measure simulator performance.
package power5prio

import (
	"context"
	"testing"

	"power5prio/internal/apps"
	"power5prio/internal/balance"
	"power5prio/internal/core"
	"power5prio/internal/experiments"
	"power5prio/internal/fame"
	"power5prio/internal/isa"
	"power5prio/internal/microbench"
	"power5prio/internal/oskernel"
	"power5prio/internal/prio"
	"power5prio/internal/spec"
	"power5prio/internal/tuner"
)

// benchHarness is sized so each regeneration iteration is meaningful but
// brief.
func benchHarness() experiments.Harness {
	h := experiments.Quick()
	h.IterScale = 0.1
	return h
}

// BenchmarkTable1Allocator measures the decode-slot allocator itself: the
// paper's core mechanism, at sub-nanosecond cost per cycle.
func BenchmarkTable1Allocator(b *testing.B) {
	a := prio.NewAllocator(prio.High, prio.Low)
	n := 0
	for i := 0; i < b.N; i++ {
		g := a.Next()
		if !g.None && g.Thread == 0 {
			n++
		}
	}
	if n == 0 && b.N > 64 {
		b.Fatal("allocator never granted thread 0")
	}
}

// BenchmarkTable3 regenerates the ST + SMT(4,4) matrix.
func BenchmarkTable3(b *testing.B) {
	h := benchHarness()
	for i := 0; i < b.N; i++ {
		r, err := experiments.Table3(context.Background(), h)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Matrix.SingleIPC[microbench.LdIntL1], "ldint_l1_ST_IPC")
	}
}

// BenchmarkFig2 regenerates the positive-priority speedup curves for one
// representative primary (cpu_int), reporting its +2 speedup vs cpu_int.
func BenchmarkFig2(b *testing.B) {
	h := benchHarness()
	names := []string{microbench.CPUInt, microbench.LdIntMem}
	for i := 0; i < b.N; i++ {
		m, err := experiments.RunMatrix(context.Background(), h, names, names, []int{0, 2})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(m.RelPrimary(microbench.CPUInt, microbench.CPUInt, 2), "cpu_int_rel_at_+2")
	}
}

// BenchmarkFig3 regenerates the negative-priority degradation point the
// paper headlines (cpu_int at -5 vs a memory thread).
func BenchmarkFig3(b *testing.B) {
	h := benchHarness()
	for i := 0; i < b.N; i++ {
		m, err := experiments.RunMatrix(context.Background(), h,
			[]string{microbench.CPUInt}, []string{microbench.LdIntMem}, []int{0, -5})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(1/m.RelPrimary(microbench.CPUInt, microbench.LdIntMem, -5), "slowdown_at_-5")
	}
}

// BenchmarkFig4 regenerates the throughput-vs-difference curve for the
// high-IPC/memory pair.
func BenchmarkFig4(b *testing.B) {
	h := benchHarness()
	for i := 0; i < b.N; i++ {
		m, err := experiments.RunMatrix(context.Background(), h,
			[]string{microbench.LdIntL1}, []string{microbench.LdIntMem}, []int{0, 4})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(m.RelTotal(microbench.LdIntL1, microbench.LdIntMem, 4), "total_rel_at_+4")
	}
}

// BenchmarkFig5a regenerates the h264ref+mcf throughput case study.
func BenchmarkFig5a(b *testing.B) {
	h := benchHarness()
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig5a(context.Background(), h)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.PeakGain*100, "peak_gain_%")
	}
}

// BenchmarkFig5b regenerates the applu+equake throughput case study.
func BenchmarkFig5b(b *testing.B) {
	h := benchHarness()
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig5b(context.Background(), h)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.PeakGain*100, "peak_gain_%")
	}
}

// BenchmarkTable4 regenerates the FFT/LU pipeline table.
func BenchmarkTable4(b *testing.B) {
	h := benchHarness()
	h.IterScale = 0.15
	for i := 0; i < b.N; i++ {
		r, err := experiments.Table4(context.Background(), h)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.BestGain*100, "best_gain_%")
	}
}

// BenchmarkFig6 regenerates the transparency measurement for one
// foreground/background pair at (6,1).
func BenchmarkFig6(b *testing.B) {
	h := benchHarness()
	for i := 0; i < b.N; i++ {
		st, err := h.RunSingle(context.Background(), microbench.CPUFP)
		if err != nil {
			b.Fatal(err)
		}
		res, err := h.RunPairLevels(context.Background(), microbench.CPUFP, microbench.CPUInt, prio.High, prio.VeryLow)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(st.IPC/res.Thread[0].IPC, "fg_time_rel_ST")
	}
}

// BenchmarkSimulatorThroughput measures raw simulation speed: simulated
// cycles per wall second for a busy SMT pair.
func BenchmarkSimulatorThroughput(b *testing.B) {
	k, err := microbench.BuildWith(microbench.CPUInt, microbench.Params{Iters: 64})
	if err != nil {
		b.Fatal(err)
	}
	ch := core.NewChip(core.DefaultConfig())
	ch.PlacePair(k, k, prio.Medium, prio.Medium, prio.User)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ch.Step()
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "sim_cycles/s")
}

// BenchmarkAblationBalance compares balancing modes on the pathological
// pair (experiment X1): the clean thread's IPC with the memory thread
// balanced by Flush vs not at all.
func BenchmarkAblationBalance(b *testing.B) {
	for _, mode := range []balance.Mode{balance.Off, balance.Stall, balance.Flush} {
		b.Run(mode.String(), func(b *testing.B) {
			h := benchHarness()
			h.Chip.Pipe.Balance.Mode = mode
			for i := 0; i < b.N; i++ {
				res, err := h.RunPairLevels(context.Background(), microbench.CPUInt, microbench.LdIntMem, prio.Medium, prio.Medium)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(res.Thread[0].IPC, "cpu_int_IPC")
			}
		})
	}
}

// BenchmarkAblationMemChannels varies DRAM concurrency (experiment X2):
// with more channels the memory-pair collapse weakens.
func BenchmarkAblationMemChannels(b *testing.B) {
	for _, ch := range []int{1, 2, 4} {
		b.Run(map[int]string{1: "1ch", 2: "2ch", 4: "4ch"}[ch], func(b *testing.B) {
			h := benchHarness()
			h.Chip.Mem.MemChannels = ch
			for i := 0; i < b.N; i++ {
				res, err := h.RunPairLevels(context.Background(), microbench.LdIntMem, microbench.LdIntMem, prio.Medium, prio.Medium)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(res.TotalIPC, "mem_pair_total_IPC")
			}
		})
	}
}

// BenchmarkAblationMLP contrasts chase (MLP~1) and strided (LMQ-limited)
// memory access under the same footprint (experiment X3).
func BenchmarkAblationMLP(b *testing.B) {
	build := func(kind isa.StreamKind) *isa.Kernel {
		kb := isa.NewBuilder("mlp")
		v := kb.Reg("v")
		iter := kb.Reg("iter")
		one := kb.Reg("one")
		s := kb.Stream(isa.StreamSpec{Kind: kind, Footprint: 64 << 20, Stride: 4224, Seed: 9})
		kb.Load(v, s, isa.Reg(-1))
		kb.Op2(isa.OpIntAdd, iter, iter, one)
		kb.Branch(isa.BranchLoop, iter)
		return kb.MustBuild(32)
	}
	for _, tc := range []struct {
		name string
		kind isa.StreamKind
	}{{"chase", isa.StreamChase}, {"stride", isa.StreamStride}} {
		b.Run(tc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ch := core.NewChip(core.DefaultConfig())
				ch.PlacePair(build(tc.kind), nil, prio.Medium, prio.Medium, prio.User)
				res := fame.Measure(ch, fame.Options{MinReps: 3, WarmupReps: 1, MaxCycles: 40_000_000})
				b.ReportMetric(res.Thread[0].IPC, "IPC")
			}
		})
	}
}

// BenchmarkTuner measures the auto-tuner finding the best difference for a
// throughput-skewed pair (experiment X4).
func BenchmarkTuner(b *testing.B) {
	h := benchHarness()
	for i := 0; i < b.N; i++ {
		r, err := tuner.TunePair(context.Background(), h, microbench.LdIntL1, microbench.LdIntMem)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(r.BestDiff), "best_diff")
		b.ReportMetric(float64(r.Evals), "evals")
	}
}

// BenchmarkKernelPatch quantifies the stock kernel's erosion of a
// prioritized configuration (experiment X5).
func BenchmarkKernelPatch(b *testing.B) {
	run := func(patched bool) float64 {
		k, err := microbench.BuildWith(microbench.CPUInt, microbench.Params{Iters: 24})
		if err != nil {
			b.Fatal(err)
		}
		ch := core.NewChip(core.DefaultConfig())
		ch.PlacePair(k, k, prio.High, prio.Low, prio.Supervisor)
		os := oskernel.New(ch, oskernel.Config{Patched: patched, TickCycles: 2000, HandlerCycles: 20})
		res := fame.Measure(os, fame.Options{MinReps: 3, WarmupReps: 1, MaxCycles: 40_000_000})
		return res.Thread[0].IPC
	}
	for _, tc := range []struct {
		name    string
		patched bool
	}{{"patched", true}, {"stock", false}} {
		b.Run(tc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.ReportMetric(run(tc.patched), "prioritized_IPC")
			}
		})
	}
}

// BenchmarkSpecWorkloads measures each synthetic SPEC workload alone, as a
// calibration reference.
func BenchmarkSpecWorkloads(b *testing.B) {
	for _, name := range spec.Names() {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				k, err := spec.BuildWith(name, spec.Params{IterScale: 0.15})
				if err != nil {
					b.Fatal(err)
				}
				ch := core.NewChip(core.DefaultConfig())
				ch.PlacePair(k, nil, prio.Medium, prio.Medium, prio.Supervisor)
				res := fame.Measure(ch, fame.Options{MinReps: 3, WarmupReps: 1, MaxCycles: 60_000_000})
				b.ReportMetric(res.Thread[0].IPC, "ST_IPC")
			}
		})
	}
}

// BenchmarkPipelineApp measures one FFT/LU pipeline iteration cycle.
func BenchmarkPipelineApp(b *testing.B) {
	cfg := apps.DefaultConfig()
	cfg.Scale = 0.15
	for i := 0; i < b.N; i++ {
		res, err := apps.Run(cfg, prio.MediumHigh, prio.Medium)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Mean.Iter, "iter_cycles")
	}
}
