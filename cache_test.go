package power5prio

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestWithCacheDirWarmSystem: two Systems sharing a cache directory —
// the public face of the persistent tier. The second System must serve
// every measurement from disk without simulating, with identical
// results, including a content-fingerprinted custom kernel.
func TestWithCacheDirWarmSystem(t *testing.T) {
	dir := t.TempDir()
	specs := []Spec{
		{A: "cpu_int"},
		{A: "cpu_int", B: "ldint_l1", PA: High, PB: Low},
		{A: "cpu_int", B: "tiny_custom", PA: Medium, PB: Medium},
	}
	tiny := func() *Kernel {
		b := NewKernelBuilder("tiny_custom")
		it, one := b.Reg("it"), b.Reg("one")
		b.Op2(OpIntAdd, it, it, one)
		b.Branch(BranchLoop, it)
		k, err := b.Build(16)
		if err != nil {
			t.Fatal(err)
		}
		return k
	}

	run := func() ([]PairResult, BatchStats) {
		sys := batchSystem(WithCacheDir(dir), WithWorkers(2))
		if sys.Cache() == nil {
			t.Fatal("WithCacheDir left the System without a cache")
		}
		if err := sys.RegisterWorkload(tiny()); err != nil {
			t.Fatal(err)
		}
		res, err := sys.MeasureBatch(nil, specs)
		if err != nil {
			t.Fatal(err)
		}
		return res, sys.BatchStats()
	}

	coldRes, cold := run()
	if cold.Simulated != len(specs) || cold.DiskWrites != len(specs) {
		t.Fatalf("cold stats %+v: want %d simulated and persisted", cold, len(specs))
	}

	warmRes, warm := run()
	if warm.Simulated != 0 || warm.DiskMisses != 0 || warm.DiskHits != len(specs) {
		t.Errorf("warm stats %+v: want all %d measurements from disk", warm, len(specs))
	}
	for i := range specs {
		if warmRes[i] != coldRes[i] {
			t.Errorf("spec %d (%s): warm result differs from cold", i, specs[i])
		}
	}
}

// TestWithCacheSharedStore: an explicitly opened Cache attached with
// WithCache behaves like WithCacheDir and is inspectable.
func TestWithCacheSharedStore(t *testing.T) {
	c, err := OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	sys := batchSystem(WithCache(c))
	if sys.Cache() != c {
		t.Fatal("Cache() does not return the attached store")
	}
	if _, err := sys.Measure(nil, Spec{A: "cpu_int"}); err != nil {
		t.Fatal(err)
	}
	info, err := c.Info()
	if err != nil || info.Entries != 1 {
		t.Fatalf("cache info = %+v, %v; want 1 entry", info, err)
	}
}

// TestWithCacheDirOpenFailure: a System whose requested cache directory
// cannot be opened must fail measurements loudly, not run uncached.
func TestWithCacheDirOpenFailure(t *testing.T) {
	file := filepath.Join(t.TempDir(), "not-a-dir")
	if err := os.WriteFile(file, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	sys := batchSystem(WithCacheDir(file))
	_, err := sys.Measure(nil, Spec{A: "cpu_int"})
	if err == nil {
		t.Fatal("measurement succeeded despite unopenable cache dir")
	}
	if !strings.Contains(err.Error(), "cache dir") {
		t.Errorf("error does not identify the cache dir: %v", err)
	}
	if _, err := sys.MeasureMatrix(nil, []string{"cpu_int"}, []string{"ldint_l1"}, []int{0}); err == nil {
		t.Error("MeasureMatrix succeeded despite unopenable cache dir")
	}
}
