package main

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"runtime"
	"time"

	"power5prio/internal/analytic"
	"power5prio/internal/engine"
	"power5prio/internal/experiments"
	"power5prio/internal/prio"
)

// The estimator section benchmarks the tier-0 analytical model against
// the simulator over the calibration matrix and writes its own document
// (BENCH_estimator.json by convention, committed at the repo root). It
// always runs at the golden quick fidelity — the parameters the residual
// bounds in internal/analytic were measured at — so the numbers are
// comparable across -quick and full p5bench runs and against the
// committed calib.json golden.

// EstimatorReport is the emitted document. Field names are stable:
// downstream tooling diffs reports across commits.
type EstimatorReport struct {
	Schema  int    `json:"schema"`
	GoOS    string `json:"go_os"`
	GoArch  string `json:"go_arch"`
	CPUs    int    `json:"cpus"`
	Workers int    `json:"workers"`

	Workloads []string `json:"workloads"`
	Diffs     []int    `json:"diffs"`
	Cells     int      `json:"cells"`

	// CalibrationSeconds is the one-time cost of the model's lazy
	// calibration: the single-thread feature runs plus the first full
	// matrix of predictions.
	CalibrationSeconds float64 `json:"calibration_seconds"`
	// EstimateSeconds is one full matrix pass on the calibrated model —
	// the steady-state cost of answering every cell from tier 0.
	EstimateSeconds   float64 `json:"estimate_seconds"`
	PerEstimateMicros float64 `json:"per_estimate_micros"`
	// SimulateSeconds is the simulator answering the same cells cold.
	SimulateSeconds float64 `json:"simulate_seconds"`
	// Speedup is SimulateSeconds / EstimateSeconds: how much faster the
	// calibrated model answers the whole matrix than the simulator.
	Speedup float64 `json:"speedup"`

	MaxAbsResidual  float64 `json:"max_abs_residual"`
	MeanAbsResidual float64 `json:"mean_abs_residual"`
	// Tolerance is the committed calibration bound
	// (analytic.DefaultTolerance); MaxAbsResidual must stay within it.
	Tolerance       float64 `json:"tolerance"`
	WithinTolerance bool    `json:"within_tolerance"`
	// BoundViolations counts cells whose residual escaped the error bar
	// their own prediction promised (0 on a healthy model).
	BoundViolations int `json:"bound_violations"`
}

// minEstimatorSpeedup is the interactive-latency contract: the
// calibrated model must answer the matrix at least this much faster
// than the simulator, or the estimator section fails the run.
const minEstimatorSpeedup = 100.0

// estimatorSection measures the tier-0 model against the simulator over
// the calibration matrix and exits non-zero when the model misses its
// accuracy or speed contract.
func estimatorSection(workers int) EstimatorReport {
	ctx := context.Background()
	h := experiments.Quick()
	names := experiments.CalibWorkloads()
	diffs := experiments.CalibDiffs()

	// Jobs are built once and shared by both sides, so the model and the
	// simulator answer the identical question set.
	eng := engine.New(workers)
	var jobs []engine.Job
	for _, p := range names {
		for _, s := range names {
			for _, d := range diffs {
				pp, ps := experiments.DiffPair(d)
				refP, err := eng.Registry().Resolve(p)
				if err != nil {
					panic(err)
				}
				refS, err := eng.Registry().Resolve(s)
				if err != nil {
					panic(err)
				}
				jobs = append(jobs, engine.Pair(refP, refS, pp, ps, prio.Supervisor, h.IterScale, h.Chip, h.Fame))
			}
		}
	}

	rep := EstimatorReport{
		Schema:    1,
		GoOS:      runtime.GOOS,
		GoArch:    runtime.GOARCH,
		CPUs:      runtime.NumCPU(),
		Workers:   workers,
		Workloads: names,
		Diffs:     diffs,
		Cells:     len(jobs),
		Tolerance: analytic.DefaultTolerance(),
	}

	// Calibration: a fresh model's first pass over the matrix pays for
	// the single-thread feature runs (on the model's own engine, so the
	// ground-truth side below stays cold).
	model := analytic.New(engine.New(workers))
	estimates := make([]engine.Estimate, len(jobs))
	start := time.Now()
	for i, j := range jobs {
		ev, ok := model.EstimateJob(j)
		if !ok {
			fmt.Fprintf(os.Stderr, "p5bench: estimator declined in-domain job %d (%s+%s)\n", i, j.Primary, j.Secondary)
			os.Exit(1)
		}
		estimates[i] = ev
	}
	rep.CalibrationSeconds = time.Since(start).Seconds()

	// Steady state: repeat full passes on the now-calibrated model until
	// enough wall time accumulates to time reliably (a pass is a few
	// hundred microseconds).
	const (
		minEstimateSeconds = 0.1
		estimateRepCap     = 4096
	)
	var total float64
	reps := 0
	for total < minEstimateSeconds && reps < estimateRepCap {
		start = time.Now()
		for _, j := range jobs {
			if _, ok := model.EstimateJob(j); !ok {
				panic("p5bench: calibrated estimator declined a job it served before")
			}
		}
		total += time.Since(start).Seconds()
		reps++
	}
	rep.EstimateSeconds = total / float64(reps)
	rep.PerEstimateMicros = rep.EstimateSeconds / float64(len(jobs)) * 1e6

	// Ground truth: the simulator answers the same cells on a cold
	// engine (memoization still dedups repeated cells within the batch,
	// exactly as a real sweep would).
	start = time.Now()
	results := eng.Run(ctx, jobs)
	rep.SimulateSeconds = time.Since(start).Seconds()
	rep.Speedup = rep.SimulateSeconds / rep.EstimateSeconds

	var sum float64
	for i, r := range results {
		if r.Err != nil {
			fmt.Fprintf(os.Stderr, "p5bench: estimator ground truth job %d: %v\n", i, r.Err)
			os.Exit(1)
		}
		rp := estimates[i].Pair.Thread[0].IPC - r.Pair.Thread[0].IPC
		rs := estimates[i].Pair.Thread[1].IPC - r.Pair.Thread[1].IPC
		worst := math.Max(math.Abs(rp), math.Abs(rs))
		sum += math.Abs(rp) + math.Abs(rs)
		if worst > rep.MaxAbsResidual {
			rep.MaxAbsResidual = worst
		}
		if worst > estimates[i].ErrorBar {
			rep.BoundViolations++
		}
	}
	rep.MeanAbsResidual = sum / float64(2*len(results))
	rep.WithinTolerance = rep.MaxAbsResidual <= rep.Tolerance

	fmt.Fprintf(os.Stderr, "p5bench: estimator %d cells: calib %.2fs, then %.0fµs/answer vs sim %.2fs — %.0fx; max residual %.4f (tolerance %.2f)\n",
		rep.Cells, rep.CalibrationSeconds, rep.PerEstimateMicros, rep.SimulateSeconds, rep.Speedup, rep.MaxAbsResidual, rep.Tolerance)
	if !rep.WithinTolerance || rep.BoundViolations > 0 {
		fmt.Fprintf(os.Stderr, "p5bench: FATAL: estimator accuracy contract broken (max residual %.4f, tolerance %.2f, %d bound violations)\n",
			rep.MaxAbsResidual, rep.Tolerance, rep.BoundViolations)
		os.Exit(1)
	}
	if rep.Speedup < minEstimatorSpeedup {
		fmt.Fprintf(os.Stderr, "p5bench: FATAL: estimator speedup %.0fx below the %.0fx interactive-latency contract\n",
			rep.Speedup, minEstimatorSpeedup)
		os.Exit(1)
	}
	return rep
}

// writeEstimatorReport emits the document.
func writeEstimatorReport(rep EstimatorReport, path string) {
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "p5bench:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintln(os.Stderr, "p5bench:", err)
		os.Exit(1)
	}
	if err := f.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "p5bench:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "p5bench: wrote %s\n", path)
}

// loadEstimatorReport reads a previously emitted estimator document.
func loadEstimatorReport(path string) (EstimatorReport, error) {
	var rep EstimatorReport
	data, err := os.ReadFile(path)
	if err != nil {
		return rep, err
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		return rep, fmt.Errorf("%s: %w", path, err)
	}
	return rep, nil
}

// compareEstimatorReports checks cur against a committed baseline and
// returns one message per failed check. Speedup is a same-host ratio
// (model vs simulator wall time), so it transfers across machines; a
// fall below half the baseline's speedup means the model's answer path
// got an order of magnitude slower relative to the simulator — e.g. a
// per-call recalibration snuck in — and fails the gate. Accuracy is
// gated against the baseline's committed tolerance, so a baseline from
// before a tolerance loosening still protects it.
func compareEstimatorReports(cur, base EstimatorReport) []string {
	var failures []string
	if cur.MaxAbsResidual > base.Tolerance {
		failures = append(failures, fmt.Sprintf(
			"estimator: max residual %.4f exceeds the baseline tolerance %.2f", cur.MaxAbsResidual, base.Tolerance))
	}
	if base.Speedup > 0 && cur.Speedup < base.Speedup/2 {
		failures = append(failures, fmt.Sprintf(
			"estimator: speedup fell to %.0fx from the baseline's %.0fx (more than half lost)", cur.Speedup, base.Speedup))
	}
	fmt.Fprintf(os.Stderr, "p5bench: compare estimator: speedup %.0fx vs baseline %.0fx, max residual %.4f vs %.4f\n",
		cur.Speedup, base.Speedup, cur.MaxAbsResidual, base.MaxAbsResidual)
	return failures
}
