// Command p5bench measures simulator performance and writes a JSON
// report (BENCH_simulator.json by convention, committed at the repo
// root) so the performance trajectory is tracked from PR to PR:
//
//   - raw pipeline throughput (simulated cycles per wall second for a
//     busy SMT pair, stepping cycle by cycle);
//   - FAME measurement wall times for the paper's memory-bound regimes,
//     with the idle-cycle fast-forward on and off, and the resulting
//     speedup (results are bit-identical either way — the report
//     asserts it);
//   - quick-mode regeneration wall time per experiment;
//   - the tier-0 estimator section (a second document,
//     BENCH_estimator.json by convention): the analytical model vs the
//     simulator over the calibration matrix — per-answer latency,
//     speedup, and residuals against the committed tolerance. It gates
//     itself: a model that breaks its accuracy bound or falls below the
//     100x interactive-latency contract fails the run.
//
// Usage:
//
//	p5bench                      # full report to BENCH_simulator.json
//	p5bench -quick -out /tmp/b.json   # CI smoke (seconds, not minutes)
//	p5bench -quick -compare BENCH_simulator_quick.json   # regression gate
//	p5bench -estimator-compare BENCH_estimator.json      # estimator gate
//
// With -compare, the fresh report is checked against a baseline report:
// the run exits non-zero if any measurement lost result identity, or if
// its fast-forward throughput — normalized by each report's own raw
// step throughput, so runs on different machines stay comparable —
// regressed by more than 20% against the baseline. The baseline must
// have the same -quick setting as the fresh run: speedups depend on
// run length, so two committed baselines exist (full for the PR-over-PR
// trajectory, quick for the CI gate) and make bench refreshes both.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"reflect"
	"runtime"
	"time"

	"power5prio/internal/cachestore"
	"power5prio/internal/cmdutil"
	"power5prio/internal/core"
	"power5prio/internal/engine"
	"power5prio/internal/experiments"
	"power5prio/internal/fame"
	"power5prio/internal/isa"
	"power5prio/internal/microbench"
	"power5prio/internal/prio"
)

// Report is the emitted document. Field names are stable: downstream
// tooling diffs reports across commits.
type Report struct {
	Schema  int    `json:"schema"`
	GoOS    string `json:"go_os"`
	GoArch  string `json:"go_arch"`
	CPUs    int    `json:"cpus"`
	Quick   bool   `json:"quick"`
	Workers int    `json:"workers"`

	StepThroughput StepThroughput `json:"step_throughput"`
	Measurements   []Measurement  `json:"measurements"`
	Regeneration   []Regeneration `json:"regeneration"`
}

// StepThroughput is the raw per-cycle cost of the pipeline model.
type StepThroughput struct {
	Cycles          uint64  `json:"cycles"`
	Seconds         float64 `json:"seconds"`
	SimCyclesPerSec float64 `json:"sim_cycles_per_sec"`
}

// Measurement is one FAME measurement A/B-timed with the fast-forward
// on and off.
type Measurement struct {
	Name            string  `json:"name"`
	SimCycles       uint64  `json:"sim_cycles"`
	FastSeconds     float64 `json:"fastforward_seconds"`
	SteppedSeconds  float64 `json:"stepped_seconds"`
	Speedup         float64 `json:"speedup"`
	FastCyclesPerS  float64 `json:"fastforward_sim_cycles_per_sec"`
	ResultIdentical bool    `json:"result_identical"`
}

// Regeneration is the wall time of one quick-mode experiment.
type Regeneration struct {
	Name    string  `json:"name"`
	Seconds float64 `json:"seconds"`
}

func main() {
	var (
		out     = flag.String("out", "BENCH_simulator.json", "output file")
		quick   = flag.Bool("quick", false, "reduced scale for CI smoke runs")
		workers = flag.Int("workers", 1, "regeneration worker pool size (1 keeps timings comparable)")
		compare = flag.String("compare", "", "baseline report; exit non-zero on lost result identity or >20% normalized throughput regression")
		estOut  = flag.String("estimator-out", "BENCH_estimator.json", "tier-0 estimator report output file (empty skips the estimator section)")
		estCmp  = flag.String("estimator-compare", "", "estimator baseline report; exit non-zero on accuracy or speedup regression")
		common  = cmdutil.AddCommonFlags("p5bench", flag.CommandLine)
	)
	flag.Parse()
	// The shared flags apply to the regeneration phase: -fastforward
	// sets its mode (the A/B measurements toggle it explicitly either
	// way), and -cache-dir times warm-cache regeneration instead of
	// cold simulation.
	store := common.Init()
	defer common.StartProfiles()()

	rep := Report{
		Schema:  1,
		GoOS:    runtime.GOOS,
		GoArch:  runtime.GOARCH,
		CPUs:    runtime.NumCPU(),
		Quick:   *quick,
		Workers: *workers,
	}

	// The step throughput normalizes every -compare ratio, so even the
	// quick run gives it a few hundred milliseconds of simulation.
	stepCycles := uint64(4_000_000)
	if *quick {
		stepCycles = 1_200_000
	}
	rep.StepThroughput = stepThroughput(stepCycles)
	fmt.Fprintf(os.Stderr, "p5bench: step throughput %.0f sim_cycles/s\n", rep.StepThroughput.SimCyclesPerSec)

	iters := 48
	if *quick {
		iters = 12
	}
	micro := func(name string) func() *isa.Kernel {
		return func() *isa.Kernel {
			k, err := microbench.BuildWith(name, microbench.Params{Iters: iters})
			if err != nil {
				panic(err)
			}
			return k
		}
	}
	for _, m := range []struct {
		name   string
		a, b   func() *isa.Kernel
		pa, pb prio.Level
	}{
		{"fig3_cpu_int_vs_ldint_mem_diff-5", micro(microbench.CPUInt), micro(microbench.LdIntMem), prio.VeryLow, prio.High},
		{"mem_pair_ldint_mem_4_4", micro(microbench.LdIntMem), micro(microbench.LdIntMem), prio.Medium, prio.Medium},
		{"mlp_chase_single", chaseKernel, nil, prio.Medium, prio.Medium},
	} {
		mm := measureAB(m.name, m.a, m.b, m.pa, m.pb)
		rep.Measurements = append(rep.Measurements, mm)
		fmt.Fprintf(os.Stderr, "p5bench: %-34s %6.2fx speedup (%.3fs -> %.3fs, identical=%v)\n",
			mm.Name, mm.Speedup, mm.SteppedSeconds, mm.FastSeconds, mm.ResultIdentical)
		if !mm.ResultIdentical {
			fmt.Fprintln(os.Stderr, "p5bench: FATAL: fast-forward changed a result")
			os.Exit(1)
		}
	}

	rep.Regeneration = regeneration(*quick, *workers, store)
	for _, r := range rep.Regeneration {
		fmt.Fprintf(os.Stderr, "p5bench: regen %-8s %.2fs\n", r.Name, r.Seconds)
	}

	f, err := os.Create(*out)
	if err != nil {
		fmt.Fprintln(os.Stderr, "p5bench:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintln(os.Stderr, "p5bench:", err)
		os.Exit(1)
	}
	if err := f.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "p5bench:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "p5bench: wrote %s\n", *out)

	// The tier-0 estimator section is its own document: it always runs
	// at the golden quick fidelity (where the residual bounds were
	// measured), so one committed BENCH_estimator.json serves both the
	// full and the quick simulator baselines.
	if *estOut != "" || *estCmp != "" {
		estRep := estimatorSection(*workers)
		if *estOut != "" {
			writeEstimatorReport(estRep, *estOut)
		}
		if *estCmp != "" {
			base, err := loadEstimatorReport(*estCmp)
			if err != nil {
				fmt.Fprintln(os.Stderr, "p5bench:", err)
				os.Exit(1)
			}
			failures := compareEstimatorReports(estRep, base)
			for _, f := range failures {
				fmt.Fprintf(os.Stderr, "p5bench: REGRESSION: %s\n", f)
			}
			if len(failures) > 0 {
				os.Exit(1)
			}
			fmt.Fprintf(os.Stderr, "p5bench: estimator: no regression against %s\n", *estCmp)
		}
	}

	if *compare != "" {
		base, err := loadReport(*compare)
		if err != nil {
			fmt.Fprintln(os.Stderr, "p5bench:", err)
			os.Exit(1)
		}
		failures := compareReports(rep, base)
		for _, f := range failures {
			fmt.Fprintf(os.Stderr, "p5bench: REGRESSION: %s\n", f)
		}
		if len(failures) > 0 {
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "p5bench: no regression against %s\n", *compare)
	}
}

// loadReport reads a previously emitted report.
func loadReport(path string) (Report, error) {
	var rep Report
	data, err := os.ReadFile(path)
	if err != nil {
		return rep, err
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		return rep, fmt.Errorf("%s: %w", path, err)
	}
	return rep, nil
}

// regressionTolerance is the allowed relative loss in normalized
// fast-forward throughput before -compare fails the run.
const regressionTolerance = 0.20

// compareReports checks cur against the baseline and returns one message
// per failed check. Throughput is compared after dividing each report's
// fast-forward sim-cycles/s by that report's own stepped throughput: the
// ratio cancels the host machine's speed, so a committed baseline from
// another machine remains a usable reference. Measurements present in
// only one report are ignored (the set evolves across PRs). Scale
// mismatches (quick vs full) are a hard error: fast-forward speedups
// grow with run length (short runs amortize less fixed cost), so a
// quick run gated against a full baseline fails spuriously — compare
// like against like (make bench commits both baselines).
func compareReports(cur, base Report) []string {
	var failures []string
	if cur.Quick != base.Quick {
		return []string{fmt.Sprintf(
			"scale mismatch: quick=%v run vs quick=%v baseline — speedups are run-length dependent, compare against the matching committed baseline",
			cur.Quick, base.Quick)}
	}
	baseline := make(map[string]Measurement, len(base.Measurements))
	for _, m := range base.Measurements {
		baseline[m.Name] = m
	}
	for _, m := range cur.Measurements {
		if !m.ResultIdentical {
			failures = append(failures, fmt.Sprintf("%s: fast-forward result not identical to stepped", m.Name))
		}
		b, ok := baseline[m.Name]
		if !ok {
			fmt.Fprintf(os.Stderr, "p5bench: note: %s not in baseline, skipping\n", m.Name)
			continue
		}
		if !b.ResultIdentical {
			failures = append(failures, fmt.Sprintf("%s: baseline recorded a non-identical result", m.Name))
			continue
		}
		norm := m.FastCyclesPerS / cur.StepThroughput.SimCyclesPerSec
		bnorm := b.FastCyclesPerS / base.StepThroughput.SimCyclesPerSec
		if bnorm <= 0 {
			continue
		}
		ratio := norm / bnorm
		fmt.Fprintf(os.Stderr, "p5bench: compare %-34s normalized throughput %.2fx of baseline (speedup %.2fx vs %.2fx)\n",
			m.Name, ratio, m.Speedup, b.Speedup)
		if ratio < 1-regressionTolerance {
			failures = append(failures, fmt.Sprintf(
				"%s: normalized fast-forward throughput fell to %.0f%% of baseline (%.3g vs %.3g step-normalized)",
				m.Name, ratio*100, norm, bnorm))
		}
	}
	return failures
}

// stepThroughput times raw Chip.Step on a busy SMT pair (no idle
// windows, so the fast-forward never engages: this is the per-cycle
// bookkeeping cost).
func stepThroughput(cycles uint64) StepThroughput {
	k, err := microbench.BuildWith(microbench.CPUInt, microbench.Params{Iters: 64})
	if err != nil {
		panic(err)
	}
	ch := core.NewChip(core.DefaultConfig())
	ch.PlacePair(k, k, prio.Medium, prio.Medium, prio.User)
	start := time.Now()
	for i := uint64(0); i < cycles; i++ {
		ch.Step()
	}
	sec := time.Since(start).Seconds()
	return StepThroughput{Cycles: cycles, Seconds: sec, SimCyclesPerSec: float64(cycles) / sec}
}

// chaseKernel is the MLP~1 ablation workload: a 64MB pointer chase, the
// most idle-cycle-dense regime the simulator has.
func chaseKernel() *isa.Kernel {
	kb := isa.NewBuilder("mlp_chase")
	v := kb.Reg("v")
	iter := kb.Reg("iter")
	one := kb.Reg("one")
	s := kb.Stream(isa.StreamSpec{Kind: isa.StreamChase, Footprint: 64 << 20, Stride: 4224, Seed: 9})
	kb.Load(v, s, isa.Reg(-1))
	kb.Op2(isa.OpIntAdd, iter, iter, one)
	kb.Branch(isa.BranchLoop, iter)
	return kb.MustBuild(32)
}

// measureAB runs one FAME measurement twice — fast-forward off then on —
// and reports both wall times and whether the results matched exactly.
func measureAB(name string, a, b func() *isa.Kernel, pa, pb prio.Level) Measurement {
	build := func() *core.Chip {
		var kb *isa.Kernel
		if b != nil {
			kb = b()
		}
		ch := core.NewChip(core.DefaultConfig())
		ch.PlacePair(a(), kb, pa, pb, prio.Supervisor)
		return ch
	}
	opt := fame.Options{MinReps: 3, WarmupReps: 1, MAIV: 0.01, MaxCycles: 200_000_000}

	// A single measurement can finish in well under a millisecond once
	// the event wheel engages, far too short to time reliably, so each
	// mode is re-run (fresh chip each time — the simulator is
	// deterministic, asserted below) until enough wall time accumulates
	// for the -compare gate to see real throughput, not scheduler noise.
	const (
		minMeasureSeconds = 0.25
		measureRepCap     = 64
	)
	timed := func() (fame.PairResult, float64) {
		var res fame.PairResult
		var total float64
		reps := 0
		for total < minMeasureSeconds && reps < measureRepCap {
			ch := build() // outside the timed region: prewarm is not simulation
			start := time.Now()
			res = fame.Measure(ch, opt)
			total += time.Since(start).Seconds()
			reps++
		}
		return res, total / float64(reps)
	}

	prev := fame.SetFastForward(false)
	resOff, stepped := timed()
	fame.SetFastForward(true)
	resOn, fast := timed()
	fame.SetFastForward(prev)

	return Measurement{
		Name:            name,
		SimCycles:       resOn.Cycles,
		FastSeconds:     fast,
		SteppedSeconds:  stepped,
		Speedup:         stepped / fast,
		FastCyclesPerS:  float64(resOn.Cycles) / fast,
		ResultIdentical: reflect.DeepEqual(resOff, resOn),
	}
}

// regeneration times each quick-mode experiment on a fresh harness (no
// cross-experiment cache reuse, so the times are attributable; a
// -cache-dir store is attached to each engine, timing warm lookups).
func regeneration(quick bool, workers int, store *cachestore.Store) []Regeneration {
	ctx := context.Background()
	var out []Regeneration
	timeIt := func(name string, run func(h experiments.Harness) error) {
		h := experiments.Quick()
		if quick {
			h.IterScale = 0.1
		}
		h.Workers = workers
		h.Engine = nil // fresh private engine per experiment
		if store != nil {
			h.Engine = engine.NewWith(workers, nil, engine.WithStore(store))
		}
		start := time.Now()
		if err := run(h); err != nil {
			fmt.Fprintf(os.Stderr, "p5bench: %s: %v\n", name, err)
			os.Exit(1)
		}
		out = append(out, Regeneration{Name: name, Seconds: time.Since(start).Seconds()})
	}
	timeIt("table3", func(h experiments.Harness) error { _, err := experiments.Table3(ctx, h); return err })
	timeIt("fig2", func(h experiments.Harness) error { _, err := experiments.Fig2(ctx, h); return err })
	timeIt("fig3", func(h experiments.Harness) error { _, err := experiments.Fig3(ctx, h); return err })
	timeIt("fig4", func(h experiments.Harness) error { _, err := experiments.Fig4(ctx, h); return err })
	timeIt("fig5a", func(h experiments.Harness) error { _, err := experiments.Fig5a(ctx, h); return err })
	timeIt("fig5b", func(h experiments.Harness) error { _, err := experiments.Fig5b(ctx, h); return err })
	timeIt("table4", func(h experiments.Harness) error { _, err := experiments.Table4(ctx, h); return err })
	timeIt("fig6", func(h experiments.Harness) error { _, err := experiments.Fig6(ctx, h); return err })
	return out
}
