// Command p5worker serves the distributed execution protocol: it runs
// simulation jobs posted by p5exp/p5sim -remote (or any program using a
// remote backend) on a local worker pool, with the same two cache tiers
// a local run has. Point a fleet's workers — and the client — at one
// shared -cache-dir and a warm cache short-circuits remote simulation
// entirely.
//
// Usage:
//
//	p5worker                                      # serve on 127.0.0.1:7550
//	p5worker -listen 0.0.0.0:7550 -workers 8      # serve a LAN, bounded pool
//	p5worker -listen 127.0.0.1:0                  # pick a free port (printed)
//	p5worker -cache-dir /mnt/shared/p5cache       # join a shared result cache
//	p5worker -register daemon:7551                # join a p5d daemon's fleet
//
// With -register, the worker announces itself to a p5d daemon on
// startup and re-announces every heartbeat interval, so a daemon
// started with -fleet grows its fleet as workers come up, and a worker
// that the daemon's circuit breaker excluded (crash, restart, network
// partition) is readmitted on its next heartbeat. -advertise overrides
// the address the worker registers (needed behind NAT or when binding
// a wildcard address).
//
// The worker prints its bound address on startup and one line per batch
// served. SIGINT/SIGTERM shut it down gracefully (in-flight batches
// finish). Results are bit-identical to local execution provided client
// and workers run the same build; a version or schema skew is detected
// per request and fails loudly instead of measuring the wrong thing.
package main

import (
	"context"
	"flag"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"power5prio/internal/chaos"
	"power5prio/internal/cmdutil"
	"power5prio/internal/remote"
	"power5prio/internal/service"
)

func main() {
	var (
		listen    = flag.String("listen", "127.0.0.1:7550", "address to serve the worker protocol on (host:port; port 0 picks a free port)")
		workers   = flag.Int("workers", 0, "simulation worker pool size (0 = all CPU cores)")
		maxBatch  = flag.Int("max-batch", 4096, "largest job batch accepted in one request (0 = unlimited)")
		register  = flag.String("register", "", "register with (and heartbeat to) a p5d daemon at host:port")
		advertise = flag.String("advertise", "", "address to register with the daemon (default: the bound listen address)")
		heartbeat = flag.Duration("heartbeat", 15*time.Second, "re-registration interval with -register (±20%% jitter; heals circuit-breaker exclusion)")
		chaosPlan = flag.String("chaos", "", "fault-injection plan JSON (see internal/chaos) applied to this worker's HTTP handler and cache store")
		quiet     = flag.Bool("quiet", false, "suppress the per-batch log lines")
		common    = cmdutil.AddCommonFlags("p5worker", flag.CommandLine)
	)
	flag.Parse()
	store := common.Init()
	stopProfiles := common.StartProfiles()

	logf := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "p5worker: "+format+"\n", args...)
	}

	var inj *chaos.Injector
	if *chaosPlan != "" {
		plan, err := chaos.Load(*chaosPlan)
		if err != nil {
			logf("%v", err)
			stopProfiles()
			os.Exit(1)
		}
		inj = chaos.NewInjector(plan)
		logf("CHAOS: injecting faults from %s (seed %d, %d rules)", *chaosPlan, plan.Seed, len(plan.Rules))
		if store != nil {
			store.SetPutHook(chaos.PutHook(inj))
		}
	}
	cfg := remote.ServerConfig{
		Workers:  *workers,
		Store:    store,
		MaxBatch: *maxBatch,
	}
	if !*quiet {
		cfg.Logf = logf
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	lis, err := net.Listen("tcp", *listen)
	if err != nil {
		logf("%v", err)
		stopProfiles()
		os.Exit(1)
	}
	cache := "memory-only cache"
	if store != nil {
		cache = "cache dir " + store.Dir()
	}
	logf("serving %s on %s (%s)", remote.ProtocolVersion, lis.Addr(), cache)

	if *register != "" {
		addr := *advertise
		if addr == "" {
			addr = lis.Addr().String()
		}
		// Register now and on every heartbeat: the first call joins the
		// daemon's fleet, repeats are cheap no-ops that double as the
		// liveness signal resetting this worker's circuit-breaker state
		// after a crash or partition. Registration failures are warnings,
		// not fatal — the daemon may simply not be up yet.
		announce := func() {
			added, err := service.RegisterWorker(ctx, *register, addr)
			switch {
			case err != nil:
				logf("register with %s: %v (will retry)", *register, err)
			case added:
				logf("registered %s with daemon %s", addr, *register)
			}
		}
		// The goroutine announces immediately, but only once the server
		// below is accepting: the daemon health-checks the advertised
		// address before admitting it, so a synchronous announce here
		// would always fail against our own not-yet-serving listener.
		// Each interval is jittered ±20% so a fleet of workers started
		// together (or restarted by the same supervisor) doesn't
		// heartbeat the daemon in lockstep.
		go func() {
			announce()
			jittered := func() time.Duration {
				return time.Duration(float64(*heartbeat) * (1 + 0.2*(2*rand.Float64()-1)))
			}
			t := time.NewTimer(jittered())
			defer t.Stop()
			for {
				select {
				case <-t.C:
					announce()
					t.Reset(jittered())
				case <-ctx.Done():
					return
				}
			}
		}()
	}

	var handler http.Handler = remote.NewServer(cfg).Handler()
	if inj != nil {
		handler = chaos.Middleware(handler, inj)
	}
	err = remote.ServeHandler(ctx, lis, handler)
	stopProfiles()
	if err != nil {
		logf("%v", err)
		os.Exit(1)
	}
	logf("shut down")
}
