// Command p5exp regenerates the tables and figures of Boneti et al.
// (ISCA 2008) on the simulated POWER5, printing the same rows and series
// the paper reports, next to the paper's values where applicable.
//
// Usage:
//
//	p5exp -exp table3            # one experiment
//	p5exp -exp all -quick        # everything, at reduced fidelity
//	p5exp -exp fig2 -csv         # machine-readable output
//
// Ctrl-C cancels the sweep: whatever was measured before the interrupt
// is rendered (unmeasured cells as zeros), and the completed work stays
// in the engine cache for the next invocation of the same process.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"power5prio/internal/experiments"
	"power5prio/internal/report"
)

func main() {
	var (
		exp     = flag.String("exp", "all", "experiment: table1|table3|fig2|fig3|fig4|fig5|table4|fig6|all")
		quick   = flag.Bool("quick", false, "reduced fidelity (fewer repetitions, shorter kernels)")
		csv     = flag.Bool("csv", false, "emit CSV instead of aligned tables")
		verify  = flag.Bool("verify", false, "check the paper's headline claims and exit non-zero on failure")
		workers = flag.Int("workers", 0, "simulation worker pool size (0 = all CPU cores)")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	h := experiments.Default()
	if *quick {
		h = experiments.Quick()
	}
	h.Engine.SetWorkers(*workers)
	// exit reports the engine stats before terminating: os.Exit skips
	// deferred functions, and the stats matter most on failed runs.
	exit := func(code int) {
		fmt.Fprintf(os.Stderr, "p5exp: engine: %s (%d workers)\n", h.Engine.Stats(), h.Engine.Workers())
		os.Exit(code)
	}
	// interrupted notes a cancelled sweep and picks the exit code.
	interrupted := func(err error) {
		if err == nil {
			return
		}
		fmt.Fprintf(os.Stderr, "p5exp: interrupted (%v); partial results above, completed work cached\n", err)
		exit(130)
	}

	if *verify {
		findings, err := experiments.VerifyMicrobenchClaims(ctx, h)
		interrupted(err)
		failed := false
		for _, f := range findings {
			fmt.Println(f)
			if !f.Pass {
				failed = true
			}
		}
		if failed {
			exit(1)
		}
		exit(0)
	}

	emit := func(tables ...*report.Table) {
		for _, t := range tables {
			if *csv {
				fmt.Print(t.CSV())
			} else {
				fmt.Println(t.String())
			}
		}
	}

	run := func(name string) {
		switch name {
		case "table1":
			emit(table1())
		case "table3":
			r, err := experiments.Table3(ctx, h)
			emit(r.Render(), r.RenderComparison())
			interrupted(err)
		case "fig2":
			r, err := experiments.Fig2(ctx, h)
			emit(r.Render()...)
			interrupted(err)
		case "fig3":
			r, err := experiments.Fig3(ctx, h)
			emit(r.Render()...)
			interrupted(err)
		case "fig4":
			r, err := experiments.Fig4(ctx, h)
			emit(r.Render()...)
			interrupted(err)
		case "fig5":
			a, err := experiments.Fig5a(ctx, h)
			emit(a.Render())
			interrupted(err)
			b, err := experiments.Fig5b(ctx, h)
			emit(b.Render())
			interrupted(err)
		case "table4":
			r, err := experiments.Table4(ctx, h)
			if err != nil {
				interrupted(ctx.Err())
				fmt.Fprintln(os.Stderr, "p5exp:", err)
				exit(1)
			}
			emit(r.Render())
		case "fig6":
			r, err := experiments.Fig6(ctx, h)
			emit(r.Render()...)
			interrupted(err)
		default:
			fmt.Fprintf(os.Stderr, "p5exp: unknown experiment %q\n", name)
			exit(2)
		}
	}

	if *exp == "all" {
		for _, name := range []string{"table1", "table3", "fig2", "fig3", "fig4", "fig5", "table4", "fig6"} {
			run(name)
		}
		exit(0)
	}
	run(*exp)
	exit(0)
}

// table1 renders the priority/privilege/or-nop table (Table 1 is
// definitional; it is verified by unit tests, printed here for reference).
func table1() *report.Table {
	t := report.NewTable("Table 1: software-controlled thread priorities",
		"priority", "level", "privilege", "or-nop")
	rows := []struct {
		p     int
		name  string
		priv  string
		ornop string
	}{
		{0, "thread shut off", "hypervisor", "-"},
		{1, "very low", "supervisor", "or 31,31,31"},
		{2, "low", "user", "or 1,1,1"},
		{3, "medium-low", "user", "or 6,6,6"},
		{4, "medium", "user", "or 2,2,2"},
		{5, "medium-high", "supervisor", "or 5,5,5"},
		{6, "high", "supervisor", "or 3,3,3"},
		{7, "very high", "hypervisor", "or 7,7,7"},
	}
	for _, r := range rows {
		t.AddRow(fmt.Sprint(r.p), r.name, r.priv, r.ornop)
	}
	return t
}
