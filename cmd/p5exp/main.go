// Command p5exp regenerates the tables and figures of Boneti et al.
// (ISCA 2008) on the simulated POWER5, printing the same rows and series
// the paper reports, next to the paper's values where applicable.
//
// Usage:
//
//	p5exp -exp table3            # one experiment
//	p5exp -exp all -quick        # everything, at reduced fidelity
//	p5exp -exp fig2 -csv         # machine-readable output
package main

import (
	"flag"
	"fmt"
	"os"

	"power5prio/internal/engine"
	"power5prio/internal/experiments"
	"power5prio/internal/report"
)

func main() {
	var (
		exp     = flag.String("exp", "all", "experiment: table1|table3|fig2|fig3|fig4|fig5|table4|fig6|all")
		quick   = flag.Bool("quick", false, "reduced fidelity (fewer repetitions, shorter kernels)")
		csv     = flag.Bool("csv", false, "emit CSV instead of aligned tables")
		verify  = flag.Bool("verify", false, "check the paper's headline claims and exit non-zero on failure")
		workers = flag.Int("workers", 0, "simulation worker pool size (0 = all CPU cores)")
	)
	flag.Parse()

	h := experiments.Default()
	if *quick {
		h = experiments.Quick()
	}
	h.Engine = engine.New(*workers)
	// exit reports the engine stats before terminating: os.Exit skips
	// deferred functions, and the stats matter most on failed runs.
	exit := func(code int) {
		fmt.Fprintf(os.Stderr, "p5exp: engine: %s (%d workers)\n", h.Engine.Stats(), h.Engine.Workers())
		os.Exit(code)
	}

	if *verify {
		failed := false
		for _, f := range experiments.VerifyMicrobenchClaims(h) {
			fmt.Println(f)
			if !f.Pass {
				failed = true
			}
		}
		if failed {
			exit(1)
		}
		exit(0)
	}

	emit := func(tables ...*report.Table) {
		for _, t := range tables {
			if *csv {
				fmt.Print(t.CSV())
			} else {
				fmt.Println(t.String())
			}
		}
	}

	run := func(name string) {
		switch name {
		case "table1":
			emit(table1())
		case "table3":
			r := experiments.Table3(h)
			emit(r.Render(), r.RenderComparison())
		case "fig2":
			emit(experiments.Fig2(h).Render()...)
		case "fig3":
			emit(experiments.Fig3(h).Render()...)
		case "fig4":
			emit(experiments.Fig4(h).Render()...)
		case "fig5":
			emit(experiments.Fig5a(h).Render(), experiments.Fig5b(h).Render())
		case "table4":
			r, err := experiments.Table4(h)
			if err != nil {
				fmt.Fprintln(os.Stderr, "p5exp:", err)
				exit(1)
			}
			emit(r.Render())
		case "fig6":
			emit(experiments.Fig6(h).Render()...)
		default:
			fmt.Fprintf(os.Stderr, "p5exp: unknown experiment %q\n", name)
			exit(2)
		}
	}

	if *exp == "all" {
		for _, name := range []string{"table1", "table3", "fig2", "fig3", "fig4", "fig5", "table4", "fig6"} {
			run(name)
		}
		exit(0)
	}
	run(*exp)
	exit(0)
}

// table1 renders the priority/privilege/or-nop table (Table 1 is
// definitional; it is verified by unit tests, printed here for reference).
func table1() *report.Table {
	t := report.NewTable("Table 1: software-controlled thread priorities",
		"priority", "level", "privilege", "or-nop")
	rows := []struct {
		p     int
		name  string
		priv  string
		ornop string
	}{
		{0, "thread shut off", "hypervisor", "-"},
		{1, "very low", "supervisor", "or 31,31,31"},
		{2, "low", "user", "or 1,1,1"},
		{3, "medium-low", "user", "or 6,6,6"},
		{4, "medium", "user", "or 2,2,2"},
		{5, "medium-high", "supervisor", "or 5,5,5"},
		{6, "high", "supervisor", "or 3,3,3"},
		{7, "very high", "hypervisor", "or 7,7,7"},
	}
	for _, r := range rows {
		t.AddRow(fmt.Sprint(r.p), r.name, r.priv, r.ornop)
	}
	return t
}
