// Command p5exp regenerates the tables and figures of Boneti et al.
// (ISCA 2008) on the simulated POWER5, printing the same rows and series
// the paper reports, next to the paper's values where applicable.
//
// Usage:
//
//	p5exp -exp table3            # one experiment
//	p5exp -exp all -quick        # everything, at reduced fidelity
//	p5exp -exp fig2 -csv         # machine-readable output
//	p5exp -exp all -quick -cache-dir ~/.cache/p5exp   # persist results
//	p5exp -cache-dir ~/.cache/p5exp -cache stats      # inspect the cache
//	p5exp -exp all -remote host1:7550,host2:7550      # shard across workers
//	p5exp -exp all -quick -submit daemon:7551         # run through a p5d daemon
//	p5exp -exp fig5 -estimate default    # tier-0 analytical answers within tolerance
//	p5exp -exp calib -quick              # model-vs-simulator residual gate
//
// With -cache-dir, results persist across invocations: a re-run of the
// same experiments performs no simulations (all disk hits), and
// -require-warm turns that expectation into an exit code for CI. The
// -cache flag administers the store: stats, verify (checksum-scan and
// drop corrupt entries) or clear.
//
// With -remote, simulation jobs are sharded across p5worker processes
// (results are byte-identical to a local run — see README "Distributed
// runs"); the engine stats line then reports remote jobs, retries and
// worker errors. With -submit, jobs go to a shared p5d daemon instead:
// concurrent clients submitting the same jobs get them simulated once,
// and the daemon's cache answers repeat questions for everyone.
//
// Ctrl-C cancels the sweep: whatever was measured before the interrupt
// is rendered (unmeasured cells as zeros), and the completed work stays
// in the engine cache — on disk, with -cache-dir — for the next
// invocation.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"power5prio/internal/analytic"
	"power5prio/internal/cachestore"
	"power5prio/internal/cmdutil"
	"power5prio/internal/engine"
	"power5prio/internal/experiments"
	"power5prio/internal/report"
)

func main() {
	var (
		exp     = flag.String("exp", "all", "experiment: table1|table3|fig2|fig3|fig4|fig5|table4|fig6|calib|all")
		quick   = flag.Bool("quick", false, "reduced fidelity (fewer repetitions, shorter kernels)")
		csv     = flag.Bool("csv", false, "emit CSV instead of aligned tables")
		verify  = flag.Bool("verify", false, "check the paper's headline claims and exit non-zero on failure")
		workers = flag.Int("workers", 0, "simulation worker pool size (0 = all CPU cores)")
		cacheOp = flag.String("cache", "", "cache administration with -cache-dir: stats|verify|clear (runs no experiment)")
		reqWarm = flag.Bool("require-warm", false, "with -cache-dir: exit non-zero if anything was simulated or missed the disk cache")
		remotes = flag.String("remote", "", "shard simulation across p5worker processes at host:port[,host:port...] instead of running locally")
		submit  = flag.String("submit", "", "submit simulation jobs to a p5d daemon at host:port instead of running locally (shares its queue, cache and fleet with other clients)")
		client  = flag.String("client", "", "tenant name for -submit fair scheduling (default: a per-process id)")
		est     = flag.String("estimate", "off", cmdutil.EstimateFlagHelp)
		common  = cmdutil.AddCommonFlags("p5exp", flag.CommandLine)
	)
	flag.Parse()
	if *remotes != "" && *submit != "" {
		fmt.Fprintln(os.Stderr, "p5exp: -remote and -submit are mutually exclusive (a daemon owns its own fleet)")
		os.Exit(2)
	}
	estMode := cmdutil.ParseEstimate("p5exp", *est)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	store := common.Init()
	if *cacheOp != "" {
		os.Exit(runCacheOp(store, *cacheOp))
	}
	if *reqWarm && store == nil {
		fmt.Fprintln(os.Stderr, "p5exp: -require-warm needs -cache-dir")
		os.Exit(2)
	}
	// Execution backend: the in-process pool, a health-checked worker
	// fleet with -remote, or a shared p5d daemon with -submit. The
	// engine's cache tiers (including -cache-dir) stay local either
	// way, in front of the backend — with -submit the daemon adds its
	// own shared tiers behind them.
	var engOpts []engine.Option
	engOpts = append(engOpts, engine.WithStore(store))
	switch {
	case *remotes != "":
		engOpts = append(engOpts, engine.WithBackend(cmdutil.RemoteBackend(ctx, "p5exp", *remotes)))
	case *submit != "":
		engOpts = append(engOpts, engine.WithBackend(cmdutil.ServiceBackend(ctx, "p5exp", *submit, *client)))
	}
	// Started after the administrative early exits above, so a live
	// profile can never be abandoned by os.Exit.
	stopProfiles := common.StartProfiles()

	h := experiments.Default()
	if *quick {
		h = experiments.Quick()
	}
	h.Engine = engine.NewWith(*workers, nil, engOpts...)
	// Tier 0 sits in front of every cache tier and the backend alike:
	// with -estimate, jobs the model can answer within tolerance never
	// reach simulation (local, -remote or -submit). Off — or a zero
	// tolerance — leaves every experiment byte-identical to a run
	// without the flag.
	if estMode.Enabled {
		h.Engine.SetEstimator(analytic.New(h.Engine))
		h.Engine.SetEstimateMode(estMode)
	}
	// exit reports the engine stats before terminating: os.Exit skips
	// deferred functions, and the stats matter most on failed runs.
	exit := func(code int) {
		stopProfiles()
		stats := h.Engine.Stats()
		fmt.Fprintf(os.Stderr, "p5exp: engine: %s (%d workers)\n", stats, h.Engine.Workers())
		if code == 0 && *reqWarm && (stats.Simulated > 0 || stats.DiskMisses > 0) {
			fmt.Fprintf(os.Stderr, "p5exp: -require-warm: cache was cold (%d simulated, %d disk misses)\n",
				stats.Simulated, stats.DiskMisses)
			code = 3
		}
		os.Exit(code)
	}
	// interrupted notes a cancelled sweep and picks the exit code.
	interrupted := func(err error) {
		if err == nil {
			return
		}
		fmt.Fprintf(os.Stderr, "p5exp: interrupted (%v); partial results above, completed work cached\n", err)
		exit(130)
	}

	if *verify {
		findings, err := experiments.VerifyMicrobenchClaims(ctx, h)
		interrupted(err)
		failed := false
		for _, f := range findings {
			fmt.Println(f)
			if !f.Pass {
				failed = true
			}
		}
		if failed {
			exit(1)
		}
		exit(0)
	}

	emit := func(tables ...*report.Table) {
		for _, t := range tables {
			if *csv {
				fmt.Print(t.CSV())
			} else {
				fmt.Println(t.String())
			}
		}
	}

	run := func(name string) {
		switch name {
		case "table1":
			emit(table1())
		case "table3":
			r, err := experiments.Table3(ctx, h)
			emit(r.Render(), r.RenderComparison())
			interrupted(err)
		case "fig2":
			r, err := experiments.Fig2(ctx, h)
			emit(r.Render()...)
			interrupted(err)
		case "fig3":
			r, err := experiments.Fig3(ctx, h)
			emit(r.Render()...)
			interrupted(err)
		case "fig4":
			r, err := experiments.Fig4(ctx, h)
			emit(r.Render()...)
			interrupted(err)
		case "fig5":
			a, err := experiments.Fig5a(ctx, h)
			emit(a.Render())
			interrupted(err)
			b, err := experiments.Fig5b(ctx, h)
			emit(b.Render())
			interrupted(err)
		case "table4":
			r, err := experiments.Table4(ctx, h)
			if err != nil {
				interrupted(ctx.Err())
				fmt.Fprintln(os.Stderr, "p5exp:", err)
				exit(1)
			}
			emit(r.Render())
		case "fig6":
			r, err := experiments.Fig6(ctx, h)
			emit(r.Render()...)
			interrupted(err)
		case "calib":
			// The tier-0 accuracy gate: model vs simulator over the
			// calibration matrix, non-zero exit when any residual escapes
			// its committed error bar. Not part of "all" — it validates
			// the estimator, not the paper.
			r, err := experiments.Calib(ctx, h)
			if err != nil {
				interrupted(ctx.Err())
				fmt.Fprintln(os.Stderr, "p5exp:", err)
				exit(1)
			}
			fmt.Print(r.Render())
			if !r.WithinBounds() || r.MaxAbsResidual > r.Tolerance {
				exit(1)
			}
		default:
			fmt.Fprintf(os.Stderr, "p5exp: unknown experiment %q\n", name)
			exit(2)
		}
	}

	if *exp == "all" {
		for _, name := range []string{"table1", "table3", "fig2", "fig3", "fig4", "fig5", "table4", "fig6"} {
			run(name)
		}
		exit(0)
	}
	run(*exp)
	exit(0)
}

// runCacheOp administers the persistent cache and returns the exit
// code: stats prints entry count and size, verify checksum-scans every
// entry and removes corrupt ones (non-zero exit if any were found),
// clear empties the store.
func runCacheOp(store *cachestore.Store, op string) int {
	if store == nil {
		fmt.Fprintln(os.Stderr, "p5exp: -cache needs -cache-dir")
		return 2
	}
	switch op {
	case "stats":
		info, err := store.Info()
		if err != nil {
			fmt.Fprintln(os.Stderr, "p5exp:", err)
			return 1
		}
		fmt.Printf("cache %s: %d entries, %d bytes\n", store.Dir(), info.Entries, info.Bytes)
	case "verify":
		vr, err := store.Verify(true)
		if err != nil {
			fmt.Fprintln(os.Stderr, "p5exp:", err)
			return 1
		}
		fmt.Printf("cache %s: %d entries checked, %d corrupt (%d removed)\n",
			store.Dir(), vr.Checked, vr.Corrupt, vr.Removed)
		if vr.Corrupt > 0 {
			return 1
		}
	case "clear":
		if err := store.Clear(); err != nil {
			fmt.Fprintln(os.Stderr, "p5exp:", err)
			return 1
		}
		fmt.Printf("cache %s: cleared\n", store.Dir())
	default:
		fmt.Fprintf(os.Stderr, "p5exp: unknown cache operation %q (stats|verify|clear)\n", op)
		return 2
	}
	return 0
}

// table1 renders the priority/privilege/or-nop table (Table 1 is
// definitional; it is verified by unit tests, printed here for reference).
func table1() *report.Table {
	t := report.NewTable("Table 1: software-controlled thread priorities",
		"priority", "level", "privilege", "or-nop")
	rows := []struct {
		p     int
		name  string
		priv  string
		ornop string
	}{
		{0, "thread shut off", "hypervisor", "-"},
		{1, "very low", "supervisor", "or 31,31,31"},
		{2, "low", "user", "or 1,1,1"},
		{3, "medium-low", "user", "or 6,6,6"},
		{4, "medium", "user", "or 2,2,2"},
		{5, "medium-high", "supervisor", "or 5,5,5"},
		{6, "high", "supervisor", "or 3,3,3"},
		{7, "very high", "hypervisor", "or 7,7,7"},
	}
	for _, r := range rows {
		t.AddRow(fmt.Sprint(r.p), r.name, r.priv, r.ornop)
	}
	return t
}
