// Command p5lint is the repo's static-analysis gate: a multichecker
// running the four repo-specific analyzers that enforce, at build
// time, the invariants the test suite otherwise only catches at run
// time:
//
//	detmap      map iteration order must never reach ordered output
//	nowallclock no wall clock or ambient entropy inside the simulator
//	keyhash     every hash-key type must be canonically hashable
//	ctxflow     contexts must propagate; no ambient roots in libraries
//
// Usage:
//
//	p5lint [-fix] [-detmap.packages=...] [packages...]
//
// Patterns default to ./... and are resolved module-aware from the
// working directory. Exit status is 1 when unsuppressed findings
// exist, 2 on load or internal errors — the same contract as go vet,
// so `make lint` and CI can gate on it directly. -fix applies the
// analyzers' suggested fixes (currently detmap's sort-after-loop
// repair) in place, then reports whatever remains.
//
// Findings are suppressed by a justification comment on the offending
// line or the line above:
//
//	//p5lint:ordered <why this iteration order is safe>   (detmap)
//	//p5lint:allow <analyzer> <why>                       (any analyzer)
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"power5prio/internal/lint"
	"power5prio/internal/lint/analysis"
	"power5prio/internal/lint/loader"
)

var analyzers = lint.Analyzers()

func main() {
	os.Exit(run())
}

func run() int {
	fix := flag.Bool("fix", false, "apply suggested fixes in place, then report remaining findings")
	for _, a := range analyzers {
		a.Flags.VisitAll(func(f *flag.Flag) {
			flag.Var(f.Value, a.Name+"."+f.Name, f.Usage+" ("+a.Name+")")
		})
	}
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: p5lint [flags] [packages]\n\nanalyzers:\n")
		for _, a := range analyzers {
			fmt.Fprintf(flag.CommandLine.Output(), "  %-12s %s\n", a.Name, a.Doc)
		}
		flag.PrintDefaults()
	}
	flag.Parse()

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "p5lint:", err)
		return 2
	}
	pkgs, err := loader.Load(cwd, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "p5lint:", err)
		return 2
	}
	loadErrs := 0
	for _, p := range pkgs {
		for _, terr := range p.TypeErrors {
			fmt.Fprintf(os.Stderr, "p5lint: %s: %v\n", p.ImportPath, terr)
			loadErrs++
		}
	}
	if loadErrs > 0 {
		return 2
	}

	diags, err := analysis.Run(pkgs, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "p5lint:", err)
		return 2
	}
	if *fix {
		applied, err := applyFixes(pkgs, diags)
		if err != nil {
			fmt.Fprintln(os.Stderr, "p5lint:", err)
			return 2
		}
		if applied > 0 {
			fmt.Fprintf(os.Stderr, "p5lint: applied %d suggested fix(es); re-run to verify\n", applied)
			// Re-analyze so the exit status reflects the fixed tree.
			pkgs, err = loader.Load(cwd, patterns...)
			if err != nil {
				fmt.Fprintln(os.Stderr, "p5lint:", err)
				return 2
			}
			diags, err = analysis.Run(pkgs, analyzers)
			if err != nil {
				fmt.Fprintln(os.Stderr, "p5lint:", err)
				return 2
			}
		}
	}
	for _, d := range diags {
		for _, p := range pkgs {
			if pos := p.Fset.Position(d.Pos); pos.IsValid() {
				fmt.Printf("%s: %s (%s)\n", pos, d.Message, d.Analyzer)
				break
			}
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "p5lint: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}

// applyFixes writes every suggested fix back to disk. Edits are
// grouped per file, sorted, and rejected if they overlap.
func applyFixes(pkgs []*loader.Package, diags []analysis.Diagnostic) (int, error) {
	type edit struct {
		start, end int
		text       []byte
	}
	perFile := make(map[string][]edit)
	applied := 0
	for _, d := range diags {
		for _, fixItem := range d.SuggestedFixes {
			for _, te := range fixItem.TextEdits {
				for _, p := range pkgs {
					pos := p.Fset.Position(te.Pos)
					if !pos.IsValid() {
						continue
					}
					end := p.Fset.Position(te.End)
					perFile[pos.Filename] = append(perFile[pos.Filename], edit{pos.Offset, end.Offset, te.NewText})
					break
				}
			}
			applied++
		}
	}
	for file, edits := range perFile {
		src, err := os.ReadFile(file)
		if err != nil {
			return applied, err
		}
		sort.Slice(edits, func(i, j int) bool { return edits[i].start < edits[j].start })
		for i := 1; i < len(edits); i++ {
			if edits[i].start < edits[i-1].end {
				return applied, fmt.Errorf("overlapping fixes in %s; re-run -fix after resolving", file)
			}
		}
		var out []byte
		last := 0
		for _, e := range edits {
			out = append(out, src[last:e.start]...)
			out = append(out, e.text...)
			last = e.end
		}
		out = append(out, src[last:]...)
		if err := os.WriteFile(file, out, 0o644); err != nil {
			return applied, err
		}
	}
	return applied, nil
}
