// Command p5sim runs a single workload or a co-scheduled pair on the
// simulated POWER5 core and reports FAME-measured performance.
//
// Usage:
//
//	p5sim -a cpu_int -b ldint_mem -pa 6 -pb 2
//	p5sim -a mcf -single
//	p5sim -list
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"power5prio"

	"power5prio/internal/core"
	"power5prio/internal/experiments"
	"power5prio/internal/fame"
	"power5prio/internal/power"
	"power5prio/internal/prio"
)

func main() {
	var (
		nameA   = flag.String("a", "cpu_int", "first workload (micro-benchmark or SPEC name)")
		nameB   = flag.String("b", "", "second workload; empty with -single for ST mode")
		pa      = flag.Int("pa", 4, "priority of the first workload (0-7)")
		pb      = flag.Int("pb", 4, "priority of the second workload (0-7)")
		single  = flag.Bool("single", false, "run the first workload alone (single-thread mode)")
		reps    = flag.Int("reps", 10, "minimum FAME repetitions per thread")
		workers = flag.Int("workers", 0, "worker pool size for -sweep (0 = all CPU cores)")
		sweep   = flag.Bool("sweep", false, "sweep the pair across all priority differences [-5,+5] as one batch")
		list    = flag.Bool("list", false, "list available workloads and exit")
		showPow = flag.Bool("power", false, "estimate core power with the activity model")
		disasm  = flag.Bool("disasm", false, "print the first workload's loop body and exit")
	)
	flag.Parse()

	if *list {
		fmt.Println("micro-benchmarks:", strings.Join(power5prio.Microbenchmarks(), " "))
		fmt.Println("spec workloads:  ", strings.Join(power5prio.SPECWorkloads(), " "))
		return
	}

	sys := power5prio.New(power5prio.DefaultConfig())
	opts := power5prio.DefaultMeasureOptions()
	opts.MinReps = *reps
	sys.SetMeasureOptions(opts)
	sys.SetWorkers(*workers)

	build := func(name string) *power5prio.Kernel {
		if k, err := power5prio.Microbenchmark(name); err == nil {
			return k
		}
		k, err := power5prio.SPECWorkload(name)
		if err != nil {
			fmt.Fprintf(os.Stderr, "p5sim: unknown workload %q (try -list)\n", name)
			os.Exit(1)
		}
		return k
	}

	if *disasm {
		fmt.Print(build(*nameA).Disassemble())
		return
	}

	if *showPow {
		runWithPower(build(*nameA), buildOrNil(build, *nameB, *single),
			prio.Level(*pa), prio.Level(*pb), *reps)
		return
	}

	if *sweep {
		if *nameB == "" {
			fmt.Fprintln(os.Stderr, "p5sim: -sweep needs two workloads (-a and -b)")
			os.Exit(2)
		}
		runSweep(sys, *nameA, *nameB)
		return
	}

	if *single || *nameB == "" {
		res, err := sys.MeasureSingle(build(*nameA))
		if err != nil {
			fmt.Fprintln(os.Stderr, "p5sim:", err)
			os.Exit(1)
		}
		fmt.Printf("%s (single-thread): IPC %.3f, %.0f cycles/rep over %d reps\n",
			*nameA, res.IPC, res.AvgRepCycles, res.Reps)
		return
	}

	res, err := sys.MeasurePair(build(*nameA), build(*nameB),
		power5prio.Level(*pa), power5prio.Level(*pb))
	if err != nil {
		fmt.Fprintln(os.Stderr, "p5sim:", err)
		os.Exit(1)
	}
	fmt.Printf("priorities (%d,%d)  decode share %.4f : %.4f\n",
		*pa, *pb, power5prio.Share(*pa-*pb), 1-power5prio.Share(*pa-*pb))
	fmt.Printf("  %-18s IPC %.3f  %.0f cycles/rep  (%d reps)\n",
		*nameA, res.Thread[0].IPC, res.Thread[0].AvgRepCycles, res.Thread[0].Reps)
	fmt.Printf("  %-18s IPC %.3f  %.0f cycles/rep  (%d reps)\n",
		*nameB, res.Thread[1].IPC, res.Thread[1].AvgRepCycles, res.Thread[1].Reps)
	fmt.Printf("  total IPC %.3f over %d cycles\n", res.TotalIPC, res.Cycles)
	if res.TimedOut {
		fmt.Println("  WARNING: measurement hit the cycle budget before converging")
	}
}

// runSweep submits the pair at every priority difference in [-5,+5] as
// one batch; independent points simulate concurrently on the worker pool.
func runSweep(sys *power5prio.System, nameA, nameB string) {
	diffs := []int{-5, -4, -3, -2, -1, 0, 1, 2, 3, 4, 5}
	specs := make([]power5prio.BatchSpec, len(diffs))
	for i, d := range diffs {
		pa, pb := experiments.DiffPair(d)
		specs[i] = power5prio.BatchSpec{A: nameA, B: nameB, PA: pa, PB: pb}
	}
	results, err := sys.MeasureBatch(specs)
	if err != nil {
		fmt.Fprintln(os.Stderr, "p5sim:", err)
		os.Exit(1)
	}
	fmt.Printf("%-6s %-10s %12s %12s %10s\n", "diff", "priorities", nameA, nameB, "total")
	for i, d := range diffs {
		r := results[i]
		fmt.Printf("%+-6d (%d,%d)      %12.3f %12.3f %10.3f\n",
			d, specs[i].PA, specs[i].PB, r.Thread[0].IPC, r.Thread[1].IPC, r.TotalIPC)
	}
	fmt.Printf("engine: %s\n", sys.BatchStats())
}

// buildOrNil returns nil when running single-threaded.
func buildOrNil(build func(string) *power5prio.Kernel, name string, single bool) *power5prio.Kernel {
	if single || name == "" {
		return nil
	}
	return build(name)
}

// runWithPower runs the workload(s) on a chip directly so the activity
// counters are available for the power model.
func runWithPower(ka, kb *power5prio.Kernel, pa, pb prio.Level, reps int) {
	cfg := core.DefaultConfig()
	ch := core.NewChip(cfg)
	ch.PlacePair(ka, kb, pa, pb, prio.Supervisor)
	opts := fame.DefaultOptions()
	opts.MinReps = reps
	res := fame.Measure(ch, opts)
	rep := power.DefaultModel().Estimate(ch.ExperimentCore(), ch.Hier, cfg.ExperimentCore)
	fmt.Printf("total IPC %.3f  |  power: %s\n", res.TotalIPC, rep)
	for part, e := range rep.ByPart {
		fmt.Printf("  %-7s %12.0f (%.1f%%)\n", part, e, 100*e/rep.Energy)
	}
}
