// Command p5sim runs a single workload or a co-scheduled pair on the
// simulated POWER5 core and reports FAME-measured performance. Workloads
// resolve through the unified registry, so a pair may mix families
// (micro-benchmark vs synthetic SPEC) freely.
//
// Usage:
//
//	p5sim -a cpu_int -b ldint_mem -pa 6 -pb 2
//	p5sim -a cpu_int -b mcf            # mixed-family pair
//	p5sim -a mcf -single
//	p5sim -list
//	p5sim -a mcf -b equake -sweep -remote host1:7550,host2:7550
//
// Ctrl-C during -sweep prints the settings measured so far.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"power5prio"

	"power5prio/internal/cmdutil"
	"power5prio/internal/core"
	"power5prio/internal/experiments"
	"power5prio/internal/fame"
	"power5prio/internal/power"
	"power5prio/internal/prio"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		nameA   = flag.String("a", "cpu_int", "first workload (micro-benchmark or SPEC name)")
		nameB   = flag.String("b", "", "second workload; empty with -single for ST mode")
		pa      = flag.Int("pa", 4, "priority of the first workload (1-7)")
		pb      = flag.Int("pb", 4, "priority of the second workload (1-7)")
		single  = flag.Bool("single", false, "run the first workload alone (single-thread mode)")
		reps    = flag.Int("reps", 10, "minimum FAME repetitions per thread")
		workers = flag.Int("workers", 0, "worker pool size for -sweep (0 = all CPU cores)")
		sweep   = flag.Bool("sweep", false, "sweep the pair across all priority differences [-5,+5] as one batch")
		list    = flag.Bool("list", false, "list available workloads and exit")
		showPow = flag.Bool("power", false, "estimate core power with the activity model")
		disasm  = flag.Bool("disasm", false, "print the first workload's loop body and exit")
		remotes = flag.String("remote", "", "run measurements on p5worker processes at host:port[,host:port...] instead of locally")
		est     = flag.String("estimate", "off", cmdutil.EstimateFlagHelp)
		common  = cmdutil.AddCommonFlags("p5sim", flag.CommandLine)
	)
	flag.Parse()
	estMode := cmdutil.ParseEstimate("p5sim", *est)
	store := common.Init()

	if *list {
		fmt.Println("micro-benchmarks:", strings.Join(power5prio.Microbenchmarks(), " "))
		fmt.Println("spec workloads:  ", strings.Join(power5prio.SPECWorkloads(), " "))
		return 0
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	opts := power5prio.DefaultMeasureOptions()
	opts.MinReps = *reps
	sysOpts := []power5prio.Option{
		power5prio.WithMeasureOptions(opts),
		power5prio.WithWorkers(*workers),
		power5prio.WithEstimate(estMode),
	}
	if store != nil {
		// A re-run of the same workloads and settings — including a
		// repeated -sweep — is then served from disk without simulating.
		sysOpts = append(sysOpts, power5prio.WithCache(store))
	}
	if *remotes != "" {
		// Built before profiling starts: an unreachable fleet exits here,
		// and os.Exit must not abandon a live CPU profile.
		sysOpts = append(sysOpts, power5prio.WithBackend(cmdutil.RemoteBackend(ctx, "p5sim", *remotes)))
	}
	defer common.StartProfiles()()
	sys := power5prio.New(power5prio.DefaultConfig(), sysOpts...)

	build := func(name string) *power5prio.Kernel {
		k, err := power5prio.Workload(name)
		if err != nil {
			fmt.Fprintf(os.Stderr, "p5sim: unknown workload %q (try -list)\n", name)
			os.Exit(1)
		}
		return k
	}

	if *disasm {
		fmt.Print(build(*nameA).Disassemble())
		return 0
	}

	if *showPow {
		runWithPower(build(*nameA), buildOrNil(build, *nameB, *single),
			prio.Level(*pa), prio.Level(*pb), *reps)
		return 0
	}

	if *sweep {
		if *nameB == "" {
			fmt.Fprintln(os.Stderr, "p5sim: -sweep needs two workloads (-a and -b)")
			return 2
		}
		return runSweep(ctx, sys, *nameA, *nameB)
	}

	if *single || *nameB == "" {
		res, err := sys.MeasureSingleSpec(ctx, power5prio.Spec{A: *nameA, PA: power5prio.Level(*pa)})
		if err != nil {
			fmt.Fprintln(os.Stderr, "p5sim:", err)
			return 1
		}
		fmt.Printf("%s (single-thread): IPC %.3f, %.0f cycles/rep over %d reps\n",
			*nameA, res.IPC, res.AvgRepCycles, res.Reps)
		return 0
	}

	res, err := sys.Measure(ctx, power5prio.Spec{
		A: *nameA, B: *nameB,
		PA: power5prio.Level(*pa), PB: power5prio.Level(*pb),
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "p5sim:", err)
		return 1
	}
	fmt.Printf("priorities (%d,%d)  decode share %.4f : %.4f\n",
		*pa, *pb, power5prio.Share(*pa-*pb), 1-power5prio.Share(*pa-*pb))
	fmt.Printf("  %-18s IPC %.3f  %.0f cycles/rep  (%d reps)\n",
		*nameA, res.Thread[0].IPC, res.Thread[0].AvgRepCycles, res.Thread[0].Reps)
	fmt.Printf("  %-18s IPC %.3f  %.0f cycles/rep  (%d reps)\n",
		*nameB, res.Thread[1].IPC, res.Thread[1].AvgRepCycles, res.Thread[1].Reps)
	fmt.Printf("  total IPC %.3f over %d cycles\n", res.TotalIPC, res.Cycles)
	if res.TimedOut {
		fmt.Println("  WARNING: measurement hit the cycle budget before converging")
	}
	return 0
}

// runSweep submits the pair at every priority difference in [-5,+5] as
// one batch; independent points simulate concurrently on the worker
// pool. Each row reports the answer tier that served it — simulation,
// cache, or a tier-0 estimate with its error bar. A cancelled sweep
// prints the completed settings. It returns the process exit code.
func runSweep(ctx context.Context, sys *power5prio.System, nameA, nameB string) int {
	diffs := []int{-5, -4, -3, -2, -1, 0, 1, 2, 3, 4, 5}
	specs := make([]power5prio.Spec, len(diffs))
	for i, d := range diffs {
		pa, pb := experiments.DiffPair(d)
		specs[i] = power5prio.Spec{A: nameA, B: nameB, PA: pa, PB: pb}
	}
	results, err := sys.MeasureResults(ctx, specs)
	if err != nil && !errors.Is(err, context.Canceled) {
		fmt.Fprintln(os.Stderr, "p5sim:", err)
		return 1
	}
	fmt.Printf("%-6s %-10s %12s %12s %10s  %s\n", "diff", "priorities", nameA, nameB, "total", "tier")
	done := 0
	for i, r := range results {
		tier := "sim"
		switch {
		case r.Skipped:
			tier = "-"
		case r.Estimated:
			tier = fmt.Sprintf("est ±%.2f", r.ErrorBar)
		case r.CacheHit:
			tier = "cache"
		}
		if !r.Skipped {
			done++
		}
		fmt.Printf("%+-6d (%d,%d)      %12.3f %12.3f %10.3f  %s\n",
			diffs[i], specs[i].PA, specs[i].PB,
			r.Pair.Thread[0].IPC, r.Pair.Thread[1].IPC, r.Pair.TotalIPC, tier)
	}
	fmt.Printf("engine: %s\n", sys.BatchStats())
	if err != nil {
		fmt.Fprintf(os.Stderr, "p5sim: interrupted after %d/%d settings\n", done, len(specs))
		return 130
	}
	return 0
}

// buildOrNil returns nil when running single-threaded.
func buildOrNil(build func(string) *power5prio.Kernel, name string, single bool) *power5prio.Kernel {
	if single || name == "" {
		return nil
	}
	return build(name)
}

// runWithPower runs the workload(s) on a chip directly so the activity
// counters are available for the power model.
func runWithPower(ka, kb *power5prio.Kernel, pa, pb prio.Level, reps int) {
	cfg := core.DefaultConfig()
	ch := core.NewChip(cfg)
	ch.PlacePair(ka, kb, pa, pb, prio.Supervisor)
	opts := fame.DefaultOptions()
	opts.MinReps = reps
	res := fame.Measure(ch, opts)
	rep := power.DefaultModel().Estimate(ch.ExperimentCore(), ch.Hier, cfg.ExperimentCore)
	fmt.Printf("total IPC %.3f  |  power: %s\n", res.TotalIPC, rep)
	for part, e := range rep.ByPart {
		fmt.Printf("  %-7s %12.0f (%.1f%%)\n", part, e, 100*e/rep.Energy)
	}
}
