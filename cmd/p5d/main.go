// Command p5d is the long-running measurement daemon: many concurrent
// clients (p5exp -submit, power5prio.WithService, or raw p5queue/v3
// HTTP) stream job submissions to one shared engine, with admission
// control, weighted round-robin fairness across client IDs, and
// cross-client deduplication — identical jobs from different clients
// simulate once, and with -cache-dir repeat questions are answered
// from disk without simulating at all.
//
// Usage:
//
//	p5d                                         # serve on 127.0.0.1:7551, local pool
//	p5d -cache-dir /var/cache/p5 -workers 8     # persistent cache, bounded pool
//	p5d -remote host1:7550,host2:7550           # execute on a p5worker fleet
//	p5d -fleet -cache-dir /mnt/shared/p5cache   # start empty; workers register
//
// Execution modes: by default jobs simulate on an in-process pool.
// With -remote, jobs fan out across the given p5worker fleet (the
// circuit breaker keeps the daemon serving while individual workers
// die and rejoin). With -fleet (or -remote), workers may also register
// themselves at runtime via POST /v1/register — p5worker -register
// does this and heartbeats it — so the fleet grows without restarting
// the daemon.
//
// Every daemon carries the tier-0 analytical estimator: a submission
// with an estimate spec (service.WithEstimate client-side) is answered
// from the calibrated model when its error bar fits, without
// simulating; -estimate sets the default policy for submissions that
// carry no spec (off keeps the daemon exact, the seed behaviour).
// Estimated results are flagged on the wire with their error bar and
// never enter any cache tier.
//
// GET /v1/stats reports queue depth, tenant count, cache-tier and
// estimator counters, a per-client answer-tier breakdown, and
// per-worker circuit-breaker state. SIGINT/SIGTERM drain
// gracefully: admission stops (503 + Retry-After), in-flight dispatches
// finish, and every open stream ends with its terminal event — queued
// jobs that never ran are handed back as a "drained" event so clients
// resubmit them to the daemon's successor.
//
// -chaos loads a deterministic fault-injection plan (see
// internal/chaos) and applies it to this daemon's execution backend and
// cache store — for resilience testing only.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"syscall"

	"power5prio/internal/analytic"
	"power5prio/internal/chaos"
	"power5prio/internal/cmdutil"
	"power5prio/internal/engine"
	"power5prio/internal/remote"
	"power5prio/internal/service"
)

func main() {
	var (
		listen      = flag.String("listen", "127.0.0.1:7551", "address to serve the p5queue protocol on (host:port; port 0 picks a free port)")
		workers     = flag.Int("workers", 0, "local simulation pool size when not executing remotely (0 = all CPU cores)")
		remotes     = flag.String("remote", "", "execute on a p5worker fleet at host:port[,host:port...] (more workers may register at runtime)")
		fleetMode   = flag.Bool("fleet", false, "start with an empty worker fleet and rely on runtime registration (POST /v1/register)")
		maxQueue    = flag.Int("max-queue", 1024, "admission bound: queued jobs beyond this are rejected with 429")
		weight      = flag.Int("weight", 8, "jobs one tenant contributes per round-robin turn")
		batchMax    = flag.Int("batch-max", 32, "largest dispatch batch handed to the engine at once")
		dispatchers = flag.Int("dispatchers", 2, "concurrent dispatch loops (an interactive job never waits for a bulk batch)")
		jobTimeout  = flag.Duration("job-timeout", 0, "per-job execution deadline within a dispatch (0 = none; deadlined jobs requeue)")
		chaosPlan   = flag.String("chaos", "", "fault-injection plan JSON (see internal/chaos) applied to the backend and cache store")
		quiet       = flag.Bool("quiet", false, "suppress the per-event log lines")
		est         = flag.String("estimate", "off", cmdutil.EstimateFlagHelp+" Sets the default for submissions without their own estimate spec.")
		common      = cmdutil.AddCommonFlags("p5d", flag.CommandLine)
	)
	flag.Parse()
	estMode := cmdutil.ParseEstimate("p5d", *est)
	store := common.Init()
	stopProfiles := common.StartProfiles()

	logf := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "p5d: "+format+"\n", args...)
	}

	var inj *chaos.Injector
	if *chaosPlan != "" {
		plan, err := chaos.Load(*chaosPlan)
		if err != nil {
			logf("%v", err)
			stopProfiles()
			os.Exit(1)
		}
		inj = chaos.NewInjector(plan)
		logf("CHAOS: injecting faults from %s (seed %d, %d rules)", *chaosPlan, plan.Seed, len(plan.Rules))
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// Execution backend: a worker fleet when -remote/-fleet asked for
	// one (sharable, breaker-protected, grown by registration),
	// otherwise the in-process pool. The daemon's cache tiers sit in
	// front either way.
	var fleet *remote.ShardedBackend
	engOpts := []engine.Option{engine.WithStore(store)}
	switch {
	case *remotes != "":
		fleet = cmdutil.RemoteBackend(ctx, "p5d", *remotes)
	case *fleetMode:
		fleet = remote.NewDynamic()
	}
	var backend engine.Backend
	if fleet != nil {
		backend = fleet
	} else if inj != nil {
		// Chaos on a local-pool daemon needs the backend constructed
		// explicitly so the decorator can wrap it.
		backend = engine.NewLocalBackend(*workers, nil)
	}
	if inj != nil {
		backend = chaos.WrapBackend(backend, inj)
		if store != nil {
			store.SetPutHook(chaos.PutHook(inj))
		}
	}
	if backend != nil {
		engOpts = append(engOpts, engine.WithBackend(backend))
	}
	eng := engine.NewWith(*workers, nil, engOpts...)
	// The estimator is always attached — clients opt in per submission
	// even on an exact-by-default daemon; calibration runs lazily, so an
	// estimator nobody consults costs nothing. -estimate only moves the
	// default for spec-less submissions.
	eng.SetEstimator(analytic.New(eng))
	eng.SetEstimateMode(estMode)

	cfg := service.Config{
		MaxQueue:    *maxQueue,
		Weight:      *weight,
		BatchMax:    *batchMax,
		Dispatchers: *dispatchers,
		JobTimeout:  *jobTimeout,
	}
	if !*quiet {
		cfg.Logf = logf
	}
	d := service.New(eng, fleet, cfg)

	lis, err := net.Listen("tcp", *listen)
	if err != nil {
		logf("%v", err)
		stopProfiles()
		os.Exit(1)
	}
	mode := fmt.Sprintf("local pool (%d workers)", eng.Workers())
	if fleet != nil {
		mode = fmt.Sprintf("fleet (%d workers registered)", len(fleet.WorkerStates()))
	}
	cache := "memory-only cache"
	if store != nil {
		cache = "cache dir " + store.Dir()
	}
	logf("serving %s on %s (%s, %s)", service.ProtocolVersion, lis.Addr(), mode, cache)

	// The dispatch loops deliberately do NOT run on the signal context:
	// SIGTERM must drain — finish in-flight dispatches, hand queued work
	// back as drained events — not cancel mid-simulation (which would
	// resolve jobs as skipped). Serve observes the signal, drains and
	// closes the daemon; Run exits on Close, and the cancel below is
	// only a safety net for an errored Serve.
	runCtx, cancelRun := context.WithCancel(context.Background())
	defer cancelRun()
	done := make(chan struct{})
	go func() {
		d.Run(runCtx)
		close(done)
	}()
	err = service.Serve(ctx, lis, d)
	cancelRun()
	<-done // queued work drains before the process exits
	stopProfiles()
	if err != nil {
		logf("%v", err)
		os.Exit(1)
	}
	stats := eng.Stats()
	logf("shut down: engine: %s", stats)
}
