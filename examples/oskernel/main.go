// Why the paper needed a kernel patch (Section 4.3): a stock Linux kernel
// resets thread priorities to MEDIUM on every interrupt, silently eroding
// any priority a program sets. This example measures the erosion.
package main

import (
	"fmt"
	"log"

	"power5prio/internal/core"
	"power5prio/internal/fame"
	"power5prio/internal/microbench"
	"power5prio/internal/oskernel"
	"power5prio/internal/prio"
)

func main() {
	run := func(patched bool) (float64, uint64) {
		k, err := microbench.Build(microbench.CPUInt)
		if err != nil {
			log.Fatal(err)
		}
		ch := core.NewChip(core.DefaultConfig())
		// The program asks for (6,2): 31 of 32 decode slots.
		ch.PlacePair(k, k, prio.High, prio.Low, prio.Supervisor)
		os := oskernel.New(ch, oskernel.Config{
			Patched:       patched,
			TickCycles:    50_000,
			HandlerCycles: 500,
		})
		res := fame.Measure(os, fame.Options{MinReps: 5, WarmupReps: 1, MaxCycles: 100_000_000})
		return res.Thread[0].IPC, os.Resets
	}

	patched, _ := run(true)
	stock, resets := run(false)

	fmt.Printf("prioritized thread at (6,2):\n")
	fmt.Printf("  patched kernel (paper's setup): IPC %.3f\n", patched)
	fmt.Printf("  stock kernel:                   IPC %.3f (%d priority resets)\n", stock, resets)
	fmt.Printf("  erosion: %.1f%%\n", (1-stock/patched)*100)
	fmt.Println("\nThe stock kernel clamps both threads back to MEDIUM at every tick,")
	fmt.Println("so the requested prioritization decays — the reason the paper ships")
	fmt.Println("a kernel patch before measuring anything.")
}
