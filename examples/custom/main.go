// Custom workloads through the unified registry (v2 API): build a
// kernel, register it, and measure it against any workload — built-in
// micro-benchmark, SPEC stand-in or another custom kernel — through the
// same cached batch engine the paper's experiments use. A WithProgress
// callback streams per-measurement completions, and the context makes
// the sweep interruptible (Ctrl-C prints the completed prefix).
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"

	"power5prio"
)

// buildDaxpy assembles a DAXPY-flavoured loop: two streamed loads, a
// fused multiply-add pair, a streamed store.
func buildDaxpy() (*power5prio.Kernel, error) {
	b := power5prio.NewKernelBuilder("daxpy")
	x := b.Reg("x")
	y := b.Reg("y")
	ax := b.Reg("ax")
	sum := b.Reg("sum")
	iter := b.Reg("iter")
	one := b.Reg("one")
	sx := b.Stream(power5prio.StreamSpec{Kind: power5prio.StreamStride, Footprint: 24 << 10, Stride: 8})
	sy := b.Stream(power5prio.StreamSpec{Kind: power5prio.StreamStride, Footprint: 24 << 10, Stride: 8, Base: 1 << 20})
	b.Load(x, sx, power5prio.NoReg)
	b.Load(y, sy, power5prio.NoReg)
	b.Op2(power5prio.OpFPMul, ax, x, x)
	b.Op2(power5prio.OpFPAdd, sum, ax, y)
	b.Store(sy, sum, power5prio.NoReg)
	b.Op2(power5prio.OpIntAdd, iter, iter, one)
	b.Branch(power5prio.BranchLoop, iter)
	return b.Build(256)
}

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	sys := power5prio.New(power5prio.DefaultConfig(),
		power5prio.WithProgress(func(done, total int, sp power5prio.Spec, res power5prio.PairResult) {
			fmt.Printf("  [%d/%d] %-28s total IPC %.3f\n", done, total, sp, res.TotalIPC)
		}))

	k, err := buildDaxpy()
	if err != nil {
		log.Fatal(err)
	}
	if err := sys.RegisterWorkload(k); err != nil {
		log.Fatal(err)
	}

	// One batch mixing all three families against the custom kernel —
	// ST baseline, micro-benchmark partner, SPEC partner — at the default
	// and a prioritized setting. The repeated baseline is a cache hit.
	specs := []power5prio.Spec{
		{A: "daxpy"}, // single-thread baseline
		{A: "daxpy", B: "cpu_int"},
		{A: "daxpy", B: "mcf"},
		{A: "daxpy", B: "cpu_int", PA: power5prio.High, PB: power5prio.Low},
		{A: "daxpy", B: "mcf", PA: power5prio.High, PB: power5prio.Low},
		{A: "daxpy"}, // duplicate: served from the cache
	}
	fmt.Println("measuring daxpy against built-in workloads:")
	results, err := sys.MeasureBatch(ctx, specs)
	if err != nil {
		if errors.Is(err, context.Canceled) {
			fmt.Printf("interrupted: %d/%d measurements completed\n", len(results), len(specs))
			return
		}
		log.Fatal(err)
	}

	st := results[0].Thread[0].IPC
	fmt.Printf("\ndaxpy ST IPC %.3f\n", st)
	fmt.Printf("%-24s %10s %10s %10s\n", "co-run", "daxpy", "partner", "total")
	for i, sp := range specs[1:5] {
		r := results[i+1]
		fmt.Printf("%-24s %10.3f %10.3f %10.3f\n", sp, r.Thread[0].IPC, r.Thread[1].IPC, r.TotalIPC)
	}
	fmt.Printf("\nengine: %s\n", sys.BatchStats())
	fmt.Println("(6 specs, 5 simulations: the duplicate baseline hit the cache;")
	fmt.Println("custom kernels are content-fingerprinted, so they cache like built-ins.)")
}
