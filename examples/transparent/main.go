// Transparent execution (paper Section 5.5, Figure 6): a background
// thread at priority 1 runs almost without affecting a priority-6
// foreground thread — useful free cycles for best-effort work. The whole
// grid — three ST baselines plus three co-runs — is one MeasureBatch.
package main

import (
	"context"
	"fmt"
	"log"

	"power5prio"
)

func main() {
	sys := power5prio.New(power5prio.DefaultConfig())

	foregrounds := []string{"cpu_fp", "lng_chain_cpuint", "ldint_l2"}
	const background = "cpu_int"

	// One batch: each foreground alone (ST baseline), then against the
	// background at (6,1). All six measurements fan out concurrently.
	var specs []power5prio.Spec
	for _, fg := range foregrounds {
		specs = append(specs,
			power5prio.Spec{A: fg}, // single-thread baseline
			power5prio.Spec{A: fg, B: background, PA: power5prio.High, PB: power5prio.VeryLow},
		)
	}
	results, err := sys.MeasureBatch(context.Background(), specs)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("background thread: %s at priority 1 (VERY LOW)\n\n", background)
	fmt.Printf("%-18s %10s %12s %12s %12s\n",
		"foreground", "ST IPC", "fg IPC (6,1)", "fg cost", "bg IPC")
	for i, fg := range foregrounds {
		st := results[2*i].Thread[0]
		pair := results[2*i+1]
		cost := (st.IPC/pair.Thread[0].IPC - 1) * 100
		fmt.Printf("%-18s %10.3f %12.3f %11.1f%% %12.3f\n",
			fg, st.IPC, pair.Thread[0].IPC, cost, pair.Thread[1].IPC)
	}
	fmt.Println("\nThe background thread scavenges one decode slot in 64 and the")
	fmt.Println("foreground loses only a few percent (paper: <10% for most pairs).")
}
