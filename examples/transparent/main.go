// Transparent execution (paper Section 5.5, Figure 6): a background
// thread at priority 1 runs almost without affecting a priority-6
// foreground thread — useful free cycles for best-effort work.
package main

import (
	"fmt"
	"log"

	"power5prio"
)

func main() {
	sys := power5prio.New(power5prio.DefaultConfig())

	foregrounds := []string{"cpu_fp", "lng_chain_cpuint", "ldint_l2"}
	const background = "cpu_int"

	fmt.Printf("background thread: %s at priority 1 (VERY LOW)\n\n", background)
	fmt.Printf("%-18s %10s %12s %12s %12s\n",
		"foreground", "ST IPC", "fg IPC (6,1)", "fg cost", "bg IPC")
	for _, fg := range foregrounds {
		k, err := power5prio.Microbenchmark(fg)
		if err != nil {
			log.Fatal(err)
		}
		st, err := sys.MeasureSingle(k)
		if err != nil {
			log.Fatal(err)
		}
		pair, err := sys.MeasureMicroPair(fg, background,
			power5prio.High, power5prio.VeryLow)
		if err != nil {
			log.Fatal(err)
		}
		cost := (st.IPC/pair.Thread[0].IPC - 1) * 100
		fmt.Printf("%-18s %10.3f %12.3f %11.1f%% %12.3f\n",
			fg, st.IPC, pair.Thread[0].IPC, cost, pair.Thread[1].IPC)
	}
	fmt.Println("\nThe background thread scavenges one decode slot in 64 and the")
	fmt.Println("foreground loses only a few percent (paper: <10% for most pairs).")
}
