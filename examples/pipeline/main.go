// Execution-time case study (paper Section 5.4.1, Table 4): an FFT->LU
// software pipeline with unbalanced stages. Priorities re-balance the
// stages; over-prioritizing inverts the imbalance and hurts.
package main

import (
	"fmt"
	"log"

	"power5prio"
)

func main() {
	sys := power5prio.New(power5prio.DefaultConfig())

	pairs := [][2]power5prio.Level{
		{power5prio.Medium, power5prio.Medium},
		{power5prio.MediumHigh, power5prio.Medium},
		{power5prio.High, power5prio.Medium},
		{power5prio.High, power5prio.MediumLow},
	}

	fmt.Printf("%-10s %12s %12s %12s\n", "priorities", "FFT cycles", "LU cycles", "iteration")
	var base, best float64
	var bestLabel string
	for _, p := range pairs {
		res, err := sys.RunPipeline(p[0], p[1])
		if err != nil {
			log.Fatal(err)
		}
		label := fmt.Sprintf("(%d,%d)", p[0], p[1])
		fmt.Printf("%-10s %12.0f %12.0f %12.0f\n", label, res.Mean.FFT, res.Mean.LU, res.Mean.Iter)
		if base == 0 {
			base, best, bestLabel = res.Mean.Iter, res.Mean.Iter, label
		} else if res.Mean.Iter < best {
			best, bestLabel = res.Mean.Iter, label
		}
	}
	fmt.Printf("\nbest setting %s: %.1f%% faster than the default (4,4);\n",
		bestLabel, (1-best/base)*100)
	fmt.Println("the paper measured 9.3% at its optimum (Table 4).")
}
