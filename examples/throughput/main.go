// Throughput case study (paper Section 5.3.1, Figure 5a): sweep the
// priority of a synthetic h264ref against mcf and find the setting that
// maximizes total IPC.
package main

import (
	"fmt"
	"log"

	"power5prio"
)

func main() {
	sys := power5prio.New(power5prio.DefaultConfig())

	pairs := [][2]power5prio.Level{
		{power5prio.Medium, power5prio.Medium}, // the baseline (4,4)
		{power5prio.MediumHigh, power5prio.Medium},
		{power5prio.High, power5prio.Medium},
		{power5prio.High, power5prio.MediumLow},
		{power5prio.High, power5prio.Low},
		{power5prio.High, power5prio.VeryLow},
	}

	fmt.Printf("%-10s %10s %10s %10s %8s\n", "priorities", "h264ref", "mcf", "total", "gain")
	var base float64
	for _, p := range pairs {
		res, err := sys.MeasureSpecPair("h264ref", "mcf", p[0], p[1])
		if err != nil {
			log.Fatal(err)
		}
		if base == 0 {
			base = res.TotalIPC
		}
		fmt.Printf("(%d,%d)      %10.3f %10.3f %10.3f %+7.1f%%\n",
			p[0], p[1], res.Thread[0].IPC, res.Thread[1].IPC, res.TotalIPC,
			(res.TotalIPC/base-1)*100)
	}
	fmt.Println("\nPrioritizing the high-IPC encoder raises total throughput at the")
	fmt.Println("memory-bound thread's modest expense (paper: +23.7% peak).")
}
