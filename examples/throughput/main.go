// Throughput case study (paper Section 5.3.1, Figure 5a): sweep the
// priority of a synthetic h264ref against mcf and find the setting that
// maximizes total IPC. The whole sweep is submitted as one MeasureBatch
// call: the six settings are independent simulations, so they fan out
// across the worker pool, and the duplicated (4,4) baseline at the end
// of the spec list is a cache hit rather than a seventh simulation.
package main

import (
	"context"
	"fmt"
	"log"

	"power5prio"
)

func main() {
	sys := power5prio.New(power5prio.DefaultConfig())

	pairs := [][2]power5prio.Level{
		{power5prio.Medium, power5prio.Medium}, // the baseline (4,4)
		{power5prio.MediumHigh, power5prio.Medium},
		{power5prio.High, power5prio.Medium},
		{power5prio.High, power5prio.MediumLow},
		{power5prio.High, power5prio.Low},
		{power5prio.High, power5prio.VeryLow},
		{power5prio.Medium, power5prio.Medium}, // baseline again: served from cache
	}

	specs := make([]power5prio.Spec, len(pairs))
	for i, p := range pairs {
		specs[i] = power5prio.Spec{A: "h264ref", B: "mcf", PA: p[0], PB: p[1]}
	}
	results, err := sys.MeasureBatch(context.Background(), specs)
	if err != nil {
		log.Fatal(err)
	}

	base := results[0].TotalIPC
	fmt.Printf("%-10s %10s %10s %10s %8s\n", "priorities", "h264ref", "mcf", "total", "gain")
	for i, p := range pairs[:len(pairs)-1] {
		res := results[i]
		fmt.Printf("(%d,%d)      %10.3f %10.3f %10.3f %+7.1f%%\n",
			p[0], p[1], res.Thread[0].IPC, res.Thread[1].IPC, res.TotalIPC,
			(res.TotalIPC/base-1)*100)
	}
	fmt.Println("\nPrioritizing the high-IPC encoder raises total throughput at the")
	fmt.Println("memory-bound thread's modest expense (paper: +23.7% peak).")
	fmt.Printf("\nbatch engine: %s\n", sys.BatchStats())
}
