// Quickstart: measure how POWER5 software-controlled priorities shift
// performance between two co-scheduled threads, through the v2 Spec API.
package main

import (
	"context"
	"fmt"
	"log"

	"power5prio"
)

func main() {
	ctx := context.Background()
	sys := power5prio.New(power5prio.DefaultConfig())

	// A cpu-bound thread next to a memory-bound thread, first at the
	// hardware default priorities: the zero Spec levels mean Medium (4,4).
	base, err := sys.Measure(ctx, power5prio.Spec{A: "cpu_int", B: "ldint_mem"})
	if err != nil {
		log.Fatal(err)
	}

	// ...then with the cpu-bound thread prioritized to HIGH (6,2): it now
	// receives 31 of every 32 decode slots.
	boosted, err := sys.Measure(ctx, power5prio.Spec{
		A: "cpu_int", B: "ldint_mem",
		PA: power5prio.High, PB: power5prio.Low,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("decode share at +2..+4: R=%d, share=%.4f\n",
		power5prio.R(4), power5prio.Share(4))
	fmt.Printf("%-12s %10s %10s\n", "", "(4,4)", "(6,2)")
	fmt.Printf("%-12s %10.3f %10.3f\n", "cpu_int", base.Thread[0].IPC, boosted.Thread[0].IPC)
	fmt.Printf("%-12s %10.3f %10.3f\n", "ldint_mem", base.Thread[1].IPC, boosted.Thread[1].IPC)
	fmt.Printf("%-12s %10.3f %10.3f\n", "total", base.TotalIPC, boosted.TotalIPC)
	fmt.Printf("\ncpu_int speedup: %.2fx; memory thread barely moves — the\n",
		boosted.Thread[0].IPC/base.Thread[0].IPC)
	fmt.Println("paper's core observation (Section 5.1).")
}
