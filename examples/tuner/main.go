// Auto-tuning extension: hill-climb the priority difference of a pair to
// maximize total IPC, instead of sweeping all eleven settings. The paper's
// guidance ("use differences up to +/-2; prioritize the higher-IPC
// thread") emerges automatically.
package main

import (
	"fmt"
	"log"

	"power5prio"
)

func main() {
	sys := power5prio.New(power5prio.DefaultConfig())
	opts := power5prio.DefaultMeasureOptions()
	opts.MinReps = 4
	sys.SetMeasureOptions(opts)

	pairs := [][2]string{
		{"ldint_l1", "ldint_mem"}, // high-IPC vs memory-bound
		{"cpu_int", "cpu_fp"},     // two compute threads
	}
	for _, p := range pairs {
		r, err := sys.TuneTotalIPC(p[0], p[1])
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s + %s: best difference %+d (total IPC %.3f) after %d measurements %v\n",
			p[0], p[1], r.BestDiff, r.BestValue, r.Evals, r.Trace)
	}
	fmt.Println("\nThe tuner prioritizes the higher-IPC thread and stops at a small")
	fmt.Println("difference — the paper's Section 5.3 rule, discovered automatically.")
}
