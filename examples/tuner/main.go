// Auto-tuning extension: hill-climb the priority difference of a pair to
// maximize total IPC, instead of sweeping all eleven settings. The paper's
// guidance ("use differences up to +/-2; prioritize the higher-IPC
// thread") emerges automatically. Every evaluation routes through the
// batch engine: a step's two candidate neighbours simulate concurrently,
// and the searches share one result cache — revisited settings cost
// nothing, as the engine stats show.
package main

import (
	"context"
	"fmt"
	"log"

	"power5prio"
)

func main() {
	opts := power5prio.DefaultMeasureOptions()
	opts.MinReps = 4
	sys := power5prio.New(power5prio.DefaultConfig(),
		power5prio.WithMeasureOptions(opts))

	ctx := context.Background()
	pairs := [][2]string{
		{"ldint_l1", "ldint_mem"}, // high-IPC vs memory-bound
		{"cpu_int", "cpu_fp"},     // two compute threads
		{"ldint_l1", "mcf"},       // mixed families: micro vs SPEC stand-in
	}
	for _, p := range pairs {
		r, err := sys.TuneTotalIPC(ctx, p[0], p[1])
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s + %s: best difference %+d (total IPC %.3f) after %d measurements %v\n",
			p[0], p[1], r.BestDiff, r.BestValue, r.Evals, r.Trace)
	}
	fmt.Printf("\nengine: %s\n", sys.BatchStats())
	fmt.Println("\nThe tuner prioritizes the higher-IPC thread and stops at a small")
	fmt.Println("difference — the paper's Section 5.3 rule, discovered automatically.")
}
