# Convenience targets; CI runs the same commands.

GO ?= go

# Pinned external lint tools. They are deliberately NOT in go.mod (the
# module builds hermetically with zero dependencies); `make lint-tools`
# installs exactly these versions, which is what CI runs, so local and
# CI results agree. Bump both here, nowhere else.
STATICCHECK_VERSION ?= 2025.1.1
GOVULNCHECK_VERSION ?= v1.1.4

.PHONY: all build test race vet fmt lint lint-fix lint-tools bench bench-smoke regen daemon regen-submit

all: build test lint

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

fmt:
	gofmt -l .

# lint is the static-analysis gate: the repo's own p5lint multichecker
# (detmap, nowallclock, keyhash, ctxflow — see README "Static
# analysis"), then staticcheck and govulncheck when installed (CI
# always installs them via lint-tools; offline checkouts skip them
# with a note rather than failing).
lint:
	$(GO) run ./cmd/p5lint ./...
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "lint: staticcheck not installed; run 'make lint-tools' (skipping)"; \
	fi
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./...; \
	else \
		echo "lint: govulncheck not installed; run 'make lint-tools' (skipping)"; \
	fi

# lint-fix applies p5lint's suggested fixes (e.g. detmap's
# sort-after-loop repair) in place, then reports what remains.
lint-fix:
	$(GO) run ./cmd/p5lint -fix ./...

# lint-tools installs the pinned external linters (network required).
lint-tools:
	$(GO) install honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION)
	$(GO) install golang.org/x/vuln/cmd/govulncheck@$(GOVULNCHECK_VERSION)

# bench writes the committed perf reports: raw step throughput, A/B
# fast-forward speedups on the memory-bound regimes, per-experiment
# quick regeneration times, and the tier-0 estimator document
# (BENCH_estimator.json: model-vs-simulator speedup and residuals over
# the calibration matrix). Two simulator baselines are committed because
# fast-forward speedups depend on run length: the full report tracks
# the PR-over-PR trajectory, the quick report is what CI's quick runs
# are gated against; the estimator section always runs at the golden
# quick fidelity, so one estimator baseline serves both. Run on a quiet
# machine and commit all three.
bench:
	$(GO) run ./cmd/p5bench -out BENCH_simulator.json
	$(GO) run ./cmd/p5bench -quick -out BENCH_simulator_quick.json -estimator-out ""

# bench-smoke is the CI-sized variant (seconds, not minutes); it also
# asserts fast-forward results are identical to stepped results and
# gates against the committed quick baselines: a >20% machine-normalized
# fast-forward throughput regression, a tier-0 residual past the
# committed tolerance, or a halved estimator speedup fails the build.
bench-smoke:
	$(GO) run ./cmd/p5bench -quick -out /tmp/BENCH_simulator.json -compare BENCH_simulator_quick.json \
		-estimator-out /tmp/BENCH_estimator.json -estimator-compare BENCH_estimator.json

regen:
	$(GO) run ./cmd/p5exp -exp all -quick

# daemon runs a local p5d measurement daemon with a persistent cache —
# the quickest way to try the service loop. In another terminal, point
# clients at it with `make regen-submit` (or any `p5exp -submit` /
# `p5sim` invocation, or power5prio.WithService).
daemon:
	$(GO) run ./cmd/p5d -cache-dir /tmp/p5dcache

# regen-submit is regen through a local `make daemon`: concurrent
# invocations dedup against each other, repeats are pure cache hits.
regen-submit:
	$(GO) run ./cmd/p5exp -exp all -quick -submit 127.0.0.1:7551
