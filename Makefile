# Convenience targets; CI runs the same commands.

GO ?= go

.PHONY: all build test race vet fmt bench bench-smoke regen

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

fmt:
	gofmt -l .

# bench writes the committed perf reports: raw step throughput, A/B
# fast-forward speedups on the memory-bound regimes, and per-experiment
# quick regeneration times. Two baselines are committed because
# fast-forward speedups depend on run length: the full report tracks
# the PR-over-PR trajectory, the quick report is what CI's quick runs
# are gated against. Run on a quiet machine and commit both.
bench:
	$(GO) run ./cmd/p5bench -out BENCH_simulator.json
	$(GO) run ./cmd/p5bench -quick -out BENCH_simulator_quick.json

# bench-smoke is the CI-sized variant (seconds, not minutes); it also
# asserts fast-forward results are identical to stepped results and
# gates against the committed quick baseline: a >20% machine-normalized
# fast-forward throughput regression fails the build.
bench-smoke:
	$(GO) run ./cmd/p5bench -quick -out /tmp/BENCH_simulator.json -compare BENCH_simulator_quick.json

regen:
	$(GO) run ./cmd/p5exp -exp all -quick
