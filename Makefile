# Convenience targets; CI runs the same commands.

GO ?= go

.PHONY: all build test race vet fmt bench bench-smoke regen

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

fmt:
	gofmt -l .

# bench writes the committed perf report: raw step throughput, A/B
# fast-forward speedups on the memory-bound regimes, and per-experiment
# quick regeneration times. Run on a quiet machine and commit the result
# so the perf trajectory is reviewable PR over PR.
bench:
	$(GO) run ./cmd/p5bench -out BENCH_simulator.json

# bench-smoke is the CI-sized variant (seconds, not minutes); it also
# asserts fast-forward results are identical to stepped results.
bench-smoke:
	$(GO) run ./cmd/p5bench -quick -out /tmp/BENCH_simulator.json

regen:
	$(GO) run ./cmd/p5exp -exp all -quick
