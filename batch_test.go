package power5prio

import (
	"context"
	"errors"
	"runtime"
	"strings"
	"testing"
	"time"
)

// batchSystem shrinks measurements further than quickSystem: batch tests
// run several sweeps.
func batchSystem(options ...Option) *System {
	options = append([]Option{WithMeasureOptions(
		MeasureOptions{MinReps: 2, WarmupReps: 0, MaxCycles: 60_000_000})}, options...)
	return New(DefaultConfig(), options...)
}

// TestMeasureBatchMatchesSerial: a batch returns exactly what the direct
// chip-level API returns, independent of worker count.
func TestMeasureBatchMatchesSerial(t *testing.T) {
	specs := []Spec{
		{A: "cpu_int", B: "ldint_l1", PA: High, PB: Medium},
		{A: "cpu_int", B: "ldint_l1"},                       // zero levels: the Medium default
		{A: "cpu_int"},                                      // single-thread
		{A: "cpu_int", B: "ldint_l1", PA: High, PB: Medium}, // duplicate: cache hit
	}

	for _, workers := range []int{1, 8} {
		s := batchSystem(WithWorkers(workers))
		got, err := s.MeasureBatch(context.Background(), specs)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(got) != len(specs) {
			t.Fatalf("workers=%d: %d results, want %d", workers, len(got), len(specs))
		}

		ref := batchSystem()
		a, err := Microbenchmark("cpu_int")
		if err != nil {
			t.Fatal(err)
		}
		b, err := Microbenchmark("ldint_l1")
		if err != nil {
			t.Fatal(err)
		}
		pair, err := ref.MeasurePair(a, b, High, Medium)
		if err != nil {
			t.Fatal(err)
		}
		if got[0] != pair {
			t.Errorf("workers=%d: batch pair differs from MeasurePair\nbatch  %+v\nserial %+v",
				workers, got[0], pair)
		}
		base, err := ref.MeasurePair(a, b, Medium, Medium)
		if err != nil {
			t.Fatal(err)
		}
		if got[1] != base {
			t.Errorf("workers=%d: zero-level spec differs from explicit (4,4) MeasurePair", workers)
		}
		if got[3] != got[0] {
			t.Errorf("workers=%d: duplicate spec returned a different result", workers)
		}
		if !got[2].Thread[0].Active || got[2].Thread[1].Active {
			t.Errorf("workers=%d: single-thread spec thread states: %+v", workers, got[2].Thread)
		}

		st := s.BatchStats()
		if st.Submitted != 4 || st.Simulated != 3 || st.Hits != 1 {
			t.Errorf("workers=%d: stats %+v, want {Submitted:4 Simulated:3 Hits:1}", workers, st)
		}
	}
}

// TestCustomKernelEquivalence: a custom kernel measured through the
// registry/batch path is bit-identical to the direct MeasurePair path.
func TestCustomKernelEquivalence(t *testing.T) {
	build := func() *Kernel {
		b := NewKernelBuilder("batch_custom")
		a := b.Reg("a")
		v := b.Reg("v")
		s := b.Stream(StreamSpec{Kind: StreamStride, Footprint: 8 << 10, Stride: 128})
		b.Load(v, s, NoReg)
		b.Op2(OpIntAdd, a, a, v)
		b.Branch(BranchLoop, a)
		k, err := b.Build(16)
		if err != nil {
			t.Fatal(err)
		}
		return k
	}

	s := batchSystem()
	k := build()
	if err := s.RegisterWorkload(k); err != nil {
		t.Fatal(err)
	}
	partner, err := Microbenchmark("cpu_int")
	if err != nil {
		t.Fatal(err)
	}
	direct, err := s.MeasurePair(k, partner, High, Low)
	if err != nil {
		t.Fatal(err)
	}
	viaRegistry, err := s.Measure(context.Background(), Spec{A: "batch_custom", B: "cpu_int", PA: High, PB: Low})
	if err != nil {
		t.Fatal(err)
	}
	if viaRegistry != direct {
		t.Errorf("registry/batch path differs from direct MeasurePair\nbatch  %+v\ndirect %+v",
			viaRegistry, direct)
	}

	// The registered kernel flows through the engine cache like built-ins.
	before := s.BatchStats()
	again, err := s.Measure(context.Background(), Spec{A: "batch_custom", B: "cpu_int", PA: High, PB: Low})
	if err != nil {
		t.Fatal(err)
	}
	after := s.BatchStats()
	if again != direct {
		t.Error("cached custom measurement differs")
	}
	if after.Hits != before.Hits+1 || after.Simulated != before.Simulated {
		t.Errorf("repeat custom spec not served from cache: %+v -> %+v", before, after)
	}

	// Workloads() lists the registration; re-registering same content is
	// a no-op, different content is rejected.
	found := false
	for _, n := range s.Workloads() {
		if n == "batch_custom" {
			found = true
		}
	}
	if !found {
		t.Error("Workloads() does not list the custom kernel")
	}
	if err := s.RegisterWorkload(build()); err != nil {
		t.Errorf("idempotent re-register failed: %v", err)
	}
	b2 := NewKernelBuilder("batch_custom")
	a2 := b2.Reg("a")
	b2.Op2(OpIntAdd, a2, a2, a2)
	b2.Branch(BranchLoop, a2)
	k2, err := b2.Build(32)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.RegisterWorkload(k2); err == nil {
		t.Error("conflicting registration did not error")
	}
	if err := s.RegisterWorkload(nil); err == nil {
		t.Error("RegisterWorkload accepted nil")
	}
}

// TestMixedFamilyEquivalence: a mixed micro/SPEC pair through the v2 API
// equals a hand-built cross-family chip run — and flows through the
// cache, which the old per-family BatchSpec API structurally forbade.
func TestMixedFamilyEquivalence(t *testing.T) {
	s := batchSystem()
	a, err := Microbenchmark("cpu_int")
	if err != nil {
		t.Fatal(err)
	}
	b, err := SPECWorkload("mcf")
	if err != nil {
		t.Fatal(err)
	}
	direct, err := s.MeasurePair(a, b, High, Medium)
	if err != nil {
		t.Fatal(err)
	}

	mixed, err := s.Measure(context.Background(), Spec{A: "cpu_int", B: "mcf", PA: High, PB: Medium})
	if err != nil {
		t.Fatalf("mixed-family spec rejected: %v", err)
	}
	if mixed != direct {
		t.Errorf("mixed-family batch differs from hand-built chip run\nbatch %+v\nchip  %+v", mixed, direct)
	}

	// Cache flow: the duplicate mixed spec is a hit (BatchStats counts).
	before := s.BatchStats()
	res, err := s.MeasureBatch(context.Background(), []Spec{
		{A: "cpu_int", B: "mcf", PA: High, PB: Medium},
		{A: "mcf", B: "cpu_int", PA: High, PB: Medium}, // reversed: a distinct job
	})
	if err != nil {
		t.Fatal(err)
	}
	after := s.BatchStats()
	if res[0] != direct {
		t.Error("cached mixed result differs")
	}
	if after.Hits != before.Hits+1 {
		t.Errorf("mixed duplicate not a cache hit: %+v -> %+v", before, after)
	}
	if after.Simulated != before.Simulated+1 {
		t.Errorf("reversed mixed pair should simulate once: %+v -> %+v", before, after)
	}
}

// TestSpecValidation: the v2 Spec makes the level default explicit and
// rejects invalid levels — the BatchSpec zero-value ambiguity regression
// test.
func TestSpecValidation(t *testing.T) {
	s := batchSystem()
	ctx := context.Background()

	// Zero levels mean Medium, for pairs AND singles: the zero-value pair
	// must equal the explicit (4,4) pair (the historical API silently ran
	// (0,0) = both threads off).
	imp, err := s.Measure(ctx, Spec{A: "cpu_int", B: "ldint_l1"})
	if err != nil {
		t.Fatal(err)
	}
	exp, err := s.Measure(ctx, Spec{A: "cpu_int", B: "ldint_l1", PA: Medium, PB: Medium})
	if err != nil {
		t.Fatal(err)
	}
	if imp != exp {
		t.Error("zero-level spec differs from explicit Medium levels")
	}
	if st := s.BatchStats(); st.Hits != 1 {
		t.Errorf("implicit and explicit defaults are distinct cache keys: %+v", st)
	}

	for _, tc := range []struct {
		name string
		sp   Spec
		want string
	}{
		{"empty", Spec{}, "workload name"},
		{"unknown A", Spec{A: "nope"}, "unknown workload"},
		{"unknown B", Spec{A: "cpu_int", B: "nope"}, "unknown workload"},
		{"PA too high", Spec{A: "cpu_int", B: "ldint_l1", PA: 8}, "invalid priority PA"},
		{"PA negative", Spec{A: "cpu_int", B: "ldint_l1", PA: -1}, "invalid priority PA"},
		{"PB too high", Spec{A: "cpu_int", B: "ldint_l1", PB: 9}, "invalid priority PB"},
		{"PB on single", Spec{A: "cpu_int", PB: 3}, "no second workload"},
		{"PA invalid on single", Spec{A: "cpu_int", PA: 11}, "invalid priority PA"},
	} {
		_, err := s.Measure(ctx, tc.sp)
		if err == nil {
			t.Errorf("%s: spec %+v accepted", tc.name, tc.sp)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}

	if _, err := s.MeasureSingleSpec(ctx, Spec{A: "cpu_int", B: "ldint_l1"}); err == nil {
		t.Error("MeasureSingleSpec accepted a pair spec")
	}
	st, err := s.MeasureSingleSpec(ctx, Spec{A: "cpu_int", PA: High})
	if err != nil {
		t.Fatal(err)
	}
	if st.IPC <= 0 {
		t.Errorf("single-spec measurement made no progress: %+v", st)
	}
}

// waitGoroutines polls until the goroutine count drops back to the
// baseline (the engine's workers exit asynchronously after Run returns).
func waitGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= base {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Errorf("goroutines leaked: %d running, baseline %d", runtime.NumGoroutine(), base)
}

// TestMeasureBatchCancellation: a cancelled batch returns exactly the
// completed prefix, wraps context.Canceled, leaks no goroutines, and a
// retry resumes from the cache.
func TestMeasureBatchCancellation(t *testing.T) {
	base := runtime.NumGoroutine()

	specs := []Spec{
		{A: "cpu_int", B: "ldint_l1", PA: High, PB: Medium},
		{A: "cpu_int", B: "ldint_l1", PA: MediumHigh, PB: Medium},
		{A: "cpu_int", B: "ldint_l1", PA: Medium, PB: Medium},
		{A: "cpu_int", B: "ldint_l1", PA: MediumLow, PB: Medium},
		{A: "cpu_int", B: "ldint_l1", PA: Low, PB: Medium},
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	const stopAfter = 2
	var progressed []Spec
	firstRun := true // the callback fires for the retry batch too
	s := batchSystem(WithWorkers(1), WithProgress(func(done, total int, sp Spec, res PairResult) {
		if !firstRun {
			return
		}
		if total != len(specs) {
			t.Errorf("progress total = %d, want %d", total, len(specs))
		}
		if done != len(progressed)+1 {
			t.Errorf("progress done = %d out of order", done)
		}
		progressed = append(progressed, sp)
		if done == stopAfter {
			cancel()
		}
	}))

	partial, err := s.MeasureBatch(ctx, specs)
	if err == nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled batch error = %v, want context.Canceled", err)
	}
	if len(partial) < stopAfter || len(partial) >= len(specs) {
		t.Fatalf("partial results = %d, want in [%d,%d)", len(partial), stopAfter, len(specs))
	}
	if len(progressed) != len(partial) {
		t.Errorf("progress reported %d measurements, partial has %d", len(progressed), len(partial))
	}

	// The prefix is exactly what a fresh serial run of those specs yields.
	ref := batchSystem()
	want, err := ref.MeasureBatch(context.Background(), specs[:len(partial)])
	if err != nil {
		t.Fatal(err)
	}
	for i := range partial {
		if partial[i] != want[i] {
			t.Errorf("prefix result %d differs from uncancelled reference", i)
		}
	}

	// Retry on the same System: completed work is cache hits.
	firstRun = false
	before := s.BatchStats()
	full, err := s.MeasureBatch(context.Background(), specs)
	if err != nil {
		t.Fatal(err)
	}
	after := s.BatchStats()
	if len(full) != len(specs) {
		t.Fatalf("retry returned %d results", len(full))
	}
	if hits := after.Hits - before.Hits; hits != len(partial) {
		t.Errorf("retry reused %d cached measurements, want %d", hits, len(partial))
	}
	if before.Skipped == 0 {
		t.Errorf("stats do not count skipped jobs: %+v", before)
	}

	waitGoroutines(t, base)
}

// TestMeasureMatrix: the public matrix sweep returns complete, reusable
// cells, accepts mixed families, and validates its inputs.
func TestMeasureMatrix(t *testing.T) {
	s := batchSystem()
	ctx := context.Background()
	names := []string{"cpu_int", "mcf"} // mixed: micro + SPEC stand-in
	m, err := s.MeasureMatrix(ctx, names, names, []int{0, 2})
	if err != nil {
		t.Fatal(err)
	}
	if m.Partial {
		t.Error("complete matrix marked Partial")
	}
	for _, p := range names {
		if m.SingleIPC[p] <= 0 {
			t.Errorf("SingleIPC[%s] = %v", p, m.SingleIPC[p])
		}
		for _, q := range names {
			if m.At(p, q, 2).Primary <= 0 {
				t.Errorf("cell (%s,%s,+2) empty", p, q)
			}
		}
	}
	if rel := m.RelPrimary("cpu_int", "mcf", 2); rel <= 0 {
		t.Errorf("RelPrimary = %v", rel)
	}

	if _, err := s.MeasureMatrix(ctx, []string{"nope"}, names, []int{0}); err == nil {
		t.Error("unknown primary did not error")
	}
	if _, err := s.MeasureMatrix(ctx, names, names, []int{7}); err == nil {
		t.Error("out-of-range diff did not error")
	}
}

// TestMeasureMatrixCancellation: cancelling mid-sweep returns the partial
// matrix without deadlock, and the measured cells survive.
func TestMeasureMatrixCancellation(t *testing.T) {
	base := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	const stopAfter = 3
	done := 0
	s := batchSystem(WithWorkers(1), WithProgress(func(d, total int, sp Spec, res PairResult) {
		done = d
		if d == stopAfter {
			cancel()
		}
	}))
	names := []string{"cpu_int", "ldint_l1"}
	diffs := []int{0, 2, -2}
	m, err := s.MeasureMatrix(ctx, names, names, diffs)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled matrix error = %v", err)
	}
	if m == nil || !m.Partial {
		t.Fatal("cancelled matrix missing or not Partial")
	}
	measured := len(m.SingleIPC)
	for _, p := range names {
		for _, q := range names {
			for _, d := range diffs {
				if m.Has(p, q, d) {
					measured++
				}
			}
		}
	}
	total := len(names) * (1 + len(names)*len(diffs))
	if measured == 0 || measured >= total {
		t.Errorf("partial matrix holds %d/%d entries, want a strict subset", measured, total)
	}
	if done == 0 {
		t.Error("progress callback never fired")
	}
	waitGoroutines(t, base)
}

// TestTuneTotalIPCThroughEngine: the tuner routes its evaluations through
// the batch engine — re-tuning the same pair simulates nothing new.
func TestTuneTotalIPCThroughEngine(t *testing.T) {
	if testing.Short() {
		t.Skip("tuning runs many simulations")
	}
	s := batchSystem()
	ctx := context.Background()
	r1, err := s.TuneTotalIPC(ctx, "ldint_l1", "ldint_mem")
	if err != nil {
		t.Fatal(err)
	}
	st1 := s.BatchStats()
	if st1.Simulated == 0 || st1.Submitted != r1.Evals {
		t.Errorf("tuner bypassed the engine: stats %+v, evals %d", st1, r1.Evals)
	}

	r2, err := s.TuneTotalIPC(ctx, "ldint_l1", "ldint_mem")
	if err != nil {
		t.Fatal(err)
	}
	st2 := s.BatchStats()
	if st2.Simulated != st1.Simulated {
		t.Errorf("re-tune simulated %d new jobs, want 0 (cache)", st2.Simulated-st1.Simulated)
	}
	if r2.BestDiff != r1.BestDiff || r2.BestValue != r1.BestValue {
		t.Errorf("re-tune diverged: %+v vs %+v", r2, r1)
	}

	// Cancellation aborts the search.
	cctx, cancel := context.WithCancel(ctx)
	cancel()
	if _, err := s.TuneTotalIPC(cctx, "cpu_int", "cpu_fp"); !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled TuneTotalIPC returned %v", err)
	}
}

// TestDeprecatedWrappersStillWork: the v1 surface measures identically to
// the v2 path it wraps.
func TestDeprecatedWrappersStillWork(t *testing.T) {
	s := batchSystem()
	viaOld, err := s.MeasureMicroPair("cpu_int", "ldint_l1", High, Medium)
	if err != nil {
		t.Fatal(err)
	}
	viaNew, err := s.Measure(context.Background(), Spec{A: "cpu_int", B: "ldint_l1", PA: High, PB: Medium})
	if err != nil {
		t.Fatal(err)
	}
	if viaOld != viaNew {
		t.Error("MeasureMicroPair differs from the v2 Measure path")
	}

	if _, err := s.MeasureSpecPair("h264ref", "mcf", Medium, Medium); err != nil {
		t.Errorf("MeasureSpecPair: %v", err)
	}
	s.SetWorkers(2) // deprecated setters must keep functioning
	s.SetPrivilege(Supervisor)
	var bs BatchSpec // deprecated alias of Spec
	bs.A = "cpu_int"
	if _, err := s.Measure(context.Background(), bs); err != nil {
		t.Errorf("BatchSpec alias broken: %v", err)
	}
}
