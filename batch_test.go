package power5prio

import "testing"

// batchSystem shrinks measurements further than quickSystem: batch tests
// run several sweeps.
func batchSystem() *System {
	s := New(DefaultConfig())
	s.SetMeasureOptions(MeasureOptions{MinReps: 2, WarmupReps: 0, MaxCycles: 60_000_000})
	return s
}

// TestMeasureBatchMatchesSerial: a batch returns exactly what the serial
// per-pair API returns, independent of worker count.
func TestMeasureBatchMatchesSerial(t *testing.T) {
	specs := []BatchSpec{
		{A: "cpu_int", B: "ldint_l1", PA: High, PB: Medium},
		{A: "cpu_int", B: "ldint_l1", PA: Medium, PB: Medium},
		{A: "cpu_int"}, // single-thread
		{A: "cpu_int", B: "ldint_l1", PA: High, PB: Medium}, // duplicate: cache hit
	}

	for _, workers := range []int{1, 8} {
		s := batchSystem()
		s.SetWorkers(workers)
		got, err := s.MeasureBatch(specs)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(got) != len(specs) {
			t.Fatalf("workers=%d: %d results, want %d", workers, len(got), len(specs))
		}

		ref := batchSystem()
		pair, err := ref.MeasureMicroPair("cpu_int", "ldint_l1", High, Medium)
		if err != nil {
			t.Fatal(err)
		}
		if got[0] != pair {
			t.Errorf("workers=%d: batch pair differs from MeasureMicroPair\nbatch  %+v\nserial %+v",
				workers, got[0], pair)
		}
		if got[3] != got[0] {
			t.Errorf("workers=%d: duplicate spec returned a different result", workers)
		}
		if !got[2].Thread[0].Active || got[2].Thread[1].Active {
			t.Errorf("workers=%d: single-thread spec thread states: %+v", workers, got[2].Thread)
		}

		st := s.BatchStats()
		if st.Submitted != 4 || st.Simulated != 3 || st.Hits != 1 {
			t.Errorf("workers=%d: stats %+v, want {Submitted:4 Simulated:3 Hits:1}", workers, st)
		}
	}
}

// TestMeasureBatchSpecWorkloads: SPEC names resolve, and mixed-family
// pairs are rejected.
func TestMeasureBatchSpecWorkloads(t *testing.T) {
	s := batchSystem()
	res, err := s.MeasureBatch([]BatchSpec{{A: "h264ref", B: "mcf", PA: High, PB: Medium}})
	if err != nil {
		t.Fatal(err)
	}
	if res[0].TotalIPC <= 0 {
		t.Errorf("SPEC batch made no progress: %+v", res[0])
	}

	if _, err := s.MeasureBatch([]BatchSpec{{A: "cpu_int", B: "mcf", PA: Medium, PB: Medium}}); err == nil {
		t.Error("mixed micro/SPEC pair did not error")
	}
	if _, err := s.MeasureBatch([]BatchSpec{{A: "unknown_wl", B: "mcf"}}); err == nil {
		t.Error("unknown workload did not error")
	}
	if _, err := s.MeasureBatch([]BatchSpec{{}}); err == nil {
		t.Error("empty spec did not error")
	}
}

// TestMeasureMatrix: the public matrix sweep returns complete, reusable
// cells and validates its inputs.
func TestMeasureMatrix(t *testing.T) {
	s := batchSystem()
	names := []string{"cpu_int", "ldint_l1"}
	m, err := s.MeasureMatrix(names, names, []int{0, 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range names {
		if m.SingleIPC[p] <= 0 {
			t.Errorf("SingleIPC[%s] = %v", p, m.SingleIPC[p])
		}
		for _, q := range names {
			if m.At(p, q, 2).Primary <= 0 {
				t.Errorf("cell (%s,%s,+2) empty", p, q)
			}
		}
	}
	if rel := m.RelPrimary("cpu_int", "ldint_l1", 2); rel <= 0 {
		t.Errorf("RelPrimary = %v", rel)
	}

	if _, err := s.MeasureMatrix([]string{"nope"}, names, []int{0}); err == nil {
		t.Error("unknown primary did not error")
	}
	if _, err := s.MeasureMatrix(names, names, []int{7}); err == nil {
		t.Error("out-of-range diff did not error")
	}
}
