// Package power5prio is a simulation study of the IBM POWER5
// software-controlled thread priority mechanism, reproducing Boneti et al.,
// "Software-Controlled Priority Characterization of POWER5 Processor"
// (ISCA 2008) on a cycle-approximate simulator.
//
// The package exposes:
//
//   - the priority mechanism itself (levels, privilege rules, or-nop
//     encodings, the R = 2^(|diff|+1) decode-slot formula),
//   - a POWER5-like chip simulator (two SMT cores, shared GCT, typed
//     dispatch groups, issue queues, caches/TLB/DRAM, hardware resource
//     balancing),
//   - the paper's workloads (fifteen micro-benchmarks, synthetic SPEC
//     stand-ins, the FFT/LU software pipeline) and the FAME measurement
//     methodology,
//   - every table and figure of the paper's evaluation as a regenerable
//     experiment.
//
// Measurements go through one unified workload registry: a Spec names any
// two workloads — micro-benchmark, synthetic SPEC stand-in or a custom
// kernel registered with RegisterWorkload, mixed freely — and every
// measurement path (Measure, MeasureBatch, MeasureMatrix, TuneTotalIPC)
// submits engine jobs that fan out across a worker pool and memoize in a
// content-keyed result cache. Batches take a context: cancelling it
// returns the completed prefix of results, and the finished work stays
// cached for a retry. Execution is pluggable: WithRemoteWorkers shards
// batches across p5worker processes on other machines, and WithService
// submits them to a shared p5d measurement daemon that queues, fairly
// schedules and deduplicates jobs across many concurrent clients — in
// every case with results byte-identical to local runs.
//
// Quick start:
//
//	sys := power5prio.New(power5prio.DefaultConfig())
//	res, err := sys.Measure(ctx, power5prio.Spec{
//	    A: "cpu_int", B: "mcf",
//	    PA: power5prio.High, PB: power5prio.Medium,
//	})
//
// See examples/ for complete programs.
package power5prio

import (
	"context"
	"errors"
	"fmt"

	"power5prio/internal/analytic"
	"power5prio/internal/apps"
	"power5prio/internal/cachestore"
	"power5prio/internal/core"
	"power5prio/internal/engine"
	"power5prio/internal/experiments"
	"power5prio/internal/fame"
	"power5prio/internal/isa"
	"power5prio/internal/microbench"
	"power5prio/internal/prio"
	"power5prio/internal/remote"
	"power5prio/internal/service"
	"power5prio/internal/spec"
	"power5prio/internal/tuner"
	"power5prio/internal/workload"
)

// Level is a software-controlled thread priority (0-7), re-exported from
// the priority engine.
type Level = prio.Level

// The eight architected priority levels (Table 1 of the paper).
const (
	ThreadOff  = prio.ThreadOff
	VeryLow    = prio.VeryLow
	Low        = prio.Low
	MediumLow  = prio.MediumLow
	Medium     = prio.Medium
	MediumHigh = prio.MediumHigh
	High       = prio.High
	VeryHigh   = prio.VeryHigh
)

// Privilege is the execution privilege attempting a priority change.
type Privilege = prio.Privilege

// Privilege levels.
const (
	User       = prio.User
	Supervisor = prio.Supervisor
	Hypervisor = prio.Hypervisor
)

// Kernel is a workload: a loop body of instruction templates with memory
// streams, executed repeatedly. Build custom kernels with NewKernelBuilder.
type Kernel = isa.Kernel

// KernelBuilder assembles custom workloads from virtual-register loop
// bodies; see the isa package documentation for the instruction set.
type KernelBuilder = isa.Builder

// NewKernelBuilder returns a builder for a custom workload kernel.
func NewKernelBuilder(name string) *KernelBuilder { return isa.NewBuilder(name) }

// Op is an instruction class for custom kernels.
type Op = isa.Op

// Instruction classes usable with KernelBuilder.
const (
	OpNop     = isa.OpNop
	OpIntAdd  = isa.OpIntAdd
	OpIntMul  = isa.OpIntMul
	OpIntDiv  = isa.OpIntDiv
	OpFPAdd   = isa.OpFPAdd
	OpFPMul   = isa.OpFPMul
	OpLoad    = isa.OpLoad
	OpStore   = isa.OpStore
	OpBranch  = isa.OpBranch
	OpPrioSet = isa.OpPrioSet
)

// Branch kinds for KernelBuilder.Branch.
const (
	BranchLoop    = isa.BranchLoop
	BranchPattern = isa.BranchPattern
)

// StreamSpec describes a custom kernel's memory stream (footprint,
// addressing kind, stride).
type StreamSpec = isa.StreamSpec

// Address-stream kinds.
const (
	StreamChase  = isa.StreamChase
	StreamStride = isa.StreamStride
	StreamRandom = isa.StreamRandom
)

// NoReg marks an unused register operand in builder calls.
const NoReg = isa.Reg(-1)

// Config configures the simulated chip. The zero value is not useful; use
// DefaultConfig (published POWER5 parameters) and adjust fields.
type Config = core.Config

// DefaultConfig returns the POWER5-like default chip configuration.
func DefaultConfig() Config { return core.DefaultConfig() }

// MeasureOptions controls FAME measurements.
type MeasureOptions = fame.Options

// DefaultMeasureOptions mirrors the paper's methodology: MAIV 1%, at least
// ten repetitions per thread.
func DefaultMeasureOptions() MeasureOptions { return fame.DefaultOptions() }

// ThreadResult is a per-thread measurement (average repetition time in
// cycles and average accumulated IPC, computed the FAME way).
type ThreadResult = fame.ThreadResult

// PairResult is a co-scheduled measurement of two threads.
type PairResult = fame.PairResult

// Share returns the long-run fraction of decode slots the primary thread
// receives at priority difference diff, per the paper's equation (1).
func Share(diff int) float64 { return prio.Share(diff) }

// R returns the decode window size 2^(|diff|+1) of equation (1).
func R(diff int) int { return prio.R(diff) }

// Permitted reports whether the privilege may set the level (Table 1).
func Permitted(l Level, p Privilege) bool { return prio.Permitted(l, p) }

// OrNopRegister returns the register X of the `or X,X,X` encoding that
// requests the level, and whether one exists.
func OrNopRegister(l Level) (int, bool) { return prio.OrNopRegister(l) }

// DecodeOrNop maps an or-nop register number back to the level it
// requests.
func DecodeOrNop(reg int) (Level, bool) { return prio.DecodeOrNop(reg) }

// Microbenchmarks lists the paper's fifteen micro-benchmarks (Table 2).
func Microbenchmarks() []string { return microbench.Names() }

// SPECWorkloads lists the synthetic SPEC stand-ins used by the case
// studies (h264ref, mcf, applu, equake).
func SPECWorkloads() []string { return spec.Names() }

// Microbenchmark builds one of the paper's micro-benchmarks by name.
func Microbenchmark(name string) (*Kernel, error) { return microbench.Build(name) }

// SPECWorkload builds one of the synthetic SPEC workloads by name.
func SPECWorkload(name string) (*Kernel, error) { return spec.Build(name) }

// Workload builds any built-in workload by name: micro-benchmarks first,
// then the synthetic SPEC stand-ins — the same resolution order every
// Spec uses.
func Workload(name string) (*Kernel, error) {
	r := workload.NewRegistry()
	ref, err := r.Resolve(name)
	if err != nil {
		return nil, fmt.Errorf("power5prio: %w", err)
	}
	return r.Build(ref, 1.0)
}

// Progress receives per-measurement completion notifications during
// batch runs configured with WithProgress: done counts measurements
// finished so far (cache hits included), total is the batch size, and
// spec/res identify the finished measurement. Calls are serialized;
// measurements a cancelled batch never ran are not reported. Note that
// on cancellation a reported measurement may land after an earlier spec
// that was skipped, in which case it is not part of the completed
// prefix MeasureBatch returns (it is still cached for a retry).
type Progress func(done, total int, spec Spec, res PairResult)

// Option configures a System at construction.
type Option func(*System)

// WithWorkers bounds the concurrency of batch measurements (n <= 0 = all
// CPU cores, the default).
func WithWorkers(n int) Option { return func(s *System) { s.workers = n } }

// WithMeasureOptions replaces the FAME options used by measurements
// (default: DefaultMeasureOptions, the paper's methodology).
func WithMeasureOptions(o MeasureOptions) Option { return func(s *System) { s.opts = o } }

// WithPrivilege sets the software privilege for in-stream priority
// changes (default: Supervisor, the paper's patched kernel).
func WithPrivilege(p Privilege) Option { return func(s *System) { s.priv = p } }

// WithProgress installs a per-measurement progress callback for batch
// runs — the hook a tuner or a long sweep uses to report liveness and to
// decide when to cancel the batch's context.
func WithProgress(fn Progress) Option { return func(s *System) { s.progress = fn } }

// Cache is a disk-backed, versioned result store: measurements keyed by
// a stable content hash of the job that produced them, shared between
// Systems and surviving process restarts. Entries carry per-entry
// checksums; anything corrupt is detected, recomputed and rewritten.
// Open one with OpenCache and attach it with WithCache.
type Cache = cachestore.Store

// CacheInfo summarizes a Cache's contents (entry count and bytes).
type CacheInfo = cachestore.Info

// OpenCache creates (if needed) and opens the persistent result cache
// rooted at dir. Multiple Systems — and multiple processes — may share
// one cache directory.
func OpenCache(dir string) (*Cache, error) {
	c, err := cachestore.Open(dir)
	if err != nil {
		return nil, fmt.Errorf("power5prio: %w", err)
	}
	return c, nil
}

// WithCache attaches an opened persistent result cache as the second
// cache tier behind the System's in-memory one: measurements missing in
// memory are served from disk when an earlier run — in this process or a
// previous one — already simulated them, and newly simulated results are
// written back.
func WithCache(c *Cache) Option { return func(s *System) { s.store = c } }

// WithCacheDir is WithCache over OpenCache(dir): the idiomatic way to
// make a System's measurements persistent when no error handling or
// cache administration is needed at open time. If the directory cannot
// be opened, the System is still constructed but every measurement
// returns the open error (a cache the caller asked for must not be
// silently dropped).
func WithCacheDir(dir string) Option { return func(s *System) { s.cacheDir = dir } }

// EstimateMode selects how a measurement may be answered by tier 0 —
// the analytical estimator — instead of simulation: off (the default,
// exact answers only), tolerance-τ (estimates accepted while the
// model's error bar stays within τ, escalating to simulation
// otherwise), or always. See the README's "Answer tiers" section for
// the contract: estimated results are flagged, carry an error bar, and
// never enter any cache tier.
type EstimateMode = engine.EstimateMode

// EstimateOff requests exact answers only (the default).
func EstimateOff() EstimateMode { return engine.EstimateOff() }

// EstimateTolerance accepts tier-0 answers whose error bar is at most
// tol (absolute per-thread IPC); anything less certain simulates.
// tol <= 0 behaves exactly like EstimateOff.
func EstimateTolerance(tol float64) EstimateMode { return engine.EstimateTolerance(tol) }

// EstimateAlways accepts every tier-0 answer the model can produce;
// only jobs outside the model's domain simulate.
func EstimateAlways() EstimateMode { return engine.EstimateAlways() }

// DefaultEstimateTolerance returns the loosest residual bound the
// analytical model commits to — the tolerance at which every in-domain
// pair measurement is served by tier 0.
func DefaultEstimateTolerance() float64 { return analytic.DefaultTolerance() }

// WithEstimate sets the System's default estimate mode. Every System
// carries the analytical estimator (calibrations run lazily, once per
// workload, and persist in the System's cache when it has one); this
// option decides whether batches accept its answers by default.
// Individual specs override the default with Spec.Estimate.
func WithEstimate(m EstimateMode) Option { return func(s *System) { s.estMode = m } }

// Backend executes measurement batches on behalf of a System: the
// in-process worker pool by default, a fleet of remote workers with
// WithRemoteWorkers, or any custom engine.Backend implementation. Every
// backend returns bit-identical results for the same measurement, so
// swapping backends never changes what a System reports — only where
// and how fast the simulations run.
type Backend = engine.Backend

// WithBackend routes the System's simulations through the given
// execution backend. The System's cache tiers (in-memory, and
// WithCache/WithCacheDir when configured) stay local, in front of the
// backend: only unique uncached measurements reach it.
func WithBackend(b Backend) Option { return func(s *System) { s.backend = b } }

// WithRemoteWorkers shards the System's simulations across p5worker
// processes listening at the given addresses (host:port, or full
// http:// URLs). Batches fan out across the fleet with work-stealing
// scheduling and per-worker in-flight limits; a worker failing mid-batch
// is excluded and its jobs retried on the survivors; results are
// byte-identical to local execution for any fleet size or failure
// interleaving. Custom kernels registered with RegisterWorkload cannot
// travel over the wire and fail with a clear error; built-in workloads
// shard freely. Worker liveness is probed lazily per batch — use
// engine/remote.ShardedBackend.Healthy via WithBackend for an upfront
// check.
func WithRemoteWorkers(addrs ...string) Option {
	return func(s *System) { s.backend = remote.New(addrs...) }
}

// WithService routes the System's simulations through a p5d measurement
// daemon at addr (host:port, or a full http:// URL) speaking the
// p5queue/v3 protocol. Unlike WithRemoteWorkers — where this process
// owns the fleet — the daemon is shared: it queues submissions from
// many concurrent clients with per-client fair scheduling, deduplicates
// identical in-flight jobs across clients, and answers repeats from its
// own cache tiers. The System's local cache tiers stay in front, so
// only locally-unknown measurements travel. Results are byte-identical
// to local execution; the same custom-kernel restriction as
// WithRemoteWorkers applies (registered kernels cannot travel over the
// wire).
func WithService(addr string) Option {
	return func(s *System) { s.backend = service.NewClient(addr) }
}

// System is a configured simulator factory: each measurement runs on a
// fresh chip so results are independent and deterministic. All
// measurements resolve workload names in the System's registry and go
// through an internal worker-pool engine that runs independent
// simulations concurrently and caches results by content, so repeated
// jobs are simulated once; results are bit-identical for any worker
// count.
type System struct {
	cfg      Config
	opts     MeasureOptions
	priv     Privilege
	workers  int
	progress Progress
	store    *Cache
	cacheDir string
	cacheErr error
	backend  Backend
	estMode  EstimateMode
	eng      *engine.Engine
}

// New returns a System with the given chip configuration, configured by
// functional options. The defaults follow the paper's methodology:
// FAME measurement options, supervisor privilege for in-stream priority
// changes (the paper's patched kernel), and all CPU cores for batch
// measurements.
func New(cfg Config, options ...Option) *System {
	s := &System{cfg: cfg, opts: DefaultMeasureOptions(), priv: Supervisor}
	for _, o := range options {
		o(s)
	}
	if s.store == nil && s.cacheDir != "" {
		s.store, s.cacheErr = cachestore.Open(s.cacheDir)
	}
	engOpts := []engine.Option{engine.WithStore(s.store)}
	if s.backend != nil {
		engOpts = append(engOpts, engine.WithBackend(s.backend))
	}
	s.eng = engine.NewWith(s.workers, nil, engOpts...)
	// Every System carries the analytical estimator; the mode (off by
	// default) decides whether any batch consults it.
	s.eng.SetEstimator(analytic.New(s.eng))
	s.eng.SetEstimateMode(s.estMode)
	return s
}

// Cache returns the System's persistent result cache (nil when the
// System caches in memory only).
func (s *System) Cache() *Cache { return s.store }

// cacheReady surfaces a WithCacheDir open failure: measurements on a
// System whose requested cache could not be opened fail rather than
// silently running uncached.
func (s *System) cacheReady() error {
	if s.cacheErr != nil {
		return fmt.Errorf("power5prio: cache dir %q: %w", s.cacheDir, s.cacheErr)
	}
	return nil
}

// SetMeasureOptions replaces the FAME options used by measurements.
//
// Deprecated: pass WithMeasureOptions to New. Mutating a System mid-life
// changes the cache keys of subsequent measurements.
func (s *System) SetMeasureOptions(o MeasureOptions) { s.opts = o }

// SetPrivilege sets the software privilege for in-stream priority changes.
//
// Deprecated: pass WithPrivilege to New.
func (s *System) SetPrivilege(p Privilege) { s.priv = p }

// SetWorkers bounds the concurrency of batch measurements (n <= 0 = all
// CPU cores). The result cache is retained across the change.
//
// Deprecated: pass WithWorkers to New.
func (s *System) SetWorkers(n int) { s.eng.SetWorkers(n) }

// RegisterWorkload adds a custom kernel to the System's workload
// registry under the kernel's own name, making it usable in any Spec —
// alone, or paired with any other workload. The kernel is fingerprinted
// by content so its measurements cache like the built-ins. Registration
// fails if the name shadows a built-in workload or a different kernel is
// already registered under it; re-registering the same kernel is a no-op.
func (s *System) RegisterWorkload(k *Kernel) error {
	_, err := s.eng.Registry().Register(k)
	if err != nil {
		return fmt.Errorf("power5prio: %w", err)
	}
	return nil
}

// Workloads lists every workload name a Spec can use on this System:
// the built-in families plus registered custom kernels, sorted.
func (s *System) Workloads() []string { return s.eng.Registry().Names() }

// BatchStats reports the batch engine's lifetime counters: jobs
// submitted, jobs actually simulated, cache hits, and jobs skipped by
// cancelled batches — plus, on a System with a persistent cache, the
// disk tier's hit/miss/write counters.
type BatchStats = engine.Stats

// BatchStats returns a snapshot of the engine counters.
func (s *System) BatchStats() BatchStats { return s.eng.Stats() }

// Spec names one measurement: workload A co-scheduled with workload B at
// priorities (PA, PB), or A alone in single-thread mode when B is empty.
// Names resolve in the System's unified registry — micro-benchmarks,
// synthetic SPEC stand-ins and registered custom kernels, mixed freely.
//
// A zero priority means "the hardware default, Medium (4)" — explicitly,
// so the zero Spec value measures the conventional (4,4) co-run. Levels
// outside [1,7] are rejected; ThreadOff (0) cannot be requested for a
// running thread (leave B empty to keep the sibling thread off).
type Spec struct {
	A, B   string
	PA, PB Level
	// Estimate overrides the System's default estimate mode for this
	// spec only (EstimateDefault inherits WithEstimate). The choice is
	// not part of the measurement's identity: it selects which answer
	// tier may serve the spec, never what the exact answer would be.
	Estimate EstimateChoice
	// EstimateTol is the error-bar tolerance for EstimateWithin
	// (absolute per-thread IPC); it must be positive with
	// EstimateWithin and zero otherwise.
	EstimateTol float64
}

// EstimateChoice is a Spec's per-measurement estimate selection.
type EstimateChoice int

const (
	// EstimateDefault inherits the System's WithEstimate mode.
	EstimateDefault EstimateChoice = iota
	// EstimateNever demands an exact answer for this spec.
	EstimateNever
	// EstimateWithin accepts a tier-0 answer when its error bar is at
	// most the spec's EstimateTol.
	EstimateWithin
	// EstimateForce accepts any tier-0 answer the model can produce.
	EstimateForce
)

// String renders the spec for diagnostics, showing zero levels as the
// Medium default they mean.
func (sp Spec) String() string {
	if sp.B == "" {
		return fmt.Sprintf("%s(ST)", sp.A)
	}
	pa, pb := sp.PA, sp.PB
	if pa == 0 {
		pa = Medium
	}
	if pb == 0 {
		pb = Medium
	}
	return fmt.Sprintf("%s+%s(%d,%d)", sp.A, sp.B, pa, pb)
}

// normalize validates a spec and applies the explicit defaults.
func (sp Spec) normalize() (Spec, error) {
	if sp.A == "" {
		return Spec{}, errors.New("power5prio: Spec needs a workload name in A")
	}
	level := func(field string, l Level) (Level, error) {
		switch {
		case l == 0:
			return Medium, nil // the explicit default
		case l >= 1 && l <= 7:
			return l, nil
		default:
			return 0, fmt.Errorf("power5prio: spec %s: invalid priority %s=%d (running threads take levels 1-7; 0 selects the Medium default)",
				sp, field, l)
		}
	}
	switch sp.Estimate {
	case EstimateDefault, EstimateNever, EstimateForce:
		if sp.EstimateTol != 0 {
			return Spec{}, fmt.Errorf("power5prio: spec %s: EstimateTol=%v is only meaningful with EstimateWithin", sp, sp.EstimateTol)
		}
	case EstimateWithin:
		if sp.EstimateTol <= 0 {
			return Spec{}, fmt.Errorf("power5prio: spec %s: EstimateWithin needs a positive EstimateTol, got %v", sp, sp.EstimateTol)
		}
	default:
		return Spec{}, fmt.Errorf("power5prio: spec %s: invalid EstimateChoice %d", sp, sp.Estimate)
	}
	var err error
	if sp.PA, err = level("PA", sp.PA); err != nil {
		return Spec{}, err
	}
	if sp.B == "" {
		if sp.PB != 0 {
			return Spec{}, fmt.Errorf("power5prio: single-workload spec %q sets PB=%d but has no second workload", sp.A, sp.PB)
		}
		return sp, nil
	}
	if sp.PB, err = level("PB", sp.PB); err != nil {
		return Spec{}, err
	}
	return sp, nil
}

// job translates a normalized spec into an engine job.
func (s *System) job(sp Spec) (engine.Job, error) {
	sp, err := sp.normalize()
	if err != nil {
		return engine.Job{}, err
	}
	reg := s.eng.Registry()
	refA, err := reg.Resolve(sp.A)
	if err != nil {
		return engine.Job{}, fmt.Errorf("power5prio: %w", err)
	}
	if sp.B == "" {
		j := engine.Single(refA, s.priv, 1.0, s.cfg, s.opts)
		j.PrioP = sp.PA
		return j, nil
	}
	refB, err := reg.Resolve(sp.B)
	if err != nil {
		return engine.Job{}, fmt.Errorf("power5prio: %w", err)
	}
	return engine.Pair(refA, refB, sp.PA, sp.PB, s.priv, 1.0, s.cfg, s.opts), nil
}

// specOf reconstructs the user-facing spec of an engine job for progress
// reporting.
func specOf(j engine.Job) Spec {
	sp := Spec{A: j.Primary.Name, PA: j.PrioP}
	if !j.Secondary.IsZero() {
		sp.B = j.Secondary.Name
		sp.PB = j.PrioS
	}
	return sp
}

// progressFunc adapts the System's Progress hook to the engine callback.
func (s *System) progressFunc(total int) func(int, engine.Result) {
	if s.progress == nil {
		return nil
	}
	done := 0 // engine callbacks are serialized
	return func(_ int, r engine.Result) {
		if r.Err != nil {
			return
		}
		done++
		s.progress(done, total, specOf(r.Job), r.Pair)
	}
}

// isCancel reports whether an error came from a cancelled batch context.
func isCancel(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// Measure runs one spec (nil ctx = background). Identical specs measured
// earlier on this System are served from the result cache.
func (s *System) Measure(ctx context.Context, sp Spec) (PairResult, error) {
	res, err := s.MeasureBatch(ctx, []Spec{sp})
	if err != nil {
		return PairResult{}, err
	}
	return res[0], nil
}

// MeasureSingleSpec measures spec.A alone and returns the active
// thread's result (a Measure convenience for single-thread specs).
func (s *System) MeasureSingleSpec(ctx context.Context, sp Spec) (ThreadResult, error) {
	if sp.B != "" {
		return ThreadResult{}, fmt.Errorf("power5prio: MeasureSingleSpec needs a single-workload spec, got %s", sp)
	}
	res, err := s.Measure(ctx, sp)
	if err != nil {
		return ThreadResult{}, err
	}
	return res.Thread[0], nil
}

// MeasureBatch runs a batch of measurements concurrently on the worker
// pool and returns results in submission order. Identical specs — within
// the batch or across earlier batches on this System — are simulated
// once and served from the cache; results are bit-identical to running
// each spec alone, regardless of the worker count.
//
// Cancelling ctx stops the batch: in-flight measurements finish (and are
// cached), and MeasureBatch returns the completed prefix of results
// together with an error wrapping the context's. A WithProgress callback
// observes every completed measurement as it lands.
func (s *System) MeasureBatch(ctx context.Context, specs []Spec) ([]PairResult, error) {
	if err := s.cacheReady(); err != nil {
		return nil, err
	}
	jobs, modes, err := s.jobsAndModes(specs)
	if err != nil {
		return nil, err
	}
	results := s.eng.RunEstimate(ctx, jobs, modes, s.progressFunc(len(jobs)))
	out := make([]PairResult, 0, len(specs))
	for i, r := range results {
		if r.Err != nil {
			if isCancel(r.Err) {
				return out, fmt.Errorf("power5prio: batch cancelled after %d/%d measurements: %w", len(out), len(specs), r.Err)
			}
			return nil, fmt.Errorf("power5prio: batch job %d (%s): %w", i, specs[i], r.Err)
		}
		out = append(out, r.Pair)
	}
	return out, nil
}

// jobsAndModes translates specs into engine jobs plus their per-job
// estimate modes. The modes slice is nil when every spec inherits the
// System default — the exact code path a System without estimation has
// always taken.
func (s *System) jobsAndModes(specs []Spec) ([]engine.Job, []EstimateMode, error) {
	jobs := make([]engine.Job, len(specs))
	var modes []EstimateMode
	for i, sp := range specs {
		j, err := s.job(sp)
		if err != nil {
			return nil, nil, err
		}
		jobs[i] = j
		if sp.Estimate == EstimateDefault {
			continue
		}
		if modes == nil {
			modes = make([]EstimateMode, len(specs))
			for k := range modes {
				modes[k] = s.estMode
			}
		}
		switch sp.Estimate {
		case EstimateNever:
			modes[i] = EstimateOff()
		case EstimateWithin:
			modes[i] = EstimateTolerance(sp.EstimateTol)
		case EstimateForce:
			modes[i] = EstimateAlways()
		}
	}
	return jobs, modes, nil
}

// MeasureResult is a measurement with its full provenance: the Pair
// value plus how it was answered — CacheHit, Coalesced, Skipped, or
// Estimated with its ErrorBar. MeasureResults returns these;
// MeasureBatch returns just the Pair values.
type MeasureResult = engine.Result

// MeasureResults runs a batch like MeasureBatch but returns the full
// per-measurement provenance, which is how a caller distinguishes an
// exact answer from a tier-0 estimate and reads its error bar. One
// result is returned per spec, in order; a cancelled batch marks the
// unfinished measurements Skipped with the context's error and also
// returns that error.
func (s *System) MeasureResults(ctx context.Context, specs []Spec) ([]MeasureResult, error) {
	if err := s.cacheReady(); err != nil {
		return nil, err
	}
	jobs, modes, err := s.jobsAndModes(specs)
	if err != nil {
		return nil, err
	}
	results := s.eng.RunEstimate(ctx, jobs, modes, s.progressFunc(len(jobs)))
	for i, r := range results {
		if r.Err != nil {
			if isCancel(r.Err) {
				return results, fmt.Errorf("power5prio: batch cancelled: %w", r.Err)
			}
			return nil, fmt.Errorf("power5prio: batch job %d (%s): %w", i, specs[i], r.Err)
		}
	}
	return results, nil
}

// MatrixResult is a full priority-difference sweep: co-run measurements
// for every (primary, secondary) pair at every difference, plus
// single-thread IPCs, with the relative-performance accessors the
// paper's figures use (At, RelPrimary, RelTotal).
type MatrixResult = experiments.MatrixResult

// MeasureMatrix sweeps every (primary, secondary) workload pair at every
// priority difference in diffs (each in [-5,+5], mapped to the paper's
// level pairs), plus each primary alone in ST mode. Names resolve in the
// System's registry, so the axes may mix micro-benchmarks, SPEC
// stand-ins and registered custom kernels. The whole matrix is submitted
// to the worker pool as one batch.
//
// Cancelling ctx returns the partial matrix (Partial set; measured cells
// intact, the rest absent) together with an error wrapping the
// context's — and the completed cells stay cached, so re-running the
// sweep resumes rather than restarts.
func (s *System) MeasureMatrix(ctx context.Context, primaries, secondaries []string, diffs []int) (*MatrixResult, error) {
	if err := s.cacheReady(); err != nil {
		return nil, err
	}
	reg := s.eng.Registry()
	for _, names := range [][]string{primaries, secondaries} {
		for _, n := range names {
			if _, err := reg.Resolve(n); err != nil {
				return nil, fmt.Errorf("power5prio: %w", err)
			}
		}
	}
	for _, d := range diffs {
		if d < -5 || d > 5 {
			return nil, fmt.Errorf("power5prio: priority difference %d out of range [-5,5]", d)
		}
	}
	h := s.harness()
	total := len(primaries) * (1 + len(secondaries)*len(diffs))
	if fn := s.progressFunc(total); fn != nil {
		h.Progress = func(r engine.Result) { fn(0, r) }
	}
	m, err := experiments.RunMatrix(ctx, h, primaries, secondaries, diffs)
	if err != nil {
		return m, fmt.Errorf("power5prio: matrix cancelled: %w", err)
	}
	return m, nil
}

// harness builds the experiments harness sharing this System's engine.
func (s *System) harness() experiments.Harness {
	return experiments.Harness{
		Chip:      s.cfg,
		Fame:      s.opts,
		IterScale: 1.0,
		Privilege: s.priv,
		Engine:    s.eng,
	}
}

// MeasurePair co-schedules two kernels on one SMT core at the given
// priorities and measures both threads. This is the direct, uncached
// reference path: the engine's batch results are defined to be
// bit-identical to it. Prefer RegisterWorkload + Measure, which caches.
func (s *System) MeasurePair(a, b *Kernel, pa, pb Level) (PairResult, error) {
	if a == nil || b == nil {
		return PairResult{}, fmt.Errorf("power5prio: MeasurePair needs two kernels")
	}
	if err := a.Validate(); err != nil {
		return PairResult{}, err
	}
	if err := b.Validate(); err != nil {
		return PairResult{}, err
	}
	ch := core.NewChip(s.cfg)
	ch.PlacePair(a, b, pa, pb, s.priv)
	return fame.Measure(ch, s.opts), nil
}

// MeasureSingle runs one kernel alone on the core (single-thread mode),
// uncached; see MeasurePair.
func (s *System) MeasureSingle(k *Kernel) (ThreadResult, error) {
	if k == nil {
		return ThreadResult{}, fmt.Errorf("power5prio: MeasureSingle needs a kernel")
	}
	if err := k.Validate(); err != nil {
		return ThreadResult{}, err
	}
	ch := core.NewChip(s.cfg)
	ch.PlacePair(k, nil, Medium, Medium, s.priv)
	return fame.Measure(ch, s.opts).Thread[0], nil
}

// MeasureMicroPair is MeasurePair over named micro-benchmarks.
//
// Deprecated: use Measure with a Spec — it accepts the same names, runs
// through the cache, and is not limited to one workload family.
func (s *System) MeasureMicroPair(nameA, nameB string, pa, pb Level) (PairResult, error) {
	a, err := microbench.Build(nameA)
	if err != nil {
		return PairResult{}, err
	}
	b, err := microbench.Build(nameB)
	if err != nil {
		return PairResult{}, err
	}
	return s.MeasurePair(a, b, pa, pb)
}

// MeasureSpecPair is MeasurePair over named synthetic SPEC workloads.
//
// Deprecated: use Measure with a Spec — it accepts the same names, runs
// through the cache, and is not limited to one workload family.
func (s *System) MeasureSpecPair(nameA, nameB string, pa, pb Level) (PairResult, error) {
	a, err := spec.Build(nameA)
	if err != nil {
		return PairResult{}, err
	}
	b, err := spec.Build(nameB)
	if err != nil {
		return PairResult{}, err
	}
	return s.MeasurePair(a, b, pa, pb)
}

// BatchSpec is the pre-registry name of Spec.
//
// Deprecated: use Spec. Note the semantic fix that came with it: a zero
// priority now always means Medium — the historical BatchSpec silently
// reinterpreted PA=0 that way for single-workload specs only, while a
// pair at (0,0) meant the nonsensical both-threads-off placement.
type BatchSpec = Spec

// PipelineResult is the outcome of an FFT/LU software-pipeline run.
type PipelineResult = apps.Result

// RunPipeline simulates the paper's FFT/LU execution-time case study at
// the given stage priorities.
func (s *System) RunPipeline(prioFFT, prioLU Level) (PipelineResult, error) {
	cfg := apps.DefaultConfig()
	cfg.Chip = s.cfg
	return apps.Run(cfg, prioFFT, prioLU)
}

// TuneResult reports an automatic priority search.
type TuneResult = tuner.Result

// TuneTotalIPC hill-climbs the priority difference of a workload pair to
// maximize total IPC (extension beyond the paper). Differences map to
// level pairs the way the paper's sweeps do ((5,4), (6,4), (6,3), ...).
// The names may come from any registered family. Every evaluation goes
// through the batch engine: a step's candidate neighbours simulate
// concurrently, and settings revisited by this or any earlier search on
// the System are cache hits. Cancelling ctx aborts the search.
func (s *System) TuneTotalIPC(ctx context.Context, nameA, nameB string) (TuneResult, error) {
	eval := func(diffs []int) ([]float64, error) {
		specs := make([]Spec, len(diffs))
		for i, d := range diffs {
			pa, pb := experiments.DiffPair(d)
			specs[i] = Spec{A: nameA, B: nameB, PA: pa, PB: pb}
		}
		res, err := s.MeasureBatch(ctx, specs)
		if err != nil {
			return nil, err
		}
		out := make([]float64, len(res))
		for i, r := range res {
			out[i] = r.TotalIPC
		}
		return out, nil
	}
	return tuner.HillClimb(eval, 0, -5, 5)
}
