// Package power5prio is a simulation study of the IBM POWER5
// software-controlled thread priority mechanism, reproducing Boneti et al.,
// "Software-Controlled Priority Characterization of POWER5 Processor"
// (ISCA 2008) on a cycle-approximate simulator.
//
// The package exposes:
//
//   - the priority mechanism itself (levels, privilege rules, or-nop
//     encodings, the R = 2^(|diff|+1) decode-slot formula),
//   - a POWER5-like chip simulator (two SMT cores, shared GCT, typed
//     dispatch groups, issue queues, caches/TLB/DRAM, hardware resource
//     balancing),
//   - the paper's workloads (fifteen micro-benchmarks, synthetic SPEC
//     stand-ins, the FFT/LU software pipeline) and the FAME measurement
//     methodology,
//   - every table and figure of the paper's evaluation as a regenerable
//     experiment.
//
// Quick start:
//
//	sys := power5prio.New(power5prio.DefaultConfig())
//	res, err := sys.MeasureMicroPair("cpu_int", "ldint_mem",
//	    power5prio.High, power5prio.Medium)
//
// See examples/ for complete programs.
package power5prio

import (
	"fmt"

	"power5prio/internal/apps"
	"power5prio/internal/core"
	"power5prio/internal/experiments"
	"power5prio/internal/fame"
	"power5prio/internal/isa"
	"power5prio/internal/microbench"
	"power5prio/internal/prio"
	"power5prio/internal/spec"
	"power5prio/internal/tuner"
)

// Level is a software-controlled thread priority (0-7), re-exported from
// the priority engine.
type Level = prio.Level

// The eight architected priority levels (Table 1 of the paper).
const (
	ThreadOff  = prio.ThreadOff
	VeryLow    = prio.VeryLow
	Low        = prio.Low
	MediumLow  = prio.MediumLow
	Medium     = prio.Medium
	MediumHigh = prio.MediumHigh
	High       = prio.High
	VeryHigh   = prio.VeryHigh
)

// Privilege is the execution privilege attempting a priority change.
type Privilege = prio.Privilege

// Privilege levels.
const (
	User       = prio.User
	Supervisor = prio.Supervisor
	Hypervisor = prio.Hypervisor
)

// Kernel is a workload: a loop body of instruction templates with memory
// streams, executed repeatedly. Build custom kernels with NewKernelBuilder.
type Kernel = isa.Kernel

// KernelBuilder assembles custom workloads from virtual-register loop
// bodies; see the isa package documentation for the instruction set.
type KernelBuilder = isa.Builder

// NewKernelBuilder returns a builder for a custom workload kernel.
func NewKernelBuilder(name string) *KernelBuilder { return isa.NewBuilder(name) }

// Op is an instruction class for custom kernels.
type Op = isa.Op

// Instruction classes usable with KernelBuilder.
const (
	OpNop     = isa.OpNop
	OpIntAdd  = isa.OpIntAdd
	OpIntMul  = isa.OpIntMul
	OpIntDiv  = isa.OpIntDiv
	OpFPAdd   = isa.OpFPAdd
	OpFPMul   = isa.OpFPMul
	OpLoad    = isa.OpLoad
	OpStore   = isa.OpStore
	OpBranch  = isa.OpBranch
	OpPrioSet = isa.OpPrioSet
)

// Branch kinds for KernelBuilder.Branch.
const (
	BranchLoop    = isa.BranchLoop
	BranchPattern = isa.BranchPattern
)

// StreamSpec describes a custom kernel's memory stream (footprint,
// addressing kind, stride).
type StreamSpec = isa.StreamSpec

// Address-stream kinds.
const (
	StreamChase  = isa.StreamChase
	StreamStride = isa.StreamStride
	StreamRandom = isa.StreamRandom
)

// NoReg marks an unused register operand in builder calls.
const NoReg = isa.Reg(-1)

// Config configures the simulated chip. The zero value is not useful; use
// DefaultConfig (published POWER5 parameters) and adjust fields.
type Config = core.Config

// DefaultConfig returns the POWER5-like default chip configuration.
func DefaultConfig() Config { return core.DefaultConfig() }

// MeasureOptions controls FAME measurements.
type MeasureOptions = fame.Options

// DefaultMeasureOptions mirrors the paper's methodology: MAIV 1%, at least
// ten repetitions per thread.
func DefaultMeasureOptions() MeasureOptions { return fame.DefaultOptions() }

// ThreadResult is a per-thread measurement (average repetition time in
// cycles and average accumulated IPC, computed the FAME way).
type ThreadResult = fame.ThreadResult

// PairResult is a co-scheduled measurement of two threads.
type PairResult = fame.PairResult

// Share returns the long-run fraction of decode slots the primary thread
// receives at priority difference diff, per the paper's equation (1).
func Share(diff int) float64 { return prio.Share(diff) }

// R returns the decode window size 2^(|diff|+1) of equation (1).
func R(diff int) int { return prio.R(diff) }

// Permitted reports whether the privilege may set the level (Table 1).
func Permitted(l Level, p Privilege) bool { return prio.Permitted(l, p) }

// OrNopRegister returns the register X of the `or X,X,X` encoding that
// requests the level, and whether one exists.
func OrNopRegister(l Level) (int, bool) { return prio.OrNopRegister(l) }

// DecodeOrNop maps an or-nop register number back to the level it
// requests.
func DecodeOrNop(reg int) (Level, bool) { return prio.DecodeOrNop(reg) }

// Microbenchmarks lists the paper's fifteen micro-benchmarks (Table 2).
func Microbenchmarks() []string { return microbench.Names() }

// SPECWorkloads lists the synthetic SPEC stand-ins used by the case
// studies (h264ref, mcf, applu, equake).
func SPECWorkloads() []string { return spec.Names() }

// Microbenchmark builds one of the paper's micro-benchmarks by name.
func Microbenchmark(name string) (*Kernel, error) { return microbench.Build(name) }

// SPECWorkload builds one of the synthetic SPEC workloads by name.
func SPECWorkload(name string) (*Kernel, error) { return spec.Build(name) }

// System is a configured simulator factory: each measurement runs on a
// fresh chip so results are independent and deterministic.
type System struct {
	cfg  Config
	opts MeasureOptions
	priv Privilege
}

// New returns a System with the given chip configuration and the paper's
// measurement methodology. In-stream priority changes run with supervisor
// privilege (the paper's patched kernel).
func New(cfg Config) *System {
	return &System{cfg: cfg, opts: DefaultMeasureOptions(), priv: Supervisor}
}

// SetMeasureOptions replaces the FAME options used by measurements.
func (s *System) SetMeasureOptions(o MeasureOptions) { s.opts = o }

// SetPrivilege sets the software privilege for in-stream priority changes.
func (s *System) SetPrivilege(p Privilege) { s.priv = p }

// MeasurePair co-schedules two kernels on one SMT core at the given
// priorities and measures both threads.
func (s *System) MeasurePair(a, b *Kernel, pa, pb Level) (PairResult, error) {
	if a == nil || b == nil {
		return PairResult{}, fmt.Errorf("power5prio: MeasurePair needs two kernels")
	}
	if err := a.Validate(); err != nil {
		return PairResult{}, err
	}
	if err := b.Validate(); err != nil {
		return PairResult{}, err
	}
	ch := core.NewChip(s.cfg)
	ch.PlacePair(a, b, pa, pb, s.priv)
	return fame.Measure(ch, s.opts), nil
}

// MeasureSingle runs one kernel alone on the core (single-thread mode).
func (s *System) MeasureSingle(k *Kernel) (ThreadResult, error) {
	if k == nil {
		return ThreadResult{}, fmt.Errorf("power5prio: MeasureSingle needs a kernel")
	}
	if err := k.Validate(); err != nil {
		return ThreadResult{}, err
	}
	ch := core.NewChip(s.cfg)
	ch.PlacePair(k, nil, Medium, Medium, s.priv)
	return fame.Measure(ch, s.opts).Thread[0], nil
}

// MeasureMicroPair is MeasurePair over named micro-benchmarks.
func (s *System) MeasureMicroPair(nameA, nameB string, pa, pb Level) (PairResult, error) {
	a, err := microbench.Build(nameA)
	if err != nil {
		return PairResult{}, err
	}
	b, err := microbench.Build(nameB)
	if err != nil {
		return PairResult{}, err
	}
	return s.MeasurePair(a, b, pa, pb)
}

// MeasureSpecPair is MeasurePair over named synthetic SPEC workloads.
func (s *System) MeasureSpecPair(nameA, nameB string, pa, pb Level) (PairResult, error) {
	a, err := spec.Build(nameA)
	if err != nil {
		return PairResult{}, err
	}
	b, err := spec.Build(nameB)
	if err != nil {
		return PairResult{}, err
	}
	return s.MeasurePair(a, b, pa, pb)
}

// PipelineResult is the outcome of an FFT/LU software-pipeline run.
type PipelineResult = apps.Result

// RunPipeline simulates the paper's FFT/LU execution-time case study at
// the given stage priorities.
func (s *System) RunPipeline(prioFFT, prioLU Level) (PipelineResult, error) {
	cfg := apps.DefaultConfig()
	cfg.Chip = s.cfg
	return apps.Run(cfg, prioFFT, prioLU)
}

// TuneResult reports an automatic priority search.
type TuneResult = tuner.Result

// TuneTotalIPC hill-climbs the priority difference of a micro-benchmark
// pair to maximize total IPC (extension beyond the paper). Differences map
// to level pairs the way the paper's sweeps do ((5,4), (6,4), (6,3), ...).
func (s *System) TuneTotalIPC(nameA, nameB string) (TuneResult, error) {
	eval := func(diff int) float64 {
		pa, pb := experiments.DiffPair(diff)
		res, err := s.MeasureMicroPair(nameA, nameB, pa, pb)
		if err != nil {
			return 0
		}
		return res.TotalIPC
	}
	return tuner.HillClimb(eval, 0, -5, 5)
}
