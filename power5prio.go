// Package power5prio is a simulation study of the IBM POWER5
// software-controlled thread priority mechanism, reproducing Boneti et al.,
// "Software-Controlled Priority Characterization of POWER5 Processor"
// (ISCA 2008) on a cycle-approximate simulator.
//
// The package exposes:
//
//   - the priority mechanism itself (levels, privilege rules, or-nop
//     encodings, the R = 2^(|diff|+1) decode-slot formula),
//   - a POWER5-like chip simulator (two SMT cores, shared GCT, typed
//     dispatch groups, issue queues, caches/TLB/DRAM, hardware resource
//     balancing),
//   - the paper's workloads (fifteen micro-benchmarks, synthetic SPEC
//     stand-ins, the FFT/LU software pipeline) and the FAME measurement
//     methodology,
//   - every table and figure of the paper's evaluation as a regenerable
//     experiment.
//
// Quick start:
//
//	sys := power5prio.New(power5prio.DefaultConfig())
//	res, err := sys.MeasureMicroPair("cpu_int", "ldint_mem",
//	    power5prio.High, power5prio.Medium)
//
// See examples/ for complete programs.
package power5prio

import (
	"fmt"
	"slices"

	"power5prio/internal/apps"
	"power5prio/internal/core"
	"power5prio/internal/engine"
	"power5prio/internal/experiments"
	"power5prio/internal/fame"
	"power5prio/internal/isa"
	"power5prio/internal/microbench"
	"power5prio/internal/prio"
	"power5prio/internal/spec"
	"power5prio/internal/tuner"
)

// Level is a software-controlled thread priority (0-7), re-exported from
// the priority engine.
type Level = prio.Level

// The eight architected priority levels (Table 1 of the paper).
const (
	ThreadOff  = prio.ThreadOff
	VeryLow    = prio.VeryLow
	Low        = prio.Low
	MediumLow  = prio.MediumLow
	Medium     = prio.Medium
	MediumHigh = prio.MediumHigh
	High       = prio.High
	VeryHigh   = prio.VeryHigh
)

// Privilege is the execution privilege attempting a priority change.
type Privilege = prio.Privilege

// Privilege levels.
const (
	User       = prio.User
	Supervisor = prio.Supervisor
	Hypervisor = prio.Hypervisor
)

// Kernel is a workload: a loop body of instruction templates with memory
// streams, executed repeatedly. Build custom kernels with NewKernelBuilder.
type Kernel = isa.Kernel

// KernelBuilder assembles custom workloads from virtual-register loop
// bodies; see the isa package documentation for the instruction set.
type KernelBuilder = isa.Builder

// NewKernelBuilder returns a builder for a custom workload kernel.
func NewKernelBuilder(name string) *KernelBuilder { return isa.NewBuilder(name) }

// Op is an instruction class for custom kernels.
type Op = isa.Op

// Instruction classes usable with KernelBuilder.
const (
	OpNop     = isa.OpNop
	OpIntAdd  = isa.OpIntAdd
	OpIntMul  = isa.OpIntMul
	OpIntDiv  = isa.OpIntDiv
	OpFPAdd   = isa.OpFPAdd
	OpFPMul   = isa.OpFPMul
	OpLoad    = isa.OpLoad
	OpStore   = isa.OpStore
	OpBranch  = isa.OpBranch
	OpPrioSet = isa.OpPrioSet
)

// Branch kinds for KernelBuilder.Branch.
const (
	BranchLoop    = isa.BranchLoop
	BranchPattern = isa.BranchPattern
)

// StreamSpec describes a custom kernel's memory stream (footprint,
// addressing kind, stride).
type StreamSpec = isa.StreamSpec

// Address-stream kinds.
const (
	StreamChase  = isa.StreamChase
	StreamStride = isa.StreamStride
	StreamRandom = isa.StreamRandom
)

// NoReg marks an unused register operand in builder calls.
const NoReg = isa.Reg(-1)

// Config configures the simulated chip. The zero value is not useful; use
// DefaultConfig (published POWER5 parameters) and adjust fields.
type Config = core.Config

// DefaultConfig returns the POWER5-like default chip configuration.
func DefaultConfig() Config { return core.DefaultConfig() }

// MeasureOptions controls FAME measurements.
type MeasureOptions = fame.Options

// DefaultMeasureOptions mirrors the paper's methodology: MAIV 1%, at least
// ten repetitions per thread.
func DefaultMeasureOptions() MeasureOptions { return fame.DefaultOptions() }

// ThreadResult is a per-thread measurement (average repetition time in
// cycles and average accumulated IPC, computed the FAME way).
type ThreadResult = fame.ThreadResult

// PairResult is a co-scheduled measurement of two threads.
type PairResult = fame.PairResult

// Share returns the long-run fraction of decode slots the primary thread
// receives at priority difference diff, per the paper's equation (1).
func Share(diff int) float64 { return prio.Share(diff) }

// R returns the decode window size 2^(|diff|+1) of equation (1).
func R(diff int) int { return prio.R(diff) }

// Permitted reports whether the privilege may set the level (Table 1).
func Permitted(l Level, p Privilege) bool { return prio.Permitted(l, p) }

// OrNopRegister returns the register X of the `or X,X,X` encoding that
// requests the level, and whether one exists.
func OrNopRegister(l Level) (int, bool) { return prio.OrNopRegister(l) }

// DecodeOrNop maps an or-nop register number back to the level it
// requests.
func DecodeOrNop(reg int) (Level, bool) { return prio.DecodeOrNop(reg) }

// Microbenchmarks lists the paper's fifteen micro-benchmarks (Table 2).
func Microbenchmarks() []string { return microbench.Names() }

// SPECWorkloads lists the synthetic SPEC stand-ins used by the case
// studies (h264ref, mcf, applu, equake).
func SPECWorkloads() []string { return spec.Names() }

// Microbenchmark builds one of the paper's micro-benchmarks by name.
func Microbenchmark(name string) (*Kernel, error) { return microbench.Build(name) }

// SPECWorkload builds one of the synthetic SPEC workloads by name.
func SPECWorkload(name string) (*Kernel, error) { return spec.Build(name) }

// System is a configured simulator factory: each measurement runs on a
// fresh chip so results are independent and deterministic. Batch
// measurements go through an internal worker-pool engine that runs
// independent simulations concurrently and caches results by content, so
// repeated jobs are simulated once; results are bit-identical for any
// worker count.
type System struct {
	cfg  Config
	opts MeasureOptions
	priv Privilege
	eng  *engine.Engine
}

// New returns a System with the given chip configuration and the paper's
// measurement methodology. In-stream priority changes run with supervisor
// privilege (the paper's patched kernel). Batch measurements use all CPU
// cores; see SetWorkers.
func New(cfg Config) *System {
	return &System{cfg: cfg, opts: DefaultMeasureOptions(), priv: Supervisor, eng: engine.New(0)}
}

// SetMeasureOptions replaces the FAME options used by measurements.
func (s *System) SetMeasureOptions(o MeasureOptions) { s.opts = o }

// SetPrivilege sets the software privilege for in-stream priority changes.
func (s *System) SetPrivilege(p Privilege) { s.priv = p }

// SetWorkers bounds the concurrency of batch measurements (n <= 0 = all
// CPU cores). The result cache is retained across the change.
func (s *System) SetWorkers(n int) { s.eng.SetWorkers(n) }

// BatchStats reports the batch engine's lifetime counters: jobs
// submitted, jobs actually simulated, and cache hits.
type BatchStats = engine.Stats

// BatchStats returns a snapshot of the engine counters.
func (s *System) BatchStats() BatchStats { return s.eng.Stats() }

// MeasurePair co-schedules two kernels on one SMT core at the given
// priorities and measures both threads.
func (s *System) MeasurePair(a, b *Kernel, pa, pb Level) (PairResult, error) {
	if a == nil || b == nil {
		return PairResult{}, fmt.Errorf("power5prio: MeasurePair needs two kernels")
	}
	if err := a.Validate(); err != nil {
		return PairResult{}, err
	}
	if err := b.Validate(); err != nil {
		return PairResult{}, err
	}
	ch := core.NewChip(s.cfg)
	ch.PlacePair(a, b, pa, pb, s.priv)
	return fame.Measure(ch, s.opts), nil
}

// MeasureSingle runs one kernel alone on the core (single-thread mode).
func (s *System) MeasureSingle(k *Kernel) (ThreadResult, error) {
	if k == nil {
		return ThreadResult{}, fmt.Errorf("power5prio: MeasureSingle needs a kernel")
	}
	if err := k.Validate(); err != nil {
		return ThreadResult{}, err
	}
	ch := core.NewChip(s.cfg)
	ch.PlacePair(k, nil, Medium, Medium, s.priv)
	return fame.Measure(ch, s.opts).Thread[0], nil
}

// MeasureMicroPair is MeasurePair over named micro-benchmarks.
func (s *System) MeasureMicroPair(nameA, nameB string, pa, pb Level) (PairResult, error) {
	a, err := microbench.Build(nameA)
	if err != nil {
		return PairResult{}, err
	}
	b, err := microbench.Build(nameB)
	if err != nil {
		return PairResult{}, err
	}
	return s.MeasurePair(a, b, pa, pb)
}

// MeasureSpecPair is MeasurePair over named synthetic SPEC workloads.
func (s *System) MeasureSpecPair(nameA, nameB string, pa, pb Level) (PairResult, error) {
	a, err := spec.Build(nameA)
	if err != nil {
		return PairResult{}, err
	}
	b, err := spec.Build(nameB)
	if err != nil {
		return PairResult{}, err
	}
	return s.MeasurePair(a, b, pa, pb)
}

// BatchSpec names one measurement for MeasureBatch: a workload pair (or
// a single workload when B is empty) at explicit priority levels. Names
// are resolved against the micro-benchmarks first, then the synthetic
// SPEC workloads, like the p5sim command line. For single-workload
// specs, PA sets the running thread's level (0 = the Medium default)
// and PB must be zero — the sibling thread is off.
type BatchSpec struct {
	A, B   string
	PA, PB Level
}

// workloadKind resolves which family a named workload belongs to. It
// checks names only — kernels are built by the engine's workers.
func workloadKind(name string) (engine.Kind, error) {
	if slices.Contains(microbench.Names(), name) {
		return engine.Micro, nil
	}
	if slices.Contains(spec.Names(), name) {
		return engine.Spec, nil
	}
	return 0, fmt.Errorf("power5prio: unknown workload %q", name)
}

// batchJob translates a spec into an engine job. Both workloads of a
// pair must come from the same family (the engine resolves a job's names
// in one family); mixed pairs return an error.
func (s *System) batchJob(bs BatchSpec) (engine.Job, error) {
	if bs.A == "" {
		return engine.Job{}, fmt.Errorf("power5prio: BatchSpec needs a workload name")
	}
	kind, err := workloadKind(bs.A)
	if err != nil {
		return engine.Job{}, err
	}
	if bs.B == "" {
		if bs.PB != 0 {
			return engine.Job{}, fmt.Errorf("power5prio: single-workload spec %q sets PB %d but has no second workload", bs.A, bs.PB)
		}
		j := engine.Single(kind, bs.A, s.priv, 1.0, s.cfg, s.opts)
		if bs.PA != 0 {
			j.PrioP = bs.PA
		}
		return j, nil
	}
	kindB, err := workloadKind(bs.B)
	if err != nil {
		return engine.Job{}, err
	}
	if kindB != kind {
		return engine.Job{}, fmt.Errorf("power5prio: cannot co-schedule %s workload %q with %s workload %q",
			kind, bs.A, kindB, bs.B)
	}
	return engine.Pair(kind, bs.A, bs.B, bs.PA, bs.PB, s.priv, 1.0, s.cfg, s.opts), nil
}

// MeasureBatch runs a batch of measurements concurrently on the worker
// pool and returns results in submission order. Identical specs — within
// the batch or across earlier batches on this System — are simulated
// once and served from the cache; results are bit-identical to running
// each spec alone, regardless of the worker count.
func (s *System) MeasureBatch(specs []BatchSpec) ([]PairResult, error) {
	jobs := make([]engine.Job, len(specs))
	for i, bs := range specs {
		j, err := s.batchJob(bs)
		if err != nil {
			return nil, err
		}
		jobs[i] = j
	}
	out := make([]PairResult, len(specs))
	for i, r := range s.eng.Run(jobs) {
		if r.Err != nil {
			return nil, fmt.Errorf("power5prio: batch job %d (%s+%s): %w", i, specs[i].A, specs[i].B, r.Err)
		}
		out[i] = r.Pair
	}
	return out, nil
}

// MatrixResult is a full priority-difference sweep: co-run measurements
// for every (primary, secondary) pair at every difference, plus
// single-thread IPCs, with the relative-performance accessors the
// paper's figures use (At, RelPrimary, RelTotal).
type MatrixResult = experiments.MatrixResult

// MeasureMatrix sweeps every (primary, secondary) micro-benchmark pair
// at every priority difference in diffs (each in [-5,+5], mapped to the
// paper's level pairs), plus each primary alone in ST mode. The whole
// matrix is submitted to the worker pool as one batch.
func (s *System) MeasureMatrix(primaries, secondaries []string, diffs []int) (*MatrixResult, error) {
	for _, names := range [][]string{primaries, secondaries} {
		for _, n := range names {
			if !slices.Contains(microbench.Names(), n) {
				return nil, fmt.Errorf("power5prio: unknown micro-benchmark %q", n)
			}
		}
	}
	for _, d := range diffs {
		if d < -5 || d > 5 {
			return nil, fmt.Errorf("power5prio: priority difference %d out of range [-5,5]", d)
		}
	}
	h := experiments.Harness{
		Chip:      s.cfg,
		Fame:      s.opts,
		IterScale: 1.0,
		Privilege: s.priv,
		Engine:    s.eng,
	}
	return experiments.RunMatrix(h, primaries, secondaries, diffs), nil
}

// PipelineResult is the outcome of an FFT/LU software-pipeline run.
type PipelineResult = apps.Result

// RunPipeline simulates the paper's FFT/LU execution-time case study at
// the given stage priorities.
func (s *System) RunPipeline(prioFFT, prioLU Level) (PipelineResult, error) {
	cfg := apps.DefaultConfig()
	cfg.Chip = s.cfg
	return apps.Run(cfg, prioFFT, prioLU)
}

// TuneResult reports an automatic priority search.
type TuneResult = tuner.Result

// TuneTotalIPC hill-climbs the priority difference of a micro-benchmark
// pair to maximize total IPC (extension beyond the paper). Differences map
// to level pairs the way the paper's sweeps do ((5,4), (6,4), (6,3), ...).
func (s *System) TuneTotalIPC(nameA, nameB string) (TuneResult, error) {
	eval := func(diff int) float64 {
		pa, pb := experiments.DiffPair(diff)
		res, err := s.MeasureMicroPair(nameA, nameB, pa, pb)
		if err != nil {
			return 0
		}
		return res.TotalIPC
	}
	return tuner.HillClimb(eval, 0, -5, 5)
}
