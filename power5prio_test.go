package power5prio

import (
	"context"
	"testing"
)

// quickSystem returns a System with reduced measurement effort for tests.
func quickSystem() *System {
	return New(DefaultConfig(), WithMeasureOptions(
		MeasureOptions{MinReps: 3, WarmupReps: 1, MaxCycles: 60_000_000}))
}

func TestCatalogues(t *testing.T) {
	if got := len(Microbenchmarks()); got != 15 {
		t.Errorf("Microbenchmarks() = %d entries, want 15", got)
	}
	if got := len(SPECWorkloads()); got != 4 {
		t.Errorf("SPECWorkloads() = %d entries, want 4", got)
	}
}

func TestPriorityHelpers(t *testing.T) {
	if R(4) != 32 {
		t.Errorf("R(4) = %d, want 32", R(4))
	}
	if Share(0) != 0.5 {
		t.Errorf("Share(0) = %v, want 0.5", Share(0))
	}
	if !Permitted(Medium, User) || Permitted(High, User) {
		t.Error("Permitted does not follow Table 1")
	}
	reg, ok := OrNopRegister(VeryLow)
	if !ok || reg != 31 {
		t.Errorf("OrNopRegister(VeryLow) = (%d,%v), want (31,true)", reg, ok)
	}
	if l, ok := DecodeOrNop(31); !ok || l != VeryLow {
		t.Errorf("DecodeOrNop(31) = (%v,%v)", l, ok)
	}
}

func TestBuildWorkloads(t *testing.T) {
	if _, err := Microbenchmark("cpu_int"); err != nil {
		t.Errorf("Microbenchmark(cpu_int): %v", err)
	}
	if _, err := Microbenchmark("nope"); err == nil {
		t.Error("Microbenchmark accepted unknown name")
	}
	if _, err := SPECWorkload("mcf"); err != nil {
		t.Errorf("SPECWorkload(mcf): %v", err)
	}
	if _, err := SPECWorkload("nope"); err == nil {
		t.Error("SPECWorkload accepted unknown name")
	}
	// The unified resolver covers both families.
	for _, name := range []string{"cpu_int", "mcf"} {
		if _, err := Workload(name); err != nil {
			t.Errorf("Workload(%s): %v", name, err)
		}
	}
	if _, err := Workload("nope"); err == nil {
		t.Error("Workload accepted unknown name")
	}
}

func TestSystemWorkloadsCatalogue(t *testing.T) {
	s := quickSystem()
	if got, want := len(s.Workloads()), len(Microbenchmarks())+len(SPECWorkloads()); got != want {
		t.Errorf("Workloads() = %d names, want %d", got, want)
	}
}

func TestCustomKernelRoundTrip(t *testing.T) {
	b := NewKernelBuilder("custom")
	a := b.Reg("a")
	v := b.Reg("v")
	s := b.Stream(StreamSpec{Kind: StreamStride, Footprint: 8 << 10, Stride: 128})
	b.Load(v, s, NoReg)
	b.Op2(OpIntAdd, a, a, v)
	b.Branch(BranchLoop, a)
	k, err := b.Build(16)
	if err != nil {
		t.Fatal(err)
	}
	res, err := quickSystem().MeasureSingle(k)
	if err != nil {
		t.Fatal(err)
	}
	if res.IPC <= 0 {
		t.Errorf("custom kernel IPC = %v, want > 0", res.IPC)
	}
}

func TestMeasureMicroPair(t *testing.T) {
	s := quickSystem()
	res, err := s.MeasureMicroPair("cpu_int", "cpu_int", Medium, Medium)
	if err != nil {
		t.Fatal(err)
	}
	if res.Thread[0].IPC <= 0 || res.Thread[1].IPC <= 0 {
		t.Errorf("pair IPCs = (%v,%v), want both positive", res.Thread[0].IPC, res.Thread[1].IPC)
	}
	if _, err := s.MeasureMicroPair("nope", "cpu_int", Medium, Medium); err == nil {
		t.Error("accepted unknown benchmark")
	}
}

func TestMeasurePairValidation(t *testing.T) {
	s := quickSystem()
	if _, err := s.MeasurePair(nil, nil, Medium, Medium); err == nil {
		t.Error("MeasurePair accepted nil kernels")
	}
	if _, err := s.MeasureSingle(nil); err == nil {
		t.Error("MeasureSingle accepted nil kernel")
	}
}

// TestPriorityChangesOutcome: the headline result through the public API —
// prioritizing one of two identical threads shifts performance toward it.
func TestPriorityChangesOutcome(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation test")
	}
	s := quickSystem()
	base, err := s.MeasureMicroPair("cpu_int", "cpu_int", Medium, Medium)
	if err != nil {
		t.Fatal(err)
	}
	up, err := s.MeasureMicroPair("cpu_int", "cpu_int", High, Low)
	if err != nil {
		t.Fatal(err)
	}
	if up.Thread[0].IPC <= base.Thread[0].IPC {
		t.Errorf("prioritized thread: %.3f -> %.3f, want improvement",
			base.Thread[0].IPC, up.Thread[0].IPC)
	}
	if up.Thread[1].IPC >= base.Thread[1].IPC {
		t.Errorf("deprioritized thread: %.3f -> %.3f, want degradation",
			base.Thread[1].IPC, up.Thread[1].IPC)
	}
}

func TestRunPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation test")
	}
	s := quickSystem()
	res, err := s.RunPipeline(MediumHigh, Medium)
	if err != nil {
		t.Fatal(err)
	}
	if res.TimedOut {
		t.Fatal("pipeline timed out")
	}
	if res.Mean.Iter <= 0 {
		t.Errorf("pipeline iteration time %v, want positive", res.Mean.Iter)
	}
}

func TestTuneTotalIPC(t *testing.T) {
	if testing.Short() {
		t.Skip("tuning runs many simulations")
	}
	s := quickSystem()
	r, err := s.TuneTotalIPC(context.Background(), "ldint_l1", "ldint_mem")
	if err != nil {
		t.Fatal(err)
	}
	if r.BestDiff <= 0 {
		t.Errorf("tuner chose diff %d; prioritizing the high-IPC thread should win", r.BestDiff)
	}
}
