// Package stats provides the small statistical helpers the experiment
// harness uses.
package stats

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// StdDev returns the sample standard deviation (0 for fewer than 2 values).
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)-1))
}

// GeoMean returns the geometric mean of positive values (0 if any value is
// non-positive or the input is empty).
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		if x <= 0 {
			return 0
		}
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs)))
}

// Median returns the median (0 for empty input).
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	c := append([]float64(nil), xs...)
	sort.Float64s(c)
	n := len(c)
	if n%2 == 1 {
		return c[n/2]
	}
	return (c[n/2-1] + c[n/2]) / 2
}

// Min returns the minimum (0 for empty input).
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum (0 for empty input).
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// RelErr returns |got-want|/|want| (infinite if want is 0 and got is not).
func RelErr(got, want float64) float64 {
	if want == 0 {
		if got == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return math.Abs(got-want) / math.Abs(want)
}
