package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestMean(t *testing.T) {
	if !almost(Mean([]float64{1, 2, 3}), 2) {
		t.Error("Mean wrong")
	}
	if Mean(nil) != 0 {
		t.Error("Mean(nil) != 0")
	}
}

func TestStdDev(t *testing.T) {
	if !almost(StdDev([]float64{2, 4, 4, 4, 5, 5, 7, 9}), 2.138089935299395) {
		t.Errorf("StdDev = %v", StdDev([]float64{2, 4, 4, 4, 5, 5, 7, 9}))
	}
	if StdDev([]float64{1}) != 0 {
		t.Error("StdDev singleton != 0")
	}
}

func TestGeoMean(t *testing.T) {
	if !almost(GeoMean([]float64{1, 4, 16}), 4) {
		t.Errorf("GeoMean = %v", GeoMean([]float64{1, 4, 16}))
	}
	if GeoMean([]float64{1, -1}) != 0 {
		t.Error("GeoMean with negative input should be 0")
	}
	if GeoMean(nil) != 0 {
		t.Error("GeoMean(nil) != 0")
	}
}

func TestMedian(t *testing.T) {
	if !almost(Median([]float64{3, 1, 2}), 2) {
		t.Error("odd median wrong")
	}
	if !almost(Median([]float64{4, 1, 2, 3}), 2.5) {
		t.Error("even median wrong")
	}
	if Median(nil) != 0 {
		t.Error("Median(nil) != 0")
	}
	// Median must not mutate its input.
	in := []float64{3, 1, 2}
	Median(in)
	if in[0] != 3 || in[1] != 1 || in[2] != 2 {
		t.Error("Median mutated input")
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 2}
	if Min(xs) != -1 || Max(xs) != 3 {
		t.Errorf("Min/Max = %v/%v", Min(xs), Max(xs))
	}
	if Min(nil) != 0 || Max(nil) != 0 {
		t.Error("empty Min/Max != 0")
	}
}

func TestRelErr(t *testing.T) {
	if !almost(RelErr(11, 10), 0.1) {
		t.Errorf("RelErr = %v", RelErr(11, 10))
	}
	if RelErr(0, 0) != 0 {
		t.Error("RelErr(0,0) != 0")
	}
	if !math.IsInf(RelErr(1, 0), 1) {
		t.Error("RelErr(1,0) not +Inf")
	}
}

// Property: Min <= Median <= Max and Min <= Mean <= Max.
func TestOrderingProperty(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			// Keep magnitudes small enough that summation cannot overflow.
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e150 {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		lo, hi := Min(xs), Max(xs)
		m, med := Mean(xs), Median(xs)
		return lo <= m+1e-9 && m <= hi+1e-9 && lo <= med && med <= hi
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
