package microbench

import (
	"testing"

	"power5prio/internal/core"
	"power5prio/internal/fame"
	"power5prio/internal/prio"
)

func TestNamesComplete(t *testing.T) {
	ns := Names()
	if len(ns) != 15 {
		t.Fatalf("catalogue has %d benchmarks, want 15 (Table 2)", len(ns))
	}
	seen := map[string]bool{}
	for _, n := range ns {
		if seen[n] {
			t.Errorf("duplicate name %q", n)
		}
		seen[n] = true
	}
}

func TestPresentedSubset(t *testing.T) {
	p := Presented()
	if len(p) != 6 {
		t.Fatalf("presented set has %d entries, want 6", len(p))
	}
	all := map[string]bool{}
	for _, n := range Names() {
		all[n] = true
	}
	for _, n := range p {
		if !all[n] {
			t.Errorf("presented benchmark %q not in catalogue", n)
		}
	}
}

func TestBuildAllValid(t *testing.T) {
	for _, n := range Names() {
		k, err := Build(n)
		if err != nil {
			t.Errorf("Build(%q): %v", n, err)
			continue
		}
		if err := k.Validate(); err != nil {
			t.Errorf("kernel %q invalid: %v", n, err)
		}
		if k.Name != n {
			t.Errorf("kernel name %q != %q", k.Name, n)
		}
	}
}

func TestBuildUnknown(t *testing.T) {
	if _, err := Build("nope"); err == nil {
		t.Error("Build accepted unknown name")
	}
}

func TestBuildWithIters(t *testing.T) {
	k, err := BuildWith(CPUInt, Params{Iters: 7})
	if err != nil {
		t.Fatal(err)
	}
	if k.Iters != 7 {
		t.Errorf("Iters = %d, want 7", k.Iters)
	}
}

func TestMustBuildPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustBuild did not panic")
		}
	}()
	MustBuild("nope")
}

func TestFootprintsTargetLevels(t *testing.T) {
	mc := core.DefaultConfig().Mem
	if FootL1 >= uint64(mc.L1D.SizeBytes) {
		t.Errorf("FootL1 %d does not fit L1 %d", FootL1, mc.L1D.SizeBytes)
	}
	if FootL2 <= uint64(mc.L1D.SizeBytes) || FootL2 >= uint64(mc.L2.SizeBytes) {
		t.Errorf("FootL2 %d must exceed L1 and fit L2", FootL2)
	}
	if 2*FootL2 <= uint64(mc.L2.SizeBytes) {
		t.Error("two FootL2 working sets must overflow the shared L2 (paper: co-run degradation)")
	}
	if FootL3 <= uint64(mc.L2.SizeBytes) || FootL3 >= uint64(mc.L3.SizeBytes) {
		t.Errorf("FootL3 %d must exceed L2 and fit L3", FootL3)
	}
	if FootMem <= uint64(mc.L3.SizeBytes) {
		t.Errorf("FootMem %d must exceed L3", FootMem)
	}
}

// measureST runs a benchmark alone in single-thread mode and returns its
// steady-state IPC (reduced iteration counts keep tests fast).
func measureST(t *testing.T, name string, iters int) float64 {
	t.Helper()
	k, err := BuildWith(name, Params{Iters: iters})
	if err != nil {
		t.Fatal(err)
	}
	ch := core.NewChip(core.DefaultConfig())
	ch.PlacePair(k, nil, prio.Medium, prio.Medium, prio.User)
	res := fame.Measure(ch, fame.Options{MinReps: 3, WarmupReps: 1, MaxCycles: 30_000_000})
	if res.TimedOut {
		t.Fatalf("%s: measurement timed out", name)
	}
	return res.Thread[0].IPC
}

// TestSTCalibration checks single-thread IPCs against the bands implied by
// Table 3 of the paper. Bands are deliberately loose: the simulator must
// land in the right regime, not reproduce exact hardware numbers.
func TestSTCalibration(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration is a long test")
	}
	cases := []struct {
		name      string
		iters     int
		paperIPC  float64
		low, high float64
	}{
		{LdIntL1, 256, 2.29, 1.6, 3.4},
		{CPUInt, 64, 1.14, 0.8, 1.9},
		{LngChainCPUInt, 32, 0.51, 0.3, 0.8},
		{CPUFP, 32, 0.41, 0.28, 0.8},
		{LdIntL2, 192, 0.27, 0.18, 0.45},
		{LdIntMem, 24, 0.02, 0.008, 0.045},
	}
	got := map[string]float64{}
	for _, tc := range cases {
		ipc := measureST(t, tc.name, tc.iters)
		got[tc.name] = ipc
		t.Logf("%-18s paper %.2f  simulated %.3f", tc.name, tc.paperIPC, ipc)
		if ipc < tc.low || ipc > tc.high {
			t.Errorf("%s: ST IPC %.3f outside band [%.2f, %.2f] (paper %.2f)",
				tc.name, ipc, tc.low, tc.high, tc.paperIPC)
		}
	}
	// Regime ordering from Table 3.
	if !(got[LdIntL1] > got[CPUInt] && got[CPUInt] > got[LngChainCPUInt]) {
		t.Errorf("ordering violated: ldint_l1 %.2f > cpu_int %.2f > lng_chain %.2f expected",
			got[LdIntL1], got[CPUInt], got[LngChainCPUInt])
	}
	if !(got[LngChainCPUInt] > got[LdIntL2] && got[LdIntL2] > got[LdIntMem]) {
		t.Errorf("ordering violated: lng_chain %.2f > ldint_l2 %.2f > ldint_mem %.2f expected",
			got[LngChainCPUInt], got[LdIntL2], got[LdIntMem])
	}
}

// TestBrHitFasterThanBrMiss: predictability must matter.
func TestBrHitFasterThanBrMiss(t *testing.T) {
	if testing.Short() {
		t.Skip("long test")
	}
	hit := measureST(t, BrHit, 64)
	miss := measureST(t, BrMiss, 64)
	if miss >= hit {
		t.Errorf("br_miss IPC %.2f >= br_hit IPC %.2f", miss, hit)
	}
}

// TestVariantsBehaveSimilarly: the paper dropped cpu_int_add/cpu_int_mul
// and the ldfp twins because they track their presented counterparts.
func TestVariantsBehaveSimilarly(t *testing.T) {
	if testing.Short() {
		t.Skip("long test")
	}
	pairs := [][2]string{
		{LdIntMem, LdFPMem},
		{LdIntL1, LdFPL1},
	}
	for _, p := range pairs {
		a := measureST(t, p[0], 24)
		b := measureST(t, p[1], 24)
		ratio := a / b
		if ratio < 0.5 || ratio > 2.0 {
			t.Errorf("%s (%.3f) and %s (%.3f) diverge beyond 2x", p[0], a, p[1], b)
		}
	}
}
