// Package microbench provides the paper's fifteen synthetic
// micro-benchmarks (Table 2), expressed as isa kernels. Each benchmark
// stresses one processor characteristic: short/long-latency integer work,
// floating point, branches with high/low predictability, and loads hitting
// a chosen level of the memory hierarchy.
//
// Load benchmarks beyond L1 use pointer-chasing address streams. The
// paper's strided loops measured MLP ~ 1 on the real machine (Table 3: an
// L2-resident load loop runs at IPC 0.27 ~ one access per L2 latency); a
// chase reproduces that serialization directly (DESIGN.md, substitutions).
package microbench

import (
	"fmt"
	"sort"

	"power5prio/internal/isa"
)

// Benchmark names (Table 2).
const (
	CPUInt         = "cpu_int"
	CPUIntAdd      = "cpu_int_add"
	CPUIntMul      = "cpu_int_mul"
	LngChainCPUInt = "lng_chain_cpuint"
	BrHit          = "br_hit"
	BrMiss         = "br_miss"
	LdIntL1        = "ldint_l1"
	LdIntL2        = "ldint_l2"
	LdIntL3        = "ldint_l3"
	LdIntMem       = "ldint_mem"
	LdFPL1         = "ldfp_l1"
	LdFPL2         = "ldfp_l2"
	LdFPL3         = "ldfp_l3"
	LdFPMem        = "ldfp_mem"
	CPUFP          = "cpu_fp"
)

// Working-set footprints targeting each cache level of the default
// hierarchy (L1 32KB, L2 1.875MB, L3 36MB).
const (
	FootL1  = 16 << 10   // fits L1 comfortably
	FootL2  = 1280 << 10 // misses L1, fits L2 alone; two of these overflow L2
	FootL3  = 4 << 20    // misses L2, fits L3
	FootMem = 64 << 20   // larger than L3: misses everywhere, thrashes TLB
)

// Params tunes kernel instantiation.
type Params struct {
	// Iters overrides the per-benchmark default micro-iterations per
	// repetition (tests use small values).
	Iters int
	// IterScale multiplies the default iteration count when Iters is zero
	// (values in (0,1) shrink runs for tests and benches; minimum 8).
	IterScale float64
}

// Names returns all fifteen benchmark names, sorted.
func Names() []string {
	ns := []string{
		CPUInt, CPUIntAdd, CPUIntMul, LngChainCPUInt, BrHit, BrMiss,
		LdIntL1, LdIntL2, LdIntL3, LdIntMem,
		LdFPL1, LdFPL2, LdFPL3, LdFPMem, CPUFP,
	}
	sort.Strings(ns)
	return ns
}

// Presented returns the six benchmarks the paper's result sections use
// (the others behave like one of these; Section 4.2).
func Presented() []string {
	return []string{LdIntL1, LdIntL2, LdIntMem, CPUInt, CPUFP, LngChainCPUInt}
}

// Build returns the named benchmark with default parameters.
func Build(name string) (*isa.Kernel, error) { return BuildWith(name, Params{}) }

// MustBuild is Build that panics on error (for static tables and tests).
func MustBuild(name string) *isa.Kernel {
	k, err := Build(name)
	if err != nil {
		panic(err)
	}
	return k
}

// BuildWith returns the named benchmark with the given parameters.
func BuildWith(name string, p Params) (*isa.Kernel, error) {
	switch name {
	case CPUInt:
		return cpuIntLike(name, isa.OpIntMul, iters(p, 192)), nil
	case CPUIntAdd:
		return cpuIntLike(name, isa.OpIntAdd, iters(p, 192)), nil
	case CPUIntMul:
		return cpuIntMul(iters(p, 192)), nil
	case LngChainCPUInt:
		return lngChain(iters(p, 96)), nil
	case BrHit:
		return brKernel(name, true, iters(p, 256)), nil
	case BrMiss:
		return brKernel(name, false, iters(p, 256)), nil
	case LdIntL1, LdFPL1:
		return ldL1(name, iters(p, 1024)), nil
	case LdIntL2:
		return ldChase(name, isa.OpIntAdd, FootL2, true, iters(p, 768)), nil
	case LdFPL2:
		return ldChase(name, isa.OpFPAdd, FootL2, true, iters(p, 768)), nil
	case LdIntL3:
		return ldChase(name, isa.OpIntAdd, FootL3, true, iters(p, 192)), nil
	case LdFPL3:
		return ldChase(name, isa.OpFPAdd, FootL3, true, iters(p, 192)), nil
	case LdIntMem:
		return ldMem(name, isa.OpIntAdd, iters(p, 96)), nil
	case LdFPMem:
		return ldMem(name, isa.OpFPAdd, iters(p, 96)), nil
	case CPUFP:
		return cpuFP(iters(p, 96)), nil
	default:
		return nil, fmt.Errorf("microbench: unknown benchmark %q", name)
	}
}

func iters(p Params, def int) int {
	if p.Iters > 0 {
		return p.Iters
	}
	if p.IterScale > 0 {
		n := int(float64(def) * p.IterScale)
		if n < 8 {
			n = 8
		}
		return n
	}
	return def
}

// cpuIntLike builds the 54-line `a += (iter*(iter-1)) - xi*iter` loop
// (cpu_int) or its add-only variant (cpu_int_add): per line one
// independent op, one dependent subtract-like add, and the accumulator
// chain through `a`.
func cpuIntLike(name string, lineOp isa.Op, its int) *isa.Kernel {
	b := isa.NewBuilder(name)
	iter := b.Reg("iter")
	one := b.Reg("one")
	t := b.Reg("t")
	m := b.Reg("m")
	s := b.Reg("s")
	a := b.Reg("a")
	// Per-iteration header: t = iter*(iter-1).
	b.Op2(isa.OpIntMul, t, iter, iter)
	b.Op2(isa.OpIntAdd, t, t, iter)
	for i := 0; i < 54; i++ {
		b.Op2(lineOp, m, iter, one)  // xi*iter (or xi+iter)
		b.Op2(isa.OpIntAdd, s, t, m) // t - xi*iter
		b.Op2(isa.OpIntAdd, a, a, s) // a += ...  (loop-carried chain)
	}
	b.Op2(isa.OpIntAdd, iter, iter, one)
	b.Branch(isa.BranchLoop, iter)
	return b.MustBuild(its)
}

// cpuIntMul builds `a = (iter*iter) * xi * iter`: three multiplies per
// line, no accumulation chain (throughput bound).
func cpuIntMul(its int) *isa.Kernel {
	b := isa.NewBuilder(CPUIntMul)
	iter := b.Reg("iter")
	one := b.Reg("one")
	p := b.Reg("p")
	q := b.Reg("q")
	a := b.Reg("a")
	for i := 0; i < 54; i++ {
		b.Op2(isa.OpIntMul, p, iter, iter)
		b.Op2(isa.OpIntMul, q, p, one)
		b.Op2(isa.OpIntMul, a, q, iter)
	}
	b.Op2(isa.OpIntAdd, iter, iter, one)
	b.Branch(isa.BranchLoop, iter)
	return b.MustBuild(its)
}

// lngChain builds the 50-line serial-dependency loop: the chain register
// threads every line, alternating multiply and add hops, with one
// independent op per line.
func lngChain(its int) *isa.Kernel {
	b := isa.NewBuilder(LngChainCPUInt)
	iter := b.Reg("iter")
	one := b.Reg("one")
	ch := b.Reg("chain")
	d := b.Reg("d")
	for i := 0; i < 50; i++ {
		if i%2 == 0 {
			b.Op2(isa.OpIntMul, ch, ch, one)
		} else {
			b.Op2(isa.OpIntAdd, ch, ch, one)
		}
		b.Op2(isa.OpIntAdd, d, iter, one) // independent filler op
	}
	b.Op2(isa.OpIntAdd, iter, iter, one)
	b.Branch(isa.BranchLoop, ch)
	return b.MustBuild(its)
}

// cpuFP builds the 54-line floating-point accumulator loop.
func cpuFP(its int) *isa.Kernel {
	b := isa.NewBuilder(CPUFP)
	iter := b.Reg("iter")
	one := b.Reg("one")
	t := b.Reg("t")
	m := b.Reg("m")
	s := b.Reg("s")
	a := b.Reg("a")
	b.Op2(isa.OpFPMul, t, iter, iter)
	for i := 0; i < 54; i++ {
		b.Op2(isa.OpFPMul, m, t, one)
		b.Op2(isa.OpFPAdd, s, t, m)
		b.Op2(isa.OpFPAdd, a, a, s)
	}
	b.Op2(isa.OpIntAdd, iter, iter, one)
	b.Branch(isa.BranchLoop, iter)
	return b.MustBuild(its)
}

// brKernel builds the 28-line `if (a[s]==0) a++ else a--` loop. hit: the
// array is all zeros (every branch taken, learnable); miss: outcomes are
// pseudo-random modulo 2.
func brKernel(name string, hit bool, its int) *isa.Kernel {
	b := isa.NewBuilder(name)
	iter := b.Reg("iter")
	one := b.Reg("one")
	v := b.Reg("v")
	a := b.Reg("a")
	st := b.Stream(isa.StreamSpec{Kind: isa.StreamStride, Footprint: 4 << 10, Stride: isa.CacheLineSize, Seed: 11})
	for i := 0; i < 28; i++ {
		b.Load(v, st, isa.Reg(-1))
		b.Branch(isa.BranchPattern, v)
		b.Op2(isa.OpIntAdd, a, a, one)
	}
	b.Op2(isa.OpIntAdd, iter, iter, one)
	b.Branch(isa.BranchLoop, iter)
	if hit {
		b.Pattern(func(n uint64) bool { return true })
	} else {
		state := uint64(0x2545f4914f6cdd1d)
		b.Pattern(func(n uint64) bool {
			state ^= state << 13
			state ^= state >> 7
			state ^= state << 17
			return state&1 == 1
		})
	}
	return b.MustBuild(its)
}

// ldL1 builds the L1-resident load/store loop: eight independent
// load/store pairs per iteration walking a 16KB buffer; throughput-bound
// on the load/store units. The integer and floating-point variants behave
// identically (the paper reports the same).
func ldL1(name string, its int) *isa.Kernel {
	b := isa.NewBuilder(name)
	iter := b.Reg("iter")
	one := b.Reg("one")
	ld := b.Stream(isa.StreamSpec{Kind: isa.StreamStride, Footprint: FootL1, Stride: isa.CacheLineSize, Seed: 3})
	st := b.Stream(isa.StreamSpec{Kind: isa.StreamStride, Footprint: FootL1, Stride: isa.CacheLineSize, Seed: 3})
	vals := make([]isa.Reg, 8)
	for i := range vals {
		vals[i] = b.Reg("v")
		b.Load(vals[i], ld, isa.Reg(-1))
		b.Store(st, vals[i], isa.Reg(-1))
	}
	b.Op2(isa.OpIntAdd, iter, iter, one)
	b.Branch(isa.BranchLoop, iter)
	return b.MustBuild(its)
}

// ldMem builds the memory-missing `a[i+s] = a[i+s]+1` loop: independent
// strided loads that cross a page per access, missing every cache level
// and the TLB. Throughput is bound by the DRAM channel, with the per-thread
// LMQ providing the in-flight parallelism — which is what makes this
// benchmark respond to decode-slot prioritization against another
// memory-bound thread (paper: 1.7x at +5) while staying insensitive to
// compute partners.
func ldMem(name string, valOp isa.Op, its int) *isa.Kernel {
	b := isa.NewBuilder(name)
	iter := b.Reg("iter")
	one := b.Reg("one")
	v := b.Reg("v")
	w := b.Reg("w")
	const stride = 4096 + isa.CacheLineSize // new page and new line each access
	ld := b.Stream(isa.StreamSpec{Kind: isa.StreamStride, Footprint: FootMem, Stride: stride, Seed: 5})
	st := b.Stream(isa.StreamSpec{Kind: isa.StreamStride, Footprint: FootMem, Stride: stride, Seed: 5})
	b.Load(v, ld, isa.Reg(-1))
	b.Op2(valOp, w, v, one)
	b.Store(st, w, isa.Reg(-1))
	b.Op2(isa.OpIntAdd, iter, iter, one)
	b.Branch(isa.BranchLoop, iter)
	return b.MustBuild(its)
}

// ldChase builds the pointer-chasing `a[i+s] = a[i+s]+1` loop over the
// given footprint: chase load, dependent increment, store to the same
// line, loop overhead. Prewarm marks cache-resident footprints.
func ldChase(name string, valOp isa.Op, foot uint64, prewarm bool, its int) *isa.Kernel {
	b := isa.NewBuilder(name)
	iter := b.Reg("iter")
	one := b.Reg("one")
	v := b.Reg("v")
	w := b.Reg("w")
	ld := b.Stream(isa.StreamSpec{Kind: isa.StreamChase, Footprint: foot, Seed: 5, Prewarm: prewarm})
	st := b.Stream(isa.StreamSpec{Kind: isa.StreamChase, Footprint: foot, Seed: 5})
	b.Load(v, ld, isa.Reg(-1))
	b.Op2(valOp, w, v, one)
	b.Store(st, w, isa.Reg(-1))
	b.Op2(isa.OpIntAdd, iter, iter, one)
	b.Branch(isa.BranchLoop, iter)
	return b.MustBuild(its)
}
