package branch

import (
	"testing"
	"testing/quick"
)

func TestPredictorLearnsAlwaysTaken(t *testing.T) {
	p := New(10)
	const pc = 0x1000
	correct := 0
	for i := 0; i < 100; i++ {
		if p.Predict(0, pc) {
			correct++
		}
		p.Update(0, pc, true)
	}
	if correct < 95 {
		t.Errorf("always-taken accuracy = %d/100, want >= 95", correct)
	}
}

func TestPredictorLearnsLoopPattern(t *testing.T) {
	// Loop branch: taken 15 times, not-taken once (16-iteration loop).
	p := New(12)
	const pc = 0x2040
	correct, total := 0, 0
	for rep := 0; rep < 50; rep++ {
		for i := 0; i < 16; i++ {
			taken := i < 15
			if p.Predict(0, pc) == taken {
				correct++
			}
			p.Update(0, pc, taken)
			total++
		}
	}
	// With history the predictor should do well above 80%.
	if frac := float64(correct) / float64(total); frac < 0.8 {
		t.Errorf("loop accuracy = %.2f, want >= 0.8", frac)
	}
}

func TestPredictorRandomNearChance(t *testing.T) {
	p := New(10)
	const pc = 0x3000
	seed := uint64(12345)
	next := func() bool {
		seed ^= seed << 13
		seed ^= seed >> 7
		seed ^= seed << 17
		return seed&1 == 1
	}
	correct, total := 0, 4000
	for i := 0; i < total; i++ {
		taken := next()
		if p.Predict(0, pc) == taken {
			correct++
		}
		p.Update(0, pc, taken)
	}
	frac := float64(correct) / float64(total)
	if frac < 0.35 || frac > 0.65 {
		t.Errorf("random-outcome accuracy = %.2f, want near 0.5", frac)
	}
}

func TestPredictorPerThreadHistory(t *testing.T) {
	p := New(10)
	// Thread 0 trains taken; thread 1's history must be untouched.
	if p.history[1] != 0 {
		t.Fatal("fresh predictor has nonzero history")
	}
	p.Update(0, 0x100, true)
	if p.history[1] != 0 {
		t.Error("thread 0 update changed thread 1 history")
	}
	if p.history[0] == 0 {
		t.Error("thread 0 history not updated")
	}
}

func TestPredictorUpdateReportsCorrectness(t *testing.T) {
	p := New(8)
	const pc = 0x500
	// Fresh counters are weakly taken: predicting a not-taken branch is wrong.
	if got := p.Update(0, pc, false); got {
		t.Error("Update reported correct for mispredicted not-taken branch")
	}
}

func TestPredictorReset(t *testing.T) {
	p := New(8)
	for i := 0; i < 10; i++ {
		p.Update(0, 0x700, false)
	}
	p.Reset()
	if !p.Predict(0, 0x700) {
		t.Error("Reset did not restore weakly-taken state")
	}
}

func TestNewPanicsOnBadBits(t *testing.T) {
	for _, bits := range []uint{0, 25} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d) did not panic", bits)
				}
			}()
			New(bits)
		}()
	}
}

// Property: counters saturate within [0,3]; Predict is consistent with the
// counter threshold after any update sequence.
func TestPredictorSaturationProperty(t *testing.T) {
	f := func(outcomes []bool) bool {
		p := New(6)
		const pc = 0xabc
		for _, o := range outcomes {
			p.Update(0, pc, o)
		}
		for _, c := range p.table {
			if c > 3 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
