// Package branch models the POWER5 branch prediction relevant to the
// paper's micro-benchmarks: a Branch History Table of 2-bit saturating
// counters indexed by branch address XOR global history (gshare-style).
// br_hit (all outcomes equal) trains to ~100% accuracy; br_miss
// (pseudo-random outcomes) stays near 50%.
package branch

// Predictor is a gshare predictor with per-thread global history. The
// POWER5 BHT is shared between the two hardware threads of a core; the
// history registers are per-thread.
type Predictor struct {
	bits    uint
	mask    uint32
	table   []uint8 // 2-bit counters, initialized weakly taken
	history [2]uint32
}

// New returns a predictor with 2^bits counters.
func New(bits uint) *Predictor {
	if bits == 0 || bits > 24 {
		panic("branch: table bits must be in 1..24")
	}
	p := &Predictor{bits: bits, mask: (1 << bits) - 1}
	p.table = make([]uint8, 1<<bits)
	for i := range p.table {
		p.table[i] = 2 // weakly taken: loop branches predict well fast
	}
	return p
}

func (p *Predictor) index(thread int, pc uint64) uint32 {
	return (uint32(pc>>2) ^ p.history[thread]) & p.mask
}

// Predict returns the predicted direction for the branch at pc.
func (p *Predictor) Predict(thread int, pc uint64) bool {
	return p.table[p.index(thread, pc)] >= 2
}

// Update trains the predictor with the resolved outcome and reports whether
// the prediction was correct.
func (p *Predictor) Update(thread int, pc uint64, taken bool) bool {
	i := p.index(thread, pc)
	pred := p.table[i] >= 2
	if taken && p.table[i] < 3 {
		p.table[i]++
	}
	if !taken && p.table[i] > 0 {
		p.table[i]--
	}
	h := p.history[thread] << 1
	if taken {
		h |= 1
	}
	p.history[thread] = h & p.mask
	return pred == taken
}

// Reset clears history and counters.
func (p *Predictor) Reset() {
	for i := range p.table {
		p.table[i] = 2
	}
	p.history = [2]uint32{}
}
