package workload

import (
	"strings"
	"testing"

	"power5prio/internal/isa"
	"power5prio/internal/microbench"
	"power5prio/internal/spec"
)

// customKernel builds a small valid kernel for registration tests.
func customKernel(name string, iters int) *isa.Kernel {
	b := isa.NewBuilder(name)
	a := b.Reg("a")
	v := b.Reg("v")
	s := b.Stream(isa.StreamSpec{Kind: isa.StreamStride, Footprint: 8 << 10, Stride: 128})
	b.Load(v, s, isa.Reg(-1))
	b.Op2(isa.OpIntAdd, a, a, v)
	b.Branch(isa.BranchLoop, a)
	return b.MustBuild(iters)
}

func TestResolveBuiltins(t *testing.T) {
	r := NewRegistry()
	for _, n := range microbench.Names() {
		ref, err := r.Resolve(n)
		if err != nil {
			t.Fatalf("Resolve(%s): %v", n, err)
		}
		if ref.Family != Micro || ref.Name != n || ref.Fingerprint == 0 {
			t.Errorf("Resolve(%s) = %+v", n, ref)
		}
	}
	for _, n := range spec.Names() {
		ref, err := r.Resolve(n)
		if err != nil {
			t.Fatalf("Resolve(%s): %v", n, err)
		}
		if ref.Family != Spec {
			t.Errorf("Resolve(%s).Family = %v, want spec", n, ref.Family)
		}
	}
	if _, err := r.Resolve("no_such_workload"); err == nil {
		t.Error("Resolve accepted an unknown name")
	}
	if _, err := r.Resolve(""); err == nil {
		t.Error("Resolve accepted the empty name")
	}
	if !r.Contains("cpu_int") || r.Contains("nope") {
		t.Error("Contains disagrees with Resolve")
	}
}

// TestRefsStableAcrossInstances: built-in Refs are pure values — two
// registries mint identical Refs, so jobs cache across engine instances.
func TestRefsStableAcrossInstances(t *testing.T) {
	a, b := NewRegistry(), NewRegistry()
	for _, n := range []string{"cpu_int", "mcf"} {
		ra, _ := a.Resolve(n)
		rb, _ := b.Resolve(n)
		if ra != rb {
			t.Errorf("Resolve(%s) differs across instances: %+v vs %+v", n, ra, rb)
		}
	}
}

func TestNamesUnion(t *testing.T) {
	r := NewRegistry()
	want := len(microbench.Names()) + len(spec.Names())
	if got := len(r.Names()); got != want {
		t.Fatalf("Names() = %d entries, want %d", got, want)
	}
	if _, err := r.Register(customKernel("my_kernel", 16)); err != nil {
		t.Fatal(err)
	}
	names := r.Names()
	if len(names) != want+1 {
		t.Fatalf("Names() after Register = %d entries, want %d", len(names), want+1)
	}
	if names[len(names)-1] < names[0] {
		t.Error("Names() not sorted")
	}
}

func TestRegisterRules(t *testing.T) {
	r := NewRegistry()
	k := customKernel("my_kernel", 16)
	ref, err := r.Register(k)
	if err != nil {
		t.Fatal(err)
	}
	if ref.Family != Custom || ref.Name != "my_kernel" || ref.Fingerprint == 0 {
		t.Fatalf("Register ref = %+v", ref)
	}

	// Idempotent: same pointer, and same content under the same name.
	if again, err := r.Register(k); err != nil || again != ref {
		t.Errorf("re-Register(same kernel) = (%+v, %v), want (%+v, nil)", again, err, ref)
	}
	if again, err := r.Register(customKernel("my_kernel", 16)); err != nil || again != ref {
		t.Errorf("re-Register(equal content) = (%+v, %v), want (%+v, nil)", again, err, ref)
	}

	// Different content under a taken name is rejected.
	if _, err := r.Register(customKernel("my_kernel", 32)); err == nil {
		t.Error("Register replaced an existing registration")
	}
	// Built-in names cannot be shadowed.
	if _, err := r.Register(customKernel("cpu_int", 16)); err == nil {
		t.Error("Register shadowed a built-in name")
	}
	// Invalid kernels are rejected.
	if _, err := r.Register(nil); err == nil {
		t.Error("Register accepted nil")
	}
	if _, err := r.Register(&isa.Kernel{Name: "empty"}); err == nil {
		t.Error("Register accepted an invalid kernel")
	}

	if got, err := r.Resolve("my_kernel"); err != nil || got != ref {
		t.Errorf("Resolve(my_kernel) = (%+v, %v)", got, err)
	}
}

// TestMutationAfterRegister: mutating a kernel after registering it can
// neither change what jobs simulate (the registry snapshotted it) nor
// sneak the stale Ref back out of an idempotent re-registration.
func TestMutationAfterRegister(t *testing.T) {
	r := NewRegistry()
	k := customKernel("mut", 100)
	ref, err := r.Register(k)
	if err != nil {
		t.Fatal(err)
	}

	k.Iters = 1000 // caller mutates the registered kernel

	built, err := r.Build(ref, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if built.Iters != 100 {
		t.Errorf("mutation leaked into the registry: built iters %d, want the snapshot's 100", built.Iters)
	}
	// Re-registering the mutated kernel must NOT return the stale Ref —
	// that would serve pre-mutation cached results for the new content.
	if again, err := r.Register(k); err == nil {
		t.Errorf("mutated re-registration returned %+v, want an error", again)
	}
	// Restoring the content makes re-registration idempotent again.
	k.Iters = 100
	if again, err := r.Register(k); err != nil || again != ref {
		t.Errorf("restored re-registration = (%+v, %v), want (%+v, nil)", again, err, ref)
	}
}

// TestFingerprintSeparatesContent: kernels differing only in iteration
// count, body or streams get distinct fingerprints.
func TestFingerprintSeparatesContent(t *testing.T) {
	a := contentFingerprint(customKernel("k", 16), 0)
	b := contentFingerprint(customKernel("k", 32), 0)
	if a == b {
		t.Error("fingerprint ignores iteration count")
	}
	c := contentFingerprint(customKernel("other", 16), 0)
	if a == c {
		t.Error("fingerprint ignores name")
	}
	if a != contentFingerprint(customKernel("k", 16), 0) {
		t.Error("fingerprint is not deterministic")
	}
}

// TestPatternKernelsNeverAlias: pattern-bearing kernels are identity
// fingerprinted — equal bodies still get distinct refs.
func TestPatternKernelsNeverAlias(t *testing.T) {
	build := func(name string) *isa.Kernel {
		b := isa.NewBuilder(name)
		a := b.Reg("a")
		b.Op2(isa.OpIntAdd, a, a, a)
		b.Branch(isa.BranchPattern, a)
		b.Branch(isa.BranchLoop, a)
		b.Pattern(func(n uint64) bool { return n%2 == 0 })
		return b.MustBuild(16)
	}
	r := NewRegistry()
	ra, err := r.Register(build("pat_a"))
	if err != nil {
		t.Fatal(err)
	}
	rb, err := r.Register(build("pat_b"))
	if err != nil {
		t.Fatal(err)
	}
	// Same body, different names and nonces: fingerprints must differ even
	// with the name contribution removed, so test two registries with the
	// SAME name.
	r2 := NewRegistry()
	ra2, err := r2.Register(build("pat_a"))
	if err != nil {
		t.Fatal(err)
	}
	if ra.Fingerprint == rb.Fingerprint {
		t.Error("distinct pattern kernels share a fingerprint")
	}
	if ra.Fingerprint == ra2.Fingerprint {
		t.Error("pattern kernels alias across registrations")
	}
	// Re-registering a different pattern kernel under a taken name fails.
	if _, err := r.Register(build("pat_a")); err == nil {
		t.Error("pattern kernel re-registration did not error")
	}
}

// TestPatternSwapRejected: swapping the Pattern function on an
// already-registered kernel must not be served the stale registration —
// the registry snapshot would keep simulating the old behaviour.
func TestPatternSwapRejected(t *testing.T) {
	b := isa.NewBuilder("pat_swap")
	a := b.Reg("a")
	b.Op2(isa.OpIntAdd, a, a, a)
	b.Branch(isa.BranchPattern, a)
	b.Branch(isa.BranchLoop, a)
	b.Pattern(func(n uint64) bool { return n%2 == 0 })
	k := b.MustBuild(16)

	r := NewRegistry()
	ref1, err := r.Register(k)
	if err != nil {
		t.Fatal(err)
	}
	// The unmutated kernel is still idempotent.
	ref2, err := r.Register(k)
	if err != nil || ref1 != ref2 {
		t.Fatalf("unmutated re-registration: ref %v vs %v, err %v", ref1, ref2, err)
	}
	// Same kernel pointer, different pattern code: must be rejected.
	k.Pattern = alwaysTaken
	if _, err := r.Register(k); err == nil {
		t.Error("re-registration with a swapped pattern function returned the stale ref")
	}
}

// alwaysTaken is a distinct pattern function (separate code pointer
// from the closure in TestPatternSwapRejected).
func alwaysTaken(uint64) bool { return true }

func TestBuild(t *testing.T) {
	r := NewRegistry()
	ref, _ := r.Resolve("cpu_int")
	k, err := r.Build(ref, 1.0)
	if err != nil || k == nil {
		t.Fatalf("Build(cpu_int): %v", err)
	}
	direct, _ := microbench.Build("cpu_int")
	if k.Iters != direct.Iters || len(k.Body) != len(direct.Body) {
		t.Errorf("registry build differs from direct microbench build")
	}

	sref, _ := r.Resolve("mcf")
	if _, err := r.Build(sref, 0.5); err != nil {
		t.Errorf("Build(mcf, 0.5): %v", err)
	}

	// Custom: default scale returns the registration-time snapshot (not
	// the caller's kernel), smaller scales a copy with clamped iterations.
	ck := customKernel("mine", 100)
	cref, err := r.Register(ck)
	if err != nil {
		t.Fatal(err)
	}
	got, err := r.Build(cref, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if got == ck {
		t.Error("Build(custom, 1.0) returned the caller's kernel, not a registry snapshot")
	}
	if got.Iters != 100 || len(got.Body) != len(ck.Body) {
		t.Errorf("snapshot content differs: iters %d, body %d", got.Iters, len(got.Body))
	}
	scaled, err := r.Build(cref, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if scaled == got || scaled.Iters != 50 {
		t.Errorf("Build(custom, 0.5): iters %d (copy: %v), want a 50-iter copy", scaled.Iters, scaled != got)
	}
	if ck.Iters != 100 {
		t.Errorf("scaling mutated the caller's kernel: iters %d", ck.Iters)
	}
	tiny, err := r.Build(cref, 0.001)
	if err != nil {
		t.Fatal(err)
	}
	if tiny.Iters != 8 {
		t.Errorf("Build(custom, 0.001): iters %d, want the minimum 8", tiny.Iters)
	}

	// Stale and forged refs fail loudly.
	if _, err := r.Build(Ref{Name: "mine", Family: Custom, Fingerprint: cref.Fingerprint + 1}, 1.0); err == nil {
		t.Error("Build accepted a stale custom ref")
	}
	if _, err := r.Build(Ref{Name: "cpu_int", Family: Micro, Fingerprint: 12345}, 1.0); err == nil {
		t.Error("Build accepted a forged built-in ref")
	}
	if _, err := r.Build(Ref{Name: "ghost", Family: Custom, Fingerprint: 1}, 1.0); err == nil {
		t.Error("Build accepted an unknown custom ref")
	}
	if _, err := r.Build(Ref{}, 1.0); err == nil {
		t.Error("Build accepted the zero ref")
	}
}

func TestStrings(t *testing.T) {
	if Micro.String() != "micro" || Spec.String() != "spec" || Custom.String() != "custom" {
		t.Errorf("family strings: %q %q %q", Micro, Spec, Custom)
	}
	if s := Family(9).String(); !strings.Contains(s, "9") {
		t.Errorf("unknown family string %q", s)
	}
	if (Ref{}).String() != "<none>" {
		t.Errorf("zero ref string %q", Ref{}.String())
	}
	ref := Ref{Name: "cpu_int", Family: Micro, Fingerprint: 1}
	if got := ref.String(); got != "micro/cpu_int" {
		t.Errorf("ref string %q", got)
	}
	if ref.IsZero() || !(Ref{}).IsZero() {
		t.Error("IsZero misbehaves")
	}
}
