// Package workload is the unified workload namespace behind every
// measurement path. It resolves the paper's micro-benchmarks, the
// synthetic SPEC stand-ins and user-registered custom kernels through one
// registry, so a measurement spec can name any workload — and mix
// families within a pair — without caring where the kernel comes from.
//
// Resolution produces a Ref: a small comparable value carrying the
// workload's name, family and a content fingerprint. Refs are designed to
// be embedded in engine cache keys: two Refs are equal exactly when they
// denote the same kernel content, so a registry-resolved job memoizes
// like any other and a re-registered custom kernel can never be served a
// stale cached result.
package workload

import (
	crand "crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"reflect"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"power5prio/internal/isa"
	"power5prio/internal/microbench"
	"power5prio/internal/spec"
)

// Family classifies where a workload's kernel comes from.
type Family uint8

const (
	// Micro is one of the paper's fifteen micro-benchmarks (Table 2).
	Micro Family = iota + 1
	// Spec is a synthetic SPEC stand-in (h264ref, mcf, applu, equake).
	Spec
	// Custom is a user-registered kernel.
	Custom
)

// String names the family for diagnostics.
func (f Family) String() string {
	switch f {
	case Micro:
		return "micro"
	case Spec:
		return "spec"
	case Custom:
		return "custom"
	}
	return fmt.Sprintf("Family(%d)", uint8(f))
}

// Ref is a resolved workload handle: a comparable value identifying one
// kernel's content. The zero Ref means "no workload" (e.g. the empty
// secondary slot of a single-thread job).
type Ref struct {
	Name        string
	Family      Family
	Fingerprint uint64
}

// IsZero reports whether the Ref is the empty "no workload" value.
func (r Ref) IsZero() bool { return r == Ref{} }

// String renders the ref for diagnostics.
func (r Ref) String() string {
	if r.IsZero() {
		return "<none>"
	}
	return fmt.Sprintf("%s/%s", r.Family, r.Name)
}

// customEntry is one registered kernel with its precomputed ref. k is a
// registry-owned snapshot — callers mutating their kernel after
// registration cannot change what jobs simulate or alias the cache.
type customEntry struct {
	k     *isa.Kernel // immutable snapshot
	orig  *isa.Kernel // caller's pointer, for idempotent re-registration
	nonce uint64
	ref   Ref
}

// Registry is one namespace of workloads: the built-in families plus
// custom registrations. A Registry is safe for concurrent use. The zero
// value is not usable; call NewRegistry.
type Registry struct {
	mu      sync.RWMutex
	builtin map[string]Ref
	custom  map[string]customEntry
}

// patternNonce distinguishes fingerprints of kernels whose branch-pattern
// functions cannot be content-hashed; see Register.
var patternNonce atomic.Uint64

// patternSalt makes pattern nonces unique across processes, not only
// within one. A pattern function's behaviour is not part of the content
// fingerprint, so fingerprints of pattern-bearing kernels minted by two
// different processes must never collide either — they feed the
// persistent cache key, and a shared cache directory would otherwise
// serve one process's results for the other's behaviourally different
// kernel. The flip side is intentional: pattern-kernel results are
// never reused across processes, because no process can prove another's
// pattern function equal to its own.
var patternSalt = func() uint64 {
	var b [8]byte
	if _, err := crand.Read(b[:]); err != nil {
		return uint64(time.Now().UnixNano()) // exceptional fallback
	}
	return binary.LittleEndian.Uint64(b[:])
}()

// nextPatternNonce mints a nonce unique within the process (counter)
// and across processes (salt).
func nextPatternNonce() uint64 {
	h := fnv.New64a()
	var buf [16]byte
	binary.LittleEndian.PutUint64(buf[:8], patternSalt)
	binary.LittleEndian.PutUint64(buf[8:], patternNonce.Add(1))
	h.Write(buf[:])
	return h.Sum64()
}

// NewRegistry returns a registry preloaded with the built-in workloads:
// the fifteen micro-benchmarks and the four synthetic SPEC stand-ins.
func NewRegistry() *Registry {
	r := &Registry{
		builtin: make(map[string]Ref),
		custom:  make(map[string]customEntry),
	}
	for _, n := range microbench.Names() {
		r.builtin[n] = Ref{Name: n, Family: Micro, Fingerprint: builtinFingerprint(Micro, n)}
	}
	for _, n := range spec.Names() {
		// Micro-benchmark names win collisions, mirroring the historical
		// micro-first resolution order (no built-in names collide today).
		if _, ok := r.builtin[n]; !ok {
			r.builtin[n] = Ref{Name: n, Family: Spec, Fingerprint: builtinFingerprint(Spec, n)}
		}
	}
	return r
}

// Resolve maps a workload name to its Ref: micro-benchmarks first, then
// SPEC stand-ins, then custom registrations.
func (r *Registry) Resolve(name string) (Ref, error) {
	if name == "" {
		return Ref{}, errors.New("workload: empty workload name")
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	if ref, ok := r.builtin[name]; ok {
		return ref, nil
	}
	if e, ok := r.custom[name]; ok {
		return e.ref, nil
	}
	return Ref{}, fmt.Errorf("workload: unknown workload %q", name)
}

// Contains reports whether the name resolves in this registry.
func (r *Registry) Contains(name string) bool {
	_, err := r.Resolve(name)
	return err == nil
}

// Names returns every resolvable workload name, sorted.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.builtin)+len(r.custom))
	for n := range r.builtin {
		out = append(out, n)
	}
	for n := range r.custom {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Register adds a custom kernel under its own name and returns its Ref.
// The registry stores a snapshot of the kernel, fingerprinted by
// content, so jobs built from the Ref cache correctly alongside built-in
// workloads and later mutations of the caller's kernel cannot alias the
// cache or perturb in-flight simulations. Registration rules:
//
//   - the name must not shadow a built-in workload;
//   - re-registering a kernel whose content still matches the existing
//     registration (the same kernel unmutated, or a pattern-free kernel
//     with identical content) is idempotent and returns the existing Ref;
//   - anything else under a taken name is an error — replacement would
//     silently strand outstanding Refs, and a mutated kernel no longer
//     matches its recorded fingerprint.
//
// Kernels with a branch-pattern function are fingerprinted by
// registration identity rather than content (a Go function has no stable
// content hash), so two pattern-bearing registrations never alias in the
// cache even if their bodies match.
func (r *Registry) Register(k *isa.Kernel) (Ref, error) {
	if k == nil {
		return Ref{}, errors.New("workload: Register needs a kernel")
	}
	if k.Name == "" {
		return Ref{}, errors.New("workload: custom kernel needs a name")
	}
	if err := k.Validate(); err != nil {
		return Ref{}, err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.builtin[k.Name]; ok {
		return Ref{}, fmt.Errorf("workload: %q is a built-in workload name", k.Name)
	}
	if e, ok := r.custom[k.Name]; ok {
		// Idempotent only while the content still hashes to the recorded
		// fingerprint: a mutated kernel must not get its stale Ref back.
		// Pattern-bearing kernels additionally require pointer identity
		// of both the kernel and the pattern function's code — content
		// equality cannot prove two pattern functions equal, and a
		// swapped Pattern on the same kernel pointer must not be served
		// the old registration. (Re-binding the same closure code over
		// different captured state remains undetectable; treat pattern
		// functions as immutable after registration.)
		samePattern := (k.Pattern == nil && e.k.Pattern == nil) ||
			(e.orig == k && k.Pattern != nil && e.k.Pattern != nil &&
				reflect.ValueOf(k.Pattern).Pointer() == reflect.ValueOf(e.k.Pattern).Pointer())
		if samePattern && contentFingerprint(k, e.nonce) == e.ref.Fingerprint {
			return e.ref, nil
		}
		return Ref{}, fmt.Errorf("workload: %q already registered with different content", k.Name)
	}
	var nonce uint64
	if k.Pattern != nil {
		nonce = nextPatternNonce()
	}
	ref := Ref{Name: k.Name, Family: Custom, Fingerprint: contentFingerprint(k, nonce)}
	r.custom[k.Name] = customEntry{k: snapshotKernel(k), orig: k, nonce: nonce, ref: ref}
	return ref, nil
}

// snapshotKernel copies everything content-addressed by the fingerprint
// (the Pattern function pointer is shared; it is called, never written).
func snapshotKernel(k *isa.Kernel) *isa.Kernel {
	kc := *k
	kc.Body = append([]isa.Template(nil), k.Body...)
	kc.Streams = append([]isa.StreamSpec(nil), k.Streams...)
	return &kc
}

// Build materializes the kernel a Ref denotes at the given iteration
// scale (0 or 1 = the workload's defaults). The Ref's fingerprint is
// verified, so a Ref minted before a registry diverged (or forged by
// hand) fails loudly instead of measuring the wrong workload.
func (r *Registry) Build(ref Ref, iterScale float64) (*isa.Kernel, error) {
	switch ref.Family {
	case Micro:
		if err := r.checkBuiltin(ref); err != nil {
			return nil, err
		}
		return microbench.BuildWith(ref.Name, microbench.Params{IterScale: iterScale})
	case Spec:
		if err := r.checkBuiltin(ref); err != nil {
			return nil, err
		}
		return spec.BuildWith(ref.Name, spec.Params{IterScale: iterScale})
	case Custom:
		r.mu.RLock()
		e, ok := r.custom[ref.Name]
		r.mu.RUnlock()
		if !ok {
			return nil, fmt.Errorf("workload: unknown custom workload %q", ref.Name)
		}
		if e.ref.Fingerprint != ref.Fingerprint {
			return nil, fmt.Errorf("workload: stale reference to custom workload %q", ref.Name)
		}
		return scaleKernel(e.k, iterScale), nil
	}
	return nil, fmt.Errorf("workload: cannot build %v", ref)
}

// checkBuiltin verifies a built-in Ref against the canonical entry.
func (r *Registry) checkBuiltin(ref Ref) error {
	r.mu.RLock()
	canonical, ok := r.builtin[ref.Name]
	r.mu.RUnlock()
	if !ok || canonical != ref {
		return fmt.Errorf("workload: invalid %s workload reference %q", ref.Family, ref.Name)
	}
	return nil
}

// scaleKernel applies an iteration scale to a custom kernel, returning
// the registry's snapshot itself at the default scale (kernels are
// read-only during simulation) and a shallow copy otherwise. The minimum
// of 8 iterations matches the built-in families.
func scaleKernel(k *isa.Kernel, iterScale float64) *isa.Kernel {
	if iterScale <= 0 || iterScale == 1.0 {
		return k
	}
	iters := int(float64(k.Iters) * iterScale)
	if iters < 8 {
		iters = 8
	}
	kc := *k
	kc.Iters = iters
	return &kc
}

// builtinFingerprint hashes a built-in workload's identity. Built-in
// kernel bodies are compiled in, so family+name is already a complete
// content key for one build of the binary.
func builtinFingerprint(f Family, name string) uint64 {
	h := fnv.New64a()
	h.Write([]byte{byte(f), 0})
	h.Write([]byte(name))
	return h.Sum64()
}

// contentFingerprint hashes everything that determines a custom kernel's
// simulated behaviour: name, iteration count, every body template and
// every stream spec. nonce is nonzero only for pattern-bearing kernels.
func contentFingerprint(k *isa.Kernel, nonce uint64) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	u64 := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	i64 := func(v int64) { u64(uint64(v)) }

	h.Write([]byte{byte(Custom), 0})
	h.Write([]byte(k.Name))
	h.Write([]byte{0})
	i64(int64(k.Iters))
	i64(int64(len(k.Body)))
	for _, t := range k.Body {
		i64(int64(t.Op))
		i64(int64(t.DepA))
		i64(int64(t.DepB))
		i64(int64(t.Stream))
		i64(int64(t.Branch))
		i64(int64(t.Prio))
	}
	i64(int64(len(k.Streams)))
	for _, s := range k.Streams {
		i64(int64(s.Kind))
		u64(s.Footprint)
		u64(s.Stride)
		u64(s.Base)
		u64(s.Seed)
		if s.Prewarm {
			u64(1)
		} else {
			u64(0)
		}
	}
	u64(nonce)
	return h.Sum64()
}
