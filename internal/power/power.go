// Package power provides an activity-based energy model for the simulated
// core. Power management is one of the motivations the paper lists for
// software-controlled priorities (Section 1), and the (1,1) pair is an
// architected low-power mode: the core decodes one instruction every 32
// cycles. This model quantifies that saving.
//
// The model is an event-energy proxy (arbitrary units, calibrated only for
// relative comparisons): a base cost per cycle, per-event costs for
// decode, issue by unit class, and memory accesses by hit level, plus a
// cost per occupied GCT entry per cycle.
package power

import (
	"fmt"

	"power5prio/internal/isa"
	"power5prio/internal/mem"
	"power5prio/internal/pipeline"
)

// Model holds per-event energies (arbitrary units).
type Model struct {
	BasePerCycle   float64
	PerDecode      float64 // per instruction entering a dispatch group
	PerIssue       [isa.UnitCount]float64
	PerHit         [mem.HitLevelCount]float64
	PerGCTPerCycle float64
}

// DefaultModel returns energies with plausible relative magnitudes
// (memory accesses orders of magnitude above register ops).
func DefaultModel() Model {
	return Model{
		BasePerCycle: 1.0,
		PerDecode:    0.4,
		PerIssue: [isa.UnitCount]float64{
			isa.UnitFX: 0.5, isa.UnitLS: 0.8, isa.UnitFP: 1.0, isa.UnitBR: 0.3,
		},
		PerHit: [mem.HitLevelCount]float64{
			mem.HitL1: 1.0, mem.HitL2: 6.0, mem.HitL3: 20.0, mem.HitMem: 60.0,
		},
		PerGCTPerCycle: 0.05,
	}
}

// Report breaks down estimated consumption.
type Report struct {
	Cycles   uint64
	Energy   float64
	AvgPower float64 // energy per cycle
	ByPart   map[string]float64
}

// String renders a one-line summary.
func (r Report) String() string {
	return fmt.Sprintf("cycles=%d energy=%.0f avg-power=%.3f", r.Cycles, r.Energy, r.AvgPower)
}

// Estimate computes the report for one core and its two hardware threads'
// memory traffic.
func (m Model) Estimate(c *pipeline.Core, h *mem.Hierarchy, coreID int) Report {
	cs := c.CoreStats()
	parts := map[string]float64{}
	parts["base"] = m.BasePerCycle * float64(cs.Cycles)
	parts["decode"] = m.PerDecode * float64(cs.DecodedInstrs)
	issue := 0.0
	for u := 0; u < isa.UnitCount; u++ {
		issue += m.PerIssue[u] * float64(cs.IssuedByUnit[u])
	}
	parts["issue"] = issue
	memE := 0.0
	for t := 0; t < 2; t++ {
		st := h.StatsFor(coreID, t)
		for lvl := 0; lvl < mem.HitLevelCount; lvl++ {
			memE += m.PerHit[lvl] * float64(st.Hits[lvl])
		}
	}
	parts["memory"] = memE
	parts["gct"] = m.PerGCTPerCycle * float64(cs.GCTOccupSum)

	var total float64
	for _, v := range parts {
		total += v
	}
	rep := Report{Cycles: cs.Cycles, Energy: total, ByPart: parts}
	if cs.Cycles > 0 {
		rep.AvgPower = total / float64(cs.Cycles)
	}
	return rep
}
