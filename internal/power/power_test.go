package power

import (
	"testing"

	"power5prio/internal/core"
	"power5prio/internal/microbench"
	"power5prio/internal/prio"
)

// runPair executes a cpu_int pair at the given priorities and returns the
// power report for the experiment core.
func runPair(t *testing.T, pa, pb prio.Level, cycles int) Report {
	t.Helper()
	k, err := microbench.BuildWith(microbench.CPUInt, microbench.Params{Iters: 32})
	if err != nil {
		t.Fatal(err)
	}
	ch := core.NewChip(core.DefaultConfig())
	ch.PlacePair(k, k, pa, pb, prio.Supervisor)
	for i := 0; i < cycles; i++ {
		ch.Step()
	}
	cfg := ch.Config()
	return DefaultModel().Estimate(ch.ExperimentCore(), ch.Hier, cfg.ExperimentCore)
}

// TestLowPowerModeSavesPower: the (1,1) pair must consume far less than
// the (4,4) default — the architected low-power mode.
func TestLowPowerModeSavesPower(t *testing.T) {
	normal := runPair(t, prio.Medium, prio.Medium, 20000)
	lowpow := runPair(t, prio.VeryLow, prio.VeryLow, 20000)
	if lowpow.AvgPower >= normal.AvgPower/2 {
		t.Errorf("low-power mode avg power %.3f, want well below half of normal %.3f",
			lowpow.AvgPower, normal.AvgPower)
	}
	// Base power is still consumed every cycle.
	if lowpow.AvgPower < DefaultModel().BasePerCycle {
		t.Errorf("avg power %.3f below base %.3f", lowpow.AvgPower, DefaultModel().BasePerCycle)
	}
}

// TestReportBreakdownConsistent: the parts sum to the total.
func TestReportBreakdownConsistent(t *testing.T) {
	rep := runPair(t, prio.Medium, prio.Medium, 5000)
	sum := 0.0
	for _, v := range rep.ByPart {
		sum += v
	}
	if diff := rep.Energy - sum; diff > 1e-6 || diff < -1e-6 {
		t.Errorf("energy %.3f != sum of parts %.3f", rep.Energy, sum)
	}
	if rep.Cycles == 0 || rep.AvgPower <= 0 {
		t.Errorf("empty report: %+v", rep)
	}
	if rep.String() == "" {
		t.Error("String() empty")
	}
}

// TestIdleCoreBurnsBaseOnly: a core with no workloads consumes only base
// power.
func TestIdleCoreBurnsBaseOnly(t *testing.T) {
	ch := core.NewChip(core.DefaultConfig())
	for i := 0; i < 1000; i++ {
		ch.Step()
	}
	cfg := ch.Config()
	rep := DefaultModel().Estimate(ch.ExperimentCore(), ch.Hier, cfg.ExperimentCore)
	if rep.AvgPower != DefaultModel().BasePerCycle {
		t.Errorf("idle core avg power %.3f, want base only %.3f", rep.AvgPower, DefaultModel().BasePerCycle)
	}
}

// TestMemoryWorkloadEnergyProfile: a memory-bound thread's energy skews
// toward the memory part.
func TestMemoryWorkloadEnergyProfile(t *testing.T) {
	k, err := microbench.BuildWith(microbench.LdIntMem, microbench.Params{Iters: 16})
	if err != nil {
		t.Fatal(err)
	}
	ch := core.NewChip(core.DefaultConfig())
	ch.PlacePair(k, nil, prio.Medium, prio.Medium, prio.User)
	for i := 0; i < 40000; i++ {
		ch.Step()
	}
	cfg := ch.Config()
	rep := DefaultModel().Estimate(ch.ExperimentCore(), ch.Hier, cfg.ExperimentCore)
	if rep.ByPart["memory"] <= rep.ByPart["issue"] {
		t.Errorf("memory-bound energy: memory %.1f should exceed issue %.1f",
			rep.ByPart["memory"], rep.ByPart["issue"])
	}
}
