package oskernel

import (
	"testing"

	"power5prio/internal/core"
	"power5prio/internal/fame"
	"power5prio/internal/microbench"
	"power5prio/internal/prio"
)

func TestDefaultConfigValid(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("DefaultConfig invalid: %v", err)
	}
}

func TestConfigValidateRejects(t *testing.T) {
	if err := (Config{TickCycles: 0}).Validate(); err == nil {
		t.Error("accepted zero tick")
	}
	if err := (Config{TickCycles: 100, HandlerCycles: 100}).Validate(); err == nil {
		t.Error("accepted handler as long as the tick")
	}
}

func TestNewPanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New accepted invalid config")
		}
	}()
	New(core.NewChip(core.DefaultConfig()), Config{})
}

func place(t *testing.T, ch *core.Chip, pa, pb prio.Level) {
	t.Helper()
	k, err := microbench.BuildWith(microbench.CPUInt, microbench.Params{Iters: 24})
	if err != nil {
		t.Fatal(err)
	}
	ch.PlacePair(k, k, pa, pb, prio.Supervisor)
}

// TestUnpatchedKernelResetsPriorities: the stock kernel decays a (6,2)
// setup back to MEDIUM at the first tick.
func TestUnpatchedKernelResetsPriorities(t *testing.T) {
	ch := core.NewChip(core.DefaultConfig())
	place(t, ch, prio.High, prio.Low)
	cfg := DefaultConfig()
	cfg.TickCycles = 1000
	cfg.HandlerCycles = 10
	os := New(ch, cfg)
	for i := 0; i < 2000; i++ {
		os.Step()
	}
	c := ch.ExperimentCore()
	if c.Priority(0) != prio.Medium || c.Priority(1) != prio.Medium {
		t.Errorf("priorities after tick = (%v,%v), want (medium,medium)", c.Priority(0), c.Priority(1))
	}
	if os.Resets == 0 || os.Ticks == 0 {
		t.Errorf("resets=%d ticks=%d, want both > 0", os.Resets, os.Ticks)
	}
}

// TestPatchedKernelPreservesPriorities: the paper's patch keeps the user's
// settings across ticks.
func TestPatchedKernelPreservesPriorities(t *testing.T) {
	ch := core.NewChip(core.DefaultConfig())
	place(t, ch, prio.High, prio.Low)
	cfg := DefaultConfig()
	cfg.Patched = true
	cfg.TickCycles = 1000
	cfg.HandlerCycles = 10
	os := New(ch, cfg)
	for i := 0; i < 2000; i++ {
		os.Step()
	}
	c := ch.ExperimentCore()
	if c.Priority(0) != prio.High || c.Priority(1) != prio.Low {
		t.Errorf("patched kernel changed priorities: (%v,%v)", c.Priority(0), c.Priority(1))
	}
	if os.Resets != 0 {
		t.Errorf("patched kernel performed %d resets", os.Resets)
	}
}

// TestUnpatchedKernelErasesPrioritizationBenefit: with frequent ticks, a
// prioritized thread's advantage collapses toward the (4,4) baseline —
// the paper's motivation for the kernel patch.
func TestUnpatchedKernelErasesPrioritizationBenefit(t *testing.T) {
	if testing.Short() {
		t.Skip("long test")
	}
	run := func(patched bool) float64 {
		ch := core.NewChip(core.DefaultConfig())
		place(t, ch, prio.High, prio.Low)
		cfg := Config{Patched: patched, TickCycles: 2000, HandlerCycles: 20}
		os := New(ch, cfg)
		res := fame.Measure(os, fame.Options{MinReps: 4, WarmupReps: 1, MaxCycles: 50_000_000})
		return res.Thread[0].IPC
	}
	patched := run(true)
	unpatched := run(false)
	if unpatched >= patched*0.97 {
		t.Errorf("unpatched kernel should erode the prioritized thread: patched %.3f vs unpatched %.3f",
			patched, unpatched)
	}
}

// TestOSImplementsMachine: the wrapper satisfies the FAME machine
// interface.
func TestOSImplementsMachine(t *testing.T) {
	var _ fame.Machine = (*OS)(nil)
}

func TestKernelLoopsValid(t *testing.T) {
	if err := IdleKernel().Validate(); err != nil {
		t.Errorf("IdleKernel invalid: %v", err)
	}
	if err := SpinWaitKernel(4096).Validate(); err != nil {
		t.Errorf("SpinWaitKernel invalid: %v", err)
	}
}

// TestIdleKernelDropsPriority: running the idle loop lowers the thread to
// priority 1 (supervisor privilege required).
func TestIdleKernelDropsPriority(t *testing.T) {
	ch := core.NewChip(core.DefaultConfig())
	ch.PlacePair(IdleKernel(), nil, prio.Medium, prio.Medium, prio.Supervisor)
	c := ch.ExperimentCore()
	for i := 0; i < 2000; i++ {
		ch.Step()
	}
	if c.Priority(0) != prio.VeryLow {
		t.Errorf("idle thread priority = %v, want very-low", c.Priority(0))
	}
}

// TestIdleKernelNeedsPrivilege: in user mode the PrioSet(1) is a nop.
func TestIdleKernelNeedsPrivilege(t *testing.T) {
	ch := core.NewChip(core.DefaultConfig())
	ch.PlacePair(IdleKernel(), nil, prio.Medium, prio.Medium, prio.User)
	c := ch.ExperimentCore()
	for i := 0; i < 2000; i++ {
		ch.Step()
	}
	if c.Priority(0) != prio.Medium {
		t.Errorf("user-mode idle loop changed priority to %v", c.Priority(0))
	}
}

// TestSpinWaitTogglesPriority: the spin loop oscillates between VERY LOW
// while polling and MEDIUM after acquiring.
func TestSpinWaitTogglesPriority(t *testing.T) {
	ch := core.NewChip(core.DefaultConfig())
	ch.PlacePair(SpinWaitKernel(4096), nil, prio.Medium, prio.Medium, prio.Supervisor)
	c := ch.ExperimentCore()
	for i := 0; i < 3000; i++ {
		ch.Step()
	}
	st := c.Stats(0)
	if st.PrioChanges < 4 {
		t.Errorf("spin-wait applied only %d priority changes, want several", st.PrioChanges)
	}
}
