// Package oskernel models the Linux behaviour described in Section 4.3 of
// the paper. A stock kernel (2.6.23) resets the hardware thread priority
// to MEDIUM on every interrupt, exception or system call, because it does
// not track software-controlled priorities — so user-level prioritization
// silently decays at every timer tick. The paper's experiments required a
// kernel patch that (1) stops the kernel from touching priorities and (2)
// exposes the supervisor-only levels to applications.
//
// The package also provides the kernel's own legitimate uses of priority 1
// (the idle loop and spin-wait loops), as instruction kernels.
package oskernel

import (
	"fmt"

	"power5prio/internal/core"
	"power5prio/internal/isa"
	"power5prio/internal/pipeline"
	"power5prio/internal/prio"
)

// Config describes the simulated kernel.
type Config struct {
	// Patched: the paper's kernel patch. When true the kernel never
	// resets thread priorities.
	Patched bool
	// TickCycles is the timer-interrupt period in cycles. At every tick an
	// unpatched kernel resets both threads' priorities to MEDIUM.
	TickCycles uint64
	// HandlerCycles stalls both threads' decode for the handler duration
	// at each tick (interrupt processing overhead).
	HandlerCycles uint64
}

// DefaultConfig models a 250Hz tick on a ~1.65GHz machine, scaled down to
// keep simulations short (the ratio of handler time to tick period is what
// matters for the distortion).
func DefaultConfig() Config {
	return Config{
		Patched:       false,
		TickCycles:    100_000,
		HandlerCycles: 800,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.TickCycles == 0 {
		return fmt.Errorf("oskernel: TickCycles must be positive")
	}
	if c.HandlerCycles >= c.TickCycles {
		return fmt.Errorf("oskernel: handler (%d) must be shorter than the tick (%d)",
			c.HandlerCycles, c.TickCycles)
	}
	return nil
}

// OS wraps a chip with kernel behaviour. It implements fame.Machine.
type OS struct {
	chip     *core.Chip
	cfg      Config
	nextTick uint64
	// Resets counts priority resets the kernel performed.
	Resets uint64
	// Ticks counts timer interrupts delivered.
	Ticks uint64
}

// New wraps the chip. It panics on an invalid configuration.
func New(chip *core.Chip, cfg Config) *OS {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &OS{chip: chip, cfg: cfg, nextTick: cfg.TickCycles}
}

// ExperimentCore returns the measured core.
func (o *OS) ExperimentCore() *pipeline.Core { return o.chip.ExperimentCore() }

// Chip returns the wrapped chip.
func (o *OS) Chip() *core.Chip { return o.chip }

// AdvanceToNextEvent fast-forwards the wrapped chip to its next posted
// event, bounding any advance at the next timer tick — the kernel's own
// event on the wheel — so interrupt delivery (and the priority resets of
// a stock kernel) happens on exactly the cycle it would when stepping.
// It returns the number of cycles skipped.
func (o *OS) AdvanceToNextEvent(bound uint64) uint64 {
	if o.nextTick < bound {
		bound = o.nextTick
	}
	return o.chip.AdvanceToNextEvent(bound)
}

// Step advances the machine one cycle, delivering timer interrupts.
func (o *OS) Step() {
	c := o.chip.ExperimentCore()
	if c.Cycle() >= o.nextTick {
		o.Ticks++
		o.nextTick += o.cfg.TickCycles
		if !o.cfg.Patched {
			// The stock kernel resets every running context to MEDIUM on
			// kernel entry; it does not preserve user settings.
			for t := 0; t < 2; t++ {
				if c.Running(t) && c.Priority(t) != prio.ThreadOff &&
					c.Priority(t) != prio.Medium {
					c.SetPriority(t, prio.Medium)
					o.Resets++
				}
			}
		}
		// Handler overhead: burn cycles with both threads stalled. The
		// handler itself runs at MEDIUM priority.
		for i := uint64(0); i < o.cfg.HandlerCycles; i++ {
			o.chip.Step()
		}
	}
	o.chip.Step()
}

// IdleKernel returns the kernel idle loop: it drops its hardware thread to
// priority 1 (VERY LOW) and spins, exactly as Linux does while a context
// has no work (Section 4.3).
func IdleKernel() *isa.Kernel {
	b := isa.NewBuilder("os_idle")
	a := b.Reg("a")
	b.PrioSet(int(prio.VeryLow))
	for i := 0; i < 4; i++ {
		b.Nop()
	}
	b.Op2(isa.OpIntAdd, a, a, a)
	b.Branch(isa.BranchLoop, a)
	return b.MustBuild(64)
}

// SpinWaitKernel returns a spin-lock wait loop: the spinner lowers its
// priority while polling the lock word and restores MEDIUM once through
// (the kernel's smp_call_function/spinlock pattern).
func SpinWaitKernel(lockFootprint uint64) *isa.Kernel {
	b := isa.NewBuilder("os_spinwait")
	v := b.Reg("v")
	lock := b.Stream(isa.StreamSpec{
		Kind: isa.StreamStride, Footprint: lockFootprint, Stride: isa.CacheLineSize, Seed: 13,
	})
	b.PrioSet(int(prio.VeryLow))
	b.Load(v, lock, isa.Reg(-1)) // poll the lock word
	b.Branch(isa.BranchPattern, v)
	b.PrioSet(int(prio.Medium)) // lock acquired: restore priority
	b.Branch(isa.BranchLoop, v)
	return b.MustBuild(64)
}
