package spec

import (
	"testing"

	"power5prio/internal/core"
	"power5prio/internal/fame"
	"power5prio/internal/prio"
)

func TestNamesAndBuild(t *testing.T) {
	ns := Names()
	if len(ns) != 4 {
		t.Fatalf("%d workloads, want 4", len(ns))
	}
	for _, n := range ns {
		k, err := Build(n)
		if err != nil {
			t.Errorf("Build(%q): %v", n, err)
			continue
		}
		if err := k.Validate(); err != nil {
			t.Errorf("%q invalid: %v", n, err)
		}
	}
	if _, err := Build("gcc"); err == nil {
		t.Error("Build accepted unknown workload")
	}
}

func TestMustBuildPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustBuild did not panic")
		}
	}()
	MustBuild("gcc")
}

func TestBuildWithParams(t *testing.T) {
	k, err := BuildWith(MCF, Params{Iters: 11})
	if err != nil {
		t.Fatal(err)
	}
	if k.Iters != 11 {
		t.Errorf("Iters = %d, want 11", k.Iters)
	}
	k, err = BuildWith(MCF, Params{IterScale: 0.0001})
	if err != nil {
		t.Fatal(err)
	}
	if k.Iters != 8 {
		t.Errorf("scaled Iters = %d, want floor of 8", k.Iters)
	}
}

func measureST(t *testing.T, name string) float64 {
	t.Helper()
	k, err := BuildWith(name, Params{IterScale: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	ch := core.NewChip(core.DefaultConfig())
	ch.PlacePair(k, nil, prio.Medium, prio.Medium, prio.Supervisor)
	res := fame.Measure(ch, fame.Options{MinReps: 3, WarmupReps: 1, MaxCycles: 60_000_000})
	if res.TimedOut {
		t.Fatalf("%s timed out", name)
	}
	return res.Thread[0].IPC
}

// TestWorkloadClasses: each synthetic workload must land in its paper
// behaviour class (h264ref high-IPC, applu medium, mcf/equake low
// memory-bound).
func TestWorkloadClasses(t *testing.T) {
	if testing.Short() {
		t.Skip("long test")
	}
	h264 := measureST(t, H264Ref)
	mcf := measureST(t, MCF)
	app := measureST(t, Applu)
	eq := measureST(t, Equake)
	t.Logf("ST IPCs: h264ref %.3f  mcf %.3f  applu %.3f  equake %.3f", h264, mcf, app, eq)
	if h264 < 0.8 {
		t.Errorf("h264ref IPC %.3f too low for a cpu-bound encoder", h264)
	}
	if mcf > 0.3 {
		t.Errorf("mcf IPC %.3f too high for a memory-bound chaser", mcf)
	}
	if eq > 0.3 {
		t.Errorf("equake IPC %.3f too high for a memory-bound FP code", eq)
	}
	if app <= mcf || app >= h264 {
		t.Errorf("applu IPC %.3f should sit between mcf %.3f and h264ref %.3f", app, mcf, h264)
	}
}
