// Package spec provides synthetic stand-ins for the SPEC CPU workloads of
// the paper's case studies (Section 5.3.1): h264ref and mcf (CPU2006),
// applu and equake (CPU2000). Real SPEC sources and inputs are not
// redistributable and would need a full compiler/OS stack; instead each
// workload is a phase-level synthetic kernel calibrated to the paper's
// measured behaviour class — high-IPC cpu-bound encoder (h264ref, IPC
// 0.92 co-run), memory-latency-bound pointer chaser (mcf, 0.144), medium
// floating-point solver (applu, 0.50) and memory-bound FP code (equake,
// 0.14). The case-study conclusions depend only on these classes.
package spec

import (
	"fmt"

	"power5prio/internal/isa"
)

// Workload names.
const (
	H264Ref = "h264ref"
	MCF     = "mcf"
	Applu   = "applu"
	Equake  = "equake"
)

// Names lists the synthetic SPEC workloads.
func Names() []string { return []string{H264Ref, MCF, Applu, Equake} }

// Params tunes kernel instantiation.
type Params struct {
	// Iters overrides the default micro-iterations per repetition.
	Iters int
	// IterScale multiplies the default when Iters is zero.
	IterScale float64
}

func iters(p Params, def int) int {
	if p.Iters > 0 {
		return p.Iters
	}
	if p.IterScale > 0 {
		n := int(float64(def) * p.IterScale)
		if n < 8 {
			n = 8
		}
		return n
	}
	return def
}

// Build returns the named workload kernel.
func Build(name string) (*isa.Kernel, error) { return BuildWith(name, Params{}) }

// BuildWith returns the named workload with parameters.
func BuildWith(name string, p Params) (*isa.Kernel, error) {
	switch name {
	case H264Ref:
		return h264ref(iters(p, 256)), nil
	case MCF:
		return mcf(iters(p, 96)), nil
	case Applu:
		return applu(iters(p, 128)), nil
	case Equake:
		return equake(iters(p, 96)), nil
	default:
		return nil, fmt.Errorf("spec: unknown workload %q", name)
	}
}

// MustBuild is Build that panics on error.
func MustBuild(name string) *isa.Kernel {
	k, err := Build(name)
	if err != nil {
		panic(err)
	}
	return k
}

// h264ref models a video encoder's hot loops: integer SAD accumulation
// over L1-resident reference blocks with occasional mode-decision
// branches. Its decode demand (~0.6-0.7 of full bandwidth) exceeds the
// SMT fair share, so co-running costs it ~25-30% and positive priorities
// buy it back — the Figure 5(a) mechanism.
func h264ref(its int) *isa.Kernel {
	b := isa.NewBuilder(H264Ref)
	iter := b.Reg("iter")
	one := b.Reg("one")
	s := b.Reg("sad") // sum-of-absolute-differences accumulator
	f := b.Reg("f")   // independent filler
	blk := b.Stream(isa.StreamSpec{Kind: isa.StreamStride, Footprint: 24 << 10, Stride: isa.CacheLineSize, Seed: 21})
	out := b.Stream(isa.StreamSpec{Kind: isa.StreamStride, Footprint: 24 << 10, Stride: isa.CacheLineSize, Seed: 21})
	// Four pixel-block lines: load, accumulate (chain), store. Each forms
	// one dispatch group (typed LS slots).
	vs := make([]isa.Reg, 4)
	for i := range vs {
		vs[i] = b.Reg("v")
		b.Load(vs[i], blk, isa.Reg(-1))
		b.Op2(isa.OpIntAdd, s, s, vs[i])
		b.Store(out, s, isa.Reg(-1))
	}
	// Two mode-decision lines: chained compare + biased branch.
	for i := 0; i < 2; i++ {
		b.Op2(isa.OpIntAdd, s, s, one)
		b.Branch(isa.BranchPattern, s)
	}
	// Two independent bookkeeping lines.
	for i := 0; i < 2; i++ {
		b.Op2(isa.OpIntAdd, f, iter, one)
		b.Op2(isa.OpIntMul, f, f, one)
	}
	b.Op2(isa.OpIntAdd, iter, iter, one)
	b.Branch(isa.BranchLoop, iter)
	// Mode decisions are biased but not perfectly predictable.
	state := uint64(77)
	b.Pattern(func(n uint64) bool {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		return state%8 != 0 // ~87.5% taken
	})
	return b.MustBuild(its)
}

// mcf models the single-depot vehicle scheduler: pointer chasing over a
// network too large for L2, with small arithmetic per node. Latency-bound,
// low IPC, nearly insensitive to decode share. The loop branch tests the
// iteration counter, not the chased value, so it never backs up the
// branch queue.
func mcf(its int) *isa.Kernel {
	b := isa.NewBuilder(MCF)
	iter := b.Reg("iter")
	one := b.Reg("one")
	v := b.Reg("v")
	w := b.Reg("w")
	net := b.Stream(isa.StreamSpec{Kind: isa.StreamChase, Footprint: 8 << 20, Seed: 23, Prewarm: true})
	b.Load(v, net, isa.Reg(-1)) // follow arc
	b.Op2(isa.OpIntAdd, w, v, one)
	b.Op2(isa.OpIntAdd, w, w, one)
	b.Op2(isa.OpIntAdd, iter, iter, one)
	b.Branch(isa.BranchLoop, iter)
	return b.MustBuild(its)
}

// applu models the CFD solver: floating-point stencil sweeps with
// moderate ILP over an L2-resident grid; mid decode sensitivity.
func applu(its int) *isa.Kernel {
	b := isa.NewBuilder(Applu)
	iter := b.Reg("iter")
	one := b.Reg("one")
	acc := b.Reg("acc")
	grid := b.Stream(isa.StreamSpec{Kind: isa.StreamStride, Footprint: 512 << 10, Stride: isa.CacheLineSize, Seed: 31, Prewarm: true})
	out := b.Stream(isa.StreamSpec{Kind: isa.StreamStride, Footprint: 512 << 10, Stride: isa.CacheLineSize, Seed: 31})
	vs := make([]isa.Reg, 4)
	for i := range vs {
		vs[i] = b.Reg("v")
		b.Load(vs[i], grid, isa.Reg(-1))
		b.Op2(isa.OpFPMul, vs[i], vs[i], one)
		b.Op2(isa.OpFPAdd, acc, acc, vs[i]) // stencil accumulation chain
	}
	b.Store(out, acc, isa.Reg(-1))
	b.Op2(isa.OpIntAdd, iter, iter, one)
	b.Branch(isa.BranchLoop, iter)
	return b.MustBuild(its)
}

// equake models the earthquake simulator: sparse matrix-vector products
// whose irregular accesses miss L2; memory-bound FP, low IPC. One FP op
// per node keeps its stalled in-flight window from monopolizing the
// shared FP issue queue (it pressures, but does not crush, an FP sibling).
func equake(its int) *isa.Kernel {
	b := isa.NewBuilder(Equake)
	iter := b.Reg("iter")
	one := b.Reg("one")
	v := b.Reg("v")
	w := b.Reg("w")
	mat := b.Stream(isa.StreamSpec{Kind: isa.StreamChase, Footprint: 12 << 20, Seed: 37, Prewarm: true})
	b.Load(v, mat, isa.Reg(-1))
	b.Op2(isa.OpFPMul, w, v, one)
	b.Op2(isa.OpIntAdd, iter, iter, one)
	b.Branch(isa.BranchLoop, iter)
	return b.MustBuild(its)
}
