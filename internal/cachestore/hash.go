package cachestore

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"hash"
	"math"
	"reflect"
)

// Key identifies one stored entry: a SHA-256 over the canonical encoding
// of the value the entry memoizes. Keys are stable across processes,
// architectures and Go versions — unlike Go's built-in map hashing — so
// they are safe to use as on-disk names.
type Key [sha256.Size]byte

// String renders the key as lower-case hex (the on-disk spelling).
func (k Key) String() string { return hex.EncodeToString(k[:]) }

// IsZero reports whether the key is the zero value (never produced by
// HashValue, whose encoding always includes a schema prefix).
func (k Key) IsZero() bool { return k == Key{} }

// HashValue computes the canonical content key of a value under a schema
// tag. The schema names the meaning of the value ("power5prio/job/v1");
// bump it whenever the interpretation of equal bytes changes, so stale
// entries become unreachable instead of wrong.
//
// The encoding walks the value by reflection in declaration order and is
// designed so that every semantic change to the value changes the key:
//
//   - numeric leaves encode as fixed-width little-endian (floats by IEEE
//     bit pattern), strings length-prefixed, so adjacent fields cannot
//     alias each other;
//   - struct fields contribute their names and types as well as their
//     values, so renaming or retyping a field invalidates old keys
//     (conservative: a rename can only cause misses, never false hits);
//   - only deterministic kinds are accepted. A value reaching a map,
//     slice, pointer, func, chan or interface returns an error — such a
//     field must be given an explicit stable digest (the way
//     workload.Ref fingerprints kernel content) before it can be part of
//     a key.
func HashValue(schema string, v any) (Key, error) {
	h := sha256.New()
	writeString(h, schema)
	if err := encodeValue(h, reflect.ValueOf(v), "value"); err != nil {
		return Key{}, err
	}
	var k Key
	h.Sum(k[:0])
	return k, nil
}

// MustHashValue is HashValue for values the caller guarantees hashable
// (e.g. engine Jobs, whose hashability is enforced by tests). It panics
// on error.
func MustHashValue(schema string, v any) Key {
	k, err := HashValue(schema, v)
	if err != nil {
		panic(fmt.Sprintf("cachestore: %v", err))
	}
	return k
}

// writeString writes a length-prefixed string.
func writeString(h hash.Hash, s string) {
	writeUint64(h, uint64(len(s)))
	h.Write([]byte(s))
}

// writeUint64 writes a fixed-width little-endian word.
func writeUint64(h hash.Hash, v uint64) {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], v)
	h.Write(buf[:])
}

// encodeValue canonically encodes one value. path names the value's
// position for error messages ("value.Chip.Mem.LatL2").
func encodeValue(h hash.Hash, v reflect.Value, path string) error {
	if !v.IsValid() {
		return fmt.Errorf("cachestore: cannot hash invalid value at %s", path)
	}
	// Unwrap interface values (e.g. the any parameter itself).
	if v.Kind() == reflect.Interface && path == "value" && !v.IsNil() {
		return encodeValue(h, v.Elem(), path)
	}
	switch v.Kind() {
	case reflect.Bool:
		if v.Bool() {
			writeUint64(h, 1)
		} else {
			writeUint64(h, 0)
		}
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		writeUint64(h, uint64(v.Int()))
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64, reflect.Uintptr:
		writeUint64(h, v.Uint())
	case reflect.Float32, reflect.Float64:
		writeUint64(h, math.Float64bits(v.Float()))
	case reflect.String:
		writeString(h, v.String())
	case reflect.Array:
		writeString(h, "array")
		writeUint64(h, uint64(v.Len()))
		for i := 0; i < v.Len(); i++ {
			if err := encodeValue(h, v.Index(i), fmt.Sprintf("%s[%d]", path, i)); err != nil {
				return err
			}
		}
	case reflect.Struct:
		t := v.Type()
		writeString(h, "struct")
		writeString(h, t.String())
		writeUint64(h, uint64(t.NumField()))
		for i := 0; i < t.NumField(); i++ {
			f := t.Field(i)
			writeString(h, f.Name)
			writeString(h, f.Type.String())
			if err := encodeValue(h, v.Field(i), path+"."+f.Name); err != nil {
				return err
			}
		}
	default:
		return fmt.Errorf("cachestore: cannot hash %s at %s (give the field an explicit stable digest instead)", v.Kind(), path)
	}
	return nil
}
