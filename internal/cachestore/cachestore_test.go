package cachestore

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

func testKey(t *testing.T, v any) Key {
	t.Helper()
	k, err := HashValue("cachestore/test", v)
	if err != nil {
		t.Fatalf("HashValue: %v", err)
	}
	return k
}

func openStore(t *testing.T, opts ...Option) *Store {
	t.Helper()
	s, err := Open(t.TempDir(), opts...)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return s
}

func TestRoundTrip(t *testing.T) {
	s := openStore(t)
	k := testKey(t, "a")
	payload := []byte(`{"ipc": 1.25}`)

	if _, err := s.Get(k); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get before Put: %v, want ErrNotFound", err)
	}
	if err := s.Put(k, payload); err != nil {
		t.Fatalf("Put: %v", err)
	}
	got, err := s.Get(k)
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("Get = %q, want %q", got, payload)
	}

	// A second handle on the same directory sees the entry (this is the
	// cross-process reuse path, minus the process boundary).
	s2, err := Open(s.Dir())
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if got, err := s2.Get(k); err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("reopened Get = %q, %v", got, err)
	}
}

func TestEmptyPayload(t *testing.T) {
	s := openStore(t)
	k := testKey(t, "empty")
	if err := s.Put(k, nil); err != nil {
		t.Fatalf("Put(nil): %v", err)
	}
	if got, err := s.Get(k); err != nil || len(got) != 0 {
		t.Fatalf("Get = %q, %v; want empty, nil", got, err)
	}
}

// corrupt applies fn to the entry's file bytes and writes them back.
func corrupt(t *testing.T, s *Store, k Key, fn func([]byte) []byte) {
	t.Helper()
	path := s.EntryPath(k)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read entry: %v", err)
	}
	if err := os.WriteFile(path, fn(raw), 0o644); err != nil {
		t.Fatalf("rewrite entry: %v", err)
	}
}

// TestCorruptionDetection covers the three damage classes the ISSUE
// names — truncation, bit flips and version bumps — plus a misnamed
// entry. Each must be detected (ErrCorrupt), self-healed (file removed,
// next Get a clean miss) and recoverable (Put rewrites a good entry).
func TestCorruptionDetection(t *testing.T) {
	payload := []byte(`{"cycles": 123456, "ipc": 0.75}`)
	cases := []struct {
		name   string
		damage func([]byte) []byte
	}{
		{"truncated-header", func(raw []byte) []byte { return raw[:headerSize-3] }},
		{"truncated-payload", func(raw []byte) []byte { return raw[:len(raw)-5] }},
		{"payload-bit-flip", func(raw []byte) []byte {
			raw[headerSize+2] ^= 0x10
			return raw
		}},
		{"header-bit-flip", func(raw []byte) []byte {
			raw[5] ^= 0x01 // inside the embedded key
			return raw
		}},
		{"version-bump", func(raw []byte) []byte {
			raw[3]++ // magic's format-version byte
			return raw
		}},
		{"extra-bytes", func(raw []byte) []byte { return append(raw, 0xFF) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := openStore(t)
			k := testKey(t, tc.name)
			if err := s.Put(k, payload); err != nil {
				t.Fatalf("Put: %v", err)
			}
			corrupt(t, s, k, tc.damage)

			if _, err := s.Get(k); !errors.Is(err, ErrCorrupt) {
				t.Fatalf("Get on damaged entry: %v, want ErrCorrupt", err)
			}
			// Detection unlinks the entry: the next Get is a clean miss.
			if _, err := s.Get(k); !errors.Is(err, ErrNotFound) {
				t.Fatalf("Get after detection: %v, want ErrNotFound", err)
			}
			// Recompute-and-rewrite restores service.
			if err := s.Put(k, payload); err != nil {
				t.Fatalf("rewrite Put: %v", err)
			}
			if got, err := s.Get(k); err != nil || !bytes.Equal(got, payload) {
				t.Fatalf("Get after rewrite = %q, %v", got, err)
			}
		})
	}
}

// TestMisnamedEntry: an entry copied under another key's name must not
// be served — the envelope binds the key.
func TestMisnamedEntry(t *testing.T) {
	s := openStore(t)
	k1, k2 := testKey(t, 1), testKey(t, 2)
	if err := s.Put(k1, []byte("one")); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(s.EntryPath(k1))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(filepath.Dir(s.EntryPath(k2)), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(s.EntryPath(k2), raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get(k2); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Get on misnamed entry: %v, want ErrCorrupt", err)
	}
	if got, err := s.Get(k1); err != nil || string(got) != "one" {
		t.Fatalf("original entry damaged: %q, %v", got, err)
	}
}

func TestDeleteAndClear(t *testing.T) {
	s := openStore(t)
	for i := 0; i < 5; i++ {
		if err := s.Put(testKey(t, i), []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Delete(testKey(t, 3)); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	if err := s.Delete(testKey(t, 3)); err != nil {
		t.Fatalf("Delete absent: %v", err)
	}
	info, err := s.Info()
	if err != nil || info.Entries != 4 {
		t.Fatalf("Info after delete = %+v, %v; want 4 entries", info, err)
	}
	if err := s.Clear(); err != nil {
		t.Fatalf("Clear: %v", err)
	}
	info, err = s.Info()
	if err != nil || info.Entries != 0 || info.Bytes != 0 {
		t.Fatalf("Info after clear = %+v, %v; want empty", info, err)
	}
	// The store stays usable after Clear.
	if err := s.Put(testKey(t, "after"), []byte("x")); err != nil {
		t.Fatalf("Put after Clear: %v", err)
	}
}

func TestVerify(t *testing.T) {
	s := openStore(t)
	var keys []Key
	for i := 0; i < 6; i++ {
		k := testKey(t, i)
		keys = append(keys, k)
		if err := s.Put(k, []byte(fmt.Sprint("payload", i))); err != nil {
			t.Fatal(err)
		}
	}
	corrupt(t, s, keys[1], func(raw []byte) []byte { raw[headerSize] ^= 0xFF; return raw })
	corrupt(t, s, keys[4], func(raw []byte) []byte { return raw[:headerSize-1] })

	vr, err := s.Verify(false)
	if err != nil {
		t.Fatalf("Verify: %v", err)
	}
	if vr.Checked != 6 || vr.Corrupt != 2 || vr.Removed != 0 {
		t.Fatalf("Verify(false) = %+v, want 6 checked, 2 corrupt, 0 removed", vr)
	}

	vr, err = s.Verify(true)
	if err != nil {
		t.Fatalf("Verify(repair): %v", err)
	}
	if vr.Corrupt != 2 || vr.Removed != 2 {
		t.Fatalf("Verify(true) = %+v, want 2 corrupt removed", vr)
	}
	vr, err = s.Verify(false)
	if err != nil || vr.Checked != 4 || vr.Corrupt != 0 {
		t.Fatalf("Verify after repair = %+v, %v; want 4 clean", vr, err)
	}
}

func TestGC(t *testing.T) {
	s := openStore(t)
	payload := bytes.Repeat([]byte("x"), 100)
	now := time.Now()
	var keys []Key
	for i := 0; i < 10; i++ {
		k := testKey(t, i)
		keys = append(keys, k)
		if err := s.Put(k, payload); err != nil {
			t.Fatal(err)
		}
		// Spread modification times so "oldest" is well-defined.
		mt := now.Add(time.Duration(i-10) * time.Minute)
		if err := os.Chtimes(s.EntryPath(k), mt, mt); err != nil {
			t.Fatal(err)
		}
	}
	info, _ := s.Info()
	perEntry := info.Bytes / 10

	removed, reclaimed, err := s.GC(perEntry * 4)
	if err != nil {
		t.Fatalf("GC: %v", err)
	}
	if removed != 6 || reclaimed != perEntry*6 {
		t.Fatalf("GC removed %d (%d bytes), want 6 (%d bytes)", removed, reclaimed, perEntry*6)
	}
	// The oldest six went; the newest four stayed.
	for i, k := range keys {
		_, err := s.Get(k)
		if i < 6 && !errors.Is(err, ErrNotFound) {
			t.Errorf("old entry %d survived GC (err %v)", i, err)
		}
		if i >= 6 && err != nil {
			t.Errorf("new entry %d evicted: %v", i, err)
		}
	}
	// Under budget: a no-op.
	if removed, _, err := s.GC(perEntry * 4); err != nil || removed != 0 {
		t.Fatalf("GC under budget removed %d, %v", removed, err)
	}
}

// TestAutoGC: a store opened with a byte budget evicts on its own as
// writes accumulate.
func TestAutoGC(t *testing.T) {
	payload := bytes.Repeat([]byte("y"), 1000)
	entryBytes := int64(headerSize + len(payload))
	s := openStore(t, WithMaxBytes(entryBytes*8))
	for i := 0; i < 2*gcEvery; i++ {
		if err := s.Put(testKey(t, i), payload); err != nil {
			t.Fatal(err)
		}
	}
	info, err := s.Info()
	if err != nil {
		t.Fatal(err)
	}
	if info.Bytes > entryBytes*int64(8+gcEvery) {
		t.Fatalf("auto-GC never ran: %d entries, %d bytes", info.Entries, info.Bytes)
	}
}

// TestConcurrentSharedDir is the -race coverage for one cache directory
// shared by concurrent readers, writers, verifiers and collectors across
// two Store handles — the normal state of affairs when parallel engine
// workers and a second process share a cache.
func TestConcurrentSharedDir(t *testing.T) {
	dir := t.TempDir()
	s1, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	stores := []*Store{s1, s2}

	const keys = 16
	payloadOf := func(i int) []byte { return bytes.Repeat([]byte{byte(i)}, 64) }

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			s := stores[g%2]
			for round := 0; round < 50; round++ {
				i := (g + round) % keys
				k := testKey(t, i)
				switch round % 4 {
				case 0:
					if err := s.Put(k, payloadOf(i)); err != nil {
						t.Errorf("Put: %v", err)
					}
				case 1:
					got, err := s.Get(k)
					if err == nil && !bytes.Equal(got, payloadOf(i)) {
						t.Errorf("Get(%d) served wrong payload", i)
					} else if err != nil && !errors.Is(err, ErrNotFound) {
						t.Errorf("Get: %v", err)
					}
				case 2:
					if _, err := s.Verify(false); err != nil {
						t.Errorf("Verify: %v", err)
					}
				case 3:
					if _, _, err := s.GC(1 << 20); err != nil {
						t.Errorf("GC: %v", err)
					}
				}
			}
		}(g)
	}
	wg.Wait()
}
