// Package cachestore is the disk-backed, versioned result store behind
// the batch engine's second cache tier: simulation results keyed by a
// stable content hash of the job that produced them, surviving process
// restarts so repeated p5exp/p5sim invocations reuse each other's work.
//
// Layout. A store rooted at dir keeps every entry as its own immutable
// file, dir/v<FormatVersion>/<k0k1>/<keyhex>, sharded by the key's first
// byte. The layout is append-only — entries are only ever added (by
// atomic rename) or unlinked, never rewritten in place — so concurrent
// readers and writers, in one process or many, need no locking: a reader
// sees each entry either complete or not at all.
//
// Integrity. Every entry carries a versioned envelope: magic+format
// version, the full key, the payload length and a CRC32 of the payload.
// Get verifies all four; a truncated, bit-flipped, version-bumped or
// misnamed entry is detected, removed, and reported as ErrCorrupt so the
// caller recomputes (and the subsequent Put rewrites the entry clean). A
// format bump changes the version directory, orphaning — never
// misreading — old entries.
//
// Eviction. GC removes oldest-first (by modification time) until the
// store fits a byte budget; opening with WithMaxBytes applies the budget
// automatically as writes accumulate.
package cachestore

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"
)

// FormatVersion is the on-disk format generation. Bumping it orphans all
// existing entries (they live under a version-named directory), which is
// the safe failure mode for incompatible layout changes.
const FormatVersion = 1

// entryMagic opens every entry file; the last byte is the envelope
// version within this format generation.
var entryMagic = [4]byte{'p', '5', 'c', FormatVersion}

// headerSize is the fixed envelope prefix: magic, key, payload length,
// payload CRC32 (IEEE).
const headerSize = 4 + len(Key{}) + 8 + 4

// Sentinel errors returned by Get.
var (
	// ErrNotFound reports a clean miss: no entry under the key.
	ErrNotFound = errors.New("cachestore: entry not found")
	// ErrCorrupt reports a detected-and-removed bad entry: truncation,
	// bit flip, envelope version mismatch, or key/filename mismatch. The
	// caller should recompute and Put the result again.
	ErrCorrupt = errors.New("cachestore: entry corrupt")
)

// Store is one on-disk result store. Multiple Store handles — in one
// process or several — may share a directory; all methods are safe for
// concurrent use.
type Store struct {
	root string // user-supplied directory
	dir  string // versioned entry directory under root

	mu       sync.Mutex
	maxBytes int64
	putsToGC int     // writes until the next automatic GC pass
	putHook  PutHook // write-fault seam; nil passes writes through
}

// PutHook intercepts an entry write just before it reaches the staging
// file: it receives the key and the fully encoded entry (envelope
// included) and returns the bytes to persist, or an error that fails
// the Put. It exists as a fault-injection seam — internal/chaos uses it
// to emulate full disks (error) and torn writes (a prefix of the
// entry, which Get's checksum then catches) without touching the real
// filesystem behaviour underneath.
type PutHook func(k Key, encoded []byte) ([]byte, error)

// Option configures a Store at Open.
type Option func(*Store)

// gcEvery bounds how many writes may land between automatic GC passes
// when a byte budget is set.
const gcEvery = 64

// putPrefix names Put's staging files; walkEntries ignores them.
const putPrefix = "put-"

// WithMaxBytes sets a byte budget: once writes accumulate, the store
// periodically evicts oldest entries until it fits. n <= 0 (the default)
// disables automatic eviction; GC can still be called explicitly.
func WithMaxBytes(n int64) Option { return func(s *Store) { s.maxBytes = n } }

// WithPutHook installs a write-fault hook at Open; see PutHook.
func WithPutHook(h PutHook) Option { return func(s *Store) { s.putHook = h } }

// Open creates (if needed) and returns the store rooted at dir.
func Open(dir string, opts ...Option) (*Store, error) {
	s := &Store{
		root:     dir,
		dir:      filepath.Join(dir, fmt.Sprintf("v%d", FormatVersion)),
		putsToGC: gcEvery,
	}
	for _, o := range opts {
		o(s)
	}
	if err := os.MkdirAll(s.dir, 0o755); err != nil {
		return nil, fmt.Errorf("cachestore: open %s: %w", dir, err)
	}
	return s, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.root }

// SetPutHook installs (or with nil, removes) the write-fault hook on a
// store already open; see PutHook. Writes in flight keep the hook they
// started with.
func (s *Store) SetPutHook(h PutHook) {
	s.mu.Lock()
	s.putHook = h
	s.mu.Unlock()
}

// EntryPath returns the file path an entry for the key occupies. The
// file exists only while the entry is stored; the path itself is stable.
func (s *Store) EntryPath(k Key) string {
	hex := k.String()
	return filepath.Join(s.dir, hex[:2], hex)
}

// Get returns the payload stored under the key. It returns ErrNotFound
// on a clean miss, and ErrCorrupt — after unlinking the bad file — when
// an entry exists but fails integrity verification.
func (s *Store) Get(k Key) ([]byte, error) {
	path := s.EntryPath(k)
	raw, err := os.ReadFile(path)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return nil, ErrNotFound
		}
		return nil, fmt.Errorf("cachestore: read %s: %w", path, err)
	}
	payload, err := decodeEntry(k, raw)
	if err != nil {
		os.Remove(path) // self-heal: drop the bad entry so Put rewrites it clean
		return nil, err
	}
	return payload, nil
}

// Put stores the payload under the key, atomically: the entry is staged
// in a temp file and renamed into place, so concurrent readers never see
// a partial write. Re-putting a key replaces its entry (used to rewrite
// entries Get found corrupt).
func (s *Store) Put(k Key, payload []byte) error {
	encoded := encodeEntry(k, payload)
	s.mu.Lock()
	hook := s.putHook
	s.mu.Unlock()
	if hook != nil {
		var err error
		if encoded, err = hook(k, encoded); err != nil {
			return fmt.Errorf("cachestore: put %s: %w", k, err)
		}
	}
	path := s.EntryPath(k)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("cachestore: put %s: %w", k, err)
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), putPrefix+"*")
	if err != nil {
		return fmt.Errorf("cachestore: put %s: %w", k, err)
	}
	_, werr := tmp.Write(encoded)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("cachestore: put %s: %w", k, errors.Join(werr, cerr))
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("cachestore: put %s: %w", k, err)
	}
	s.maybeGC()
	return nil
}

// Delete removes the entry under the key (no error if absent).
func (s *Store) Delete(k Key) error {
	err := os.Remove(s.EntryPath(k))
	if err != nil && !errors.Is(err, fs.ErrNotExist) {
		return fmt.Errorf("cachestore: delete %s: %w", k, err)
	}
	return nil
}

// Clear removes every entry (the store stays open and usable).
func (s *Store) Clear() error {
	if err := os.RemoveAll(s.dir); err != nil {
		return fmt.Errorf("cachestore: clear: %w", err)
	}
	if err := os.MkdirAll(s.dir, 0o755); err != nil {
		return fmt.Errorf("cachestore: clear: %w", err)
	}
	return nil
}

// Info summarizes the store's contents.
type Info struct {
	Entries int
	Bytes   int64 // entry file bytes (envelopes included)
}

// Info scans the store and reports entry count and total size.
func (s *Store) Info() (Info, error) {
	var info Info
	err := s.walkEntries(func(path string, fi fs.FileInfo) error {
		info.Entries++
		info.Bytes += fi.Size()
		return nil
	})
	return info, err
}

// VerifyResult reports a Verify scan.
type VerifyResult struct {
	Checked int // entries examined
	Corrupt int // entries that failed integrity verification
	Removed int // corrupt entries unlinked (repair mode)
}

// Verify scans every entry and validates its envelope, checksum and
// filename-vs-embedded-key binding. With repair set, corrupt entries are
// unlinked so later lookups recompute and rewrite them, and staging
// files orphaned by crashed writers are swept.
func (s *Store) Verify(repair bool) (VerifyResult, error) {
	if repair {
		s.sweepStaleTemps()
	}
	var vr VerifyResult
	err := s.walkEntries(func(path string, fi fs.FileInfo) error {
		vr.Checked++
		if verifyEntryFile(path) == nil {
			return nil
		}
		vr.Corrupt++
		if repair {
			if err := os.Remove(path); err != nil && !errors.Is(err, fs.ErrNotExist) {
				return err
			}
			vr.Removed++
		}
		return nil
	})
	return vr, err
}

// GC evicts oldest entries (by modification time) until the store's
// total size fits maxBytes. It reports how many entries were removed and
// how many bytes were reclaimed.
func (s *Store) GC(maxBytes int64) (removed int, reclaimed int64, err error) {
	s.sweepStaleTemps()
	type entry struct {
		path  string
		size  int64
		mtime int64
	}
	var entries []entry
	var total int64
	err = s.walkEntries(func(path string, fi fs.FileInfo) error {
		entries = append(entries, entry{path: path, size: fi.Size(), mtime: fi.ModTime().UnixNano()})
		total += fi.Size()
		return nil
	})
	if err != nil || total <= maxBytes {
		return 0, 0, err
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].mtime < entries[j].mtime })
	for _, e := range entries {
		if total <= maxBytes {
			break
		}
		if err := os.Remove(e.path); err != nil {
			if errors.Is(err, fs.ErrNotExist) {
				continue // a concurrent GC got there first
			}
			return removed, reclaimed, fmt.Errorf("cachestore: gc: %w", err)
		}
		total -= e.size
		removed++
		reclaimed += e.size
	}
	return removed, reclaimed, nil
}

// maybeGC runs the automatic byte-budget eviction every gcEvery writes.
func (s *Store) maybeGC() {
	s.mu.Lock()
	run := false
	if s.maxBytes > 0 {
		s.putsToGC--
		if s.putsToGC <= 0 {
			s.putsToGC = gcEvery
			run = true
		}
	}
	s.mu.Unlock()
	if run {
		s.GC(s.maxBytes) // best-effort; the next pass retries on error
	}
}

// staleTempAge is how old a staging file must be before Verify/GC
// treat it as an orphan of a crashed writer. A live Put holds its
// staging file for milliseconds (plus arbitrary scheduler delay, hence
// the generous margin); anything this old has no writer left to rename
// it and would otherwise leak disk forever.
const staleTempAge = 10 * time.Minute

// sweepStaleTemps removes orphaned staging files; fresh ones (a
// concurrent Put mid-write) are left for their writers. Best-effort:
// a sweep that loses a remove race changes nothing.
func (s *Store) sweepStaleTemps() {
	cutoff := time.Now().Add(-staleTempAge)
	filepath.WalkDir(s.dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasPrefix(d.Name(), putPrefix) {
			return nil
		}
		if fi, ierr := d.Info(); ierr == nil && fi.ModTime().Before(cutoff) {
			os.Remove(path)
		}
		return nil
	})
}

// walkEntries visits every entry file in the versioned directory.
// In-flight staging files (Put's temp files, pre-rename) are not
// entries and are skipped: unlinking one from a concurrent Verify or
// GC would make the writer's rename fail, so a store shared between
// processes could not be administered while in use. Orphaned staging
// files are reclaimed separately (sweepStaleTemps).
func (s *Store) walkEntries(fn func(path string, fi fs.FileInfo) error) error {
	return filepath.WalkDir(s.dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			if errors.Is(err, fs.ErrNotExist) {
				return nil // raced with Clear/GC
			}
			return err
		}
		if d.IsDir() || strings.HasPrefix(d.Name(), putPrefix) {
			return nil
		}
		fi, err := d.Info()
		if err != nil {
			if errors.Is(err, fs.ErrNotExist) {
				return nil
			}
			return err
		}
		return fn(path, fi)
	})
}

// encodeEntry wraps a payload in the integrity envelope.
func encodeEntry(k Key, payload []byte) []byte {
	buf := make([]byte, headerSize+len(payload))
	copy(buf[0:4], entryMagic[:])
	copy(buf[4:4+len(k)], k[:])
	binary.LittleEndian.PutUint64(buf[4+len(k):4+len(k)+8], uint64(len(payload)))
	binary.LittleEndian.PutUint32(buf[4+len(k)+8:headerSize], crc32.ChecksumIEEE(payload))
	copy(buf[headerSize:], payload)
	return buf
}

// decodeEntry validates the envelope and returns the payload.
func decodeEntry(k Key, raw []byte) ([]byte, error) {
	if len(raw) < headerSize {
		return nil, fmt.Errorf("%w: %s: truncated header (%d bytes)", ErrCorrupt, k, len(raw))
	}
	if [4]byte(raw[0:4]) != entryMagic {
		return nil, fmt.Errorf("%w: %s: bad magic/version %q (want %q)", ErrCorrupt, k, raw[0:4], entryMagic[:])
	}
	var stored Key
	copy(stored[:], raw[4:4+len(stored)])
	if stored != k {
		return nil, fmt.Errorf("%w: %s: entry holds key %s (misnamed or copied file)", ErrCorrupt, k, stored)
	}
	n := binary.LittleEndian.Uint64(raw[4+len(stored) : 4+len(stored)+8])
	payload := raw[headerSize:]
	if uint64(len(payload)) != n {
		return nil, fmt.Errorf("%w: %s: payload length %d, header says %d", ErrCorrupt, k, len(payload), n)
	}
	if crc := crc32.ChecksumIEEE(payload); crc != binary.LittleEndian.Uint32(raw[4+len(stored)+8:headerSize]) {
		return nil, fmt.Errorf("%w: %s: payload checksum mismatch", ErrCorrupt, k)
	}
	return payload, nil
}

// verifyEntryFile validates one entry file on disk, binding the embedded
// key to the filename.
func verifyEntryFile(path string) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return nil // raced with a concurrent removal; nothing to verify
		}
		return err
	}
	var k Key
	name := filepath.Base(path)
	if len(name) != 2*len(k) {
		return fmt.Errorf("%w: %s: unexpected entry filename", ErrCorrupt, name)
	}
	for i := 0; i < len(k); i++ {
		hi, lo := unhex(name[2*i]), unhex(name[2*i+1])
		if hi < 0 || lo < 0 {
			return fmt.Errorf("%w: %s: unexpected entry filename", ErrCorrupt, name)
		}
		k[i] = byte(hi<<4 | lo)
	}
	_, err = decodeEntry(k, raw)
	return err
}

// unhex decodes one lower-case hex digit (-1 if invalid).
func unhex(c byte) int {
	switch {
	case '0' <= c && c <= '9':
		return int(c - '0')
	case 'a' <= c && c <= 'f':
		return int(c-'a') + 10
	}
	return -1
}
