package cachestore

import (
	"strings"
	"testing"
)

type hashFixture struct {
	A int
	B string
	C float64
	D [2]uint8
	E bool
}

var fixture = hashFixture{A: -3, B: "x", C: 1.5, D: [2]uint8{7, 9}, E: true}

// TestHashDeterministic pins the canonical encoding: the key of a fixed
// value must never change across runs, processes or refactors — a silent
// algorithm change would strand (at best) or misread (at worst) every
// persisted cache. If this test fails because the encoding was changed
// deliberately, bump the schema everywhere and update the constant.
func TestHashDeterministic(t *testing.T) {
	const pinned = "2f2418376b68238c397e8948fb20a0882deabca657dba9831637c4d4db5ec57a"
	k1, err := HashValue("test/v1", fixture)
	if err != nil {
		t.Fatalf("HashValue: %v", err)
	}
	k2, err := HashValue("test/v1", fixture)
	if err != nil {
		t.Fatalf("HashValue: %v", err)
	}
	if k1 != k2 {
		t.Fatalf("HashValue not deterministic: %s vs %s", k1, k2)
	}
	if k1.String() != pinned {
		t.Errorf("canonical encoding changed: key %s, pinned %s", k1, pinned)
	}
	if k1.IsZero() {
		t.Error("real key reads as zero")
	}
}

// TestHashSchemaSeparation: the same value under different schemas must
// produce different keys, so bumping a schema orphans old entries.
func TestHashSchemaSeparation(t *testing.T) {
	k1 := MustHashValue("test/v1", fixture)
	k2 := MustHashValue("test/v2", fixture)
	if k1 == k2 {
		t.Error("schema change did not change the key")
	}
}

// TestHashFieldNameSensitivity: identical field values under renamed
// fields must not alias (a struct refactor must invalidate, not hit).
func TestHashFieldNameSensitivity(t *testing.T) {
	type a struct{ X int }
	type b struct{ Y int }
	if MustHashValue("s", a{1}) == MustHashValue("s", b{1}) {
		t.Error("renamed field did not change the key")
	}
}

// TestHashStringBoundaries: length prefixes must prevent adjacent
// strings from aliasing ("ab"+"c" vs "a"+"bc").
func TestHashStringBoundaries(t *testing.T) {
	type s struct{ A, B string }
	if MustHashValue("s", s{"ab", "c"}) == MustHashValue("s", s{"a", "bc"}) {
		t.Error("string boundary aliasing")
	}
}

// TestHashRejectsUnstableKinds: kinds with no deterministic content
// (maps, slices, pointers, funcs) must be rejected with the field path,
// not silently hashed by address.
func TestHashRejectsUnstableKinds(t *testing.T) {
	type bad struct {
		Inner struct{ M map[string]int }
	}
	_, err := HashValue("s", bad{})
	if err == nil {
		t.Fatal("map field was accepted")
	}
	if !strings.Contains(err.Error(), "Inner.M") {
		t.Errorf("error does not name the offending field path: %v", err)
	}

	defer func() {
		if recover() == nil {
			t.Error("MustHashValue did not panic on unhashable value")
		}
	}()
	MustHashValue("s", bad{})
}

// TestHashDistinguishesValues: a spread of single-field changes, each of
// which must move the key.
func TestHashDistinguishesValues(t *testing.T) {
	seen := map[Key]string{MustHashValue("s", fixture): "base"}
	for name, v := range map[string]hashFixture{
		"A":    {A: -4, B: "x", C: 1.5, D: [2]uint8{7, 9}, E: true},
		"B":    {A: -3, B: "y", C: 1.5, D: [2]uint8{7, 9}, E: true},
		"C":    {A: -3, B: "x", C: 1.25, D: [2]uint8{7, 9}, E: true},
		"D[1]": {A: -3, B: "x", C: 1.5, D: [2]uint8{7, 10}, E: true},
		"E":    {A: -3, B: "x", C: 1.5, D: [2]uint8{7, 9}, E: false},
	} {
		k := MustHashValue("s", v)
		if prev, dup := seen[k]; dup {
			t.Errorf("perturbing %s collides with %s", name, prev)
		}
		seen[k] = name
	}
}
