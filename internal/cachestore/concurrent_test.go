package cachestore

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// These tests pin the multi-process contract the distributed setup
// leans on: the documented zero-code sharding path is several worker
// processes sharing one cachestore directory on network storage, so
// concurrent writers, readers, GC and Verify — each through its own
// Store handle, as separate processes would be — must never corrupt an
// entry, fail a clean write, or misreport corruption.

// concKey derives a distinct key per index.
func concKey(i int) Key { return MustHashValue("cachestore/test/v1", i) }

// concPayload is a deterministic payload per index, so readers can
// verify content, not just presence.
func concPayload(i int) []byte { return bytes.Repeat([]byte{byte(i)}, 64+i%17) }

// TestConcurrentMultiStoreAccess: several Store handles on one
// directory (one per simulated process) race puts and gets over an
// overlapping key space. Every read must return either ErrNotFound
// (not yet written) or the exact payload — never corruption, never a
// partial write — and the store must verify clean afterwards.
func TestConcurrentMultiStoreAccess(t *testing.T) {
	dir := t.TempDir()
	const stores = 4
	const keys = 48
	const rounds = 40

	handles := make([]*Store, stores)
	for i := range handles {
		s, err := Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		handles[i] = s
	}

	var wg sync.WaitGroup
	errc := make(chan error, stores*2)
	for g := 0; g < stores; g++ {
		wg.Add(2)
		s := handles[g]
		go func(seed int) { // writer
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				i := (seed + r) % keys
				if err := s.Put(concKey(i), concPayload(i)); err != nil {
					errc <- fmt.Errorf("put %d: %w", i, err)
					return
				}
			}
		}(g * 7)
		go func(seed int) { // reader
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				i := (seed + 3*r) % keys
				payload, err := s.Get(concKey(i))
				if errors.Is(err, ErrNotFound) {
					continue
				}
				if err != nil {
					errc <- fmt.Errorf("get %d: %w", i, err)
					return
				}
				if !bytes.Equal(payload, concPayload(i)) {
					errc <- fmt.Errorf("get %d: wrong payload (%d bytes)", i, len(payload))
					return
				}
			}
		}(g * 11)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}

	vr, err := handles[0].Verify(false)
	if err != nil {
		t.Fatal(err)
	}
	if vr.Corrupt != 0 {
		t.Errorf("%d corrupt entries after concurrent access", vr.Corrupt)
	}
	if vr.Checked == 0 {
		t.Error("nothing written")
	}
}

// TestGCRacingWriters: GC evicting on one handle while other handles
// write must never fail a write, never error, and never leave a
// half-removed entry — reads afterwards see clean entries or clean
// misses only.
func TestGCRacingWriters(t *testing.T) {
	dir := t.TempDir()
	gcStore, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	const writers = 3
	const perWriter = 120
	var stop atomic.Bool
	var wg sync.WaitGroup
	errc := make(chan error, writers+1)

	wg.Add(1)
	go func() { // the GC "process": evict aggressively, continuously
		defer wg.Done()
		for !stop.Load() {
			if _, _, err := gcStore.GC(2 << 10); err != nil {
				errc <- fmt.Errorf("gc: %w", err)
				return
			}
		}
	}()
	var writerWG sync.WaitGroup
	for g := 0; g < writers; g++ {
		wg.Add(1)
		writerWG.Add(1)
		s, err := Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		go func(base int) {
			defer wg.Done()
			defer writerWG.Done()
			for i := 0; i < perWriter; i++ {
				k := base*perWriter + i
				if err := s.Put(concKey(k), concPayload(k%250)); err != nil {
					errc <- fmt.Errorf("put %d: %w", k, err)
					return
				}
			}
		}(g)
	}
	writerWG.Wait()
	stop.Store(true)
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}

	// Surviving entries are intact; evicted ones are clean misses.
	vr, err := gcStore.Verify(false)
	if err != nil {
		t.Fatal(err)
	}
	if vr.Corrupt != 0 {
		t.Errorf("%d corrupt entries after GC raced writers", vr.Corrupt)
	}
	for k := 0; k < writers*perWriter; k++ {
		payload, err := gcStore.Get(concKey(k))
		if errors.Is(err, ErrNotFound) {
			continue
		}
		if err != nil {
			t.Fatalf("get %d after GC: %v", k, err)
		}
		if !bytes.Equal(payload, concPayload(k%250)) {
			t.Fatalf("get %d after GC: wrong payload", k)
		}
	}
}

// TestVerifyRacingWrites: Verify in repair mode scanning while writers
// stage-and-rename entries must never count an in-flight write as
// corrupt, and must never unlink a staging file out from under its
// writer (which would fail the writer's rename) — the exact race a
// shared network directory hits when one operator runs `p5exp -cache
// verify` while workers are busy.
func TestVerifyRacingWrites(t *testing.T) {
	dir := t.TempDir()
	vStore, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	const writers = 3
	const perWriter = 150
	var stop atomic.Bool
	var wg sync.WaitGroup
	errc := make(chan error, writers+1)

	wg.Add(1)
	go func() { // the administrator: verify/repair in a tight loop
		defer wg.Done()
		for !stop.Load() {
			vr, err := vStore.Verify(true)
			if err != nil {
				errc <- fmt.Errorf("verify: %w", err)
				return
			}
			if vr.Corrupt != 0 {
				errc <- fmt.Errorf("verify flagged %d in-flight writes as corrupt", vr.Corrupt)
				return
			}
		}
	}()
	var writerWG sync.WaitGroup
	for g := 0; g < writers; g++ {
		wg.Add(1)
		writerWG.Add(1)
		s, err := Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		go func(base int) {
			defer wg.Done()
			defer writerWG.Done()
			for i := 0; i < perWriter; i++ {
				k := base*perWriter + i
				if err := s.Put(concKey(k), concPayload(k%250)); err != nil {
					errc <- fmt.Errorf("put %d during verify: %w", k, err)
					return
				}
			}
		}(g)
	}
	writerWG.Wait()
	stop.Store(true)
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}

	// Every write must have survived repair-mode verification.
	info, err := vStore.Info()
	if err != nil {
		t.Fatal(err)
	}
	if info.Entries != writers*perWriter {
		t.Errorf("%d entries after verify raced writers, want %d", info.Entries, writers*perWriter)
	}
}

// TestStaleTempSweep: a staging file orphaned by a crashed writer is
// reclaimed by repair-mode Verify once it is old enough, while a fresh
// staging file (a live writer mid-Put) is left alone — and neither is
// ever counted as a corrupt entry.
func TestStaleTempSweep(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put(concKey(1), concPayload(1)); err != nil {
		t.Fatal(err)
	}
	shard := filepath.Dir(s.EntryPath(concKey(1)))
	orphan := filepath.Join(shard, "put-orphan")
	if err := os.WriteFile(orphan, []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}
	past := time.Now().Add(-2 * staleTempAge)
	if err := os.Chtimes(orphan, past, past); err != nil {
		t.Fatal(err)
	}
	live := filepath.Join(shard, "put-live")
	if err := os.WriteFile(live, []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}

	vr, err := s.Verify(true)
	if err != nil {
		t.Fatal(err)
	}
	if vr.Checked != 1 || vr.Corrupt != 0 {
		t.Errorf("verify saw %d entries (%d corrupt), want 1 clean entry", vr.Checked, vr.Corrupt)
	}
	if _, err := os.Stat(orphan); !errors.Is(err, os.ErrNotExist) {
		t.Error("orphaned staging file survived repair-mode verify")
	}
	if _, err := os.Stat(live); err != nil {
		t.Error("live staging file was swept out from under its writer")
	}
	if info, err := s.Info(); err != nil || info.Entries != 1 {
		t.Errorf("Info after sweep: %+v, %v", info, err)
	}
}
