// Package remote distributes engine job batches across machines over a
// versioned JSON/HTTP protocol, turning the batch engine's Backend
// boundary into an RPC boundary.
//
// Topology. A worker process (cmd/p5worker) calls Serve, which wraps a
// local engine — worker pool, in-memory cache and, when configured, a
// persistent cachestore — behind two HTTP endpoints. The client side is
// HTTPBackend (one worker) and ShardedBackend (a fleet): both implement
// engine.Backend, so a client engine constructed with
// engine.WithBackend executes its unique uncached jobs remotely while
// keeping all caching, deduplication and progress fan-out local.
//
// Portability. A job travels as its engine.Job value plus its
// engine.JobKey. Both ends recompute the key from the decoded value: a
// mismatch means the two binaries disagree about what the job means
// (schema drift, incompatible build) and fails the job loudly instead
// of measuring the wrong thing. Built-in workloads resolve on the
// worker by fingerprint-verified Ref; custom kernels exist only in the
// registering process, so jobs naming them fail on the worker with a
// clear error — register custom kernels locally or run them on a local
// backend.
//
// Determinism. A job's result is a pure function of the Job value, so a
// worker returns bit-identical bytes to local execution; results merge
// by submission index. Any sharding — any worker count, any failure/
// retry interleaving — therefore produces output byte-identical to a
// local run.
package remote

import (
	"fmt"

	"power5prio/internal/engine"
	"power5prio/internal/fame"
)

// ProtocolVersion names the wire protocol. Client and worker must
// match exactly: the version is embedded in every request and response,
// and either side rejects a mismatch (a job's meaning is only stable
// within one protocol generation).
const ProtocolVersion = "p5remote/v1"

// Endpoint paths served by a worker.
const (
	// RunPath executes a job batch (POST, RunRequest -> RunResponse).
	RunPath = "/v1/run"
	// HealthPath reports liveness and capability (GET -> Health).
	HealthPath = "/v1/health"
)

// WireJob is one job on the wire: the Job value and the client's
// JobKey, recomputed and verified by the worker.
type WireJob struct {
	Key string     `json:"key"`
	Job engine.Job `json:"job"`
}

// RunRequest is the body of a RunPath POST.
type RunRequest struct {
	Protocol string    `json:"protocol"`
	Jobs     []WireJob `json:"jobs"`
}

// WireResult is one job's outcome. Err is the job-level failure rendered
// as text (errors do not survive JSON typed); an empty Err means Pair
// holds a successful measurement.
type WireResult struct {
	Key    string          `json:"key"`
	Pair   fame.PairResult `json:"pair"`
	Err    string          `json:"err,omitempty"`
	Cached bool            `json:"cached,omitempty"` // served from the worker's cache tiers
	// Estimated marks a tier-0 analytical answer: Pair is a calibrated
	// model prediction, not a simulation, and ErrorBar is the model's
	// promised worst-case absolute IPC error for it. Workers never
	// produce estimates (the estimator sits in front of the engine that
	// owns the batch), so these fields are additive for the p5queue
	// stream, which reuses WireResult — p5remote stays at v1.
	Estimated bool    `json:"estimated,omitempty"`
	ErrorBar  float64 `json:"error_bar,omitempty"`
}

// RunResponse is the body of a RunPath response, results in request
// order.
type RunResponse struct {
	Protocol string       `json:"protocol"`
	Results  []WireResult `json:"results"`
}

// Health is the body of a HealthPath response.
type Health struct {
	Protocol string `json:"protocol"`
	// Capacity is the worker's simulation pool size.
	Capacity int `json:"capacity"`
	// Jobs counts jobs served since the worker started.
	Jobs int64 `json:"jobs"`
	// CacheDir is the worker's persistent cache directory ("" = memory
	// only) — useful when diagnosing whether a fleet shares one store.
	CacheDir string `json:"cache_dir,omitempty"`
}

// checkProtocol validates a peer's protocol tag.
func checkProtocol(got string) error {
	if got != ProtocolVersion {
		return fmt.Errorf("remote: protocol mismatch: peer speaks %q, this binary %q", got, ProtocolVersion)
	}
	return nil
}
