package remote

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"power5prio/internal/engine"
)

// ShardedBackend fans a job batch out across a fleet of workers and
// merges the results deterministically: every result lands at its job's
// submission index, and every job's result is a pure function of the
// job, so any fleet size, chunking or failure interleaving produces
// bytes identical to a local run.
//
// Scheduling is work-stealing rather than static: each worker pulls the
// next chunk of at most its Capacity jobs when it becomes free, so a
// fast worker takes more of the batch than a slow one. A worker-level
// failure excludes that worker for the rest of the batch and requeues
// its unfinished jobs for the surviving workers (retry-with-exclusion);
// the batch fails only when every usable worker has failed with jobs
// still pending. Job-level errors are deterministic and are not
// retried.
//
// Exclusions are remembered across batches (a circuit breaker): a
// worker that failed stays out of subsequent batches until its
// re-probe deadline passes, at which point one health probe decides
// whether it rejoins; failed probes push the deadline out with
// exponential backoff (capped at 8x the base interval, SetReprobe).
// When every worker is excluded the breaker force-probes the whole
// fleet rather than failing a batch nobody attempted. None of this
// affects determinism: results merge by submission index, so any
// exclusion/rejoin interleaving is byte-identical to a local run.
type ShardedBackend struct {
	reprobe time.Duration
	now     func() time.Time // injectable for the circuit-breaker tests

	mu      sync.Mutex
	workers []engine.Backend // append-only; elements are never replaced
	rs      engine.RemoteStats
	state   []workerState
}

// workerState is the per-worker circuit-breaker bookkeeping.
type workerState struct {
	excluded  bool
	failures  int       // consecutive failures since last success
	nextProbe time.Time // earliest time a re-probe may run
}

// DefaultReprobe is the base interval before an excluded worker is
// probed for readmission.
const DefaultReprobe = 30 * time.Second

// NewSharded builds a sharded backend over the given workers (typically
// HTTPBackends; any engine.Backend works, which is how the retry and
// circuit-breaker paths are tested).
func NewSharded(workers ...engine.Backend) *ShardedBackend {
	if len(workers) == 0 {
		panic("remote: NewSharded needs at least one worker")
	}
	return NewDynamic(workers...)
}

// NewDynamic builds a sharded backend whose fleet may start empty and
// grow at runtime through AddWorker — the shape a long-running service
// with worker registration needs. With no workers, batches fail with a
// no-workers error (and Healthy reports the fleet empty) rather than
// panicking at construction.
func NewDynamic(workers ...engine.Backend) *ShardedBackend {
	return &ShardedBackend{
		workers: workers,
		reprobe: DefaultReprobe,
		now:     time.Now,
		state:   make([]workerState, len(workers)),
	}
}

// AddWorker adds w to the fleet. If a worker with the same Name is
// already present, the fleet does not grow: that worker's breaker is
// closed instead, because a re-registering worker is announcing
// liveness (the caller is expected to have health-checked it first —
// the service's registration handler does). It reports whether the
// fleet grew. Batches already running are unaffected; the worker joins
// scheduling from the next batch.
func (s *ShardedBackend) AddWorker(w engine.Backend) bool {
	name := w.Name()
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := range s.workers {
		if s.workers[i].Name() == name {
			s.state[i] = workerState{}
			return false
		}
	}
	s.workers = append(s.workers, w)
	s.state = append(s.state, workerState{})
	return true
}

// WorkerStatus is a point-in-time snapshot of one worker's
// circuit-breaker state, exposed for service /v1/stats reporting.
type WorkerStatus struct {
	Name     string `json:"name"`
	Excluded bool   `json:"excluded,omitempty"`
	// Failures counts consecutive failures since the last success.
	Failures int `json:"failures,omitempty"`
	// NextProbe is the earliest time a re-probe may readmit the worker
	// (zero when the breaker is closed).
	NextProbe time.Time `json:"next_probe,omitzero"`
}

// WorkerStates snapshots every worker's breaker state, in fleet order.
func (s *ShardedBackend) WorkerStates() []WorkerStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]WorkerStatus, len(s.workers))
	for i, w := range s.workers {
		st := s.state[i]
		out[i] = WorkerStatus{Name: w.Name(), Excluded: st.excluded, Failures: st.failures}
		if st.excluded {
			out[i].NextProbe = st.nextProbe
		}
	}
	return out
}

// snapshot returns the current worker list. The slice is append-only
// and elements are never replaced, so indexing a snapshot stays valid
// while AddWorker grows the fleet concurrently.
func (s *ShardedBackend) snapshot() []engine.Backend {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.workers
}

// SetReprobe adjusts the circuit breaker's base re-probe interval
// (DefaultReprobe when unset; d <= 0 resets to the default).
func (s *ShardedBackend) SetReprobe(d time.Duration) {
	if d <= 0 {
		d = DefaultReprobe
	}
	s.mu.Lock()
	s.reprobe = d
	s.mu.Unlock()
}

// markFailed opens the breaker for worker i and schedules its re-probe.
func (s *ShardedBackend) markFailed(i int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := &s.state[i]
	st.excluded = true
	st.failures++
	st.nextProbe = s.now().Add(s.backoffLocked(st.failures))
}

// backoffLocked returns the re-probe delay after n consecutive
// failures: reprobe * 2^(n-1), capped at 8x.
func (s *ShardedBackend) backoffLocked(n int) time.Duration {
	d := s.reprobe
	for i := 1; i < n && d < 8*s.reprobe; i++ {
		d *= 2
	}
	if d > 8*s.reprobe {
		d = 8 * s.reprobe
	}
	return d
}

// eligible returns the indices of workers allowed into this batch:
// every closed-breaker worker, plus any excluded worker whose re-probe
// deadline has passed and whose health probe succeeds. If that leaves
// nobody, every excluded worker is force-probed — the breaker must
// never fail a batch without at least attempting the fleet.
func (s *ShardedBackend) eligible(ctx context.Context) []int {
	var use, due, out []int
	s.mu.Lock()
	nowT := s.now()
	for i := range s.workers {
		switch st := s.state[i]; {
		case !st.excluded:
			use = append(use, i)
		case !nowT.Before(st.nextProbe):
			due = append(due, i)
		default:
			out = append(out, i)
		}
	}
	s.mu.Unlock()

	use = append(use, s.probe(ctx, due)...)
	if len(use) == 0 {
		use = s.probe(ctx, out)
	}
	return use
}

// probe health-checks the given excluded workers, readmitting the ones
// that answer and extending the backoff of the ones that do not. A
// probe that fails because the batch context is cancelled or expired
// says nothing about the worker — every probe fails under a dead ctx —
// so breaker state is left untouched: counting those failures would
// push nextProbe out with exponential backoff and lock healthy workers
// out for minutes after a Ctrl-C'd batch.
func (s *ShardedBackend) probe(ctx context.Context, idxs []int) []int {
	workers := s.snapshot()
	var ok []int
	for _, i := range idxs {
		err := workers[i].Healthy(ctx)
		if err != nil && ctx.Err() != nil {
			continue
		}
		s.mu.Lock()
		st := &s.state[i]
		if err == nil {
			st.excluded = false
			st.failures = 0
			ok = append(ok, i)
		} else {
			st.failures++
			st.nextProbe = s.now().Add(s.backoffLocked(st.failures))
		}
		s.mu.Unlock()
	}
	return ok
}

// New returns the standard client-side fleet backend: one HTTPBackend
// per p5worker address, sharded.
func New(addrs ...string) *ShardedBackend {
	ws := make([]engine.Backend, len(addrs))
	for i, a := range addrs {
		ws[i] = NewHTTPBackend(a)
	}
	return NewSharded(ws...)
}

// Name identifies the fleet in diagnostics.
func (s *ShardedBackend) Name() string {
	workers := s.snapshot()
	if len(workers) == 1 {
		return workers[0].Name()
	}
	return fmt.Sprintf("sharded(%d workers)", len(workers))
}

// Capacity sums the fleet's per-worker capacities.
func (s *ShardedBackend) Capacity() int {
	total := 0
	for _, w := range s.snapshot() {
		total += w.Capacity()
	}
	return total
}

// FleetHealth probes every worker: alive counts the workers that
// answered, down collects one error per worker that did not. Probing
// does not touch circuit-breaker state.
func (s *ShardedBackend) FleetHealth(ctx context.Context) (alive int, down []error) {
	for _, w := range s.snapshot() {
		if err := w.Healthy(ctx); err != nil {
			down = append(down, err)
		} else {
			alive++
		}
	}
	return alive, down
}

// Healthy succeeds when at least one worker answers its probe. The
// fleet is designed to run degraded — the circuit breaker exists
// precisely to exclude dead workers while the survivors serve batches
// — so a single unreachable worker must not fail a startup health
// check (a health loop retrying until the whole fleet answers would
// never converge). Healthy fails only when no worker is reachable, or
// the fleet is empty. Use FleetHealth for the per-worker detail,
// including which workers are down.
func (s *ShardedBackend) Healthy(ctx context.Context) error {
	alive, down := s.FleetHealth(ctx)
	if alive > 0 {
		return nil
	}
	if len(down) == 0 {
		return errors.New("remote: fleet has no workers")
	}
	return fmt.Errorf("remote: no worker reachable (%d probed): %w", len(down), errors.Join(down...))
}

// RemoteStats sums the fleet's counters plus the sharding layer's own
// retry bookkeeping.
func (s *ShardedBackend) RemoteStats() engine.RemoteStats {
	s.mu.Lock()
	total := s.rs
	s.mu.Unlock()
	for _, w := range s.snapshot() {
		if ws, ok := w.(engine.RemoteStatser); ok {
			r := ws.RemoteStats()
			total.Jobs += r.Jobs
			total.Retries += r.Retries
			total.WorkerErrors += r.WorkerErrors
		}
	}
	return total
}

// dispatcher is the shared batch state: pending job indices, plus an
// in-flight count so an idle worker can tell "no work right now" (a
// failed peer may requeue) from "the batch is drained".
type dispatcher struct {
	mu       sync.Mutex
	cond     *sync.Cond
	pending  []int
	inflight int
}

func newDispatcher(n int) *dispatcher {
	d := &dispatcher{pending: make([]int, n)}
	for i := range d.pending {
		d.pending[i] = i
	}
	d.cond = sync.NewCond(&d.mu)
	return d
}

// grab blocks until work is available (returning up to max indices and
// raising the in-flight count) or the batch is finished or cancelled
// (returning nil).
func (d *dispatcher) grab(ctx context.Context, max int) []int {
	d.mu.Lock()
	defer d.mu.Unlock()
	for len(d.pending) == 0 && d.inflight > 0 && ctx.Err() == nil {
		d.cond.Wait()
	}
	if len(d.pending) == 0 || ctx.Err() != nil {
		return nil
	}
	if max < 1 {
		max = 1
	}
	if max > len(d.pending) {
		max = len(d.pending)
	}
	chunk := append([]int(nil), d.pending[:max]...)
	d.pending = d.pending[max:]
	d.inflight++
	return chunk
}

// finish lowers the in-flight count, requeueing any indices the worker
// could not run, and wakes idle workers.
func (d *dispatcher) finish(requeue []int) {
	d.mu.Lock()
	d.inflight--
	d.pending = append(d.pending, requeue...)
	d.mu.Unlock()
	d.cond.Broadcast()
}

// wake unblocks grab waiters (used when ctx is cancelled).
func (d *dispatcher) wake() { d.cond.Broadcast() }

// leftovers returns the indices still pending after all workers exited.
func (d *dispatcher) leftovers() []int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.pending
}

// Run executes the batch across the fleet; see RunProgress.
func (s *ShardedBackend) Run(ctx context.Context, jobs []Job) ([]Result, error) {
	return s.RunProgress(ctx, jobs, nil)
}

// maxRequeues bounds how many times one job may be defensively
// requeued after a worker returned it Skipped without a worker-level
// error. Worker failures are not counted against it (each failing
// worker is excluded, so those retries are bounded by the fleet size);
// the cap exists for the pathological worker that keeps answering
// batches while executing nothing, which would otherwise livelock the
// dispatcher forever.
const maxRequeues = 3

// RunProgress executes the batch across the fleet, reporting each job's
// result as it lands. On cancellation, unfinished jobs return Skipped
// results with the context's error. If every worker fails while jobs
// are still pending, those jobs return Skipped results carrying the
// combined failure, which is also returned as the batch error.
func (s *ShardedBackend) RunProgress(ctx context.Context, jobs []Job, done func(i int, r Result)) ([]Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	out := make([]Result, len(jobs))
	var doneMu sync.Mutex
	finish := func(k int, r Result) {
		out[k] = r
		if done != nil {
			doneMu.Lock()
			done(k, r)
			doneMu.Unlock()
		}
	}

	d := newDispatcher(len(jobs))
	stop := make(chan struct{})
	defer close(stop)
	go func() { // wake grab waiters when the batch context dies
		select {
		case <-ctx.Done():
			d.wake()
		case <-stop:
		}
	}()

	workers := s.snapshot()
	active := s.eligible(ctx)
	if len(active) == 0 {
		var err error
		if len(workers) == 0 {
			err = fmt.Errorf("remote: %d jobs undispatched: fleet has no workers (none configured or registered yet)", len(jobs))
		} else {
			err = fmt.Errorf("remote: %d jobs undispatched: all %d workers failed: circuit open, no worker passed its readmission probe", len(jobs), len(workers))
		}
		for k := range jobs {
			finish(k, Result{Job: jobs[k], Err: err, Skipped: true})
		}
		return out, err
	}

	// requeues counts per-job defensive requeues (worker returned the
	// job Skipped with no worker-level error) toward maxRequeues.
	requeues := make([]int, len(jobs))
	var requeueMu sync.Mutex

	var wg sync.WaitGroup
	var failMu sync.Mutex
	var failures []error
	for _, wi := range active {
		wg.Add(1)
		go func(wi int) {
			w := workers[wi]
			defer wg.Done()
			for {
				chunk := d.grab(ctx, w.Capacity())
				if chunk == nil {
					return
				}
				chunkJobs := make([]Job, len(chunk))
				for i, k := range chunk {
					chunkJobs[i] = jobs[k]
				}
				res, err := w.Run(ctx, chunkJobs)
				// Record what the worker did run; collect the rest.
				var unfinished []int
				for i, k := range chunk {
					var r Result
					if i < len(res) {
						r = res[i]
					} else {
						r = Result{Job: jobs[k], Skipped: true}
					}
					if r.Skipped {
						unfinished = append(unfinished, k)
						continue
					}
					finish(k, r)
				}
				if err != nil && ctx.Err() == nil {
					// Worker failure: open its breaker (excluding it
					// from this and subsequent batches until a
					// re-probe readmits it), hand its unfinished jobs
					// to the survivors.
					s.markFailed(wi)
					s.mu.Lock()
					s.rs.Retries += len(unfinished)
					s.mu.Unlock()
					failMu.Lock()
					failures = append(failures, err)
					failMu.Unlock()
					d.finish(unfinished)
					return
				}
				if ctx.Err() != nil {
					// Cancelled: report, don't retry.
					for _, k := range unfinished {
						finish(k, Result{Job: jobs[k], Err: ctx.Err(), Skipped: true})
					}
					d.finish(nil)
					return
				}
				// A worker that reports per-job Skipped without a
				// worker-level error did not execute them (defensive:
				// the HTTP client never does this); retry elsewhere —
				// but not forever. Without a cap, a worker that
				// persistently skips jobs while reporting success
				// livelocks the batch: its jobs requeue, it grabs them
				// again, ad infinitum. After maxRequeues defensive
				// requeues a job fails with a diagnostic instead.
				var retry []int
				for _, k := range unfinished {
					requeueMu.Lock()
					requeues[k]++
					n := requeues[k]
					requeueMu.Unlock()
					if n > maxRequeues {
						finish(k, Result{Job: jobs[k], Skipped: true, Err: fmt.Errorf(
							"remote: job returned skipped without a worker error and was requeued %d times (last worker %s); giving up — the worker is accepting batches but not executing them",
							maxRequeues, w.Name())})
						continue
					}
					retry = append(retry, k)
				}
				s.mu.Lock()
				s.rs.Retries += len(retry)
				s.mu.Unlock()
				d.finish(retry)
			}
		}(wi)
	}
	wg.Wait()

	left := d.leftovers()
	if len(left) == 0 {
		return out, nil
	}
	if err := ctx.Err(); err != nil {
		for _, k := range left {
			finish(k, Result{Job: jobs[k], Err: err, Skipped: true})
		}
		return out, nil
	}
	failMu.Lock()
	err := fmt.Errorf("remote: %d jobs undispatched: all %d dispatched workers failed: %w",
		len(left), len(active), errors.Join(failures...))
	failMu.Unlock()
	for _, k := range left {
		finish(k, Result{Job: jobs[k], Err: err, Skipped: true})
	}
	return out, err
}
