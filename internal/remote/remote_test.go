package remote

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"

	"power5prio/internal/cachestore"
	"power5prio/internal/core"
	"power5prio/internal/engine"
	"power5prio/internal/fame"
	"power5prio/internal/isa"
	"power5prio/internal/microbench"
	"power5prio/internal/prio"
	"power5prio/internal/workload"
)

// testOptions keeps simulations tiny (mirrors the engine test setup).
func testOptions() fame.Options {
	return fame.Options{MinReps: 2, WarmupReps: 0, MaxCycles: 50_000_000}
}

const testScale = 0.02

func ref(t testing.TB, name string) workload.Ref {
	t.Helper()
	r, err := workload.NewRegistry().Resolve(name)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// testJobs builds n distinct jobs plus two duplicates, so batches
// exercise dedup above the backend and distinct work inside it.
func testJobs(t testing.TB, n int) []engine.Job {
	t.Helper()
	cfg := core.DefaultConfig()
	opt := testOptions()
	a, b := ref(t, microbench.CPUInt), ref(t, microbench.LdIntL1)
	var jobs []engine.Job
	for i := 0; len(jobs) < n; i++ {
		pp := prio.Level(1 + i%7)
		ps := prio.Level(1 + (i/7)%7)
		jobs = append(jobs, engine.Pair(a, b, pp, ps, prio.Supervisor, testScale, cfg, opt))
	}
	return append(jobs, jobs[0], jobs[n/2])
}

// openStore opens a cachestore on dir (one per simulated process).
func openStore(dir string) (*cachestore.Store, error) { return cachestore.Open(dir) }

// startWorker runs a worker server over httptest and returns its
// address and the server object (for engine stats).
func startWorker(t testing.TB, cfg ServerConfig) (string, *Server) {
	t.Helper()
	srv := NewServer(cfg)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts.URL, srv
}

// TestLoopbackEquivalence: a batch sharded across two HTTP workers is
// bit-identical to local execution, the progress callback covers every
// job, and the remote counters account for every unique job.
func TestLoopbackEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("chip-level simulation")
	}
	jobs := testJobs(t, 8)
	want := engine.New(4).Run(nil, jobs)

	addr1, _ := startWorker(t, ServerConfig{Workers: 2})
	addr2, _ := startWorker(t, ServerConfig{Workers: 2})
	backend := NewSharded(
		NewHTTPBackend(addr1, WithMaxInFlight(2)),
		NewHTTPBackend(addr2, WithMaxInFlight(3)),
	)
	if err := backend.Healthy(nil); err != nil {
		t.Fatalf("Healthy: %v", err)
	}
	eng := engine.NewWith(0, nil, engine.WithBackend(backend))

	seen := make(map[int]int)
	got := eng.RunFunc(nil, jobs, func(i int, r engine.Result) { seen[i]++ })
	for i := range jobs {
		if got[i].Err != nil {
			t.Fatalf("remote job %d: %v", i, got[i].Err)
		}
		if got[i].Pair != want[i].Pair {
			t.Errorf("job %d: remote result differs from local\nremote %+v\nlocal  %+v", i, got[i].Pair, want[i].Pair)
		}
	}
	for i := range jobs {
		if seen[i] != 1 {
			t.Errorf("progress fired %d times for job %d, want 1", seen[i], i)
		}
	}

	st := eng.Stats()
	unique := 8
	if st.Remote.Jobs != unique {
		t.Errorf("Remote.Jobs = %d, want %d (unique jobs)", st.Remote.Jobs, unique)
	}
	if st.Remote.WorkerErrors != 0 || st.Remote.Retries != 0 {
		t.Errorf("healthy fleet reported failures: %+v", st.Remote)
	}
	if st.Simulated != unique || st.Hits != len(jobs)-unique {
		t.Errorf("engine stats %+v, want %d simulated, %d hits", st, unique, len(jobs)-unique)
	}
	if !strings.Contains(st.String(), "remote:") {
		t.Errorf("Stats.String() hides remote counters: %q", st.String())
	}

	// The whole batch again: pure client-side cache, nothing remote.
	before := st.Remote.Jobs
	again := eng.Run(nil, jobs)
	for i := range jobs {
		if !again[i].CacheHit || again[i].Pair != want[i].Pair {
			t.Fatalf("re-run job %d not served identically from the client cache", i)
		}
	}
	if after := eng.Stats().Remote.Jobs; after != before {
		t.Errorf("re-run went remote: %d jobs, want %d", after, before)
	}
}

// flakyProxy fronts a healthy worker and starts failing every request
// after the first successful run call — a worker dying mid-batch.
func flakyProxy(t testing.TB, target string, serveRuns int64) string {
	t.Helper()
	var runs atomic.Int64
	proxy := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == RunPath && runs.Add(1) > serveRuns {
			http.Error(w, "injected worker failure", http.StatusInternalServerError)
			return
		}
		req, err := http.NewRequestWithContext(r.Context(), r.Method, target+r.URL.Path, r.Body)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		req.Header = r.Header
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadGateway)
			return
		}
		defer resp.Body.Close()
		w.WriteHeader(resp.StatusCode)
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		w.Write(buf.Bytes())
	}))
	t.Cleanup(proxy.Close)
	return proxy.URL
}

// TestWorkerFailureRetry: one of two workers fails every chunk it
// grabs (health passes, run requests die); its jobs are retried on the
// survivor and the batch still matches local execution byte for byte.
// The broken worker serves zero runs so the failure is deterministic —
// with work stealing there is no guarantee a worker gets a *second*
// chunk, only that each live worker grabs a first while the other is
// busy simulating.
func TestWorkerFailureRetry(t *testing.T) {
	if testing.Short() {
		t.Skip("chip-level simulation")
	}
	jobs := testJobs(t, 8)
	want := engine.New(4).Run(nil, jobs)

	good, _ := startWorker(t, ServerConfig{Workers: 2})
	flaky := flakyProxy(t, good, 0)

	backend := NewSharded(
		NewHTTPBackend(good, WithMaxInFlight(2)),
		NewHTTPBackend(flaky, WithMaxInFlight(2)),
	)
	eng := engine.NewWith(0, nil, engine.WithBackend(backend))
	got := eng.Run(nil, jobs)
	for i := range jobs {
		if got[i].Err != nil {
			t.Fatalf("job %d failed despite a surviving worker: %v", i, got[i].Err)
		}
		if got[i].Pair != want[i].Pair {
			t.Errorf("job %d: result differs from local after retry", i)
		}
	}
	st := eng.Stats()
	if st.Remote.WorkerErrors == 0 {
		t.Error("injected worker failure not counted in Remote.WorkerErrors")
	}
	if st.Remote.Retries == 0 {
		t.Error("no retries counted for the failed worker's jobs")
	}
}

// TestAllWorkersFail: with every worker failing, jobs come back as
// skipped backend errors — and nothing poisons the cache, so a retry
// against a healthy fleet succeeds.
func TestAllWorkersFail(t *testing.T) {
	if testing.Short() {
		t.Skip("chip-level simulation")
	}
	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "down", http.StatusServiceUnavailable)
	}))
	defer dead.Close()

	jobs := testJobs(t, 3)[:3]
	backend := NewSharded(NewHTTPBackend(dead.URL), NewHTTPBackend(dead.URL))
	eng := engine.NewWith(0, nil, engine.WithBackend(backend))
	res := eng.Run(nil, jobs)
	for i, r := range res {
		if r.Err == nil {
			t.Fatalf("job %d succeeded against a dead fleet", i)
		}
		if !r.Skipped {
			t.Errorf("job %d backend failure not marked Skipped", i)
		}
	}
	if st := eng.Stats(); st.Simulated != 0 || st.Skipped != len(jobs) {
		t.Errorf("stats %+v, want 0 simulated / %d skipped", st, len(jobs))
	}
	if backend.Healthy(nil) == nil {
		t.Error("Healthy succeeded against a dead fleet")
	}

	// Same jobs on a healthy backend: the dead-fleet errors were not
	// cached.
	good, _ := startWorker(t, ServerConfig{Workers: 2})
	eng2 := engine.NewWith(0, nil, engine.WithBackend(NewSharded(NewHTTPBackend(good))))
	for i, r := range eng2.Run(nil, jobs) {
		if r.Err != nil {
			t.Fatalf("retry job %d: %v", i, r.Err)
		}
	}
}

// TestSharedStoreShortCircuit: a worker whose cachestore directory was
// warmed by an earlier process serves jobs from disk without
// simulating — the documented shared-cache-dir deployment.
func TestSharedStoreShortCircuit(t *testing.T) {
	if testing.Short() {
		t.Skip("chip-level simulation")
	}
	dir := t.TempDir()
	jobs := testJobs(t, 4)[:4]

	// First worker process: simulates and persists.
	st1, err := openStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	addr1, srv1 := startWorker(t, ServerConfig{Workers: 2, Store: st1})
	eng1 := engine.NewWith(0, nil, engine.WithBackend(New(addr1)))
	want := eng1.Run(nil, jobs)
	if s := srv1.Engine().Stats(); s.Simulated != len(jobs) || s.DiskWrites != len(jobs) {
		t.Fatalf("cold worker stats %+v, want %d simulated+written", s, len(jobs))
	}

	// Second worker process on the same directory: all disk hits.
	st2, err := openStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	addr2, srv2 := startWorker(t, ServerConfig{Workers: 2, Store: st2})
	eng2 := engine.NewWith(0, nil, engine.WithBackend(New(addr2)))
	got := eng2.Run(nil, jobs)
	for i := range jobs {
		if got[i].Err != nil || got[i].Pair != want[i].Pair {
			t.Fatalf("warm worker job %d diverged: %+v", i, got[i])
		}
	}
	if s := srv2.Engine().Stats(); s.Simulated != 0 || s.DiskHits != len(jobs) {
		t.Errorf("warm worker stats %+v, want 0 simulated / %d disk hits", s, len(jobs))
	}
}

// TestKeyMismatch: a job whose claimed key does not match the worker's
// recomputation fails loudly without executing.
func TestKeyMismatch(t *testing.T) {
	addr, _ := startWorker(t, ServerConfig{Workers: 1})
	j := engine.Single(ref(t, microbench.CPUInt), prio.Supervisor, testScale, core.DefaultConfig(), testOptions())
	req := RunRequest{Protocol: ProtocolVersion, Jobs: []WireJob{{Key: strings.Repeat("ab", 32), Job: j}}}
	body, _ := json.Marshal(req)
	resp, err := http.Post(addr+RunPath, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var rr RunResponse
	if err := json.NewDecoder(resp.Body).Decode(&rr); err != nil {
		t.Fatal(err)
	}
	if len(rr.Results) != 1 || !strings.Contains(rr.Results[0].Err, "key mismatch") {
		t.Errorf("forged key not rejected: %+v", rr.Results)
	}
}

// TestProtocolMismatch: both directions reject a version skew.
func TestProtocolMismatch(t *testing.T) {
	addr, _ := startWorker(t, ServerConfig{Workers: 1})
	body, _ := json.Marshal(RunRequest{Protocol: "p5remote/v999"})
	resp, err := http.Post(addr+RunPath, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("stale protocol accepted: %s", resp.Status)
	}

	// A "worker" speaking a different protocol version fails the health
	// probe before any job is risked.
	old := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(Health{Protocol: "p5remote/v0"})
	}))
	defer old.Close()
	if err := NewHTTPBackend(old.URL).Healthy(nil); err == nil || !strings.Contains(err.Error(), "protocol mismatch") {
		t.Errorf("version-skewed worker passed health: %v", err)
	}
}

// TestCustomWorkloadFails: a job naming a locally registered custom
// kernel cannot execute on a worker that never saw the registration —
// it must error, not silently measure something else.
func TestCustomWorkloadFails(t *testing.T) {
	b := isa.NewBuilder("remote_custom")
	a := b.Reg("a")
	b.Op2(isa.OpIntAdd, a, a, a)
	b.Branch(isa.BranchLoop, a)
	reg := workload.NewRegistry()
	cref, err := reg.Register(b.MustBuild(16))
	if err != nil {
		t.Fatal(err)
	}
	addr, _ := startWorker(t, ServerConfig{Workers: 1})
	eng := engine.NewWith(0, reg, engine.WithBackend(New(addr)))
	res := eng.Run(nil, []engine.Job{engine.Single(cref, prio.Supervisor, 1.0, core.DefaultConfig(), testOptions())})
	if res[0].Err == nil {
		t.Fatal("custom workload executed on a worker that cannot know its kernel")
	}
	if !strings.Contains(res[0].Err.Error(), "remote_custom") {
		t.Errorf("error does not name the unresolvable workload: %v", res[0].Err)
	}
}

// TestShardedCancellation: cancelling mid-batch returns skipped results
// carrying the context error, and completed work stays cached.
func TestShardedCancellation(t *testing.T) {
	if testing.Short() {
		t.Skip("chip-level simulation")
	}
	addr, _ := startWorker(t, ServerConfig{Workers: 1})
	jobs := testJobs(t, 6)[:6]
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	eng := engine.NewWith(0, nil, engine.WithBackend(NewSharded(NewHTTPBackend(addr, WithMaxInFlight(1)))))
	nDone := 0
	res := eng.RunFunc(ctx, jobs, func(i int, r engine.Result) {
		if r.Err == nil {
			nDone++
			if nDone == 2 {
				cancel()
			}
		}
	})
	completed, skipped := 0, 0
	for i, r := range res {
		switch {
		case r.Err == nil:
			completed++
		case errors.Is(r.Err, context.Canceled):
			skipped++
		default:
			t.Errorf("job %d: unexpected error %v", i, r.Err)
		}
	}
	if completed < 2 || completed == len(jobs) {
		t.Errorf("%d jobs completed, want a strict mid-batch prefix >= 2", completed)
	}
	if st := eng.Stats(); st.Skipped != skipped || st.Remote.WorkerErrors != 0 {
		t.Errorf("stats %+v after cancellation (%d skipped results)", st, skipped)
	}
}
