package remote

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

// scriptedWorker is a controllable engine.Backend for circuit-breaker
// tests: health and run behavior flip per test step, and every call is
// counted. The await/signal pair serializes two workers so the failing
// one is guaranteed a chunk before the survivor drains the batch.
type scriptedWorker struct {
	name   string
	await  chan struct{} // if set, Run blocks until closed
	signal chan struct{} // if set, closed on first Run

	once sync.Once

	mu      sync.Mutex
	healthy bool
	failRun bool
	skipRun bool // return every job Skipped with no worker error
	runs    int
	probes  int
}

func (w *scriptedWorker) Name() string  { return w.name }
func (w *scriptedWorker) Capacity() int { return 4 }

func (w *scriptedWorker) Healthy(ctx context.Context) error {
	if ctx != nil && ctx.Err() != nil {
		// A dead ctx fails before any request reaches the worker,
		// exactly like a real HTTP probe under a cancelled batch.
		return ctx.Err()
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	w.probes++
	if !w.healthy {
		return fmt.Errorf("%s: down", w.name)
	}
	return nil
}

func (w *scriptedWorker) Run(_ context.Context, jobs []Job) ([]Result, error) {
	if w.signal != nil {
		w.once.Do(func() { close(w.signal) })
	}
	if w.await != nil {
		<-w.await
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	w.runs++
	if w.failRun {
		return nil, fmt.Errorf("%s: boom", w.name)
	}
	out := make([]Result, len(jobs))
	for i, j := range jobs {
		out[i] = Result{Job: j, Skipped: w.skipRun}
	}
	return out, nil
}

func (w *scriptedWorker) set(healthy, failRun bool) {
	w.mu.Lock()
	w.healthy = healthy
	w.failRun = failRun
	w.mu.Unlock()
}

func (w *scriptedWorker) counts() (runs, probes int) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.runs, w.probes
}

// fakeClock is an injectable, manually-advanced clock.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// dummyJobs builds placeholder jobs; scripted workers never simulate,
// so the content only needs distinct submission indices.
func dummyJobs(n int) []Job {
	jobs := make([]Job, n)
	for i := range jobs {
		jobs[i].IterScale = float64(i + 1)
	}
	return jobs
}

// TestBreakerDeadWorkerRejoins pins the cross-batch circuit breaker:
// a worker that fails a batch stays excluded from subsequent batches
// (no runs, no probes before its deadline), then one successful
// re-probe after the interval readmits it.
func TestBreakerDeadWorkerRejoins(t *testing.T) {
	gate := make(chan struct{})
	good := &scriptedWorker{name: "good", healthy: true, await: gate}
	bad := &scriptedWorker{name: "bad", healthy: true, failRun: true, signal: gate}
	clock := &fakeClock{t: time.Unix(1000, 0)}

	s := NewSharded(good, bad)
	s.now = clock.now
	s.SetReprobe(time.Minute)

	// Batch 1: bad fails its first chunk, the batch completes on good.
	res, err := s.Run(nil, dummyJobs(8))
	if err != nil {
		t.Fatalf("batch 1: %v", err)
	}
	for i, r := range res {
		if r.Err != nil || r.Skipped {
			t.Fatalf("batch 1 job %d not completed: %+v", i, r)
		}
	}
	badRuns, _ := bad.counts()
	if badRuns != 1 {
		t.Fatalf("bad worker ran %d chunks in batch 1, want 1", badRuns)
	}

	// The worker recovers, but its breaker is still open: before the
	// re-probe deadline it must be neither probed nor dispatched to.
	bad.set(true, false)
	if _, err := s.Run(nil, dummyJobs(8)); err != nil {
		t.Fatalf("batch 2: %v", err)
	}
	if runs, probes := bad.counts(); runs != 1 || probes != 0 {
		t.Fatalf("excluded worker touched before deadline: runs=%d probes=%d, want 1/0", runs, probes)
	}

	// Past the deadline: one probe readmits it into the rotation.
	clock.advance(2 * time.Minute)
	if _, err := s.Run(nil, dummyJobs(8)); err != nil {
		t.Fatalf("batch 3: %v", err)
	}
	if _, probes := bad.counts(); probes != 1 {
		t.Fatalf("readmission probes = %d, want 1", probes)
	}
	s.mu.Lock()
	excluded := s.state[1].excluded
	s.mu.Unlock()
	if excluded {
		t.Fatal("worker still excluded after a successful re-probe")
	}
}

// TestBreakerFailedProbeBacksOff pins the backoff: a probe that fails
// pushes the next probe out exponentially instead of hammering a dead
// worker every batch.
func TestBreakerFailedProbeBacksOff(t *testing.T) {
	gate := make(chan struct{})
	good := &scriptedWorker{name: "good", healthy: true, await: gate}
	bad := &scriptedWorker{name: "bad", healthy: false, failRun: true, signal: gate}
	clock := &fakeClock{t: time.Unix(1000, 0)}

	s := NewSharded(good, bad)
	s.now = clock.now
	s.SetReprobe(time.Minute)

	// Batch 1: failures=1, next probe one base interval out.
	if _, err := s.Run(nil, dummyJobs(4)); err != nil {
		t.Fatalf("batch 1: %v", err)
	}

	// +70s: past the first deadline, so one probe runs — and fails,
	// doubling the backoff (failures=2, next probe 2m out).
	clock.advance(70 * time.Second)
	if _, err := s.Run(nil, dummyJobs(4)); err != nil {
		t.Fatalf("batch 2: %v", err)
	}
	if _, probes := bad.counts(); probes != 1 {
		t.Fatalf("probes after first deadline = %d, want 1", probes)
	}

	// +60s more: a full base interval has elapsed again, but the
	// backed-off deadline (2m) has not — no second probe.
	clock.advance(60 * time.Second)
	if _, err := s.Run(nil, dummyJobs(4)); err != nil {
		t.Fatalf("batch 3: %v", err)
	}
	if _, probes := bad.counts(); probes != 1 {
		t.Fatalf("probed before backed-off deadline: %d probes, want 1", probes)
	}

	// Past the doubled deadline: the second probe runs.
	clock.advance(2 * time.Minute)
	if _, err := s.Run(nil, dummyJobs(4)); err != nil {
		t.Fatalf("batch 4: %v", err)
	}
	if _, probes := bad.counts(); probes != 2 {
		t.Fatalf("probes after backed-off deadline = %d, want 2", probes)
	}
	if runs, _ := bad.counts(); runs != 1 {
		t.Fatalf("dead worker dispatched after failed probes: runs = %d, want 1", runs)
	}
}

// TestBreakerAllDeadForceProbe pins the no-deadlock guarantee: with
// every worker's breaker open, a new batch force-probes the fleet
// instead of failing unattempted, so a recovered fleet serves it.
func TestBreakerAllDeadForceProbe(t *testing.T) {
	w1 := &scriptedWorker{name: "w1", healthy: true, failRun: true}
	w2 := &scriptedWorker{name: "w2", healthy: true, failRun: true}
	clock := &fakeClock{t: time.Unix(1000, 0)}

	s := NewSharded(w1, w2)
	s.now = clock.now
	s.SetReprobe(time.Hour)

	res, err := s.Run(nil, dummyJobs(4))
	if err == nil {
		t.Fatal("batch against an all-failing fleet succeeded")
	}
	for i, r := range res {
		if !r.Skipped || r.Err == nil {
			t.Fatalf("job %d not skipped with error after fleet failure: %+v", i, r)
		}
	}

	// Fleet recovers. The breakers are open for another hour, but the
	// force-probe path must readmit the workers immediately rather
	// than failing the batch with nobody dispatched.
	w1.set(true, false)
	w2.set(true, false)
	res, err = s.Run(nil, dummyJobs(4))
	if err != nil {
		t.Fatalf("recovered fleet batch: %v", err)
	}
	for i, r := range res {
		if r.Err != nil || r.Skipped {
			t.Fatalf("recovered fleet job %d not completed: %+v", i, r)
		}
	}

	// And when nothing recovers, the batch fails cleanly with the
	// circuit-open error.
	w1.set(false, true)
	w2.set(false, true)
	s2 := NewSharded(w1, w2)
	s2.now = clock.now
	if _, err := s2.Run(nil, dummyJobs(2)); err == nil {
		t.Fatal("first batch against failing fleet succeeded")
	}
	_, err = s2.Run(nil, dummyJobs(2))
	if err == nil {
		t.Fatal("circuit-open batch succeeded with dead fleet")
	}
	if !strings.Contains(err.Error(), "circuit open") {
		t.Fatalf("want circuit-open error, got: %v", err)
	}
}

// TestBreakerCancelledProbeLeavesStateUntouched pins the probe ctx fix:
// a probe failing because the batch context is dead must not count as a
// worker failure. Before the fix a Ctrl-C'd batch incremented failures
// and pushed nextProbe out with exponential backoff, locking a healthy
// worker out for minutes.
func TestBreakerCancelledProbeLeavesStateUntouched(t *testing.T) {
	gate := make(chan struct{})
	good := &scriptedWorker{name: "good", healthy: true, await: gate}
	bad := &scriptedWorker{name: "bad", healthy: true, failRun: true, signal: gate}
	clock := &fakeClock{t: time.Unix(1000, 0)}

	s := NewSharded(good, bad)
	s.now = clock.now
	s.SetReprobe(time.Minute)

	// Batch 1: bad fails and its breaker opens (failures=1).
	if _, err := s.Run(nil, dummyJobs(8)); err != nil {
		t.Fatalf("batch 1: %v", err)
	}
	s.mu.Lock()
	before := s.state[1]
	s.mu.Unlock()
	if !before.excluded {
		t.Fatal("failing worker not excluded after batch 1")
	}

	// The worker recovers and its re-probe deadline passes; then a
	// batch arrives with an already-cancelled ctx. Its probe fails for
	// ctx reasons only, and must leave the breaker untouched.
	bad.set(true, false)
	clock.advance(2 * time.Minute)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.Run(ctx, dummyJobs(4)); err != nil {
		t.Fatalf("cancelled batch returned batch error: %v", err)
	}
	s.mu.Lock()
	after := s.state[1]
	s.mu.Unlock()
	if !after.excluded || after.failures != before.failures || !after.nextProbe.Equal(before.nextProbe) {
		t.Fatalf("dead-ctx probe mutated breaker state: before=%+v after=%+v", before, after)
	}

	// A live batch right after must probe and readmit immediately —
	// with the bug, the phantom failure would have doubled the backoff
	// and the worker would still be excluded here.
	if _, err := s.Run(nil, dummyJobs(8)); err != nil {
		t.Fatalf("recovery batch: %v", err)
	}
	s.mu.Lock()
	excluded := s.state[1].excluded
	s.mu.Unlock()
	if excluded {
		t.Fatal("worker still excluded after its recovery probe")
	}
}

// TestHealthyDegradedFleet pins the fleet health contract: the fleet is
// healthy while at least one worker answers (the breaker exists
// precisely to run degraded), and unhealthy only when nobody does.
// Before the fix one dead worker failed the whole fleet and cmdutil's
// startup health loop never converged.
func TestHealthyDegradedFleet(t *testing.T) {
	good := &scriptedWorker{name: "good", healthy: true}
	bad := &scriptedWorker{name: "bad", healthy: false}
	s := NewSharded(good, bad)

	ctx := context.Background()
	if err := s.Healthy(ctx); err != nil {
		t.Fatalf("fleet with one live worker reported unhealthy: %v", err)
	}
	alive, down := s.FleetHealth(ctx)
	if alive != 1 || len(down) != 1 {
		t.Fatalf("FleetHealth = (%d alive, %d down), want (1, 1)", alive, len(down))
	}
	if !strings.Contains(errorsJoin(down), "bad: down") {
		t.Fatalf("down errors missing the dead worker: %v", down)
	}

	good.set(false, false)
	if err := s.Healthy(ctx); err == nil {
		t.Fatal("all-dead fleet reported healthy")
	}

	if err := NewDynamic().Healthy(ctx); err == nil {
		t.Fatal("empty fleet reported healthy")
	}
}

func errorsJoin(errs []error) string {
	var b strings.Builder
	for _, err := range errs {
		b.WriteString(err.Error())
		b.WriteString("\n")
	}
	return b.String()
}

// TestRequeueCapConvergesOnSkippingWorker pins the defensive-requeue
// cap: a worker that keeps returning jobs Skipped without a
// worker-level error must not livelock the batch. Before the fix this
// test spun forever — the skipped jobs requeued, the same worker
// grabbed them again, ad infinitum.
func TestRequeueCapConvergesOnSkippingWorker(t *testing.T) {
	w := &scriptedWorker{name: "skipper", healthy: true, skipRun: true}
	s := NewSharded(w)

	res, err := s.Run(nil, dummyJobs(3))
	if err != nil {
		t.Fatalf("batch error = %v, want nil (per-job failures only)", err)
	}
	for i, r := range res {
		if !r.Skipped || r.Err == nil || !strings.Contains(r.Err.Error(), "requeued") {
			t.Fatalf("job %d = %+v, want skipped with a requeue-cap diagnostic", i, r)
		}
	}
	// Capacity 4 covers all 3 jobs per grab: one initial run plus one
	// per allowed requeue, then the cap fails the jobs.
	if runs, _ := w.counts(); runs != maxRequeues+1 {
		t.Fatalf("skipping worker ran %d chunks, want %d", runs, maxRequeues+1)
	}
}

// TestDynamicFleetRegistration pins the service-facing fleet API: an
// empty fleet fails batches with a clear error instead of panicking,
// AddWorker grows it at runtime, and re-registering a known worker
// closes its breaker instead of duplicating it.
func TestDynamicFleetRegistration(t *testing.T) {
	s := NewDynamic()
	_, err := s.Run(nil, dummyJobs(2))
	if err == nil || !strings.Contains(err.Error(), "no workers") {
		t.Fatalf("empty-fleet batch error = %v, want a no-workers diagnostic", err)
	}

	w := &scriptedWorker{name: "w1", healthy: true}
	if !s.AddWorker(w) {
		t.Fatal("AddWorker reported no growth for a new worker")
	}
	res, err := s.Run(nil, dummyJobs(2))
	if err != nil {
		t.Fatalf("batch after registration: %v", err)
	}
	for i, r := range res {
		if r.Err != nil || r.Skipped {
			t.Fatalf("job %d not completed after registration: %+v", i, r)
		}
	}

	// Fail the worker so its breaker opens, then re-register it: the
	// fleet must not grow, and the breaker must close.
	w.set(true, true)
	if _, err := s.Run(nil, dummyJobs(2)); err == nil {
		t.Fatal("batch against failing single-worker fleet succeeded")
	}
	if st := s.WorkerStates(); len(st) != 1 || !st[0].Excluded {
		t.Fatalf("worker states after failure = %+v, want one excluded entry", st)
	}
	w.set(true, false)
	if s.AddWorker(&scriptedWorker{name: "w1", healthy: true}) {
		t.Fatal("re-registering a known worker grew the fleet")
	}
	st := s.WorkerStates()
	if len(st) != 1 || st[0].Excluded || st[0].Failures != 0 {
		t.Fatalf("worker states after re-registration = %+v, want one closed-breaker entry", st)
	}
}
