package remote

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

// scriptedWorker is a controllable engine.Backend for circuit-breaker
// tests: health and run behavior flip per test step, and every call is
// counted. The await/signal pair serializes two workers so the failing
// one is guaranteed a chunk before the survivor drains the batch.
type scriptedWorker struct {
	name   string
	await  chan struct{} // if set, Run blocks until closed
	signal chan struct{} // if set, closed on first Run

	once sync.Once

	mu      sync.Mutex
	healthy bool
	failRun bool
	runs    int
	probes  int
}

func (w *scriptedWorker) Name() string  { return w.name }
func (w *scriptedWorker) Capacity() int { return 4 }

func (w *scriptedWorker) Healthy(context.Context) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.probes++
	if !w.healthy {
		return fmt.Errorf("%s: down", w.name)
	}
	return nil
}

func (w *scriptedWorker) Run(_ context.Context, jobs []Job) ([]Result, error) {
	if w.signal != nil {
		w.once.Do(func() { close(w.signal) })
	}
	if w.await != nil {
		<-w.await
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	w.runs++
	if w.failRun {
		return nil, fmt.Errorf("%s: boom", w.name)
	}
	out := make([]Result, len(jobs))
	for i, j := range jobs {
		out[i] = Result{Job: j}
	}
	return out, nil
}

func (w *scriptedWorker) set(healthy, failRun bool) {
	w.mu.Lock()
	w.healthy = healthy
	w.failRun = failRun
	w.mu.Unlock()
}

func (w *scriptedWorker) counts() (runs, probes int) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.runs, w.probes
}

// fakeClock is an injectable, manually-advanced clock.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// dummyJobs builds placeholder jobs; scripted workers never simulate,
// so the content only needs distinct submission indices.
func dummyJobs(n int) []Job {
	jobs := make([]Job, n)
	for i := range jobs {
		jobs[i].IterScale = float64(i + 1)
	}
	return jobs
}

// TestBreakerDeadWorkerRejoins pins the cross-batch circuit breaker:
// a worker that fails a batch stays excluded from subsequent batches
// (no runs, no probes before its deadline), then one successful
// re-probe after the interval readmits it.
func TestBreakerDeadWorkerRejoins(t *testing.T) {
	gate := make(chan struct{})
	good := &scriptedWorker{name: "good", healthy: true, await: gate}
	bad := &scriptedWorker{name: "bad", healthy: true, failRun: true, signal: gate}
	clock := &fakeClock{t: time.Unix(1000, 0)}

	s := NewSharded(good, bad)
	s.now = clock.now
	s.SetReprobe(time.Minute)

	// Batch 1: bad fails its first chunk, the batch completes on good.
	res, err := s.Run(nil, dummyJobs(8))
	if err != nil {
		t.Fatalf("batch 1: %v", err)
	}
	for i, r := range res {
		if r.Err != nil || r.Skipped {
			t.Fatalf("batch 1 job %d not completed: %+v", i, r)
		}
	}
	badRuns, _ := bad.counts()
	if badRuns != 1 {
		t.Fatalf("bad worker ran %d chunks in batch 1, want 1", badRuns)
	}

	// The worker recovers, but its breaker is still open: before the
	// re-probe deadline it must be neither probed nor dispatched to.
	bad.set(true, false)
	if _, err := s.Run(nil, dummyJobs(8)); err != nil {
		t.Fatalf("batch 2: %v", err)
	}
	if runs, probes := bad.counts(); runs != 1 || probes != 0 {
		t.Fatalf("excluded worker touched before deadline: runs=%d probes=%d, want 1/0", runs, probes)
	}

	// Past the deadline: one probe readmits it into the rotation.
	clock.advance(2 * time.Minute)
	if _, err := s.Run(nil, dummyJobs(8)); err != nil {
		t.Fatalf("batch 3: %v", err)
	}
	if _, probes := bad.counts(); probes != 1 {
		t.Fatalf("readmission probes = %d, want 1", probes)
	}
	s.mu.Lock()
	excluded := s.state[1].excluded
	s.mu.Unlock()
	if excluded {
		t.Fatal("worker still excluded after a successful re-probe")
	}
}

// TestBreakerFailedProbeBacksOff pins the backoff: a probe that fails
// pushes the next probe out exponentially instead of hammering a dead
// worker every batch.
func TestBreakerFailedProbeBacksOff(t *testing.T) {
	gate := make(chan struct{})
	good := &scriptedWorker{name: "good", healthy: true, await: gate}
	bad := &scriptedWorker{name: "bad", healthy: false, failRun: true, signal: gate}
	clock := &fakeClock{t: time.Unix(1000, 0)}

	s := NewSharded(good, bad)
	s.now = clock.now
	s.SetReprobe(time.Minute)

	// Batch 1: failures=1, next probe one base interval out.
	if _, err := s.Run(nil, dummyJobs(4)); err != nil {
		t.Fatalf("batch 1: %v", err)
	}

	// +70s: past the first deadline, so one probe runs — and fails,
	// doubling the backoff (failures=2, next probe 2m out).
	clock.advance(70 * time.Second)
	if _, err := s.Run(nil, dummyJobs(4)); err != nil {
		t.Fatalf("batch 2: %v", err)
	}
	if _, probes := bad.counts(); probes != 1 {
		t.Fatalf("probes after first deadline = %d, want 1", probes)
	}

	// +60s more: a full base interval has elapsed again, but the
	// backed-off deadline (2m) has not — no second probe.
	clock.advance(60 * time.Second)
	if _, err := s.Run(nil, dummyJobs(4)); err != nil {
		t.Fatalf("batch 3: %v", err)
	}
	if _, probes := bad.counts(); probes != 1 {
		t.Fatalf("probed before backed-off deadline: %d probes, want 1", probes)
	}

	// Past the doubled deadline: the second probe runs.
	clock.advance(2 * time.Minute)
	if _, err := s.Run(nil, dummyJobs(4)); err != nil {
		t.Fatalf("batch 4: %v", err)
	}
	if _, probes := bad.counts(); probes != 2 {
		t.Fatalf("probes after backed-off deadline = %d, want 2", probes)
	}
	if runs, _ := bad.counts(); runs != 1 {
		t.Fatalf("dead worker dispatched after failed probes: runs = %d, want 1", runs)
	}
}

// TestBreakerAllDeadForceProbe pins the no-deadlock guarantee: with
// every worker's breaker open, a new batch force-probes the fleet
// instead of failing unattempted, so a recovered fleet serves it.
func TestBreakerAllDeadForceProbe(t *testing.T) {
	w1 := &scriptedWorker{name: "w1", healthy: true, failRun: true}
	w2 := &scriptedWorker{name: "w2", healthy: true, failRun: true}
	clock := &fakeClock{t: time.Unix(1000, 0)}

	s := NewSharded(w1, w2)
	s.now = clock.now
	s.SetReprobe(time.Hour)

	res, err := s.Run(nil, dummyJobs(4))
	if err == nil {
		t.Fatal("batch against an all-failing fleet succeeded")
	}
	for i, r := range res {
		if !r.Skipped || r.Err == nil {
			t.Fatalf("job %d not skipped with error after fleet failure: %+v", i, r)
		}
	}

	// Fleet recovers. The breakers are open for another hour, but the
	// force-probe path must readmit the workers immediately rather
	// than failing the batch with nobody dispatched.
	w1.set(true, false)
	w2.set(true, false)
	res, err = s.Run(nil, dummyJobs(4))
	if err != nil {
		t.Fatalf("recovered fleet batch: %v", err)
	}
	for i, r := range res {
		if r.Err != nil || r.Skipped {
			t.Fatalf("recovered fleet job %d not completed: %+v", i, r)
		}
	}

	// And when nothing recovers, the batch fails cleanly with the
	// circuit-open error.
	w1.set(false, true)
	w2.set(false, true)
	s2 := NewSharded(w1, w2)
	s2.now = clock.now
	if _, err := s2.Run(nil, dummyJobs(2)); err == nil {
		t.Fatal("first batch against failing fleet succeeded")
	}
	_, err = s2.Run(nil, dummyJobs(2))
	if err == nil {
		t.Fatal("circuit-open batch succeeded with dead fleet")
	}
	if !strings.Contains(err.Error(), "circuit open") {
		t.Fatalf("want circuit-open error, got: %v", err)
	}
}
