package remote

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"sync/atomic"
	"time"

	"power5prio/internal/cachestore"
	"power5prio/internal/engine"
	"power5prio/internal/workload"
)

// ServerConfig configures a worker-side server.
type ServerConfig struct {
	// Workers bounds the worker's simulation pool (<= 0 = all cores).
	Workers int
	// Store, when non-nil, is the worker's persistent cache tier. Point
	// a fleet's workers (and the client) at one shared directory and a
	// warm cache short-circuits remote simulation entirely: repeated
	// jobs are answered from disk without simulating.
	Store *cachestore.Store
	// Registry resolves job workload refs (nil = built-ins only; custom
	// kernels cannot travel over the wire, see the package comment).
	Registry *workload.Registry
	// MaxBatch rejects run requests with more jobs than this (<= 0 = no
	// limit). A fleet client already chunks to its in-flight limit; the
	// bound protects a worker from an oversized hand-written request.
	MaxBatch int
	// Logf, when non-nil, receives one line per request served.
	Logf func(format string, args ...any)
}

// Server executes job batches for remote clients by running them
// through a local engine, so the worker gets in-memory deduplication
// and the optional persistent cache tier exactly like a local run.
type Server struct {
	cfg  ServerConfig
	eng  *engine.Engine
	jobs atomic.Int64
}

// NewServer builds a worker-side server.
func NewServer(cfg ServerConfig) *Server {
	eng := engine.NewWith(cfg.Workers, cfg.Registry, engine.WithStore(cfg.Store))
	return &Server{cfg: cfg, eng: eng}
}

// Engine returns the server's engine (its stats show cache hits vs
// simulations performed on behalf of remote clients).
func (s *Server) Engine() *engine.Engine { return s.eng }

// Handler returns the HTTP handler serving the protocol endpoints.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc(RunPath, s.handleRun)
	mux.HandleFunc(HealthPath, s.handleHealth)
	return mux
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "health is GET", http.StatusMethodNotAllowed)
		return
	}
	h := Health{
		Protocol: ProtocolVersion,
		Capacity: s.eng.Workers(),
		Jobs:     s.jobs.Load(),
	}
	if s.cfg.Store != nil {
		h.CacheDir = s.cfg.Store.Dir()
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(h)
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "run is POST", http.StatusMethodNotAllowed)
		return
	}
	var req RunRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, fmt.Sprintf("bad run request: %v", err), http.StatusBadRequest)
		return
	}
	if err := checkProtocol(req.Protocol); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if s.cfg.MaxBatch > 0 && len(req.Jobs) > s.cfg.MaxBatch {
		http.Error(w, fmt.Sprintf("batch of %d jobs exceeds the worker's limit of %d", len(req.Jobs), s.cfg.MaxBatch), http.StatusRequestEntityTooLarge)
		return
	}

	// Verify every job's key before executing anything: the client's key
	// and a key recomputed from the decoded value must agree, or the two
	// binaries disagree about what the job means (schema drift) and the
	// result could alias a different measurement.
	resp := RunResponse{Protocol: ProtocolVersion, Results: make([]WireResult, len(req.Jobs))}
	var runnable []engine.Job
	var runnableIdx []int
	for i, wj := range req.Jobs {
		resp.Results[i].Key = wj.Key
		if key := engine.JobKey(wj.Job).String(); key != wj.Key {
			resp.Results[i].Err = fmt.Sprintf(
				"remote: job key mismatch: client sent %s, worker computes %s (incompatible binaries or corrupted request)",
				wj.Key, key)
			continue
		}
		runnable = append(runnable, wj.Job)
		runnableIdx = append(runnableIdx, i)
	}

	start := time.Now()
	results := s.eng.Run(r.Context(), runnable)
	cached := 0
	for k, res := range results {
		i := runnableIdx[k]
		if res.Err != nil {
			resp.Results[i].Err = res.Err.Error()
			continue
		}
		resp.Results[i].Pair = res.Pair
		resp.Results[i].Cached = res.CacheHit
		if res.CacheHit {
			cached++
		}
	}
	s.jobs.Add(int64(len(req.Jobs)))
	s.logf("run: %d jobs (%d cached) in %s", len(req.Jobs), cached, time.Since(start).Round(time.Millisecond))

	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(resp); err != nil {
		s.logf("run: response write failed: %v", err)
	}
}

// Serve runs a worker on the listener until ctx is cancelled, then
// shuts down gracefully (in-flight requests get a grace period to
// finish). It returns nil on a clean shutdown.
func Serve(ctx context.Context, lis net.Listener, cfg ServerConfig) error {
	return ServeHandler(ctx, lis, NewServer(cfg).Handler())
}

// ServeHandler is Serve with the handler supplied by the caller —
// usually a NewServer(cfg).Handler() wrapped in middleware (e.g.
// chaos.Middleware for fault-injection runs).
func ServeHandler(ctx context.Context, lis net.Listener, handler http.Handler) error {
	srv := &http.Server{Handler: handler}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(lis) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
		// The serve ctx is already dead here; the shutdown deadline
		// must outlive it or in-flight requests would be cut off.
		//p5lint:allow ctxflow graceful shutdown needs a root deadline
		shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutCtx); err != nil {
			srv.Close()
			return err
		}
		if err := <-errc; !errors.Is(err, http.ErrServerClosed) {
			return err
		}
		return nil
	}
}
