package remote

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"

	"power5prio/internal/engine"
	"power5prio/internal/fame"
)

// DefaultMaxInFlight is the per-worker in-flight job limit: the largest
// chunk of a batch a client keeps outstanding on one worker. Small
// enough that a slow worker strands few jobs when it fails (they are
// retried elsewhere), large enough to keep a worker's pool busy and
// amortize the HTTP round trip.
const DefaultMaxInFlight = 16

// HTTPBackend executes jobs on one remote worker over the JSON
// protocol. It implements engine.Backend; wrap several in a
// ShardedBackend to fan batches out across a fleet. The zero value is
// not usable; call NewHTTPBackend.
type HTTPBackend struct {
	base     string // http://host:port
	client   *http.Client
	inflight int

	mu sync.Mutex
	rs engine.RemoteStats
}

// HTTPOption configures an HTTPBackend.
type HTTPOption func(*HTTPBackend)

// WithHTTPClient replaces the HTTP client (default: http.Client with no
// overall timeout — batches legitimately take minutes; use the run
// context for cancellation).
func WithHTTPClient(c *http.Client) HTTPOption { return func(b *HTTPBackend) { b.client = c } }

// WithMaxInFlight bounds the jobs outstanding on the worker at once
// (<= 0 = DefaultMaxInFlight).
func WithMaxInFlight(n int) HTTPOption {
	return func(b *HTTPBackend) {
		if n > 0 {
			b.inflight = n
		}
	}
}

// NewHTTPBackend returns a backend for one worker address: a host:port
// as passed to p5worker -listen, or a full http:// URL.
func NewHTTPBackend(addr string, opts ...HTTPOption) *HTTPBackend {
	base := addr
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	b := &HTTPBackend{
		base:     strings.TrimRight(base, "/"),
		client:   &http.Client{},
		inflight: DefaultMaxInFlight,
	}
	for _, o := range opts {
		o(b)
	}
	return b
}

// Name identifies the worker in diagnostics.
func (b *HTTPBackend) Name() string { return "remote(" + b.base + ")" }

// Capacity is the per-worker in-flight limit — the chunk size a
// ShardedBackend dispatches to this worker.
func (b *HTTPBackend) Capacity() int { return b.inflight }

// RemoteStats returns the backend's lifetime remote counters.
func (b *HTTPBackend) RemoteStats() engine.RemoteStats {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.rs
}

// Healthy pings the worker's health endpoint and verifies the protocol
// version matches this binary's.
func (b *HTTPBackend) Healthy(ctx context.Context) error {
	if ctx == nil {
		ctx = context.Background()
	}
	ctx, cancel := context.WithTimeout(ctx, 5*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, b.base+HealthPath, nil)
	if err != nil {
		return fmt.Errorf("remote: %s: %w", b.base, err)
	}
	resp, err := b.client.Do(req)
	if err != nil {
		return fmt.Errorf("remote: worker %s unreachable: %w", b.base, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("remote: worker %s health: %s", b.base, resp.Status)
	}
	var h Health
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		return fmt.Errorf("remote: worker %s health: %w", b.base, err)
	}
	if err := checkProtocol(h.Protocol); err != nil {
		return fmt.Errorf("worker %s: %w", b.base, err)
	}
	return nil
}

// Run executes the batch on the worker in chunks of at most the
// in-flight limit. A worker-level failure (unreachable, bad protocol,
// non-2xx) stops the batch: jobs already executed keep their results,
// every remaining job returns a Skipped result carrying the failure,
// and the failure is also returned as Run's error so a sharding layer
// can retry those jobs elsewhere. Job-level errors are never retried
// here — they are deterministic properties of the job.
func (b *HTTPBackend) Run(ctx context.Context, jobs []Job) ([]Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	out := make([]Result, len(jobs))
	for start := 0; start < len(jobs); start += b.inflight {
		end := start + b.inflight
		if end > len(jobs) {
			end = len(jobs)
		}
		if err := ctx.Err(); err != nil {
			b.skipFrom(out, jobs, start, err)
			return out, nil // cancellation is not a worker failure
		}
		if err := b.runChunk(ctx, jobs, out, start, end); err != nil {
			if ctx.Err() != nil {
				b.skipFrom(out, jobs, start, ctx.Err())
				return out, nil
			}
			b.mu.Lock()
			b.rs.WorkerErrors++
			b.mu.Unlock()
			err = fmt.Errorf("remote: worker %s: %w", b.base, err)
			b.skipFrom(out, jobs, start, err)
			return out, err
		}
	}
	return out, nil
}

// skipFrom marks every job from index start on as never attempted.
func (b *HTTPBackend) skipFrom(out []Result, jobs []Job, start int, err error) {
	for k := start; k < len(jobs); k++ {
		out[k] = Result{Job: jobs[k], Err: err, Skipped: true}
	}
}

// runChunk posts jobs[start:end] and decodes their results into
// out[start:end]. Any returned error means none of the chunk's results
// were recorded (the response could not be trusted as a whole).
func (b *HTTPBackend) runChunk(ctx context.Context, jobs []Job, out []Result, start, end int) error {
	req := RunRequest{Protocol: ProtocolVersion, Jobs: make([]WireJob, end-start)}
	for k := start; k < end; k++ {
		req.Jobs[k-start] = WireJob{Key: engine.JobKey(jobs[k]).String(), Job: jobs[k]}
	}
	body, err := json.Marshal(req)
	if err != nil {
		return fmt.Errorf("encode run request: %w", err)
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, b.base+RunPath, bytes.NewReader(body))
	if err != nil {
		return err
	}
	hreq.Header.Set("Content-Type", "application/json")
	hresp, err := b.client.Do(hreq)
	if err != nil {
		return err
	}
	defer hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(hresp.Body, 512))
		return fmt.Errorf("%s: %s", hresp.Status, strings.TrimSpace(string(msg)))
	}
	var resp RunResponse
	if err := json.NewDecoder(hresp.Body).Decode(&resp); err != nil {
		return fmt.Errorf("decode run response: %w", err)
	}
	if err := checkProtocol(resp.Protocol); err != nil {
		return err
	}
	if len(resp.Results) != end-start {
		return fmt.Errorf("worker returned %d results for %d jobs", len(resp.Results), end-start)
	}
	for k := start; k < end; k++ {
		wr := resp.Results[k-start]
		if wr.Key != req.Jobs[k-start].Key {
			return fmt.Errorf("worker returned result for key %s at position of %s", wr.Key, req.Jobs[k-start].Key)
		}
		r := Result{Job: jobs[k], Pair: wr.Pair}
		if wr.Err != "" {
			r.Err = errors.New(wr.Err)
			r.Pair = fame.PairResult{}
		}
		out[k] = r
	}
	b.mu.Lock()
	b.rs.Jobs += end - start
	b.mu.Unlock()
	return nil
}

// Job and Result alias the engine types the wire code moves around.
type (
	Job    = engine.Job
	Result = engine.Result
)
