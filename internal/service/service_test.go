package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"power5prio/internal/engine"
	"power5prio/internal/fame"
	"power5prio/internal/remote"
)

// countingBackend synthesizes results instantly (daemon tests exercise
// scheduling, not simulation). When gate is set, the first Run blocks
// until it closes, holding a batch in flight.
type countingBackend struct {
	gate    chan struct{}
	started chan struct{}

	once sync.Once
	mu   sync.Mutex
	runs int
	jobs int
}

func (b *countingBackend) Name() string                  { return "counting" }
func (b *countingBackend) Capacity() int                 { return 4 }
func (b *countingBackend) Healthy(context.Context) error { return nil }

func (b *countingBackend) Run(ctx context.Context, jobs []engine.Job) ([]engine.Result, error) {
	b.mu.Lock()
	b.runs++
	first := b.runs == 1
	b.jobs += len(jobs)
	b.mu.Unlock()
	if first && b.gate != nil {
		b.once.Do(func() {
			if b.started != nil {
				close(b.started)
			}
		})
		select {
		case <-b.gate:
		case <-ctx.Done():
			out := make([]engine.Result, len(jobs))
			for i, j := range jobs {
				out[i] = engine.Result{Job: j, Err: ctx.Err(), Skipped: true}
			}
			return out, nil
		}
	}
	out := make([]engine.Result, len(jobs))
	for i, j := range jobs {
		out[i] = engine.Result{Job: j}
	}
	return out, nil
}

func (b *countingBackend) counts() (runs, jobs int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.runs, b.jobs
}

// svcJobs builds placeholder jobs distinct per (base, index); the
// counting backend never simulates them.
func svcJobs(n int, base float64) []engine.Job {
	jobs := make([]engine.Job, n)
	for i := range jobs {
		jobs[i].IterScale = base + float64(i)
	}
	return jobs
}

func waitFor(t *testing.T, cond func() bool, msg string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", msg)
}

// startDaemon runs the dispatch loops and an HTTP front end for the
// test's lifetime.
func startDaemon(t *testing.T, d *Daemon) *httptest.Server {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	go d.Run(ctx)
	srv := httptest.NewServer(d.Handler())
	t.Cleanup(func() {
		srv.Close()
		d.Close()
		cancel()
	})
	return srv
}

// TestAdmissionControl pins the queue bound: a submission that would
// overflow it is rejected wholesale with ErrQueueFull, one that fits
// exactly is admitted, and rejections are counted.
func TestAdmissionControl(t *testing.T) {
	d := New(engine.NewWith(0, nil, engine.WithBackend(&countingBackend{})), nil, Config{MaxQueue: 4})

	if _, err := d.enqueue("a", svcJobs(3, 0), engine.EstimateMode{}); err != nil {
		t.Fatalf("first submission rejected: %v", err)
	}
	if _, err := d.enqueue("b", svcJobs(2, 100), engine.EstimateMode{}); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("overflow submission error = %v, want ErrQueueFull", err)
	}
	if _, err := d.enqueue("b", svcJobs(1, 100), engine.EstimateMode{}); err != nil {
		t.Fatalf("fitting submission rejected: %v", err)
	}
	st := d.Stats()
	if st.QueueDepth != 4 || st.Rejected != 1 || st.Tenants != 2 {
		t.Fatalf("stats %+v, want depth 4, 1 rejected, 2 tenants", st)
	}
}

// TestWeightedRoundRobin pins fairness: with a bulk tenant and an
// interactive tenant queued, one batch interleaves them at the
// configured weight — the bulk sweep cannot starve the small query.
func TestWeightedRoundRobin(t *testing.T) {
	d := New(engine.NewWith(0, nil, engine.WithBackend(&countingBackend{})), nil,
		Config{Weight: 2, BatchMax: 6})

	if _, err := d.enqueue("bulk", svcJobs(10, 100), engine.EstimateMode{}); err != nil {
		t.Fatal(err)
	}
	if _, err := d.enqueue("tui", svcJobs(2, 200), engine.EstimateMode{}); err != nil {
		t.Fatal(err)
	}

	batch := d.nextBatch(context.Background())
	var got []float64
	for _, it := range batch {
		got = append(got, it.job.IterScale)
	}
	want := []float64{100, 101, 200, 201, 102, 103}
	if len(got) != len(want) {
		t.Fatalf("batch = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("batch = %v, want %v (weighted round-robin order)", got, want)
		}
	}

	// The interactive tenant drained; the rest of the queue is bulk's.
	batch = d.nextBatch(context.Background())
	if len(batch) != 6 {
		t.Fatalf("second batch has %d jobs, want 6", len(batch))
	}
	for _, it := range batch {
		if it.job.IterScale >= 200 {
			t.Fatalf("drained tenant reappeared in batch: %v", it.job.IterScale)
		}
	}
	if st := d.Stats(); st.QueueDepth != 0 || st.Tenants != 0 {
		t.Fatalf("stats after draining = %+v, want empty queue and no tenants", st)
	}
}

// TestServiceEndToEnd runs the full HTTP path: an engine behind a
// service client submits a batch (with duplicates) to a daemon, gets
// results identical to the backend's, and a second client's identical
// batch is served entirely from the daemon's cache.
func TestServiceEndToEnd(t *testing.T) {
	cb := &countingBackend{}
	d := New(engine.NewWith(0, nil, engine.WithBackend(cb)), nil, Config{})
	srv := startDaemon(t, d)

	jobs := append(svcJobs(5, 0), svcJobs(2, 0)...) // 7 jobs, 5 unique
	eng1 := engine.NewWith(0, nil, engine.WithBackend(NewClient(srv.URL, WithClientID("c1"))))
	res := eng1.Run(nil, jobs)
	for i, r := range res {
		if r.Err != nil || r.Skipped {
			t.Fatalf("job %d: %+v", i, r)
		}
	}
	if _, n := cb.counts(); n != 5 {
		t.Fatalf("backend simulated %d jobs, want 5 unique", n)
	}

	// A different client, same jobs: all served from the daemon's
	// cache — nothing new reaches the backend, and the results carry
	// the daemon-side cached flag.
	eng2 := engine.NewWith(0, nil, engine.WithBackend(NewClient(srv.URL, WithClientID("c2"))))
	res2 := eng2.Run(nil, jobs)
	for i, r := range res2 {
		if r.Err != nil || r.Skipped {
			t.Fatalf("warm job %d: %+v", i, r)
		}
		if r.Pair != res[i].Pair {
			t.Fatalf("warm job %d differs from cold run", i)
		}
	}
	if _, n := cb.counts(); n != 5 {
		t.Fatalf("warm pass reached the backend: %d jobs total, want 5", n)
	}
	st := d.Stats()
	if st.Simulated != 5 || st.Hits == 0 {
		t.Fatalf("daemon stats %+v, want 5 simulated with cache hits", st)
	}
}

// TestCrossClientDedup pins the service-level singleflight: two
// clients submitting the same uncached job concurrently trigger one
// backend execution, and the coalescing is visible in /v1/stats.
func TestCrossClientDedup(t *testing.T) {
	cb := &countingBackend{gate: make(chan struct{}), started: make(chan struct{})}
	d := New(engine.NewWith(0, nil, engine.WithBackend(cb)), nil, Config{Dispatchers: 2})
	srv := startDaemon(t, d)

	job := svcJobs(1, 42)

	var wg sync.WaitGroup
	var res1, res2 []engine.Result
	wg.Add(1)
	go func() {
		defer wg.Done()
		res1, _ = NewClient(srv.URL, WithClientID("c1")).Run(nil, job)
	}()
	<-cb.started // client 1's job is now in flight on the backend

	wg.Add(1)
	go func() {
		defer wg.Done()
		res2, _ = NewClient(srv.URL, WithClientID("c2")).Run(nil, job)
	}()
	waitFor(t, func() bool { return d.Stats().Coalesced == 1 }, "client 2 to coalesce onto the flight")
	close(cb.gate)
	wg.Wait()

	if res1[0].Err != nil || res2[0].Err != nil {
		t.Fatalf("results: %+v / %+v", res1[0], res2[0])
	}
	if runs, jobs := cb.counts(); runs != 1 || jobs != 1 {
		t.Fatalf("backend saw %d runs / %d jobs, want 1/1", runs, jobs)
	}

	// The coalescing is externally observable.
	resp, err := http.Get(srv.URL + StatsPath)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Coalesced != 1 || st.Simulated != 1 {
		t.Fatalf("/v1/stats = %+v, want 1 coalesced, 1 simulated", st)
	}
	// The per-client breakdown tells the two tenants apart: c1's job
	// simulated, c2 joined c1's in-flight simulation (a coalesced join,
	// not a warm-store hit — the answer did not exist when c2 asked).
	if len(st.Clients) != 2 {
		t.Fatalf("/v1/stats clients = %+v, want c1 and c2", st.Clients)
	}
	if c1 := st.Clients[0]; c1.Client != "c1" || c1.Jobs != 1 || c1.Simulated != 1 {
		t.Fatalf("c1 breakdown = %+v, want 1 simulated job", c1)
	}
	if c2 := st.Clients[1]; c2.Client != "c2" || c2.Jobs != 1 || c2.Coalesced != 1 || c2.StoreHits != 0 {
		t.Fatalf("c2 breakdown = %+v, want 1 coalesced join and no store hits", c2)
	}
}

// tierZero estimates every job with a fixed error bar and a
// recognizable IPC — the service tests exercise routing and counters,
// not the model (internal/analytic has its own tests).
type tierZero struct{ bar float64 }

func (e *tierZero) EstimateJob(engine.Job) (engine.Estimate, bool) {
	var pair fame.PairResult
	pair.Thread[0] = fame.ThreadResult{Active: true, IPC: 7}
	pair.TotalIPC = 7
	return engine.Estimate{Pair: pair, ErrorBar: e.bar}, true
}

// TestServiceEstimate pins the tier-0 path across the wire: a client
// opting in gets flagged predictions without touching the backend, the
// estimates poison no cache (an exact client re-simulates the same
// jobs), a too-tight tolerance escalates, an explicit opt-out
// overrides a daemon defaulting to estimation, and /v1/stats breaks
// the answer tiers down per client.
func TestServiceEstimate(t *testing.T) {
	cb := &countingBackend{}
	eng := engine.NewWith(0, nil, engine.WithBackend(cb))
	eng.SetEstimator(&tierZero{bar: 0.25})
	d := New(eng, nil, Config{})
	srv := startDaemon(t, d)

	jobs := svcJobs(3, 0)

	// c1 accepts any estimate: flagged results with the model's error
	// bar, and zero backend traffic.
	res, err := NewClient(srv.URL, WithClientID("c1"), WithEstimate(engine.EstimateAlways())).Run(nil, jobs)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range res {
		if !r.Estimated || r.ErrorBar != 0.25 || r.Pair.TotalIPC != 7 || r.CacheHit {
			t.Fatalf("job %d not served by tier 0: %+v", i, r)
		}
	}
	if _, n := cb.counts(); n != 0 {
		t.Fatalf("estimated batch reached the backend: %d jobs", n)
	}

	// c2 rides the daemon default (off): the same jobs simulate — the
	// estimates were cached nowhere.
	res2, err := NewClient(srv.URL, WithClientID("c2")).Run(nil, jobs)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range res2 {
		if r.Err != nil || r.Estimated || r.Pair.TotalIPC == 7 {
			t.Fatalf("exact job %d tainted by tier 0: %+v", i, r)
		}
	}
	if _, n := cb.counts(); n != 3 {
		t.Fatalf("exact batch simulated %d jobs, want 3", n)
	}

	// c3's tolerance is below the model's bar: every job escalates to
	// the exact path, which the now-warm cache serves.
	res3, err := NewClient(srv.URL, WithClientID("c3"), WithEstimate(engine.EstimateTolerance(0.1))).Run(nil, jobs)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range res3 {
		if r.Estimated || !r.CacheHit {
			t.Fatalf("escalated job %d = %+v, want a warm-store hit", i, r)
		}
	}

	// Flip the daemon default to estimation: a default-riding client
	// now gets estimates, but an explicit opt-out still gets exact
	// answers.
	eng.SetEstimateMode(engine.EstimateAlways())
	jobs2 := svcJobs(2, 50)
	res4, err := NewClient(srv.URL, WithClientID("c4")).Run(nil, jobs2)
	if err != nil {
		t.Fatal(err)
	}
	if !res4[0].Estimated || !res4[1].Estimated {
		t.Fatalf("default-riding client missed the daemon's Always default: %+v", res4)
	}
	res5, err := NewClient(srv.URL, WithClientID("c5"), WithEstimate(engine.EstimateOff())).Run(nil, jobs2)
	if err != nil {
		t.Fatal(err)
	}
	if res5[0].Estimated || res5[1].Estimated {
		t.Fatalf("explicit opt-out still got estimates: %+v", res5)
	}

	// The stats surface the whole story, per tier and per client.
	resp, err := http.Get(srv.URL + StatsPath)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	// Escalations: c3's 3 tolerance misses plus c5's 2 — an explicit
	// opt-out is τ=0, which by contract is "off plus an escalation
	// count".
	if st.EstimatedHits != 5 || st.EstimatedEscalated != 5 {
		t.Fatalf("/v1/stats = %+v, want 5 estimated hits (c1+c4), 5 escalated (c3+c5)", st)
	}
	want := []ClientStats{
		{Client: "c1", Jobs: 3, Estimated: 3},
		{Client: "c2", Jobs: 3, Simulated: 3},
		{Client: "c3", Jobs: 3, StoreHits: 3},
		{Client: "c4", Jobs: 2, Estimated: 2},
		{Client: "c5", Jobs: 2, Simulated: 2},
	}
	if len(st.Clients) != len(want) {
		t.Fatalf("/v1/stats clients = %+v, want %+v", st.Clients, want)
	}
	for i, w := range want {
		if st.Clients[i] != w {
			t.Errorf("client breakdown[%d] = %+v, want %+v", i, st.Clients[i], w)
		}
	}
}

// TestBackpressure pins the 429 contract: a submission that overflows
// the queue of an idle daemon gets 429 with a Retry-After hint, and a
// client engine rides the backpressure to completion once dispatch
// drains the queue.
func TestBackpressure(t *testing.T) {
	// No dispatch loops: the queue cannot drain, so overflow is
	// deterministic.
	d := New(engine.NewWith(0, nil, engine.WithBackend(&countingBackend{})), nil, Config{MaxQueue: 1})
	srv := httptest.NewServer(d.Handler())
	defer srv.Close()

	req := SubmitRequest{Protocol: ProtocolVersion, Client: "c", Jobs: make([]remote.WireJob, 2)}
	for i, j := range svcJobs(2, 0) {
		req.Jobs[i] = remote.WireJob{Key: engine.JobKey(j).String(), Job: j}
	}
	body, _ := json.Marshal(req)
	resp, err := http.Post(srv.URL+SubmitPath, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow submission status = %s, want 429", resp.Status)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 response has no Retry-After hint")
	}

	// With dispatch running, a chunked client submits more jobs than
	// the queue holds and succeeds through retries.
	d2 := New(engine.NewWith(0, nil, engine.WithBackend(&countingBackend{})), nil,
		Config{MaxQueue: 2, Dispatchers: 1})
	srv2 := startDaemon(t, d2)
	cl := NewClient(srv2.URL, WithClientID("c"), WithSubmitChunk(2))
	res, err := cl.Run(nil, svcJobs(6, 0))
	if err != nil {
		t.Fatalf("chunked run through backpressure: %v", err)
	}
	for i, r := range res {
		if r.Err != nil || r.Skipped {
			t.Fatalf("job %d: %+v", i, r)
		}
	}
}

// TestSubmitRejectsDrift pins both request-validation paths: a
// protocol mismatch fails the whole request, and a job whose key does
// not match its value resolves as an immediate per-job error without
// queueing.
func TestSubmitRejectsDrift(t *testing.T) {
	d := New(engine.NewWith(0, nil, engine.WithBackend(&countingBackend{})), nil, Config{})
	srv := startDaemon(t, d)

	// Protocol mismatch: rejected outright.
	body, _ := json.Marshal(SubmitRequest{Protocol: "p5queue/v0", Client: "c"})
	resp, err := http.Post(srv.URL+SubmitPath, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("protocol mismatch status = %s, want 400", resp.Status)
	}

	// Key drift: the drifted job errors immediately, the valid one
	// runs.
	jobs := svcJobs(2, 0)
	req := SubmitRequest{Protocol: ProtocolVersion, Client: "c", Jobs: []remote.WireJob{
		{Key: "sha256:0000", Job: jobs[0]},
		{Key: engine.JobKey(jobs[1]).String(), Job: jobs[1]},
	}}
	body, _ = json.Marshal(req)
	resp, err = http.Post(srv.URL+SubmitPath, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("submit status = %s, want 200", resp.Status)
	}
	dec := json.NewDecoder(resp.Body)
	byIndex := make(map[int]Event)
	for {
		var ev Event
		if err := dec.Decode(&ev); err != nil {
			t.Fatalf("stream decode: %v", err)
		}
		if ev.Type == EventDone {
			break
		}
		if ev.Type == EventResult {
			byIndex[ev.Index] = ev
		}
	}
	if ev := byIndex[0]; ev.Result == nil || !strings.Contains(ev.Result.Err, "key mismatch") {
		t.Fatalf("drifted job event = %+v, want a key-mismatch error", ev)
	}
	if ev := byIndex[1]; ev.Result == nil || ev.Result.Err != "" {
		t.Fatalf("valid job event = %+v, want a clean result", ev)
	}
}

// TestWorkerRegistration pins the fleet-growing path: a real worker
// registers over HTTP and joins the breaker-visible fleet; a
// re-registration is a heartbeat (no growth); an unreachable address
// is refused.
func TestWorkerRegistration(t *testing.T) {
	worker := httptest.NewServer(remote.NewServer(remote.ServerConfig{Workers: 1}).Handler())
	defer worker.Close()

	fleet := remote.NewDynamic()
	d := New(engine.NewWith(0, nil, engine.WithBackend(fleet)), fleet, Config{})
	srv := startDaemon(t, d)

	register := func(addr string) (RegisterResponse, int) {
		t.Helper()
		body, _ := json.Marshal(RegisterRequest{Protocol: ProtocolVersion, Addr: addr})
		resp, err := http.Post(srv.URL+RegisterPath, "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var rr RegisterResponse
		json.NewDecoder(resp.Body).Decode(&rr)
		return rr, resp.StatusCode
	}

	rr, code := register(worker.URL)
	if code != http.StatusOK || !rr.Added || rr.Workers != 1 {
		t.Fatalf("first registration = %+v (status %d), want added with fleet size 1", rr, code)
	}
	rr, code = register(worker.URL)
	if code != http.StatusOK || rr.Added || rr.Workers != 1 {
		t.Fatalf("re-registration = %+v (status %d), want heartbeat (not added, size 1)", rr, code)
	}
	if st := d.Stats(); len(st.Workers) != 1 || st.Workers[0].Excluded {
		t.Fatalf("stats workers = %+v, want one closed-breaker worker", st.Workers)
	}

	if _, code := register("127.0.0.1:1"); code != http.StatusBadGateway {
		t.Fatalf("unreachable worker registration status = %d, want 502", code)
	}
}
