package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"sort"
	"time"

	"power5prio/internal/engine"
	"power5prio/internal/remote"
)

// Handler returns the HTTP handler serving the p5queue endpoints.
func (d *Daemon) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc(SubmitPath, d.handleSubmit)
	mux.HandleFunc(StatsPath, d.handleStats)
	mux.HandleFunc(RegisterPath, d.handleRegister)
	mux.HandleFunc(HealthPath, d.handleHealth)
	return mux
}

func (d *Daemon) handleHealth(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "health is GET", http.StatusMethodNotAllowed)
		return
	}
	d.mu.Lock()
	depth := d.depth
	d.mu.Unlock()
	h := Health{Protocol: ProtocolVersion, QueueDepth: depth}
	if d.fleet != nil {
		h.Workers = len(d.fleet.WorkerStates())
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(h)
}

func (d *Daemon) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "stats is GET", http.StatusMethodNotAllowed)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(d.Stats())
}

func (d *Daemon) handleRegister(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "register is POST", http.StatusMethodNotAllowed)
		return
	}
	var req RegisterRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, fmt.Sprintf("bad register request: %v", err), http.StatusBadRequest)
		return
	}
	if err := checkProtocol(req.Protocol); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if req.Addr == "" {
		http.Error(w, "register: empty worker addr", http.StatusBadRequest)
		return
	}
	added, err := d.RegisterWorker(r.Context(), req.Addr)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadGateway)
		return
	}
	resp := RegisterResponse{Protocol: ProtocolVersion, Added: added}
	if d.fleet != nil {
		resp.Workers = len(d.fleet.WorkerStates())
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(resp)
}

// handleSubmit admits a job batch and streams its results as NDJSON
// events. Jobs whose key does not match a recomputation from the
// decoded value (schema drift between binaries) fail immediately and
// are never queued; a submission that would overflow the queue is
// rejected wholesale with 429 and a Retry-After hint.
func (d *Daemon) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "submit is POST", http.StatusMethodNotAllowed)
		return
	}
	var req SubmitRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, fmt.Sprintf("bad submit request: %v", err), http.StatusBadRequest)
		return
	}
	if err := checkProtocol(req.Protocol); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}

	// Verify every key before anything queues; drifted jobs resolve
	// immediately as per-job errors, exactly like the worker protocol.
	var rejected []Event
	var runnable []engine.Job
	var runnableIdx []int
	var runnableKey []string
	for i, wj := range req.Jobs {
		if key := engine.JobKey(wj.Job).String(); key != wj.Key {
			res := wireResult(wj.Key, engine.Result{Err: fmt.Errorf(
				"service: job key mismatch: client sent %s, daemon computes %s (incompatible binaries or corrupted request)",
				wj.Key, key)})
			rejected = append(rejected, Event{Type: EventResult, Index: i, Result: &res})
			continue
		}
		runnable = append(runnable, wj.Job)
		runnableIdx = append(runnableIdx, i)
		runnableKey = append(runnableKey, wj.Key)
	}

	// Resolve the submission's tier-0 policy: an explicit spec wins
	// (the empty spec maps to zero tolerance — exact answers only),
	// absent means the daemon's default.
	mode := d.eng.EstimateMode()
	if req.Estimate != nil {
		if req.Estimate.Always {
			mode = engine.EstimateAlways()
		} else {
			mode = engine.EstimateTolerance(req.Estimate.Tolerance)
		}
	}

	sub, err := d.enqueue(req.Client, runnable, mode)
	if err != nil {
		switch {
		case errors.Is(err, ErrQueueFull):
			w.Header().Set("Retry-After", "1")
			http.Error(w, err.Error(), http.StatusTooManyRequests)
		case errors.Is(err, ErrDraining):
			// Transient: a successor daemon will take the work. The
			// Retry-After marks the 503 as back-off-and-retry for the
			// client, distinguishing it from the terminal ErrClosed.
			w.Header().Set("Retry-After", "1")
			http.Error(w, err.Error(), http.StatusServiceUnavailable)
		default:
			http.Error(w, err.Error(), http.StatusServiceUnavailable)
		}
		return
	}

	w.Header().Set("Content-Type", "application/x-ndjson")
	enc := json.NewEncoder(w)
	flusher, _ := w.(http.Flusher)
	emit := func(ev Event) bool {
		if err := enc.Encode(ev); err != nil {
			return false
		}
		if flusher != nil {
			flusher.Flush()
		}
		return true
	}

	if !emit(Event{Type: EventHeader, Protocol: ProtocolVersion, Accepted: len(runnable)}) {
		return
	}
	for _, ev := range rejected {
		if !emit(ev) {
			return
		}
	}
	var unfinished []string
	for served := 0; served < len(runnable); served++ {
		select {
		case ir := <-sub.ch:
			if ir.drained {
				// Flushed by shutdown: never attempted, never failed.
				// Collected into the terminal drained event instead of
				// being resolved as a skipped result.
				unfinished = append(unfinished, runnableKey[ir.idx])
				continue
			}
			res := wireResult(runnableKey[ir.idx], ir.res)
			if !emit(Event{Type: EventResult, Index: runnableIdx[ir.idx], Result: &res, Skipped: ir.res.Skipped}) {
				return
			}
		case <-r.Context().Done():
			// Client gone. The queued jobs still dispatch (the
			// submission channel is buffered) and warm the cache.
			return
		}
	}
	if len(unfinished) > 0 {
		sort.Strings(unfinished)
		emit(Event{Type: EventDrained, Unfinished: unfinished})
		return
	}
	emit(Event{Type: EventDone})
}

// wireResult renders an engine result for the stream.
func wireResult(key string, r engine.Result) remote.WireResult {
	out := remote.WireResult{
		Key: key, Pair: r.Pair, Cached: r.CacheHit,
		Estimated: r.Estimated, ErrorBar: r.ErrorBar,
	}
	if r.Err != nil {
		out.Err = r.Err.Error()
	}
	return out
}

// drainTimeout bounds the graceful-shutdown window: how long open
// streams get to finish their in-flight dispatches and emit their
// terminal drained/done events before the listener is torn down.
const drainTimeout = 30 * time.Second

// Serve runs the daemon's HTTP front end on the listener until ctx is
// cancelled, then shuts down gracefully: Drain first — admission stops
// with 503 + Retry-After, queued work flushes as drained markers, open
// streams end with their terminal event — then the HTTP server waits
// (up to drainTimeout) for those streams, and only then is the daemon
// Closed. The daemon's dispatch loops (Run) are the caller's to start,
// on a context that outlives ctx so in-flight dispatches finish.
func Serve(ctx context.Context, lis net.Listener, d *Daemon) error {
	srv := &http.Server{Handler: d.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(lis) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
		d.Drain()
		// The serve ctx is already dead here; the shutdown deadline
		// must outlive it or in-flight streams would be cut off.
		//p5lint:allow ctxflow graceful shutdown needs a root deadline
		shutCtx, cancel := context.WithTimeout(context.Background(), drainTimeout)
		defer cancel()
		err := srv.Shutdown(shutCtx)
		d.Close()
		if err != nil {
			srv.Close()
			return err
		}
		if err := <-errc; !errors.Is(err, http.ErrServerClosed) {
			return err
		}
		return nil
	}
}
