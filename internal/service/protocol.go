// Package service is the long-running measurement daemon behind
// cmd/p5d: many concurrent clients stream job submissions to one
// shared engine, instead of each process owning a private batch.
//
// The daemon exists for the traffic shape a batch RPC cannot serve:
// many tenants asking overlapping questions at once. It adds, in front
// of the engine/cachestore/fleet stack it reuses unchanged:
//
//   - Admission control: the waiting queue is bounded; a submission
//     that would overflow it is rejected with an explicit 429-style
//     error (and Retry-After over HTTP) rather than buffered without
//     limit.
//   - Per-tenant fairness: queued jobs are drained by weighted
//     round-robin across client IDs, so one tenant's bulk sweep cannot
//     starve another's interactive query — the interactive job enters
//     the next dispatch batch.
//   - Cross-client deduplication: dispatch batches run through one
//     engine, whose cache tiers and cross-batch singleflight
//     (engine/flight.go) collapse identical jobs from different
//     clients into one simulation.
//   - Worker registration: workers announce themselves at runtime and
//     join the ShardedBackend fleet (heartbeats re-register, closing
//     the circuit breaker), so the fleet scales without restarting the
//     daemon.
//
// The wire protocol, p5queue/v3, layers on p5remote/v1: jobs travel as
// remote.WireJob (Job value + JobKey, recomputed and verified on both
// sides, so schema drift between binaries fails loudly), and results
// as remote.WireResult. A submission's response is a stream of
// newline-delimited JSON events — header, one result per job as it
// lands, then a trailer — so a client sees cache hits immediately
// while novel jobs simulate. A daemon draining for shutdown ends each
// open stream with a terminal "drained" event listing the unfinished
// job keys; the client resubmits exactly those (service.Client does so
// transparently, riding the warm cache).
package service

import (
	"fmt"

	"power5prio/internal/remote"
)

// ProtocolVersion names the queue protocol. Client and daemon must
// match exactly; either side rejects a mismatch.
//
// v2 added the terminal "drained" stream event (a daemon draining for
// shutdown ends each open stream with the unfinished job keys instead
// of resolving them as skipped) — a new event type is an incompatible
// stream change, hence the bump.
//
// v3 added tier-0 analytical estimation to the exchange: SubmitRequest
// gained the optional Estimate spec, results may come back flagged
// Estimated with an ErrorBar, and Stats grew the estimated counters
// plus the per-client tier breakdown. A v2 client cannot see the
// Estimated flag, so a daemon serving it analytical answers would
// silently degrade that client's data — hence the bump rather than an
// additive field.
const ProtocolVersion = "p5queue/v3"

// Endpoint paths served by the daemon.
const (
	// SubmitPath enqueues a job batch and streams its results (POST,
	// SubmitRequest -> NDJSON Event stream).
	SubmitPath = "/v1/submit"
	// StatsPath reports queue, cache-tier and per-worker breaker state
	// (GET -> Stats).
	StatsPath = "/v1/stats"
	// RegisterPath adds a worker to the fleet (POST, RegisterRequest ->
	// RegisterResponse). Re-registering is the worker heartbeat.
	RegisterPath = "/v1/register"
	// HealthPath reports liveness (GET -> Health).
	HealthPath = "/v1/health"
)

// SubmitRequest is the body of a SubmitPath POST. Client identifies
// the tenant for fair scheduling; submissions with the same Client
// share one round-robin turn. Estimate, when present, overrides the
// daemon's default tier-0 policy for this submission's jobs; absent
// means "whatever the daemon was started with".
type SubmitRequest struct {
	Protocol string           `json:"protocol"`
	Client   string           `json:"client"`
	Estimate *EstimateSpec    `json:"estimate,omitempty"`
	Jobs     []remote.WireJob `json:"jobs"`
}

// EstimateSpec is a submission's tier-0 policy. Always serves every
// estimate the daemon's model offers regardless of error bar;
// otherwise Tolerance is the largest model error bar (absolute IPC)
// the client accepts — zero tolerance accepts nothing, so the empty
// spec is the explicit "exact answers only" request, overriding a
// daemon that defaults to estimation.
type EstimateSpec struct {
	Always    bool    `json:"always,omitempty"`
	Tolerance float64 `json:"tolerance,omitempty"`
}

// Event types on a submit response stream.
const (
	// EventHeader opens the stream: protocol tag and accepted count.
	EventHeader = "header"
	// EventResult carries one job's final result.
	EventResult = "result"
	// EventDone closes the stream after every accepted job resolved.
	EventDone = "done"
	// EventDrained closes the stream instead of EventDone when the
	// daemon drained for shutdown before every job could run: its
	// Unfinished field lists the keys that never resolved. Those jobs
	// were not attempted and were not failed — the client resubmits
	// exactly that set (to this daemon's successor, typically) and the
	// warm cache plus singleflight make the resume cheap.
	EventDrained = "drained"
)

// Event is one newline-delimited JSON line of a submit response.
type Event struct {
	Type string `json:"type"`
	// Header fields.
	Protocol string `json:"protocol,omitempty"`
	// Accepted is the number of jobs admitted to the queue (the rest
	// produced immediate EventResult errors, e.g. key mismatches).
	Accepted int `json:"accepted,omitempty"`
	// Result fields: Index is the job's position in the submission,
	// Result its outcome; Skipped marks a job that never ran (its
	// Result.Err carries the cause).
	Index   int                `json:"index,omitempty"`
	Result  *remote.WireResult `json:"result,omitempty"`
	Skipped bool               `json:"skipped,omitempty"`
	// Done fields: Err is a submission-level failure, if any.
	Err string `json:"err,omitempty"`
	// Drained fields: the job keys left unresolved when the daemon
	// drained (sorted, so the stream tail is deterministic).
	Unfinished []string `json:"unfinished,omitempty"`
}

// Stats is the StatsPath payload: a point-in-time snapshot of the
// daemon. Field names are stable lowercase JSON keys — CI and
// dashboards grep them.
type Stats struct {
	Protocol string `json:"protocol"`
	// QueueDepth is the number of jobs admitted but not yet dispatched.
	QueueDepth int `json:"queue_depth"`
	// Tenants is the number of client IDs with queued jobs.
	Tenants int `json:"tenants"`
	// Rejected counts submissions turned away by admission control.
	Rejected int64 `json:"rejected"`
	// Drained counts jobs flushed as drained markers by shutdown.
	Drained int64 `json:"drained"`
	// Requeued counts dispatch attempts re-admitted after coming back
	// skipped (backend crash, per-job deadline), capped per job.
	Requeued int64 `json:"requeued"`
	// Engine lifetime counters (see engine.Stats for semantics).
	Submitted int `json:"submitted"`
	Simulated int `json:"simulated"`
	Hits      int `json:"hits"`
	Coalesced int `json:"coalesced"`
	DiskHits  int `json:"disk_hits"`
	// EstimatedHits counts jobs answered by the tier-0 analytical
	// estimator; EstimatedEscalated counts jobs that opted in but fell
	// through to the exact path (model declined, or the error bar
	// exceeded the tolerance).
	EstimatedHits      int `json:"estimated_hits"`
	EstimatedEscalated int `json:"estimated_escalated"`
	// Clients is the per-tenant delivery breakdown, sorted by client ID
	// (absent before the first delivery).
	Clients []ClientStats `json:"clients,omitempty"`
	// Workers is the fleet's per-worker circuit-breaker state (absent
	// when the daemon executes on a local pool).
	Workers []remote.WorkerStatus `json:"workers,omitempty"`
}

// ClientStats is one tenant's delivery breakdown: every result the
// daemon delivered to that client, classified by the tier that
// produced it. Unlike the engine counters above — which aggregate the
// whole daemon and count coalesced joiners as plain hits — this
// breakdown distinguishes a warm-store hit (the answer was already
// cached when the job dispatched) from a coalesced join (the client
// piggybacked on another client's in-flight simulation), and counts
// tier-0 estimates separately from both. Jobs is the sum of the five
// result classes; Drained counts jobs flushed unresolved by shutdown
// (not included in Jobs — they were never answered).
type ClientStats struct {
	Client    string `json:"client"`
	Jobs      int64  `json:"jobs"`
	Simulated int64  `json:"simulated"`
	StoreHits int64  `json:"store_hits"`
	Coalesced int64  `json:"coalesced"`
	Estimated int64  `json:"estimated"`
	Errors    int64  `json:"errors"`
	Drained   int64  `json:"drained"`
}

// Health is the HealthPath payload.
type Health struct {
	Protocol string `json:"protocol"`
	// QueueDepth mirrors Stats.QueueDepth, for cheap load probes.
	QueueDepth int `json:"queue_depth"`
	// Workers is the current fleet size (0 on a local-pool daemon).
	Workers int `json:"workers"`
}

// RegisterRequest is the body of a RegisterPath POST: the worker's
// reachable address (host:port or http:// URL).
type RegisterRequest struct {
	Protocol string `json:"protocol"`
	Addr     string `json:"addr"`
}

// RegisterResponse reports the registration outcome. Added is false
// when the worker was already in the fleet (a heartbeat — its breaker
// is closed instead).
type RegisterResponse struct {
	Protocol string `json:"protocol"`
	Added    bool   `json:"added"`
	// Workers is the fleet size after the registration.
	Workers int `json:"workers"`
}

// checkProtocol validates a peer's protocol tag.
func checkProtocol(got string) error {
	if got != ProtocolVersion {
		return fmt.Errorf("service: protocol mismatch: peer speaks %q, this binary %q", got, ProtocolVersion)
	}
	return nil
}
