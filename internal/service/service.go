package service

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"power5prio/internal/engine"
	"power5prio/internal/remote"
)

// ErrQueueFull is the admission-control rejection: the submission
// would push the waiting queue past its bound. Clients should back off
// and retry (the HTTP layer maps it to 429 with Retry-After).
var ErrQueueFull = errors.New("service: queue full")

// ErrClosed rejects submissions to a daemon that has shut down.
var ErrClosed = errors.New("service: daemon closed")

// Config tunes the daemon. The zero value selects the defaults.
type Config struct {
	// MaxQueue bounds the jobs admitted but not yet dispatched
	// (default 1024). Submissions that would overflow it are rejected
	// with ErrQueueFull — explicit backpressure instead of unbounded
	// buffering.
	MaxQueue int
	// Weight is the number of jobs one tenant contributes per
	// round-robin turn (default 8): small enough that an interactive
	// tenant reaches the front within one batch, large enough to keep
	// dispatch batches dense.
	Weight int
	// BatchMax caps one dispatch batch (default 32), so a drained
	// queue turns into engine batches of bounded latency.
	BatchMax int
	// Dispatchers is the number of concurrent dispatch loops (default
	// 2): while one batch simulates, another forms — an interactive
	// job never waits for a bulk batch to finish.
	Dispatchers int
	// Logf, when non-nil, receives one line per notable daemon event.
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.MaxQueue <= 0 {
		c.MaxQueue = 1024
	}
	if c.Weight <= 0 {
		c.Weight = 8
	}
	if c.BatchMax <= 0 {
		c.BatchMax = 32
	}
	if c.Dispatchers <= 0 {
		c.Dispatchers = 2
	}
	return c
}

// item is one queued job plus its delivery route.
type item struct {
	job engine.Job
	idx int // position within the submission
	sub *submission
}

// indexed is one delivered result.
type indexed struct {
	idx int
	res engine.Result
}

// submission is one client batch in flight through the queue. Its
// channel is buffered to the job count, so dispatchers never block on
// a slow or departed reader — a disconnected client's jobs still run
// and warm the cache.
type submission struct {
	ch chan indexed
}

func (s *submission) deliver(idx int, r engine.Result) {
	s.ch <- indexed{idx: idx, res: r}
}

// tenantQueue is one client's FIFO of queued items.
type tenantQueue struct {
	items []item
}

// Daemon schedules submissions from many clients onto one engine. The
// engine brings the cache tiers and cross-batch singleflight; the
// daemon adds admission control and weighted round-robin fairness
// across tenants, and (when executing on a ShardedBackend fleet)
// runtime worker registration.
type Daemon struct {
	cfg   Config
	eng   *engine.Engine
	fleet *remote.ShardedBackend // nil when the engine runs a local pool

	mu       sync.Mutex
	cond     *sync.Cond
	queues   map[string]*tenantQueue
	order    []string // round-robin ring of tenants with queued work
	rrPos    int
	depth    int // total queued jobs
	rejected int64
	closed   bool
}

// New builds a daemon over an engine. fleet may be nil (local
// execution); when set it must be the engine's backend — it is what
// RegisterWorker grows and Stats reports breaker state from.
func New(eng *engine.Engine, fleet *remote.ShardedBackend, cfg Config) *Daemon {
	d := &Daemon{
		cfg:    cfg.withDefaults(),
		eng:    eng,
		fleet:  fleet,
		queues: make(map[string]*tenantQueue),
	}
	d.cond = sync.NewCond(&d.mu)
	return d
}

// Engine returns the daemon's engine.
func (d *Daemon) Engine() *engine.Engine { return d.eng }

func (d *Daemon) logf(format string, args ...any) {
	if d.cfg.Logf != nil {
		d.cfg.Logf(format, args...)
	}
}

// enqueue admits a submission's jobs to the client's tenant queue, or
// rejects the whole submission (admission is all-or-nothing so a
// client never holds a half-queued batch across a 429).
func (d *Daemon) enqueue(client string, jobs []engine.Job) (*submission, error) {
	if client == "" {
		client = "anonymous"
	}
	sub := &submission{ch: make(chan indexed, len(jobs))}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return nil, ErrClosed
	}
	if d.depth+len(jobs) > d.cfg.MaxQueue {
		d.rejected++
		return nil, fmt.Errorf("%w: %d queued + %d submitted exceeds the %d-job bound",
			ErrQueueFull, d.depth, len(jobs), d.cfg.MaxQueue)
	}
	q := d.queues[client]
	if q == nil {
		q = &tenantQueue{}
		d.queues[client] = q
		d.order = append(d.order, client)
	}
	for i, j := range jobs {
		q.items = append(q.items, item{job: j, idx: i, sub: sub})
	}
	d.depth += len(jobs)
	d.cond.Broadcast()
	return sub, nil
}

// nextBatch blocks until work is queued, then drains up to BatchMax
// jobs by weighted round-robin: each tenant in the ring contributes at
// most Weight jobs per turn, so a bulk sweep and an interactive query
// share every batch. Returns nil when the daemon is closed (or ctx is
// cancelled) with nothing queued.
func (d *Daemon) nextBatch(ctx context.Context) []item {
	d.mu.Lock()
	defer d.mu.Unlock()
	for d.depth == 0 && !d.closed && ctx.Err() == nil {
		d.cond.Wait()
	}
	if d.depth == 0 {
		return nil
	}
	var batch []item
	for len(batch) < d.cfg.BatchMax && d.depth > 0 {
		if d.rrPos >= len(d.order) {
			d.rrPos = 0
		}
		cl := d.order[d.rrPos]
		q := d.queues[cl]
		n := min(d.cfg.Weight, len(q.items), d.cfg.BatchMax-len(batch))
		batch = append(batch, q.items[:n]...)
		q.items = q.items[n:]
		d.depth -= n
		if len(q.items) == 0 {
			// Drained tenants leave the ring so the tenant table stays
			// proportional to *live* clients, not lifetime clients.
			delete(d.queues, cl)
			d.order = append(d.order[:d.rrPos], d.order[d.rrPos+1:]...)
		} else {
			d.rrPos++
		}
	}
	return batch
}

// Run executes the dispatch loops until ctx is cancelled and the queue
// has drained (jobs queued at cancellation resolve as Skipped through
// the engine rather than vanishing). It blocks; a daemon serves
// batches only while Run is running.
func (d *Daemon) Run(ctx context.Context) {
	if ctx == nil {
		ctx = context.Background()
	}
	stop := make(chan struct{})
	defer close(stop)
	go func() { // wake nextBatch waiters when the daemon context dies
		select {
		case <-ctx.Done():
			d.cond.Broadcast()
		case <-stop:
		}
	}()

	var wg sync.WaitGroup
	for i := 0; i < d.cfg.Dispatchers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				batch := d.nextBatch(ctx)
				if batch == nil {
					return
				}
				jobs := make([]engine.Job, len(batch))
				for i, it := range batch {
					jobs[i] = it.job
				}
				// The dispatch runs under the daemon context, not any
				// client's: a disconnected client must not cancel work
				// other clients may be coalesced onto, and completed
				// results warm the shared cache either way.
				d.eng.RunFunc(ctx, jobs, func(i int, r engine.Result) {
					batch[i].sub.deliver(batch[i].idx, r)
				})
			}
		}()
	}
	wg.Wait()
}

// Close rejects future submissions and wakes idle dispatchers. Jobs
// already queued still dispatch (Run drains them).
func (d *Daemon) Close() {
	d.mu.Lock()
	d.closed = true
	d.mu.Unlock()
	d.cond.Broadcast()
}

// RegisterWorker health-checks the worker at addr and adds it to the
// fleet; re-registering an existing worker closes its breaker (this is
// the heartbeat path). It reports whether the fleet grew.
func (d *Daemon) RegisterWorker(ctx context.Context, addr string) (added bool, err error) {
	if d.fleet == nil {
		return false, errors.New("service: daemon executes locally; worker registration needs a fleet backend")
	}
	w := remote.NewHTTPBackend(addr)
	if err := w.Healthy(ctx); err != nil {
		return false, fmt.Errorf("service: refusing to register %s: %w", addr, err)
	}
	added = d.fleet.AddWorker(w)
	if added {
		d.logf("service: worker %s joined the fleet", addr)
	}
	return added, nil
}

// Stats snapshots the daemon: queue state, the engine's lifetime
// cache-tier counters, and per-worker breaker state when running on a
// fleet.
func (d *Daemon) Stats() Stats {
	d.mu.Lock()
	st := Stats{
		Protocol:   ProtocolVersion,
		QueueDepth: d.depth,
		Tenants:    len(d.order),
		Rejected:   d.rejected,
	}
	d.mu.Unlock()
	es := d.eng.Stats()
	st.Submitted = es.Submitted
	st.Simulated = es.Simulated
	st.Hits = es.Hits
	st.Coalesced = es.Coalesced
	st.DiskHits = es.DiskHits
	if d.fleet != nil {
		st.Workers = d.fleet.WorkerStates()
	}
	return st
}
