package service

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"power5prio/internal/engine"
	"power5prio/internal/remote"
)

// ErrQueueFull is the admission-control rejection: the submission
// would push the waiting queue past its bound. Clients should back off
// and retry (the HTTP layer maps it to 429 with Retry-After).
var ErrQueueFull = errors.New("service: queue full")

// ErrClosed rejects submissions to a daemon that has shut down.
var ErrClosed = errors.New("service: daemon closed")

// ErrDraining rejects submissions to a daemon draining for shutdown.
// The HTTP layer maps it to 503 with Retry-After: unlike ErrClosed it
// is transient — a successor daemon (or a restart) will accept the
// work, so clients back off and retry instead of failing.
var ErrDraining = errors.New("service: daemon draining for shutdown")

// maxDispatchAttempts bounds how many times one job may be requeued
// after its dispatch came back skipped (backend crash, injected skip,
// per-job deadline). The cap turns a permanently failing fleet into a
// per-job error after a bounded number of rounds instead of a requeue
// livelock.
const maxDispatchAttempts = 5

// requeueBackoff is the pause a dispatcher takes before requeueing a
// batch that came back entirely skipped — a backend-level failure such
// as an empty or fully excluded fleet. Without it a dead fleet would
// burn through every job's attempt budget in microseconds; with it the
// budget spans long enough for workers to re-register (heartbeats are
// seconds apart).
const requeueBackoff = 250 * time.Millisecond

// Config tunes the daemon. The zero value selects the defaults.
type Config struct {
	// MaxQueue bounds the jobs admitted but not yet dispatched
	// (default 1024). Submissions that would overflow it are rejected
	// with ErrQueueFull — explicit backpressure instead of unbounded
	// buffering.
	MaxQueue int
	// Weight is the number of jobs one tenant contributes per
	// round-robin turn (default 8): small enough that an interactive
	// tenant reaches the front within one batch, large enough to keep
	// dispatch batches dense.
	Weight int
	// BatchMax caps one dispatch batch (default 32), so a drained
	// queue turns into engine batches of bounded latency.
	BatchMax int
	// Dispatchers is the number of concurrent dispatch loops (default
	// 2): while one batch simulates, another forms — an interactive
	// job never waits for a bulk batch to finish.
	Dispatchers int
	// JobTimeout bounds one job's execution in the dispatch path: a
	// batch of n jobs runs under a deadline of n×JobTimeout, so one
	// wedged job (or a hung worker) cannot pin a dispatcher forever —
	// the batch's unfinished jobs come back skipped and re-enter the
	// queue (up to the per-job attempt cap). 0 disables the deadline.
	JobTimeout time.Duration
	// Logf, when non-nil, receives one line per notable daemon event.
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.MaxQueue <= 0 {
		c.MaxQueue = 1024
	}
	if c.Weight <= 0 {
		c.Weight = 8
	}
	if c.BatchMax <= 0 {
		c.BatchMax = 32
	}
	if c.Dispatchers <= 0 {
		c.Dispatchers = 2
	}
	return c
}

// item is one queued job plus its delivery route.
type item struct {
	job      engine.Job
	mode     engine.EstimateMode // tier-0 policy resolved at admission
	idx      int                 // position within the submission
	client   string              // tenant queue the item (re-)enters
	attempts int                 // dispatch attempts so far
	sub      *submission
}

// indexed is one delivered outcome: a result, or a drained marker for
// a job flushed by shutdown (never attempted, never failed).
type indexed struct {
	idx     int
	res     engine.Result
	drained bool
}

// submission is one client batch in flight through the queue. Its
// channel is buffered to the job count, so dispatchers never block on
// a slow or departed reader — a disconnected client's jobs still run
// and warm the cache. Each index receives exactly one terminal event
// (a result or a drained marker); requeued attempts deliver nothing.
type submission struct {
	ch chan indexed
}

func (s *submission) deliver(idx int, r engine.Result) {
	s.ch <- indexed{idx: idx, res: r}
}

func (s *submission) deliverDrained(idx int) {
	s.ch <- indexed{idx: idx, drained: true}
}

// tenantQueue is one client's FIFO of queued items.
type tenantQueue struct {
	items []item
}

// Daemon schedules submissions from many clients onto one engine. The
// engine brings the cache tiers and cross-batch singleflight; the
// daemon adds admission control and weighted round-robin fairness
// across tenants, and (when executing on a ShardedBackend fleet)
// runtime worker registration.
type Daemon struct {
	cfg   Config
	eng   *engine.Engine
	fleet *remote.ShardedBackend // nil when the engine runs a local pool

	mu       sync.Mutex
	cond     *sync.Cond
	queues   map[string]*tenantQueue
	order    []string // round-robin ring of tenants with queued work
	rrPos    int
	depth    int // total queued jobs
	rejected int64
	drained  int64
	requeued int64
	clients  map[string]*ClientStats // per-tenant delivery breakdown
	draining bool
	closed   bool
}

// New builds a daemon over an engine. fleet may be nil (local
// execution); when set it must be the engine's backend — it is what
// RegisterWorker grows and Stats reports breaker state from.
func New(eng *engine.Engine, fleet *remote.ShardedBackend, cfg Config) *Daemon {
	d := &Daemon{
		cfg:     cfg.withDefaults(),
		eng:     eng,
		fleet:   fleet,
		queues:  make(map[string]*tenantQueue),
		clients: make(map[string]*ClientStats),
	}
	d.cond = sync.NewCond(&d.mu)
	return d
}

// Engine returns the daemon's engine.
func (d *Daemon) Engine() *engine.Engine { return d.eng }

func (d *Daemon) logf(format string, args ...any) {
	if d.cfg.Logf != nil {
		d.cfg.Logf(format, args...)
	}
}

// enqueue admits a submission's jobs to the client's tenant queue, or
// rejects the whole submission (admission is all-or-nothing so a
// client never holds a half-queued batch across a 429). mode is the
// tier-0 policy every job of the submission dispatches under.
func (d *Daemon) enqueue(client string, jobs []engine.Job, mode engine.EstimateMode) (*submission, error) {
	if client == "" {
		client = "anonymous"
	}
	sub := &submission{ch: make(chan indexed, len(jobs))}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return nil, ErrClosed
	}
	if d.draining {
		return nil, ErrDraining
	}
	if d.depth+len(jobs) > d.cfg.MaxQueue {
		d.rejected++
		return nil, fmt.Errorf("%w: %d queued + %d submitted exceeds the %d-job bound",
			ErrQueueFull, d.depth, len(jobs), d.cfg.MaxQueue)
	}
	q := d.queues[client]
	if q == nil {
		q = &tenantQueue{}
		d.queues[client] = q
		d.order = append(d.order, client)
	}
	for i, j := range jobs {
		q.items = append(q.items, item{job: j, mode: mode, idx: i, client: client, sub: sub})
	}
	d.depth += len(jobs)
	d.cond.Broadcast()
	return sub, nil
}

// nextBatch blocks until work is queued, then drains up to BatchMax
// jobs by weighted round-robin: each tenant in the ring contributes at
// most Weight jobs per turn, so a bulk sweep and an interactive query
// share every batch. Returns nil when the daemon is closed (or ctx is
// cancelled) with nothing queued.
func (d *Daemon) nextBatch(ctx context.Context) []item {
	d.mu.Lock()
	defer d.mu.Unlock()
	for d.depth == 0 && !d.closed && ctx.Err() == nil {
		d.cond.Wait()
	}
	if d.depth == 0 {
		return nil
	}
	var batch []item
	for len(batch) < d.cfg.BatchMax && d.depth > 0 {
		if d.rrPos >= len(d.order) {
			d.rrPos = 0
		}
		cl := d.order[d.rrPos]
		q := d.queues[cl]
		n := min(d.cfg.Weight, len(q.items), d.cfg.BatchMax-len(batch))
		batch = append(batch, q.items[:n]...)
		q.items = q.items[n:]
		d.depth -= n
		if len(q.items) == 0 {
			// Drained tenants leave the ring so the tenant table stays
			// proportional to *live* clients, not lifetime clients.
			delete(d.queues, cl)
			d.order = append(d.order[:d.rrPos], d.order[d.rrPos+1:]...)
		} else {
			d.rrPos++
		}
	}
	return batch
}

// Run executes the dispatch loops until ctx is cancelled and the queue
// has drained. It blocks; a daemon serves batches only while Run is
// running. Give Run a context that outlives the shutdown signal (p5d
// does): the graceful path is Drain — flush queued work as drained
// markers, finish in-flight dispatches — then Close; cancelling Run's
// ctx mid-dispatch instead resolves in-flight work as Skipped.
func (d *Daemon) Run(ctx context.Context) {
	if ctx == nil {
		ctx = context.Background()
	}
	stop := make(chan struct{})
	defer close(stop)
	go func() { // wake nextBatch waiters when the daemon context dies
		select {
		case <-ctx.Done():
			d.cond.Broadcast()
		case <-stop:
		}
	}()

	var wg sync.WaitGroup
	for i := 0; i < d.cfg.Dispatchers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				batch := d.nextBatch(ctx)
				if batch == nil {
					return
				}
				d.dispatch(ctx, batch)
			}
		}()
	}
	wg.Wait()
}

// dispatch runs one batch through the engine, delivering completed
// results live and routing skipped ones (backend crash, injected skip,
// deadline) back through the queue for another attempt. Each item
// carries its own tier-0 mode, so one batch can mix estimate-accepting
// and exact-only tenants without splitting.
func (d *Daemon) dispatch(ctx context.Context, batch []item) {
	jobs := make([]engine.Job, len(batch))
	modes := make([]engine.EstimateMode, len(batch))
	for i, it := range batch {
		jobs[i] = it.job
		modes[i] = it.mode
	}
	// The dispatch runs under the daemon context, not any client's: a
	// disconnected client must not cancel work other clients may be
	// coalesced onto, and completed results warm the shared cache
	// either way. JobTimeout adds a batch-scaled deadline on top so a
	// wedged job frees this dispatcher after a bounded wait.
	runCtx, cancel := ctx, context.CancelFunc(func() {})
	if d.cfg.JobTimeout > 0 {
		runCtx, cancel = context.WithTimeout(ctx, time.Duration(len(batch))*d.cfg.JobTimeout)
	}
	out := d.eng.RunEstimate(runCtx, jobs, modes, func(i int, r engine.Result) {
		if r.Skipped {
			return // handled below once the batch settles
		}
		batch[i].sub.deliver(batch[i].idx, r)
		d.countResult(batch[i].client, r)
	})
	cancel()

	skipped := 0
	for _, r := range out {
		if r.Skipped {
			skipped++
		}
	}
	if skipped == 0 {
		return
	}
	if skipped == len(batch) && !d.isDraining() && ctx.Err() == nil {
		// The whole batch failed at the backend level (empty fleet,
		// every breaker open). Pause before requeueing so the attempt
		// budget spans worker re-registration instead of burning out in
		// a hot loop.
		time.Sleep(requeueBackoff)
	}
	requeued := 0
	for i, r := range out {
		if !r.Skipped {
			continue
		}
		it := batch[i]
		it.attempts++
		switch d.requeue(it) {
		case requeueOK:
			requeued++
		case requeueDrained:
			it.sub.deliverDrained(it.idx)
		case requeueCapped:
			cause := r.Err
			if cause == nil {
				cause = errors.New("dispatch skipped")
			}
			r.Err = fmt.Errorf("service: job gave up after %d dispatch attempts: %w", it.attempts, cause)
			// No longer Skipped on the wire: the daemon *did* attempt it,
			// repeatedly. Marking it terminal stops the client from
			// treating the exhausted job as resumable and resubmitting a
			// lost cause forever.
			r.Skipped = false
			it.sub.deliver(it.idx, r)
			d.countResult(it.client, r)
		case requeueClosed:
			it.sub.deliver(it.idx, r)
			d.countResult(it.client, r)
		}
	}
	if requeued > 0 {
		d.logf("service: requeued %d of %d skipped jobs for another attempt", requeued, skipped)
	}
}

// requeueOutcome is requeue's verdict for one skipped item.
type requeueOutcome int

const (
	requeueOK      requeueOutcome = iota // re-admitted for another attempt
	requeueDrained                       // daemon draining: flush as a drained marker
	requeueClosed                        // daemon closed: deliver the skipped result as-is
	requeueCapped                        // attempt budget exhausted: deliver as a failure
)

// requeue re-admits a skipped item to its tenant queue, bypassing the
// MaxQueue bound (the item was admitted once already; bouncing it now
// would turn a transient backend failure into a lost job).
func (d *Daemon) requeue(it item) requeueOutcome {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.draining {
		d.drained++
		d.clientStats(it.client).Drained++
		return requeueDrained
	}
	if d.closed {
		return requeueClosed
	}
	if it.attempts >= maxDispatchAttempts {
		return requeueCapped
	}
	q := d.queues[it.client]
	if q == nil {
		q = &tenantQueue{}
		d.queues[it.client] = q
		d.order = append(d.order, it.client)
	}
	q.items = append(q.items, it)
	d.depth++
	d.requeued++
	d.cond.Broadcast()
	return requeueOK
}

// clientStats returns (creating if needed) the named tenant's counter
// row. The caller must hold d.mu.
func (d *Daemon) clientStats(client string) *ClientStats {
	cs := d.clients[client]
	if cs == nil {
		cs = &ClientStats{Client: client}
		d.clients[client] = cs
	}
	return cs
}

// countResult classifies one delivered result into its tenant's tier
// breakdown: which answer tier produced it, from the client's point of
// view. The order matters — an estimate is never a cache hit, and a
// coalesced join is counted as a join even though the engine also
// flags it CacheHit (the published outcome it read *is* the cache).
func (d *Daemon) countResult(client string, r engine.Result) {
	d.mu.Lock()
	defer d.mu.Unlock()
	cs := d.clientStats(client)
	cs.Jobs++
	switch {
	case r.Err != nil || r.Skipped:
		cs.Errors++
	case r.Estimated:
		cs.Estimated++
	case r.Coalesced:
		cs.Coalesced++
	case r.CacheHit:
		cs.StoreHits++
	default:
		cs.Simulated++
	}
}

func (d *Daemon) isDraining() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.draining
}

// Drain moves the daemon into shutdown: admission stops (ErrDraining,
// which the HTTP layer maps to 503 + Retry-After), and every queued
// item is flushed to its submission as a drained marker — the open
// streams end with a terminal drained event listing unfinished keys
// instead of resolving queued work as skipped. In-flight dispatches
// are not interrupted; they deliver normally (skipped stragglers from
// them flush as drained markers too). Idempotent; Close still follows
// to stop the dispatch loops.
func (d *Daemon) Drain() {
	d.mu.Lock()
	if d.draining {
		d.mu.Unlock()
		return
	}
	d.draining = true
	var flushed []item
	for _, q := range d.queues {
		flushed = append(flushed, q.items...)
	}
	d.queues = make(map[string]*tenantQueue)
	d.order = nil
	d.rrPos = 0
	d.depth = 0
	d.drained += int64(len(flushed))
	for _, it := range flushed {
		d.clientStats(it.client).Drained++
	}
	d.mu.Unlock()
	d.cond.Broadcast()
	for _, it := range flushed {
		it.sub.deliverDrained(it.idx)
	}
	if len(flushed) > 0 {
		d.logf("service: drain: flushed %d queued jobs as drained", len(flushed))
	}
}

// Close rejects future submissions and wakes idle dispatchers. Jobs
// already queued still dispatch (Run drains them).
func (d *Daemon) Close() {
	d.mu.Lock()
	d.closed = true
	d.mu.Unlock()
	d.cond.Broadcast()
}

// RegisterWorker health-checks the worker at addr and adds it to the
// fleet; re-registering an existing worker closes its breaker (this is
// the heartbeat path). It reports whether the fleet grew.
func (d *Daemon) RegisterWorker(ctx context.Context, addr string) (added bool, err error) {
	if d.fleet == nil {
		return false, errors.New("service: daemon executes locally; worker registration needs a fleet backend")
	}
	w := remote.NewHTTPBackend(addr)
	if err := w.Healthy(ctx); err != nil {
		return false, fmt.Errorf("service: refusing to register %s: %w", addr, err)
	}
	added = d.fleet.AddWorker(w)
	if added {
		d.logf("service: worker %s joined the fleet", addr)
	}
	return added, nil
}

// Stats snapshots the daemon: queue state, the engine's lifetime
// cache-tier counters, the per-tenant delivery breakdown, and
// per-worker breaker state when running on a fleet.
func (d *Daemon) Stats() Stats {
	d.mu.Lock()
	st := Stats{
		Protocol:   ProtocolVersion,
		QueueDepth: d.depth,
		Tenants:    len(d.order),
		Rejected:   d.rejected,
		Drained:    d.drained,
		Requeued:   d.requeued,
	}
	names := make([]string, 0, len(d.clients))
	for name := range d.clients {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		st.Clients = append(st.Clients, *d.clients[name])
	}
	d.mu.Unlock()
	es := d.eng.Stats()
	st.Submitted = es.Submitted
	st.Simulated = es.Simulated
	st.Hits = es.Hits
	st.Coalesced = es.Coalesced
	st.DiskHits = es.DiskHits
	st.EstimatedHits = es.EstimatedHits
	st.EstimatedEscalated = es.EstimatedEscalated
	if d.fleet != nil {
		st.Workers = d.fleet.WorkerStates()
	}
	return st
}
