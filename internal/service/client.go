package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"power5prio/internal/engine"
	"power5prio/internal/fame"
	"power5prio/internal/remote"
)

// DefaultSubmitChunk is the largest job batch one submit request
// carries. A chunk is also the admission unit: it must fit under the
// daemon's queue bound, and smaller chunks let fairness interleave
// tenants sooner.
const DefaultSubmitChunk = 256

// Client failure-handling defaults; each has a With* option.
const (
	// DefaultIdleTimeout is the per-event idle deadline on the NDJSON
	// stream: if no event arrives for this long the client treats the
	// stream as stalled, drops it, and resubmits the unfinished jobs.
	// Generous because a cold simulation legitimately takes minutes; a
	// spurious trip only costs a reconnect — the daemon's singleflight
	// coalesces the resubmission onto the still-running job.
	DefaultIdleTimeout = 2 * time.Minute
	// DefaultBackpressureCap bounds the *cumulative* wait one chunk
	// spends in 429/503 backpressure before the client gives up with a
	// clear error instead of retrying a stuck daemon forever.
	DefaultBackpressureCap = 2 * time.Minute
	// DefaultResumeAttempts is how many consecutive resumes may make no
	// progress (no new result landed) before the client gives up. With
	// exponential backoff this spans roughly a minute of daemon outage
	// — enough to ride a restart.
	DefaultResumeAttempts = 10
	// DefaultHealthTimeout bounds one Healthy probe.
	DefaultHealthTimeout = 5 * time.Second
	// DefaultRegisterTimeout bounds one RegisterWorker exchange.
	DefaultRegisterTimeout = 10 * time.Second
)

// retryBase is the shortest backoff pause: the first resume retry, and
// a 429-rejected chunk when the daemon sends no Retry-After hint.
const retryBase = 500 * time.Millisecond

// maxRetryWait caps how long one backoff pause may be, whatever the
// daemon's Retry-After says or the exponential backoff reaches.
const maxRetryWait = 10 * time.Second

// Client submits jobs to a p5d daemon. It implements engine.Backend
// (and the progress extension), so an engine constructed with
// engine.WithBackend(service.NewClient(addr)) transparently executes
// through the shared daemon: local cache tiers still apply, and only
// locally-unknown jobs travel.
//
// The client rides failures out rather than surfacing them: admission
// backpressure (429, or 503 + Retry-After from a draining daemon) backs
// off under a cumulative cap; a stalled, truncated or drained stream is
// dropped and only the unfinished jobs are resubmitted — against a
// restarted daemon the warm cache and singleflight make the resume
// cheap and the merged results byte-identical.
type Client struct {
	base            string
	client          *http.Client
	id              string
	chunk           int
	idleTimeout     time.Duration
	backpressureCap time.Duration
	resumeAttempts  int
	healthTimeout   time.Duration
	registerTimeout time.Duration

	estimate *EstimateSpec

	mu sync.Mutex
	rs engine.RemoteStats
}

// ClientOption configures a Client.
type ClientOption func(*Client)

// WithClientID sets the tenant ID used for the daemon's fair
// scheduling (default: derived from the process, so concurrent
// processes are distinct tenants).
func WithClientID(id string) ClientOption {
	return func(c *Client) {
		if id != "" {
			c.id = id
		}
	}
}

// WithHTTPClient replaces the HTTP client (default: no overall timeout
// — submissions legitimately stream for minutes; cancel via ctx, the
// per-event idle deadline handles silent stalls).
func WithHTTPClient(h *http.Client) ClientOption { return func(c *Client) { c.client = h } }

// WithSubmitChunk bounds jobs per submit request (<= 0 =
// DefaultSubmitChunk).
func WithSubmitChunk(n int) ClientOption {
	return func(c *Client) {
		if n > 0 {
			c.chunk = n
		}
	}
}

// WithIdleTimeout sets the per-event stream idle deadline (<= 0
// disables stall detection).
func WithIdleTimeout(d time.Duration) ClientOption { return func(c *Client) { c.idleTimeout = d } }

// WithBackpressureCap bounds the cumulative backpressure wait per
// chunk (<= 0 keeps the default).
func WithBackpressureCap(d time.Duration) ClientOption {
	return func(c *Client) {
		if d > 0 {
			c.backpressureCap = d
		}
	}
}

// WithResumeAttempts bounds consecutive no-progress stream resumes
// (<= 0 keeps the default).
func WithResumeAttempts(n int) ClientOption {
	return func(c *Client) {
		if n > 0 {
			c.resumeAttempts = n
		}
	}
}

// WithHealthTimeout bounds one Healthy probe (<= 0 keeps the default).
func WithHealthTimeout(d time.Duration) ClientOption {
	return func(c *Client) {
		if d > 0 {
			c.healthTimeout = d
		}
	}
}

// WithEstimate attaches a tier-0 policy to every submission: the
// daemon answers this client's jobs from its analytical estimator
// under mode m, and estimated results come back flagged with the
// model's error bar (Result.Estimated / Result.ErrorBar). Passing a
// disabled mode requests exact answers explicitly, overriding a
// daemon that defaults to estimation; without this option the daemon's
// default applies. Estimates never enter any cache tier on either
// side, so a later exact run is unaffected.
func WithEstimate(m engine.EstimateMode) ClientOption {
	return func(c *Client) {
		if !m.Enabled {
			c.estimate = &EstimateSpec{} // explicit "exact answers only"
			return
		}
		c.estimate = &EstimateSpec{Always: m.Always, Tolerance: m.Tolerance}
	}
}

// WithRegisterTimeout bounds one RegisterWorker exchange (<= 0 keeps
// the default).
func WithRegisterTimeout(d time.Duration) ClientOption {
	return func(c *Client) {
		if d > 0 {
			c.registerTimeout = d
		}
	}
}

// NewClient returns a client for a daemon address: host:port as passed
// to p5d -listen, or a full http:// URL.
func NewClient(addr string, opts ...ClientOption) *Client {
	base := addr
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	c := &Client{
		base:            strings.TrimRight(base, "/"),
		client:          &http.Client{},
		id:              fmt.Sprintf("pid-%d", os.Getpid()),
		chunk:           DefaultSubmitChunk,
		idleTimeout:     DefaultIdleTimeout,
		backpressureCap: DefaultBackpressureCap,
		resumeAttempts:  DefaultResumeAttempts,
		healthTimeout:   DefaultHealthTimeout,
		registerTimeout: DefaultRegisterTimeout,
	}
	for _, o := range opts {
		o(c)
	}
	return c
}

// Name identifies the daemon in diagnostics.
func (c *Client) Name() string { return "service(" + c.base + ")" }

// Capacity is the submit chunk size — what one request keeps in
// flight.
func (c *Client) Capacity() int { return c.chunk }

// RemoteStats returns the client's lifetime counters.
func (c *Client) RemoteStats() engine.RemoteStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.rs
}

func (c *Client) addRetries(n int) {
	c.mu.Lock()
	c.rs.Retries += n
	c.mu.Unlock()
}

// Healthy pings the daemon and verifies the protocol version.
func (c *Client) Healthy(ctx context.Context) error {
	if ctx == nil {
		ctx = context.Background()
	}
	ctx, cancel := context.WithTimeout(ctx, c.healthTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+HealthPath, nil)
	if err != nil {
		return fmt.Errorf("service: %s: %w", c.base, err)
	}
	resp, err := c.client.Do(req)
	if err != nil {
		return fmt.Errorf("service: daemon %s unreachable: %w", c.base, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("service: daemon %s health: %s", c.base, resp.Status)
	}
	var h Health
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		return fmt.Errorf("service: daemon %s health: %w", c.base, err)
	}
	return checkProtocol(h.Protocol)
}

// Run implements engine.Backend; see RunProgress.
func (c *Client) Run(ctx context.Context, jobs []engine.Job) ([]engine.Result, error) {
	return c.RunProgress(ctx, jobs, nil)
}

// RunProgress submits the batch in chunks, streaming each job's result
// through done as the daemon reports it. Backpressure (429 or a
// draining daemon's 503) backs off and retries under a cumulative cap;
// a stalled, truncated or drained stream resubmits only its unfinished
// jobs, riding out a daemon restart. When the retry budgets run out,
// the remaining jobs are skipped and the failure returned so a caller
// can retry them, matching the worker-backend contract.
func (c *Client) RunProgress(ctx context.Context, jobs []engine.Job, done func(i int, r engine.Result)) ([]engine.Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	out := make([]engine.Result, len(jobs))
	report := func(k int, r engine.Result) {
		out[k] = r
		if done != nil {
			done(k, r)
		}
	}
	for start := 0; start < len(jobs); start += c.chunk {
		end := min(start+c.chunk, len(jobs))
		if err := ctx.Err(); err != nil {
			c.skipFrom(out, jobs, start, err, done)
			return out, nil // cancellation is not a daemon failure
		}
		if err := c.submitChunk(ctx, jobs, start, end, report); err != nil {
			if ctx.Err() != nil {
				c.skipFrom(out, jobs, start, ctx.Err(), done)
				return out, nil
			}
			c.mu.Lock()
			c.rs.WorkerErrors++
			c.mu.Unlock()
			err = fmt.Errorf("service: daemon %s: %w", c.base, err)
			c.skipFrom(out, jobs, start, err, done)
			return out, err
		}
	}
	return out, nil
}

func (c *Client) skipFrom(out []engine.Result, jobs []engine.Job, start int, err error, done func(i int, r engine.Result)) {
	for k := start; k < len(jobs); k++ {
		out[k] = engine.Result{Job: jobs[k], Err: err, Skipped: true}
		if done != nil {
			done(k, out[k])
		}
	}
}

// errBackpressure marks an admission rejection (429 queue-full, or a
// draining daemon's 503 + Retry-After) internally.
type errBackpressure struct {
	wait time.Duration
	msg  string
}

func (e *errBackpressure) Error() string { return e.msg }

// errResumable marks a dropped stream the client may resume: transport
// failure, mid-stream truncation, an idle-deadline stall, or a 5xx.
type errResumable struct{ cause error }

func (e *errResumable) Error() string { return e.cause.Error() }
func (e *errResumable) Unwrap() error { return e.cause }

// submitChunk drives jobs[start:end] to completion: it submits the
// pending set, collects results, and loops — resubmitting only the
// unfinished jobs — through backpressure, stream drops, drains and
// daemon-side skips, until everything resolved or a retry budget runs
// out.
func (c *Client) submitChunk(ctx context.Context, jobs []engine.Job, start, end int, report func(int, engine.Result)) error {
	pending := make([]int, 0, end-start)
	for k := start; k < end; k++ {
		pending = append(pending, k)
	}
	var bpWaited time.Duration // cumulative backpressure wait
	stalls := 0                // consecutive resumes without progress
	var lastCause error
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		unfinished, err := c.trySubmit(ctx, jobs, pending, report)
		if err == nil && len(unfinished) == 0 {
			return nil
		}
		var bp *errBackpressure
		var rs *errResumable
		switch {
		case errors.As(err, &bp):
			bpWaited += bp.wait
			if bpWaited > c.backpressureCap {
				return fmt.Errorf("backpressured for %s (cap %s) with %d jobs pending; giving up: %s",
					bpWaited.Round(time.Millisecond), c.backpressureCap, len(pending), bp.msg)
			}
			c.addRetries(len(pending))
			if err := sleepCtx(ctx, bp.wait); err != nil {
				return err
			}
			continue
		case err == nil:
			// The stream finished cleanly but left work unfinished: a
			// terminal drained event, or results the daemon marked
			// skipped after exhausting its own dispatch attempts.
			lastCause = errors.New("stream ended with unfinished jobs (daemon drained or skipped them)")
		case errors.As(err, &rs):
			lastCause = rs.cause
		default:
			return err
		}
		if len(unfinished) < len(pending) {
			stalls = 0 // progress: results landed this attempt
		} else {
			stalls++
		}
		if stalls > c.resumeAttempts {
			return fmt.Errorf("giving up after %d stream resumes without progress (%d of %d jobs unfinished): %w",
				stalls, len(unfinished), end-start, lastCause)
		}
		pending = unfinished
		c.addRetries(len(pending))
		backoff := min(retryBase<<min(stalls, 5), maxRetryWait)
		if err := sleepCtx(ctx, backoff); err != nil {
			return err
		}
	}
}

// trySubmit performs one submit exchange for the pending set (absolute
// indices into jobs). Deterministic results are reported as they
// stream; daemon-skipped results are withheld and returned as
// unfinished instead, alongside anything a drained event or a dropped
// stream left unresolved. The error classifies the exchange:
// *errBackpressure and *errResumable are retryable, everything else is
// final.
func (c *Client) trySubmit(ctx context.Context, jobs []engine.Job, pending []int, report func(int, engine.Result)) ([]int, error) {
	req := SubmitRequest{Protocol: ProtocolVersion, Client: c.id, Estimate: c.estimate, Jobs: make([]remote.WireJob, len(pending))}
	for i, k := range pending {
		req.Jobs[i] = remote.WireJob{Key: engine.JobKey(jobs[k]).String(), Job: jobs[k]}
	}
	body, err := json.Marshal(req)
	if err != nil {
		return pending, fmt.Errorf("encode submit request: %w", err)
	}

	// The idle watchdog cancels the request context when no stream
	// event arrives for idleTimeout; the stalled flag distinguishes
	// that from the caller's own cancellation.
	reqCtx := ctx
	var stalled atomic.Bool
	kick := func() {}
	if c.idleTimeout > 0 {
		var cancel context.CancelFunc
		reqCtx, cancel = context.WithCancel(ctx)
		defer cancel()
		dog := time.AfterFunc(c.idleTimeout, func() {
			stalled.Store(true)
			cancel()
		})
		defer dog.Stop()
		kick = func() { dog.Reset(c.idleTimeout) }
	}
	final := make([]bool, len(pending))
	unfinished := func() []int {
		var left []int
		for i, k := range pending {
			if !final[i] {
				left = append(left, k)
			}
		}
		return left
	}
	// classify wraps a transport/decode failure: the caller's
	// cancellation is final, everything else (stall, truncation,
	// connection loss) is resumable.
	classify := func(err error) error {
		if cerr := ctx.Err(); cerr != nil {
			return cerr
		}
		if stalled.Load() {
			return &errResumable{cause: fmt.Errorf("stream stalled: no event for %s: %w", c.idleTimeout, err)}
		}
		return &errResumable{cause: err}
	}

	hreq, err := http.NewRequestWithContext(reqCtx, http.MethodPost, c.base+SubmitPath, bytes.NewReader(body))
	if err != nil {
		return pending, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	hresp, err := c.client.Do(hreq)
	if err != nil {
		return pending, classify(err)
	}
	defer hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(hresp.Body, 512))
		trimmed := strings.TrimSpace(string(msg))
		retryAfter := hresp.Header.Get("Retry-After")
		switch {
		case hresp.StatusCode == http.StatusTooManyRequests,
			hresp.StatusCode == http.StatusServiceUnavailable && retryAfter != "":
			// Admission backpressure: queue full, or draining for a
			// restart. Both mean "come back shortly".
			return pending, &errBackpressure{wait: retryWait(retryAfter), msg: trimmed}
		case hresp.StatusCode >= 500:
			// A proxy blip or an injected 5xx burst: retryable.
			return pending, &errResumable{cause: fmt.Errorf("%s: %s", hresp.Status, trimmed)}
		default:
			return pending, fmt.Errorf("%s: %s", hresp.Status, trimmed)
		}
	}

	// Decode the event stream. Every accepted job must resolve before
	// EventDone; the daemon's key echoes are verified against ours, so
	// drift fails loudly in both directions. A drained trailer (or a
	// dropped stream) leaves the unresolved jobs for the next attempt.
	dec := json.NewDecoder(hresp.Body)
	var header Event
	if err := dec.Decode(&header); err != nil {
		return pending, classify(fmt.Errorf("decode submit header: %w", err))
	}
	kick()
	if header.Type != EventHeader {
		return pending, fmt.Errorf("submit stream opened with %q event, want %q", header.Type, EventHeader)
	}
	if err := checkProtocol(header.Protocol); err != nil {
		return pending, err
	}
	resolved := 0 // final results + daemon-skipped, this attempt
	reported := 0 // final results delivered to report
	daemonSkipped := 0
	for {
		var ev Event
		if err := dec.Decode(&ev); err != nil {
			return unfinished(), classify(fmt.Errorf("submit stream dropped after %d of %d results: %w", resolved, len(pending), err))
		}
		kick()
		switch ev.Type {
		case EventResult:
			k := ev.Index
			if k < 0 || k >= len(pending) || ev.Result == nil {
				return unfinished(), fmt.Errorf("submit stream returned malformed result event (index %d of %d jobs)", k, len(pending))
			}
			if final[k] {
				return unfinished(), fmt.Errorf("submit stream resolved job %d twice", k)
			}
			if ev.Result.Key != req.Jobs[k].Key {
				return unfinished(), fmt.Errorf("submit stream returned result for key %s at position of %s", ev.Result.Key, req.Jobs[k].Key)
			}
			if ev.Skipped {
				// The daemon gave up dispatching this job (its requeue
				// budget ran out — e.g. the whole fleet is down). Not a
				// deterministic outcome, so withhold it and let the
				// resume loop retry rather than surfacing a transient
				// fleet failure as a job error.
				resolved++
				daemonSkipped++
				continue
			}
			final[k] = true
			resolved++
			reported++
			r := engine.Result{
				Job: jobs[pending[k]], Pair: ev.Result.Pair, CacheHit: ev.Result.Cached,
				Estimated: ev.Result.Estimated, ErrorBar: ev.Result.ErrorBar,
			}
			if ev.Result.Err != "" {
				r.Err = errors.New(ev.Result.Err)
				r.Pair = fame.PairResult{}
			}
			report(pending[k], r)
		case EventDrained:
			// Terminal: the daemon drained before everything ran. Our
			// own bookkeeping already knows which jobs never resolved;
			// the event's sorted key list is the daemon's word for it.
			c.mu.Lock()
			c.rs.Jobs += reported
			c.mu.Unlock()
			return unfinished(), nil
		case EventDone:
			if ev.Err != "" {
				return unfinished(), fmt.Errorf("daemon reported: %s", ev.Err)
			}
			if resolved != len(pending) {
				return unfinished(), fmt.Errorf("submit stream closed with %d of %d results", resolved, len(pending))
			}
			c.mu.Lock()
			c.rs.Jobs += reported
			c.mu.Unlock()
			return unfinished(), nil
		default:
			return unfinished(), fmt.Errorf("submit stream sent unknown event type %q", ev.Type)
		}
	}
}

// RegisterWorker announces the worker at workerAddr to the daemon. The
// daemon health-checks the worker before admitting it; re-registering
// is the heartbeat that keeps a worker's circuit breaker closed, so
// workers call this periodically. Added reports whether the fleet grew
// (false on a heartbeat).
func (c *Client) RegisterWorker(ctx context.Context, workerAddr string) (added bool, err error) {
	if ctx == nil {
		ctx = context.Background()
	}
	body, err := json.Marshal(RegisterRequest{Protocol: ProtocolVersion, Addr: workerAddr})
	if err != nil {
		return false, fmt.Errorf("service: encode register request: %w", err)
	}
	ctx, cancel := context.WithTimeout(ctx, c.registerTimeout)
	defer cancel()
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+RegisterPath, bytes.NewReader(body))
	if err != nil {
		return false, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	hresp, err := c.client.Do(hreq)
	if err != nil {
		return false, fmt.Errorf("service: daemon %s unreachable: %w", c.base, err)
	}
	defer hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(hresp.Body, 512))
		return false, fmt.Errorf("service: register with %s: %s: %s", c.base, hresp.Status, strings.TrimSpace(string(msg)))
	}
	var rr RegisterResponse
	if err := json.NewDecoder(hresp.Body).Decode(&rr); err != nil {
		return false, fmt.Errorf("service: register with %s: %w", c.base, err)
	}
	if err := checkProtocol(rr.Protocol); err != nil {
		return false, err
	}
	return rr.Added, nil
}

// RegisterWorker announces the worker at workerAddr to the daemon at
// daemonAddr (host:port or http:// URL) with default timeouts; see
// Client.RegisterWorker.
func RegisterWorker(ctx context.Context, daemonAddr, workerAddr string) (added bool, err error) {
	return NewClient(daemonAddr).RegisterWorker(ctx, workerAddr)
}

// retryWait parses a Retry-After header into a bounded pause.
func retryWait(h string) time.Duration {
	wait := retryBase
	if secs, err := strconv.Atoi(strings.TrimSpace(h)); err == nil && secs > 0 {
		wait = time.Duration(secs) * time.Second
	}
	return min(wait, maxRetryWait)
}

// sleepCtx pauses for d or until ctx dies.
func sleepCtx(ctx context.Context, d time.Duration) error {
	select {
	case <-time.After(d):
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
