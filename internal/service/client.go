package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"strings"
	"sync"
	"time"

	"power5prio/internal/engine"
	"power5prio/internal/fame"
	"power5prio/internal/remote"
)

// DefaultSubmitChunk is the largest job batch one submit request
// carries. A chunk is also the admission unit: it must fit under the
// daemon's queue bound, and smaller chunks let fairness interleave
// tenants sooner.
const DefaultSubmitChunk = 256

// retryBase is the pause before retrying a 429-rejected chunk when the
// daemon sends no Retry-After hint.
const retryBase = 500 * time.Millisecond

// maxRetryWait caps how long one backpressure pause may be, whatever
// the daemon's Retry-After says.
const maxRetryWait = 10 * time.Second

// Client submits jobs to a p5d daemon. It implements engine.Backend
// (and the progress extension), so an engine constructed with
// engine.WithBackend(service.NewClient(addr)) transparently executes
// through the shared daemon: local cache tiers still apply, and only
// locally-unknown jobs travel.
type Client struct {
	base   string
	client *http.Client
	id     string
	chunk  int

	mu sync.Mutex
	rs engine.RemoteStats
}

// ClientOption configures a Client.
type ClientOption func(*Client)

// WithClientID sets the tenant ID used for the daemon's fair
// scheduling (default: derived from the process, so concurrent
// processes are distinct tenants).
func WithClientID(id string) ClientOption {
	return func(c *Client) {
		if id != "" {
			c.id = id
		}
	}
}

// WithHTTPClient replaces the HTTP client (default: no overall timeout
// — submissions legitimately stream for minutes; cancel via ctx).
func WithHTTPClient(h *http.Client) ClientOption { return func(c *Client) { c.client = h } }

// WithSubmitChunk bounds jobs per submit request (<= 0 =
// DefaultSubmitChunk).
func WithSubmitChunk(n int) ClientOption {
	return func(c *Client) {
		if n > 0 {
			c.chunk = n
		}
	}
}

// NewClient returns a client for a daemon address: host:port as passed
// to p5d -listen, or a full http:// URL.
func NewClient(addr string, opts ...ClientOption) *Client {
	base := addr
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	c := &Client{
		base:   strings.TrimRight(base, "/"),
		client: &http.Client{},
		id:     fmt.Sprintf("pid-%d", os.Getpid()),
		chunk:  DefaultSubmitChunk,
	}
	for _, o := range opts {
		o(c)
	}
	return c
}

// Name identifies the daemon in diagnostics.
func (c *Client) Name() string { return "service(" + c.base + ")" }

// Capacity is the submit chunk size — what one request keeps in
// flight.
func (c *Client) Capacity() int { return c.chunk }

// RemoteStats returns the client's lifetime counters.
func (c *Client) RemoteStats() engine.RemoteStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.rs
}

// Healthy pings the daemon and verifies the protocol version.
func (c *Client) Healthy(ctx context.Context) error {
	if ctx == nil {
		ctx = context.Background()
	}
	ctx, cancel := context.WithTimeout(ctx, 5*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+HealthPath, nil)
	if err != nil {
		return fmt.Errorf("service: %s: %w", c.base, err)
	}
	resp, err := c.client.Do(req)
	if err != nil {
		return fmt.Errorf("service: daemon %s unreachable: %w", c.base, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("service: daemon %s health: %s", c.base, resp.Status)
	}
	var h Health
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		return fmt.Errorf("service: daemon %s health: %w", c.base, err)
	}
	return checkProtocol(h.Protocol)
}

// Run implements engine.Backend; see RunProgress.
func (c *Client) Run(ctx context.Context, jobs []engine.Job) ([]engine.Result, error) {
	return c.RunProgress(ctx, jobs, nil)
}

// RunProgress submits the batch in chunks, streaming each job's result
// through done as the daemon reports it. A queue-full rejection backs
// off (honouring Retry-After) and retries the chunk — backpressure is
// flow control, not failure. A daemon-level failure skips the
// remaining jobs and is returned so a caller can retry them, matching
// the worker-backend contract.
func (c *Client) RunProgress(ctx context.Context, jobs []engine.Job, done func(i int, r engine.Result)) ([]engine.Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	out := make([]engine.Result, len(jobs))
	report := func(k int, r engine.Result) {
		out[k] = r
		if done != nil {
			done(k, r)
		}
	}
	for start := 0; start < len(jobs); start += c.chunk {
		end := min(start+c.chunk, len(jobs))
		if err := ctx.Err(); err != nil {
			c.skipFrom(out, jobs, start, err, done)
			return out, nil // cancellation is not a daemon failure
		}
		if err := c.submitChunk(ctx, jobs, start, end, report); err != nil {
			if ctx.Err() != nil {
				c.skipFrom(out, jobs, start, ctx.Err(), done)
				return out, nil
			}
			c.mu.Lock()
			c.rs.WorkerErrors++
			c.mu.Unlock()
			err = fmt.Errorf("service: daemon %s: %w", c.base, err)
			c.skipFrom(out, jobs, start, err, done)
			return out, err
		}
	}
	return out, nil
}

func (c *Client) skipFrom(out []engine.Result, jobs []engine.Job, start int, err error, done func(i int, r engine.Result)) {
	for k := start; k < len(jobs); k++ {
		out[k] = engine.Result{Job: jobs[k], Err: err, Skipped: true}
		if done != nil {
			done(k, out[k])
		}
	}
}

// errBackpressure marks a 429 admission rejection internally.
type errBackpressure struct {
	wait time.Duration
	msg  string
}

func (e *errBackpressure) Error() string { return e.msg }

// submitChunk posts jobs[start:end], retrying through admission
// backpressure until the chunk is accepted or ctx dies.
func (c *Client) submitChunk(ctx context.Context, jobs []engine.Job, start, end int, report func(int, engine.Result)) error {
	for {
		err := c.trySubmit(ctx, jobs, start, end, report)
		var bp *errBackpressure
		if !errors.As(err, &bp) {
			return err
		}
		c.mu.Lock()
		c.rs.Retries += end - start
		c.mu.Unlock()
		select {
		case <-time.After(bp.wait):
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

func (c *Client) trySubmit(ctx context.Context, jobs []engine.Job, start, end int, report func(int, engine.Result)) error {
	req := SubmitRequest{Protocol: ProtocolVersion, Client: c.id, Jobs: make([]remote.WireJob, end-start)}
	for k := start; k < end; k++ {
		req.Jobs[k-start] = remote.WireJob{Key: engine.JobKey(jobs[k]).String(), Job: jobs[k]}
	}
	body, err := json.Marshal(req)
	if err != nil {
		return fmt.Errorf("encode submit request: %w", err)
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+SubmitPath, bytes.NewReader(body))
	if err != nil {
		return err
	}
	hreq.Header.Set("Content-Type", "application/json")
	hresp, err := c.client.Do(hreq)
	if err != nil {
		return err
	}
	defer hresp.Body.Close()
	if hresp.StatusCode == http.StatusTooManyRequests {
		msg, _ := io.ReadAll(io.LimitReader(hresp.Body, 512))
		return &errBackpressure{wait: retryWait(hresp.Header.Get("Retry-After")), msg: strings.TrimSpace(string(msg))}
	}
	if hresp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(hresp.Body, 512))
		return fmt.Errorf("%s: %s", hresp.Status, strings.TrimSpace(string(msg)))
	}

	// Decode the event stream. Every accepted job must resolve before
	// EventDone; the daemon's key echoes are verified against ours, so
	// drift fails loudly in both directions.
	dec := json.NewDecoder(hresp.Body)
	var header Event
	if err := dec.Decode(&header); err != nil {
		return fmt.Errorf("decode submit header: %w", err)
	}
	if header.Type != EventHeader {
		return fmt.Errorf("submit stream opened with %q event, want %q", header.Type, EventHeader)
	}
	if err := checkProtocol(header.Protocol); err != nil {
		return err
	}
	seen := make([]bool, end-start)
	resolved := 0
	for {
		var ev Event
		if err := dec.Decode(&ev); err != nil {
			return fmt.Errorf("submit stream truncated after %d of %d results: %w", resolved, end-start, err)
		}
		switch ev.Type {
		case EventResult:
			k := ev.Index
			if k < 0 || k >= end-start || ev.Result == nil {
				return fmt.Errorf("submit stream returned malformed result event (index %d of %d jobs)", k, end-start)
			}
			if seen[k] {
				return fmt.Errorf("submit stream resolved job %d twice", k)
			}
			if ev.Result.Key != req.Jobs[k].Key {
				return fmt.Errorf("submit stream returned result for key %s at position of %s", ev.Result.Key, req.Jobs[k].Key)
			}
			seen[k] = true
			resolved++
			r := engine.Result{Job: jobs[start+k], Pair: ev.Result.Pair, CacheHit: ev.Result.Cached, Skipped: ev.Skipped}
			if ev.Result.Err != "" {
				r.Err = errors.New(ev.Result.Err)
				r.Pair = fame.PairResult{}
			}
			report(start+k, r)
		case EventDone:
			if ev.Err != "" {
				return fmt.Errorf("daemon reported: %s", ev.Err)
			}
			if resolved != end-start {
				return fmt.Errorf("submit stream closed with %d of %d results", resolved, end-start)
			}
			c.mu.Lock()
			c.rs.Jobs += end - start
			c.mu.Unlock()
			return nil
		default:
			return fmt.Errorf("submit stream sent unknown event type %q", ev.Type)
		}
	}
}

// RegisterWorker announces the worker at workerAddr to the daemon at
// daemonAddr (host:port or http:// URL). The daemon health-checks the
// worker before admitting it; re-registering is the heartbeat that
// keeps a worker's circuit breaker closed, so workers call this
// periodically. Added reports whether the fleet grew (false on a
// heartbeat).
func RegisterWorker(ctx context.Context, daemonAddr, workerAddr string) (added bool, err error) {
	if ctx == nil {
		ctx = context.Background()
	}
	base := daemonAddr
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	base = strings.TrimRight(base, "/")
	body, err := json.Marshal(RegisterRequest{Protocol: ProtocolVersion, Addr: workerAddr})
	if err != nil {
		return false, fmt.Errorf("service: encode register request: %w", err)
	}
	ctx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, base+RegisterPath, bytes.NewReader(body))
	if err != nil {
		return false, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	hresp, err := http.DefaultClient.Do(hreq)
	if err != nil {
		return false, fmt.Errorf("service: daemon %s unreachable: %w", base, err)
	}
	defer hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(hresp.Body, 512))
		return false, fmt.Errorf("service: register with %s: %s: %s", base, hresp.Status, strings.TrimSpace(string(msg)))
	}
	var rr RegisterResponse
	if err := json.NewDecoder(hresp.Body).Decode(&rr); err != nil {
		return false, fmt.Errorf("service: register with %s: %w", base, err)
	}
	if err := checkProtocol(rr.Protocol); err != nil {
		return false, err
	}
	return rr.Added, nil
}

// retryWait parses a Retry-After header into a bounded pause.
func retryWait(h string) time.Duration {
	wait := retryBase
	if secs, err := strconv.Atoi(strings.TrimSpace(h)); err == nil && secs > 0 {
		wait = time.Duration(secs) * time.Second
	}
	return min(wait, maxRetryWait)
}
