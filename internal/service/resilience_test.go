package service

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"power5prio/internal/engine"
	"power5prio/internal/remote"
)

// skipBackend skips every job (no backend error) for the first `fail`
// runs, then succeeds — the shape of a fleet that is briefly empty
// while workers re-register.
type skipBackend struct {
	mu   sync.Mutex
	fail int
	runs int
	jobs int
}

func (b *skipBackend) Name() string                  { return "skips" }
func (b *skipBackend) Capacity() int                 { return 4 }
func (b *skipBackend) Healthy(context.Context) error { return nil }

func (b *skipBackend) Run(ctx context.Context, jobs []engine.Job) ([]engine.Result, error) {
	b.mu.Lock()
	b.runs++
	failing := b.runs <= b.fail
	if !failing {
		b.jobs += len(jobs)
	}
	b.mu.Unlock()
	out := make([]engine.Result, len(jobs))
	for i, j := range jobs {
		if failing {
			out[i] = engine.Result{Job: j, Skipped: true}
		} else {
			out[i] = engine.Result{Job: j}
		}
	}
	return out, nil
}

// TestDrainEmitsUnfinished pins the v2 drain contract on the wire: a
// daemon drained mid-batch finishes the in-flight dispatch, resolves
// those jobs normally, and ends the stream with a terminal drained
// event listing exactly the never-attempted keys, sorted.
func TestDrainEmitsUnfinished(t *testing.T) {
	cb := &countingBackend{gate: make(chan struct{}), started: make(chan struct{})}
	d := New(engine.NewWith(0, nil, engine.WithBackend(cb)), nil,
		Config{BatchMax: 2, Dispatchers: 1})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go d.Run(ctx)
	srv := httptest.NewServer(d.Handler())
	defer srv.Close()
	defer d.Close()

	jobs := svcJobs(5, 0)
	req := SubmitRequest{Protocol: ProtocolVersion, Client: "c", Jobs: make([]remote.WireJob, len(jobs))}
	keys := make([]string, len(jobs))
	for i, j := range jobs {
		keys[i] = engine.JobKey(j).String()
		req.Jobs[i] = remote.WireJob{Key: keys[i], Job: j}
	}
	body, _ := json.Marshal(req)
	resp, err := http.Post(srv.URL+SubmitPath, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()

	<-cb.started // batch of 2 in flight, 3 still queued
	d.Drain()
	close(cb.gate)

	var results []Event
	var drainedEv *Event
	dec := json.NewDecoder(resp.Body)
	for {
		var ev Event
		if err := dec.Decode(&ev); err != nil {
			t.Fatalf("stream decode: %v (results so far: %d)", err, len(results))
		}
		if ev.Type == EventResult {
			results = append(results, ev)
			continue
		}
		if ev.Type == EventDrained {
			drainedEv = &ev
			break
		}
		if ev.Type == EventDone {
			t.Fatal("stream ended with done, want a terminal drained event")
		}
	}
	if len(results) != 2 {
		t.Fatalf("%d results delivered before the drain, want the in-flight 2", len(results))
	}
	for _, ev := range results {
		if ev.Skipped || ev.Result.Err != "" {
			t.Fatalf("in-flight result = %+v, want clean completion", ev)
		}
	}
	want := append([]string(nil), keys[2:]...)
	sort.Strings(want)
	if len(drainedEv.Unfinished) != len(want) {
		t.Fatalf("drained event lists %v, want %v", drainedEv.Unfinished, want)
	}
	for i := range want {
		if drainedEv.Unfinished[i] != want[i] {
			t.Fatalf("drained event lists %v, want %v (sorted)", drainedEv.Unfinished, want)
		}
	}
	if st := d.Stats(); st.Drained != 3 {
		t.Fatalf("stats drained = %d, want 3", st.Drained)
	}

	// A draining daemon refuses new work transiently: 503 + Retry-After.
	resp2, err := http.Post(srv.URL+SubmitPath, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusServiceUnavailable || resp2.Header.Get("Retry-After") == "" {
		t.Fatalf("submit to draining daemon = %s (Retry-After %q), want 503 with a hint",
			resp2.Status, resp2.Header.Get("Retry-After"))
	}
}

// TestClientResumesAcrossRestart pins the end-to-end graceful-restart
// story: a daemon drains mid-submission, the client receives the
// in-flight results plus a drained event, and transparently resubmits
// only the unfinished jobs to the restarted daemon — every job
// resolves cleanly, nothing runs twice.
func TestClientResumesAcrossRestart(t *testing.T) {
	cb1 := &countingBackend{gate: make(chan struct{}), started: make(chan struct{})}
	d1 := New(engine.NewWith(0, nil, engine.WithBackend(cb1)), nil,
		Config{BatchMax: 2, Dispatchers: 1})
	ctx1, cancel1 := context.WithCancel(context.Background())
	defer cancel1()
	go d1.Run(ctx1)

	// The "listen address": a front that survives the daemon behind it
	// being torn down and replaced, as a restarted process's port does.
	var front atomic.Value // http.Handler
	front.Store(d1.Handler())
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		front.Load().(http.Handler).ServeHTTP(w, r)
	}))
	defer srv.Close()

	jobs := svcJobs(5, 0)
	var res []engine.Result
	var runErr error
	done := make(chan struct{})
	go func() {
		defer close(done)
		res, runErr = NewClient(srv.URL, WithClientID("c")).Run(nil, jobs)
	}()

	<-cb1.started // first batch (2 jobs) in flight on daemon 1
	d1.Drain()
	close(cb1.gate) // in-flight batch completes; stream ends drained

	// "Restart": a fresh daemon takes over the address.
	cb2 := &countingBackend{}
	d2 := New(engine.NewWith(0, nil, engine.WithBackend(cb2)), nil, Config{})
	ctx2, cancel2 := context.WithCancel(context.Background())
	defer cancel2()
	go d2.Run(ctx2)
	defer d2.Close()
	front.Store(d2.Handler())
	d1.Close()

	select {
	case <-done:
	case <-time.After(15 * time.Second):
		t.Fatal("client did not resume to completion within 15s")
	}
	if runErr != nil {
		t.Fatalf("resumed run failed: %v", runErr)
	}
	for i, r := range res {
		if r.Err != nil || r.Skipped {
			t.Fatalf("job %d = %+v, want clean result across the restart", i, r)
		}
	}
	_, n1 := cb1.counts()
	_, n2 := cb2.counts()
	if n1 != 2 || n2 != 3 {
		t.Fatalf("daemon1 ran %d jobs, daemon2 %d; want 2 then exactly the 3 unfinished", n1, n2)
	}
}

// TestBackpressureCap pins satellite behaviour: a client stuck in
// admission backpressure gives up with a clear error once its
// cumulative wait passes the cap, instead of retrying 429s forever.
func TestBackpressureCap(t *testing.T) {
	// No dispatch loops: the queue never drains, so the 429 repeats.
	d := New(engine.NewWith(0, nil, engine.WithBackend(&countingBackend{})), nil, Config{MaxQueue: 1})
	srv := httptest.NewServer(d.Handler())
	defer srv.Close()

	cl := NewClient(srv.URL, WithClientID("c"), WithBackpressureCap(500*time.Millisecond))
	start := time.Now()
	res, err := cl.Run(nil, svcJobs(2, 0))
	if err == nil || !strings.Contains(err.Error(), "backpressured for") {
		t.Fatalf("capped run error = %v, want a backpressure give-up", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("give-up took %s, want prompt once the cap is exceeded", elapsed)
	}
	for i, r := range res {
		if !r.Skipped || r.Err == nil {
			t.Fatalf("job %d = %+v, want skipped with the cap error", i, r)
		}
	}
}

// TestRequeueOnSkip pins the dispatch retry path: a batch the backend
// skips (no error — e.g. a momentarily empty fleet) is requeued and
// succeeds on a later attempt, invisibly to the client beyond latency,
// and the retries are counted in stats.
func TestRequeueOnSkip(t *testing.T) {
	sb := &skipBackend{fail: 1}
	d := New(engine.NewWith(0, nil, engine.WithBackend(sb)), nil, Config{Dispatchers: 1})
	srv := startDaemon(t, d)

	res, err := NewClient(srv.URL, WithClientID("c")).Run(nil, svcJobs(3, 0))
	if err != nil {
		t.Fatalf("run through a skipping backend: %v", err)
	}
	for i, r := range res {
		if r.Err != nil || r.Skipped {
			t.Fatalf("job %d = %+v, want success after requeue", i, r)
		}
	}
	if st := d.Stats(); st.Requeued != 3 {
		t.Fatalf("stats requeued = %d, want 3", st.Requeued)
	}
}

// TestDispatchAttemptCap pins the requeue bound: against a backend that
// never stops skipping, each job resolves as a terminal error naming
// the attempt budget — not a livelock, and not an endlessly resumable
// skip.
func TestDispatchAttemptCap(t *testing.T) {
	sb := &skipBackend{fail: 1 << 30}
	d := New(engine.NewWith(0, nil, engine.WithBackend(sb)), nil, Config{Dispatchers: 1})
	srv := startDaemon(t, d)

	jobs := svcJobs(2, 0)
	req := SubmitRequest{Protocol: ProtocolVersion, Client: "c", Jobs: make([]remote.WireJob, len(jobs))}
	for i, j := range jobs {
		req.Jobs[i] = remote.WireJob{Key: engine.JobKey(j).String(), Job: j}
	}
	body, _ := json.Marshal(req)
	resp, err := http.Post(srv.URL+SubmitPath, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()

	dec := json.NewDecoder(resp.Body)
	results := 0
	for {
		var ev Event
		if err := dec.Decode(&ev); err != nil {
			t.Fatalf("stream decode: %v", err)
		}
		if ev.Type == EventDone {
			break
		}
		if ev.Type != EventResult {
			continue
		}
		results++
		if ev.Skipped {
			t.Fatalf("capped job still marked skipped on the wire: %+v", ev)
		}
		if !strings.Contains(ev.Result.Err, "gave up after") {
			t.Fatalf("capped job error = %q, want the attempt budget named", ev.Result.Err)
		}
	}
	if results != 2 {
		t.Fatalf("%d results, want 2 terminal failures", results)
	}
}

// TestJobTimeout pins the per-job execution deadline: a wedged dispatch
// is cut off at the batch-scaled deadline, its jobs requeue, and the
// retry succeeds once the backend behaves.
func TestJobTimeout(t *testing.T) {
	// The gated backend's first run blocks until ctx death (the gate
	// never closes), then skips; subsequent runs succeed instantly.
	cb := &countingBackend{gate: make(chan struct{})}
	d := New(engine.NewWith(0, nil, engine.WithBackend(cb)), nil,
		Config{Dispatchers: 1, JobTimeout: 50 * time.Millisecond})
	srv := startDaemon(t, d)

	start := time.Now()
	res, err := NewClient(srv.URL, WithClientID("c")).Run(nil, svcJobs(2, 0))
	if err != nil {
		t.Fatalf("run through a wedged first dispatch: %v", err)
	}
	for i, r := range res {
		if r.Err != nil || r.Skipped {
			t.Fatalf("job %d = %+v, want success after the deadline requeue", i, r)
		}
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("deadline recovery took %s", elapsed)
	}
	if st := d.Stats(); st.Requeued != 2 {
		t.Fatalf("stats requeued = %d, want 2 (the deadlined batch)", st.Requeued)
	}
}
