package report

import (
	"strings"
	"testing"
)

func sample() *Table {
	t := NewTable("Demo", "name", "value")
	t.AddRow("alpha", "1.00")
	t.AddRow("beta-long-name", "2")
	return t
}

func TestTableString(t *testing.T) {
	s := sample().String()
	if !strings.Contains(s, "== Demo ==") {
		t.Error("missing title")
	}
	if !strings.Contains(s, "name") || !strings.Contains(s, "value") {
		t.Error("missing header")
	}
	if !strings.Contains(s, "alpha") || !strings.Contains(s, "beta-long-name") {
		t.Error("missing rows")
	}
	// Columns align: every line has the value column at the same offset.
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 5 { // title, header, separator, 2 rows
		t.Fatalf("%d lines, want 5: %q", len(lines), s)
	}
}

func TestTableRaggedRows(t *testing.T) {
	tb := NewTable("", "a", "b")
	tb.AddRow("only")
	tb.AddRow("x", "y", "z") // extra cell widens the table
	s := tb.String()
	if !strings.Contains(s, "z") {
		t.Error("extra cell dropped")
	}
}

func TestTableNoTitleNoHeader(t *testing.T) {
	tb := &Table{}
	tb.AddRow("cell")
	s := tb.String()
	if strings.Contains(s, "==") {
		t.Error("unexpected title")
	}
	if !strings.Contains(s, "cell") {
		t.Error("missing row")
	}
}

func TestCSV(t *testing.T) {
	tb := NewTable("t", "a", "b")
	tb.AddRow("x,y", `q"u`)
	got := tb.CSV()
	want := "a,b\n\"x,y\",\"q\"\"u\"\n"
	if got != want {
		t.Errorf("CSV = %q, want %q", got, want)
	}
}

func TestAddRowf(t *testing.T) {
	tb := NewTable("t", "a", "b")
	tb.AddRowf("%s %.1f", "x", 2.0)
	if len(tb.Rows) != 1 || tb.Rows[0][0] != "x" || tb.Rows[0][1] != "2.0" {
		t.Errorf("AddRowf rows = %v", tb.Rows)
	}
}

func TestFormatters(t *testing.T) {
	if F(1.23456) != "1.235" {
		t.Errorf("F = %q", F(1.23456))
	}
	if F2(1.23456) != "1.23" {
		t.Errorf("F2 = %q", F2(1.23456))
	}
}

func TestWriteToError(t *testing.T) {
	// String() must tolerate writer errors by returning empty.
	tb := sample()
	if tb.String() == "" {
		t.Error("String returned empty for valid table")
	}
}
