// Package report renders experiment results as aligned ASCII tables and
// CSV, matching the rows and series the paper's tables and figures show.
package report

import (
	"fmt"
	"io"
	"strings"
)

// Table is a simple column-aligned text table.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// NewTable returns a table with the given title and column headers.
func NewTable(title string, header ...string) *Table {
	return &Table{Title: title, Header: header}
}

// AddRow appends a row; missing cells render empty, extra cells widen the
// table.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// AddRowf appends a row of formatted cells.
func (t *Table) AddRowf(format string, args ...any) {
	t.AddRow(strings.Fields(fmt.Sprintf(format, args...))...)
}

// widths returns per-column display widths.
func (t *Table) widths() []int {
	n := len(t.Header)
	for _, r := range t.Rows {
		if len(r) > n {
			n = len(r)
		}
	}
	w := make([]int, n)
	update := func(cells []string) {
		for i, c := range cells {
			if len(c) > w[i] {
				w[i] = len(c)
			}
		}
	}
	update(t.Header)
	for _, r := range t.Rows {
		update(r)
	}
	return w
}

// WriteTo renders the table.
func (t *Table) WriteTo(w io.Writer) (int64, error) {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.Title)
	}
	ws := t.widths()
	line := func(cells []string) {
		for i := 0; i < len(ws); i++ {
			c := ""
			if i < len(cells) {
				c = cells[i]
			}
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", ws[i], c)
		}
		b.WriteString("\n")
	}
	if len(t.Header) > 0 {
		line(t.Header)
		sep := make([]string, len(ws))
		for i := range sep {
			sep[i] = strings.Repeat("-", ws[i])
		}
		line(sep)
	}
	for _, r := range t.Rows {
		line(r)
	}
	n, err := io.WriteString(w, b.String())
	return int64(n), err
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	if _, err := t.WriteTo(&b); err != nil {
		return ""
	}
	return b.String()
}

// CSV renders the table as comma-separated values (no escaping beyond
// quoting cells containing commas; experiment cells are plain numbers and
// identifiers).
func (t *Table) CSV() string {
	var b strings.Builder
	cell := func(c string) string {
		if strings.ContainsAny(c, ",\"\n") {
			return `"` + strings.ReplaceAll(c, `"`, `""`) + `"`
		}
		return c
	}
	row := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString(",")
			}
			b.WriteString(cell(c))
		}
		b.WriteString("\n")
	}
	if len(t.Header) > 0 {
		row(t.Header)
	}
	for _, r := range t.Rows {
		row(r)
	}
	return b.String()
}

// F formats a float with 3 decimal places, the harness's standard cell
// format.
func F(x float64) string { return fmt.Sprintf("%.3f", x) }

// F2 formats a float with 2 decimal places.
func F2(x float64) string { return fmt.Sprintf("%.2f", x) }
