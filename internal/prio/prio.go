// Package prio implements the POWER5 software-controlled thread priority
// mechanism characterized by the paper: the eight priority levels, the
// privilege rules and or-nop instruction encodings of Table 1, and the
// decode-slot allocation formula of Section 3.2,
//
//	R = 2^(|PrioP-PrioS|+1)
//
// under which the higher-priority thread receives R-1 of every R decode
// slots and the lower-priority thread the remaining one. The special cases
// documented in the paper are honoured: priority 0 switches a thread off,
// priority 7 is single-thread mode, and the (1,1) pair puts the core in
// low-power mode, decoding one instruction every 32 cycles.
package prio

import "fmt"

// Level is a software-controlled thread priority (0-7).
type Level int

// The eight priority levels of Table 1.
const (
	ThreadOff  Level = 0 // thread shut off (hypervisor only)
	VeryLow    Level = 1 // supervisor
	Low        Level = 2 // user
	MediumLow  Level = 3 // user
	Medium     Level = 4 // user; the default
	MediumHigh Level = 5 // supervisor
	High       Level = 6 // supervisor
	VeryHigh   Level = 7 // single-thread mode (hypervisor only)
)

var levelNames = [8]string{
	"thread-off", "very-low", "low", "medium-low",
	"medium", "medium-high", "high", "very-high",
}

// String returns the Table 1 name of the level.
func (l Level) String() string {
	if l.Valid() {
		return levelNames[l]
	}
	return fmt.Sprintf("level(%d)", int(l))
}

// Valid reports whether l is one of the eight architected levels.
func (l Level) Valid() bool { return l >= 0 && l <= 7 }

// Privilege is the execution privilege attempting a priority change.
type Privilege int

// Privilege levels, least to most privileged.
const (
	User Privilege = iota
	Supervisor
	Hypervisor
)

var privNames = [3]string{"user", "supervisor", "hypervisor"}

// String returns the privilege name.
func (p Privilege) String() string {
	if p >= User && p <= Hypervisor {
		return privNames[p]
	}
	return fmt.Sprintf("privilege(%d)", int(p))
}

// Permitted reports whether the given privilege may set the given level,
// per Table 1: user may set 2-4, supervisor 1-6, hypervisor 0-7.
func Permitted(l Level, p Privilege) bool {
	if !l.Valid() {
		return false
	}
	switch p {
	case User:
		return l >= Low && l <= Medium
	case Supervisor:
		return l >= VeryLow && l <= High
	case Hypervisor:
		return true
	default:
		return false
	}
}

// Apply implements the hardware behaviour of a priority-setting or-nop: if
// the privilege permits the level, the new level is returned; otherwise the
// instruction acts as a plain nop and the current level is kept.
func Apply(current, requested Level, p Privilege) Level {
	if Permitted(requested, p) {
		return requested
	}
	return current
}

// OrNopRegister returns the register number X of the `or X,X,X` encoding
// that sets the given level (Table 1), and whether such an encoding exists.
// Priority 0 has no or-nop form (it requires a hypervisor call).
func OrNopRegister(l Level) (reg int, ok bool) {
	switch l {
	case VeryLow:
		return 31, true
	case Low:
		return 1, true
	case MediumLow:
		return 6, true
	case Medium:
		return 2, true
	case MediumHigh:
		return 5, true
	case High:
		return 3, true
	case VeryHigh:
		return 7, true
	default:
		return 0, false
	}
}

// DecodeOrNop maps an `or X,X,X` register number to the priority level it
// requests. Unrecognized registers are plain nops (ok = false).
func DecodeOrNop(reg int) (Level, bool) {
	switch reg {
	case 31:
		return VeryLow, true
	case 1:
		return Low, true
	case 6:
		return MediumLow, true
	case 2:
		return Medium, true
	case 5:
		return MediumHigh, true
	case 3:
		return High, true
	case 7:
		return VeryHigh, true
	default:
		return 0, false
	}
}

// R returns the decode-slot window of equation (1): R = 2^(|diff|+1).
// The higher-priority thread receives R-1 of every R slots.
func R(diff int) int {
	if diff < 0 {
		diff = -diff
	}
	if diff > 6 {
		diff = 6 // |7-1| is the largest architected difference
	}
	return 1 << (diff + 1)
}

// Share returns the long-run fraction of decode slots granted to the
// primary thread when the priority difference is diff = PrioP - PrioS.
func Share(diff int) float64 {
	r := R(diff)
	if diff >= 0 {
		return float64(r-1) / float64(r)
	}
	return 1 / float64(r)
}

// LowPowerPeriod is the decode period of the (1,1) low-power mode: the core
// decodes a single instruction once every 32 cycles.
const LowPowerPeriod = 32

// Grant is the decode-slot decision for one cycle.
type Grant struct {
	// Thread is the hardware thread granted the decode slot (0 or 1).
	// Meaningless when None is true.
	Thread int
	// None means no thread may decode this cycle (low-power gaps, or both
	// threads off).
	None bool
	// SingleInstr restricts the granted slot to a single instruction
	// instead of a full decode group (low-power mode).
	SingleInstr bool
}

// Allocator hands out decode slots cycle by cycle according to the current
// priority pair. It is deterministic: the higher-priority thread receives
// slots first within each window of R.
//
// The zero value is an allocator with both threads at Medium (4,4) — the
// hardware default — because Go zero values should be useful; call Set to
// change priorities.
type Allocator struct {
	prio [2]Level
	init bool // true once priorities have been explicitly set
	pos  int  // position within the current window
}

// NewAllocator returns an allocator with the given initial priorities.
func NewAllocator(p0, p1 Level) *Allocator {
	a := &Allocator{}
	a.Set(0, p0)
	a.Set(1, p1)
	return a
}

func (a *Allocator) ensureInit() {
	if !a.init {
		a.prio = [2]Level{Medium, Medium}
		a.init = true
	}
}

// Set changes the priority of thread t. Changing priorities restarts the
// allocation window, mirroring the immediate effect of the or-nop.
// Set panics on an invalid level or thread; callers are expected to have
// validated requests through Apply/Permitted.
func (a *Allocator) Set(t int, l Level) {
	a.ensureInit()
	if t != 0 && t != 1 {
		panic(fmt.Sprintf("prio: thread %d out of range", t))
	}
	if !l.Valid() {
		panic(fmt.Sprintf("prio: invalid level %d", int(l)))
	}
	if a.prio[t] == l {
		return // re-asserting the current level does not restart the window
	}
	a.prio[t] = l
	a.pos = 0
}

// Priority returns the current level of thread t.
func (a *Allocator) Priority(t int) Level {
	a.ensureInit()
	return a.prio[t]
}

// NeverGranted is returned by NextGrantDelta for a thread the allocator
// will never grant under the current priority pair (a switched-off
// thread, or any thread while both are off).
const NeverGranted = ^uint64(0)

// NextGrantDelta returns how many Next calls from the current position
// until thread t is granted a decode slot: 0 means the very next call
// grants t. It does not advance the allocator. The simulator's idle-cycle
// fast-forward uses it to bound a skip at the next cycle a runnable
// thread would receive decode bandwidth.
func (a *Allocator) NextGrantDelta(t int) uint64 {
	a.ensureInit()
	if t != 0 && t != 1 {
		panic(fmt.Sprintf("prio: thread %d out of range", t))
	}
	p0, p1 := a.prio[0], a.prio[1]
	switch {
	case p0 == ThreadOff && p1 == ThreadOff:
		return NeverGranted
	case p0 == ThreadOff:
		if t == 1 {
			return 0
		}
		return NeverGranted
	case p1 == ThreadOff:
		if t == 0 {
			return 0
		}
		return NeverGranted
	case p0 == VeryLow && p1 == VeryLow:
		m := uint64(2 * LowPowerPeriod)
		slot := uint64(0)
		if t == 1 {
			slot = LowPowerPeriod
		}
		return (slot + m - uint64(a.pos)) % m
	}
	diff := int(p0) - int(p1)
	if diff == 0 {
		return (uint64(t) + 2 - uint64(a.pos)) % 2
	}
	r := uint64(R(diff))
	hi := 0
	if diff < 0 {
		hi = 1
	}
	loDelta := (r - 1 - uint64(a.pos)) % r
	if t == hi {
		if loDelta == 0 {
			return 1
		}
		return 0
	}
	return loDelta
}

// NextGrantAligned returns the smallest d >= 0 with d ≡ offset (mod
// period) such that the d-th Next call from the current position would
// grant thread t a decode slot (d = 0 means the very next call). It does
// not advance the allocator.
//
// The event-wheel fast-forward uses it to post a miss-throttled thread's
// next *effective* decode event: while the balance monitor throttles
// decode, only one Observe in every ThrottleRate is stall-free, so the
// thread's next slot that can actually decode is the first grant aligned
// with the throttle countdown (offset = countdown, period = rate).
//
// It returns NeverGranted when no aligned grant exists: the grant window
// and the throttle period are both periodic, so a phase-locked pair
// (e.g. an equal-priority alternation whose parity never meets the
// throttle-free cycles) never lines up, and the thread decodes again
// only after some other event changes the pattern.
func (a *Allocator) NextGrantAligned(t int, offset, period uint64) uint64 {
	a.ensureInit()
	if t != 0 && t != 1 {
		panic(fmt.Sprintf("prio: thread %d out of range", t))
	}
	if period == 0 {
		panic("prio: period must be positive")
	}
	p0, p1 := a.prio[0], a.prio[1]
	var w uint64 // grant-pattern window length
	switch {
	case p0 == ThreadOff && p1 == ThreadOff:
		return NeverGranted
	case p0 == ThreadOff, p1 == ThreadOff:
		w = 1
	case p0 == VeryLow && p1 == VeryLow:
		w = 2 * LowPowerPeriod
	default:
		if diff := int(p0) - int(p1); diff == 0 {
			w = 2
		} else {
			w = uint64(R(diff))
		}
	}
	// d walks offset, offset+period, ...; d mod w revisits its first
	// residue after w/gcd(w,period) steps, so scanning one full residue
	// cycle decides existence.
	steps := w / gcd(w, period)
	for k := uint64(0); k < steps; k++ {
		d := offset + k*period
		if a.grantedAt(t, (uint64(a.pos)+d)%w) {
			return d
		}
	}
	return NeverGranted
}

// grantedAt reports whether thread t receives the decode slot when the
// allocator is at window position pos, mirroring Next without advancing.
func (a *Allocator) grantedAt(t int, pos uint64) bool {
	p0, p1 := a.prio[0], a.prio[1]
	switch {
	case p0 == ThreadOff && p1 == ThreadOff:
		return false
	case p0 == ThreadOff:
		return t == 1
	case p1 == ThreadOff:
		return t == 0
	case p0 == VeryLow && p1 == VeryLow:
		if t == 0 {
			return pos == 0
		}
		return pos == LowPowerPeriod
	}
	diff := int(p0) - int(p1)
	if diff == 0 {
		return pos == uint64(t)
	}
	r := uint64(R(diff))
	hi := 0
	if diff < 0 {
		hi = 1
	}
	if t == hi {
		return pos != r-1
	}
	return pos == r-1
}

// gcd returns the greatest common divisor of a and b.
func gcd(a, b uint64) uint64 {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// SkipGrants advances the allocator by n cycles in closed form and
// returns the number of decode slots each thread would have been granted
// over those cycles, exactly as n successive Next calls would have. The
// fast-forward path uses it to account decode-slot statistics across a
// skipped idle window without walking cycle by cycle.
func (a *Allocator) SkipGrants(n uint64) [2]uint64 {
	a.ensureInit()
	var g [2]uint64
	if n == 0 {
		return g
	}
	p0, p1 := a.prio[0], a.prio[1]
	switch {
	case p0 == ThreadOff && p1 == ThreadOff:
		return g
	case p0 == ThreadOff:
		g[1] = n
		return g
	case p1 == ThreadOff:
		g[0] = n
		return g
	case p0 == VeryLow && p1 == VeryLow:
		m := uint64(2 * LowPowerPeriod)
		p := uint64(a.pos)
		g[0] = hitCount(n, p, 0, m)
		g[1] = hitCount(n, p, LowPowerPeriod, m)
		a.pos = int((p + n) % m)
		return g
	}
	diff := int(p0) - int(p1)
	if diff == 0 {
		p := uint64(a.pos)
		g[0] = hitCount(n, p, 0, 2)
		g[1] = n - g[0]
		a.pos = int((p + n) % 2)
		return g
	}
	r := uint64(R(diff))
	hi, lo := 0, 1
	if diff < 0 {
		hi, lo = 1, 0
	}
	p := uint64(a.pos)
	g[lo] = hitCount(n, p, r-1, r)
	g[hi] = n - g[lo]
	a.pos = int((p + n) % r)
	return g
}

// hitCount counts k in [0,n) with (p+k) mod m == r.
func hitCount(n, p, r, m uint64) uint64 {
	off := (r + m - p%m) % m
	if n <= off {
		return 0
	}
	return (n-off-1)/m + 1
}

// Next returns the decode grant for the next cycle and advances the
// allocator.
func (a *Allocator) Next() Grant {
	a.ensureInit()
	p0, p1 := a.prio[0], a.prio[1]
	switch {
	case p0 == ThreadOff && p1 == ThreadOff:
		return Grant{None: true}
	case p0 == ThreadOff:
		return Grant{Thread: 1}
	case p1 == ThreadOff:
		return Grant{Thread: 0}
	case p0 == VeryLow && p1 == VeryLow:
		// Low-power mode: one single-instruction decode every 32 cycles,
		// alternating between threads.
		pos := a.pos
		a.pos = (a.pos + 1) % (2 * LowPowerPeriod)
		if pos == 0 {
			return Grant{Thread: 0, SingleInstr: true}
		}
		if pos == LowPowerPeriod {
			return Grant{Thread: 1, SingleInstr: true}
		}
		return Grant{None: true}
	}
	diff := int(p0) - int(p1)
	if diff == 0 {
		// Equal priorities: strict alternation (R = 2).
		pos := a.pos
		a.pos = (a.pos + 1) % 2
		return Grant{Thread: pos}
	}
	r := R(diff)
	hi, lo := 0, 1
	if diff < 0 {
		hi, lo = 1, 0
	}
	pos := a.pos
	a.pos = (a.pos + 1) % r
	if pos == r-1 {
		return Grant{Thread: lo}
	}
	return Grant{Thread: hi}
}
