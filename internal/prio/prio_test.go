package prio

import (
	"testing"
	"testing/quick"
)

func TestLevelString(t *testing.T) {
	if Medium.String() != "medium" || ThreadOff.String() != "thread-off" || VeryHigh.String() != "very-high" {
		t.Errorf("unexpected names: %v %v %v", Medium, ThreadOff, VeryHigh)
	}
	if Level(9).String() != "level(9)" {
		t.Errorf("invalid level name = %q", Level(9).String())
	}
}

func TestPrivilegeString(t *testing.T) {
	for p, want := range map[Privilege]string{User: "user", Supervisor: "supervisor", Hypervisor: "hypervisor"} {
		if p.String() != want {
			t.Errorf("%d.String() = %q, want %q", p, p.String(), want)
		}
	}
	if Privilege(7).String() != "privilege(7)" {
		t.Errorf("invalid privilege = %q", Privilege(7).String())
	}
}

// TestPermittedTable1 checks the complete privilege matrix of Table 1.
func TestPermittedTable1(t *testing.T) {
	type row struct {
		l          Level
		user, sup  bool
		hypervisor bool
	}
	rows := []row{
		{ThreadOff, false, false, true},
		{VeryLow, false, true, true},
		{Low, true, true, true},
		{MediumLow, true, true, true},
		{Medium, true, true, true},
		{MediumHigh, false, true, true},
		{High, false, true, true},
		{VeryHigh, false, false, true},
	}
	for _, r := range rows {
		if got := Permitted(r.l, User); got != r.user {
			t.Errorf("Permitted(%v, User) = %v, want %v", r.l, got, r.user)
		}
		if got := Permitted(r.l, Supervisor); got != r.sup {
			t.Errorf("Permitted(%v, Supervisor) = %v, want %v", r.l, got, r.sup)
		}
		if got := Permitted(r.l, Hypervisor); got != r.hypervisor {
			t.Errorf("Permitted(%v, Hypervisor) = %v, want %v", r.l, got, r.hypervisor)
		}
	}
	if Permitted(Level(8), Hypervisor) {
		t.Error("Permitted accepted invalid level 8")
	}
	if Permitted(Medium, Privilege(9)) {
		t.Error("Permitted accepted invalid privilege")
	}
}

// TestApplyNopSemantics: insufficient privilege leaves priority unchanged,
// exactly like the hardware treating the or-nop as a plain nop.
func TestApplyNopSemantics(t *testing.T) {
	if got := Apply(Medium, High, User); got != Medium {
		t.Errorf("user setting High: got %v, want unchanged Medium", got)
	}
	if got := Apply(Medium, Low, User); got != Low {
		t.Errorf("user setting Low: got %v, want Low", got)
	}
	if got := Apply(Low, VeryLow, Supervisor); got != VeryLow {
		t.Errorf("supervisor setting VeryLow: got %v, want VeryLow", got)
	}
	if got := Apply(Low, ThreadOff, Supervisor); got != Low {
		t.Errorf("supervisor setting ThreadOff: got %v, want unchanged", got)
	}
	if got := Apply(Low, ThreadOff, Hypervisor); got != ThreadOff {
		t.Errorf("hypervisor setting ThreadOff: got %v, want ThreadOff", got)
	}
}

// TestOrNopEncodings checks the exact Table 1 or-nop register encodings.
func TestOrNopEncodings(t *testing.T) {
	want := map[Level]int{
		VeryLow: 31, Low: 1, MediumLow: 6, Medium: 2,
		MediumHigh: 5, High: 3, VeryHigh: 7,
	}
	for l, reg := range want {
		got, ok := OrNopRegister(l)
		if !ok || got != reg {
			t.Errorf("OrNopRegister(%v) = (%d,%v), want (%d,true)", l, got, ok, reg)
		}
		back, ok := DecodeOrNop(reg)
		if !ok || back != l {
			t.Errorf("DecodeOrNop(%d) = (%v,%v), want (%v,true)", reg, back, ok, l)
		}
	}
	if _, ok := OrNopRegister(ThreadOff); ok {
		t.Error("ThreadOff must have no or-nop encoding")
	}
	if _, ok := DecodeOrNop(4); ok {
		t.Error("or 4,4,4 is not a priority nop")
	}
}

func TestRFormula(t *testing.T) {
	// Paper example: priorities 6 and 2 -> diff 4 -> R = 32,
	// PThread decodes 31 times, SThread once.
	if got := R(4); got != 32 {
		t.Errorf("R(4) = %d, want 32", got)
	}
	for diff, want := range map[int]int{0: 2, 1: 4, 2: 8, 3: 16, 5: 64, -5: 64, 6: 128, -6: 128} {
		if got := R(diff); got != want {
			t.Errorf("R(%d) = %d, want %d", diff, got, want)
		}
	}
	// Differences beyond the architected maximum saturate.
	if got := R(9); got != 128 {
		t.Errorf("R(9) = %d, want saturation at 128", got)
	}
}

func TestShare(t *testing.T) {
	// Paper: at +4 a thread receives 31 of 32 slots (93.75% more than half);
	// at -4 only 1 of 32.
	if got := Share(4); got != 31.0/32 {
		t.Errorf("Share(4) = %v, want 31/32", got)
	}
	if got := Share(-4); got != 1.0/32 {
		t.Errorf("Share(-4) = %v, want 1/32", got)
	}
	if got := Share(0); got != 0.5 {
		t.Errorf("Share(0) = %v, want 0.5", got)
	}
}

// countGrants runs the allocator n cycles and counts grants per thread.
func countGrants(a *Allocator, n int) (c [2]int, none int, single int) {
	for i := 0; i < n; i++ {
		g := a.Next()
		if g.None {
			none++
			continue
		}
		c[g.Thread]++
		if g.SingleInstr {
			single++
		}
	}
	return
}

func TestAllocatorEqualPrioritiesAlternate(t *testing.T) {
	a := NewAllocator(Medium, Medium)
	last := -1
	for i := 0; i < 10; i++ {
		g := a.Next()
		if g.None || g.SingleInstr {
			t.Fatal("unexpected None/SingleInstr at (4,4)")
		}
		if g.Thread == last {
			t.Fatalf("cycle %d: thread %d granted twice in a row at equal priority", i, g.Thread)
		}
		last = g.Thread
	}
}

func TestAllocatorPaperExample62(t *testing.T) {
	// Priorities (6,2): R = 32; thread 0 gets 31 slots, thread 1 gets 1.
	a := NewAllocator(High, Low)
	c, none, _ := countGrants(a, 32)
	if none != 0 {
		t.Fatalf("got %d empty slots, want 0", none)
	}
	if c[0] != 31 || c[1] != 1 {
		t.Errorf("grants = %v, want [31 1]", c)
	}
}

func TestAllocatorNegativeDiff(t *testing.T) {
	a := NewAllocator(Low, High) // diff -4 from thread 0's view
	c, _, _ := countGrants(a, 64)
	if c[0] != 2 || c[1] != 62 {
		t.Errorf("grants over 64 cycles = %v, want [2 62]", c)
	}
}

func TestAllocatorThreadOff(t *testing.T) {
	a := NewAllocator(ThreadOff, Medium)
	c, none, _ := countGrants(a, 20)
	if none != 0 || c[0] != 0 || c[1] != 20 {
		t.Errorf("with thread 0 off: grants=%v none=%d, want all to thread 1", c, none)
	}
	a = NewAllocator(VeryHigh, ThreadOff) // ST mode
	c, none, _ = countGrants(a, 20)
	if none != 0 || c[0] != 20 || c[1] != 0 {
		t.Errorf("ST mode: grants=%v none=%d, want all to thread 0", c, none)
	}
	a = NewAllocator(ThreadOff, ThreadOff)
	_, none, _ = countGrants(a, 20)
	if none != 20 {
		t.Errorf("both off: none=%d, want 20", none)
	}
}

// TestAllocatorLowPower checks the (1,1) special case: the core decodes a
// single instruction once every 32 cycles, alternating threads.
func TestAllocatorLowPower(t *testing.T) {
	a := NewAllocator(VeryLow, VeryLow)
	c, none, single := countGrants(a, 2*LowPowerPeriod)
	if c[0] != 1 || c[1] != 1 {
		t.Errorf("low-power grants over 64 cycles = %v, want [1 1]", c)
	}
	if single != 2 {
		t.Errorf("single-instruction grants = %d, want 2", single)
	}
	if none != 62 {
		t.Errorf("empty slots = %d, want 62", none)
	}
}

// TestAllocatorOneVsOthers: priority 1 against a higher priority follows the
// plain R formula (transparency comes from large differences).
func TestAllocatorOneVersusSix(t *testing.T) {
	a := NewAllocator(High, VeryLow) // diff +5 -> R=64
	c, _, _ := countGrants(a, 64)
	if c[0] != 63 || c[1] != 1 {
		t.Errorf("grants = %v, want [63 1]", c)
	}
}

func TestAllocatorSetResetsWindow(t *testing.T) {
	a := NewAllocator(High, Low)
	a.Next() // consume part of the window
	a.Set(1, High)
	// Now equal: strict alternation starting from thread 0.
	g0, g1 := a.Next(), a.Next()
	if g0.Thread == g1.Thread {
		t.Error("window not reset after Set: same thread twice")
	}
	if a.Priority(1) != High {
		t.Errorf("Priority(1) = %v, want High", a.Priority(1))
	}
}

func TestAllocatorZeroValueIsMedium(t *testing.T) {
	var a Allocator
	if a.Priority(0) != Medium || a.Priority(1) != Medium {
		t.Errorf("zero-value priorities = (%v,%v), want (medium,medium)", a.Priority(0), a.Priority(1))
	}
	g := a.Next()
	if g.None {
		t.Error("zero-value allocator granted no slot")
	}
}

func TestAllocatorPanics(t *testing.T) {
	check := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	a := NewAllocator(Medium, Medium)
	check("bad thread", func() { a.Set(2, Medium) })
	check("bad level", func() { a.Set(0, Level(8)) })
}

// Property: over one full window of R cycles, the high-priority thread gets
// exactly R-1 slots and the other exactly 1, for every valid unequal pair
// not involving levels 0 and the (1,1) case.
func TestAllocatorWindowProperty(t *testing.T) {
	f := func(p0raw, p1raw uint8) bool {
		p0 := Level(p0raw%7) + 1 // 1..7
		p1 := Level(p1raw%7) + 1
		if p0 == p1 {
			return true
		}
		if p0 == VeryLow && p1 == VeryLow {
			return true
		}
		a := NewAllocator(p0, p1)
		r := R(int(p0) - int(p1))
		c, none, _ := countGrants(a, r)
		if none != 0 {
			return false
		}
		hi, lo := 0, 1
		if p1 > p0 {
			hi, lo = 1, 0
		}
		return c[hi] == r-1 && c[lo] == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: long-run grant fraction converges to Share(diff).
func TestAllocatorShareProperty(t *testing.T) {
	f := func(p0raw, p1raw uint8) bool {
		p0 := Level(p0raw%6) + 1 // 1..6
		p1 := Level(p1raw%6) + 1
		if p0 == VeryLow && p1 == VeryLow {
			return true
		}
		a := NewAllocator(p0, p1)
		diff := int(p0) - int(p1)
		n := R(diff) * 100
		c, _, _ := countGrants(a, n)
		got := float64(c[0]) / float64(n)
		want := Share(diff)
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestSkipGrantsMatchesNext proves the closed-form SkipGrants is
// bit-identical to stepping Next n times, for every priority pair,
// every reachable window position, and a spread of window lengths.
func TestSkipGrantsMatchesNext(t *testing.T) {
	lengths := []uint64{0, 1, 2, 3, 5, 31, 32, 33, 63, 64, 65, 127, 1000}
	for p0 := Level(0); p0 <= VeryHigh; p0++ {
		for p1 := Level(0); p1 <= VeryHigh; p1++ {
			// Visit every reachable position by warming up to 2*64 cycles.
			for warm := 0; warm < 2*LowPowerPeriod; warm++ {
				for _, n := range lengths {
					ref := NewAllocator(p0, p1)
					ff := NewAllocator(p0, p1)
					for i := 0; i < warm; i++ {
						ref.Next()
						ff.Next()
					}
					var want [2]uint64
					for i := uint64(0); i < n; i++ {
						g := ref.Next()
						if !g.None {
							want[g.Thread]++
						}
					}
					got := ff.SkipGrants(n)
					if got != want {
						t.Fatalf("(%v,%v) warm=%d n=%d: SkipGrants=%v stepped=%v", p0, p1, warm, n, got, want)
					}
					// After the skip both allocators must be in the same
					// window position: the next grants must agree.
					for i := 0; i < 3*LowPowerPeriod; i++ {
						if a, b := ref.Next(), ff.Next(); a != b {
							t.Fatalf("(%v,%v) warm=%d n=%d: diverged %d grants after skip: %v vs %v", p0, p1, warm, n, i, a, b)
						}
					}
				}
			}
		}
	}
}

// TestNextGrantAligned proves the throttled-grant closed form points at
// exactly the first Next call that both grants the thread and lands on
// an aligned cycle (d ≡ offset mod period), without advancing the
// allocator — for every priority pair, every reachable window position,
// and a spread of throttle geometries including the power-of-two rates
// that can phase-lock against the power-of-two grant windows.
func TestNextGrantAligned(t *testing.T) {
	periods := []uint64{1, 2, 3, 5, 8, 12, 32, 64}
	for p0 := Level(0); p0 <= VeryHigh; p0++ {
		for p1 := Level(0); p1 <= VeryHigh; p1++ {
			a := NewAllocator(p0, p1)
			for warm := 0; warm < 2*LowPowerPeriod; warm++ {
				for th := 0; th < 2; th++ {
					for _, period := range periods {
						for offset := uint64(0); offset < period; offset += 1 + period/4 {
							d := a.NextGrantAligned(th, offset, period)
							probe := NewAllocator(p0, p1)
							for i := 0; i < warm; i++ {
								probe.Next()
							}
							// Stepped search over several combined periods
							// (grant window ≤ 64, so lcm ≤ 64*period).
							want := NeverGranted
							for i := uint64(0); i < 2*64*period; i++ {
								g := probe.Next()
								if i >= offset && (i-offset)%period == 0 && !g.None && g.Thread == th {
									want = i
									break
								}
							}
							if d != want {
								t.Fatalf("(%v,%v) warm=%d thread=%d offset=%d period=%d: NextGrantAligned=%d stepped=%d",
									p0, p1, warm, th, offset, period, d, want)
							}
						}
					}
				}
				a.Next()
			}
		}
	}
}

// TestNextGrantAlignedPhaseLock pins the documented never-aligns case:
// equal priorities alternate with period 2, so a thread whose
// throttle-free cycles have the opposite parity is never granted one.
func TestNextGrantAlignedPhaseLock(t *testing.T) {
	a := NewAllocator(Medium, Medium)
	// From position 0 the next grant goes to thread 0 (delta 0), thread 1
	// at delta 1. With period 8 and offset 1, thread 0's aligned cycles
	// are odd deltas — all thread-1 slots.
	if d := a.NextGrantAligned(0, 1, 8); d != NeverGranted {
		t.Errorf("thread 0 offset 1: want NeverGranted, got %d", d)
	}
	if d := a.NextGrantAligned(1, 1, 8); d != 1 {
		t.Errorf("thread 1 offset 1: want 1, got %d", d)
	}
	if d := a.NextGrantAligned(0, 2, 8); d != 2 {
		t.Errorf("thread 0 offset 2: want 2, got %d", d)
	}
}

// TestNextGrantDelta proves NextGrantDelta points at exactly the next
// Next call granting the thread, without advancing the allocator.
func TestNextGrantDelta(t *testing.T) {
	for p0 := Level(0); p0 <= VeryHigh; p0++ {
		for p1 := Level(0); p1 <= VeryHigh; p1++ {
			a := NewAllocator(p0, p1)
			for warm := 0; warm < 3*LowPowerPeriod; warm++ {
				for th := 0; th < 2; th++ {
					d := a.NextGrantDelta(th)
					probe := NewAllocator(p0, p1)
					for i := 0; i < warm; i++ {
						probe.Next()
					}
					// Find the stepped delta, bounded by two low-power windows.
					want := NeverGranted
					for i := uint64(0); i < 2*2*LowPowerPeriod; i++ {
						if g := probe.Next(); !g.None && g.Thread == th {
							want = i
							break
						}
					}
					if d != want {
						t.Fatalf("(%v,%v) warm=%d thread=%d: NextGrantDelta=%d stepped=%d", p0, p1, warm, th, d, want)
					}
				}
				a.Next()
			}
		}
	}
}
