package apps

import (
	"reflect"
	"testing"

	"power5prio/internal/fame"
	"power5prio/internal/prio"
)

func quickCfg() Config {
	cfg := DefaultConfig()
	cfg.Scale = 0.2
	cfg.Iterations = 2
	cfg.Warmup = 1
	return cfg
}

func TestDefaultConfigValid(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("DefaultConfig invalid: %v", err)
	}
}

func TestConfigValidateRejects(t *testing.T) {
	mut := []func(*Config){
		func(c *Config) { c.Iterations = 0 },
		func(c *Config) { c.Warmup = -1 },
		func(c *Config) { c.Scale = 0 },
		func(c *Config) { c.MaxCycles = 0 },
		func(c *Config) { c.Chip.ExperimentCore = 9 },
	}
	for i, m := range mut {
		cfg := DefaultConfig()
		m(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestKernelsValid(t *testing.T) {
	if err := FFTKernel(1.0).Validate(); err != nil {
		t.Errorf("FFTKernel invalid: %v", err)
	}
	if err := LUKernel(1.0).Validate(); err != nil {
		t.Errorf("LUKernel invalid: %v", err)
	}
	// Scaling floors at 8 iterations.
	if got := FFTKernel(0.000001).Iters; got != 8 {
		t.Errorf("scaled FFT iters = %d, want floor 8", got)
	}
}

func TestSingleThreadBaseline(t *testing.T) {
	st, err := SingleThread(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if st.FFT <= 0 || st.LU <= 0 {
		t.Fatalf("non-positive stage times: %+v", st)
	}
	if st.Iter != st.FFT+st.LU {
		t.Errorf("sequential iteration %v != FFT %v + LU %v", st.Iter, st.FFT, st.LU)
	}
	// The paper's stage imbalance: FFT is several times LU.
	if st.FFT < 3*st.LU {
		t.Errorf("stage imbalance too small: FFT %v vs LU %v", st.FFT, st.LU)
	}
}

func TestRunPipelineBasics(t *testing.T) {
	cfg := quickCfg()
	res, err := Run(cfg, prio.Medium, prio.Medium)
	if err != nil {
		t.Fatal(err)
	}
	if res.TimedOut {
		t.Fatal("timed out")
	}
	if len(res.PerIteration) != cfg.Iterations {
		t.Fatalf("%d measured iterations, want %d", len(res.PerIteration), cfg.Iterations)
	}
	for i, it := range res.PerIteration {
		if it.Iter < it.FFT || it.Iter < it.LU {
			t.Errorf("iteration %d: barrier time %v below a stage (%v, %v)", i, it.Iter, it.FFT, it.LU)
		}
	}
	if res.Mean.Iter <= 0 {
		t.Error("zero mean iteration")
	}
}

func TestRunInvalidConfig(t *testing.T) {
	cfg := quickCfg()
	cfg.Iterations = 0
	if _, err := Run(cfg, prio.Medium, prio.Medium); err == nil {
		t.Error("Run accepted invalid config")
	}
	if _, err := SingleThread(cfg); err == nil {
		t.Error("SingleThread accepted invalid config")
	}
}

// TestEarlyFinisherWaits: at (4,4) LU finishes long before FFT; the
// iteration must equal the FFT time (LU blocks at the barrier with its
// thread off, rather than spinning at full priority).
func TestEarlyFinisherWaits(t *testing.T) {
	res, err := Run(quickCfg(), prio.Medium, prio.Medium)
	if err != nil {
		t.Fatal(err)
	}
	if res.Mean.Iter != res.Mean.FFT {
		t.Errorf("iteration %v != FFT %v: FFT must be the long pole at (4,4)", res.Mean.Iter, res.Mean.FFT)
	}
	if res.Mean.LU >= res.Mean.FFT {
		t.Errorf("LU %v not shorter than FFT %v at (4,4)", res.Mean.LU, res.Mean.FFT)
	}
}

// TestPriorityRebalances: FFT at higher priority runs faster than at
// (4,4), and LU slows correspondingly.
func TestPriorityRebalances(t *testing.T) {
	base, err := Run(quickCfg(), prio.Medium, prio.Medium)
	if err != nil {
		t.Fatal(err)
	}
	up, err := Run(quickCfg(), prio.MediumHigh, prio.Medium)
	if err != nil {
		t.Fatal(err)
	}
	if up.Mean.FFT >= base.Mean.FFT {
		t.Errorf("FFT at (5,4) %v not faster than at (4,4) %v", up.Mean.FFT, base.Mean.FFT)
	}
	if up.Mean.LU <= base.Mean.LU {
		t.Errorf("LU at (5,4) %v not slower than at (4,4) %v", up.Mean.LU, base.Mean.LU)
	}
}

func TestTimeoutReported(t *testing.T) {
	cfg := quickCfg()
	cfg.MaxCycles = 100
	res, err := Run(cfg, prio.Medium, prio.Medium)
	if err != nil {
		t.Fatal(err)
	}
	if !res.TimedOut {
		t.Error("expected timeout with a 100-cycle budget")
	}
}

// TestPipelineFastForwardEquivalence: Run and SingleThread produce
// results identical to pure cycle stepping when the barrier loop uses
// Chip.AdvanceToNextEvent — stage times, per-iteration series and the timeout
// path all match exactly (PR-4's skip-legality invariant extended to
// the apps layer).
func TestPipelineFastForwardEquivalence(t *testing.T) {
	runBoth := func(do func() any) (ff, stepped any) {
		prev := fame.SetFastForward(true)
		ff = do()
		fame.SetFastForward(false)
		stepped = do()
		fame.SetFastForward(prev)
		return ff, stepped
	}

	for _, pp := range []struct{ pf, pl prio.Level }{
		{prio.Medium, prio.Medium},
		{prio.MediumHigh, prio.Medium},
		{prio.Low, prio.High},
	} {
		ff, stepped := runBoth(func() any {
			res, err := Run(quickCfg(), pp.pf, pp.pl)
			if err != nil {
				t.Fatal(err)
			}
			return res
		})
		if !reflect.DeepEqual(ff, stepped) {
			t.Errorf("Run(%d,%d): fast-forward diverged from stepping\nff      %+v\nstepped %+v",
				pp.pf, pp.pl, ff, stepped)
		}
	}

	ff, stepped := runBoth(func() any {
		st, err := SingleThread(quickCfg())
		if err != nil {
			t.Fatal(err)
		}
		return st
	})
	if !reflect.DeepEqual(ff, stepped) {
		t.Errorf("SingleThread: fast-forward diverged from stepping\nff      %+v\nstepped %+v", ff, stepped)
	}

	// Timeout path: an impossible cycle budget must time out identically.
	cfg := quickCfg()
	cfg.MaxCycles = 5_000
	ff, stepped = runBoth(func() any {
		res, err := Run(cfg, prio.Medium, prio.Medium)
		if err != nil {
			t.Fatal(err)
		}
		if !res.TimedOut {
			t.Fatal("tiny budget did not time out")
		}
		return res
	})
	if !reflect.DeepEqual(ff, stepped) {
		t.Errorf("timeout path diverged\nff      %+v\nstepped %+v", ff, stepped)
	}
}
