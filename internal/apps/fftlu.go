// Package apps implements the paper's execution-time case study (Section
// 5.4.1): a two-stage software pipeline where one thread computes an FFT
// over a spectral-analysis input and the sibling thread applies an LU
// decomposition to the previous iteration's output. The stages synchronize
// at a barrier each iteration; the iteration time is the slower stage's
// time. Software-controlled priorities re-balance the stages (Table 4).
package apps

import (
	"fmt"

	"power5prio/internal/core"
	"power5prio/internal/fame"
	"power5prio/internal/isa"
	"power5prio/internal/prio"
)

// Config controls a pipeline simulation.
type Config struct {
	Chip core.Config
	// Iterations measured (after Warmup).
	Iterations int
	// Warmup iterations excluded from averages.
	Warmup int
	// Scale multiplies stage lengths (1.0 = default; tests use less).
	Scale float64
	// MaxCycles bounds the whole simulation.
	MaxCycles uint64
}

// DefaultConfig returns the standard pipeline setup.
func DefaultConfig() Config {
	return Config{
		Chip:       core.DefaultConfig(),
		Iterations: 4,
		Warmup:     1,
		Scale:      1.0,
		MaxCycles:  400_000_000,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if err := c.Chip.Validate(); err != nil {
		return err
	}
	if c.Iterations <= 0 || c.Warmup < 0 {
		return fmt.Errorf("apps: need positive Iterations and non-negative Warmup")
	}
	if c.Scale <= 0 {
		return fmt.Errorf("apps: Scale must be positive")
	}
	if c.MaxCycles == 0 {
		return fmt.Errorf("apps: MaxCycles must be positive")
	}
	return nil
}

func scaled(n int, scale float64) int {
	v := int(float64(n) * scale)
	if v < 8 {
		v = 8
	}
	return v
}

// FFTKernel builds the FFT stage: independent floating-point butterflies
// over a cache-resident signal tile. Its decode demand (~0.75 of full
// bandwidth, short-lived groups) makes it lose ~10-15% when co-scheduled
// at equal priorities — the paper's 1.86s -> 2.05s — and recover that
// loss when prioritized.
func FFTKernel(scale float64) *isa.Kernel {
	b := isa.NewBuilder("fft")
	iter := b.Reg("iter")
	one := b.Reg("one")
	sig := b.Stream(isa.StreamSpec{Kind: isa.StreamStride, Footprint: 24 << 10, Stride: isa.CacheLineSize, Seed: 41})
	out := b.Stream(isa.StreamSpec{Kind: isa.StreamStride, Footprint: 24 << 10, Stride: isa.CacheLineSize, Seed: 41})
	// Eight independent butterflies: load, twiddle multiply, add, store.
	// Each is one dispatch group (typed LS slots) with a short lifetime,
	// so the FFT is decode-bound, not completion-table-bound.
	vs := make([]isa.Reg, 8)
	for i := range vs {
		vs[i] = b.Reg("v")
		b.Load(vs[i], sig, isa.Reg(-1))
		b.Op2(isa.OpFPMul, vs[i], vs[i], one)
		b.Op2(isa.OpFPAdd, vs[i], vs[i], one)
		b.Store(out, vs[i], isa.Reg(-1))
	}
	// Loop-carried twiddle recurrence: two chained multiplies give the
	// stage a latency floor, putting its decode demand near 0.8 of full
	// bandwidth (fully decode-bound stages cannot gain from priorities:
	// with complementary slot shares their finish time is invariant).
	z := b.Reg("z")
	b.Op2(isa.OpFPMul, z, z, one)
	b.Op2(isa.OpFPMul, z, z, one)
	b.Op2(isa.OpIntAdd, iter, iter, one)
	b.Branch(isa.BranchLoop, iter)
	return b.MustBuild(scaled(1600, scale))
}

// LUKernel builds the LU stage: dense integer/multiply row elimination,
// decode-bandwidth bound (demand ~1.0), so equal-priority co-scheduling
// roughly doubles its time — the paper's 0.26s -> 0.42s.
func LUKernel(scale float64) *isa.Kernel {
	b := isa.NewBuilder("lu")
	iter := b.Reg("iter")
	one := b.Reg("one")
	a := b.Reg("a")
	c := b.Reg("c")
	for i := 0; i < 10; i++ {
		b.Op2(isa.OpIntMul, a, iter, one) // pivot scale
		b.Op2(isa.OpIntAdd, c, iter, one) // row update (independent)
	}
	b.Op2(isa.OpIntAdd, iter, iter, one)
	b.Branch(isa.BranchLoop, iter)
	return b.MustBuild(scaled(235, scale))
}

// StageTimes is one pipeline iteration's outcome, in cycles.
type StageTimes struct {
	FFT  float64
	LU   float64
	Iter float64 // barrier-to-barrier time: max(FFT, LU)
}

// Result summarizes a pipeline run at one priority setting.
type Result struct {
	PrioFFT, PrioLU prio.Level
	Mean            StageTimes
	PerIteration    []StageTimes
	TimedOut        bool
}

// SingleThread measures the sequential baseline: FFT then LU on a single
// hardware thread (the paper's "single-thread mode" Table 4 row).
func SingleThread(cfg Config) (StageTimes, error) {
	if err := cfg.Validate(); err != nil {
		return StageTimes{}, err
	}
	measure := func(k *isa.Kernel) (float64, error) {
		ch := core.NewChip(cfg.Chip)
		ch.PlacePair(k, nil, prio.Medium, prio.Medium, prio.Supervisor)
		c := ch.ExperimentCore()
		target := uint64(cfg.Warmup + cfg.Iterations)
		skip := fame.FastForwardEnabled()
		for c.Repetitions(0) < target {
			if c.Cycle() > cfg.MaxCycles {
				return 0, fmt.Errorf("apps: single-thread run exceeded MaxCycles")
			}
			// Idle windows (memory stalls) jump in closed form; a skip
			// is bit-identical to stepping and can never retire the
			// loop branch, so the repetition count is re-read safely.
			// The bound lands any over-long skip exactly on the cycle
			// the stepped loop would call the timeout on.
			if skip && ch.AdvanceToNextEvent(cfg.MaxCycles+1) > 0 {
				continue
			}
			ch.Step()
		}
		ends := c.Stats(0).RepEndCycles
		var start uint64
		if cfg.Warmup > 0 {
			start = ends[cfg.Warmup-1]
		}
		span := ends[len(ends)-1] - start
		return float64(span) / float64(cfg.Iterations), nil
	}
	fft, err := measure(FFTKernel(cfg.Scale))
	if err != nil {
		return StageTimes{}, err
	}
	lu, err := measure(LUKernel(cfg.Scale))
	if err != nil {
		return StageTimes{}, err
	}
	return StageTimes{FFT: fft, LU: lu, Iter: fft + lu}, nil
}

// Run simulates the two-thread pipeline at the given priorities. Each
// iteration, both stages start at a barrier; a stage that finishes early
// has its hardware thread switched off (the OS blocks the waiting task),
// and both resume at the next barrier.
func Run(cfg Config, pf, pl prio.Level) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	ch := core.NewChip(cfg.Chip)
	c := ch.ExperimentCore()
	res := Result{PrioFFT: pf, PrioLU: pl}
	total := cfg.Warmup + cfg.Iterations
	skip := fame.FastForwardEnabled()
	for it := 0; it < total; it++ {
		// Barrier: fresh stage executions, priorities restored.
		ch.PlacePair(FFTKernel(cfg.Scale), LUKernel(cfg.Scale), pf, pl, prio.Supervisor)
		start := c.Cycle()
		var fftEnd, luEnd uint64
		// A stage end is a repetition boundary, so the stage checks run
		// only when a Repetitions counter advances, and the cycles in
		// between — including the tail where one thread is switched off
		// and the other stalls on memory — fast-forward through
		// AdvanceToNextEvent. A skip retires nothing, so it can neither complete
		// a repetition nor move a barrier decision; the bound lands any
		// over-long skip exactly on the stepped loop's timeout cycle.
		reps := c.Repetitions(0) + c.Repetitions(1)
		for fftEnd == 0 || luEnd == 0 {
			if c.Cycle() > cfg.MaxCycles {
				res.TimedOut = true
				return res, nil
			}
			if skip && ch.AdvanceToNextEvent(cfg.MaxCycles+1) > 0 {
				continue
			}
			ch.Step()
			if r := c.Repetitions(0) + c.Repetitions(1); r != reps {
				reps = r
			} else {
				continue
			}
			if fftEnd == 0 && c.Repetitions(0) >= 1 {
				fftEnd = c.Stats(0).RepEndCycles[0]
				if luEnd == 0 {
					c.SetPriority(0, prio.ThreadOff) // FFT waits at the barrier
				}
			}
			if luEnd == 0 && c.Repetitions(1) >= 1 {
				luEnd = c.Stats(1).RepEndCycles[0]
				if fftEnd == 0 {
					c.SetPriority(1, prio.ThreadOff) // LU waits at the barrier
				}
			}
		}
		st := StageTimes{
			FFT: float64(fftEnd - start),
			LU:  float64(luEnd - start),
		}
		st.Iter = st.FFT
		if st.LU > st.Iter {
			st.Iter = st.LU
		}
		if it >= cfg.Warmup {
			res.PerIteration = append(res.PerIteration, st)
			res.Mean.FFT += st.FFT
			res.Mean.LU += st.LU
			res.Mean.Iter += st.Iter
		}
	}
	n := float64(len(res.PerIteration))
	res.Mean.FFT /= n
	res.Mean.LU /= n
	res.Mean.Iter /= n
	return res, nil
}
