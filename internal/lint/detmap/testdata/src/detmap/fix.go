package detmap

import "sort"

// keysNeedingSort is the case the analyzer can repair automatically:
// the file imports sort, the slice is []string, so -fix inserts
// sort.Strings(keys) after the loop. The unrelated call below keeps
// the import alive.
func keysNeedingSort(m map[string]int) []string {
	var keys []string
	for k := range m { // want "map iteration order reaches slice keys via append"
		keys = append(keys, k)
	}
	return keys
}

var _ = sort.Strings
