// Package detmap holds fixtures for the detmap analyzer: each case is
// one way map iteration order can (or cannot) escape into ordered
// output.
package detmap

import (
	"fmt"
	"sort"
	"strings"
)

// collectUnsorted leaks map order into the returned slice.
func collectUnsorted(m map[string]int) []string {
	var out []string
	for k := range m { // want "map iteration order reaches slice out via append"
		out = append(out, k)
	}
	return out
}

// collectSorted is the canonical collect-then-sort idiom: clean.
func collectSorted(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// collectSortSlice also counts as sorted (sort.Slice with comparator).
func collectSortSlice(m map[string]int) []int {
	var vals []int
	for _, v := range m {
		vals = append(vals, v)
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	return vals
}

// collectJustified carries an explicit justification: suppressed.
func collectJustified(m map[string]int) []string {
	var out []string
	//p5lint:ordered feeds a set, consumer is order-insensitive
	for k := range m {
		out = append(out, k)
	}
	return out
}

// printLoop emits output in map order.
func printLoop(m map[string]int) {
	for k, v := range m { // want "map iteration order reaches emitted output via fmt.Println"
		fmt.Println(k, v)
	}
}

// writeLoop streams bytes in map order.
func writeLoop(m map[string]int, b *strings.Builder) {
	for k := range m { // want "map iteration order reaches emitted output via WriteString"
		b.WriteString(k)
	}
}

// sendLoop leaks order through a channel.
func sendLoop(m map[string]int, ch chan string) {
	for k := range m { // want "map iteration order reaches a channel send"
		ch <- k
	}
}

// pickArbitrary returns whichever element iteration happens to visit
// first.
func pickArbitrary(m map[string]int) string {
	for k := range m { // want "returning from inside a range over a map picks an arbitrary element"
		return k
	}
	return ""
}

// indexedWrites fills an outer slice in map order.
func indexedWrites(m map[string]int) []string {
	out := make([]string, len(m))
	i := 0
	for k := range m { // want "map iteration order reaches slice out via indexed writes"
		out[i] = k
		i++
	}
	return out
}

// accumulate is order-insensitive: addition commutes.
func accumulate(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// invert writes into a map: order-insensitive.
func invert(m map[string]int) map[int]string {
	out := make(map[int]string, len(m))
	for k, v := range m {
		out[v] = k
	}
	return out
}

// localScratch appends to a slice declared inside the loop: order
// cannot escape one iteration.
func localScratch(m map[string][]int) int {
	n := 0
	for _, vs := range m {
		var scratch []int
		scratch = append(scratch, vs...)
		n += len(scratch)
	}
	return n
}

// sliceRange ranges a slice, not a map: out of scope.
func sliceRange(s []string) []string {
	var out []string
	for _, v := range s {
		out = append(out, v)
	}
	return out
}
