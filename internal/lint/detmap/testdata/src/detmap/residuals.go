package detmap

import (
	"fmt"
	"sort"
	"strings"
)

// The residual-report cases mirror the tier-0 estimator's committed
// error-bar table (a map of class pairs to bounds) and the daemon's
// per-client stats map: both render into ordered output, so a raw
// range would make the report — and everything diffing it, like the
// golden calib test — flap run to run.

// renderBoundsUnsorted leaks the bounds table's map order into the
// rendered report.
func renderBoundsUnsorted(bounds map[string]map[string]float64, b *strings.Builder) {
	for cp, row := range bounds { // want "map iteration order reaches emitted output via fmt.Fprintf"
		for cs, bar := range row { // want "map iteration order reaches emitted output via fmt.Fprintf"
			fmt.Fprintf(b, "%s|%s %.2f\n", cp, cs, bar)
		}
	}
}

// renderBoundsSorted is the committed idiom: collect the class names,
// sort, then index — the report is a pure function of the table.
func renderBoundsSorted(bounds map[string]map[string]float64, b *strings.Builder) {
	classes := make([]string, 0, len(bounds))
	for cp := range bounds {
		classes = append(classes, cp)
	}
	sort.Strings(classes)
	for _, cp := range classes {
		for _, cs := range classes {
			fmt.Fprintf(b, "%s|%s %.2f\n", cp, cs, bounds[cp][cs])
		}
	}
}

// clientRow stands in for one tenant's answer-tier counters.
type clientRow struct {
	Jobs      int64
	Estimated int64
}

// statsRowsUnsorted fills the stats response in map order.
func statsRowsUnsorted(clients map[string]*clientRow) []string {
	var out []string
	for name, c := range clients { // want "map iteration order reaches slice out via append"
		out = append(out, fmt.Sprintf("%s %d/%d", name, c.Estimated, c.Jobs))
	}
	return out
}

// statsRowsSorted mirrors the daemon's Stats(): sorted tenant names,
// then deterministic rows.
func statsRowsSorted(clients map[string]*clientRow) []string {
	names := make([]string, 0, len(clients))
	for name := range clients {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]string, 0, len(names))
	for _, name := range names {
		c := clients[name]
		out = append(out, fmt.Sprintf("%s %d/%d", name, c.Estimated, c.Jobs))
	}
	return out
}
