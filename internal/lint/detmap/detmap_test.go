package detmap

import (
	"strings"
	"testing"

	"power5prio/internal/lint/analysis"
	"power5prio/internal/lint/atest"
	"power5prio/internal/lint/loader"
)

func TestDetmapFixtures(t *testing.T) {
	atest.SetFlag(t, Analyzer, "packages", "fixtures/")
	atest.Run(t, "testdata/src", Analyzer, "./detmap")
}

// TestSortFixOffered pins the -fix contract: the collect-into-[]string
// case in a file that imports sort must carry a suggested fix that
// inserts the sort call directly after the loop.
func TestSortFixOffered(t *testing.T) {
	atest.SetFlag(t, Analyzer, "packages", "fixtures/")
	pkgs, err := loader.Load("testdata/src", "./detmap")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := analysis.Run(pkgs, []*analysis.Analyzer{Analyzer})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, d := range diags {
		if !strings.Contains(d.Message, "slice keys via append") {
			continue
		}
		found = true
		if len(d.SuggestedFixes) != 1 {
			t.Fatalf("keys finding carries %d fixes, want 1", len(d.SuggestedFixes))
		}
		fix := d.SuggestedFixes[0]
		if len(fix.TextEdits) != 1 {
			t.Fatalf("fix has %d edits, want 1", len(fix.TextEdits))
		}
		if got := string(fix.TextEdits[0].NewText); !strings.Contains(got, "sort.Strings(keys)") {
			t.Errorf("fix inserts %q, want sort.Strings(keys)", got)
		}
		if fix.TextEdits[0].Pos != fix.TextEdits[0].End {
			t.Error("fix should be a pure insertion")
		}
	}
	if !found {
		t.Fatal("no diagnostic for the keys collect loop")
	}
}
