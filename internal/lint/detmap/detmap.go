// Package detmap implements the p5lint analyzer that guards the repo's
// first determinism invariant: map iteration order must never reach an
// ordered output.
//
// Every headline guarantee of the reproduction — bit-identical results
// for any worker count, any fleet sharding, fast-forward on or off —
// assumes the measurement pipeline is a pure function of its inputs.
// Go randomizes map iteration order per run, so a `range` over a map
// that feeds, in order, a returned slice, emitted output, a hash, or a
// result merge silently breaks byte-identical regeneration. detmap
// flags such loops in the order-sensitive packages and accepts either
// an explicit sort after the loop or a //p5lint:ordered justification.
package detmap

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"power5prio/internal/lint/analysis"
)

// Analyzer flags range-over-map loops whose iteration order can escape
// into ordered output.
var Analyzer = &analysis.Analyzer{
	Name: "detmap",
	Doc: "flag range-over-map loops whose nondeterministic order reaches a returned slice, " +
		"emitted output, hash input, or result merge; fix with a sort after the loop or " +
		"justify with //p5lint:ordered",
	Run: run,
}

// packages restricts the analyzer to the order-sensitive layers: the
// simulator proper never ranges maps on hot paths, but these packages
// produce user-visible orderings (batch merges, reports, listings).
var packages string

func init() {
	Analyzer.Flags.StringVar(&packages, "packages",
		"internal/engine,internal/remote,internal/workload,internal/report,internal/experiments",
		"comma-separated import-path substrings the analyzer applies to")
}

func run(pass *analysis.Pass) (any, error) {
	if !analysis.MatchesAny(pass.ImportPath, packages) {
		return nil, nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			fn, ok := n.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				return true
			}
			checkFunc(pass, fn)
			return true
		})
	}
	return nil, nil
}

// checkFunc examines every range-over-map statement in one function.
func checkFunc(pass *analysis.Pass, fn *ast.FuncDecl) {
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		t := pass.TypesInfo.TypeOf(rng.X)
		if t == nil {
			return true
		}
		if _, isMap := t.Underlying().(*types.Map); !isMap {
			return true
		}
		if sink := findSink(pass, fn, rng); sink != nil {
			d := analysis.Diagnostic{Pos: rng.For, Message: sink.message}
			if fix := sortFix(pass, fn, rng, sink); fix != nil {
				d.SuggestedFixes = []analysis.SuggestedFix{*fix}
			}
			pass.Report(d)
		}
		return true
	})
}

// sink describes how iteration order escapes the loop.
type sink struct {
	message string
	// appendTo is set for the collect-into-slice case: the slice
	// variable receiving appends in map order.
	appendTo *types.Var
}

// findSink reports the first order-sensitive effect in the loop body,
// or nil if the body is order-insensitive (pure accumulation, map
// writes, counting) or the escaping slice is sorted after the loop.
func findSink(pass *analysis.Pass, fn *ast.FuncDecl, rng *ast.RangeStmt) *sink {
	var found *sink
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		switch n := n.(type) {
		case *ast.SendStmt:
			found = &sink{message: "map iteration order reaches a channel send; " +
				"collect and sort before sending, or justify with //p5lint:ordered"}
		case *ast.ReturnStmt:
			if usesVar(pass, n, rng.Key) || usesVar(pass, n, rng.Value) {
				found = &sink{message: "returning from inside a range over a map picks an " +
					"arbitrary element; select deterministically, or justify with //p5lint:ordered"}
			}
		case *ast.CallExpr:
			if name, ok := orderedOutputCall(pass, n); ok {
				found = &sink{message: "map iteration order reaches emitted output via " + name +
					"; iterate sorted keys instead, or justify with //p5lint:ordered"}
			}
		case *ast.AssignStmt:
			if v := appendTarget(pass, rng, n); v != nil {
				if sortedAfter(pass, fn, rng, v) {
					return true
				}
				found = &sink{
					message: "map iteration order reaches slice " + v.Name() +
						" via append; sort it after the loop, or justify with //p5lint:ordered",
					appendTo: v,
				}
			} else if v := outerIndexedWrite(pass, rng, n); v != nil {
				if sortedAfter(pass, fn, rng, v) {
					return true
				}
				found = &sink{message: "map iteration order reaches slice " + v.Name() +
					" via indexed writes; sort it after the loop, or justify with //p5lint:ordered"}
			}
		}
		return found == nil
	})
	return found
}

// usesVar reports whether the subtree references the object bound by
// expr (a range key/value identifier).
func usesVar(pass *analysis.Pass, n ast.Node, expr ast.Expr) bool {
	id, ok := expr.(*ast.Ident)
	if !ok || id.Name == "_" {
		return false
	}
	obj := pass.TypesInfo.Defs[id]
	if obj == nil {
		obj = pass.TypesInfo.Uses[id]
	}
	if obj == nil {
		return false
	}
	used := false
	ast.Inspect(n, func(m ast.Node) bool {
		if mid, ok := m.(*ast.Ident); ok && pass.TypesInfo.Uses[mid] == obj {
			used = true
		}
		return !used
	})
	return used
}

// orderedOutputCall recognizes calls that emit ordered bytes: fmt
// printing, Write-family methods (io.Writer, hash.Hash, bufio) and
// stream encoders.
func orderedOutputCall(pass *analysis.Pass, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	obj, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok {
		return "", false
	}
	name := obj.Name()
	if pkg := obj.Pkg(); pkg != nil && pkg.Path() == "fmt" && obj.Type().(*types.Signature).Recv() == nil {
		if strings.HasPrefix(name, "Print") || strings.HasPrefix(name, "Fprint") {
			return "fmt." + name, true
		}
		return "", false
	}
	if obj.Type().(*types.Signature).Recv() != nil {
		if strings.HasPrefix(name, "Write") || name == "Encode" {
			return name, true
		}
	}
	return "", false
}

// appendTarget returns the outer-declared slice variable when the
// assignment is `v = append(v, ...)` (possibly among other LHS) with v
// declared outside the range statement.
func appendTarget(pass *analysis.Pass, rng *ast.RangeStmt, as *ast.AssignStmt) *types.Var {
	for i, rhs := range as.Rhs {
		call, ok := rhs.(*ast.CallExpr)
		if !ok {
			continue
		}
		if id, ok := call.Fun.(*ast.Ident); !ok || id.Name != "append" || pass.TypesInfo.Uses[id] != types.Universe.Lookup("append") {
			continue
		}
		if i >= len(as.Lhs) {
			continue
		}
		if v := outerVar(pass, rng, as.Lhs[i]); v != nil {
			return v
		}
	}
	return nil
}

// outerIndexedWrite returns the outer slice variable when the
// assignment writes through an index expression on it (out[i] = ...).
func outerIndexedWrite(pass *analysis.Pass, rng *ast.RangeStmt, as *ast.AssignStmt) *types.Var {
	for _, lhs := range as.Lhs {
		ix, ok := lhs.(*ast.IndexExpr)
		if !ok {
			continue
		}
		t := pass.TypesInfo.TypeOf(ix.X)
		if t == nil {
			continue
		}
		switch t.Underlying().(type) {
		case *types.Slice, *types.Array, *types.Pointer:
		default:
			continue // map writes are order-insensitive
		}
		if v := outerVar(pass, rng, ix.X); v != nil {
			return v
		}
	}
	return nil
}

// outerVar resolves expr to a variable declared outside the range
// statement, or nil.
func outerVar(pass *analysis.Pass, rng *ast.RangeStmt, expr ast.Expr) *types.Var {
	id, ok := expr.(*ast.Ident)
	if !ok {
		return nil
	}
	obj, ok := pass.TypesInfo.Uses[id].(*types.Var)
	if !ok {
		if obj, ok = pass.TypesInfo.Defs[id].(*types.Var); !ok {
			return nil
		}
	}
	if obj.Pos() >= rng.Pos() && obj.Pos() < rng.End() {
		return nil // declared inside the loop: order cannot escape
	}
	return obj
}

// sortedAfter reports whether v is passed to a sort.* or slices.Sort*
// call after the range statement in the same function — the canonical
// collect-then-sort idiom, which is deterministic.
func sortedAfter(pass *analysis.Pass, fn *ast.FuncDecl, rng *ast.RangeStmt, v *types.Var) bool {
	sorted := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rng.End() || sorted {
			return !sorted
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		obj, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
		if !ok || obj.Pkg() == nil {
			return true
		}
		switch obj.Pkg().Path() {
		case "sort", "slices":
		default:
			return true
		}
		switch name := obj.Name(); {
		case strings.HasPrefix(name, "Sort"), strings.HasPrefix(name, "Slice"),
			name == "Stable", name == "Strings", name == "Ints", name == "Float64s":
		default:
			return true
		}
		for _, arg := range call.Args {
			if refersTo(pass, arg, v) {
				sorted = true
			}
		}
		return !sorted
	})
	return sorted
}

// refersTo reports whether the expression subtree mentions v.
func refersTo(pass *analysis.Pass, n ast.Node, v *types.Var) bool {
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		if id, ok := m.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == v {
			found = true
		}
		return !found
	})
	return found
}

// sortFix offers the sort-after-loop repair for the common
// collect-keys case: the appended-to slice is []string or []int and
// the file already imports the sort package, so inserting
// `sort.Strings(v)` (or sort.Ints) directly after the loop is safe.
func sortFix(pass *analysis.Pass, fn *ast.FuncDecl, rng *ast.RangeStmt, s *sink) *analysis.SuggestedFix {
	if s.appendTo == nil {
		return nil
	}
	slice, ok := s.appendTo.Type().Underlying().(*types.Slice)
	if !ok {
		return nil
	}
	basic, ok := slice.Elem().(*types.Basic)
	if !ok {
		return nil
	}
	var sortCall string
	switch basic.Kind() {
	case types.String:
		sortCall = "sort.Strings"
	case types.Int:
		sortCall = "sort.Ints"
	default:
		return nil
	}
	if !importsSort(pass, rng.Pos()) {
		return nil
	}
	indent := indentAt(pass.Fset, rng.For)
	text := "\n" + indent + sortCall + "(" + s.appendTo.Name() + ")"
	return &analysis.SuggestedFix{
		Message:   "sort " + s.appendTo.Name() + " after the loop",
		TextEdits: []analysis.TextEdit{{Pos: rng.End(), End: rng.End(), NewText: []byte(text)}},
	}
}

// importsSort reports whether the file containing pos imports "sort".
func importsSort(pass *analysis.Pass, pos token.Pos) bool {
	for _, f := range pass.Files {
		if f.FileStart <= pos && pos < f.FileEnd {
			for _, imp := range f.Imports {
				if imp.Path.Value == `"sort"` {
					return true
				}
			}
		}
	}
	return false
}

// indentAt reproduces the indentation of the line holding pos.
func indentAt(fset *token.FileSet, pos token.Pos) string {
	p := fset.Position(pos)
	return strings.Repeat("\t", max(p.Column-1, 0))
}
