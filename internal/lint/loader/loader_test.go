package loader

import (
	"os/exec"
	"strings"
	"testing"
)

// repoRoot locates the enclosing module root so the test is independent
// of the working directory the test binary runs from.
func repoRoot(t *testing.T) string {
	t.Helper()
	out, err := exec.Command("go", "list", "-m", "-f", "{{.Dir}}").Output()
	if err != nil {
		t.Fatalf("go list -m: %v", err)
	}
	return strings.TrimSpace(string(out))
}

func TestLoadRepo(t *testing.T) {
	pkgs, err := Load(repoRoot(t), "./...")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) == 0 {
		t.Fatal("no packages loaded")
	}
	var sawEngine bool
	for _, p := range pkgs {
		if len(p.TypeErrors) > 0 {
			t.Errorf("%s: unexpected type error: %v", p.ImportPath, p.TypeErrors[0])
		}
		if p.DepOnly {
			t.Errorf("%s: dependency-only package returned as target", p.ImportPath)
		}
		if strings.HasSuffix(p.ImportPath, "internal/engine") {
			sawEngine = true
			if p.Types.Scope().Lookup("JobKey") == nil {
				t.Error("engine package loaded without JobKey in scope")
			}
		}
	}
	if !sawEngine {
		t.Error("internal/engine not among loaded packages")
	}
	t.Logf("loaded %d target packages", len(pkgs))
}
