// Package loader loads and type-checks Go packages for the lint layer
// without any dependency outside the standard library.
//
// golang.org/x/tools/go/packages is the canonical way to do this, but
// the repo builds hermetically (no module downloads), so the loader
// reimplements the small slice of it the analyzers need: it shells out
// to `go list -json -deps` for build-system facts (file lists, import
// resolution, dependency order) and runs go/parser + go/types over the
// result. `-deps` lists packages in depth-first post-order, so every
// package's imports are type-checked before the package itself;
// dependency-only packages are checked with IgnoreFuncBodies for speed.
package loader

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
)

// Package is one loaded, type-checked package.
type Package struct {
	ImportPath string
	Dir        string
	Standard   bool // part of the Go distribution
	DepOnly    bool // pulled in as a dependency, not named by the patterns
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	TypesInfo  *types.Info
	// TypeErrors holds type-checking problems. Target packages with
	// type errors are still returned (analyzers may run best-effort),
	// but drivers should surface them.
	TypeErrors []error
}

// listPkg mirrors the subset of `go list -json` output we consume.
type listPkg struct {
	Dir        string
	ImportPath string
	Name       string
	Standard   bool
	DepOnly    bool
	GoFiles    []string
	CgoFiles   []string
	Imports    []string
	ImportMap  map[string]string
	Error      *struct{ Err string }
}

// Load lists patterns in dir (module-aware, tests excluded), parses and
// type-checks them along with their dependency closure, and returns the
// packages matched by the patterns in `go list` order.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	raw, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}

	fset := token.NewFileSet()
	byDir := make(map[string]*listPkg, len(raw)) // package dir -> list info (for ImportMap)
	typesBy := make(map[string]*types.Package, len(raw))
	imp := &mapImporter{typesBy: typesBy, byDir: byDir}

	var out []*Package
	for _, lp := range raw {
		if lp.ImportPath == "unsafe" {
			typesBy["unsafe"] = types.Unsafe
			continue
		}
		if lp.Error != nil {
			return nil, fmt.Errorf("loader: go list: %s: %s", lp.ImportPath, lp.Error.Err)
		}
		if len(lp.CgoFiles) > 0 {
			// CGO_ENABLED=0 is forced below, so this indicates a
			// cgo-only package we cannot type-check from source.
			return nil, fmt.Errorf("loader: %s needs cgo", lp.ImportPath)
		}
		byDir[lp.Dir] = lp

		mode := parser.SkipObjectResolution
		if !lp.DepOnly {
			mode |= parser.ParseComments
		}
		var files []*ast.File
		for _, f := range lp.GoFiles {
			af, err := parser.ParseFile(fset, filepath.Join(lp.Dir, f), nil, mode)
			if err != nil {
				return nil, fmt.Errorf("loader: parse %s: %w", filepath.Join(lp.Dir, f), err)
			}
			files = append(files, af)
		}

		info := &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Implicits:  make(map[ast.Node]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
			Scopes:     make(map[ast.Node]*types.Scope),
			Instances:  make(map[*ast.Ident]types.Instance),
		}
		var terrs []error
		cfg := types.Config{
			Importer:         imp,
			IgnoreFuncBodies: lp.DepOnly,
			Sizes:            types.SizesFor("gc", runtime.GOARCH),
			Error:            func(err error) { terrs = append(terrs, err) },
		}
		tpkg, _ := cfg.Check(lp.ImportPath, fset, files, info)
		if tpkg == nil {
			return nil, fmt.Errorf("loader: type-check %s: %v", lp.ImportPath, joinErrs(terrs))
		}
		if len(terrs) > 0 && lp.DepOnly {
			// A broken dependency poisons everything above it.
			return nil, fmt.Errorf("loader: type-check %s: %v", lp.ImportPath, joinErrs(terrs))
		}
		typesBy[lp.ImportPath] = tpkg

		if lp.DepOnly {
			continue
		}
		out = append(out, &Package{
			ImportPath: lp.ImportPath,
			Dir:        lp.Dir,
			Standard:   lp.Standard,
			DepOnly:    lp.DepOnly,
			Fset:       fset,
			Files:      files,
			Types:      tpkg,
			TypesInfo:  info,
			TypeErrors: terrs,
		})
	}
	return out, nil
}

func joinErrs(errs []error) error {
	if len(errs) == 0 {
		return fmt.Errorf("unknown error")
	}
	var b strings.Builder
	for i, e := range errs {
		if i > 0 {
			b.WriteString("; ")
		}
		b.WriteString(e.Error())
		if i == 4 && len(errs) > 5 {
			fmt.Fprintf(&b, "; ... (%d more)", len(errs)-5)
			break
		}
	}
	return fmt.Errorf("%s", b.String())
}

// goList runs `go list -e -json -deps` and decodes the JSON stream.
// CGO_ENABLED=0 keeps the file lists pure Go so everything can be
// type-checked from source.
func goList(dir string, patterns []string) ([]*listPkg, error) {
	args := append([]string{"list", "-e", "-json", "-deps", "--"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	cmd.Env = append(os.Environ(), "CGO_ENABLED=0")
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	stdout, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("loader: go list: %v: %s", err, stderr.String())
	}
	dec := json.NewDecoder(bytes.NewReader(stdout))
	var pkgs []*listPkg
	for {
		lp := new(listPkg)
		if err := dec.Decode(lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("loader: decode go list output: %w", err)
		}
		pkgs = append(pkgs, lp)
	}
	return pkgs, nil
}

// mapImporter resolves imports against the already-type-checked set.
// It implements types.ImporterFrom so vendored standard-library paths
// (e.g. net/http importing golang.org/x/net/http2/hpack) resolve via
// the importing package's ImportMap.
type mapImporter struct {
	typesBy map[string]*types.Package
	byDir   map[string]*listPkg
}

func (m *mapImporter) Import(path string) (*types.Package, error) {
	return m.ImportFrom(path, "", 0)
}

func (m *mapImporter) ImportFrom(path, srcDir string, _ types.ImportMode) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	resolved := path
	if lp, ok := m.byDir[srcDir]; ok {
		if r, ok := lp.ImportMap[path]; ok {
			resolved = r
		}
	}
	if p, ok := m.typesBy[resolved]; ok {
		return p, nil
	}
	return nil, fmt.Errorf("loader: import %q (from %s) not in dependency closure", path, srcDir)
}
