// Package analysis is a minimal, dependency-free stand-in for
// golang.org/x/tools/go/analysis: just enough surface (Analyzer, Pass,
// Diagnostic, suggested fixes, flags) for the repo's p5lint analyzers
// and their fixture tests. The shapes deliberately mirror x/tools so
// the analyzers could be ported to the real framework verbatim if the
// repo ever takes on the dependency.
//
// Suppression is part of the framework contract: a diagnostic is
// dropped when the offending line (or the line above it) carries
//
//	//p5lint:allow <analyzer-name>[ reason]
//
// or, for the detmap analyzer specifically, the spelling
//
//	//p5lint:ordered[ reason]
//
// so every suppression names the invariant it waives and reads as a
// justification at the call site.
package analysis

import (
	"flag"
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"power5prio/internal/lint/loader"
)

// Analyzer describes one static check.
type Analyzer struct {
	Name string
	Doc  string
	// Flags holds analyzer-specific configuration; the driver exposes
	// them namespaced as -<name>.<flag>.
	Flags flag.FlagSet
	Run   func(*Pass) (any, error)
}

// Pass carries one analyzer's view of one package.
type Pass struct {
	Analyzer   *Analyzer
	Fset       *token.FileSet
	Files      []*ast.File
	Pkg        *types.Package
	ImportPath string
	TypesInfo  *types.Info

	diags *[]Diagnostic
}

// Diagnostic is one finding.
type Diagnostic struct {
	Analyzer string
	Pos      token.Pos
	Message  string
	// SuggestedFixes, when non-empty, can be applied by the driver's
	// -fix mode. Every fix must be safe to apply textually.
	SuggestedFixes []SuggestedFix
}

// SuggestedFix is one self-contained textual repair.
type SuggestedFix struct {
	Message   string
	TextEdits []TextEdit
}

// TextEdit replaces [Pos, End) with NewText (Pos == End inserts).
type TextEdit struct {
	Pos, End token.Pos
	NewText  []byte
}

// Reportf records a finding against the pass's package.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Report records a fully-formed finding.
func (p *Pass) Report(d Diagnostic) {
	d.Analyzer = p.Analyzer.Name
	*p.diags = append(*p.diags, d)
}

// Run executes the analyzers over the loaded packages and returns the
// unsuppressed diagnostics in file/position order. Suppressed findings
// are filtered here so every driver (CLI, fixture tests, the self
// check) shares one suppression semantics.
func Run(pkgs []*loader.Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var all []Diagnostic
	for _, pkg := range pkgs {
		sup := collectSuppressions(pkg)
		for _, a := range analyzers {
			var diags []Diagnostic
			pass := &Pass{
				Analyzer:   a,
				Fset:       pkg.Fset,
				Files:      pkg.Files,
				Pkg:        pkg.Types,
				ImportPath: pkg.ImportPath,
				TypesInfo:  pkg.TypesInfo,
				diags:      &diags,
			}
			if _, err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.ImportPath, err)
			}
			for _, d := range diags {
				if !sup.allows(pkg.Fset, d) {
					all = append(all, d)
				}
			}
		}
	}
	sort.Slice(all, func(i, j int) bool {
		fi := positionOf(pkgs, all[i])
		fj := positionOf(pkgs, all[j])
		if fi.Filename != fj.Filename {
			return fi.Filename < fj.Filename
		}
		if fi.Line != fj.Line {
			return fi.Line < fj.Line
		}
		return all[i].Analyzer < all[j].Analyzer
	})
	return all, nil
}

func positionOf(pkgs []*loader.Package, d Diagnostic) token.Position {
	for _, p := range pkgs {
		if pos := p.Fset.Position(d.Pos); pos.IsValid() {
			return pos
		}
	}
	return token.Position{}
}

// MatchesAny reports whether the import path contains any of the
// comma-separated substrings. Analyzers use it for their -packages
// scoping flag; an empty list matches nothing.
func MatchesAny(importPath, csv string) bool {
	for _, part := range strings.Split(csv, ",") {
		part = strings.TrimSpace(part)
		if part != "" && strings.Contains(importPath, part) {
			return true
		}
	}
	return false
}

// suppressions maps file -> line -> analyzer names allowed there.
type suppressions map[string]map[int][]string

func (s suppressions) allows(fset *token.FileSet, d Diagnostic) bool {
	pos := fset.Position(d.Pos)
	lines := s[pos.Filename]
	for _, line := range []int{pos.Line, pos.Line - 1} {
		for _, name := range lines[line] {
			if name == d.Analyzer {
				return true
			}
		}
	}
	return false
}

// collectSuppressions scans a package's comments for p5lint directives.
func collectSuppressions(pkg *loader.Package) suppressions {
	sup := make(suppressions)
	add := func(pos token.Position, name string) {
		if sup[pos.Filename] == nil {
			sup[pos.Filename] = make(map[int][]string)
		}
		sup[pos.Filename][pos.Line] = append(sup[pos.Filename][pos.Line], name)
	}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				pos := pkg.Fset.Position(c.Pos())
				switch {
				case strings.HasPrefix(text, "p5lint:ordered"):
					add(pos, "detmap")
				case strings.HasPrefix(text, "p5lint:allow"):
					rest := strings.TrimPrefix(text, "p5lint:allow")
					fields := strings.Fields(rest)
					if len(fields) > 0 {
						add(pos, fields[0])
					}
				}
			}
		}
	}
	return sup
}
