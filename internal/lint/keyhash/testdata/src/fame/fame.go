// Package fame mirrors the real fame.Options measurement parameters.
package fame

// Options mirrors the real FAME measurement options.
type Options struct {
	MinReps    int
	WarmupReps int
	MAIV       float64
	MaxCycles  uint64
}
