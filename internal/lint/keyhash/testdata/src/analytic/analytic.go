// Package analytic mirrors the tier-0 estimator's calibration key:
// the calKey hashed under engine.Memo (schema
// power5prio/analytic/calib/v1) so calibration records persist in the
// cache store. The clean mirror pins that every field the real calKey
// carries stays canonically hashable; GrownCalKey is the
// model-feature-added-carelessly case the CONTRIBUTING checklist warns
// about.
package analytic

import (
	"fixtures/core"
	"fixtures/engine"
	"fixtures/fame"
	"fixtures/prio"
	"fixtures/workload"
)

const calibSchema = "fixtures/analytic/calib/v1"

// calKey mirrors the real calibration key field for field: the
// workload content plus every job field that shapes its single-thread
// run, all flat hashable values.
type calKey struct {
	Ref       workload.Ref
	Privilege prio.Privilege
	IterScale float64
	Chip      core.Config
	Fame      fame.Options
}

// Features stands in for the calibration record Memo fills.
type Features struct {
	IPC       float64
	GroupSize float64
}

// Calibrate memoizes a clean key: no findings.
func Calibrate(e *engine.Engine, k calKey, out *Features) (bool, error) {
	return e.Memo(calibSchema, k, out, func() error { return nil })
}

// GrownCalKey is calKey plus model features someone added without
// checking the hash schema: a per-workload counter map and a handle to
// the live engine. Both must be reported at the Memo call site instead
// of panicking in the first daemon that calibrates.
type GrownCalKey struct {
	Ref       workload.Ref
	Privilege prio.Privilege
	IterScale float64
	Chip      core.Config
	Fame      fame.Options

	UnitMix map[string]float64
	Engine  *engine.Engine
}

// CalibrateGrown memoizes under the grown key.
func CalibrateGrown(e *engine.Engine, k GrownCalKey, out *Features) (bool, error) {
	return e.Memo(calibSchema, k, out, func() error { return nil }) // want `field value.UnitMix has kind map` `field value.Engine has kind pointer`
}
