// Package memo exercises the Memo entry point: keyVal arguments are
// hash roots exactly like HashValue's value argument.
package memo

import "fixtures/engine"

// pipelineKey mirrors Table 4's non-Job memoization keys.
type pipelineKey struct {
	Kernel string
	Reps   int
}

// badKey carries a slice that the canonical encoding rejects.
type badKey struct {
	Kernel string
	Stages []string
}

// Lookup memoizes under a clean key: no findings.
func Lookup(e *engine.Engine, out *float64) (bool, error) {
	return e.Memo("fixtures/pipeline/v1", pipelineKey{Kernel: "fft", Reps: 3}, out, func() error { return nil })
}

// LookupBad memoizes under an unhashable key.
func LookupBad(e *engine.Engine, out *float64) (bool, error) {
	return e.Memo("fixtures/pipeline/v1", badKey{Kernel: "fft"}, out, func() error { return nil }) // want `field value.Stages has kind slice`
}
