// Package prio mirrors the real priority level types.
package prio

// Level mirrors the real hardware thread priority level.
type Level uint8

// Privilege mirrors the real software privilege model.
type Privilege uint8
