// Package core mirrors the real core.Config nesting (mem + pipeline
// sub-configs of plain numeric fields).
package core

// MemConfig stands in for mem.Config.
type MemConfig struct {
	LatL2, LatL3, LatMem int
	L2SizeBytes          int
	TLBWalkLat           int
}

// PipeConfig stands in for pipeline.Config.
type PipeConfig struct {
	DecodeWidth int
	LatFPAdd    int
	GCTSlots    [2]int
}

// Config mirrors the real chip configuration.
type Config struct {
	Mem            MemConfig
	Pipe           PipeConfig
	ExperimentCore int
}
