package engine

// Engine mirrors the real engine type that owns the generic Memo
// memoization entry point.
type Engine struct{}

// Memo mirrors the real signature: keyVal is hashed under schema.
func (e *Engine) Memo(schema string, keyVal, out any, compute func() error) (bool, error) {
	_ = schema
	_ = keyVal
	_ = out
	_ = compute
	return false, nil
}
