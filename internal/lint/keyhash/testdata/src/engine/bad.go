package engine

import (
	"fixtures/cachestore"
	"fixtures/core"
	"fixtures/fame"
	"fixtures/prio"
	"fixtures/workload"
)

// GrownJob is the acceptance-criterion case: the real Job shape plus
// fields someone added without wiring them into the hash schema. Each
// unhashable leaf must be reported at the hash-call site.
type GrownJob struct {
	Primary   workload.Ref
	Secondary workload.Ref
	PrioP     prio.Level
	PrioS     prio.Level
	Privilege prio.Privilege
	IterScale float64
	Chip      core.Config
	Fame      fame.Options

	// The "added but never wired into the schema" fields:
	Tags    []string          // no canonical form: rejected at runtime
	Extra   map[string]string // randomized iteration: rejected at runtime
	Parent  *GrownJob         // aliasable identity: rejected at runtime
	Notify  func()            // no stable content: rejected at runtime
	Payload any               // dynamic type: rejected at runtime
}

// GrownJobKey mirrors JobKey over the grown struct.
func GrownJobKey(j GrownJob) cachestore.Key {
	return cachestore.MustHashValue(jobKeySchema, j) // want `field value.Tags has kind slice` `field value.Extra has kind map` `field value.Parent has kind pointer` `field value.Notify has kind func` `field value.Payload has kind interface`
}

// deepBad buries the unhashable leaf two structs down; the path in the
// diagnostic names the full chain.
type deepBad struct {
	Inner struct {
		Scale   complex128 // no canonical byte encoding in the schema
		History [4]chan int
	}
}

// DeepKey exercises HashValue (the error-returning entry point) and
// nested paths.
func DeepKey(d deepBad) (cachestore.Key, error) {
	return cachestore.HashValue("fixtures/deep/v1", d) // want `field value.Inner.Scale has kind complex128` `field value.Inner.History\[i\] has kind chan`
}

// WaivedKey defers to the runtime check with an explicit annotation.
func WaivedKey(j GrownJob) cachestore.Key {
	//p5lint:allow keyhash runtime perturbation test covers this root
	return cachestore.MustHashValue(jobKeySchema, j)
}
