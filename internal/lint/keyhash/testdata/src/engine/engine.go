// Package engine mirrors the real engine.Job hash root: the struct
// shape, the schema constant and the JobKey call are all copies of the
// real code, so the fixtures pin exactly what the analyzer sees there.
package engine

import (
	"fixtures/cachestore"
	"fixtures/core"
	"fixtures/fame"
	"fixtures/prio"
	"fixtures/workload"
)

const jobKeySchema = "power5prio/job/v1"

// Job mirrors the real engine.Job field for field: every leaf is a
// canonically hashable kind, so this hash root is clean.
type Job struct {
	Primary   workload.Ref
	Secondary workload.Ref
	PrioP     prio.Level
	PrioS     prio.Level
	Privilege prio.Privilege
	IterScale float64
	Chip      core.Config
	Fame      fame.Options
}

// JobKey mirrors the real key derivation.
func JobKey(j Job) cachestore.Key {
	return cachestore.MustHashValue(jobKeySchema, j)
}
