// Package workload mirrors the real workload.Ref: the exemplar of a
// field with an explicit stable digest (Fingerprint) instead of an
// unhashable function value.
package workload

// Family mirrors the real named string type.
type Family string

// Ref mirrors the real content-fingerprinted workload reference.
type Ref struct {
	Name        string
	Family      Family
	Fingerprint uint64
}
