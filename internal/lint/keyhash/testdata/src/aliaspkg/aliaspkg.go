// Package aliaspkg exercises the encoding-ambiguity check: the
// canonical encoding writes struct types by their reflect string,
// which is not package-path qualified, so two same-named types from
// same-named packages alias under it.
package aliaspkg

import (
	oneshape "fixtures/aliaspkg/one/shape"
	twoshape "fixtures/aliaspkg/two/shape"
	"fixtures/cachestore"
)

// Doc holds both colliding types under one hash root.
type Doc struct {
	A oneshape.Geometry
	B twoshape.Geometry
}

// DocKey hashes the ambiguous root.
func DocKey(d Doc) cachestore.Key {
	return cachestore.MustHashValue("fixtures/doc/v1", d) // want `both encode as "shape.Geometry"`
}
