// Package shape is the other half of the alias fixture: same package
// name, same type name, different field layout.
package shape

// Geometry is the other colliding struct type.
type Geometry struct {
	Height float64
}
