// Package shape is one half of the alias fixture: a struct type whose
// reflect string ("shape.Geometry") collides with a different type in
// the sibling package of the same name.
package shape

// Geometry is one of the two colliding struct types.
type Geometry struct {
	Width int
}
