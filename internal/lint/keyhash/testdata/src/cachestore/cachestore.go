// Package cachestore mirrors the real hash entry points so keyhash
// fixtures exercise the same call-site detection.
package cachestore

// Key mirrors the real 32-byte content key.
type Key [32]byte

// HashValue mirrors the real canonical hash entry point.
func HashValue(schema string, v any) (Key, error) { _ = schema; _ = v; return Key{}, nil }

// MustHashValue mirrors the panicking variant.
func MustHashValue(schema string, v any) Key { _ = schema; _ = v; return Key{} }
