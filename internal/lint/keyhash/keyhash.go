// Package keyhash implements the p5lint analyzer that guards cache-key
// soundness: every value handed to cachestore.HashValue must be fully
// and unambiguously hashable at compile time.
//
// The persistent result cache keys entries by a canonical reflection
// hash of the Job (cachestore.HashValue). The encoder accepts only
// deterministic kinds — bool, fixed-width numbers, strings, arrays and
// structs — and rejects maps, slices, pointers, funcs, chans and
// interfaces at runtime, because their contents either have no stable
// canonical form or escape the walk entirely. Today that rejection
// surfaces as a MustHashValue panic in whatever process first builds a
// key, and TestJobKeyPerturbation sweeps the Job schema dynamically.
// keyhash performs the same walk over the *types* reachable from every
// hash-call site, so a field added to engine.Job (or anything it
// embeds: core.Config, fame.Options, workload.Ref, ...) that the hash
// schema cannot encode fails `make lint` instead of panicking later —
// including fields added but never given an explicit stable digest.
//
// It also checks the one ambiguity the runtime encoding cannot see:
// encodeValue writes struct types by their reflect string
// ("pkgname.Type"), which is not package-path qualified, so two
// distinct struct types from same-named packages would alias under the
// encoding. keyhash reports any such collision in a walked type graph.
package keyhash

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"

	"power5prio/internal/lint/analysis"
)

// Analyzer walks the type graph under every cachestore hash-call site
// and reports fields the canonical encoding would reject or alias.
var Analyzer = &analysis.Analyzer{
	Name: "keyhash",
	Doc: "verify every struct reachable from a cachestore.HashValue/MustHashValue call site " +
		"(e.g. the engine.JobKey hash root) contains only canonically hashable fields",
	Run: run,
}

func run(pass *analysis.Pass) (any, error) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			argIdx, ok := hashCall(pass, call)
			if !ok || argIdx >= len(call.Args) {
				return true
			}
			arg := call.Args[argIdx]
			t := pass.TypesInfo.TypeOf(arg)
			if t == nil {
				return true
			}
			if _, isIface := t.Underlying().(*types.Interface); isIface {
				// The dynamic value escapes static analysis; the
				// runtime check still applies. Only flag the literal
				// interface-typed argument if it is a plain
				// conversion we can see through.
				return true
			}
			w := &walker{pass: pass, call: call, seen: make(map[types.Type]bool), names: make(map[string]types.Type)}
			w.walk(t, "value")
			return true
		})
	}
	return nil, nil
}

// hashCall reports whether the call is a cachestore hash entry point
// and returns the index of the hashed-value argument:
//
//   - cachestore.HashValue(schema, v) / MustHashValue(schema, v): v at 1
//   - (*engine.Engine).Memo(schema, keyVal, out, compute): keyVal at 1
func hashCall(pass *analysis.Pass, call *ast.CallExpr) (int, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return 0, false
	}
	obj, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || obj.Pkg() == nil {
		return 0, false
	}
	path := obj.Pkg().Path()
	switch obj.Name() {
	case "HashValue", "MustHashValue":
		if strings.HasSuffix(path, "cachestore") {
			return 1, true
		}
	case "Memo":
		if strings.HasSuffix(path, "engine") && obj.Type().(*types.Signature).Recv() != nil {
			return 1, true
		}
	}
	return 0, false
}

// walker mirrors cachestore.encodeValue over types.Type instead of
// reflect.Value.
type walker struct {
	pass  *analysis.Pass
	call  *ast.CallExpr
	seen  map[types.Type]bool
	names map[string]types.Type // reflect-style struct name -> type
}

func (w *walker) walk(t types.Type, path string) {
	if w.seen[t] {
		return
	}
	w.seen[t] = true
	defer delete(w.seen, t)

	if named, ok := t.(*types.Named); ok {
		if _, isStruct := named.Underlying().(*types.Struct); isStruct {
			w.checkAlias(named, path)
		}
		w.walk(named.Underlying(), path)
		return
	}
	if alias, ok := t.(*types.Alias); ok {
		w.walk(types.Unalias(alias), path)
		return
	}

	switch u := t.(type) {
	case *types.Basic:
		switch u.Kind() {
		case types.Bool,
			types.Int, types.Int8, types.Int16, types.Int32, types.Int64,
			types.Uint, types.Uint8, types.Uint16, types.Uint32, types.Uint64, types.Uintptr,
			types.Float32, types.Float64,
			types.String:
			return
		default:
			w.reject(path, u.String())
		}
	case *types.Array:
		w.walk(u.Elem(), path+"[i]")
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			f := u.Field(i)
			w.walk(f.Type(), path+"."+f.Name())
		}
	case *types.Map:
		w.reject(path, "map")
	case *types.Slice:
		w.reject(path, "slice")
	case *types.Pointer:
		w.reject(path, "pointer")
	case *types.Chan:
		w.reject(path, "chan")
	case *types.Signature:
		w.reject(path, "func")
	case *types.Interface:
		w.reject(path, "interface")
	default:
		w.reject(path, t.String())
	}
}

// reject reports one unhashable leaf, at the hash-call site so the
// diagnostic lands in the package that owns the key.
func (w *walker) reject(path, kind string) {
	w.pass.Reportf(w.call.Pos(),
		"hash key field %s has kind %s, which cachestore.HashValue rejects at runtime; "+
			"give the field an explicit stable digest (like workload.Ref fingerprints kernel "+
			"content) or remove it from the key (//p5lint:allow keyhash to defer to the runtime check)",
		path, kind)
}

// checkAlias detects two distinct struct types whose reflect strings
// collide: the runtime encoding writes t.String() ("pkgname.Type"),
// which is not package-path qualified.
func (w *walker) checkAlias(named *types.Named, path string) {
	obj := named.Obj()
	name := obj.Name()
	if obj.Pkg() != nil {
		name = obj.Pkg().Name() + "." + name
	}
	if prev, ok := w.names[name]; ok {
		if !types.Identical(prev, named) {
			w.pass.Reportf(w.call.Pos(),
				"hash key field %s: struct types %s and %s both encode as %q "+
					"(the canonical encoding is not package-path qualified), so their "+
					"keys can alias; rename one of the types",
				path, fullName(prev), fullName(named), name)
		}
		return
	}
	w.names[name] = named
}

func fullName(t types.Type) string {
	if named, ok := t.(*types.Named); ok && named.Obj().Pkg() != nil {
		return fmt.Sprintf("%s.%s", named.Obj().Pkg().Path(), named.Obj().Name())
	}
	return t.String()
}
