package keyhash

import (
	"testing"

	"power5prio/internal/lint/atest"
)

// TestKeyhashFixtures covers the acceptance-criterion case (a field
// added to the Job mirror but not wired into the hash schema), nested
// paths, the clean mirrored Job, suppression, Memo call sites, and the
// tier-0 calibration key (clean mirror plus the grown variant with a
// map field).
func TestKeyhashFixtures(t *testing.T) {
	atest.Run(t, "testdata/src", Analyzer, "./engine", "./memo", "./analytic")
}

// TestAliasFixture covers the reflect-string collision check.
func TestAliasFixture(t *testing.T) {
	atest.Run(t, "testdata/src", Analyzer, "./aliaspkg", "./aliaspkg/one/shape", "./aliaspkg/two/shape")
}
