// Package ctxflow implements the p5lint analyzer that guards
// cancellation flow: contexts must propagate, and library code must
// not mint ambient root contexts.
//
// The v2 measurement API's contract is that cancelling the caller's
// context stops every in-flight job and returns completed-prefix
// partials. That only holds if each layer hands its ctx down. A
// context.Background()/context.TODO() in library code detaches the
// work below it from the caller's cancellation, and an exported
// function that accepts a ctx but never uses it while calling
// ctx-aware callees silently severs the chain. Commands (package main)
// own their root context, so they are exempt; the nil-guard idiom
// `if ctx == nil { ctx = context.Background() }` is recognized as the
// documented "nil means background" API affordance and allowed.
package ctxflow

import (
	"go/ast"
	"go/types"

	"power5prio/internal/lint/analysis"
)

// Analyzer flags broken context propagation.
var Analyzer = &analysis.Analyzer{
	Name: "ctxflow",
	Doc: "report context.Background()/TODO() in library (non-main, non-test) code and exported " +
		"functions that accept a context.Context but call ctx-aware callees without propagating it",
	Run: run,
}

// packages scopes the propagation check (exported func accepting but
// not using ctx) to the concurrency-bearing layers. The root-context
// check applies to every library package regardless.
var packages string

func init() {
	Analyzer.Flags.StringVar(&packages, "packages",
		"internal/engine,internal/remote,internal/experiments",
		"comma-separated import-path substrings for the propagation check")
}

func run(pass *analysis.Pass) (any, error) {
	if pass.Pkg.Name() == "main" {
		return nil, nil // commands own their root context
	}
	for _, f := range pass.Files {
		checkRootContexts(pass, f)
		if analysis.MatchesAny(pass.ImportPath, packages) {
			checkPropagation(pass, f)
		}
	}
	return nil, nil
}

// checkRootContexts reports context.Background()/TODO() calls outside
// the nil-guard idiom.
func checkRootContexts(pass *analysis.Pass, f *ast.File) {
	var stack []ast.Node
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		name, ok := rootContextCall(pass, call)
		if !ok {
			return true
		}
		if inNilGuard(pass, stack, call) {
			return true
		}
		pass.Reportf(call.Pos(),
			"context.%s() in library code detaches callees from the caller's cancellation; "+
				"thread the caller's ctx through (or justify with //p5lint:allow ctxflow)", name)
		return true
	})
}

// rootContextCall recognizes context.Background() and context.TODO().
func rootContextCall(pass *analysis.Pass, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	obj, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || obj.Pkg() == nil || obj.Pkg().Path() != "context" {
		return "", false
	}
	if obj.Name() == "Background" || obj.Name() == "TODO" {
		return obj.Name(), true
	}
	return "", false
}

// inNilGuard reports whether the call is the right-hand side of
// `x = context.Background()` directly guarded by `if x == nil`.
func inNilGuard(pass *analysis.Pass, stack []ast.Node, call *ast.CallExpr) bool {
	// stack ends with ... IfStmt, BlockStmt, AssignStmt, CallExpr.
	if len(stack) < 4 {
		return false
	}
	as, ok := stack[len(stack)-2].(*ast.AssignStmt)
	if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 || as.Rhs[0] != ast.Expr(call) {
		return false
	}
	lhs, ok := as.Lhs[0].(*ast.Ident)
	if !ok {
		return false
	}
	target := pass.TypesInfo.Uses[lhs]
	if target == nil {
		return false
	}
	if _, ok := stack[len(stack)-3].(*ast.BlockStmt); !ok {
		return false
	}
	ifs, ok := stack[len(stack)-4].(*ast.IfStmt)
	if !ok {
		return false
	}
	bin, ok := ifs.Cond.(*ast.BinaryExpr)
	if !ok || bin.Op.String() != "==" {
		return false
	}
	for _, side := range []ast.Expr{bin.X, bin.Y} {
		if id, ok := side.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == target {
			other := bin.Y
			if side == bin.Y {
				other = bin.X
			}
			if id2, ok := other.(*ast.Ident); ok && id2.Name == "nil" {
				return true
			}
		}
	}
	return false
}

// checkPropagation reports exported functions that accept a ctx they
// never use while calling ctx-aware callees.
func checkPropagation(pass *analysis.Pass, f *ast.File) {
	for _, decl := range f.Decls {
		fn, ok := decl.(*ast.FuncDecl)
		if !ok || fn.Body == nil || !fn.Name.IsExported() {
			continue
		}
		ctxParam := contextParam(pass, fn)
		if ctxParam == nil {
			continue
		}
		if ctxParam.Name() == "" || ctxParam.Name() == "_" {
			// Deliberately discarded; still flag if ctx-aware callees exist.
		} else if usesObject(pass, fn.Body, ctxParam) {
			continue
		}
		if callee := firstCtxCallee(pass, fn.Body); callee != "" {
			pass.Reportf(fn.Name.Pos(),
				"exported %s accepts a context.Context but calls %s without propagating it; "+
					"pass the ctx down (or justify with //p5lint:allow ctxflow)",
				fn.Name.Name, callee)
		}
	}
}

// contextParam returns the function's context.Context parameter object.
func contextParam(pass *analysis.Pass, fn *ast.FuncDecl) *types.Var {
	obj, ok := pass.TypesInfo.Defs[fn.Name].(*types.Func)
	if !ok {
		return nil
	}
	sig := obj.Type().(*types.Signature)
	for i := 0; i < sig.Params().Len(); i++ {
		p := sig.Params().At(i)
		if isContextType(p.Type()) {
			return p
		}
	}
	return nil
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

// usesObject reports whether the body references obj.
func usesObject(pass *analysis.Pass, body *ast.BlockStmt, obj types.Object) bool {
	used := false
	ast.Inspect(body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == obj {
			used = true
		}
		return !used
	})
	return used
}

// firstCtxCallee returns the rendered name of the first called
// function whose signature starts with a context.Context, or "".
func firstCtxCallee(pass *analysis.Pass, body *ast.BlockStmt) string {
	name := ""
	ast.Inspect(body, func(n ast.Node) bool {
		if name != "" {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sig, ok := pass.TypesInfo.TypeOf(call.Fun).(*types.Signature)
		if !ok || sig.Params().Len() == 0 || !isContextType(sig.Params().At(0).Type()) {
			return true
		}
		name = calleeName(pass, call)
		return name == ""
	})
	return name
}

// calleeName renders a human-readable callee name.
func calleeName(pass *analysis.Pass, call *ast.CallExpr) string {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		if obj := pass.TypesInfo.Uses[fun.Sel]; obj != nil {
			return obj.Name()
		}
		return fun.Sel.Name
	}
	return "a ctx-aware callee"
}
