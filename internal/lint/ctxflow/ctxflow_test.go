package ctxflow

import (
	"testing"

	"power5prio/internal/lint/atest"
)

// TestCtxflowFixtures covers detached root contexts, the nil-guard
// affordance, suppression, and severed propagation in exported
// functions; the mainprog package pins the package-main exemption (it
// carries a bare context.Background() and no want comments).
func TestCtxflowFixtures(t *testing.T) {
	atest.SetFlag(t, Analyzer, "packages", "fixtures/")
	atest.Run(t, "testdata/src", Analyzer, "./ctxflow", "./mainprog")
}
