// Package ctxflow holds fixtures for the ctxflow analyzer: ambient
// root contexts in library code and severed propagation chains.
package ctxflow

import "context"

// helper is a ctx-aware callee.
func helper(ctx context.Context) error { return ctx.Err() }

// detached mints a root context in library code.
func detached() error {
	return helper(context.Background()) // want `context.Background\(\) in library code detaches callees`
}

// todoDetached does the same with TODO.
func todoDetached() error {
	return helper(context.TODO()) // want `context.TODO\(\) in library code detaches callees`
}

// NilGuarded is the documented "nil means background" affordance:
// allowed.
func NilGuarded(ctx context.Context) error {
	if ctx == nil {
		ctx = context.Background()
	}
	return helper(ctx)
}

// Waived carries an explicit justification: allowed.
func Waived() error {
	//p5lint:allow ctxflow detached audit goroutine outlives the request
	return helper(context.Background())
}

// Propagates hands its ctx down: clean.
func Propagates(ctx context.Context) error {
	return helper(ctx)
}

// Derives wraps the ctx before passing it on: still a use, clean.
func Derives(ctx context.Context) error {
	sub, cancel := context.WithCancel(ctx)
	defer cancel()
	return helper(sub)
}

// Drops accepts a ctx it never uses while calling a ctx-aware callee:
// the propagation chain is severed. The callee gets a root context so
// the root-context check fires too, on its own line.
func Drops(ctx context.Context) error { // want `exported Drops accepts a context.Context but calls helper without propagating it`
	return helper(context.TODO()) // want `context.TODO\(\) in library code detaches callees`
}

// Discards declares the ctx away entirely: same severed chain.
func Discards(_ context.Context, n int) int { // want `exported Discards accepts a context.Context but calls helper without propagating it`
	if err := helper(nil); err != nil {
		return 0
	}
	return n
}

// NoCtxCallees accepts a ctx it ignores but calls nothing ctx-aware:
// nothing to propagate to, clean.
func NoCtxCallees(ctx context.Context, n int) int {
	return n * 2
}

// unexportedDrops is not exported: the propagation check only guards
// the package's API surface.
func unexportedDrops(ctx context.Context) error {
	return helper(nil)
}
