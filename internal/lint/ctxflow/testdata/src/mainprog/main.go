// Command mainprog pins the exemption: commands own their root
// context, so context.Background() in package main is legal.
package main

import "context"

func main() {
	ctx := context.Background()
	_ = run(ctx)
}

func run(ctx context.Context) error { return ctx.Err() }
