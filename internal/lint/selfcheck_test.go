package lint

import (
	"os/exec"
	"strings"
	"testing"

	"power5prio/internal/lint/analysis"
	"power5prio/internal/lint/loader"
)

// TestSelfCheck is the meta-test behind the lint gate: the full p5lint
// suite must run clean over the repo's own tree (suppressions count as
// clean — they are reviewed justifications). This is the same pass
// `make lint` and CI run via cmd/p5lint, executed in-process so a
// violating commit fails plain `go test ./...` too.
func TestSelfCheck(t *testing.T) {
	out, err := exec.Command("go", "list", "-m", "-f", "{{.Dir}}").Output()
	if err != nil {
		t.Fatalf("go list -m: %v", err)
	}
	root := strings.TrimSpace(string(out))

	pkgs, err := loader.Load(root, "./...")
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pkgs {
		for _, terr := range p.TypeErrors {
			t.Fatalf("%s: type error: %v", p.ImportPath, terr)
		}
	}
	diags, err := analysis.Run(pkgs, Analyzers())
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		pos := pkgs[0].Fset.Position(d.Pos)
		t.Errorf("%s: %s (%s)", pos, d.Message, d.Analyzer)
	}
	if t.Failed() {
		t.Log("fix the findings or add a reviewed //p5lint:ordered / //p5lint:allow justification")
	}
}
