// Package lint assembles the repo's static-analysis suite: four
// analyzers that enforce, at build time, the determinism and
// cache-soundness invariants the test suite otherwise only catches
// dynamically (lockstep, fuzz and perturbation tests).
//
//	detmap      map iteration order must never reach ordered output
//	nowallclock no wall clock or ambient entropy inside the simulator
//	keyhash     every hash-key type must be canonically hashable
//	ctxflow     contexts must propagate; no ambient roots in libraries
//
// cmd/p5lint is the command-line driver; TestSelfCheck keeps the gate
// green from inside `go test ./...` as well, so a violation fails both
// `make lint` and the ordinary test run.
package lint

import (
	"power5prio/internal/lint/analysis"
	"power5prio/internal/lint/ctxflow"
	"power5prio/internal/lint/detmap"
	"power5prio/internal/lint/keyhash"
	"power5prio/internal/lint/nowallclock"
)

// Analyzers returns the full p5lint suite in reporting order.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		detmap.Analyzer,
		nowallclock.Analyzer,
		keyhash.Analyzer,
		ctxflow.Analyzer,
	}
}
