// Package atest is the repo's stand-in for
// golang.org/x/tools/go/analysis/analysistest: it runs one analyzer
// over fixture packages and matches its diagnostics against `// want`
// comments in the fixture source.
//
// Fixtures live under <analyzer>/testdata/src, which carries its own
// go.mod (module "fixtures") so the violating code is a real,
// type-checkable module that the repo's own build never compiles. A
// line expecting diagnostics ends with one or more
//
//	// want "regexp" "regexp"
//
// comments; every regexp must match a distinct diagnostic reported on
// that line, and every diagnostic must be matched by some regexp.
// Suppression directives (//p5lint:ordered, //p5lint:allow) are
// honored before matching, so fixtures also pin the suppression
// behavior by carrying a directive and no want comment.
package atest

import (
	"fmt"
	"go/token"
	"regexp"
	"strings"
	"testing"

	"power5prio/internal/lint/analysis"
	"power5prio/internal/lint/loader"
)

// wantRE extracts quoted expectations from a want comment: either
// double-quoted (backslash escapes honored) or backquoted (verbatim),
// matching analysistest's syntax.
var wantRE = regexp.MustCompile("\"((?:[^\"\\\\]|\\\\.)*)\"|`([^`]*)`")

// Run loads the fixture patterns rooted at dir (typically
// "testdata/src") and checks the analyzer's diagnostics against the
// fixtures' want comments.
func Run(t *testing.T, dir string, a *analysis.Analyzer, patterns ...string) {
	t.Helper()
	pkgs, err := loader.Load(dir, patterns...)
	if err != nil {
		t.Fatalf("atest: load fixtures: %v", err)
	}
	for _, p := range pkgs {
		for _, terr := range p.TypeErrors {
			t.Errorf("atest: fixture %s has type errors: %v", p.ImportPath, terr)
		}
	}
	diags, err := analysis.Run(pkgs, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("atest: run %s: %v", a.Name, err)
	}

	type key struct {
		file string
		line int
	}
	got := make(map[key][]string)
	var fset *token.FileSet
	for _, p := range pkgs {
		fset = p.Fset
	}
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		got[key{pos.Filename, pos.Line}] = append(got[key{pos.Filename, pos.Line}], d.Message)
	}

	want := make(map[key][]*regexp.Regexp)
	for _, p := range pkgs {
		for _, f := range p.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					text := strings.TrimPrefix(c.Text, "//")
					text = strings.TrimSpace(text)
					if !strings.HasPrefix(text, "want ") {
						continue
					}
					pos := p.Fset.Position(c.Pos())
					k := key{pos.Filename, pos.Line}
					for _, m := range wantRE.FindAllStringSubmatch(text[len("want "):], -1) {
						raw := m[2] // backquoted: verbatim
						if m[1] != "" || m[2] == "" {
							raw = unquote(m[1])
						}
						pat, err := regexp.Compile(raw)
						if err != nil {
							t.Fatalf("%s:%d: bad want pattern %q: %v", pos.Filename, pos.Line, raw, err)
						}
						want[k] = append(want[k], pat)
					}
				}
			}
		}
	}

	for k, pats := range want {
		msgs := append([]string(nil), got[k]...)
		for _, pat := range pats {
			idx := -1
			for i, msg := range msgs {
				if pat.MatchString(msg) {
					idx = i
					break
				}
			}
			if idx < 0 {
				t.Errorf("%s:%d: no diagnostic matching %q (got %s)", k.file, k.line, pat, render(msgs))
				continue
			}
			msgs = append(msgs[:idx], msgs[idx+1:]...)
		}
		for _, msg := range msgs {
			t.Errorf("%s:%d: unexpected diagnostic: %s", k.file, k.line, msg)
		}
		delete(got, k)
	}
	for k, msgs := range got {
		for _, msg := range msgs {
			t.Errorf("%s:%d: unexpected diagnostic: %s", k.file, k.line, msg)
		}
	}
}

// SetFlag sets an analyzer flag for the duration of the test (fixture
// packages live under the "fixtures" module, so scoping flags must be
// repointed at fixture paths).
func SetFlag(t *testing.T, a *analysis.Analyzer, name, value string) {
	t.Helper()
	f := a.Flags.Lookup(name)
	if f == nil {
		t.Fatalf("atest: analyzer %s has no flag %q", a.Name, name)
	}
	old := f.Value.String()
	if err := f.Value.Set(value); err != nil {
		t.Fatalf("atest: set %s.%s: %v", a.Name, name, err)
	}
	t.Cleanup(func() { _ = f.Value.Set(old) })
}

func unquote(s string) string {
	s = strings.ReplaceAll(s, `\"`, `"`)
	return strings.ReplaceAll(s, `\\`, `\`)
}

func render(msgs []string) string {
	if len(msgs) == 0 {
		return "none"
	}
	return fmt.Sprintf("%d: %s", len(msgs), strings.Join(msgs, " | "))
}
