package nowallclock

import (
	"testing"

	"power5prio/internal/lint/analysis"
	"power5prio/internal/lint/atest"
	"power5prio/internal/lint/loader"
)

func loadFixture(t *testing.T) []*loader.Package {
	t.Helper()
	pkgs, err := loader.Load("testdata/src", "./nowallclock")
	if err != nil {
		t.Fatal(err)
	}
	return pkgs
}

func runAnalyzer(t *testing.T, pkgs []*loader.Package) []analysis.Diagnostic {
	t.Helper()
	diags, err := analysis.Run(pkgs, []*analysis.Analyzer{Analyzer})
	if err != nil {
		t.Fatal(err)
	}
	return diags
}

func TestNowallclockFixtures(t *testing.T) {
	atest.SetFlag(t, Analyzer, "packages", "fixtures/")
	atest.Run(t, "testdata/src", Analyzer, "./nowallclock")
}

// TestOutOfScopePackagesIgnored pins the scoping contract: the same
// violating code outside the configured simulator packages is not
// flagged (the batch/report layers may legitimately time things).
func TestOutOfScopePackagesIgnored(t *testing.T) {
	atest.SetFlag(t, Analyzer, "packages", "internal/pipeline")
	// With the default-like scope, the fixture package matches nothing,
	// so atest expects zero diagnostics — but the fixture carries want
	// comments. Run the analyzer directly instead.
	pkgs := loadFixture(t)
	diags := runAnalyzer(t, pkgs)
	if len(diags) != 0 {
		t.Fatalf("out-of-scope package produced %d diagnostics, want 0: %v", len(diags), diags[0].Message)
	}
}
