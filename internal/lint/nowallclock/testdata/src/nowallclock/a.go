// Package nowallclock holds fixtures for the nowallclock analyzer:
// wall-clock reads and ambient entropy are illegal inside simulator
// packages, explicitly seeded sources are fine.
package nowallclock

import (
	"math/rand"
	"time"
)

// stampCycle reads the wall clock.
func stampCycle() int64 {
	return time.Now().UnixNano() // want `time.Now reads the wall clock`
}

// elapsed uses Since and Until.
func elapsed(start time.Time) (time.Duration, time.Duration) {
	a := time.Since(start) // want `time.Since reads the wall clock`
	b := time.Until(start) // want `time.Until reads the wall clock`
	return a, b
}

// jitter draws from the auto-seeded global source.
func jitter(n int) int {
	return rand.Intn(n) // want `rand.Intn draws from the auto-seeded global source`
}

// shuffleGlobal also uses the global source.
func shuffleGlobal(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want `rand.Shuffle draws from the auto-seeded global source`
}

// seeded is the legal form: a pure function of the configured seed.
func seeded(seed int64, n int) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(n)
}

// durations are plain arithmetic, not clock reads.
func durations(d time.Duration) time.Duration {
	return d * 2
}

// justified carries an explicit waiver (e.g. coarse progress logging
// that provably cannot reach simulated state).
func justified() int64 {
	//p5lint:allow nowallclock progress logging only, never reaches state
	return time.Now().UnixNano()
}
