// Package nowallclock implements the p5lint analyzer that guards the
// simulator's replay determinism: no wall-clock reads and no ambient
// entropy inside simulator packages.
//
// The simulator's notion of time is the simulated cycle counter;
// fast-forward equivalence (event wheel vs stepping) and lockstep
// tests compare runs cycle-for-cycle, so a time.Now, time.Since or a
// call into math/rand's auto-seeded global source inside the simulator
// would make two runs of the same Job diverge — poisoning cached
// PairResults keyed only by the Job. Explicitly seeded sources
// (rand.New(rand.NewSource(seed))) are fine: they are pure functions
// of the seed, which is part of the configuration.
package nowallclock

import (
	"go/ast"
	"go/types"

	"power5prio/internal/lint/analysis"
)

// Analyzer flags wall-clock and ambient-entropy calls in simulator
// packages.
var Analyzer = &analysis.Analyzer{
	Name: "nowallclock",
	Doc: "forbid time.Now/time.Since/time.Until and unseeded math/rand in simulator packages, " +
		"where wall-clock or entropy breaks replay determinism and lockstep equivalence",
	Run: run,
}

// packages lists the simulator layers where simulated time is the only
// legal clock.
var packages string

func init() {
	Analyzer.Flags.StringVar(&packages, "packages",
		"internal/pipeline,internal/core,internal/fame,internal/prio,internal/balance,internal/mem,internal/oskernel",
		"comma-separated import-path substrings the analyzer applies to")
}

// seededConstructors are the math/rand functions that take an explicit
// seed (or wrap an explicitly seeded source) and are therefore
// deterministic.
var seededConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
}

func run(pass *analysis.Pass) (any, error) {
	if !analysis.MatchesAny(pass.ImportPath, packages) {
		return nil, nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
			if !ok || obj.Pkg() == nil {
				return true
			}
			if obj.Type().(*types.Signature).Recv() != nil {
				return true // methods (e.g. on a seeded *rand.Rand) are fine
			}
			switch obj.Pkg().Path() {
			case "time":
				switch obj.Name() {
				case "Now", "Since", "Until":
					pass.Reportf(call.Pos(),
						"time.%s reads the wall clock inside a simulator package; "+
							"simulated time is the cycle counter — derive timing from it "+
							"(or justify with //p5lint:allow nowallclock)", obj.Name())
				}
			case "math/rand", "math/rand/v2":
				if seededConstructors[obj.Name()] {
					return true
				}
				pass.Reportf(call.Pos(),
					"%s.%s draws from the auto-seeded global source inside a simulator package; "+
						"use rand.New(rand.NewSource(seed)) with a configured seed "+
						"(or justify with //p5lint:allow nowallclock)", obj.Pkg().Name(), obj.Name())
			}
			return true
		})
	}
	return nil, nil
}
