package fame

import (
	"testing"

	"power5prio/internal/core"
	"power5prio/internal/isa"
	"power5prio/internal/prio"
)

func kernel(t *testing.T, iters int) *isa.Kernel {
	t.Helper()
	b := isa.NewBuilder("k")
	a := b.Reg("a")
	one := b.Reg("one")
	for i := 0; i < 4; i++ {
		b.Op2(isa.OpIntAdd, a, a, one)
	}
	b.Branch(isa.BranchLoop, a)
	k, err := b.Build(iters)
	if err != nil {
		t.Fatal(err)
	}
	return k
}

func TestDefaultOptionsValid(t *testing.T) {
	if err := DefaultOptions().Validate(); err != nil {
		t.Fatalf("DefaultOptions invalid: %v", err)
	}
}

func TestOptionsValidateRejects(t *testing.T) {
	bad := []Options{
		{MinReps: 0, MaxCycles: 1},
		{MinReps: 1, WarmupReps: -1, MaxCycles: 1},
		{MinReps: 1, MAIV: -0.5, MaxCycles: 1},
		{MinReps: 1, MaxCycles: 0},
	}
	for i, o := range bad {
		if err := o.Validate(); err == nil {
			t.Errorf("options %d accepted: %+v", i, o)
		}
	}
}

func TestMeasureSingleThread(t *testing.T) {
	ch := core.NewChip(core.DefaultConfig())
	ch.PlacePair(kernel(t, 16), nil, prio.Medium, prio.Medium, prio.User)
	res := Measure(ch, Options{MinReps: 5, WarmupReps: 1, MaxCycles: 1_000_000})
	tr := res.Thread[0]
	if !tr.Active {
		t.Fatal("thread 0 not active")
	}
	if tr.Reps < 5 {
		t.Errorf("measured %d reps, want >= 5", tr.Reps)
	}
	if tr.IPC <= 0 {
		t.Errorf("IPC = %v, want > 0", tr.IPC)
	}
	if tr.AvgRepCycles <= 0 {
		t.Errorf("AvgRepCycles = %v, want > 0", tr.AvgRepCycles)
	}
	if res.Thread[1].Active {
		t.Error("inactive thread reported active")
	}
	if res.TotalIPC != tr.IPC {
		t.Errorf("TotalIPC %v != thread IPC %v for a single-thread run", res.TotalIPC, tr.IPC)
	}
	if res.TimedOut {
		t.Error("unexpected timeout")
	}
}

// TestMeasureInstrAccounting: IPC * cycles must equal the measured
// instruction count, and instructions per rep must equal the kernel's
// dynamic length exactly.
func TestMeasureInstrAccounting(t *testing.T) {
	k := kernel(t, 16)
	ch := core.NewChip(core.DefaultConfig())
	ch.PlacePair(k, nil, prio.Medium, prio.Medium, prio.User)
	res := Measure(ch, Options{MinReps: 6, WarmupReps: 2, MaxCycles: 1_000_000})
	tr := res.Thread[0]
	if got := tr.Instructions; got != tr.Reps*k.DynLen() {
		t.Errorf("instructions %d != reps %d * dynlen %d", got, tr.Reps, k.DynLen())
	}
}

func TestMeasurePairBothCounted(t *testing.T) {
	ch := core.NewChip(core.DefaultConfig())
	ch.PlacePair(kernel(t, 16), kernel(t, 16), prio.Medium, prio.Medium, prio.User)
	res := Measure(ch, Options{MinReps: 4, WarmupReps: 1, MaxCycles: 2_000_000})
	if !res.Thread[0].Active || !res.Thread[1].Active {
		t.Fatal("both threads must be active")
	}
	if res.Thread[0].Reps < 4 || res.Thread[1].Reps < 4 {
		t.Errorf("reps = (%d,%d), want both >= 4 (FAME: both threads must reach the minimum)",
			res.Thread[0].Reps, res.Thread[1].Reps)
	}
	want := res.Thread[0].IPC + res.Thread[1].IPC
	if res.TotalIPC != want {
		t.Errorf("TotalIPC %v != %v", res.TotalIPC, want)
	}
}

// TestMeasureUnequalSpeeds mirrors the paper's Figure 1: the faster thread
// keeps re-executing until the slower one reaches the minimum.
func TestMeasureUnequalSpeeds(t *testing.T) {
	ch := core.NewChip(core.DefaultConfig())
	ch.PlacePair(kernel(t, 64), kernel(t, 8), prio.Medium, prio.Medium, prio.User)
	res := Measure(ch, Options{MinReps: 4, WarmupReps: 0, MaxCycles: 2_000_000})
	if res.Thread[1].Reps <= res.Thread[0].Reps {
		t.Errorf("short kernel reps %d <= long kernel reps %d; faster thread must re-execute more",
			res.Thread[1].Reps, res.Thread[0].Reps)
	}
	if res.Thread[0].Reps < 4 {
		t.Errorf("slow thread stopped at %d reps, want >= 4", res.Thread[0].Reps)
	}
}

func TestMeasureTimeout(t *testing.T) {
	ch := core.NewChip(core.DefaultConfig())
	ch.PlacePair(kernel(t, 64), nil, prio.Medium, prio.Medium, prio.User)
	res := Measure(ch, Options{MinReps: 1000000, MaxCycles: 5000})
	if !res.TimedOut {
		t.Error("expected timeout")
	}
	if res.Cycles < 5000 {
		t.Errorf("stopped at %d cycles, want >= MaxCycles", res.Cycles)
	}
}

func TestMeasureMAIVStopsEarly(t *testing.T) {
	// A perfectly periodic kernel converges immediately; MAIV must stop
	// the run well before an absurd MinReps.
	ch := core.NewChip(core.DefaultConfig())
	ch.PlacePair(kernel(t, 16), nil, prio.Medium, prio.Medium, prio.User)
	res := Measure(ch, Options{MinReps: 10000, WarmupReps: 1, MAIV: 0.05, MaxCycles: 50_000_000})
	if res.TimedOut {
		t.Fatal("MAIV run timed out")
	}
	if res.Thread[0].Reps >= 10000 {
		t.Error("MAIV did not stop early")
	}
	if res.Thread[0].Reps < 3 {
		t.Errorf("MAIV stopped at %d reps, needs at least 3", res.Thread[0].Reps)
	}
}

func TestMeasurePanicsWithNoThreads(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Measure accepted a chip with no active threads")
		}
	}()
	ch := core.NewChip(core.DefaultConfig())
	Measure(ch, DefaultOptions())
}

func TestMeasurePanicsOnBadOptions(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Measure accepted invalid options")
		}
	}()
	ch := core.NewChip(core.DefaultConfig())
	ch.PlacePair(kernel(t, 8), nil, prio.Medium, prio.Medium, prio.User)
	Measure(ch, Options{})
}
