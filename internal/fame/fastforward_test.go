package fame

import (
	"fmt"
	"reflect"
	"testing"

	"power5prio/internal/core"
	"power5prio/internal/isa"
	"power5prio/internal/microbench"
	"power5prio/internal/oskernel"
	"power5prio/internal/prio"
)

// ffKernels caches small-iteration kernels per benchmark name: building
// the 64MB chase permutations dominates test time otherwise. Kernels
// with a Pattern function are stateful closures and must be built fresh
// for every machine, or runs would interfere through the shared state.
var ffKernels = map[string]*isa.Kernel{}

func ffKernel(t *testing.T, name string) *isa.Kernel {
	t.Helper()
	if k, ok := ffKernels[name]; ok {
		return k
	}
	k, err := microbench.BuildWith(name, microbench.Params{Iters: 12})
	if err != nil {
		t.Fatal(err)
	}
	if k.Pattern == nil {
		ffKernels[name] = k
	}
	return k
}

// ffOptions keeps equivalence runs short but exercises warmup, MAIV
// convergence and the repetition-gated done check.
func ffOptions() Options {
	return Options{MinReps: 2, WarmupReps: 1, MAIV: 0.01, MaxCycles: 5_000_000}
}

// measureBoth runs the machine built by build twice — fast-forward off,
// then on — and asserts the measurement, every thread's statistics,
// every core's statistics and the cycle counts are identical.
func measureBoth(t *testing.T, label string, opt Options, build func() (Machine, *core.Chip)) {
	t.Helper()
	prev := SetFastForward(false)
	defer SetFastForward(prev)

	mOff, chOff := build()
	resOff := Measure(mOff, opt)

	SetFastForward(true)
	mOn, chOn := build()
	resOn := Measure(mOn, opt)

	if !reflect.DeepEqual(resOff, resOn) {
		t.Errorf("%s: PairResult diverged\n  off: %+v\n  on:  %+v", label, resOff, resOn)
	}
	for ci := range chOff.Cores {
		cOff, cOn := chOff.Cores[ci], chOn.Cores[ci]
		if cOff.Cycle() != cOn.Cycle() {
			t.Errorf("%s: core %d cycle count diverged: off %d, on %d", label, ci, cOff.Cycle(), cOn.Cycle())
		}
		if !reflect.DeepEqual(cOff.CoreStats(), cOn.CoreStats()) {
			t.Errorf("%s: core %d CoreStats diverged\n  off: %+v\n  on:  %+v",
				label, ci, cOff.CoreStats(), cOn.CoreStats())
		}
		for th := 0; th < 2; th++ {
			if !reflect.DeepEqual(cOff.Stats(th), cOn.Stats(th)) {
				t.Errorf("%s: core %d thread %d ThreadStats diverged\n  off: %+v\n  on:  %+v",
					label, ci, th, cOff.Stats(th), cOn.Stats(th))
			}
		}
	}
}

// pairBuilder places freshly resolved kernels a/b (b may be empty for a
// single-thread run) on a fresh default chip at the given levels.
func pairBuilder(t *testing.T, a, b string, pa, pb prio.Level) func() (Machine, *core.Chip) {
	return func() (Machine, *core.Chip) {
		var kb *isa.Kernel
		if b != "" {
			kb = ffKernel(t, b)
		}
		ch := core.NewChip(core.DefaultConfig())
		ch.PlacePair(ffKernel(t, a), kb, pa, pb, prio.Supervisor)
		return ch, ch
	}
}

// TestFastForwardEquivalence proves the idle-cycle fast-forward is
// bit-identical to stepping: every microbench pair at the default
// priorities, representative pairs across the full priority range
// (including single-thread, thread-off and the (1,1) low-power mode),
// and an oskernel-wrapped machine all produce identical ThreadStats,
// CoreStats, cycle counts and PairResults with the skip on and off.
func TestFastForwardEquivalence(t *testing.T) {
	names := microbench.Names()

	t.Run("AllPairsMedium", func(t *testing.T) {
		opt := ffOptions()
		for _, a := range names {
			for _, b := range names {
				label := fmt.Sprintf("%s+%s(4,4)", a, b)
				measureBoth(t, label, opt, pairBuilder(t, a, b, prio.Medium, prio.Medium))
			}
		}
	})

	t.Run("PriorityLevels", func(t *testing.T) {
		opt := ffOptions()
		primaries := []string{microbench.CPUInt, microbench.LdIntL1, microbench.LdIntMem}
		secondaries := []string{microbench.LdIntMem, microbench.CPUInt}
		for _, a := range primaries {
			for _, b := range secondaries {
				for pa := prio.VeryLow; pa <= prio.VeryHigh; pa++ {
					for _, pb := range []prio.Level{prio.VeryLow, prio.Medium, prio.High} {
						label := fmt.Sprintf("%s+%s(%d,%d)", a, b, pa, pb)
						measureBoth(t, label, opt, pairBuilder(t, a, b, pa, pb))
					}
				}
			}
		}
	})

	t.Run("SingleThread", func(t *testing.T) {
		opt := ffOptions()
		for _, a := range []string{microbench.CPUInt, microbench.LdIntL1, microbench.LdIntMem, microbench.LdIntL3} {
			label := a + "(single)"
			measureBoth(t, label, opt, pairBuilder(t, a, "", prio.Medium, prio.Medium))
		}
	})

	t.Run("Timeout", func(t *testing.T) {
		// A run that hits MaxCycles must time out on exactly the same
		// cycle, with identical partial statistics.
		opt := ffOptions()
		opt.MaxCycles = 50_000
		measureBoth(t, "ldint_mem+ldfp_mem(timeout)", opt,
			pairBuilder(t, microbench.LdIntMem, microbench.LdFPMem, prio.Medium, prio.Medium))
	})

	t.Run("OSKernel", func(t *testing.T) {
		opt := ffOptions()
		tickCfgs := []oskernel.Config{
			{TickCycles: 2_000, HandlerCycles: 40},
			{TickCycles: 977, HandlerCycles: 13}, // prime period: ticks land mid-span
			{TickCycles: 131, HandlerCycles: 0},  // dense, zero-overhead interrupts
		}
		for _, patched := range []bool{false, true} {
			for _, tc := range tickCfgs {
				cfg := tc
				cfg.Patched = patched
				label := fmt.Sprintf("oskernel(patched=%v,tick=%d)", patched, cfg.TickCycles)
				var built []*oskernel.OS
				measureBoth(t, label, opt, func() (Machine, *core.Chip) {
					ch := core.NewChip(core.DefaultConfig())
					ch.PlacePair(ffKernel(t, microbench.CPUInt), ffKernel(t, microbench.LdIntMem),
						prio.High, prio.Low, prio.Supervisor)
					os := oskernel.New(ch, cfg)
					built = append(built, os)
					return os, ch
				})
				// The kernel's observable side effects — interrupts delivered
				// and priorities reset — must also match exactly.
				if len(built) == 2 {
					off, on := built[0], built[1]
					if off.Ticks != on.Ticks || off.Resets != on.Resets {
						t.Errorf("%s: kernel state diverged: off ticks=%d resets=%d, on ticks=%d resets=%d",
							label, off.Ticks, off.Resets, on.Ticks, on.Resets)
					}
				}
			}
		}
	})
}

// TestAdvanceNeverSkipsTimerTick pins the oskernel event-wheel contract:
// an advance may never jump past a pending timer tick, no matter how far
// the chip's own next event lies, for both stock and patched kernels and
// for tick periods that land mid-span of the chip's skippable windows.
func TestAdvanceNeverSkipsTimerTick(t *testing.T) {
	for _, patched := range []bool{false, true} {
		cfg := oskernel.Config{Patched: patched, TickCycles: 977, HandlerCycles: 13}
		ch := core.NewChip(core.DefaultConfig())
		ch.PlacePair(ffKernel(t, microbench.LdIntMem), ffKernel(t, microbench.LdIntMem),
			prio.High, prio.Low, prio.Supervisor)
		os := oskernel.New(ch, cfg)
		c := ch.ExperimentCore()
		for c.Cycle() < 300_000 {
			// The next undelivered tick is a hard wall for any advance.
			boundary := cfg.TickCycles * (os.Ticks + 1)
			n := os.AdvanceToNextEvent(1 << 62)
			if c.Cycle() > boundary {
				t.Fatalf("patched=%v: advance of %d jumped past tick %d to cycle %d",
					patched, n, boundary, c.Cycle())
			}
			if n == 0 {
				os.Step()
			}
		}
		if os.Ticks == 0 {
			t.Fatalf("patched=%v: no timer ticks delivered", patched)
		}
	}
}

// TestAdvanceNeverExceedsBound pins the Skipper contract Measure relies
// on for exact timeout behaviour.
func TestAdvanceNeverExceedsBound(t *testing.T) {
	ch := core.NewChip(core.DefaultConfig())
	ch.PlacePair(ffKernel(t, microbench.LdIntMem), ffKernel(t, microbench.LdIntMem), prio.Medium, prio.Medium, prio.User)
	c := ch.ExperimentCore()
	for i := 0; i < 20_000; i++ {
		bound := c.Cycle() + 37
		ch.AdvanceToNextEvent(bound)
		if c.Cycle() > bound {
			t.Fatalf("AdvanceToNextEvent passed its bound: cycle %d > %d", c.Cycle(), bound)
		}
		ch.Step()
	}
}
