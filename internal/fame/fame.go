// Package fame implements the FAME (FAirly MEasuring Multithreaded
// Architectures) methodology the paper uses (its refs [24][25]): in a
// multiprogrammed run, every benchmark is re-executed until it has
// completed enough repetitions that its average accumulated IPC is within
// MAIV (Maximum Allowable IPC Variation) of the steady-state IPC. The
// paper's setup required at least 10 repetitions per thread for a 1% MAIV.
//
// Average execution time is the total accounted time divided by the number
// of complete repetitions; the trailing incomplete repetition is discarded,
// exactly as in the paper's Figure 1.
package fame

import (
	"fmt"
	"sync/atomic"

	"power5prio/internal/pipeline"
)

// Machine is the simulated system FAME drives: a chip, optionally wrapped
// by OS behaviour (see internal/oskernel).
type Machine interface {
	Step()
	ExperimentCore() *pipeline.Core
}

// Skipper is the optional fast-path a Machine may provide:
// AdvanceToNextEvent jumps the machine to the next cycle at which its
// state can change (its event wheel's minimum posted event), never
// beyond bound, and returns the number of cycles skipped (zero when
// work is due on the current cycle). Implementations must be
// bit-identical to stepping — core.Chip and oskernel.OS both qualify —
// so Measure uses the fast path whenever it is offered.
type Skipper interface {
	AdvanceToNextEvent(bound uint64) uint64
}

// fastForward gates Measure's use of the Skipper fast path. It defaults
// to on; SetFastForward(false) is the A/B escape hatch (the -fastforward
// command flags, the equivalence tests) forcing pure cycle stepping.
// The flag is process-wide and atomic: concurrent measurement workers
// read it freely, but it should be set before measurements start.
var fastForward atomic.Bool

func init() { fastForward.Store(true) }

// SetFastForward toggles the idle-cycle fast-forward globally and
// returns the previous setting. Results are identical either way; only
// wall-clock time changes.
func SetFastForward(on bool) (prev bool) { return fastForward.Swap(on) }

// FastForwardEnabled reports whether Measure uses the Skipper fast path.
func FastForwardEnabled() bool { return fastForward.Load() }

// Options controls a measurement.
type Options struct {
	// MinReps is the minimum number of complete repetitions each active
	// thread must finish (the paper's calibrated value is 10).
	MinReps int
	// WarmupReps are initial repetitions excluded from the averages (cold
	// caches); they still count toward run length.
	WarmupReps int
	// MAIV, when positive, allows stopping before MinReps + WarmupReps
	// once the running average IPC of every active thread has converged to
	// within this relative fraction over the last two repetitions (but
	// never below 3 measured repetitions).
	MAIV float64
	// MaxCycles bounds the run; measurements that hit it are flagged.
	MaxCycles uint64
}

// DefaultOptions mirrors the paper's setup: MAIV 1%, at least 10
// repetitions, one warmup repetition.
func DefaultOptions() Options {
	return Options{MinReps: 10, WarmupReps: 1, MAIV: 0.01, MaxCycles: 200_000_000}
}

// Validate checks option consistency.
func (o Options) Validate() error {
	if o.MinReps <= 0 {
		return fmt.Errorf("fame: MinReps must be positive, got %d", o.MinReps)
	}
	if o.WarmupReps < 0 {
		return fmt.Errorf("fame: WarmupReps must be non-negative, got %d", o.WarmupReps)
	}
	if o.MAIV < 0 {
		return fmt.Errorf("fame: MAIV must be non-negative, got %g", o.MAIV)
	}
	if o.MaxCycles == 0 {
		return fmt.Errorf("fame: MaxCycles must be positive")
	}
	return nil
}

// ThreadResult is the per-thread measurement.
type ThreadResult struct {
	Active       bool
	Reps         uint64  // measured (post-warmup) complete repetitions
	AvgRepCycles float64 // average cycles per repetition
	IPC          float64 // average accumulated IPC over measured reps
	Instructions uint64  // instructions in measured reps
	Cycles       uint64  // cycles spanned by measured reps
}

// PairResult is the outcome of one co-scheduled measurement.
type PairResult struct {
	Thread   [2]ThreadResult
	TotalIPC float64 // sum of per-thread IPCs (the paper's "tt")
	Cycles   uint64  // total cycles simulated
	TimedOut bool
}

// Measure runs the machine until every active thread on the experiment
// core has completed WarmupReps+MinReps repetitions (or MAIV convergence),
// then reports per-thread averages.
func Measure(ch Machine, opt Options) PairResult {
	if err := opt.Validate(); err != nil {
		panic(err)
	}
	c := ch.ExperimentCore()
	active := [2]bool{c.Running(0), c.Running(1)}
	if !active[0] && !active[1] {
		panic("fame: no active thread on the experiment core")
	}
	target := uint64(opt.WarmupReps + opt.MinReps)

	doneAll := func() bool {
		for t := 0; t < 2; t++ {
			if !active[t] {
				continue
			}
			reps := c.Stats(t).Repetitions
			if reps >= target {
				continue
			}
			if opt.MAIV > 0 && converged(c.Stats(t).RepEndCycles, opt.WarmupReps, opt.MAIV) {
				continue
			}
			return false
		}
		return true
	}

	sk, _ := ch.(Skipper)
	if !fastForward.Load() {
		sk = nil
	}

	// doneAll only changes when a repetition completes (both the
	// rep-count and MAIV tests depend solely on repetition boundaries),
	// so the convergence check is gated on the Repetitions counters
	// advancing instead of re-run every cycle. Idle windows are skipped
	// through the machine's fast path when it offers one: a skip cannot
	// retire anything, so it cannot change doneAll either.
	timedOut := false
	reps := c.Repetitions(0) + c.Repetitions(1)
	for done := doneAll(); !done; {
		if c.Cycle() >= opt.MaxCycles {
			timedOut = true
			break
		}
		if sk != nil && sk.AdvanceToNextEvent(opt.MaxCycles) > 0 {
			continue
		}
		ch.Step()
		if r := c.Repetitions(0) + c.Repetitions(1); r != reps {
			reps = r
			done = doneAll()
		}
	}

	var res PairResult
	res.Cycles = c.Cycle()
	res.TimedOut = timedOut
	for t := 0; t < 2; t++ {
		if !active[t] {
			continue
		}
		res.Thread[t] = threadResult(ch, t, opt.WarmupReps)
	}
	res.TotalIPC = res.Thread[0].IPC + res.Thread[1].IPC
	return res
}

// converged reports whether the per-repetition average has stabilized to
// within maiv over the last two completed repetitions.
func converged(ends []uint64, warmup int, maiv float64) bool {
	ends = measured(ends, warmup)
	n := len(ends)
	if n < 3 {
		return false
	}
	// Average rep time using n and n-1 reps; relative change below MAIV
	// means the accumulated average is stable.
	start := float64(0)
	avgN := (float64(ends[n-1]) - start) / float64(n)
	avgP := (float64(ends[n-2]) - start) / float64(n-1)
	diff := avgN - avgP
	if diff < 0 {
		diff = -diff
	}
	return diff/avgN < maiv
}

// measured drops the warmup prefix of repetition end-cycles.
func measured(ends []uint64, warmup int) []uint64 {
	if warmup >= len(ends) {
		return nil
	}
	return ends[warmup:]
}

// threadResult computes the paper's estimators for one thread.
func threadResult(ch Machine, t int, warmup int) ThreadResult {
	c := ch.ExperimentCore()
	st := c.Stats(t)
	all := st.RepEndCycles
	if warmup >= len(all) {
		return ThreadResult{Active: true}
	}
	var startCycle, startInstr uint64
	if warmup > 0 {
		startCycle = all[warmup-1]
		startInstr = st.RepEndInstrs[warmup-1]
	}
	ends := all[warmup:]
	reps := uint64(len(ends))
	span := ends[len(ends)-1] - startCycle
	if span == 0 {
		span = 1
	}
	instr := st.RepEndInstrs[len(st.RepEndInstrs)-1] - startInstr
	return ThreadResult{
		Active:       true,
		Reps:         reps,
		AvgRepCycles: float64(span) / float64(reps),
		IPC:          float64(instr) / float64(span),
		Instructions: instr,
		Cycles:       span,
	}
}
