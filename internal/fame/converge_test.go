package fame

import "testing"

func TestConvergedNeedsThreeReps(t *testing.T) {
	if converged([]uint64{100, 200}, 0, 0.5) {
		t.Error("converged with fewer than 3 measured reps")
	}
	if !converged([]uint64{100, 200, 300, 400, 500, 600, 700, 800, 900, 1000, 1100, 1200}, 0, 0.01) {
		t.Error("perfectly periodic reps eventually converge")
	}
}

func TestConvergedWarmupDropped(t *testing.T) {
	ends := []uint64{100, 200, 300, 400}
	// Warmup 3 leaves only 1 measured rep: not converged.
	if converged(ends, 3, 0.5) {
		t.Error("converged with warmup consuming almost all reps")
	}
	if converged(ends, 10, 0.5) {
		t.Error("converged with warmup beyond available reps")
	}
}

func TestConvergedDetectsDrift(t *testing.T) {
	// Rep times doubling every rep: the accumulated average keeps moving.
	ends := []uint64{100, 300, 700, 1500, 3100}
	if converged(ends, 0, 0.01) {
		t.Error("converged despite strong drift")
	}
}

func TestMeasuredHelper(t *testing.T) {
	ends := []uint64{1, 2, 3}
	if got := measured(ends, 1); len(got) != 2 || got[0] != 2 {
		t.Errorf("measured = %v", got)
	}
	if got := measured(ends, 3); got != nil {
		t.Errorf("measured beyond length = %v", got)
	}
}
