package fame

import (
	"reflect"
	"testing"

	"power5prio/internal/core"
	"power5prio/internal/microbench"
	"power5prio/internal/prio"
)

// TestFastForwardLockstep steps a reference chip cycle by cycle while a
// second chip uses SkipIdle, and compares statistics at every skip
// boundary — much finer-grained than the end-to-end equivalence test, so
// a divergence is pinned to the first bad window. The branchy pair keeps
// squashes, redirects and balance flushes in constant rotation.
func TestFastForwardLockstep(t *testing.T) {
	pairs := [][2]string{
		{microbench.BrMiss, microbench.BrMiss},
		{microbench.LdIntMem, microbench.CPUInt},
		{microbench.LdIntMem, microbench.LdIntMem},
	}
	for _, p := range pairs {
		build := func() *core.Chip {
			ch := core.NewChip(core.DefaultConfig())
			ch.PlacePair(ffKernel(t, p[0]), ffKernel(t, p[1]), prio.Medium, prio.Medium, prio.Supervisor)
			return ch
		}
		ref := build()
		ff := build()
		c0, c1 := ref.ExperimentCore(), ff.ExperimentCore()
		for c0.Cycle() < 200_000 {
			n := ff.SkipIdle(c0.Cycle() + 1_000_000)
			for i := uint64(0); i < n; i++ {
				ref.Step()
			}
			if n == 0 {
				ref.Step()
				ff.Step()
			}
			if c0.Cycle() != c1.Cycle() {
				t.Fatalf("%v: cycle mismatch %d vs %d", p, c0.Cycle(), c1.Cycle())
			}
			for th := 0; th < 2; th++ {
				if !reflect.DeepEqual(c0.Stats(th), c1.Stats(th)) {
					t.Fatalf("%v: cycle %d (after skip %d) thread %d:\n ref %+v\n ff  %+v",
						p, c0.Cycle(), n, th, c0.Stats(th), c1.Stats(th))
				}
			}
			if !reflect.DeepEqual(c0.CoreStats(), c1.CoreStats()) {
				t.Fatalf("%v: cycle %d (after skip %d) corestats:\n ref %+v\n ff  %+v",
					p, c0.Cycle(), n, c0.CoreStats(), c1.CoreStats())
			}
		}
	}
}
