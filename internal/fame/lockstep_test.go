package fame

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"power5prio/internal/balance"
	"power5prio/internal/core"
	"power5prio/internal/isa"
	"power5prio/internal/microbench"
	"power5prio/internal/prio"
)

// lockstep steps a reference chip cycle by cycle while a second chip
// uses AdvanceToNextEvent, comparing cycle counts, per-thread statistics
// and core statistics at every advance boundary until limit cycles have
// elapsed — much finer-grained than the end-to-end equivalence test, so
// a divergence is pinned to the first bad window.
func lockstep(t *testing.T, label string, build func() *core.Chip, limit uint64) {
	t.Helper()
	ref := build()
	ff := build()
	c0, c1 := ref.ExperimentCore(), ff.ExperimentCore()
	for c0.Cycle() < limit {
		n := ff.AdvanceToNextEvent(c0.Cycle() + 1_000_000)
		for i := uint64(0); i < n; i++ {
			ref.Step()
		}
		if n == 0 {
			ref.Step()
			ff.Step()
		}
		if c0.Cycle() != c1.Cycle() {
			t.Fatalf("%s: cycle mismatch %d vs %d", label, c0.Cycle(), c1.Cycle())
		}
		for th := 0; th < 2; th++ {
			if !reflect.DeepEqual(c0.Stats(th), c1.Stats(th)) {
				t.Fatalf("%s: cycle %d (after skip %d) thread %d:\n ref %+v\n ff  %+v",
					label, c0.Cycle(), n, th, c0.Stats(th), c1.Stats(th))
			}
		}
		if !reflect.DeepEqual(c0.CoreStats(), c1.CoreStats()) {
			t.Fatalf("%s: cycle %d (after skip %d) corestats:\n ref %+v\n ff  %+v",
				label, c0.Cycle(), n, c0.CoreStats(), c1.CoreStats())
		}
	}
}

// TestFastForwardLockstep pins the event wheel against stepping on the
// hand-picked regressions: a branchy pair that keeps squashes, redirects
// and balance flushes in constant rotation, a mixed pair, and the
// miss-throttled memory pair the wheel exists to accelerate.
func TestFastForwardLockstep(t *testing.T) {
	pairs := [][2]string{
		{microbench.BrMiss, microbench.BrMiss},
		{microbench.LdIntMem, microbench.CPUInt},
		{microbench.LdIntMem, microbench.LdIntMem},
	}
	for _, p := range pairs {
		build := func() *core.Chip {
			ch := core.NewChip(core.DefaultConfig())
			ch.PlacePair(ffKernel(t, p[0]), ffKernel(t, p[1]), prio.Medium, prio.Medium, prio.Supervisor)
			return ch
		}
		lockstep(t, fmt.Sprintf("%v", p), build, 200_000)
	}
}

// TestLockstepFuzz runs seeded random (workload pair, priority, config)
// samples through the same per-advance-boundary lockstep, then through a
// full measurement with the event wheel on and off, asserting identical
// ThreadStats/CoreStats at every boundary and an identical PairResult.
// The random configurations deliberately wander the balance thresholds
// (mode, watermarks, miss threshold, throttle rate) and the structural
// knobs the wheel's closed forms depend on (LMQ depth, redirect penalty,
// GCT size), so phase interactions the curated pairs never reach —
// throttle periods against odd grant windows, tiny GCTs that live at the
// watermark, shallow LMQs — are exercised too.
func TestLockstepFuzz(t *testing.T) {
	const samples = 14
	rng := rand.New(rand.NewSource(0x5005)) // fixed seed: failures reproduce
	names := microbench.Names()
	for s := 0; s < samples; s++ {
		cfg := core.DefaultConfig()
		cfg.Pipe.Balance = balance.Config{
			Mode:         balance.Mode(rng.Intn(3)),
			GCTHigh:      8 + rng.Intn(9),  // 8..16
			MissHigh:     2 + rng.Intn(7),  // 2..8
			ThrottleRate: 2 + rng.Intn(11), // 2..12
		}
		cfg.Pipe.Balance.GCTLow = 4 + rng.Intn(cfg.Pipe.Balance.GCTHigh-3) // 4..GCTHigh
		cfg.Pipe.GCTEntries = 12 + rng.Intn(13)                            // 12..24
		cfg.Pipe.LMQPerThread = 2 + rng.Intn(7)                            // 2..8
		cfg.Pipe.MispredictPenalty = uint64(3 + rng.Intn(10))              // 3..12
		a := names[rng.Intn(len(names))]
		b := names[rng.Intn(len(names))]
		pa := prio.Level(1 + rng.Intn(7))
		pb := prio.Level(1 + rng.Intn(7))
		if rng.Intn(8) == 0 {
			pb = prio.ThreadOff // rare: sibling parked while placed
		}
		label := fmt.Sprintf("seed-sample %d: %s+%s(%d,%d) bal=%+v gct=%d lmq=%d redirect=%d",
			s, a, b, pa, pb, cfg.Pipe.Balance, cfg.Pipe.GCTEntries, cfg.Pipe.LMQPerThread, cfg.Pipe.MispredictPenalty)
		build := func() *core.Chip {
			ch := core.NewChip(cfg)
			ch.PlacePair(freshKernel(t, a), freshKernel(t, b), pa, pb, prio.Supervisor)
			return ch
		}
		lockstep(t, label, build, 60_000)

		opt := ffOptions()
		opt.MaxCycles = 1_000_000
		measureBoth(t, label, opt, func() (Machine, *core.Chip) {
			ch := build()
			return ch, ch
		})
	}
}

// freshKernel builds an uncached kernel: fuzz samples must not share
// stateful pattern closures between the reference and wheeled machines.
func freshKernel(t *testing.T, name string) *isa.Kernel {
	t.Helper()
	k, err := microbench.BuildWith(name, microbench.Params{Iters: 8})
	if err != nil {
		t.Fatal(err)
	}
	return k
}
