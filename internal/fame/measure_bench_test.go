package fame

import (
	"testing"

	"power5prio/internal/core"
	"power5prio/internal/microbench"
	"power5prio/internal/prio"
)

// benchmarkMeasure times a full FAME measurement of a co-scheduled pair,
// reporting simulated cycles per wall second. The stepped variants pin
// the measurement-loop overhead itself (the repetition-gated convergence
// check replaced a per-cycle ThreadStats snapshot + convergence re-run);
// the fastforward variants additionally exercise the idle-cycle skip,
// which only pays off on the memory-bound pair.
func benchmarkMeasure(b *testing.B, name string, ff bool) {
	prev := SetFastForward(ff)
	defer SetFastForward(prev)
	k, err := microbench.BuildWith(name, microbench.Params{Iters: 48})
	if err != nil {
		b.Fatal(err)
	}
	opt := Options{MinReps: 3, WarmupReps: 1, MAIV: 0.01, MaxCycles: 200_000_000}
	var cycles uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ch := core.NewChip(core.DefaultConfig())
		ch.PlacePair(k, k, prio.Medium, prio.Medium, prio.User)
		res := Measure(ch, opt)
		cycles += res.Cycles
	}
	b.ReportMetric(float64(cycles)/b.Elapsed().Seconds(), "sim_cycles/s")
}

func BenchmarkMeasure(b *testing.B) {
	for _, tc := range []struct {
		name   string
		kernel string
		ff     bool
	}{
		{"cpu_int/stepped", microbench.CPUInt, false},
		{"cpu_int/fastforward", microbench.CPUInt, true},
		{"ldint_mem/stepped", microbench.LdIntMem, false},
		{"ldint_mem/fastforward", microbench.LdIntMem, true},
	} {
		bench := tc
		b.Run(bench.name, func(b *testing.B) {
			benchmarkMeasure(b, bench.kernel, bench.ff)
		})
	}
}
