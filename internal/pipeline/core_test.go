package pipeline

import (
	"testing"

	"power5prio/internal/balance"
	"power5prio/internal/isa"
	"power5prio/internal/mem"
	"power5prio/internal/prio"
)

// testHier returns a default hierarchy for core tests.
func testHier() *mem.Hierarchy { return mem.NewHierarchy(mem.DefaultConfig()) }

// intKernel builds a simple independent-int-ops kernel: `w` parallel adds
// per iteration plus a loop branch.
func intKernel(t *testing.T, w, iters int) *isa.Kernel {
	t.Helper()
	b := isa.NewBuilder("ints")
	regs := make([]isa.Reg, w)
	for i := range regs {
		regs[i] = b.Reg("r")
		// Self-dependent per register, but across iterations: gives each
		// chain latency body-length apart, so plenty of ILP.
		b.Op2(isa.OpIntAdd, regs[i], regs[i], regs[i])
	}
	cnt := b.Reg("cnt")
	b.Op2(isa.OpIntAdd, cnt, cnt, cnt)
	b.Branch(isa.BranchLoop, cnt)
	k, err := b.Build(iters)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return k
}

// chainKernel builds a serial dependency chain kernel: each add depends on
// the previous one.
func chainKernel(t *testing.T, n, iters int) *isa.Kernel {
	t.Helper()
	b := isa.NewBuilder("chain")
	a := b.Reg("a")
	for i := 0; i < n; i++ {
		b.Op2(isa.OpIntAdd, a, a, a)
	}
	b.Branch(isa.BranchLoop, a)
	k, err := b.Build(iters)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return k
}

// chaseKernel builds a pointer-chasing load kernel over the footprint.
func chaseKernel(t *testing.T, footprint uint64, iters int) *isa.Kernel {
	t.Helper()
	b := isa.NewBuilder("chase")
	v := b.Reg("v")
	s := b.Stream(isa.StreamSpec{Kind: isa.StreamChase, Footprint: footprint, Seed: 7})
	b.Load(v, s, isa.Reg(-1))
	b.Branch(isa.BranchLoop, v)
	k, err := b.Build(iters)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return k
}

// runCycles steps the core n cycles.
func runCycles(c *Core, n uint64) { c.Run(n) }

func TestNewCoreValidation(t *testing.T) {
	h := testHier()
	check := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	check("bad config", func() { NewCore(Config{}, h, 0) })
	check("nil hierarchy", func() { NewCore(DefaultConfig(), nil, 0) })
	check("bad core id", func() { NewCore(DefaultConfig(), h, 5) })
}

func TestSingleThreadExecutesAndRetires(t *testing.T) {
	c := NewCore(DefaultConfig(), testHier(), 0)
	k := intKernel(t, 4, 8)
	c.SetWorkload(0, isa.NewStream(k), prio.User)
	c.SetPriority(0, prio.VeryHigh)
	c.SetPriority(1, prio.ThreadOff)
	runCycles(c, 2000)
	st := c.Stats(0)
	if st.Instructions == 0 {
		t.Fatal("no instructions retired")
	}
	if st.Repetitions == 0 {
		t.Fatal("no repetitions completed")
	}
	if st.Iterations < st.Repetitions*8 {
		t.Errorf("iterations %d inconsistent with reps %d (8 iters/rep)", st.Iterations, st.Repetitions)
	}
	// Instruction count per rep must equal the kernel's dynamic length.
	if st.Repetitions > 0 && st.Instructions < st.Repetitions*k.DynLen() {
		t.Errorf("instructions %d < reps %d * dynlen %d", st.Instructions, st.Repetitions, k.DynLen())
	}
	if len(st.RepEndCycles) != int(st.Repetitions) {
		t.Errorf("RepEndCycles length %d != reps %d", len(st.RepEndCycles), st.Repetitions)
	}
}

func TestRepEndCyclesMonotonic(t *testing.T) {
	c := NewCore(DefaultConfig(), testHier(), 0)
	c.SetWorkload(0, isa.NewStream(intKernel(t, 4, 4)), prio.User)
	c.SetPriority(1, prio.ThreadOff)
	runCycles(c, 3000)
	ends := c.Stats(0).RepEndCycles
	for i := 1; i < len(ends); i++ {
		if ends[i] <= ends[i-1] {
			t.Fatalf("rep end cycles not increasing: %v", ends[:i+1])
		}
	}
}

func TestILPKernelFasterThanChain(t *testing.T) {
	run := func(k *isa.Kernel) float64 {
		c := NewCore(DefaultConfig(), testHier(), 0)
		c.SetWorkload(0, isa.NewStream(k), prio.User)
		c.SetPriority(1, prio.ThreadOff)
		runCycles(c, 5000)
		st := c.Stats(0)
		return st.IPC(c.Cycle())
	}
	ilp := run(intKernel(t, 8, 16))
	chain := run(chainKernel(t, 8, 16))
	if ilp <= chain {
		t.Errorf("ILP kernel IPC %.2f not faster than chain IPC %.2f", ilp, chain)
	}
	// A pure serial add chain with latency 2 cannot exceed 0.5 * chain
	// length fraction; sanity bounds.
	if chain > 0.7 {
		t.Errorf("chain IPC %.2f implausibly high for latency-2 serial adds", chain)
	}
}

func TestChaseLatencyBound(t *testing.T) {
	cfg := DefaultConfig()
	hcfg := mem.DefaultConfig()
	h := mem.NewHierarchy(hcfg)
	c := NewCore(cfg, h, 0)
	// Chase within an L1-sized footprint: ~2 instrs per LatL1+eps cycles.
	c.SetWorkload(0, isa.NewStream(chaseKernel(t, 16<<10, 64)), prio.User)
	c.SetPriority(1, prio.ThreadOff)
	// Warm up the caches (the first lap misses all the way to DRAM), then
	// measure marginal IPC in steady state.
	runCycles(c, 60000)
	warmInstr, warmCyc := c.Stats(0).Instructions, c.Cycle()
	runCycles(c, 20000)
	ipc := float64(c.Stats(0).Instructions-warmInstr) / float64(c.Cycle()-warmCyc)
	// body = 2 instrs, hop = LatL1 = 2 -> IPC ~1.0
	if ipc < 0.5 || ipc > 1.6 {
		t.Errorf("steady-state L1 chase IPC = %.2f, want ~1.0", ipc)
	}
}

func TestMemChaseMuchSlower(t *testing.T) {
	h := testHier()
	c := NewCore(DefaultConfig(), h, 0)
	c.SetWorkload(0, isa.NewStream(chaseKernel(t, 64<<20, 16)), prio.User)
	c.SetPriority(1, prio.ThreadOff)
	runCycles(c, 60000)
	ipc := c.Stats(0).IPC(c.Cycle())
	if ipc > 0.05 {
		t.Errorf("memory chase IPC = %.3f, want < 0.05 (latency bound)", ipc)
	}
	if c.Stats(0).Instructions == 0 {
		t.Error("memory chase made no progress")
	}
}

func TestSMTEqualPrioritySharing(t *testing.T) {
	h := testHier()
	c := NewCore(DefaultConfig(), h, 0)
	k := intKernel(t, 8, 16)
	c.SetWorkload(0, isa.NewStreamAt(k, 0), prio.User)
	c.SetWorkload(1, isa.NewStreamAt(k, 1<<40), prio.User)
	runCycles(c, 10000)
	i0, i1 := c.Stats(0).Instructions, c.Stats(1).Instructions
	if i0 == 0 || i1 == 0 {
		t.Fatal("a thread made no progress under SMT")
	}
	ratio := float64(i0) / float64(i1)
	if ratio < 0.9 || ratio > 1.1 {
		t.Errorf("identical workloads at (4,4) diverge: %d vs %d", i0, i1)
	}
}

func TestPriorityShiftsThroughput(t *testing.T) {
	run := func(p0, p1 prio.Level) (uint64, uint64) {
		h := testHier()
		c := NewCore(DefaultConfig(), h, 0)
		k := intKernel(t, 8, 16)
		c.SetWorkload(0, isa.NewStreamAt(k, 0), prio.User)
		c.SetWorkload(1, isa.NewStreamAt(k, 1<<40), prio.User)
		c.SetPriority(0, p0)
		c.SetPriority(1, p1)
		runCycles(c, 10000)
		return c.Stats(0).Instructions, c.Stats(1).Instructions
	}
	base0, base1 := run(prio.Medium, prio.Medium)
	hi0, hi1 := run(prio.High, prio.Low) // +4
	if hi0 <= base0 {
		t.Errorf("prioritized thread did not speed up: %d -> %d", base0, hi0)
	}
	if hi1 >= base1 {
		t.Errorf("deprioritized thread did not slow down: %d -> %d", base1, hi1)
	}
	if float64(hi1) > 0.3*float64(base1) {
		t.Errorf("at -4 the victim kept %d of %d instructions; expected a large hit", hi1, base1)
	}
}

func TestThreadOffGivesFullMachine(t *testing.T) {
	k := intKernel(t, 8, 16)
	run := func(st bool) uint64 {
		h := testHier()
		c := NewCore(DefaultConfig(), h, 0)
		c.SetWorkload(0, isa.NewStreamAt(k, 0), prio.User)
		if !st {
			c.SetWorkload(1, isa.NewStreamAt(k, 1<<40), prio.User)
		} else {
			c.SetPriority(1, prio.ThreadOff)
		}
		runCycles(c, 8000)
		return c.Stats(0).Instructions
	}
	st := run(true)
	smt := run(false)
	if st <= smt {
		t.Errorf("ST mode (%d instrs) not faster than SMT (%d instrs) for a throughput kernel", st, smt)
	}
}

func TestLowPowerMode(t *testing.T) {
	h := testHier()
	c := NewCore(DefaultConfig(), h, 0)
	k := intKernel(t, 8, 16)
	c.SetWorkload(0, isa.NewStreamAt(k, 0), prio.User)
	c.SetWorkload(1, isa.NewStreamAt(k, 1<<40), prio.User)
	c.SetPriority(0, prio.VeryLow)
	c.SetPriority(1, prio.VeryLow)
	n := uint64(64000)
	runCycles(c, n)
	total := c.Stats(0).Instructions + c.Stats(1).Instructions
	// One instruction decode per 32 cycles total: ~n/32 instructions.
	maxExpected := n / 32
	if total > maxExpected+10 {
		t.Errorf("low-power mode retired %d instrs in %d cycles, want <= ~%d", total, n, maxExpected)
	}
	if total < maxExpected/2 {
		t.Errorf("low-power mode retired only %d instrs, want near %d", total, maxExpected)
	}
}

func TestInStreamPrioritySetRespectsPrivilege(t *testing.T) {
	// Kernel raises its own priority to High (supervisor-only).
	build := func() *isa.Kernel {
		b := isa.NewBuilder("raise")
		a := b.Reg("a")
		b.PrioSet(int(prio.High))
		b.Op2(isa.OpIntAdd, a, a, a)
		b.Branch(isa.BranchLoop, a)
		return b.MustBuild(4)
	}
	run := func(priv prio.Privilege) (prio.Level, ThreadStats) {
		h := testHier()
		c := NewCore(DefaultConfig(), h, 0)
		c.SetWorkload(0, isa.NewStream(build()), priv)
		runCycles(c, 500)
		return c.Priority(0), c.Stats(0)
	}
	lvl, st := run(prio.User)
	if lvl != prio.Medium {
		t.Errorf("user-mode or-nop raised priority to %v; must stay medium", lvl)
	}
	if st.PrioDenied == 0 {
		t.Error("denied priority sets not counted")
	}
	lvl, st = run(prio.Supervisor)
	if lvl != prio.High {
		t.Errorf("supervisor or-nop did not raise priority: %v", lvl)
	}
	if st.PrioChanges == 0 {
		t.Error("applied priority change not counted")
	}
}

func TestBranchMispredictsHurt(t *testing.T) {
	build := func(pattern isa.PatternFunc, name string) *isa.Kernel {
		b := isa.NewBuilder(name)
		a := b.Reg("a")
		for i := 0; i < 4; i++ {
			b.Op2(isa.OpIntAdd, a, a, a)
		}
		b.Branch(isa.BranchPattern, a)
		b.Branch(isa.BranchLoop, a)
		b.Pattern(pattern)
		return b.MustBuild(16)
	}
	run := func(k *isa.Kernel) (float64, ThreadStats) {
		h := testHier()
		c := NewCore(DefaultConfig(), h, 0)
		c.SetWorkload(0, isa.NewStream(k), prio.User)
		c.SetPriority(1, prio.ThreadOff)
		runCycles(c, 20000)
		st := c.Stats(0)
		return st.IPC(c.Cycle()), st
	}
	rngState := uint64(99)
	random := func(n uint64) bool {
		rngState ^= rngState << 13
		rngState ^= rngState >> 7
		rngState ^= rngState << 17
		return rngState&1 == 1
	}
	hitIPC, hitStats := run(build(func(n uint64) bool { return true }, "brhit"))
	missIPC, missStats := run(build(random, "brmiss"))
	if missIPC >= hitIPC {
		t.Errorf("random branches IPC %.2f not slower than predictable %.2f", missIPC, hitIPC)
	}
	if missStats.BranchMispredicts <= hitStats.BranchMispredicts {
		t.Errorf("mispredicts: random %d <= predictable %d",
			missStats.BranchMispredicts, hitStats.BranchMispredicts)
	}
	if missStats.BranchFlushes == 0 {
		t.Error("no squashed instructions recorded for random branches")
	}
}

// TestMispredictReplayCorrectness: total retired instructions per rep must
// still match the kernel length exactly even with constant squashing.
func TestMispredictReplayCorrectness(t *testing.T) {
	b := isa.NewBuilder("replay")
	a := b.Reg("a")
	b.Op2(isa.OpIntAdd, a, a, a)
	b.Branch(isa.BranchPattern, a)
	b.Branch(isa.BranchLoop, a)
	rngState := uint64(7)
	b.Pattern(func(n uint64) bool {
		rngState ^= rngState << 13
		rngState ^= rngState >> 7
		rngState ^= rngState << 17
		return rngState&1 == 1
	})
	k := b.MustBuild(10)
	h := testHier()
	c := NewCore(DefaultConfig(), h, 0)
	c.SetWorkload(0, isa.NewStream(k), prio.User)
	c.SetPriority(1, prio.ThreadOff)
	runCycles(c, 30000)
	st := c.Stats(0)
	if st.Repetitions == 0 {
		t.Fatal("no repetitions completed")
	}
	perRep := float64(st.Instructions) / float64(st.Repetitions)
	want := float64(k.DynLen())
	if perRep < want-1 || perRep > want+float64(len(k.Body)) {
		t.Errorf("instructions per rep = %.1f, want ~%.0f (squash/replay must not lose or duplicate instructions)", perRep, want)
	}
}

func TestGCTSharedCapacity(t *testing.T) {
	// A memory-chasing thread must not starve the sibling completely:
	// balancing caps its GCT share.
	h := testHier()
	cfg := DefaultConfig()
	c := NewCore(cfg, h, 0)
	c.SetWorkload(0, isa.NewStreamAt(chaseKernel(t, 64<<20, 16), 0), prio.User)
	c.SetWorkload(1, isa.NewStreamAt(intKernel(t, 8, 16), 1<<40), prio.User)
	runCycles(c, 40000)
	if got := c.Stats(1).Instructions; got == 0 {
		t.Fatal("int thread starved by memory thread")
	}
	// The memory thread cannot hold more GCT entries than the balance cap.
	if held := c.thr[0].gctHeld(); held > cfg.Balance.GCTHigh {
		t.Errorf("memory thread holds %d GCT entries, balance cap is %d", held, cfg.Balance.GCTHigh)
	}
}

func TestBalancingOffLetsMemoryThreadClog(t *testing.T) {
	run := func(mode balance.Mode) uint64 {
		h := testHier()
		cfg := DefaultConfig()
		cfg.Balance.Mode = mode
		c := NewCore(cfg, h, 0)
		c.SetWorkload(0, isa.NewStreamAt(chaseKernel(t, 64<<20, 16), 0), prio.User)
		c.SetWorkload(1, isa.NewStreamAt(intKernel(t, 8, 16), 1<<40), prio.User)
		runCycles(c, 40000)
		return c.Stats(1).Instructions
	}
	withBal := run(balance.Flush)
	without := run(balance.Off)
	if withBal <= without {
		t.Errorf("balancing did not help the clean thread: with=%d without=%d", withBal, without)
	}
}

func TestDecodeSlotAccounting(t *testing.T) {
	h := testHier()
	c := NewCore(DefaultConfig(), h, 0)
	c.SetWorkload(0, isa.NewStream(intKernel(t, 8, 16)), prio.User)
	c.SetPriority(1, prio.ThreadOff)
	runCycles(c, 2000)
	st := c.Stats(0)
	if st.DecodeGranted == 0 {
		t.Fatal("no decode slots granted")
	}
	if st.DecodeUsed+st.DecodeStalled != st.DecodeGranted {
		t.Errorf("used %d + stalled %d != granted %d", st.DecodeUsed, st.DecodeStalled, st.DecodeGranted)
	}
}

func TestSetWorkloadResetsThread(t *testing.T) {
	h := testHier()
	c := NewCore(DefaultConfig(), h, 0)
	c.SetWorkload(0, isa.NewStream(intKernel(t, 4, 4)), prio.User)
	c.SetPriority(1, prio.ThreadOff)
	runCycles(c, 1000)
	if c.Stats(0).Instructions == 0 {
		t.Fatal("first workload made no progress")
	}
	c.SetWorkload(0, isa.NewStream(chainKernel(t, 4, 4)), prio.User)
	if got := c.Stats(0).Instructions; got != 0 {
		t.Errorf("stats not reset on SetWorkload: %d", got)
	}
	runCycles(c, 1000)
	if c.Stats(0).Instructions == 0 {
		t.Error("second workload made no progress")
	}
}

func TestInactiveThreadIdle(t *testing.T) {
	h := testHier()
	c := NewCore(DefaultConfig(), h, 0)
	c.SetWorkload(0, isa.NewStream(intKernel(t, 4, 4)), prio.User)
	// Thread 1 has no workload at all.
	runCycles(c, 500)
	if c.Stats(1).Instructions != 0 {
		t.Error("inactive thread retired instructions")
	}
	if !c.Running(0) || c.Running(1) {
		t.Errorf("Running = (%v,%v), want (true,false)", c.Running(0), c.Running(1))
	}
}
