package pipeline

// ThreadStats accumulates per-thread performance counters.
type ThreadStats struct {
	Instructions uint64 // completed (retired) instructions
	Groups       uint64 // completed groups
	Iterations   uint64 // completed kernel iterations
	Repetitions  uint64 // completed kernel repetitions
	// RepEndCycles records the core cycle at which each repetition
	// completed, in order (FAME needs per-repetition boundaries).
	RepEndCycles []uint64
	// RepEndInstrs records the cumulative retired-instruction count at each
	// repetition boundary, aligned with RepEndCycles.
	RepEndInstrs []uint64

	DecodeGranted uint64 // decode slots granted by the priority allocator
	DecodeUsed    uint64 // slots in which at least one instruction decoded
	DecodeStalled uint64 // granted slots lost to stalls (GCT/queues/balance)

	BranchMispredicts uint64
	BranchFlushes     uint64 // instructions squashed by mispredictions
	BalanceFlushes    uint64 // dispatch-pending flushes by the balancer
	PrioChanges       uint64 // applied priority-set instructions
	PrioDenied        uint64 // priority-set instructions nop'd by privilege
}

// IPC returns instructions per cycle over the given cycle count.
func (s ThreadStats) IPC(cycles uint64) float64 {
	if cycles == 0 {
		return 0
	}
	return float64(s.Instructions) / float64(cycles)
}

// CoreStats accumulates whole-core activity counters, used by utilization
// reporting and the power model.
type CoreStats struct {
	Cycles        uint64
	IssuedByUnit  [4]uint64 // executed operations per unit class
	DecodedInstrs uint64    // instructions entering dispatch groups
	DecodedGroups uint64
	GCTOccupSum   uint64 // sum over cycles of GCT entries held (integral)
}

// AvgGCTOccupancy returns the mean number of GCT entries in use.
func (s CoreStats) AvgGCTOccupancy() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.GCTOccupSum) / float64(s.Cycles)
}

// UnitUtilization returns the mean issued operations per cycle for a unit
// class divided by the number of units (0..1 per fully-used pipe).
func (s CoreStats) UnitUtilization(unit int, numFU int) float64 {
	if s.Cycles == 0 || numFU == 0 {
		return 0
	}
	return float64(s.IssuedByUnit[unit]) / float64(s.Cycles) / float64(numFU)
}
