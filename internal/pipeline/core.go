package pipeline

import (
	"fmt"

	"power5prio/internal/balance"
	"power5prio/internal/branch"
	"power5prio/internal/isa"
	"power5prio/internal/mem"
	"power5prio/internal/prio"
)

const (
	// notDone marks an in-flight instruction whose result is not ready.
	notDone = ^uint64(0)
	// NoEvent is the IdleWake sentinel for a core with no pending
	// time-indexed event (an empty core is idle forever on its own).
	NoEvent = ^uint64(0)
	// replayRing must exceed the maximum in-flight window (GCT*GroupMax +
	// fetch buffer) with margin; power of two for cheap masking.
	replayRing = 1024
	// resultRing must exceed replayRing plus the longest dependency
	// distance a kernel can carry (bodies are a few hundred instructions).
	resultRing = 4096
)

// group is one dispatch group in the GCT.
type group struct {
	n        int
	firstSeq uint64
	instr    [GroupMax]isa.Dyn
	mispred  [GroupMax]bool
	// issuedCnt and doneAt are maintained at issue time so retirement
	// eligibility is an O(1) check instead of a per-cycle slot scan:
	// once issuedCnt == n, doneAt is the max result time of the group.
	issuedCnt int
	doneAt    uint64
}

func (g *group) lastSeq() uint64 { return g.firstSeq + uint64(g.n) - 1 }

// qent is one issue-queue entry. The fields needed by the per-cycle
// readiness scan are inlined so the scan walks linear memory; the group
// pointer is only dereferenced at issue time.
type qent struct {
	seq     uint64
	depA    uint64
	depB    uint64
	addr    uint64
	readyAt uint64 // cached earliest dep-ready cycle; 0 while a producer is unissued
	op      isa.Op
	thread  int8
	slot    int8
	mispred bool
	g       *group
}

// lmqEntry is one outstanding load miss.
type lmqEntry struct {
	seq   uint64
	done  uint64
	level mem.HitLevel
}

// brEvent is a pending branch resolution.
type brEvent struct {
	seq uint64
	at  uint64
}

// threadState is the per-hardware-thread context.
type threadState struct {
	id      int
	stream  *isa.Stream
	priv    prio.Privilege
	running bool

	// Instruction supply: replay ring of generated instructions supports
	// re-fetch after squashes without rewinding the generator.
	replay   [replayRing]isa.Dyn
	genSeq   uint64 // next seq to generate from the stream
	fetchSeq uint64 // next seq to insert into the fetch buffer

	// fetchBuf is a FIFO with a head index (amortized O(1) consumption);
	// occupancy is len(fetchBuf)-fbHead.
	fetchBuf []isa.Dyn
	fbHead   int

	// resultAt[seq%resultRing] = cycle the result is available, or notDone.
	resultAt [resultRing]uint64

	groups []*group // in-flight groups, oldest first

	// Load-miss queue. The slice holds the in-flight entries (needed for
	// squash filtering); the occupancy counters are maintained
	// incrementally at insert, expiry and squash so the per-cycle cost is
	// one compare against lmqNext instead of three slice scans.
	lmq       []lmqEntry
	lmqActive int    // entries with done > now
	lmqMisses int    // active entries that missed to L2 or beyond
	lmqNext   uint64 // earliest completion among active entries (NoEvent if none)

	pendBr []brEvent

	blockedUntil uint64 // decode blocked until this cycle (redirect)

	stats ThreadStats
}

// gctHeld returns the number of GCT entries the thread occupies.
func (t *threadState) gctHeld() int { return len(t.groups) }

// lmqTick expires completed miss entries once the earliest completion
// time is due. Between expiries the counters are exact by construction,
// so the common case is a single compare.
func (t *threadState) lmqTick(now uint64) {
	if now < t.lmqNext {
		return
	}
	t.lmqRecount(now)
}

// lmqRecount rebuilds the occupancy counters, dropping expired entries.
func (t *threadState) lmqRecount(now uint64) {
	dst := t.lmq[:0]
	t.lmqActive, t.lmqMisses = 0, 0
	t.lmqNext = NoEvent
	for _, e := range t.lmq {
		if e.done <= now {
			continue
		}
		dst = append(dst, e)
		t.lmqActive++
		if e.level >= mem.HitL2 {
			t.lmqMisses++
		}
		if e.done < t.lmqNext {
			t.lmqNext = e.done
		}
	}
	t.lmq = dst
}

// lmqInsert records a newly issued missing load (done is always in the
// future at insert time).
func (t *threadState) lmqInsert(e lmqEntry) {
	t.lmq = append(t.lmq, e)
	t.lmqActive++
	if e.level >= mem.HitL2 {
		t.lmqMisses++
	}
	if e.done < t.lmqNext {
		t.lmqNext = e.done
	}
}

// lmqSquash cancels entries younger than seq and recounts.
func (t *threadState) lmqSquash(seq, now uint64) {
	dst := t.lmq[:0]
	for _, e := range t.lmq {
		if e.seq <= seq {
			dst = append(dst, e)
		}
	}
	t.lmq = dst
	t.lmqRecount(now)
}

func (t *threadState) depReady(dep uint64, now uint64) bool {
	if dep == isa.DepNone {
		return true
	}
	r := t.resultAt[dep&(resultRing-1)]
	return r != notDone && r <= now
}

// Core is one POWER5-like SMT core.
type Core struct {
	cfg    Config
	id     int
	hier   *mem.Hierarchy
	pred   *branch.Predictor
	alloc  *prio.Allocator
	mon    *balance.Monitor
	thr    [2]*threadState
	queues [isa.UnitCount][]qent
	pool   []*group // group free pool
	cycle  uint64
	cstats CoreStats
	// progressed records whether the last Step changed architectural or
	// statistical state beyond the closed-form bookkeeping FastForward
	// applies (a decode, issue, retire, branch resolution, LMQ completion
	// or balance flush; fetch refills are excluded — FastForward replays
	// them). Inside a skippable window no cycle progresses, so a cycle
	// that did progress cannot be the start of one, and the chip uses the
	// flag to bypass the event-wheel probe entirely on busy cycles.
	progressed bool
}

// NewCore builds a core attached to the given memory hierarchy. It panics
// on an invalid configuration.
func NewCore(cfg Config, hier *mem.Hierarchy, id int) *Core {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	if hier == nil {
		panic("pipeline: nil memory hierarchy")
	}
	if id < 0 || id >= hier.Config().Cores {
		panic(fmt.Sprintf("pipeline: core id %d out of range", id))
	}
	c := &Core{
		cfg:   cfg,
		id:    id,
		hier:  hier,
		pred:  branch.New(cfg.BHTBits),
		alloc: prio.NewAllocator(prio.Medium, prio.Medium),
		mon:   balance.NewMonitor(cfg.Balance),
	}
	for i := range c.thr {
		c.thr[i] = &threadState{id: i, lmqNext: NoEvent}
	}
	for i := 0; i < cfg.GCTEntries+2; i++ {
		c.pool = append(c.pool, &group{})
	}
	c.syncMemWeights()
	return c
}

// syncMemWeights propagates the current decode shares to the memory
// hierarchy's per-thread DRAM arbitration weights (the POWER5 nest honours
// thread priority at resource arbitration points).
func (c *Core) syncMemWeights() {
	d := int(c.alloc.Priority(0)) - int(c.alloc.Priority(1))
	w0 := prio.Share(d)
	c.hier.SetMemWeight(c.id, 0, w0)
	c.hier.SetMemWeight(c.id, 1, 1-w0)
}

// Config returns the core configuration.
func (c *Core) Config() Config { return c.cfg }

// Cycle returns the current cycle count.
func (c *Core) Cycle() uint64 { return c.cycle }

// SetWorkload installs a workload stream on hardware thread t with the
// given software privilege (which governs in-stream priority changes).
// Passing a nil stream deactivates the thread.
func (c *Core) SetWorkload(t int, s *isa.Stream, priv prio.Privilege) {
	ts := c.thr[t]
	*ts = threadState{id: t, stream: s, priv: priv, running: s != nil, lmqNext: NoEvent}
	for i := range ts.resultAt {
		ts.resultAt[i] = notDone
	}
	// Purge any queue entries of a previous workload on this thread.
	for u := range c.queues {
		dst := c.queues[u][:0]
		for _, e := range c.queues[u] {
			if int(e.thread) != t {
				dst = append(dst, e)
			}
		}
		c.queues[u] = dst
	}
}

// SetPriority sets thread t's priority directly (harness-level control,
// equivalent to hypervisor action). In-stream or-nops go through privilege
// checking instead.
func (c *Core) SetPriority(t int, l prio.Level) {
	c.alloc.Set(t, l)
	c.syncMemWeights()
}

// Priority returns thread t's current priority.
func (c *Core) Priority(t int) prio.Level { return c.alloc.Priority(t) }

// Stats returns a snapshot of thread t's counters.
func (c *Core) Stats(t int) ThreadStats { return c.thr[t].stats }

// Running reports whether thread t has an active workload.
func (c *Core) Running(t int) bool { return c.thr[t].running }

// active reports whether the thread participates in execution this cycle
// (has a workload and is not switched off).
func (c *Core) active(t int) bool {
	return c.thr[t].running && c.alloc.Priority(t) != prio.ThreadOff
}

// Step advances the core by one cycle.
func (c *Core) Step() {
	now := c.cycle
	lmq0, lmq1 := c.thr[0].lmqActive, c.thr[1].lmqActive
	c.thr[0].lmqTick(now)
	c.thr[1].lmqTick(now)
	c.progressed = c.thr[0].lmqActive != lmq0 || c.thr[1].lmqActive != lmq1
	c.resolveBranches(now)
	c.retire(now)
	c.issue(now)
	stall := c.balanceStep(now)
	c.decode(now, stall)
	c.fetch(now)
	c.cstats.Cycles++
	c.cstats.GCTOccupSum += uint64(c.gctUsed())
	c.cycle++
}

// CoreStats returns a snapshot of whole-core activity counters.
func (c *Core) CoreStats() CoreStats { return c.cstats }

// Repetitions returns thread t's completed-repetition counter without
// copying the full ThreadStats snapshot; measurement loops poll it every
// cycle to decide when convergence needs re-checking.
func (c *Core) Repetitions(t int) uint64 { return c.thr[t].stats.Repetitions }

// Run advances the core n cycles.
func (c *Core) Run(n uint64) {
	for i := uint64(0); i < n; i++ {
		c.Step()
	}
}

// NextEvent is the core's contribution to the chip event wheel: it
// decides whether the span from the current cycle to the returned wake
// is skippable — stepping through it cannot change architectural or
// statistical state beyond the closed-form bookkeeping FastForward
// applies — and posts the earliest future cycle at which a state change
// may occur. The skip is legal (bit-identical to stepping) for any
// target up to that wake.
//
// Every component posts its next state-change cycle, and the wake is
// their minimum:
//   - pending branch resolutions, LMQ completions, dependency resultAt
//     times, head-group completion times and redirect blockedUntil
//     expiries (exact, time-indexed events);
//   - each thread's next effective decode slot: its next allocator grant
//     or — while the balance monitor miss-throttles its decode — the
//     first grant aligned with the throttle-free cycles of the countdown
//     (prio.Allocator.NextGrantAligned), which is how the wheel advances
//     even while a thread is "busy" in the throttled sense;
//   - nothing for fetch: refills are replayed verbatim by FastForward,
//     so an in-progress refill does not veto the skip.
//
// A span is skippable when no event is due now — no branch resolution or
// retirable head group, no issuable queue entry (each pending one waits
// on a result with a known future time, on an unissued producer, or on a
// full LMQ), no thread that can decode before the wake — and the balance
// monitor is transition-free for both threads (balance.Monitor.CanSkip),
// so its evolution is closed-form. minAhead declines windows shorter
// than that many cycles (the jump is not worth it); a core with no
// pending event at all reports ok with wake == NoEvent, leaving the
// bound to the caller.
func (c *Core) NextEvent(minAhead uint64) (wake uint64, ok bool) {
	now := c.cycle
	c.thr[0].lmqTick(now)
	c.thr[1].lmqTick(now)
	wake = NoEvent

	// Cheap phase: decode and monitor conditions — O(1) per thread, so
	// busy cores bail before any queue walking.
	for i, ts := range c.thr {
		if !c.active(i) {
			continue
		}
		if !c.mon.CanSkip(i, ts.gctHeld(), c.active(1-i)) {
			return 0, false
		}
		switch {
		case c.mon.Stalled(i):
			// Decode stalled by the balancer; CanSkip above proved the
			// episode persists while GCT occupancy is unchanged.
		case ts.blockedUntil > now:
			// Redirect penalty; its expiry bounds the wake below.
		case c.gctUsed() >= c.cfg.GCTEntries:
			// Dispatch blocked until a retire, and no retire is due.
		case len(ts.fetchBuf)-ts.fbHead > 0 &&
			len(c.queues[isa.UnitOf(ts.fetchBuf[ts.fbHead].Op)]) >= c.cfg.QueueCap[isa.UnitOf(ts.fetchBuf[ts.fbHead].Op)]:
			// The next instruction's issue queue is full and cannot
			// drain (no entry issues during the window).
		default:
			// The thread decodes at its next effective decode slot,
			// which ends the skip: the next grant or, while the decode
			// is miss-throttled, the first grant on a throttle-free
			// cycle (the grants in between are granted-and-stalled,
			// which FastForward accounts in closed form).
			var d uint64
			if off, period, throttled := c.mon.ThrottleWindow(i, ts.lmqMisses, c.active(1-i)); throttled {
				d = c.alloc.NextGrantAligned(i, off, period)
			} else {
				d = c.alloc.NextGrantDelta(i)
			}
			if d < minAhead {
				return 0, false
			}
			if d != prio.NeverGranted && now+d < wake {
				wake = now + d
			}
		}
	}

	// Event phase: every time-indexed state change bounds the wake, and
	// anything actionable right now vetoes the skip.
	for _, ts := range c.thr {
		for _, ev := range ts.pendBr {
			if ev.at <= now {
				return 0, false // due branch resolution
			}
			if ev.at < wake {
				wake = ev.at
			}
		}
		if ts.lmqNext < wake {
			wake = ts.lmqNext
		}
		if ts.blockedUntil > now && ts.blockedUntil < wake {
			wake = ts.blockedUntil
		}
		if len(ts.groups) > 0 {
			g := ts.groups[0]
			if g.issuedCnt == g.n {
				if g.doneAt <= now {
					return 0, false // retirable now
				}
				if g.doneAt < wake {
					wake = g.doneAt
				}
			}
		}
	}
	for u := range c.queues {
		q := c.queues[u]
		for j := range q {
			e := &q[j]
			ts := c.thr[e.thread]
			at, known := depResultAt(ts, e.depA)
			if !known {
				continue // producer not issued; it wakes first
			}
			at2, known := depResultAt(ts, e.depB)
			if !known {
				continue
			}
			if at2 > at {
				at = at2
			}
			if at <= now {
				if e.op == isa.OpLoad && !c.hier.L1Resident(c.id, e.addr) &&
					ts.lmqActive >= c.cfg.LMQPerThread {
					continue // LMQ-blocked; lmqNext already bounds the wake
				}
				return 0, false // issuable now
			}
			if at < wake {
				wake = at
			}
		}
	}
	if wake != NoEvent && wake < now+minAhead {
		return 0, false
	}
	return wake, true
}

// depResultAt returns the cycle a dependency's result becomes available
// and whether that time is known (false while the producer has not
// issued).
func depResultAt(ts *threadState, dep uint64) (uint64, bool) {
	if dep == isa.DepNone {
		return 0, true
	}
	r := ts.resultAt[dep&(resultRing-1)]
	if r == notDone {
		return 0, false
	}
	return r, true
}

// depsResultAt resolves both dependencies at once; known is false while
// either producer has not issued (its result time does not exist yet).
func depsResultAt(ts *threadState, depA, depB uint64) (ra, rb uint64, known bool) {
	ra, known = depResultAt(ts, depA)
	if !known {
		return 0, 0, false
	}
	rb, known = depResultAt(ts, depB)
	if !known {
		return 0, 0, false
	}
	return ra, rb, true
}

// FastForward jumps the core from the current cycle to target, applying
// in closed form exactly the bookkeeping the skipped Steps would have
// performed: decode-slot grants (and their stall statistics, including
// the granted-but-throttled slots of a miss-throttled thread), balance
// monitor throttle-countdown advance, cycle/GCT-occupancy integrals,
// and the fetch-buffer refills of the span (replayed verbatim — fetch
// is cycle-independent, so running it for the cycles it would have
// progressed is exact and it goes quiescent once the buffers fill). It
// is only legal after NextEvent reported ok with wake >= target; the
// result is bit-identical to calling Step target-cycle times.
func (c *Core) FastForward(target uint64) {
	n := target - c.cycle
	if n == 0 || target < c.cycle {
		return
	}
	grants := c.alloc.SkipGrants(n)
	for i, ts := range c.thr {
		if !c.active(i) {
			continue
		}
		// Every skipped grant is a stalled decode slot: the event
		// analysis proved the thread could not decode anywhere in the
		// window (its first effective decode slot is at or past target).
		ts.stats.DecodeGranted += grants[i]
		ts.stats.DecodeStalled += grants[i]
		c.mon.SkipObserve(i, ts.lmqMisses, c.active(1-i), n)
	}
	for k := uint64(0); k < n; k++ {
		if !c.fetch(c.cycle + k) {
			break // all fetch buffers full; later cycles fetch nothing
		}
	}
	c.cstats.Cycles += n
	c.cstats.GCTOccupSum += n * uint64(c.gctUsed())
	c.cycle = target
	// The wake this jump targeted is, by construction, a cycle on which
	// some core's state changes; mark the arrival as progressed so the
	// chip steps it instead of probing the wheel again.
	c.progressed = true
}

// Progressed reports whether the core's last advanced cycle changed
// state beyond FastForward's closed-form bookkeeping. A progressed cycle
// cannot open a skippable window, so callers use it to bypass NextEvent
// on busy cycles at the cost of at most one stepped cycle per window.
func (c *Core) Progressed() bool { return c.progressed }

// resolveBranches applies mispredict squashes whose resolution time is due.
// Due events are processed oldest-first; each squash filters younger events
// itself, so the loop re-scans until no due event remains.
func (c *Core) resolveBranches(now uint64) {
	for _, ts := range c.thr {
		for {
			idx := -1
			for i := range ts.pendBr {
				if ts.pendBr[i].at <= now && (idx < 0 || ts.pendBr[i].seq < ts.pendBr[idx].seq) {
					idx = i
				}
			}
			if idx < 0 {
				break
			}
			seq := ts.pendBr[idx].seq
			ts.pendBr[idx] = ts.pendBr[len(ts.pendBr)-1]
			ts.pendBr = ts.pendBr[:len(ts.pendBr)-1]
			c.progressed = true
			c.squash(ts, seq, now)
		}
	}
}

// squash removes all of ts's in-flight state younger than seq and redirects
// fetch to seq+1.
func (c *Core) squash(ts *threadState, seq uint64, now uint64) {
	// Drop younger groups (they are at the tail, oldest first).
	cut := len(ts.groups)
	for cut > 0 && ts.groups[cut-1].firstSeq > seq {
		cut--
	}
	for _, g := range ts.groups[cut:] {
		ts.stats.BranchFlushes += uint64(g.n)
		c.pool = append(c.pool, g)
	}
	ts.groups = ts.groups[:cut]
	// Remove younger queue entries.
	for u := range c.queues {
		dst := c.queues[u][:0]
		for _, e := range c.queues[u] {
			if int(e.thread) == ts.id && e.seq > seq {
				continue
			}
			dst = append(dst, e)
		}
		c.queues[u] = dst
	}
	// Cancel younger outstanding misses.
	ts.lmqSquash(seq, now)
	// Drop younger pending branch events.
	pb := ts.pendBr[:0]
	for _, ev := range ts.pendBr {
		if ev.seq <= seq {
			pb = append(pb, ev)
		}
	}
	ts.pendBr = pb
	// Refetch from seq+1 and pay the redirect penalty.
	ts.fetchBuf = ts.fetchBuf[:0]
	ts.fbHead = 0
	ts.fetchSeq = seq + 1
	if until := now + c.cfg.MispredictPenalty; until > ts.blockedUntil {
		ts.blockedUntil = until
	}
}

// retire completes up to one group per thread per cycle, in order.
func (c *Core) retire(now uint64) {
	for _, ts := range c.thr {
		if len(ts.groups) == 0 {
			continue
		}
		g := ts.groups[0]
		if g.issuedCnt < g.n || g.doneAt > now {
			continue
		}
		c.progressed = true
		for i := 0; i < g.n; i++ {
			d := &g.instr[i]
			ts.stats.Instructions++
			if d.EndIter {
				ts.stats.Iterations++
			}
			if d.EndRep {
				ts.stats.Repetitions++
				ts.stats.RepEndCycles = append(ts.stats.RepEndCycles, now)
				ts.stats.RepEndInstrs = append(ts.stats.RepEndInstrs, ts.stats.Instructions)
			}
			if d.Op == isa.OpPrioSet {
				cur := c.alloc.Priority(ts.id)
				next := prio.Apply(cur, prio.Level(d.Prio), ts.priv)
				if next != cur {
					c.alloc.Set(ts.id, next)
					c.syncMemWeights()
					ts.stats.PrioChanges++
				} else if prio.Level(d.Prio) != cur {
					ts.stats.PrioDenied++
				}
			}
		}
		ts.stats.Groups++
		ts.groups = ts.groups[:copy(ts.groups, ts.groups[1:])]
		c.pool = append(c.pool, g)
	}
}

// issue selects oldest-ready entries per unit class and starts execution.
// The scan compacts the queue in place and stops early once all unit slots
// are used; a cycle in which nothing issues costs no copying.
func (c *Core) issue(now uint64) {
	for u := 0; u < isa.UnitCount; u++ {
		q := c.queues[u]
		if len(q) == 0 {
			continue
		}
		slots := c.cfg.NumFU[u]
		w := 0
		i := 0
		for ; i < len(q); i++ {
			if slots == 0 {
				break
			}
			e := &q[i]
			if e.readyAt > now {
				if w != i {
					q[w] = *e
				}
				w++
				continue
			}
			ts := c.thr[e.thread]
			if ra, rb, known := depsResultAt(ts, e.depA, e.depB); !known || ra > now || rb > now {
				if known {
					// Both producers issued: result times are final, so
					// later scans can skip this entry on one compare.
					if rb > ra {
						ra = rb
					}
					e.readyAt = ra
				}
				if w != i {
					q[w] = *e
				}
				w++
				continue
			}
			if e.op == isa.OpLoad {
				// A load that may miss needs a free LMQ entry; probe the
				// cache without side effects first.
				if !c.hier.L1Resident(c.id, e.addr) && ts.lmqActive >= c.cfg.LMQPerThread {
					if w != i {
						q[w] = *e
					}
					w++
					continue
				}
			}
			// Issue.
			slots--
			c.progressed = true
			c.cstats.IssuedByUnit[u]++
			var doneAt uint64
			switch e.op {
			case isa.OpLoad:
				res := c.hier.Load(c.id, int(e.thread), e.addr, now)
				doneAt = res.Done
				if res.Level != mem.HitL1 {
					ts.lmqInsert(lmqEntry{seq: e.seq, done: res.Done, level: res.Level})
				}
			case isa.OpStore:
				c.hier.Store(c.id, int(e.thread), e.addr, now)
				doneAt = now + c.cfg.LatStore
			case isa.OpBranch:
				doneAt = now + c.cfg.LatBranch
				if e.mispred {
					ts.pendBr = append(ts.pendBr, brEvent{seq: e.seq, at: doneAt})
				}
			default:
				doneAt = now + c.cfg.latency(e.op)
			}
			ts.resultAt[e.seq&(resultRing-1)] = doneAt
			e.g.issuedCnt++
			if doneAt > e.g.doneAt {
				e.g.doneAt = doneAt
			}
		}
		if w != i {
			w += copy(q[w:], q[i:])
			c.queues[u] = q[:w]
		}
	}
}

// balanceStep runs the resource-balancing monitor for both threads and
// returns the per-thread decode-stall decisions.
func (c *Core) balanceStep(now uint64) [2]bool {
	var stall [2]bool
	for i, ts := range c.thr {
		if !c.active(i) {
			continue
		}
		sibling := c.active(1 - i)
		d := c.mon.Observe(i, ts.gctHeld(), ts.lmqMisses, sibling)
		stall[i] = d.StallDecode
		if d.FlushDispatch && len(ts.fetchBuf)-ts.fbHead > 0 {
			// Flush dispatch-pending instructions: they will be re-fetched.
			ts.fetchSeq -= uint64(len(ts.fetchBuf) - ts.fbHead)
			ts.fetchBuf = ts.fetchBuf[:0]
			ts.fbHead = 0
			ts.stats.BalanceFlushes++
			c.progressed = true
		}
	}
	return stall
}

// decode forms and dispatches one group from the thread granted this
// cycle's decode slot.
func (c *Core) decode(now uint64, stall [2]bool) {
	g := c.alloc.Next()
	if g.None {
		return
	}
	t := g.Thread
	ts := c.thr[t]
	if !c.active(t) {
		return
	}
	ts.stats.DecodeGranted++
	if stall[t] || ts.blockedUntil > now || len(ts.fetchBuf)-ts.fbHead == 0 {
		ts.stats.DecodeStalled++
		return
	}
	if c.gctUsed() >= c.cfg.GCTEntries {
		ts.stats.DecodeStalled++
		return
	}
	limit := c.cfg.GroupSize
	if g.SingleInstr {
		limit = 1
	}
	grp := c.newGroup()
	grp.firstSeq = ts.fetchBuf[ts.fbHead].Seq
	taken := 0
	avail := len(ts.fetchBuf) - ts.fbHead
	var unitCount [isa.UnitCount]int
	for taken < limit && taken < avail {
		d := ts.fetchBuf[ts.fbHead+taken]
		u := isa.UnitOf(d.Op)
		if unitCount[u] >= c.cfg.GroupUnitCap[u] {
			break // typed group slots exhausted for this unit class
		}
		if len(c.queues[u]) >= c.cfg.QueueCap[u] {
			break
		}
		unitCount[u]++
		slot := grp.n
		grp.instr[slot] = d
		grp.mispred[slot] = false
		if d.Op == isa.OpBranch {
			pred := c.pred.Predict(t, d.PC)
			c.pred.Update(t, d.PC, d.Taken)
			if pred != d.Taken {
				grp.mispred[slot] = true
				ts.stats.BranchMispredicts++
			}
		}
		c.queues[u] = append(c.queues[u], qent{
			seq: d.Seq, depA: d.DepA, depB: d.DepB, addr: d.Addr,
			op: d.Op, thread: int8(t), slot: int8(slot),
			mispred: grp.mispred[slot], g: grp,
		})
		grp.n++
		taken++
		if d.Op == isa.OpBranch {
			break // groups end at a branch
		}
	}
	if grp.n == 0 {
		c.pool = append(c.pool, grp)
		ts.stats.DecodeStalled++
		return
	}
	ts.fbHead += taken
	if ts.fbHead == len(ts.fetchBuf) {
		ts.fetchBuf = ts.fetchBuf[:0]
		ts.fbHead = 0
	}
	ts.groups = append(ts.groups, grp)
	ts.stats.DecodeUsed++
	c.progressed = true
	c.cstats.DecodedInstrs += uint64(grp.n)
	c.cstats.DecodedGroups++
}

// fetch refills the fetch buffers from the replay ring or the stream and
// reports whether any thread made progress (false once every active
// buffer is full, which lets FastForward stop replaying refills early).
func (c *Core) fetch(now uint64) bool {
	progress := false
	for i, ts := range c.thr {
		if !c.active(i) || ts.stream == nil {
			continue
		}
		// Compact once the dead prefix reaches a buffer's worth, keeping
		// the backing array bounded while amortizing the copy.
		if ts.fbHead >= c.cfg.FetchBufCap {
			n := copy(ts.fetchBuf, ts.fetchBuf[ts.fbHead:])
			ts.fetchBuf = ts.fetchBuf[:n]
			ts.fbHead = 0
		}
		fetched := 0
		for fetched < c.cfg.FetchWidth && len(ts.fetchBuf)-ts.fbHead < c.cfg.FetchBufCap {
			var d isa.Dyn
			if ts.fetchSeq == ts.genSeq {
				d = ts.stream.Next()
				ts.replay[ts.genSeq&(replayRing-1)] = d
				ts.genSeq++
			} else {
				d = ts.replay[ts.fetchSeq&(replayRing-1)]
			}
			ts.resultAt[ts.fetchSeq&(resultRing-1)] = notDone
			ts.fetchBuf = append(ts.fetchBuf, d)
			ts.fetchSeq++
			fetched++
		}
		if fetched > 0 {
			progress = true
		}
	}
	return progress
}

// gctUsed returns the total GCT occupancy.
func (c *Core) gctUsed() int { return c.thr[0].gctHeld() + c.thr[1].gctHeld() }

// newGroup takes a group from the pool.
func (c *Core) newGroup() *group {
	if n := len(c.pool); n > 0 {
		g := c.pool[n-1]
		c.pool = c.pool[:n-1]
		g.n = 0
		g.issuedCnt = 0
		g.doneAt = 0
		return g
	}
	return &group{}
}
