package pipeline

import (
	"testing"

	"power5prio/internal/isa"
	"power5prio/internal/prio"
)

func TestCoreStatsAccumulate(t *testing.T) {
	c := NewCore(DefaultConfig(), testHier(), 0)
	c.SetWorkload(0, isa.NewStream(intKernel(t, 4, 8)), prio.User)
	c.SetPriority(1, prio.ThreadOff)
	c.Run(2000)
	cs := c.CoreStats()
	if cs.Cycles != 2000 {
		t.Errorf("Cycles = %d, want 2000", cs.Cycles)
	}
	if cs.DecodedInstrs == 0 || cs.DecodedGroups == 0 {
		t.Error("no decode activity recorded")
	}
	if cs.IssuedByUnit[isa.UnitFX] == 0 {
		t.Error("no FX issues recorded for an integer kernel")
	}
	if cs.IssuedByUnit[isa.UnitFP] != 0 {
		t.Error("FP issues recorded for an integer-only kernel")
	}
	if cs.GCTOccupSum == 0 {
		t.Error("GCT occupancy integral is zero")
	}
	// Issued ops cannot exceed decoded instructions (trace-driven, no
	// wrong-path execution; squashed instructions never issue twice
	// without being re-decoded).
	var issued uint64
	for _, n := range cs.IssuedByUnit {
		issued += n
	}
	if issued > cs.DecodedInstrs {
		t.Errorf("issued %d > decoded %d", issued, cs.DecodedInstrs)
	}
}

func TestCoreStatsHelpers(t *testing.T) {
	cs := CoreStats{
		Cycles:       100,
		GCTOccupSum:  500,
		IssuedByUnit: [4]uint64{isa.UnitFX: 120},
	}
	if got := cs.AvgGCTOccupancy(); got != 5.0 {
		t.Errorf("AvgGCTOccupancy = %v, want 5", got)
	}
	if got := cs.UnitUtilization(int(isa.UnitFX), 2); got != 0.6 {
		t.Errorf("UnitUtilization = %v, want 0.6", got)
	}
	var zero CoreStats
	if zero.AvgGCTOccupancy() != 0 || zero.UnitUtilization(0, 2) != 0 {
		t.Error("zero-value helpers must return 0")
	}
}

// TestUtilizationMatchesWorkloadClass: an LSU-heavy kernel utilizes the
// load/store pipes far more than the FP pipes.
func TestUtilizationMatchesWorkloadClass(t *testing.T) {
	c := NewCore(DefaultConfig(), testHier(), 0)
	c.SetWorkload(0, isa.NewStream(chaseKernel(t, 16<<10, 64)), prio.User)
	c.SetPriority(1, prio.ThreadOff)
	c.Run(20000)
	cs := c.CoreStats()
	cfg := c.Config()
	ls := cs.UnitUtilization(int(isa.UnitLS), cfg.NumFU[isa.UnitLS])
	fp := cs.UnitUtilization(int(isa.UnitFP), cfg.NumFU[isa.UnitFP])
	if ls <= fp {
		t.Errorf("load kernel: LS utilization %.3f should exceed FP %.3f", ls, fp)
	}
}
