// Package pipeline implements the cycle-approximate POWER5-like SMT core:
// two hardware threads sharing a Global Completion Table (GCT), issue
// queues and functional units, with decode-slot arbitration driven by the
// software-controlled priority mechanism (internal/prio) and hardware
// resource balancing (internal/balance).
//
// The pipeline is trace-driven: each thread executes an isa.Stream (the
// correct path only). Branch mispredictions squash younger in-flight
// instructions and re-fetch them from a replay ring after a redirect
// penalty; wrong-path instructions themselves are not modelled.
package pipeline

import (
	"fmt"

	"power5prio/internal/balance"
	"power5prio/internal/isa"
)

// GroupMax is the hardware limit on instructions per dispatch group.
const GroupMax = 8

// Config holds the core parameters. DefaultConfig follows published POWER5
// characteristics; every field is an ablation knob.
type Config struct {
	FetchWidth  int // instructions fetched per cycle per thread
	FetchBufCap int // per-thread fetch buffer entries

	GroupSize  int // max instructions per decode group (POWER5: 5)
	GCTEntries int // shared group completion table entries (POWER5: 20)

	// GroupUnitCap limits instructions of each unit class per dispatch
	// group, mirroring POWER4/5 typed group slots (2 FX, 2 LS, 2 FP, 1 BR).
	// This is what makes decode bandwidth the first-order shared resource
	// the software-controlled priorities arbitrate.
	GroupUnitCap [isa.UnitCount]int

	QueueCap [isa.UnitCount]int // issue queue capacity per unit class
	NumFU    [isa.UnitCount]int // functional units per class

	LatIntAdd uint64
	LatIntMul uint64
	LatIntDiv uint64
	LatFPAdd  uint64
	LatFPMul  uint64
	LatBranch uint64
	LatStore  uint64 // store "completion" latency (store buffer accepts it)

	LMQPerThread      int    // outstanding L1-miss loads per thread
	MispredictPenalty uint64 // decode redirect delay after a mispredict
	BHTBits           uint   // branch history table size (2^bits counters)

	Balance balance.Config
}

// DefaultConfig returns POWER5-like core parameters.
func DefaultConfig() Config {
	return Config{
		FetchWidth:   8,
		FetchBufCap:  24,
		GroupSize:    5,
		GCTEntries:   20,
		GroupUnitCap: [isa.UnitCount]int{isa.UnitFX: 2, isa.UnitLS: 2, isa.UnitFP: 2, isa.UnitBR: 1},
		QueueCap:     [isa.UnitCount]int{isa.UnitFX: 36, isa.UnitLS: 36, isa.UnitFP: 24, isa.UnitBR: 12},
		NumFU:        [isa.UnitCount]int{isa.UnitFX: 2, isa.UnitLS: 2, isa.UnitFP: 2, isa.UnitBR: 1},

		LatIntAdd: 2,
		LatIntMul: 7,
		LatIntDiv: 36,
		LatFPAdd:  6,
		LatFPMul:  6,
		LatBranch: 2,
		LatStore:  1,

		LMQPerThread:      8,
		MispredictPenalty: 7,
		BHTBits:           14,

		Balance: balance.DefaultConfig(),
	}
}

// Validate checks configuration consistency.
func (c Config) Validate() error {
	if c.FetchWidth <= 0 || c.FetchBufCap <= 0 {
		return fmt.Errorf("pipeline: fetch width/buffer must be positive")
	}
	if c.GroupSize <= 0 || c.GroupSize > GroupMax {
		return fmt.Errorf("pipeline: GroupSize must be in 1..%d, got %d", GroupMax, c.GroupSize)
	}
	if c.GCTEntries <= 0 {
		return fmt.Errorf("pipeline: GCTEntries must be positive")
	}
	for u := 0; u < isa.UnitCount; u++ {
		if c.QueueCap[u] <= 0 {
			return fmt.Errorf("pipeline: queue capacity for %v must be positive", isa.Unit(u))
		}
		if c.NumFU[u] <= 0 {
			return fmt.Errorf("pipeline: FU count for %v must be positive", isa.Unit(u))
		}
		if c.GroupUnitCap[u] <= 0 {
			return fmt.Errorf("pipeline: group slot cap for %v must be positive", isa.Unit(u))
		}
	}
	if c.LMQPerThread <= 0 {
		return fmt.Errorf("pipeline: LMQPerThread must be positive")
	}
	if c.BHTBits == 0 {
		return fmt.Errorf("pipeline: BHTBits must be positive")
	}
	return c.Balance.Validate()
}

// latency returns the execution latency for op (memory ops excluded).
func (c *Config) latency(op isa.Op) uint64 {
	switch op {
	case isa.OpIntAdd:
		return c.LatIntAdd
	case isa.OpIntMul:
		return c.LatIntMul
	case isa.OpIntDiv:
		return c.LatIntDiv
	case isa.OpFPAdd:
		return c.LatFPAdd
	case isa.OpFPMul:
		return c.LatFPMul
	case isa.OpBranch:
		return c.LatBranch
	case isa.OpStore:
		return c.LatStore
	default: // nop, prioset
		return 1
	}
}
