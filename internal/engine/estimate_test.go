package engine

import (
	"sync"
	"testing"

	"power5prio/internal/cachestore"
	"power5prio/internal/fame"
)

// fakeEstimator serves a recognizable prediction for every pair job and
// counts consultations; IPC 42 cannot come out of a real simulation.
type fakeEstimator struct {
	mu       sync.Mutex
	calls    int
	errorBar float64
	decline  bool
}

func (f *fakeEstimator) EstimateJob(j Job) (Estimate, bool) {
	f.mu.Lock()
	f.calls++
	f.mu.Unlock()
	if f.decline || j.Secondary.IsZero() {
		return Estimate{}, false
	}
	var pair fame.PairResult
	pair.Thread[0] = fame.ThreadResult{Active: true, IPC: 42}
	pair.Thread[1] = fame.ThreadResult{Active: true, IPC: 42}
	pair.TotalIPC = 84
	return Estimate{Pair: pair, ErrorBar: f.errorBar}, true
}

func (f *fakeEstimator) Calls() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.calls
}

// TestEstimateOffBitIdentical: with estimation off — or at zero
// tolerance — an engine with an estimator attached behaves bit-for-bit
// like one without: same results, untouched estimator, zero estimate
// counters (off) or escalations only (τ=0).
func TestEstimateOffBitIdentical(t *testing.T) {
	jobs := testBatch(t)
	want := New(2).Run(nil, jobs)

	for _, mode := range []EstimateMode{EstimateOff(), EstimateTolerance(0)} {
		est := &fakeEstimator{errorBar: 0.01}
		e := New(2)
		e.SetEstimator(est)
		e.SetEstimateMode(mode)
		got := e.Run(nil, jobs)
		for i := range jobs {
			if got[i].Pair != want[i].Pair || got[i].Estimated || got[i].ErrorBar != 0 {
				t.Errorf("mode %+v job %d: result diverged from seed path: %+v", mode, i, got[i])
			}
		}
		if est.Calls() != 0 {
			t.Errorf("mode %+v: estimator consulted %d times, want 0", mode, est.Calls())
		}
		st := e.Stats()
		if st.EstimatedHits != 0 {
			t.Errorf("mode %+v: %d estimated hits, want 0", mode, st.EstimatedHits)
		}
		if mode.Enabled && st.EstimatedEscalated != len(jobs) {
			t.Errorf("τ=0: %d escalated, want %d", st.EstimatedEscalated, len(jobs))
		}
		if !mode.Enabled && st.EstimatedEscalated != 0 {
			t.Errorf("off: %d escalated, want 0", st.EstimatedEscalated)
		}
	}
}

// TestEstimateAlwaysServes: Always mode serves every pair job from the
// estimator — flagged, with the error bar, without simulating — and
// single-thread jobs (declined by the model) escalate.
func TestEstimateAlwaysServes(t *testing.T) {
	jobs := testBatch(t) // 2 singles, 3 pairs, 2 duplicates (1 single, 1 pair)
	est := &fakeEstimator{errorBar: 0.25}
	e := New(2)
	e.SetEstimator(est)
	e.SetEstimateMode(EstimateAlways())
	res := e.Run(nil, jobs)

	nEst, nExact := 0, 0
	for i, r := range res {
		if r.Err != nil {
			t.Fatalf("job %d: %v", i, r.Err)
		}
		if r.Job.Secondary.IsZero() {
			nExact++
			if r.Estimated || r.Pair.Thread[0].IPC == 42 {
				t.Errorf("single-thread job %d served an estimate: %+v", i, r)
			}
			continue
		}
		nEst++
		if !r.Estimated || r.ErrorBar != 0.25 || r.Pair.Thread[0].IPC != 42 {
			t.Errorf("pair job %d not served by tier 0: %+v", i, r)
		}
		if r.CacheHit || r.Coalesced {
			t.Errorf("estimated job %d flagged as cache hit", i)
		}
	}
	if nEst != 4 || nExact != 3 {
		t.Fatalf("%d estimated / %d exact results, want 4/3", nEst, nExact)
	}
	st := e.Stats()
	if st.EstimatedHits != 4 || st.EstimatedEscalated != 3 {
		t.Errorf("stats %+v, want 4 estimated hits, 3 escalated", st)
	}
	if st.Hits != 1 || st.Simulated != 2 {
		t.Errorf("stats %+v, want the exact path untouched by estimates (1 hit, 2 simulated)", st)
	}
}

// TestEstimateNeverCached: an estimated answer lands in no cache tier —
// not the memory map, not the persistent store under the job's plain
// key — so turning estimation off re-simulates from scratch.
func TestEstimateNeverCached(t *testing.T) {
	st, err := cachestore.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	jobs := testBatch(t)[2:5] // the three unique pair jobs
	est := &fakeEstimator{errorBar: 0.25}
	e := NewWith(2, nil, WithStore(st))
	e.SetEstimator(est)
	e.SetEstimateMode(EstimateAlways())

	res := e.Run(nil, jobs)
	for i, r := range res {
		if !r.Estimated {
			t.Fatalf("job %d not estimated: %+v", i, r)
		}
		if _, gerr := st.Get(JobKey(jobs[i])); gerr == nil {
			t.Errorf("estimated job %d present in the persistent store", i)
		}
	}
	if s := e.Stats(); s.DiskWrites != 0 || s.Simulated != 0 {
		t.Fatalf("estimated batch touched the exact tiers: %+v", s)
	}

	// The same engine with estimation off: everything simulates — the
	// estimates poisoned nothing — and results match a clean engine.
	e.SetEstimateMode(EstimateOff())
	exact := e.Run(nil, jobs)
	want := New(2).Run(nil, jobs)
	for i := range jobs {
		if exact[i].CacheHit || exact[i].Estimated {
			t.Errorf("post-estimate exact job %d served from a cache: %+v", i, exact[i])
		}
		if exact[i].Pair != want[i].Pair {
			t.Errorf("job %d: post-estimate exact result differs from clean engine", i)
		}
	}
	if s := e.Stats(); s.Simulated != len(jobs) || s.DiskWrites != len(jobs) {
		t.Errorf("exact re-run stats %+v, want %d simulated and persisted", s, len(jobs))
	}
}

// TestEstimateTolerance: the error bar gates acceptance — τ above the
// bar serves, τ below escalates to simulation.
func TestEstimateTolerance(t *testing.T) {
	jobs := testBatch(t)[2:3] // one pair job
	for _, tc := range []struct {
		tol   float64
		serve bool
	}{
		{0.5, true}, {0.25, true}, {0.1, false},
	} {
		est := &fakeEstimator{errorBar: 0.25}
		e := New(1)
		e.SetEstimator(est)
		e.SetEstimateMode(EstimateTolerance(tc.tol))
		r := e.Run(nil, jobs)[0]
		if r.Estimated != tc.serve {
			t.Errorf("τ=%v: Estimated=%v, want %v", tc.tol, r.Estimated, tc.serve)
		}
		if est.Calls() != 1 {
			t.Errorf("τ=%v: estimator consulted %d times, want 1", tc.tol, est.Calls())
		}
		if wantSim := 0; tc.serve {
			if e.Stats().Simulated != wantSim {
				t.Errorf("τ=%v: simulated despite serving", tc.tol)
			}
		} else if e.Stats().EstimatedEscalated != 1 {
			t.Errorf("τ=%v: escalation not counted: %+v", tc.tol, e.Stats())
		}
	}
}

// TestEstimateDecline: a declining estimator escalates every job to the
// exact path.
func TestEstimateDecline(t *testing.T) {
	jobs := testBatch(t)
	est := &fakeEstimator{decline: true}
	e := New(2)
	e.SetEstimator(est)
	e.SetEstimateMode(EstimateAlways())
	res := e.Run(nil, jobs)
	want := New(2).Run(nil, jobs)
	for i := range jobs {
		if res[i].Estimated || res[i].Pair != want[i].Pair {
			t.Errorf("job %d: declined estimate still altered the result", i)
		}
	}
	if s := e.Stats(); s.EstimatedHits != 0 || s.EstimatedEscalated != len(jobs) {
		t.Errorf("stats %+v, want all %d escalated", s, len(jobs))
	}
}

// TestRunEstimatePerJobModes: explicit per-job modes override the
// engine default independently per index, and a modes slice of the
// wrong length panics.
func TestRunEstimatePerJobModes(t *testing.T) {
	jobs := testBatch(t)[2:5] // three unique pair jobs
	est := &fakeEstimator{errorBar: 0.25}
	e := New(2)
	e.SetEstimator(est)
	// Engine default stays off; only job 1 opts in.
	modes := []EstimateMode{EstimateOff(), EstimateAlways(), EstimateTolerance(0.1)}
	res := e.RunEstimate(nil, jobs, modes, nil)
	if res[0].Estimated || res[2].Estimated {
		t.Errorf("jobs with off/tight modes were estimated: %+v, %+v", res[0], res[2])
	}
	if !res[1].Estimated {
		t.Errorf("job with Always mode not estimated: %+v", res[1])
	}
	if s := e.Stats(); s.EstimatedHits != 1 || s.EstimatedEscalated != 1 {
		t.Errorf("stats %+v, want 1 estimated, 1 escalated (off-mode job not counted)", s)
	}

	defer func() {
		if recover() == nil {
			t.Error("RunEstimate accepted a modes slice of the wrong length")
		}
	}()
	e.RunEstimate(nil, jobs, modes[:1], nil)
}

// TestEstimateWithoutEstimator: opting in on an engine with no
// estimator attached escalates cleanly instead of failing.
func TestEstimateWithoutEstimator(t *testing.T) {
	jobs := testBatch(t)[2:3]
	e := New(1)
	e.SetEstimateMode(EstimateAlways())
	r := e.Run(nil, jobs)[0]
	if r.Err != nil || r.Estimated {
		t.Fatalf("estimator-less engine: %+v", r)
	}
	if s := e.Stats(); s.EstimatedEscalated != 1 || s.Simulated != 1 {
		t.Errorf("stats %+v, want 1 escalated, 1 simulated", s)
	}
}
