// Package engine is the batch execution engine behind every measurement
// path: experiments, the public System API and the command-line tools all
// describe their simulations as Jobs and submit them in batches. The
// engine memoizes results in a content-keyed cache and hands the unique
// uncached jobs to a pluggable Backend — the in-process worker pool
// (LocalBackend) by default, or remote/sharded backends
// (internal/remote) that run the same jobs on other machines — so a
// baseline shared by several sweeps (e.g. the (4,4) co-run of Figures
// 2-4, or a benchmark's single-thread IPC) is simulated exactly once,
// wherever execution happens.
//
// The cache has two tiers: the in-memory map, and an optional persistent
// store (WithStore) keyed by a stable hash of the full Job, so repeated
// invocations across processes reuse each other's completed work. The
// disk tier verifies per-entry checksums and falls back to recomputing
// (then rewriting) anything corrupt.
//
// Workloads are named through a workload.Registry: a job's kernels are
// identified by fingerprinted workload.Refs, so micro-benchmarks,
// synthetic SPEC stand-ins and user-registered custom kernels co-schedule
// and cache uniformly — a pair may mix families freely.
//
// Batches are context-aware: cancelling the context stops dispatch,
// in-flight jobs run to completion (and are cached), and every job that
// never started returns the context's error. Long sweeps are therefore
// interruptible with partial results, and a retry reuses the completed
// work through the cache.
//
// Determinism: each job builds its own kernels and runs on a fresh chip,
// so a job's result is a pure function of the Job value and the kernel
// content its Refs fingerprint. Batches return bit-identical results for
// any worker count, preserving the paper-reproduction guarantees of the
// serial code path.
package engine

import (
	"context"
	"encoding/json"
	"fmt"
	"runtime"
	"sync"

	"power5prio/internal/cachestore"
	"power5prio/internal/core"
	"power5prio/internal/fame"
	"power5prio/internal/isa"
	"power5prio/internal/prio"
	"power5prio/internal/workload"
)

// Job describes one independent simulation: a workload pair (or a single
// workload when Secondary is the zero Ref), the priority levels, the chip
// configuration and the FAME measurement options. Job is a comparable
// value type; it is its own cache key — two jobs with equal fields are
// the same measurement, because a Ref's fingerprint pins the kernel
// content it names.
type Job struct {
	Primary   workload.Ref
	Secondary workload.Ref // zero: Primary runs alone in single-thread mode
	PrioP     prio.Level
	PrioS     prio.Level
	Privilege prio.Privilege
	// IterScale shrinks kernel repetition lengths (0 or 1.0 = defaults).
	IterScale float64
	Chip      core.Config
	Fame      fame.Options
}

// Single returns a single-thread job for one workload (the conventional
// placement: priorities (4,4), secondary thread off).
func Single(ref workload.Ref, priv prio.Privilege, iterScale float64, chip core.Config, opts fame.Options) Job {
	return Job{
		Primary: ref,
		PrioP:   prio.Medium, PrioS: prio.Medium,
		Privilege: priv, IterScale: iterScale, Chip: chip, Fame: opts,
	}
}

// Pair returns a co-scheduled job for two workloads at explicit levels.
// The refs may come from different workload families.
func Pair(refP, refS workload.Ref, pp, ps prio.Level, priv prio.Privilege, iterScale float64, chip core.Config, opts fame.Options) Job {
	return Job{
		Primary: refP, Secondary: refS,
		PrioP: pp, PrioS: ps,
		Privilege: priv, IterScale: iterScale, Chip: chip, Fame: opts,
	}
}

// Result pairs a submitted job with its measurement.
type Result struct {
	Job Job
	// Pair holds the measurement; for single-thread jobs only Thread[0]
	// is active.
	Pair fame.PairResult
	// Err is the job's failure: a build/validation error, or — with
	// Skipped set — the reason the job never ran.
	Err error
	// CacheHit reports that the job was served from the result cache (a
	// previous batch, or an identical job earlier in this batch).
	CacheHit bool
	// Coalesced reports that the job was served by joining another
	// batch's in-flight computation (cross-batch singleflight) rather
	// than from an already-warm cache tier. Coalesced results also have
	// CacheHit set: the flight publishes to the cache and the waiter is
	// served from it.
	Coalesced bool
	// Skipped reports that the job was never attempted: its batch was
	// cancelled first, or its backend failed. Err carries the cause.
	// Skipped results are never cached — a retry re-runs the job.
	Skipped bool
	// Estimated reports a tier-0 answer: Pair is an analytical model's
	// prediction, not a simulation, and ErrorBar carries the model's
	// expected worst-case absolute IPC error. Estimated results are
	// never cached — they must not alias exact results — so a
	// re-submission with estimation off simulates from scratch.
	Estimated bool
	// ErrorBar is the model uncertainty of an Estimated result (absolute
	// IPC); zero otherwise.
	ErrorBar float64
}

// Stats counts the engine's work across its lifetime.
type Stats struct {
	// Submitted jobs across all Run calls.
	Submitted int
	// Simulated jobs (cache misses that ran on a worker).
	Simulated int
	// Hits served from a cache tier without simulating (in-memory or
	// disk; disk serves are additionally counted in DiskHits).
	Hits int
	// Coalesced jobs joined another batch's in-flight computation of
	// the identical job (cross-batch singleflight) instead of
	// simulating it again. A coalesced job also counts in Hits (or
	// Skipped) when its flight lands.
	Coalesced int
	// Skipped jobs that never started because their batch was cancelled.
	Skipped int
	// DiskHits are lookups served from the persistent store (results
	// computed by an earlier process, or an earlier engine sharing the
	// store). Disk hits also count in Hits.
	DiskHits int
	// DiskMisses are persistent-store probes that found no usable entry
	// (absent, corrupt, or undecodable) and fell through to simulation.
	// Memo misses count here too.
	DiskMisses int
	// DiskWrites are results persisted to the store.
	DiskWrites int
	// EstimatedHits are jobs answered by the tier-0 analytical estimator
	// instead of any cache tier or simulation. Estimated answers are
	// counted here only — never in Hits or Simulated.
	EstimatedHits int
	// EstimatedEscalated are jobs that asked for a tier-0 answer but
	// fell through to the exact path: the model declined them, its error
	// bar exceeded the caller's tolerance, or the tolerance was zero.
	EstimatedEscalated int
	// Remote counts work done through a remote backend (all zero on the
	// default local backend).
	Remote RemoteStats
}

// String renders the counters in one line.
func (s Stats) String() string {
	out := fmt.Sprintf("%d jobs submitted, %d simulated, %d cache hits", s.Submitted, s.Simulated, s.Hits)
	if s.Coalesced > 0 {
		out += fmt.Sprintf(", %d coalesced", s.Coalesced)
	}
	if s.Skipped > 0 {
		out += fmt.Sprintf(", %d skipped", s.Skipped)
	}
	if s.EstimatedHits != 0 || s.EstimatedEscalated != 0 {
		out += fmt.Sprintf(", %d estimated (%d escalated)", s.EstimatedHits, s.EstimatedEscalated)
	}
	if s.DiskHits != 0 || s.DiskMisses != 0 || s.DiskWrites != 0 {
		out += fmt.Sprintf("; disk: %d hits, %d misses, %d writes", s.DiskHits, s.DiskMisses, s.DiskWrites)
	}
	if r := s.Remote; r != (RemoteStats{}) {
		out += fmt.Sprintf("; remote: %d jobs, %d retries, %d worker errors", r.Jobs, r.Retries, r.WorkerErrors)
	}
	return out
}

// Engine is a job scheduler with a content-keyed result cache and a
// workload registry that resolves job Refs to kernels. Execution is
// delegated to a pluggable Backend — the in-process worker pool by
// default, or remote/sharded backends (internal/remote) that run the
// same jobs on other machines with identical results. The zero value is
// not usable; call New. An Engine is safe for concurrent use.
type Engine struct {
	mu      sync.Mutex
	backend Backend
	// localWorkers bounds in-process concurrency for work that never
	// reaches the backend (ForEach): with a remote backend, the fleet's
	// capacity says nothing about how many simulations this machine
	// should run at once.
	localWorkers int
	reg          *workload.Registry
	store        *cachestore.Store
	cache        map[Job]outcome
	// inflight is the cross-batch singleflight table (see flight.go):
	// uncached jobs currently being computed by some batch, so a
	// concurrent batch submitting the same job waits instead of
	// simulating it again.
	inflight map[Job]*flight
	// estimator is the optional tier-0 analytical model (estimate.go);
	// estMode is the default acceptance mode for batches that carry no
	// per-job modes. Both default to off.
	estimator Estimator
	estMode   EstimateMode
	stats     Stats
}

type outcome struct {
	pair fame.PairResult
	err  error
}

// Option configures an engine at construction.
type Option func(*Engine)

// WithStore attaches a persistent result store as the second cache tier
// behind the in-memory map (nil = memory only, the default). Lookups
// that miss in memory probe the store; simulated results are written
// back, so engines — across processes — sharing one store directory
// reuse each other's completed work. Only successful results persist;
// job errors stay in the in-memory tier.
func WithStore(st *cachestore.Store) Option { return func(e *Engine) { e.store = st } }

// WithBackend routes job execution through the given backend instead of
// the default in-process worker pool. The engine's cache tiers sit in
// front of any backend: only unique, uncached jobs reach it, and its
// results are cached exactly like locally simulated ones. Results must
// be — and for the backends in this repository are — bit-identical to
// local execution.
func WithBackend(b Backend) Option { return func(e *Engine) { e.backend = b } }

// New returns an engine bounded to the given number of workers with a
// fresh registry of the built-in workloads; workers <= 0 selects
// GOMAXPROCS (all cores).
func New(workers int) *Engine { return NewWith(workers, nil) }

// NewWith returns an engine using the given workload registry (nil = a
// fresh built-ins-only registry), configured by options. Sharing one
// registry between engines lets them resolve the same custom kernels.
// Without WithBackend, execution runs on a LocalBackend pool of the
// given worker count sharing the engine's registry.
func NewWith(workers int, reg *workload.Registry, opts ...Option) *Engine {
	if reg == nil {
		reg = workload.NewRegistry()
	}
	localWorkers := workers
	if localWorkers <= 0 {
		localWorkers = runtime.GOMAXPROCS(0)
	}
	e := &Engine{
		localWorkers: localWorkers,
		reg:          reg,
		cache:        make(map[Job]outcome),
		inflight:     make(map[Job]*flight),
	}
	for _, o := range opts {
		o(e)
	}
	if e.backend == nil {
		e.backend = NewLocalBackend(workers, reg)
	}
	return e
}

// Store returns the engine's persistent store (nil when the engine is
// memory-only).
func (e *Engine) Store() *cachestore.Store { return e.store }

// Registry returns the engine's workload registry; register custom
// kernels here to make them resolvable in jobs.
func (e *Engine) Registry() *workload.Registry { return e.reg }

// Backend returns the engine's execution backend.
func (e *Engine) Backend() Backend { return e.backend }

// Workers returns the backend's concurrency capacity.
func (e *Engine) Workers() int { return e.backend.Capacity() }

// SetWorkers changes the concurrency bound for subsequent batches when
// the backend supports it (the local pool does) and for in-process
// ForEach runs; the result cache is retained. n <= 0 selects
// GOMAXPROCS.
func (e *Engine) SetWorkers(n int) {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	e.mu.Lock()
	e.localWorkers = n
	e.mu.Unlock()
	if cs, ok := e.backend.(CapacitySetter); ok {
		cs.SetCapacity(n)
	}
}

// Stats returns a snapshot of the lifetime counters. On an engine with
// a remote backend, the backend's remote counters are folded in.
func (e *Engine) Stats() Stats {
	e.mu.Lock()
	s := e.stats
	e.mu.Unlock()
	if rs, ok := e.backend.(RemoteStatser); ok {
		s.Remote = rs.RemoteStats()
	}
	return s
}

// Run executes a batch of jobs and returns their results in submission
// order. Duplicate jobs within the batch — and jobs already in the cache
// from earlier batches — are simulated once and fanned back to every
// submitter. Unique uncached jobs execute concurrently on the worker
// pool; results are independent of the worker count.
//
// Cancelling ctx (nil = background) stops dispatching: jobs already
// running finish normally and enter the cache, jobs that never started
// return Results with Err set to the context's error. With one worker,
// the completed jobs form exactly the leading prefix of the batch.
func (e *Engine) Run(ctx context.Context, jobs []Job) []Result {
	return e.RunFunc(ctx, jobs, nil)
}

// RunFunc is Run with a per-job progress callback: progress(i, r) fires
// once for every job index as its result becomes final — immediately for
// cache hits, at simulation completion for misses (duplicates resolve
// with their first occurrence), and after the pool drains for jobs
// skipped by cancellation. Calls are serialized; progress must not
// submit to the same engine.
func (e *Engine) RunFunc(ctx context.Context, jobs []Job, progress func(i int, r Result)) []Result {
	return e.RunEstimate(ctx, jobs, nil, progress)
}

// RunEstimate is RunFunc with explicit per-job estimation modes: before
// any cache tier is consulted, each job whose mode can accept a tier-0
// answer is offered to the engine's estimator, and a prediction within
// tolerance is served directly — labelled Estimated, bypassing and
// never entering the caches. Everything else (mode off, τ=0, model
// declined, error bar too wide) escalates to the exact RunFunc path
// unchanged. modes must be nil — every job uses the engine's default
// mode (SetEstimateMode) — or exactly len(jobs) long, where a zero mode
// means off for that job.
func (e *Engine) RunEstimate(ctx context.Context, jobs []Job, modes []EstimateMode, progress func(i int, r Result)) []Result {
	if ctx == nil {
		ctx = context.Background()
	}
	if modes != nil && len(modes) != len(jobs) {
		panic(fmt.Sprintf("engine: RunEstimate: %d modes for %d jobs", len(modes), len(jobs)))
	}
	out := make([]Result, len(jobs))

	// Tier 0: consult the estimator outside the engine lock (a first
	// sighting of a workload calibrates, which simulates single-thread
	// runs). A job is served here only when its mode accepts the model's
	// error bar; a mode that cannot accept anything (off, τ=0) never
	// consults the estimator at all, so those paths are bit-identical to
	// an engine with no estimator.
	e.mu.Lock()
	est := e.estimator
	defMode := e.estMode
	e.mu.Unlock()
	served := make([]bool, len(jobs))
	var estHits, estEscalated []int
	for i, j := range jobs {
		m := defMode
		if modes != nil {
			m = modes[i]
		}
		if !m.Enabled {
			continue
		}
		if est == nil || !m.canServe() {
			estEscalated = append(estEscalated, i)
			continue
		}
		ev, ok := est.EstimateJob(j)
		if ok && m.serves(ev.ErrorBar) {
			out[i] = Result{Job: j, Pair: ev.Pair, Estimated: true, ErrorBar: ev.ErrorBar}
			served[i] = true
			estHits = append(estHits, i)
		} else {
			estEscalated = append(estEscalated, i)
		}
	}

	// Partition under the lock: memory-cache hits resolve immediately;
	// the first occurrence of each uncached job becomes a candidate —
	// registering a flight so concurrent batches coalesce onto it — or,
	// when another batch already has the job in flight, a joiner that
	// waits for that flight instead of re-submitting the job. Later
	// duplicates wait for their first occurrence. followers is
	// read-only once the backend starts.
	e.mu.Lock()
	e.stats.Submitted += len(jobs)
	e.stats.EstimatedHits += len(estHits)
	e.stats.EstimatedEscalated += len(estEscalated)
	var candidates []int
	var joiners []joinWait
	followers := make(map[Job][]int)
	var hitIdx []int
	for i, j := range jobs {
		if served[i] {
			continue
		}
		if oc, ok := e.cache[j]; ok {
			out[i] = Result{Job: j, Pair: oc.pair, Err: oc.err, CacheHit: true}
			e.stats.Hits++
			hitIdx = append(hitIdx, i)
			continue
		}
		if _, ok := followers[j]; ok {
			followers[j] = append(followers[j], i)
			continue
		}
		followers[j] = []int{}
		if fl, ok := e.inflight[j]; ok {
			joiners = append(joiners, joinWait{idx: i, fl: fl})
			e.stats.Coalesced++
			continue
		}
		e.inflight[j] = &flight{done: make(chan struct{})}
		candidates = append(candidates, i)
	}
	e.mu.Unlock()

	var progMu sync.Mutex
	report := func(idx ...int) {
		if progress == nil {
			return
		}
		progMu.Lock()
		defer progMu.Unlock()
		for _, i := range idx {
			progress(i, out[i])
		}
	}
	report(estHits...)
	report(hitIdx...)

	// Joined jobs wait concurrently with this batch's own backend work:
	// each waiter serves its flight's cached outcome when it lands, or
	// claims the job if the owning batch abandons it (see flight.go).
	var joinWG sync.WaitGroup
	for _, jn := range joiners {
		joinWG.Add(1)
		go func(jn joinWait) {
			defer joinWG.Done()
			j := jobs[jn.idx]
			flw := followers[j]
			e.awaitFlight(ctx, j, jn.fl, len(flw), func(r Result) {
				out[jn.idx] = r
				for _, f := range flw {
					fr := r
					if !r.Skipped {
						fr.CacheHit = true
					}
					out[f] = fr
				}
				report(append([]int{jn.idx}, flw...)...)
			})
		}(jn)
	}
	defer joinWG.Wait()

	// Probe the persistent tier for first-in-process sightings — outside
	// the engine lock, because each probe is file I/O and must not stall
	// concurrent batches. A disk hit is promoted into the memory map (one
	// probe per job per process) and resolves its in-batch followers.
	toRun := candidates
	if e.store != nil {
		toRun = make([]int, 0, len(candidates))
		for _, idx := range candidates {
			j := jobs[idx]
			pair, ok := e.diskGet(j)
			e.mu.Lock()
			if ok {
				e.cache[j] = outcome{pair: pair}
				e.stats.Hits += 1 + len(followers[j])
				e.stats.DiskHits++
				if fl, ok := e.inflight[j]; ok {
					e.completeLocked(j, fl)
				}
			} else {
				e.stats.DiskMisses++
			}
			e.mu.Unlock()
			if !ok {
				toRun = append(toRun, idx)
				continue
			}
			out[idx] = Result{Job: j, Pair: pair, CacheHit: true}
			final := append([]int{idx}, followers[j]...)
			for _, f := range followers[j] {
				out[f] = Result{Job: j, Pair: pair, CacheHit: true}
			}
			report(final...)
		}
	}

	if len(toRun) == 0 {
		return out
	}

	// Hand the unique uncached jobs to the backend. resolve is called
	// exactly once per batch index — live from the backend's done
	// callback when it offers one, and from the returned slice (or a
	// synthesized backend-failure result) for anything left over — and
	// fans each result out to the job's in-batch followers.
	batch := make([]Job, len(toRun))
	for k, idx := range toRun {
		batch[k] = jobs[idx]
	}
	var resMu sync.Mutex
	resolved := make([]bool, len(batch))
	resolve := func(k int, r Result) {
		resMu.Lock()
		if resolved[k] {
			resMu.Unlock()
			return
		}
		resolved[k] = true
		resMu.Unlock()
		idx := toRun[k]
		j := jobs[idx]
		if r.Skipped {
			// Never attempted (cancellation or backend failure): do not
			// cache, so a retry re-runs the job. Completing the flight
			// without a cache entry tells its waiters the job was
			// abandoned; they re-join or claim it (flight.go).
			e.mu.Lock()
			e.stats.Skipped += 1 + len(followers[j])
			if fl, ok := e.inflight[j]; ok {
				e.completeLocked(j, fl)
			}
			e.mu.Unlock()
			out[idx] = Result{Job: j, Err: r.Err, Skipped: true}
			for _, f := range followers[j] {
				out[f] = Result{Job: j, Err: r.Err, Skipped: true}
			}
		} else if r.Estimated {
			// Tier-0 answer produced by the backend (a service daemon
			// running its own estimator). Estimates must never alias
			// exact results: deliver, but do not publish to the memory
			// map or the persistent store. The flight completes without
			// a cache entry, so cross-batch waiters re-run the job —
			// which the daemon answers from tier 0 again, cheaply.
			e.mu.Lock()
			e.stats.EstimatedHits += 1 + len(followers[j])
			if fl, ok := e.inflight[j]; ok {
				e.completeLocked(j, fl)
			}
			e.mu.Unlock()
			out[idx] = Result{Job: j, Pair: r.Pair, Estimated: true, ErrorBar: r.ErrorBar}
			for _, f := range followers[j] {
				out[f] = Result{Job: j, Pair: r.Pair, Estimated: true, ErrorBar: r.ErrorBar}
			}
		} else {
			e.mu.Lock()
			e.cache[j] = outcome{pair: r.Pair, err: r.Err}
			e.stats.Simulated++
			e.stats.Hits += len(followers[j])
			if fl, ok := e.inflight[j]; ok {
				e.completeLocked(j, fl)
			}
			e.mu.Unlock()
			if e.store != nil && r.Err == nil && e.diskPut(j, r.Pair) {
				e.mu.Lock()
				e.stats.DiskWrites++
				e.mu.Unlock()
			}
			out[idx] = Result{Job: j, Pair: r.Pair, Err: r.Err}
			for _, f := range followers[j] {
				out[f] = Result{Job: j, Pair: r.Pair, Err: r.Err, CacheHit: true}
			}
		}
		report(append([]int{idx}, followers[j]...)...)
	}

	var results []Result
	var backendErr error
	if pb, ok := e.backend.(ProgressBackend); ok {
		results, backendErr = pb.RunProgress(ctx, batch, resolve)
	} else {
		results, backendErr = e.backend.Run(ctx, batch)
	}
	for k := range batch {
		if k < len(results) {
			resolve(k, results[k])
			continue
		}
		// No result for this job: the backend failed before reaching it.
		err := backendErr
		if err == nil {
			err = fmt.Errorf("returned %d results for %d jobs", len(results), len(batch))
		}
		resolve(k, Result{Job: batch[k], Err: backendError(e.backend, err), Skipped: true})
	}
	return out
}

// ForEach runs fn(i) for every i in [0,n) across the engine's worker
// pool and blocks until all dispatched calls return. It is the escape
// hatch for measurement paths that are not plain FAME jobs (e.g. the
// FFT/LU pipeline rows of Table 4): fn must be safe to call concurrently
// and should write its result into a caller-owned slot at index i.
// Cancelling ctx (nil = background) stops dispatching further indices;
// ForEach returns the context's error if any index was skipped.
func (e *Engine) ForEach(ctx context.Context, n int, fn func(int)) error {
	if ctx == nil {
		ctx = context.Background()
	}
	if n <= 0 {
		return nil
	}
	// ForEach work runs in-process regardless of the execution backend,
	// so it is bounded by the engine's local worker count, not the
	// backend's capacity.
	e.mu.Lock()
	workers := e.localWorkers
	e.mu.Unlock()
	if workers > n {
		workers = n
	}
	work := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				fn(i)
			}
		}()
	}
	var err error
dispatch:
	for i := 0; i < n; i++ {
		if err = ctx.Err(); err != nil {
			break
		}
		select {
		case work <- i:
		case <-ctx.Done():
			err = ctx.Err()
			break dispatch
		}
	}
	close(work)
	wg.Wait()
	return err
}

// Execute runs one job to completion on a fresh chip and is the serial
// reference semantics of the engine: Run is defined to return exactly
// what Execute returns for every job. The registry resolves the job's
// workload refs (nil = a fresh built-ins-only registry). Invalid jobs
// return errors rather than panicking so a bad name cannot take down a
// whole batch.
func Execute(reg *workload.Registry, j Job) (fame.PairResult, error) {
	if reg == nil {
		reg = workload.NewRegistry()
	}
	if err := j.Fame.Validate(); err != nil {
		return fame.PairResult{}, err
	}
	if err := j.Chip.Validate(); err != nil {
		return fame.PairResult{}, err
	}
	if j.Primary.IsZero() {
		return fame.PairResult{}, fmt.Errorf("engine: job has no primary workload")
	}
	kp, err := reg.Build(j.Primary, j.IterScale)
	if err != nil {
		return fame.PairResult{}, err
	}
	var ks *isa.Kernel
	if !j.Secondary.IsZero() {
		ks, err = reg.Build(j.Secondary, j.IterScale)
		if err != nil {
			return fame.PairResult{}, err
		}
	}
	ch := core.NewChip(j.Chip)
	ch.PlacePair(kp, ks, j.PrioP, j.PrioS, j.Privilege)
	return fame.Measure(ch, j.Fame), nil
}

// Execute runs one job through the engine's registry without touching
// the cache — the serial reference path for this engine's jobs.
func (e *Engine) Execute(j Job) (fame.PairResult, error) {
	return Execute(e.reg, j)
}

// jobKeySchema versions the meaning of a Job's canonical hash. Bump it
// when simulation semantics change in a way the Job value cannot express
// (so existing persistent entries become unreachable rather than stale).
const jobKeySchema = "power5prio/job/v1"

// JobKey returns the job's persistent cache key: a stable content hash
// over every Job field — workload fingerprints, priority levels,
// privilege, iteration scale, the full chip configuration and the FAME
// options. Two jobs share a key exactly when they describe the same
// measurement; the key is identical across processes, which is what
// makes the disk tier sound. Job is guaranteed hashable by the engine's
// key-stability tests, so JobKey never fails.
func JobKey(j Job) cachestore.Key {
	return cachestore.MustHashValue(jobKeySchema, j)
}

// diskGet probes the persistent tier for a job's result. Corrupt or
// undecodable entries read as misses (the store already unlinked them),
// so the caller recomputes and the write-back restores a clean entry.
func (e *Engine) diskGet(j Job) (fame.PairResult, bool) {
	payload, err := e.store.Get(JobKey(j))
	if err != nil {
		return fame.PairResult{}, false
	}
	var pair fame.PairResult
	if json.Unmarshal(payload, &pair) != nil {
		return fame.PairResult{}, false
	}
	return pair, true
}

// diskPut persists a successful result, reporting whether it landed.
// Persistence is best-effort: a full disk degrades the engine to
// memory-only caching rather than failing the batch.
func (e *Engine) diskPut(j Job, pair fame.PairResult) bool {
	payload, err := json.Marshal(pair)
	if err != nil {
		return false
	}
	return e.store.Put(JobKey(j), payload) == nil
}

// Memo routes a non-Job computation through the persistent tier: the
// escape hatch that makes ForEach-style measurements (e.g. the FFT/LU
// pipeline rows of Table 4) cacheable across processes. keyVal is hashed
// under the caller's schema; on a hit the stored JSON is decoded into
// out and compute is skipped, otherwise compute must fill out, which is
// then persisted. With no store attached, Memo just runs compute.
// Lookups and writes count in the engine's Disk* stats. Memo is safe for
// concurrent use; concurrent calls with the same key may both compute
// (last write wins — results are deterministic, so both are identical).
func (e *Engine) Memo(schema string, keyVal, out any, compute func() error) (hit bool, err error) {
	if e.store == nil {
		return false, compute()
	}
	key, err := cachestore.HashValue(schema, keyVal)
	if err != nil {
		return false, fmt.Errorf("engine: memo key: %w", err)
	}
	if payload, gerr := e.store.Get(key); gerr == nil {
		if json.Unmarshal(payload, out) == nil {
			e.mu.Lock()
			e.stats.DiskHits++
			e.mu.Unlock()
			return true, nil
		}
		e.store.Delete(key) // stored JSON no longer matches out's shape
	}
	e.mu.Lock()
	e.stats.DiskMisses++
	e.mu.Unlock()
	if err := compute(); err != nil {
		return false, err
	}
	if payload, merr := json.Marshal(out); merr == nil && e.store.Put(key, payload) == nil {
		e.mu.Lock()
		e.stats.DiskWrites++
		e.mu.Unlock()
	}
	return false, nil
}
