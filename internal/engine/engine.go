// Package engine is the batch execution engine behind every measurement
// path: experiments, the public System API and the command-line tools all
// describe their simulations as Jobs and submit them in batches. The
// engine fans independent jobs out across a bounded worker pool and
// memoizes results in a content-keyed cache, so a baseline shared by
// several sweeps (e.g. the (4,4) co-run of Figures 2-4, or a benchmark's
// single-thread IPC) is simulated exactly once.
//
// Determinism: each job builds its own kernels and runs on a fresh chip,
// so a job's result is a pure function of the Job value. Batches return
// bit-identical results for any worker count, preserving the
// paper-reproduction guarantees of the serial code path.
package engine

import (
	"fmt"
	"runtime"
	"sync"

	"power5prio/internal/core"
	"power5prio/internal/fame"
	"power5prio/internal/isa"
	"power5prio/internal/microbench"
	"power5prio/internal/prio"
	"power5prio/internal/spec"
)

// Kind selects the workload family a Job's names are resolved in.
type Kind int

const (
	// Micro resolves names against the paper's fifteen micro-benchmarks.
	Micro Kind = iota
	// Spec resolves names against the synthetic SPEC stand-ins.
	Spec
)

// String names the kind for diagnostics.
func (k Kind) String() string {
	switch k {
	case Micro:
		return "micro"
	case Spec:
		return "spec"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Job describes one independent simulation: a workload pair (or a single
// workload when Secondary is empty), the priority levels, the chip
// configuration and the FAME measurement options. Job is a comparable
// value type; it is its own cache key — two jobs with equal fields are
// the same measurement.
type Job struct {
	Kind      Kind
	Primary   string
	Secondary string // empty: Primary runs alone in single-thread mode
	PrioP     prio.Level
	PrioS     prio.Level
	Privilege prio.Privilege
	// IterScale shrinks kernel repetition lengths (0 or 1.0 = defaults).
	IterScale float64
	Chip      core.Config
	Fame      fame.Options
}

// Single returns a single-thread job for one workload (the conventional
// placement: priorities (4,4), secondary thread off).
func Single(kind Kind, name string, priv prio.Privilege, iterScale float64, chip core.Config, opts fame.Options) Job {
	return Job{
		Kind: kind, Primary: name,
		PrioP: prio.Medium, PrioS: prio.Medium,
		Privilege: priv, IterScale: iterScale, Chip: chip, Fame: opts,
	}
}

// Pair returns a co-scheduled job for two workloads at explicit levels.
func Pair(kind Kind, nameP, nameS string, pp, ps prio.Level, priv prio.Privilege, iterScale float64, chip core.Config, opts fame.Options) Job {
	return Job{
		Kind: kind, Primary: nameP, Secondary: nameS,
		PrioP: pp, PrioS: ps,
		Privilege: priv, IterScale: iterScale, Chip: chip, Fame: opts,
	}
}

// Result pairs a submitted job with its measurement.
type Result struct {
	Job Job
	// Pair holds the measurement; for single-thread jobs only Thread[0]
	// is active.
	Pair fame.PairResult
	Err  error
	// CacheHit reports that the job was served from the result cache (a
	// previous batch, or an identical job earlier in this batch).
	CacheHit bool
}

// Stats counts the engine's work across its lifetime.
type Stats struct {
	// Submitted jobs across all Run calls.
	Submitted int
	// Simulated jobs (cache misses that ran on a worker).
	Simulated int
	// Hits served from the cache without simulating.
	Hits int
}

// String renders the counters in one line.
func (s Stats) String() string {
	return fmt.Sprintf("%d jobs submitted, %d simulated, %d cache hits", s.Submitted, s.Simulated, s.Hits)
}

// Engine is a worker-pool job scheduler with a content-keyed result
// cache. The zero value is not usable; call New. An Engine is safe for
// concurrent use.
type Engine struct {
	mu      sync.Mutex
	workers int
	cache   map[Job]outcome
	stats   Stats
}

type outcome struct {
	pair fame.PairResult
	err  error
}

// New returns an engine bounded to the given number of workers;
// workers <= 0 selects GOMAXPROCS (all cores).
func New(workers int) *Engine {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Engine{workers: workers, cache: make(map[Job]outcome)}
}

// Workers returns the concurrency bound.
func (e *Engine) Workers() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.workers
}

// SetWorkers changes the concurrency bound for subsequent batches; the
// result cache is retained. n <= 0 selects GOMAXPROCS.
func (e *Engine) SetWorkers(n int) {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	e.mu.Lock()
	e.workers = n
	e.mu.Unlock()
}

// Stats returns a snapshot of the lifetime counters.
func (e *Engine) Stats() Stats {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.stats
}

// Run executes a batch of jobs and returns their results in submission
// order. Duplicate jobs within the batch — and jobs already in the cache
// from earlier batches — are simulated once and fanned back to every
// submitter. Unique uncached jobs execute concurrently on the worker
// pool; results are independent of the worker count.
func (e *Engine) Run(jobs []Job) []Result {
	out := make([]Result, len(jobs))

	// Partition: first occurrence of each uncached job runs; everything
	// else is a hit resolved after the pool drains.
	e.mu.Lock()
	workers := e.workers
	e.stats.Submitted += len(jobs)
	var toRun []int
	scheduled := make(map[Job]bool)
	for i, j := range jobs {
		if _, ok := e.cache[j]; ok || scheduled[j] {
			continue
		}
		scheduled[j] = true
		toRun = append(toRun, i)
	}
	e.mu.Unlock()

	fresh := e.simulate(jobs, toRun, workers)

	e.mu.Lock()
	for k, idx := range toRun {
		e.cache[jobs[idx]] = fresh[k]
	}
	e.stats.Simulated += len(toRun)
	e.stats.Hits += len(jobs) - len(toRun)
	for i, j := range jobs {
		oc := e.cache[j]
		out[i] = Result{Job: j, Pair: oc.pair, Err: oc.err, CacheHit: !scheduled[j]}
		delete(scheduled, j) // only the first occurrence is the miss
	}
	e.mu.Unlock()
	return out
}

// simulate executes jobs[idx] for each idx in toRun across the pool.
func (e *Engine) simulate(jobs []Job, toRun []int, workers int) []outcome {
	fresh := make([]outcome, len(toRun))
	if len(toRun) == 0 {
		return fresh
	}
	if workers > len(toRun) {
		workers = len(toRun)
	}
	work := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := range work {
				pair, err := Execute(jobs[toRun[k]])
				fresh[k] = outcome{pair: pair, err: err}
			}
		}()
	}
	for k := range toRun {
		work <- k
	}
	close(work)
	wg.Wait()
	return fresh
}

// ForEach runs fn(i) for every i in [0,n) across the engine's worker
// pool and blocks until all calls return. It is the escape hatch for
// measurement paths that are not plain FAME jobs (e.g. the FFT/LU
// pipeline rows of Table 4): fn must be safe to call concurrently and
// should write its result into a caller-owned slot at index i.
func (e *Engine) ForEach(n int, fn func(int)) {
	if n <= 0 {
		return
	}
	workers := e.Workers()
	if workers > n {
		workers = n
	}
	work := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		work <- i
	}
	close(work)
	wg.Wait()
}

// Execute runs one job to completion on a fresh chip and is the serial
// reference semantics of the engine: Run is defined to return exactly
// what Execute returns for every job. Invalid jobs return errors rather
// than panicking so a bad name cannot take down a whole batch.
func Execute(j Job) (fame.PairResult, error) {
	if err := j.Fame.Validate(); err != nil {
		return fame.PairResult{}, err
	}
	if err := j.Chip.Validate(); err != nil {
		return fame.PairResult{}, err
	}
	kp, err := buildKernel(j.Kind, j.Primary, j.IterScale)
	if err != nil {
		return fame.PairResult{}, err
	}
	var ks *isa.Kernel
	if j.Secondary != "" {
		ks, err = buildKernel(j.Kind, j.Secondary, j.IterScale)
		if err != nil {
			return fame.PairResult{}, err
		}
	}
	ch := core.NewChip(j.Chip)
	ch.PlacePair(kp, ks, j.PrioP, j.PrioS, j.Privilege)
	return fame.Measure(ch, j.Fame), nil
}

// buildKernel resolves a workload name within its family at the job's
// scale.
func buildKernel(kind Kind, name string, iterScale float64) (*isa.Kernel, error) {
	switch kind {
	case Micro:
		return microbench.BuildWith(name, microbench.Params{IterScale: iterScale})
	case Spec:
		return spec.BuildWith(name, spec.Params{IterScale: iterScale})
	}
	return nil, fmt.Errorf("engine: unknown workload kind %v", kind)
}
