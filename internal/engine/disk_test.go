package engine

import (
	"os"
	"sync"
	"testing"

	"power5prio/internal/cachestore"
	"power5prio/internal/core"
	"power5prio/internal/microbench"
	"power5prio/internal/prio"
)

// openStore opens a persistent store for engine tests.
func openStore(t testing.TB, dir string) *cachestore.Store {
	t.Helper()
	st, err := cachestore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// TestDiskTierWarmEngine: a fresh engine sharing a warm store directory
// must serve every unique job from disk — zero simulations — with
// results bit-identical to the cold engine's. This is the process-restart
// scenario, minus the process boundary.
func TestDiskTierWarmEngine(t *testing.T) {
	dir := t.TempDir()
	jobs := testBatch(t)
	unique := make(map[Job]bool)
	for _, j := range jobs {
		unique[j] = true
	}

	cold := NewWith(4, nil, WithStore(openStore(t, dir)))
	coldRes := cold.Run(nil, jobs)
	cs := cold.Stats()
	if cs.DiskHits != 0 || cs.DiskMisses != len(unique) || cs.DiskWrites != len(unique) {
		t.Fatalf("cold stats %+v: want 0 disk hits, %d misses, %d writes", cs, len(unique), len(unique))
	}

	warm := NewWith(4, nil, WithStore(openStore(t, dir)))
	warmRes := warm.Run(nil, jobs)
	ws := warm.Stats()
	if ws.Simulated != 0 {
		t.Errorf("warm engine simulated %d jobs, want 0", ws.Simulated)
	}
	if ws.DiskHits != len(unique) || ws.DiskMisses != 0 || ws.DiskWrites != 0 {
		t.Errorf("warm stats %+v: want %d disk hits, 0 misses, 0 writes", ws, len(unique))
	}
	if ws.Hits != len(jobs) {
		t.Errorf("warm Hits = %d, want every job (%d) served from cache", ws.Hits, len(jobs))
	}
	for i := range jobs {
		if warmRes[i].Err != nil {
			t.Fatalf("warm job %d: %v", i, warmRes[i].Err)
		}
		if !warmRes[i].CacheHit {
			t.Errorf("warm job %d not marked CacheHit", i)
		}
		if warmRes[i].Pair != coldRes[i].Pair {
			t.Errorf("warm job %d differs from cold run\ncold %+v\nwarm %+v", i, coldRes[i].Pair, warmRes[i].Pair)
		}
	}
}

// TestDiskTierCorruptionFallback: a corrupt entry must read as a miss,
// be recomputed with the correct result, and be rewritten clean for the
// next engine.
func TestDiskTierCorruptionFallback(t *testing.T) {
	dir := t.TempDir()
	job := Single(ref(t, microbench.CPUInt), prio.Supervisor, testScale, core.DefaultConfig(), testOptions())

	cold := NewWith(1, nil, WithStore(openStore(t, dir)))
	want := cold.Run(nil, []Job{job})[0]
	if want.Err != nil {
		t.Fatal(want.Err)
	}

	// Flip a payload bit in the stored entry.
	st := openStore(t, dir)
	path := st.EntryPath(JobKey(job))
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-1] ^= 0x40
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	mid := NewWith(1, nil, WithStore(openStore(t, dir)))
	got := mid.Run(nil, []Job{job})[0]
	if got.Err != nil {
		t.Fatal(got.Err)
	}
	if got.CacheHit {
		t.Error("corrupt entry served as a cache hit")
	}
	if got.Pair != want.Pair {
		t.Errorf("recomputed result differs: %+v vs %+v", got.Pair, want.Pair)
	}
	ms := mid.Stats()
	if ms.Simulated != 1 || ms.DiskMisses != 1 || ms.DiskWrites != 1 {
		t.Errorf("fallback stats %+v: want 1 simulated, 1 disk miss, 1 rewrite", ms)
	}

	// The rewrite restored a clean entry: the next engine hits.
	warm := NewWith(1, nil, WithStore(openStore(t, dir)))
	res := warm.Run(nil, []Job{job})[0]
	if res.Err != nil || !res.CacheHit || res.Pair != want.Pair {
		t.Errorf("post-rewrite run: hit=%v err=%v", res.CacheHit, res.Err)
	}
	if vs := warm.Stats(); vs.DiskHits != 1 || vs.Simulated != 0 {
		t.Errorf("post-rewrite stats %+v: want 1 disk hit, 0 simulated", vs)
	}
}

// TestDiskTierConcurrentEngines: two engines sharing one directory,
// running overlapping batches concurrently (the -race coverage for the
// engine side of the shared cache dir).
func TestDiskTierConcurrentEngines(t *testing.T) {
	dir := t.TempDir()
	jobs := testBatch(t)
	ref := New(1).Run(nil, jobs)

	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			e := NewWith(2, nil, WithStore(openStore(t, dir)))
			for round := 0; round < 3; round++ {
				res := e.Run(nil, jobs)
				for i := range jobs {
					if res[i].Err != nil {
						t.Errorf("job %d: %v", i, res[i].Err)
					} else if res[i].Pair != ref[i].Pair {
						t.Errorf("job %d: concurrent shared-store result differs", i)
					}
				}
			}
		}()
	}
	wg.Wait()
}

// TestMemo: the generic disk-memoization path used by non-Job
// measurements (Table 4's pipeline runs).
func TestMemo(t *testing.T) {
	dir := t.TempDir()
	type key struct{ N int }
	type result struct{ V float64 }
	const schema = "power5prio/test-memo/v1"

	e1 := NewWith(1, nil, WithStore(openStore(t, dir)))
	var r1 result
	calls := 0
	hit, err := e1.Memo(schema, key{7}, &r1, func() error { calls++; r1.V = 3.5; return nil })
	if err != nil || hit || calls != 1 {
		t.Fatalf("cold Memo: hit=%v err=%v calls=%d", hit, err, calls)
	}

	// A fresh engine on the same dir hits without computing.
	e2 := NewWith(1, nil, WithStore(openStore(t, dir)))
	var r2 result
	hit, err = e2.Memo(schema, key{7}, &r2, func() error { t.Error("memo recomputed on warm store"); return nil })
	if err != nil || !hit || r2 != r1 {
		t.Fatalf("warm Memo: hit=%v err=%v r2=%+v", hit, err, r2)
	}
	if s := e2.Stats(); s.DiskHits != 1 || s.DiskMisses != 0 {
		t.Errorf("warm Memo stats %+v", s)
	}

	// A different key computes.
	var r3 result
	hit, err = e2.Memo(schema, key{8}, &r3, func() error { r3.V = 4.5; return nil })
	if err != nil || hit || r3.V != 4.5 {
		t.Fatalf("distinct-key Memo: hit=%v err=%v r3=%+v", hit, err, r3)
	}

	// Without a store, Memo is a plain call.
	bare := New(1)
	var r4 result
	hit, err = bare.Memo(schema, key{7}, &r4, func() error { r4.V = 9; return nil })
	if err != nil || hit || r4.V != 9 {
		t.Fatalf("storeless Memo: hit=%v err=%v r4=%+v", hit, err, r4)
	}

	// Unhashable keys fail loudly instead of silently recomputing forever.
	if _, err := e2.Memo(schema, map[string]int{}, &r4, func() error { return nil }); err == nil {
		t.Error("Memo accepted an unhashable key")
	}
}
