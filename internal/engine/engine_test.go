package engine

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"

	"power5prio/internal/core"
	"power5prio/internal/fame"
	"power5prio/internal/isa"
	"power5prio/internal/microbench"
	"power5prio/internal/prio"
	"power5prio/internal/spec"
	"power5prio/internal/workload"
)

// testOptions keeps engine tests fast: two repetitions, tiny kernels.
func testOptions() fame.Options {
	return fame.Options{MinReps: 2, WarmupReps: 0, MaxCycles: 50_000_000}
}

const testScale = 0.02 // clamps to the minimum kernel length

// ref resolves a built-in workload name for tests.
func ref(t testing.TB, name string) workload.Ref {
	t.Helper()
	r, err := workload.NewRegistry().Resolve(name)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// testBatch builds a small mixed batch: singles, pairs across the
// priority range, and deliberate duplicates.
func testBatch(t testing.TB) []Job {
	cfg := core.DefaultConfig()
	opt := testOptions()
	var jobs []Job
	for _, name := range []string{microbench.CPUInt, microbench.LdIntL1} {
		jobs = append(jobs, Single(ref(t, name), prio.Supervisor, testScale, cfg, opt))
	}
	for _, pp := range []prio.Level{prio.High, prio.Medium, prio.Low} {
		jobs = append(jobs,
			Pair(ref(t, microbench.CPUInt), ref(t, microbench.LdIntL1), pp, prio.Medium, prio.Supervisor, testScale, cfg, opt))
	}
	// Duplicates of the first single and the first pair.
	jobs = append(jobs, jobs[0], jobs[2])
	return jobs
}

// TestEngineEquivalence proves worker-count independence: the same batch
// run serially (1 worker), in parallel (8 workers) and via the Execute
// reference path yields bit-identical IPC values for every job.
func TestEngineEquivalence(t *testing.T) {
	jobs := testBatch(t)

	serial := New(1).Run(nil, jobs)
	parallel := New(8).Run(nil, jobs)
	if len(serial) != len(jobs) || len(parallel) != len(jobs) {
		t.Fatalf("result lengths %d/%d, want %d", len(serial), len(parallel), len(jobs))
	}
	for i := range jobs {
		pair, err := Execute(nil, jobs[i])
		if err != nil {
			t.Fatalf("Execute(%d): %v", i, err)
		}
		if serial[i].Err != nil || parallel[i].Err != nil {
			t.Fatalf("job %d errored: serial %v, parallel %v", i, serial[i].Err, parallel[i].Err)
		}
		if serial[i].Pair != pair {
			t.Errorf("job %d: serial result differs from Execute reference\nserial %+v\nref    %+v",
				i, serial[i].Pair, pair)
		}
		if parallel[i].Pair != pair {
			t.Errorf("job %d: parallel result differs from Execute reference\nparallel %+v\nref      %+v",
				i, parallel[i].Pair, pair)
		}
		if pair.Thread[0].IPC <= 0 {
			t.Errorf("job %d: no progress (IPC %v)", i, pair.Thread[0].IPC)
		}
	}
}

// TestMixedFamilyPair: a micro-benchmark and a SPEC stand-in co-schedule
// in one job — the registry killed the per-family silo — and the result
// equals placing the two kernels on a chip by hand.
func TestMixedFamilyPair(t *testing.T) {
	cfg := core.DefaultConfig()
	opt := testOptions()
	e := New(2)
	j := Pair(ref(t, microbench.CPUInt), ref(t, spec.MCF),
		prio.High, prio.Medium, prio.Supervisor, testScale, cfg, opt)
	res := e.Run(nil, []Job{j})
	if res[0].Err != nil {
		t.Fatalf("mixed-family job failed: %v", res[0].Err)
	}

	// Hand-built cross-family reference run.
	ka, err := microbench.BuildWith(microbench.CPUInt, microbench.Params{IterScale: testScale})
	if err != nil {
		t.Fatal(err)
	}
	kb, err := spec.BuildWith(spec.MCF, spec.Params{IterScale: testScale})
	if err != nil {
		t.Fatal(err)
	}
	ch := core.NewChip(cfg)
	ch.PlacePair(ka, kb, prio.High, prio.Medium, prio.Supervisor)
	want := fame.Measure(ch, opt)
	if res[0].Pair != want {
		t.Errorf("mixed-family engine run differs from hand-built chip run\nengine %+v\nchip   %+v",
			res[0].Pair, want)
	}
}

// TestCustomKernelJob: a registered custom kernel runs through the engine
// and caches by content fingerprint.
func TestCustomKernelJob(t *testing.T) {
	build := func(name string, iters int) *isa.Kernel {
		b := isa.NewBuilder(name)
		a := b.Reg("a")
		b.Op2(isa.OpIntAdd, a, a, a)
		b.Branch(isa.BranchLoop, a)
		return b.MustBuild(iters)
	}
	e := New(2)
	cref, err := e.Registry().Register(build("custom_add", 16))
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.DefaultConfig()
	opt := testOptions()
	j := Pair(cref, ref(t, microbench.LdIntL1), prio.Medium, prio.Medium, prio.Supervisor, 1.0, cfg, opt)
	res := e.Run(nil, []Job{j, j})
	if res[0].Err != nil {
		t.Fatalf("custom job failed: %v", res[0].Err)
	}
	if !res[1].CacheHit || res[1].Pair != res[0].Pair {
		t.Error("duplicate custom job was not a cache hit")
	}

	// A different registry with different content under the same name
	// yields a different fingerprint, hence a different cache key.
	e2 := New(2)
	cref2, err := e2.Registry().Register(build("custom_add", 32))
	if err != nil {
		t.Fatal(err)
	}
	if cref2.Fingerprint == cref.Fingerprint {
		t.Error("different kernel content produced the same fingerprint")
	}
}

// TestCacheAccounting checks hit/miss bookkeeping within a batch and
// across batches.
func TestCacheAccounting(t *testing.T) {
	jobs := testBatch(t) // 7 jobs, 5 unique
	e := New(4)

	res := e.Run(nil, jobs)
	for i := 0; i < 5; i++ {
		if res[i].CacheHit {
			t.Errorf("job %d: first occurrence flagged as cache hit", i)
		}
	}
	for i := 5; i < 7; i++ {
		if !res[i].CacheHit {
			t.Errorf("job %d: in-batch duplicate not flagged as cache hit", i)
		}
	}
	st := e.Stats()
	if st.Submitted != 7 || st.Simulated != 5 || st.Hits != 2 {
		t.Errorf("after batch 1: stats %+v, want {Submitted:7 Simulated:5 Hits:2}", st)
	}

	// The whole batch again: everything is served from the cache.
	res = e.Run(nil, jobs)
	for i, r := range res {
		if !r.CacheHit {
			t.Errorf("batch 2 job %d: not a cache hit", i)
		}
	}
	st = e.Stats()
	if st.Submitted != 14 || st.Simulated != 5 || st.Hits != 9 {
		t.Errorf("after batch 2: stats %+v, want {Submitted:14 Simulated:5 Hits:9}", st)
	}

	if !strings.Contains(st.String(), "5 simulated") {
		t.Errorf("Stats.String() = %q", st.String())
	}
	if strings.Contains(st.String(), "skipped") {
		t.Errorf("Stats.String() mentions skipped with none: %q", st.String())
	}
}

// TestCachedResultsIdentical: a cache hit returns exactly what the miss
// computed.
func TestCachedResultsIdentical(t *testing.T) {
	jobs := testBatch(t)
	e := New(2)
	first := e.Run(nil, jobs)
	second := e.Run(nil, jobs)
	for i := range jobs {
		if first[i].Pair != second[i].Pair {
			t.Errorf("job %d: cached result differs from original", i)
		}
	}
}

// TestRunCancellation: cancelling a serial batch mid-run keeps the
// completed prefix, marks the rest with the context error, and caches the
// completed work for a retry.
func TestRunCancellation(t *testing.T) {
	jobs := testBatch(t)[:5] // 5 unique jobs
	e := New(1)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	const stopAfter = 2
	completed := 0
	res := e.RunFunc(ctx, jobs, func(i int, r Result) {
		if r.Err == nil {
			completed++
			if completed == stopAfter {
				cancel()
			}
		}
	})

	nDone := 0
	for i, r := range res {
		if r.Err == nil {
			nDone++
			continue
		}
		if !errors.Is(r.Err, context.Canceled) {
			t.Errorf("job %d: err %v, want context.Canceled", i, r.Err)
		}
		// Prefix property (1 worker): nothing completes after the first skip.
		for _, later := range res[i:] {
			if later.Err == nil {
				t.Fatalf("job completed after an earlier job was skipped")
			}
		}
		break
	}
	if nDone < stopAfter || nDone >= len(jobs) {
		t.Fatalf("%d jobs completed, want in [%d,%d)", nDone, stopAfter, len(jobs))
	}
	st := e.Stats()
	if st.Simulated != nDone || st.Skipped != len(jobs)-nDone {
		t.Errorf("stats %+v after cancellation (%d done)", st, nDone)
	}
	if !strings.Contains(st.String(), "skipped") {
		t.Errorf("Stats.String() hides skipped jobs: %q", st.String())
	}

	// Retry with a live context: completed work is served from the cache.
	res2 := e.Run(context.Background(), jobs)
	hits := 0
	for i, r := range res2 {
		if r.Err != nil {
			t.Fatalf("retry job %d: %v", i, r.Err)
		}
		if r.CacheHit {
			hits++
		}
	}
	if hits != nDone {
		t.Errorf("retry reused %d cached jobs, want %d", hits, nDone)
	}
}

// TestRunPreCancelled: an already-cancelled context runs nothing.
func TestRunPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	e := New(4)
	res := e.Run(ctx, testBatch(t))
	for i, r := range res {
		if !errors.Is(r.Err, context.Canceled) {
			t.Errorf("job %d: err %v, want context.Canceled", i, r.Err)
		}
	}
	if st := e.Stats(); st.Simulated != 0 || st.Skipped != len(res) {
		t.Errorf("stats %+v, want nothing simulated, all skipped", st)
	}
}

// TestRunFuncProgress: the callback fires exactly once per job index,
// hits and duplicates included.
func TestRunFuncProgress(t *testing.T) {
	jobs := testBatch(t)
	e := New(4)
	e.Run(nil, jobs[:2]) // pre-warm two jobs to produce cross-batch hits

	seen := make(map[int]int)
	e.RunFunc(nil, jobs, func(i int, r Result) {
		seen[i]++
		if r.Err != nil {
			t.Errorf("job %d reported error %v", i, r.Err)
		}
		if r.Pair.Cycles == 0 {
			t.Errorf("job %d reported an empty result", i)
		}
	})
	if len(seen) != len(jobs) {
		t.Fatalf("progress covered %d jobs, want %d", len(seen), len(jobs))
	}
	for i, n := range seen {
		if n != 1 {
			t.Errorf("job %d reported %d times", i, n)
		}
	}
}

// TestSingleThreadJob: a zero Secondary runs the primary alone with the
// sibling thread off.
func TestSingleThreadJob(t *testing.T) {
	j := Single(ref(t, microbench.CPUInt), prio.Supervisor, testScale, core.DefaultConfig(), testOptions())
	res, err := Execute(nil, j)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Thread[0].Active || res.Thread[0].IPC <= 0 {
		t.Errorf("primary thread inactive or stalled: %+v", res.Thread[0])
	}
	if res.Thread[1].Active {
		t.Errorf("secondary thread active in a single-thread job")
	}
}

// TestJobErrors: invalid jobs return errors — and errors do not poison
// valid jobs in the same batch.
func TestJobErrors(t *testing.T) {
	cfg := core.DefaultConfig()
	opt := testOptions()
	forged := workload.Ref{Name: "no_such_bench", Family: workload.Micro, Fingerprint: 1}
	bad := Single(forged, prio.Supervisor, testScale, cfg, opt)
	good := Single(ref(t, microbench.CPUInt), prio.Supervisor, testScale, cfg, opt)
	stale := Pair(ref(t, microbench.CPUInt), workload.Ref{Name: "ghost", Family: workload.Custom, Fingerprint: 9},
		prio.Medium, prio.Medium, prio.Supervisor, testScale, cfg, opt)

	res := New(2).Run(nil, []Job{bad, good, stale})
	if res[0].Err == nil {
		t.Error("forged workload ref did not error")
	}
	if res[1].Err != nil {
		t.Errorf("valid job failed alongside an invalid one: %v", res[1].Err)
	}
	if res[2].Err == nil {
		t.Error("unknown custom ref did not error")
	}

	if _, err := Execute(nil, Job{Chip: cfg, Fame: opt}); err == nil {
		t.Error("job without a primary workload did not error")
	}
	badOpts := opt
	badOpts.MinReps = 0
	if _, err := Execute(nil, Single(ref(t, microbench.CPUInt), prio.Supervisor, testScale, cfg, badOpts)); err == nil {
		t.Error("invalid FAME options did not error")
	}
	badChip := cfg
	badChip.ExperimentCore = 99
	if _, err := Execute(nil, Single(ref(t, microbench.CPUInt), prio.Supervisor, testScale, badChip, opt)); err == nil {
		t.Error("invalid chip config did not error")
	}
}

// TestForEach covers the generic pool: every index runs exactly once,
// concurrently, for worker counts above and below n — and cancellation
// stops dispatch.
func TestForEach(t *testing.T) {
	for _, workers := range []int{1, 3, 16} {
		e := New(workers)
		const n = 10
		var mu sync.Mutex
		seen := make(map[int]int)
		if err := e.ForEach(nil, n, func(i int) {
			mu.Lock()
			seen[i]++
			mu.Unlock()
		}); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(seen) != n {
			t.Errorf("workers=%d: %d distinct indices, want %d", workers, len(seen), n)
		}
		for i, c := range seen {
			if c != 1 {
				t.Errorf("workers=%d: index %d ran %d times", workers, i, c)
			}
		}
		if err := e.ForEach(nil, 0, func(int) { t.Error("ForEach(0) must not call fn") }); err != nil {
			t.Errorf("ForEach(0) = %v", err)
		}
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ran := false
	if err := New(2).ForEach(ctx, 4, func(int) { ran = true }); !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled ForEach returned %v", err)
	}
	if ran {
		t.Error("cancelled ForEach dispatched work")
	}
}

// TestSetWorkers: the pool size changes, the cache survives.
func TestSetWorkers(t *testing.T) {
	e := New(1)
	if e.Workers() != 1 {
		t.Fatalf("Workers() = %d", e.Workers())
	}
	jobs := testBatch(t)
	e.Run(nil, jobs)
	sim := e.Stats().Simulated

	e.SetWorkers(8)
	if e.Workers() != 8 {
		t.Fatalf("Workers() after SetWorkers = %d", e.Workers())
	}
	e.Run(nil, jobs)
	if got := e.Stats().Simulated; got != sim {
		t.Errorf("cache lost across SetWorkers: %d simulated, want %d", got, sim)
	}

	e.SetWorkers(0)
	if e.Workers() < 1 {
		t.Errorf("SetWorkers(0) left %d workers", e.Workers())
	}
}

// TestConcurrentEngineUse: one engine, many goroutines submitting
// overlapping batches — exercised under -race in CI.
func TestConcurrentEngineUse(t *testing.T) {
	e := New(4)
	jobs := testBatch(t)
	want := e.Run(nil, jobs)

	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			res := e.Run(nil, jobs)
			for i := range jobs {
				if res[i].Pair != want[i].Pair {
					t.Errorf("concurrent batch diverged at job %d", i)
					return
				}
			}
		}()
	}
	wg.Wait()
}

// TestEngineExecuteMethod: the method form resolves through the engine's
// own registry, covering custom kernels.
func TestEngineExecuteMethod(t *testing.T) {
	b := isa.NewBuilder("exec_custom")
	a := b.Reg("a")
	b.Op2(isa.OpIntAdd, a, a, a)
	b.Branch(isa.BranchLoop, a)
	e := New(1)
	cref, err := e.Registry().Register(b.MustBuild(16))
	if err != nil {
		t.Fatal(err)
	}
	j := Single(cref, prio.Supervisor, 1.0, core.DefaultConfig(), testOptions())
	res, err := e.Execute(j)
	if err != nil {
		t.Fatal(err)
	}
	if res.Thread[0].IPC <= 0 {
		t.Errorf("custom kernel made no progress: %+v", res.Thread[0])
	}
	// The same job through a fresh engine (no registration) must fail.
	if _, err := Execute(nil, j); err == nil {
		t.Error("custom job resolved in a registry that never registered it")
	}
}
