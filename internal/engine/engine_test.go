package engine

import (
	"strings"
	"sync"
	"testing"

	"power5prio/internal/core"
	"power5prio/internal/fame"
	"power5prio/internal/microbench"
	"power5prio/internal/prio"
)

// testOptions keeps engine tests fast: two repetitions, tiny kernels.
func testOptions() fame.Options {
	return fame.Options{MinReps: 2, WarmupReps: 0, MaxCycles: 50_000_000}
}

const testScale = 0.02 // clamps to the minimum kernel length

// testBatch builds a small mixed batch: singles, pairs across the
// priority range, and deliberate duplicates.
func testBatch() []Job {
	cfg := core.DefaultConfig()
	opt := testOptions()
	var jobs []Job
	for _, name := range []string{microbench.CPUInt, microbench.LdIntL1} {
		jobs = append(jobs, Single(Micro, name, prio.Supervisor, testScale, cfg, opt))
	}
	for _, pp := range []prio.Level{prio.High, prio.Medium, prio.Low} {
		jobs = append(jobs,
			Pair(Micro, microbench.CPUInt, microbench.LdIntL1, pp, prio.Medium, prio.Supervisor, testScale, cfg, opt))
	}
	// Duplicates of the first single and the first pair.
	jobs = append(jobs, jobs[0], jobs[2])
	return jobs
}

// TestEngineEquivalence proves worker-count independence: the same batch
// run serially (1 worker), in parallel (8 workers) and via the Execute
// reference path yields bit-identical IPC values for every job.
func TestEngineEquivalence(t *testing.T) {
	jobs := testBatch()

	serial := New(1).Run(jobs)
	parallel := New(8).Run(jobs)
	if len(serial) != len(jobs) || len(parallel) != len(jobs) {
		t.Fatalf("result lengths %d/%d, want %d", len(serial), len(parallel), len(jobs))
	}
	for i := range jobs {
		ref, err := Execute(jobs[i])
		if err != nil {
			t.Fatalf("Execute(%d): %v", i, err)
		}
		if serial[i].Err != nil || parallel[i].Err != nil {
			t.Fatalf("job %d errored: serial %v, parallel %v", i, serial[i].Err, parallel[i].Err)
		}
		if serial[i].Pair != ref {
			t.Errorf("job %d: serial result differs from Execute reference\nserial %+v\nref    %+v",
				i, serial[i].Pair, ref)
		}
		if parallel[i].Pair != ref {
			t.Errorf("job %d: parallel result differs from Execute reference\nparallel %+v\nref      %+v",
				i, parallel[i].Pair, ref)
		}
		if ref.Thread[0].IPC <= 0 {
			t.Errorf("job %d: no progress (IPC %v)", i, ref.Thread[0].IPC)
		}
	}
}

// TestCacheAccounting checks hit/miss bookkeeping within a batch and
// across batches.
func TestCacheAccounting(t *testing.T) {
	jobs := testBatch() // 7 jobs, 5 unique
	e := New(4)

	res := e.Run(jobs)
	for i := 0; i < 5; i++ {
		if res[i].CacheHit {
			t.Errorf("job %d: first occurrence flagged as cache hit", i)
		}
	}
	for i := 5; i < 7; i++ {
		if !res[i].CacheHit {
			t.Errorf("job %d: in-batch duplicate not flagged as cache hit", i)
		}
	}
	st := e.Stats()
	if st.Submitted != 7 || st.Simulated != 5 || st.Hits != 2 {
		t.Errorf("after batch 1: stats %+v, want {Submitted:7 Simulated:5 Hits:2}", st)
	}

	// The whole batch again: everything is served from the cache.
	res = e.Run(jobs)
	for i, r := range res {
		if !r.CacheHit {
			t.Errorf("batch 2 job %d: not a cache hit", i)
		}
	}
	st = e.Stats()
	if st.Submitted != 14 || st.Simulated != 5 || st.Hits != 9 {
		t.Errorf("after batch 2: stats %+v, want {Submitted:14 Simulated:5 Hits:9}", st)
	}

	if !strings.Contains(st.String(), "5 simulated") {
		t.Errorf("Stats.String() = %q", st.String())
	}
}

// TestCachedResultsIdentical: a cache hit returns exactly what the miss
// computed.
func TestCachedResultsIdentical(t *testing.T) {
	jobs := testBatch()
	e := New(2)
	first := e.Run(jobs)
	second := e.Run(jobs)
	for i := range jobs {
		if first[i].Pair != second[i].Pair {
			t.Errorf("job %d: cached result differs from original", i)
		}
	}
}

// TestSingleThreadJob: an empty Secondary runs the primary alone with the
// sibling thread off.
func TestSingleThreadJob(t *testing.T) {
	j := Single(Micro, microbench.CPUInt, prio.Supervisor, testScale, core.DefaultConfig(), testOptions())
	res, err := Execute(j)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Thread[0].Active || res.Thread[0].IPC <= 0 {
		t.Errorf("primary thread inactive or stalled: %+v", res.Thread[0])
	}
	if res.Thread[1].Active {
		t.Errorf("secondary thread active in a single-thread job")
	}
}

// TestJobErrors: invalid jobs return errors — and errors do not poison
// valid jobs in the same batch.
func TestJobErrors(t *testing.T) {
	cfg := core.DefaultConfig()
	opt := testOptions()
	bad := Single(Micro, "no_such_bench", prio.Supervisor, testScale, cfg, opt)
	good := Single(Micro, microbench.CPUInt, prio.Supervisor, testScale, cfg, opt)

	res := New(2).Run([]Job{bad, good, Pair(Spec, "also_missing", "nope", prio.Medium, prio.Medium, prio.Supervisor, testScale, cfg, opt)})
	if res[0].Err == nil {
		t.Error("unknown micro-benchmark did not error")
	}
	if res[1].Err != nil {
		t.Errorf("valid job failed alongside an invalid one: %v", res[1].Err)
	}
	if res[2].Err == nil {
		t.Error("unknown spec workload did not error")
	}

	if _, err := Execute(Job{Kind: Kind(99), Primary: "x", Chip: cfg, Fame: opt}); err == nil {
		t.Error("unknown kind did not error")
	}
	badOpts := opt
	badOpts.MinReps = 0
	if _, err := Execute(Single(Micro, microbench.CPUInt, prio.Supervisor, testScale, cfg, badOpts)); err == nil {
		t.Error("invalid FAME options did not error")
	}
	badChip := cfg
	badChip.ExperimentCore = 99
	if _, err := Execute(Single(Micro, microbench.CPUInt, prio.Supervisor, testScale, badChip, opt)); err == nil {
		t.Error("invalid chip config did not error")
	}
}

// TestForEach covers the generic pool: every index runs exactly once,
// concurrently, for worker counts above and below n.
func TestForEach(t *testing.T) {
	for _, workers := range []int{1, 3, 16} {
		e := New(workers)
		const n = 10
		var mu sync.Mutex
		seen := make(map[int]int)
		e.ForEach(n, func(i int) {
			mu.Lock()
			seen[i]++
			mu.Unlock()
		})
		if len(seen) != n {
			t.Errorf("workers=%d: %d distinct indices, want %d", workers, len(seen), n)
		}
		for i, c := range seen {
			if c != 1 {
				t.Errorf("workers=%d: index %d ran %d times", workers, i, c)
			}
		}
		e.ForEach(0, func(int) { t.Error("ForEach(0) must not call fn") })
	}
}

// TestSetWorkers: the pool size changes, the cache survives.
func TestSetWorkers(t *testing.T) {
	e := New(1)
	if e.Workers() != 1 {
		t.Fatalf("Workers() = %d", e.Workers())
	}
	jobs := testBatch()
	e.Run(jobs)
	sim := e.Stats().Simulated

	e.SetWorkers(8)
	if e.Workers() != 8 {
		t.Fatalf("Workers() after SetWorkers = %d", e.Workers())
	}
	e.Run(jobs)
	if got := e.Stats().Simulated; got != sim {
		t.Errorf("cache lost across SetWorkers: %d simulated, want %d", got, sim)
	}

	e.SetWorkers(0)
	if e.Workers() < 1 {
		t.Errorf("SetWorkers(0) left %d workers", e.Workers())
	}
}

// TestConcurrentEngineUse: one engine, many goroutines submitting
// overlapping batches — exercised under -race in CI.
func TestConcurrentEngineUse(t *testing.T) {
	e := New(4)
	jobs := testBatch()
	ref := e.Run(jobs)

	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			res := e.Run(jobs)
			for i := range jobs {
				if res[i].Pair != ref[i].Pair {
					t.Errorf("concurrent batch diverged at job %d", i)
					return
				}
			}
		}()
	}
	wg.Wait()
}

func TestKindString(t *testing.T) {
	if Micro.String() != "micro" || Spec.String() != "spec" {
		t.Errorf("Kind strings: %q, %q", Micro, Spec)
	}
	if s := Kind(7).String(); !strings.Contains(s, "7") {
		t.Errorf("unknown kind string %q", s)
	}
}
