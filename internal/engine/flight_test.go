package engine

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"power5prio/internal/core"
	"power5prio/internal/microbench"
	"power5prio/internal/prio"
)

// gatedBackend is a Backend whose first Run call blocks until gate is
// closed (honouring ctx like the real backends: cancellation returns
// Skipped results), so tests can hold a job in flight while a second
// batch submits it. Results are synthesized — flight behaviour does not
// depend on simulation.
type gatedBackend struct {
	gate    chan struct{} // first Run blocks on it when set
	started chan struct{} // closed when the first Run begins

	once sync.Once
	mu   sync.Mutex
	runs int // Run calls
	jobs int // jobs across all Run calls
}

func (g *gatedBackend) Name() string                  { return "gated" }
func (g *gatedBackend) Capacity() int                 { return 2 }
func (g *gatedBackend) Healthy(context.Context) error { return nil }

func (g *gatedBackend) Run(ctx context.Context, jobs []Job) ([]Result, error) {
	g.mu.Lock()
	g.runs++
	first := g.runs == 1
	g.jobs += len(jobs)
	g.mu.Unlock()
	if first {
		g.once.Do(func() {
			if g.started != nil {
				close(g.started)
			}
		})
		if g.gate != nil {
			select {
			case <-g.gate:
			case <-ctx.Done():
				out := make([]Result, len(jobs))
				for i, j := range jobs {
					out[i] = Result{Job: j, Err: ctx.Err(), Skipped: true}
				}
				return out, nil
			}
		}
	}
	out := make([]Result, len(jobs))
	for i, j := range jobs {
		out[i] = Result{Job: j}
	}
	return out, nil
}

func (g *gatedBackend) counts() (runs, jobs int) {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.runs, g.jobs
}

func flightJob(t *testing.T) Job {
	return Single(ref(t, microbench.CPUInt), prio.Supervisor, testScale, core.DefaultConfig(), testOptions())
}

// waitFor polls cond briefly; flight hand-offs are all channel-driven,
// so this only bridges goroutine scheduling, not simulation time.
func waitFor(t *testing.T, cond func() bool, msg string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", msg)
}

// TestFlightCoalescesConcurrentBatches pins the cross-batch
// singleflight: two concurrent batches submitting the same uncached job
// trigger exactly one backend execution; the second batch (and its
// in-batch duplicate) is served from the first batch's flight as cache
// hits.
func TestFlightCoalescesConcurrentBatches(t *testing.T) {
	j := flightJob(t)
	gb := &gatedBackend{gate: make(chan struct{}), started: make(chan struct{})}
	e := NewWith(0, nil, WithBackend(gb))

	var wg sync.WaitGroup
	var resA, resB []Result
	wg.Add(1)
	go func() {
		defer wg.Done()
		resA = e.Run(nil, []Job{j})
	}()
	<-gb.started

	// The job is now in flight; a second batch with the job (twice)
	// must join rather than re-submit.
	wg.Add(1)
	go func() {
		defer wg.Done()
		resB = e.Run(nil, []Job{j, j})
	}()
	waitFor(t, func() bool { return e.Stats().Coalesced == 1 }, "batch B to join the flight")
	close(gb.gate)
	wg.Wait()

	if runs, jobs := gb.counts(); runs != 1 || jobs != 1 {
		t.Fatalf("backend saw %d runs / %d jobs, want 1/1 (coalescing failed)", runs, jobs)
	}
	if resA[0].Err != nil || resA[0].Skipped || resA[0].CacheHit {
		t.Fatalf("owner result = %+v, want a plain success", resA[0])
	}
	for i, r := range resB {
		if r.Err != nil || r.Skipped || !r.CacheHit {
			t.Fatalf("joined result %d = %+v, want a cache hit", i, r)
		}
		if r.Pair != resA[0].Pair {
			t.Fatalf("joined result %d differs from the owner's", i)
		}
	}
	st := e.Stats()
	if st.Simulated != 1 || st.Coalesced != 1 || st.Hits != 2 {
		t.Fatalf("stats %+v, want 1 simulated, 1 coalesced, 2 hits", st)
	}
}

// TestFlightOwnerAbandonedWaiterClaims pins the abandonment hand-off: a
// waiter coalesced onto a flight whose owner's batch is cancelled must
// not inherit the cancellation — it claims the job and runs it itself.
func TestFlightOwnerAbandonedWaiterClaims(t *testing.T) {
	j := flightJob(t)
	gb := &gatedBackend{gate: make(chan struct{}), started: make(chan struct{})}
	e := NewWith(0, nil, WithBackend(gb))

	ctxA, cancelA := context.WithCancel(context.Background())
	defer cancelA()
	var wg sync.WaitGroup
	var resA, resB []Result
	wg.Add(1)
	go func() {
		defer wg.Done()
		resA = e.Run(ctxA, []Job{j})
	}()
	<-gb.started

	wg.Add(1)
	go func() {
		defer wg.Done()
		resB = e.Run(nil, []Job{j})
	}()
	waitFor(t, func() bool { return e.Stats().Coalesced == 1 }, "batch B to join the flight")

	// Cancel the owner: its job resolves Skipped and is not cached.
	// The waiter must claim the job and run it to completion.
	cancelA()
	wg.Wait()

	if !resA[0].Skipped || !errors.Is(resA[0].Err, context.Canceled) {
		t.Fatalf("owner result = %+v, want skipped with the context error", resA[0])
	}
	if resB[0].Err != nil || resB[0].Skipped {
		t.Fatalf("waiter result = %+v, want a completed run after claiming", resB[0])
	}
	if runs, _ := gb.counts(); runs != 2 {
		t.Fatalf("backend saw %d runs, want 2 (owner's cancelled run + waiter's claim)", runs)
	}
	st := e.Stats()
	if st.Simulated != 1 || st.Skipped != 1 || st.Coalesced != 1 {
		t.Fatalf("stats %+v, want 1 simulated, 1 skipped, 1 coalesced", st)
	}

	// The claimed result was cached: a fresh submission is a pure hit.
	res := e.Run(nil, []Job{j})
	if !res[0].CacheHit || res[0].Err != nil {
		t.Fatalf("post-claim resubmission = %+v, want a cache hit", res[0])
	}
}

// TestFlightSequentialBatchesDoNotCoalesce guards the bookkeeping: once
// a batch completes, its flights are unregistered, so a later identical
// submission is served by the cache (a hit), not the flight table.
func TestFlightSequentialBatchesDoNotCoalesce(t *testing.T) {
	j := flightJob(t)
	gb := &gatedBackend{}
	e := NewWith(0, nil, WithBackend(gb))

	if res := e.Run(nil, []Job{j}); res[0].Err != nil {
		t.Fatalf("batch 1: %+v", res[0])
	}
	e.mu.Lock()
	pending := len(e.inflight)
	e.mu.Unlock()
	if pending != 0 {
		t.Fatalf("%d flights still registered after the batch completed", pending)
	}
	if res := e.Run(nil, []Job{j}); !res[0].CacheHit {
		t.Fatalf("batch 2 = %+v, want a cache hit", res[0])
	}
	if st := e.Stats(); st.Coalesced != 0 {
		t.Fatalf("sequential batches coalesced: stats %+v", st)
	}
}
