package engine

import (
	"fmt"
	"reflect"
	"testing"

	"power5prio/internal/cachestore"
	"power5prio/internal/core"
	"power5prio/internal/fame"
	"power5prio/internal/isa"
	"power5prio/internal/microbench"
	"power5prio/internal/prio"
	"power5prio/internal/workload"
)

// leafPaths recursively collects the path of every mutable leaf field
// reachable from v (bools, integers, floats, strings — descending
// through structs and arrays). Any other kind fails the test: a new Job
// field of an unhashable kind must be given an explicit digest, not
// silently skipped.
func leafPaths(t *testing.T, v reflect.Value, path string, out *[]string) {
	t.Helper()
	switch v.Kind() {
	case reflect.Bool,
		reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64,
		reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64,
		reflect.Float32, reflect.Float64,
		reflect.String:
		*out = append(*out, path)
	case reflect.Array:
		for i := 0; i < v.Len(); i++ {
			leafPaths(t, v.Index(i), fmt.Sprintf("%s[%d]", path, i), out)
		}
	case reflect.Struct:
		for i := 0; i < v.NumField(); i++ {
			f := v.Type().Field(i)
			if !f.IsExported() {
				t.Fatalf("unexported field %s.%s cannot participate in the disk key; export it or digest it explicitly", path, f.Name)
			}
			leafPaths(t, v.Field(i), path+"."+f.Name, out)
		}
	default:
		t.Fatalf("field %s has kind %s, which the disk key cannot hash", path, v.Kind())
	}
}

// fieldAt walks a dotted/indexed path to the addressable leaf value.
func fieldAt(t *testing.T, root reflect.Value, path string) reflect.Value {
	t.Helper()
	v := root
	rest := path
	for rest != "" {
		var seg string
		if i := indexAny(rest, ".["); i < 0 {
			seg, rest = rest, ""
		} else if rest[i] == '.' {
			seg, rest = rest[:i], rest[i+1:]
		} else { // '['
			if seg = rest[:i]; seg == "" {
				var idx int
				fmt.Sscanf(rest, "[%d]", &idx)
				v = v.Index(idx)
				if j := indexAny(rest, "]"); j >= 0 {
					rest = rest[j+1:]
					if len(rest) > 0 && rest[0] == '.' {
						rest = rest[1:]
					}
				}
				continue
			}
			rest = rest[i:]
		}
		if seg != "" {
			v = v.FieldByName(seg)
			if !v.IsValid() {
				t.Fatalf("path %s: no field %q", path, seg)
			}
		}
	}
	return v
}

func indexAny(s, chars string) int {
	for i := 0; i < len(s); i++ {
		for j := 0; j < len(chars); j++ {
			if s[i] == chars[j] {
				return i
			}
		}
	}
	return -1
}

// mutate changes a leaf to a deterministic different value.
func mutate(t *testing.T, v reflect.Value) {
	t.Helper()
	switch v.Kind() {
	case reflect.Bool:
		v.SetBool(!v.Bool())
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		v.SetInt(v.Int() + 1)
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		v.SetUint(v.Uint() + 1)
	case reflect.Float32, reflect.Float64:
		if v.Float() == 0 {
			v.SetFloat(1.5)
		} else {
			v.SetFloat(v.Float() * 1.5)
		}
	case reflect.String:
		v.SetString(v.String() + "~")
	default:
		t.Fatalf("cannot mutate kind %s", v.Kind())
	}
}

// baseJob is a fully-populated job: every field non-degenerate so each
// perturbation is meaningful.
func baseJob(t *testing.T) Job {
	return Pair(
		ref(t, microbench.CPUInt), ref(t, microbench.LdIntL1),
		prio.High, prio.Low,
		prio.Supervisor, 0.5,
		core.DefaultConfig(), fame.DefaultOptions(),
	)
}

// TestJobKeyPerturbation is the exhaustive field-perturbation property
// of the acceptance criteria: changing ANY leaf field of a Job — through
// the workload Refs, the priority/privilege settings, the iteration
// scale, every core.Config sub-field (mem, pipeline, balance) and every
// fame.Options field — must change the persistent cache key, and no two
// perturbations may collide.
func TestJobKeyPerturbation(t *testing.T) {
	base := baseJob(t)
	baseKey := JobKey(base)

	var paths []string
	leafPaths(t, reflect.ValueOf(base), "Job", &paths)
	// The walk must actually reach the deep config: a refactor that
	// hides fields behind an unhashable kind would shrink this list.
	if len(paths) < 50 {
		t.Fatalf("only %d leaf fields found, expected the full Job/Config/Options surface", len(paths))
	}

	seen := map[cachestore.Key]string{baseKey: "base"}
	for _, path := range paths {
		j := base // value copy
		leaf := fieldAt(t, reflect.ValueOf(&j).Elem(), trimRoot(path))
		if !leaf.CanSet() {
			t.Fatalf("leaf %s not settable", path)
		}
		mutate(t, leaf)
		if j == base {
			t.Fatalf("mutating %s did not change the Job value", path)
		}
		k := JobKey(j)
		if k == baseKey {
			t.Errorf("perturbing %s did not change the disk key", path)
		}
		if prev, dup := seen[k]; dup {
			t.Errorf("perturbing %s collides with %s", path, prev)
		}
		seen[k] = path
	}
}

func trimRoot(path string) string {
	const root = "Job."
	if len(path) > len(root) && path[:len(root)] == root {
		return path[len(root):]
	}
	return path
}

// TestJobKeyConstructionPaths: jobs that are semantically equal must
// hash identically no matter how they were built, and jobs that differ
// semantically must not.
func TestJobKeyConstructionPaths(t *testing.T) {
	cfg := core.DefaultConfig()
	opts := fame.DefaultOptions()
	refA := ref(t, microbench.CPUInt)

	// Single vs Pair-with-empty-secondary: the same placement.
	single := Single(refA, prio.Supervisor, 1.0, cfg, opts)
	pairOff := Pair(refA, workload.Ref{}, prio.Medium, prio.Medium, prio.Supervisor, 1.0, cfg, opts)
	if single != pairOff {
		t.Fatalf("Single and thread-off Pair built different Jobs:\n%+v\n%+v", single, pairOff)
	}
	if JobKey(single) != JobKey(pairOff) {
		t.Error("identical jobs from different constructors hash differently")
	}

	// Registry resolution is stable across registries and processes for
	// built-ins: two independent registries yield the same Ref and key.
	r1, err := workload.NewRegistry().Resolve(microbench.CPUInt)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := workload.NewRegistry().Resolve(microbench.CPUInt)
	if err != nil {
		t.Fatal(err)
	}
	if r1 != r2 {
		t.Fatalf("registry resolution unstable: %+v vs %+v", r1, r2)
	}
	if JobKey(Single(r1, prio.Supervisor, 1.0, cfg, opts)) != JobKey(Single(r2, prio.Supervisor, 1.0, cfg, opts)) {
		t.Error("same workload resolved twice hashes differently")
	}

	// A real secondary is a different measurement than thread-off.
	withB := Pair(refA, ref(t, microbench.LdIntL1), prio.Medium, prio.Medium, prio.Supervisor, 1.0, cfg, opts)
	if JobKey(withB) == JobKey(single) {
		t.Error("pair job collides with single job")
	}

	// Swapping primary and secondary is a different placement.
	swapped := Pair(ref(t, microbench.LdIntL1), refA, prio.Medium, prio.Medium, prio.Supervisor, 1.0, cfg, opts)
	if JobKey(withB) == JobKey(swapped) {
		t.Error("swapped pair collides")
	}
}

// TestJobKeyCustomKernels: pattern-free custom kernels are fingerprinted
// by content, so the same kernel registered in two registries (two
// processes) hashes to the same disk key, while different content — or a
// pattern-bearing kernel, which has no stable content hash — does not.
func TestJobKeyCustomKernels(t *testing.T) {
	build := func(stores int) *isa.Kernel {
		b := isa.NewBuilder("custom_k")
		it, one := b.Reg("it"), b.Reg("one")
		for i := 0; i < stores; i++ {
			b.Op2(isa.OpIntAdd, it, it, one)
		}
		b.Branch(isa.BranchLoop, it)
		return b.MustBuild(16)
	}
	cfg := core.DefaultConfig()
	opts := testOptions()

	reg1, reg2 := workload.NewRegistry(), workload.NewRegistry()
	ref1, err := reg1.Register(build(3))
	if err != nil {
		t.Fatal(err)
	}
	ref2, err := reg2.Register(build(3))
	if err != nil {
		t.Fatal(err)
	}
	k1 := JobKey(Single(ref1, prio.Supervisor, 1.0, cfg, opts))
	k2 := JobKey(Single(ref2, prio.Supervisor, 1.0, cfg, opts))
	if k1 != k2 {
		t.Error("identical custom kernel content hashes differently across registries")
	}

	reg3 := workload.NewRegistry()
	ref3, err := reg3.Register(build(4))
	if err != nil {
		t.Fatal(err)
	}
	if JobKey(Single(ref3, prio.Supervisor, 1.0, cfg, opts)) == k1 {
		t.Error("different custom kernel content collides")
	}

	// Pattern-bearing kernels are fingerprinted by registration identity
	// (nonce), never by content — two registrations must not alias.
	pattern := func() *isa.Kernel {
		b := isa.NewBuilder("custom_pat")
		it, one := b.Reg("it"), b.Reg("one")
		b.Op2(isa.OpIntAdd, it, it, one)
		b.Pattern(func(i uint64) bool { return i%2 == 0 })
		b.Branch(isa.BranchPattern, it)
		b.Branch(isa.BranchLoop, it)
		return b.MustBuild(16)
	}
	p1, err := workload.NewRegistry().Register(pattern())
	if err != nil {
		t.Fatal(err)
	}
	p2, err := workload.NewRegistry().Register(pattern())
	if err != nil {
		t.Fatal(err)
	}
	if JobKey(Single(p1, prio.Supervisor, 1.0, cfg, opts)) == JobKey(Single(p2, prio.Supervisor, 1.0, cfg, opts)) {
		t.Error("pattern-bearing kernels alias in the disk key")
	}
}
