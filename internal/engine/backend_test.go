package engine

import (
	"context"
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"power5prio/internal/core"
	"power5prio/internal/microbench"
	"power5prio/internal/prio"
)

// plainBackend is a minimal Backend without the progress extension: it
// executes locally but only reports through the returned slice, plus
// fake remote counters — covering the engine's non-streaming path and
// the RemoteStatser fold.
type plainBackend struct {
	fail error // when set, Run fails wholesale
	rs   RemoteStats
}

func (p *plainBackend) Name() string                      { return "plain" }
func (p *plainBackend) Capacity() int                     { return 2 }
func (p *plainBackend) Healthy(ctx context.Context) error { return nil }
func (p *plainBackend) RemoteStats() RemoteStats          { return p.rs }
func (p *plainBackend) Run(ctx context.Context, jobs []Job) ([]Result, error) {
	if p.fail != nil {
		return nil, p.fail
	}
	out := make([]Result, len(jobs))
	for i, j := range jobs {
		pair, err := Execute(nil, j)
		out[i] = Result{Job: j, Pair: pair, Err: err}
		p.rs.Jobs++
	}
	return out, nil
}

// TestWithBackendPlain: an engine over a Backend that lacks RunProgress
// still resolves every job, fans results to duplicates, fires progress
// exactly once per index, and folds the backend's remote counters into
// Stats.
func TestWithBackendPlain(t *testing.T) {
	jobs := testBatch(t) // 7 jobs, 5 unique
	pb := &plainBackend{}
	e := NewWith(0, nil, WithBackend(pb))
	if e.Backend() != Backend(pb) {
		t.Fatal("Backend() does not return the installed backend")
	}
	if e.Workers() != 2 {
		t.Errorf("Workers() = %d, want the backend capacity 2", e.Workers())
	}

	want := New(1).Run(nil, jobs)
	seen := make(map[int]int)
	got := e.RunFunc(nil, jobs, func(i int, r Result) { seen[i]++ })
	for i := range jobs {
		if got[i].Err != nil || got[i].Pair != want[i].Pair {
			t.Errorf("job %d diverged through the plain backend", i)
		}
		if seen[i] != 1 {
			t.Errorf("progress fired %d times for job %d", seen[i], i)
		}
	}
	st := e.Stats()
	if st.Simulated != 5 || st.Hits != 2 {
		t.Errorf("stats %+v, want 5 simulated / 2 hits", st)
	}
	if st.Remote.Jobs != 5 {
		t.Errorf("Remote.Jobs = %d, want 5 (folded from the backend)", st.Remote.Jobs)
	}
	if !strings.Contains(st.String(), "remote: 5 jobs") {
		t.Errorf("Stats.String() = %q, want remote counters", st.String())
	}

	// SetWorkers is a no-op on a backend without SetCapacity — and must
	// not panic.
	e.SetWorkers(8)
	if e.Workers() != 2 {
		t.Errorf("SetWorkers changed a fixed-capacity backend to %d", e.Workers())
	}
}

// TestBackendFailure: a wholesale backend failure marks every
// unresolved job skipped with the wrapped error and caches nothing, so
// the same engine retries cleanly once the backend recovers.
func TestBackendFailure(t *testing.T) {
	pb := &plainBackend{fail: errors.New("fleet unplugged")}
	e := NewWith(0, nil, WithBackend(pb))
	j := Single(ref(t, microbench.CPUInt), prio.Supervisor, testScale, core.DefaultConfig(), testOptions())
	res := e.Run(nil, []Job{j, j})
	for i, r := range res {
		if r.Err == nil || !strings.Contains(r.Err.Error(), "fleet unplugged") {
			t.Fatalf("job %d: err %v, want the backend failure", i, r.Err)
		}
	}
	if st := e.Stats(); st.Simulated != 0 || st.Skipped != 2 {
		t.Errorf("stats %+v, want nothing simulated, both skipped", st)
	}

	pb.fail = nil
	res = e.Run(nil, []Job{j})
	if res[0].Err != nil {
		t.Fatalf("retry after backend recovery: %v", res[0].Err)
	}
	if res[0].CacheHit {
		t.Error("failed attempt was cached")
	}
}

// TestLocalBackendDirect: the extracted pool honours the Backend
// contract directly — results in order, Healthy, capacity setter.
func TestLocalBackendDirect(t *testing.T) {
	b := NewLocalBackend(3, nil)
	if b.Name() != "local" || b.Capacity() != 3 {
		t.Fatalf("Name/Capacity = %q/%d", b.Name(), b.Capacity())
	}
	if err := b.Healthy(nil); err != nil {
		t.Fatalf("Healthy: %v", err)
	}
	b.SetCapacity(0)
	if b.Capacity() < 1 {
		t.Errorf("SetCapacity(0) left capacity %d", b.Capacity())
	}

	jobs := testBatch(t)[:3]
	res, err := b.Run(nil, jobs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range jobs {
		pair, xerr := Execute(nil, jobs[i])
		if xerr != nil || res[i].Err != nil || res[i].Pair != pair {
			t.Errorf("job %d: pool result differs from Execute", i)
		}
	}

	// Pre-cancelled: everything is a skipped result, nothing runs.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err = b.Run(ctx, jobs)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range res {
		if !r.Skipped || !errors.Is(r.Err, context.Canceled) {
			t.Errorf("job %d: %+v, want skipped with context error", i, r)
		}
	}
}

// TestForEachBoundedLocally: ForEach work always runs in-process, so
// its concurrency follows the engine's local worker count — not the
// backend's capacity (a remote fleet's capacity says nothing about
// this machine).
func TestForEachBoundedLocally(t *testing.T) {
	pb := &plainBackend{} // capacity 2
	e := NewWith(1, nil, WithBackend(pb))
	var cur atomic.Int32
	if err := e.ForEach(nil, 6, func(int) {
		if c := cur.Add(1); c > 1 {
			t.Errorf("%d concurrent ForEach calls with 1 local worker", c)
		}
		time.Sleep(time.Millisecond)
		cur.Add(-1)
	}); err != nil {
		t.Fatal(err)
	}
}

// TestLocalBackendGlobalBound: the capacity tokens are shared across
// concurrent Run calls on one backend — the contract that keeps a
// p5worker's -workers a real limit under several clients. The bound
// itself is channel semantics; what needs pinning is that concurrent
// batches share the one token without deadlocking and stay correct.
func TestLocalBackendGlobalBound(t *testing.T) {
	b := NewLocalBackend(1, nil)
	jobs := testBatch(t)[:2]
	want, err := Execute(nil, jobs[0])
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := b.Run(nil, jobs)
			if err != nil {
				t.Error(err)
				return
			}
			if res[0].Err != nil || res[0].Pair != want {
				t.Error("concurrent bounded batch diverged")
			}
		}()
	}
	wg.Wait()
}
