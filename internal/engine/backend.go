package engine

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"power5prio/internal/workload"
)

// Backend executes batches of jobs on behalf of an Engine. The engine
// owns everything above execution — deduplication, the two cache tiers,
// stats, progress fan-out — and hands a backend only the unique jobs
// that actually need to run. The in-process worker pool (LocalBackend)
// is the reference implementation; internal/remote adds HTTP-speaking
// backends that run the same jobs on other machines. Because a job's
// result is a pure function of the Job value, every backend must return
// bit-identical results for the same job — which is what lets backends
// be swapped, sharded and retried freely.
//
// Contract: Run returns one Result per job, in submission order. Job
// failures (bad workload name, invalid config) are reported in
// Result.Err, never as Run's error; Run's own error is reserved for
// backend-level failures (e.g. every remote worker unreachable). Jobs
// that were never attempted — the batch context was cancelled, or the
// backend failed first — must carry Skipped set so the engine does not
// cache their errors. A backend must be safe for concurrent Run calls.
type Backend interface {
	// Name identifies the backend in diagnostics.
	Name() string
	// Capacity is the number of jobs the backend can usefully execute
	// concurrently (a scheduling hint, not a hard bound).
	Capacity() int
	// Healthy probes availability: nil when the backend can accept
	// work. Local backends are always healthy; remote ones ping their
	// workers.
	Healthy(ctx context.Context) error
	// Run executes jobs and returns their results in order.
	Run(ctx context.Context, jobs []Job) ([]Result, error)
}

// ProgressBackend is optionally implemented by backends that can report
// per-job completion while a batch is still running. done(i, r) must be
// called at most once per index, from any goroutine, and every call
// must have returned before Run returns; indices not reported through
// done are taken from the returned slice. The engine uses this to fire
// user progress callbacks as results land instead of at batch end.
type ProgressBackend interface {
	Backend
	RunProgress(ctx context.Context, jobs []Job, done func(i int, r Result)) ([]Result, error)
}

// CapacitySetter is optionally implemented by backends whose
// concurrency bound can be changed after construction (Engine.SetWorkers
// forwards to it).
type CapacitySetter interface {
	SetCapacity(n int)
}

// RemoteStats counts work done through remote backends; see Stats.
type RemoteStats struct {
	// Jobs executed by remote workers (a worker serving a job from its
	// own warm cache still counts: the job went over the wire).
	Jobs int
	// Retries are jobs re-dispatched to another worker after the one
	// holding them failed.
	Retries int
	// WorkerErrors are worker-level failures observed (unreachable,
	// bad protocol, non-2xx responses) — each typically excludes the
	// worker for the rest of its batch.
	WorkerErrors int
}

// RemoteStatser is implemented by backends that track RemoteStats; the
// engine folds the counters into its Stats snapshot.
type RemoteStatser interface {
	RemoteStats() RemoteStats
}

// LocalBackend is the in-process execution backend: a bounded worker
// pool running jobs on fresh simulated chips via Execute. It is the
// engine's default backend and the reference semantics every other
// backend must match bit-for-bit.
//
// The capacity bound is global across concurrent Run calls: however
// many batches are in flight (concurrent engine batches in one
// process, or concurrent requests on a p5worker), at most Capacity
// simulations execute at once.
type LocalBackend struct {
	mu      sync.Mutex
	workers int
	sem     chan struct{} // capacity tokens, shared by every Run call
	reg     *workload.Registry
}

// NewLocalBackend returns a local pool bounded to workers goroutines
// (<= 0 selects GOMAXPROCS), resolving job refs in reg (nil = a fresh
// built-ins-only registry).
func NewLocalBackend(workers int, reg *workload.Registry) *LocalBackend {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if reg == nil {
		reg = workload.NewRegistry()
	}
	return &LocalBackend{workers: workers, sem: make(chan struct{}, workers), reg: reg}
}

// Name identifies the backend.
func (b *LocalBackend) Name() string { return "local" }

// Registry returns the registry the backend resolves job refs in.
func (b *LocalBackend) Registry() *workload.Registry { return b.reg }

// Capacity returns the worker-pool bound.
func (b *LocalBackend) Capacity() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.workers
}

// SetCapacity changes the pool bound for subsequent batches (n <= 0
// selects GOMAXPROCS); batches already running keep their old bound.
func (b *LocalBackend) SetCapacity(n int) {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	b.mu.Lock()
	b.workers = n
	b.sem = make(chan struct{}, n)
	b.mu.Unlock()
}

// Healthy always succeeds: the local pool needs nothing external.
func (b *LocalBackend) Healthy(context.Context) error { return nil }

// Run executes the batch on the pool; see RunProgress.
func (b *LocalBackend) Run(ctx context.Context, jobs []Job) ([]Result, error) {
	return b.RunProgress(ctx, jobs, nil)
}

// RunProgress executes each job exactly once, reporting results as
// they land. Jobs start in submission order, each gated on a capacity
// token shared across every Run call on this backend. Cancelling ctx
// stops dispatch: in-flight jobs run to completion, jobs that never
// started return Skipped results carrying the context's error (with
// one worker, the completed jobs form exactly the leading prefix of
// the batch). The returned error is always nil: the local pool has no
// backend-level failure mode.
func (b *LocalBackend) RunProgress(ctx context.Context, jobs []Job, done func(i int, r Result)) ([]Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	out := make([]Result, len(jobs))
	b.mu.Lock()
	sem := b.sem
	b.mu.Unlock()
	var doneMu sync.Mutex
	finish := func(k int, r Result) {
		out[k] = r
		if done != nil {
			doneMu.Lock()
			done(k, r)
			doneMu.Unlock()
		}
	}

	completed := make([]bool, len(jobs))
	var wg sync.WaitGroup
dispatch:
	for k := range jobs {
		if ctx.Err() != nil {
			break
		}
		select {
		case sem <- struct{}{}:
		case <-ctx.Done():
			break dispatch
		}
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			defer func() { <-sem }()
			pair, err := Execute(b.reg, jobs[k])
			completed[k] = true
			finish(k, Result{Job: jobs[k], Pair: pair, Err: err})
		}(k)
	}
	wg.Wait()

	if err := ctx.Err(); err != nil {
		for k := range jobs {
			if !completed[k] {
				finish(k, Result{Job: jobs[k], Err: err, Skipped: true})
			}
		}
	}
	return out, nil
}

// backendError wraps a backend-level failure for the jobs it stranded.
func backendError(b Backend, err error) error {
	return fmt.Errorf("engine: backend %s: %w", b.Name(), err)
}
