package engine

import (
	"context"
	"fmt"
)

// Cross-batch singleflight.
//
// The in-memory and disk cache tiers dedup jobs that have *completed*;
// they do nothing for jobs currently in the air. A long-running service
// dispatches many concurrent batches through one engine, and N clients
// asking for the same uncached job would start N identical simulations
// — the expensive kind of waste the engine exists to prevent. The
// flight table closes that window: the first batch to see an uncached
// job owns its flight and runs it, and every concurrent batch
// submitting the same job joins the flight and waits instead.
//
// The owner completes a flight (closes done, unregisters it) inside
// the same e.mu critical section that publishes the result to the
// memory cache, so a woken waiter re-checking the cache under the lock
// always observes the published result — or its absence, which means
// the owner abandoned the job (cancelled batch, failed backend;
// Skipped results are never cached). An abandoned job must not fail
// the waiters coalesced onto it: each waiter either joins the
// replacement flight some other batch has registered by then, or
// claims the job and runs it itself.

// flight is one in-progress computation of a job, shared across
// concurrent Run batches.
type flight struct {
	done chan struct{}
}

// joinWait records one batch index waiting on another batch's flight.
type joinWait struct {
	idx int
	fl  *flight
}

// maxJoinRetries bounds how many successive abandoned flights a waiter
// re-joins before claiming the job itself, so a pathological chain of
// cancelled owners cannot defer a live waiter forever.
const maxJoinRetries = 4

// completeLocked closes fl (waking its waiters) and unregisters it if
// it is still j's registered flight. The caller must hold e.mu and must
// have published j's outcome — or decided not to — in the same
// critical section.
func (e *Engine) completeLocked(j Job, fl *flight) {
	close(fl.done)
	if e.inflight[j] == fl {
		delete(e.inflight, j)
	}
}

// awaitFlight waits for another batch's in-flight computation of j,
// then serves the cached outcome through finish (which delivers to the
// waiter's batch index and its in-batch followers). If the owner
// abandoned the job, the waiter re-joins the replacement flight when
// one exists, or claims the job and runs it on the backend itself.
func (e *Engine) awaitFlight(ctx context.Context, j Job, fl *flight, nFollowers int, finish func(Result)) {
	for attempt := 0; ; attempt++ {
		select {
		case <-fl.done:
		case <-ctx.Done():
			e.mu.Lock()
			e.stats.Skipped += 1 + nFollowers
			e.mu.Unlock()
			finish(Result{Job: j, Err: ctx.Err(), Skipped: true})
			return
		}
		e.mu.Lock()
		if oc, ok := e.cache[j]; ok {
			e.stats.Hits += 1 + nFollowers
			e.mu.Unlock()
			finish(Result{Job: j, Pair: oc.pair, Err: oc.err, CacheHit: true, Coalesced: true})
			return
		}
		// The owner abandoned the job without caching it.
		if nfl, ok := e.inflight[j]; ok && nfl != fl && attempt < maxJoinRetries {
			fl = nfl
			e.mu.Unlock()
			continue
		}
		mine := &flight{done: make(chan struct{})}
		e.inflight[j] = mine
		e.mu.Unlock()
		e.runClaimed(ctx, j, mine, nFollowers, finish)
		return
	}
}

// runClaimed executes a claimed job and publishes its outcome exactly
// as resolve does for a batch candidate: probe the disk tier, run on
// the backend, cache non-skipped results — completing fl in the same
// locked section — and deliver through finish.
func (e *Engine) runClaimed(ctx context.Context, j Job, fl *flight, nFollowers int, finish func(Result)) {
	if e.store != nil {
		pair, ok := e.diskGet(j)
		e.mu.Lock()
		if ok {
			e.cache[j] = outcome{pair: pair}
			e.stats.Hits += 1 + nFollowers
			e.stats.DiskHits++
			e.completeLocked(j, fl)
			e.mu.Unlock()
			finish(Result{Job: j, Pair: pair, CacheHit: true})
			return
		}
		e.stats.DiskMisses++
		e.mu.Unlock()
	}

	res, err := e.backend.Run(ctx, []Job{j})
	var r Result
	if len(res) >= 1 {
		r = res[0]
	} else {
		if err == nil {
			err = fmt.Errorf("returned %d results for 1 job", len(res))
		}
		r = Result{Job: j, Err: backendError(e.backend, err), Skipped: true}
	}

	if r.Skipped {
		e.mu.Lock()
		e.stats.Skipped += 1 + nFollowers
		e.completeLocked(j, fl)
		e.mu.Unlock()
		finish(Result{Job: j, Err: r.Err, Skipped: true})
		return
	}
	if r.Estimated {
		// The backend answered from its own tier 0: deliver without
		// caching, exactly as resolve does (estimates never alias exact
		// results under JobKey).
		e.mu.Lock()
		e.stats.EstimatedHits += 1 + nFollowers
		e.completeLocked(j, fl)
		e.mu.Unlock()
		finish(Result{Job: j, Pair: r.Pair, Estimated: true, ErrorBar: r.ErrorBar})
		return
	}
	e.mu.Lock()
	e.cache[j] = outcome{pair: r.Pair, err: r.Err}
	e.stats.Simulated++
	e.stats.Hits += nFollowers
	e.completeLocked(j, fl)
	e.mu.Unlock()
	if e.store != nil && r.Err == nil && e.diskPut(j, r.Pair) {
		e.mu.Lock()
		e.stats.DiskWrites++
		e.mu.Unlock()
	}
	finish(Result{Job: j, Pair: r.Pair, Err: r.Err})
}
