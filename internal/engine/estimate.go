package engine

import "power5prio/internal/fame"

// Tier 0: analytical estimation.
//
// The cache tiers answer questions the engine has seen before; tier 0
// answers questions it has *never* seen, in microseconds, by evaluating
// a calibrated analytical model instead of simulating. An Estimator is
// the pluggable seam (internal/analytic provides the POWER5 decode-share
// model): it either returns a predicted PairResult with a self-reported
// error bar, or declines, and the caller's EstimateMode decides whether
// the prediction is good enough to serve.
//
// The contract that keeps tier 0 sound:
//
//   - Estimated results are explicitly labelled (Result.Estimated, with
//     Result.ErrorBar carrying the model's uncertainty) so no caller can
//     mistake a prediction for a measurement.
//   - Estimated results NEVER enter a cache tier — not the memory map,
//     not the persistent store under JobKey. An estimate aliasing an
//     exact result would silently poison every future exact answer for
//     that job (the same invariant class as the fast-forward event
//     wheel: approximations must not be observable on the exact path).
//   - With estimation off, or with a tolerance of zero, the engine is
//     bit-identical to an engine with no estimator attached: the
//     estimator is not even consulted.

// EstimateMode says whether — and how aggressively — a caller accepts
// tier-0 analytical answers in place of simulation. The zero value is
// "off": every job takes the exact path.
type EstimateMode struct {
	// Enabled turns tier 0 on. When false the other fields are ignored.
	Enabled bool
	// Always serves every estimate the model offers regardless of its
	// error bar. For exploration sweeps where speed beats accuracy.
	Always bool
	// Tolerance is the largest model error bar (absolute IPC) the caller
	// accepts; estimates with a larger bar — or jobs the model declines —
	// escalate to the exact path. Zero tolerance escalates everything,
	// so τ=0 is exactly "off" plus an EstimatedEscalated count.
	Tolerance float64
}

// EstimateOff returns the zero mode: every job simulates.
func EstimateOff() EstimateMode { return EstimateMode{} }

// EstimateTolerance accepts estimates whose error bar is at most tol
// (absolute IPC).
func EstimateTolerance(tol float64) EstimateMode {
	return EstimateMode{Enabled: true, Tolerance: tol}
}

// EstimateAlways accepts every estimate the model offers.
func EstimateAlways() EstimateMode { return EstimateMode{Enabled: true, Always: true} }

// serves reports whether an estimate with the given error bar is
// acceptable under the mode.
func (m EstimateMode) serves(errorBar float64) bool {
	if !m.Enabled {
		return false
	}
	return m.Always || (m.Tolerance > 0 && errorBar <= m.Tolerance)
}

// canServe reports whether the mode could accept any estimate at all —
// when it cannot (off, or τ=0), the estimator is not consulted, which
// is what makes τ=0 trivially bit-identical to seed behaviour.
func (m EstimateMode) canServe() bool {
	return m.Enabled && (m.Always || m.Tolerance > 0)
}

// Estimate is one tier-0 answer: a predicted measurement plus the
// model's self-reported uncertainty.
type Estimate struct {
	// Pair is the predicted measurement. Only the IPC-shaped fields are
	// modelled (per-thread IPC, AvgRepCycles, TotalIPC); cycle and
	// repetition counters that only a simulation can produce are zero.
	Pair fame.PairResult
	// ErrorBar is the model's expected worst-case absolute IPC error for
	// this job's workload-family pair, from calibration residuals. It is
	// always positive: a model cannot promise exactness.
	ErrorBar float64
}

// Estimator is the tier-0 seam. EstimateJob returns a prediction for
// the job, or ok=false to decline (unknown workload, single-thread job,
// a priority pattern outside the model's domain) — declined jobs
// escalate to the exact path. Implementations must be deterministic
// (equal jobs yield equal estimates) and safe for concurrent use; they
// may calibrate lazily on first sight of a workload, so a call may cost
// cheap single-thread simulations before the first answer.
type Estimator interface {
	EstimateJob(j Job) (Estimate, bool)
}

// SetEstimator attaches (or with nil, detaches) the engine's tier-0
// estimator. The estimator is consulted only for jobs whose effective
// EstimateMode can serve — with the default mode off, attaching an
// estimator changes nothing until a caller opts in per batch.
func (e *Engine) SetEstimator(est Estimator) {
	e.mu.Lock()
	e.estimator = est
	e.mu.Unlock()
}

// SetEstimateMode sets the engine's default mode, used for jobs whose
// batch does not carry explicit per-job modes (Run, RunFunc, and
// RunEstimate with nil modes). The constructor default is off.
func (e *Engine) SetEstimateMode(m EstimateMode) {
	e.mu.Lock()
	e.estMode = m
	e.mu.Unlock()
}

// EstimateMode returns the engine's current default mode — what a job
// submitted without an explicit per-job mode gets.
func (e *Engine) EstimateMode() EstimateMode {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.estMode
}
