package experiments

import (
	"context"
	"fmt"

	"power5prio/internal/microbench"
	"power5prio/internal/report"
)

// FigCurves is the shared shape of Figures 2, 3 and 4: one sub-figure per
// primary benchmark, one series per secondary benchmark, one point per
// priority difference. Each figure's matrix is one engine batch; when the
// figures run from the same harness, the diff=0 baseline and the
// single-thread runs they share are simulated once and served from the
// engine's cache afterwards.
type FigCurves struct {
	Title  string
	Names  []string
	Diffs  []int
	Matrix *MatrixResult
	// rel selects the plotted quantity from the matrix.
	rel func(m *MatrixResult, p, s string, diff int) float64
}

// Fig2 regenerates Figure 2: primary-thread performance improvement as its
// priority increases (differences +1..+5), relative to (4,4). A cancelled
// sweep returns the partial curves with the context's error.
func Fig2(ctx context.Context, h Harness) (FigCurves, error) {
	names := microbench.Presented()
	diffs := []int{0, 1, 2, 3, 4, 5}
	m, err := RunMatrix(ctx, h, names, names, diffs)
	return FigCurves{
		Title: "Figure 2: PThread speedup vs positive priority difference",
		Names: names, Diffs: []int{1, 2, 3, 4, 5}, Matrix: m,
		rel: (*MatrixResult).RelPrimary,
	}, err
}

// Fig3 regenerates Figure 3: primary-thread performance degradation with
// negative priority differences (-1..-5), relative to (4,4). Values are
// slowdown factors (baseline time / time at diff >= 1).
func Fig3(ctx context.Context, h Harness) (FigCurves, error) {
	names := microbench.Presented()
	diffs := []int{0, -1, -2, -3, -4, -5}
	m, err := RunMatrix(ctx, h, names, names, diffs)
	return FigCurves{
		Title: "Figure 3: PThread slowdown vs negative priority difference",
		Names: names, Diffs: []int{-1, -2, -3, -4, -5}, Matrix: m,
		rel: func(m *MatrixResult, p, s string, diff int) float64 {
			r := m.RelPrimary(p, s, diff)
			if r == 0 {
				return 0
			}
			return 1 / r // the paper plots degradation factors
		},
	}, err
}

// Fig4 regenerates Figure 4: total IPC relative to (4,4) across priority
// differences +4 down to -4.
func Fig4(ctx context.Context, h Harness) (FigCurves, error) {
	names := microbench.Presented()
	diffs := []int{4, 3, 2, 1, 0, -1, -2, -3, -4}
	m, err := RunMatrix(ctx, h, names, names, diffs)
	return FigCurves{
		Title: "Figure 4: total IPC relative to (4,4)",
		Names: names, Diffs: diffs, Matrix: m,
		rel: (*MatrixResult).RelTotal,
	}, err
}

// Value returns the plotted quantity for one (primary, secondary, diff).
func (f FigCurves) Value(p, s string, diff int) float64 {
	return f.rel(f.Matrix, p, s, diff)
}

// Render produces one table per sub-figure: rows are secondaries (the
// legend series), columns are priority differences. Cells a cancelled
// sweep never measured render as 0.00.
func (f FigCurves) Render() []*report.Table {
	var out []*report.Table
	for _, p := range f.Names {
		header := []string{"secondary \\ diff"}
		for _, d := range f.Diffs {
			header = append(header, fmt.Sprintf("%+d", d))
		}
		t := report.NewTable(fmt.Sprintf("%s — primary %s", f.Title, p), header...)
		for _, s := range f.Names {
			row := []string{s}
			for _, d := range f.Diffs {
				row = append(row, report.F2(f.Value(p, s, d)))
			}
			t.AddRow(row...)
		}
		out = append(out, t)
	}
	return out
}
