package experiments

import (
	"context"
	"fmt"

	"power5prio/internal/fame"
	"power5prio/internal/microbench"
	"power5prio/internal/prio"
	"power5prio/internal/report"
)

// Fig6Cell is one foreground/background co-run at a given foreground
// priority (the background always runs at priority 1).
type Fig6Cell struct {
	FG, BG float64 // per-thread IPC
}

// Fig6Result reproduces Figure 6: transparent execution with a
// background thread at priority 1.
type Fig6Result struct {
	Names    []string
	FGLevels []prio.Level // foreground priorities measured (6 down to 2)
	STIPC    map[string]float64
	// Cells[fg][bg][fgLevel]
	Cells map[string]map[string]map[prio.Level]Fig6Cell
}

// Fig6 regenerates Figure 6 (a), (b), (c) and (d) from one grid of runs:
// every presented benchmark as foreground at priorities 6..2 against every
// presented benchmark as background at priority 1. The whole grid is one
// job batch fanned out across the engine's workers; cancelling ctx keeps
// the cells measured so far.
func Fig6(ctx context.Context, h Harness) (Fig6Result, error) {
	names := microbench.Presented()
	levels := []prio.Level{prio.High, prio.MediumHigh, prio.Medium, prio.MediumLow, prio.Low}
	r := Fig6Result{
		Names:    names,
		FGLevels: levels,
		STIPC:    make(map[string]float64),
		Cells:    make(map[string]map[string]map[prio.Level]Fig6Cell),
	}
	eng := h.engine()
	var b batch
	for _, fg := range names {
		b.add(h.singleJob(eng, fg), func(res fame.PairResult) {
			r.STIPC[fg] = res.Thread[0].IPC
		})
		r.Cells[fg] = make(map[string]map[prio.Level]Fig6Cell)
		for _, bg := range names {
			cell := make(map[prio.Level]Fig6Cell)
			r.Cells[fg][bg] = cell
			for _, lv := range levels {
				b.add(h.pairJob(eng, fg, bg, lv, prio.VeryLow), func(res fame.PairResult) {
					cell[lv] = Fig6Cell{
						FG: res.Thread[0].IPC,
						BG: res.Thread[1].IPC,
					}
				})
			}
		}
	}
	err := b.runWith(ctx, h, eng)
	return r, err
}

// RelTime returns the foreground's execution time relative to
// single-thread mode (>= 1; the paper's Figures 6a-c y-axis).
func (r Fig6Result) RelTime(fg, bg string, lv prio.Level) float64 {
	cell := r.Cells[fg][bg][lv]
	if cell.FG == 0 {
		return 0
	}
	return r.STIPC[fg] / cell.FG
}

// AvgBackgroundIPC returns the mean background IPC across all foregrounds
// for a given background benchmark and foreground priority (Figure 6d).
func (r Fig6Result) AvgBackgroundIPC(bg string, lv prio.Level) float64 {
	sum, n := 0.0, 0
	for _, fg := range r.Names {
		sum += r.Cells[fg][bg][lv].BG
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// Render produces the four sub-figure tables.
func (r Fig6Result) Render() []*report.Table {
	var out []*report.Table
	// (a) and (b): foreground slowdown at priority 6 and 5.
	for _, lv := range []prio.Level{prio.High, prio.MediumHigh} {
		t := report.NewTable(
			fmt.Sprintf("Figure 6(%s): foreground time vs ST, priorities (%d,1)",
				map[prio.Level]string{prio.High: "a", prio.MediumHigh: "b"}[lv], lv),
			append([]string{"fg \\ bg"}, r.Names...)...)
		for _, fg := range r.Names {
			row := []string{fg}
			for _, bg := range r.Names {
				row = append(row, report.F2(r.RelTime(fg, bg, lv)))
			}
			t.AddRow(row...)
		}
		out = append(out, t)
	}
	// (c): worst-case background (ldint_mem) as foreground priority drops.
	t := report.NewTable("Figure 6(c): foreground time vs ST with ldint_mem background, priorities (x,1)",
		"fg \\ fg-prio", "6", "5", "4", "3", "2")
	for _, fg := range []string{microbench.LdIntL2, microbench.CPUFP, microbench.LngChainCPUInt, microbench.LdIntMem} {
		row := []string{fg}
		for _, lv := range r.FGLevels {
			row = append(row, report.F2(r.RelTime(fg, microbench.LdIntMem, lv)))
		}
		t.AddRow(row...)
	}
	out = append(out, t)
	// (d): average background IPC.
	t = report.NewTable("Figure 6(d): average IPC of the background thread",
		"bg \\ priorities", "(6,1)", "(5,1)", "(4,1)", "(3,1)", "(2,1)")
	for _, bg := range r.Names {
		row := []string{bg}
		for _, lv := range r.FGLevels {
			row = append(row, report.F(r.AvgBackgroundIPC(bg, lv)))
		}
		t.AddRow(row...)
	}
	out = append(out, t)
	return out
}
