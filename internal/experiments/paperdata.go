package experiments

import "power5prio/internal/microbench"

// Paper reference values, transcribed from Boneti et al., ISCA 2008.
// EXPERIMENTS.md compares every regenerated artifact against these.

// PaperTable3ST holds the single-thread IPCs of Table 3.
var PaperTable3ST = map[string]float64{
	microbench.LdIntL1:        2.29,
	microbench.LdIntL2:        0.27,
	microbench.LdIntMem:       0.02,
	microbench.CPUInt:         1.14,
	microbench.CPUFP:          0.41,
	microbench.LngChainCPUInt: 0.51,
}

// PaperCell is one SMT (4,4) measurement from Table 3: the primary
// thread's IPC and the pair's total IPC.
type PaperCell struct{ PT, TT float64 }

// PaperTable3 holds the full 6x6 SMT(4,4) matrix of Table 3, indexed
// [primary][secondary].
var PaperTable3 = map[string]map[string]PaperCell{
	microbench.LdIntL1: {
		microbench.LdIntL1:        {1.15, 2.31},
		microbench.LdIntL2:        {0.60, 0.87},
		microbench.LdIntMem:       {0.79, 0.81},
		microbench.CPUInt:         {0.73, 1.57},
		microbench.CPUFP:          {0.77, 1.18},
		microbench.LngChainCPUInt: {0.42, 0.91},
	},
	microbench.LdIntL2: {
		microbench.LdIntL1:        {0.27, 0.87},
		microbench.LdIntL2:        {0.11, 0.22},
		microbench.LdIntMem:       {0.17, 0.19},
		microbench.CPUInt:         {0.27, 0.87},
		microbench.CPUFP:          {0.25, 0.65},
		microbench.LngChainCPUInt: {0.27, 0.72},
	},
	microbench.LdIntMem: {
		microbench.LdIntL1:        {0.02, 0.81},
		microbench.LdIntL2:        {0.02, 0.19},
		microbench.LdIntMem:       {0.01, 0.02},
		microbench.CPUInt:         {0.02, 0.90},
		microbench.CPUFP:          {0.02, 0.39},
		microbench.LngChainCPUInt: {0.02, 0.48},
	},
	microbench.CPUInt: {
		microbench.LdIntL1:        {0.84, 1.57},
		microbench.LdIntL2:        {0.59, 0.87},
		microbench.LdIntMem:       {0.88, 0.90},
		microbench.CPUInt:         {0.61, 1.22},
		microbench.CPUFP:          {0.65, 1.06},
		microbench.LngChainCPUInt: {0.43, 0.86},
	},
	microbench.CPUFP: {
		microbench.LdIntL1:        {0.41, 1.18},
		microbench.LdIntL2:        {0.39, 0.65},
		microbench.LdIntMem:       {0.37, 0.39},
		microbench.CPUInt:         {0.40, 1.06},
		microbench.CPUFP:          {0.36, 0.72},
		microbench.LngChainCPUInt: {0.37, 0.85},
	},
	microbench.LngChainCPUInt: {
		microbench.LdIntL1:        {0.49, 0.91},
		microbench.LdIntL2:        {0.45, 0.73},
		microbench.LdIntMem:       {0.47, 0.48},
		microbench.CPUInt:         {0.43, 0.86},
		microbench.CPUFP:          {0.48, 0.85},
		microbench.LngChainCPUInt: {0.42, 0.85},
	},
}

// Paper headline numbers quoted in the abstract and Section 5.
const (
	// PaperFig5aPeakGain: h264ref+mcf throughput case study peak (+23.7%).
	PaperFig5aPeakGain = 0.237
	// PaperFig5bPeakGain: applu+equake throughput case study peak (+14%).
	PaperFig5bPeakGain = 0.14
	// PaperTable4BestGain: FFT/LU execution-time improvement at (6,4)
	// versus default priorities (9.3%).
	PaperTable4BestGain = 0.093
)

// PaperTable4 holds the FFT/LU case-study times in seconds (Table 4):
// priorities, FFT time, LU time, iteration time.
type PaperTable4Row struct {
	PrioFFT, PrioLU int // 0,0 marks the single-thread row
	FFT, LU, Iter   float64
}

// PaperTable4Rows transcribes Table 4.
var PaperTable4Rows = []PaperTable4Row{
	{0, 0, 1.86, 0.26, 2.12}, // single-thread mode (sequential)
	{4, 4, 2.05, 0.42, 2.05},
	{5, 4, 2.02, 0.48, 2.02},
	{6, 4, 1.91, 0.64, 1.91},
	{6, 3, 1.87, 2.33, 2.33},
}
