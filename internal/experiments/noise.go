package experiments

import (
	"power5prio/internal/core"
	"power5prio/internal/fame"
	"power5prio/internal/isa"
	"power5prio/internal/microbench"
	"power5prio/internal/prio"
	"power5prio/internal/report"
)

// NoiseResult quantifies the paper's methodology requirement (Section
// 4.1): measurements run on the second core with the first kept free of
// other work, because the cores share L2/L3 and a noisy sibling core
// distorts cache-sensitive measurements.
type NoiseResult struct {
	Benchmark  string
	CleanIPC   float64 // experiment core alone on the chip
	NoisyIPC   float64 // L2-thrashing noise running on the other core
	Distortion float64 // relative IPC change caused by the noise
}

// noiseKernel builds an aggressive L2 churner: eight independent strided
// loads per iteration over an L2-scale footprint, pre-warmed so it runs at
// L2 speed from the start and steadily evicts the victim's lines through
// the shared cache.
func noiseKernel() *isa.Kernel {
	b := isa.NewBuilder("noise_l2churn")
	iter := b.Reg("iter")
	one := b.Reg("one")
	s := b.Stream(isa.StreamSpec{
		Kind: isa.StreamStride, Footprint: 1536 << 10,
		Stride: isa.CacheLineSize, Seed: 97, Prewarm: true,
	})
	for i := 0; i < 8; i++ {
		v := b.Reg("v")
		b.Load(v, s, isa.Reg(-1))
	}
	b.Op2(isa.OpIntAdd, iter, iter, one)
	b.Branch(isa.BranchLoop, iter)
	return b.MustBuild(512)
}

// kernel builds a micro-benchmark at the harness scale. Only the noise
// methodology check builds kernels directly: it places workloads on the
// non-experiment core, which the batch engine's Job abstraction
// deliberately does not model.
func (h Harness) kernel(name string) *isa.Kernel {
	k, err := microbench.BuildWith(name, microbench.Params{IterScale: h.IterScale})
	if err != nil {
		panic(err)
	}
	return k
}

// MethodologyNoise measures an L2-resident benchmark on the experiment
// core, with and without cache-hungry noise processes on the other core.
func MethodologyNoise(h Harness) NoiseResult {
	const bench = microbench.LdIntL2
	run := func(noisy bool) float64 {
		ch := core.NewChip(h.Chip)
		ch.PlacePair(h.kernel(bench), nil, prio.Medium, prio.Medium, h.Privilege)
		if noisy {
			// Two copies of the churner on the other core (placed after
			// the victim so their pre-warm contends for the shared L2,
			// exactly as late-arriving noise would).
			noiseCore := 1 - h.Chip.ExperimentCore
			ch.Place(noiseCore, 0, noiseKernel(), prio.Medium, h.Privilege)
			ch.Place(noiseCore, 1, noiseKernel(), prio.Medium, h.Privilege)
		}
		return fame.Measure(ch, h.Fame).Thread[0].IPC
	}
	r := NoiseResult{Benchmark: bench}
	r.CleanIPC = run(false)
	r.NoisyIPC = run(true)
	if r.CleanIPC > 0 {
		r.Distortion = 1 - r.NoisyIPC/r.CleanIPC
	}
	return r
}

// Render produces the methodology table.
func (r NoiseResult) Render() *report.Table {
	t := report.NewTable("Methodology: noise on the sibling core distorts measurements (paper Section 4.1)",
		"benchmark", "isolated IPC", "noisy-chip IPC", "distortion")
	t.AddRow(r.Benchmark, report.F(r.CleanIPC), report.F(r.NoisyIPC),
		report.F2(r.Distortion*100)+"%")
	return t
}
