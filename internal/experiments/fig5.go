package experiments

import (
	"context"
	"fmt"

	"power5prio/internal/fame"
	"power5prio/internal/prio"
	"power5prio/internal/report"
	"power5prio/internal/spec"
)

// Fig5Point is one measurement of the case-study sweep.
type Fig5Point struct {
	PrioP, PrioS prio.Level
	IPCP, IPCS   float64
	Total        float64
}

// Fig5Result reproduces Figure 5: total IPC of a SPEC pair as the first
// workload's priority increases.
type Fig5Result struct {
	NameP, NameS string
	Points       []Fig5Point
	// PeakGain is the best total-IPC improvement over the (4,4) baseline.
	PeakGain float64
	// PaperPeakGain is the paper's reported peak for this pair.
	PaperPeakGain float64
}

// fig5Pairs are the priority pairs of the Figure 5 x-axis.
var fig5Pairs = [][2]prio.Level{
	{prio.Medium, prio.Medium},
	{prio.MediumHigh, prio.Medium},
	{prio.High, prio.Medium},
	{prio.High, prio.MediumLow},
	{prio.High, prio.Low},
	{prio.High, prio.VeryLow},
}

// RunSpecPair measures a synthetic SPEC pair at explicit priorities. It
// is RunPairLevels under the unified registry — kept for the case-study
// call sites' readability.
func (h Harness) RunSpecPair(ctx context.Context, nameP, nameS string, pp, ps prio.Level) (fame.PairResult, error) {
	return h.RunPairLevels(ctx, nameP, nameS, pp, ps)
}

// fig5 sweeps one pair, submitting the whole sweep as one batch. A
// cancelled sweep keeps the points measured before cancellation.
func fig5(ctx context.Context, h Harness, nameP, nameS string, paperPeak float64) (Fig5Result, error) {
	r := Fig5Result{NameP: nameP, NameS: nameS, PaperPeakGain: paperPeak}
	eng := h.engine()
	var b batch
	for _, pair := range fig5Pairs {
		b.add(h.pairJob(eng, nameP, nameS, pair[0], pair[1]), func(res fame.PairResult) {
			r.Points = append(r.Points, Fig5Point{
				PrioP: pair[0], PrioS: pair[1],
				IPCP: res.Thread[0].IPC, IPCS: res.Thread[1].IPC,
				Total: res.TotalIPC,
			})
		})
	}
	err := b.runWith(ctx, h, eng)
	var base float64
	for _, pt := range r.Points {
		if pt.PrioP == prio.Medium && pt.PrioS == prio.Medium {
			base = pt.Total
		}
		if base > 0 {
			if gain := pt.Total/base - 1; gain > r.PeakGain {
				r.PeakGain = gain
			}
		}
	}
	return r, err
}

// Fig5a regenerates Figure 5(a): h264ref + mcf.
func Fig5a(ctx context.Context, h Harness) (Fig5Result, error) {
	return fig5(ctx, h, spec.H264Ref, spec.MCF, PaperFig5aPeakGain)
}

// Fig5b regenerates Figure 5(b): applu + equake.
func Fig5b(ctx context.Context, h Harness) (Fig5Result, error) {
	return fig5(ctx, h, spec.Applu, spec.Equake, PaperFig5bPeakGain)
}

// Render produces the Figure 5 series.
func (r Fig5Result) Render() *report.Table {
	t := report.NewTable(
		fmt.Sprintf("Figure 5: total IPC with increasing priorities — %s + %s (paper peak gain %.1f%%, simulated %.1f%%)",
			r.NameP, r.NameS, r.PaperPeakGain*100, r.PeakGain*100),
		"priorities", r.NameP, r.NameS, "total", "gain")
	// Gains are relative to the (4,4) baseline; a cancelled sweep may be
	// missing it, in which case the column renders "-".
	var base float64
	for _, p := range r.Points {
		if p.PrioP == prio.Medium && p.PrioS == prio.Medium {
			base = p.Total
			break
		}
	}
	for _, p := range r.Points {
		gain := "-"
		if base > 0 {
			gain = fmt.Sprintf("%+.1f%%", (p.Total/base-1)*100)
		}
		t.AddRow(
			fmt.Sprintf("(%d,%d)", p.PrioP, p.PrioS),
			report.F(p.IPCP), report.F(p.IPCS), report.F(p.Total),
			gain,
		)
	}
	return t
}
