package experiments

import (
	"context"
	"strings"
	"testing"
)

func TestVerifyMicrobenchClaims(t *testing.T) {
	if testing.Short() {
		t.Skip("verification runs simulations")
	}
	h := Quick()
	h.IterScale = 0.12
	findings, err := VerifyMicrobenchClaims(context.Background(), h)
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 5 {
		t.Fatalf("%d findings, want 5", len(findings))
	}
	for _, f := range findings {
		t.Log(f)
		if !f.Pass {
			t.Errorf("claim %s failed: %s (measured %s)", f.ID, f.Claim, f.Measured)
		}
	}
}

func TestFindingString(t *testing.T) {
	f := Finding{ID: "X", Claim: "c", Measured: "m", Pass: true}
	if !strings.Contains(f.String(), "PASS") {
		t.Errorf("String = %q", f.String())
	}
	f.Pass = false
	if !strings.Contains(f.String(), "FAIL") {
		t.Errorf("String = %q", f.String())
	}
}
