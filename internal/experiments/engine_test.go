package experiments

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"power5prio/internal/engine"
	"power5prio/internal/fame"
	"power5prio/internal/microbench"
	"power5prio/internal/spec"
)

// matrixHarness is a fast harness for engine-level matrix tests.
func matrixHarness(workers int) Harness {
	h := Quick()
	h.Fame = fame.Options{MinReps: 2, WarmupReps: 0, MaxCycles: 50_000_000}
	h.IterScale = 0.02
	h.Engine = engine.New(workers)
	return h
}

var matrixNames = []string{microbench.CPUInt, microbench.LdIntL1, microbench.LdIntMem}

// mustMatrix runs a complete RunMatrix, failing the test on any error.
func mustMatrix(t testing.TB, h Harness, primaries, secondaries []string, diffs []int) *MatrixResult {
	t.Helper()
	m, err := RunMatrix(context.Background(), h, primaries, secondaries, diffs)
	if err != nil {
		t.Fatalf("RunMatrix: %v", err)
	}
	return m
}

// TestMatrixWorkerEquivalence: RunMatrix produces identical cells and
// single-thread IPCs at -workers 1 and -workers 8.
func TestMatrixWorkerEquivalence(t *testing.T) {
	diffs := []int{0, 2, -2}
	serial := mustMatrix(t, matrixHarness(1), matrixNames, matrixNames, diffs)
	parallel := mustMatrix(t, matrixHarness(8), matrixNames, matrixNames, diffs)

	if !reflect.DeepEqual(serial.SingleIPC, parallel.SingleIPC) {
		t.Errorf("SingleIPC diverged:\nserial   %v\nparallel %v", serial.SingleIPC, parallel.SingleIPC)
	}
	if !reflect.DeepEqual(serial.Cells, parallel.Cells) {
		t.Errorf("matrix cells diverged between 1 and 8 workers")
		for key, cell := range serial.Cells {
			for d, m := range cell {
				if pm := parallel.Cells[key][d]; pm != m {
					t.Errorf("  (%s,%s) diff %+d: serial %+v parallel %+v", key.P, key.S, d, m, pm)
				}
			}
		}
	}
}

// TestMatrixCacheSharing: experiments run from the same harness reuse
// each other's baselines — a second matrix over the same names at diff 0
// simulates nothing new.
func TestMatrixCacheSharing(t *testing.T) {
	h := matrixHarness(4)
	mustMatrix(t, h, matrixNames, matrixNames, []int{0, 3})
	before := h.Engine.Stats()
	mustMatrix(t, h, matrixNames, matrixNames, []int{0})
	after := h.Engine.Stats()
	if after.Simulated != before.Simulated {
		t.Errorf("diff=0 re-run simulated %d new jobs, want 0 (all cells shared)",
			after.Simulated-before.Simulated)
	}
	if after.Hits <= before.Hits {
		t.Errorf("diff=0 re-run recorded no cache hits: %+v -> %+v", before, after)
	}
}

// TestMatrixMixedFamilies: the registry lets one matrix sweep a
// micro-benchmark against a SPEC stand-in — the pre-registry API's
// family silo is gone.
func TestMatrixMixedFamilies(t *testing.T) {
	h := matrixHarness(4)
	names := []string{microbench.CPUInt, spec.MCF}
	m := mustMatrix(t, h, names, names, []int{0, 2})
	for _, p := range names {
		if m.SingleIPC[p] <= 0 {
			t.Errorf("SingleIPC[%s] = %v", p, m.SingleIPC[p])
		}
		for _, s := range names {
			if m.At(p, s, 2).Primary <= 0 {
				t.Errorf("mixed cell (%s,%s,+2) empty", p, s)
			}
		}
	}
}

// TestMatrixCancellation: cancelling a sweep returns the partial matrix —
// measured cells intact, the rest absent — plus the context error, and a
// re-run resumes from the cache.
func TestMatrixCancellation(t *testing.T) {
	h := matrixHarness(1)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	const stopAfter = 3
	seen := 0
	h.Progress = func(engine.Result) {
		seen++
		if seen == stopAfter {
			cancel()
		}
	}
	diffs := []int{0, 2, -2}
	m, err := RunMatrix(ctx, h, matrixNames, matrixNames, diffs)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled RunMatrix error = %v", err)
	}
	if !m.Partial {
		t.Error("cancelled matrix not marked Partial")
	}
	measured := len(m.SingleIPC)
	for _, p := range matrixNames {
		for _, s := range matrixNames {
			for _, d := range diffs {
				if m.Has(p, s, d) {
					measured++
					if m.At(p, s, d).Primary <= 0 {
						t.Errorf("measured cell (%s,%s,%+d) is empty", p, s, d)
					}
				} else if m.At(p, s, d) != (Meas{}) {
					t.Errorf("unmeasured cell (%s,%s,%+d) not zero on a Partial matrix", p, s, d)
				}
			}
		}
	}
	total := len(matrixNames) * (1 + len(matrixNames)*len(diffs))
	if measured == 0 || measured >= total {
		t.Errorf("partial matrix measured %d of %d entries; want a strict subset", measured, total)
	}

	// The completed prefix re-runs as cache hits.
	h.Progress = nil
	before := h.Engine.Stats()
	mustMatrix(t, h, matrixNames, matrixNames, diffs)
	after := h.Engine.Stats()
	if gotHits := after.Hits - before.Hits; gotHits < measured {
		t.Errorf("re-run reused %d cached jobs, want >= %d", gotHits, measured)
	}
}

// TestHarnessWithoutEngine: a hand-built harness (no Engine field) still
// measures, creating a private pool on demand.
func TestHarnessWithoutEngine(t *testing.T) {
	h := matrixHarness(2)
	h.Engine = nil
	h.Workers = 2
	res, err := h.RunSingle(context.Background(), microbench.CPUInt)
	if err != nil {
		t.Fatal(err)
	}
	if res.IPC <= 0 {
		t.Errorf("engine-less harness made no progress: %+v", res)
	}
}

// TestMeasureDiffs: the batched sweep helper returns one result per
// difference, matching the pointwise path.
func TestMeasureDiffs(t *testing.T) {
	h := matrixHarness(4)
	diffs := []int{0, 2}
	batch, err := h.MeasureDiffs(context.Background(), microbench.CPUInt, microbench.LdIntL1, diffs)
	if err != nil {
		t.Fatal(err)
	}
	if len(batch) != len(diffs) {
		t.Fatalf("%d results, want %d", len(batch), len(diffs))
	}
	for i, d := range diffs {
		pp, ps := DiffPair(d)
		single, err := h.RunPairLevels(context.Background(), microbench.CPUInt, microbench.LdIntL1, pp, ps)
		if err != nil {
			t.Fatal(err)
		}
		if batch[i] != single {
			t.Errorf("diff %+d: batched result differs from pointwise", d)
		}
	}
}

// benchMatrix regenerates a small sweep; serial and parallel variants
// share sizing so their time/op is directly comparable.
func benchMatrix(b *testing.B, workers int) {
	names := []string{microbench.CPUInt, microbench.LdIntL1, microbench.LdIntL2, microbench.LdIntMem}
	diffs := []int{0, 1, 2, -1, -2}
	for i := 0; i < b.N; i++ {
		h := Quick()
		h.IterScale = 0.1
		h.Engine = engine.New(workers) // fresh cache: measure simulation, not memoization
		m := mustMatrix(b, h, names, names, diffs)
		if len(m.Cells) != len(names)*len(names) {
			b.Fatalf("matrix incomplete: %d cells", len(m.Cells))
		}
		st := h.Engine.Stats()
		b.ReportMetric(float64(st.Simulated)/float64(st.Submitted), "simulated/job")
		b.ReportMetric(float64(st.Hits), "cache-hits")
	}
}

// BenchmarkMatrixSerial is the single-worker reference for RunMatrix.
func BenchmarkMatrixSerial(b *testing.B) { benchMatrix(b, 1) }

// BenchmarkMatrixParallel fans the same matrix out across all cores; on
// a 4+ core machine time/op drops roughly by the core count.
func BenchmarkMatrixParallel(b *testing.B) { benchMatrix(b, 0) }

// BenchmarkMatrixCached measures the memoized path: every job after the
// first iteration is a cache hit.
func BenchmarkMatrixCached(b *testing.B) {
	names := []string{microbench.CPUInt, microbench.LdIntL1, microbench.LdIntL2, microbench.LdIntMem}
	diffs := []int{0, 1, 2, -1, -2}
	h := Quick()
	h.IterScale = 0.1
	h.Engine = engine.New(0)
	mustMatrix(b, h, names, names, diffs) // warm the cache
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mustMatrix(b, h, names, names, diffs)
	}
	b.ReportMetric(float64(h.Engine.Stats().Hits)/float64(b.N), "cache-hits/op")
}
