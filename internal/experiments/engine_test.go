package experiments

import (
	"reflect"
	"testing"

	"power5prio/internal/engine"
	"power5prio/internal/fame"
	"power5prio/internal/microbench"
)

// matrixHarness is a fast harness for engine-level matrix tests.
func matrixHarness(workers int) Harness {
	h := Quick()
	h.Fame = fame.Options{MinReps: 2, WarmupReps: 0, MaxCycles: 50_000_000}
	h.IterScale = 0.02
	h.Engine = engine.New(workers)
	return h
}

var matrixNames = []string{microbench.CPUInt, microbench.LdIntL1, microbench.LdIntMem}

// TestMatrixWorkerEquivalence: RunMatrix produces identical cells and
// single-thread IPCs at -workers 1 and -workers 8.
func TestMatrixWorkerEquivalence(t *testing.T) {
	diffs := []int{0, 2, -2}
	serial := RunMatrix(matrixHarness(1), matrixNames, matrixNames, diffs)
	parallel := RunMatrix(matrixHarness(8), matrixNames, matrixNames, diffs)

	if !reflect.DeepEqual(serial.SingleIPC, parallel.SingleIPC) {
		t.Errorf("SingleIPC diverged:\nserial   %v\nparallel %v", serial.SingleIPC, parallel.SingleIPC)
	}
	if !reflect.DeepEqual(serial.Cells, parallel.Cells) {
		t.Errorf("matrix cells diverged between 1 and 8 workers")
		for key, cell := range serial.Cells {
			for d, m := range cell {
				if pm := parallel.Cells[key][d]; pm != m {
					t.Errorf("  (%s,%s) diff %+d: serial %+v parallel %+v", key.P, key.S, d, m, pm)
				}
			}
		}
	}
}

// TestMatrixCacheSharing: experiments run from the same harness reuse
// each other's baselines — a second matrix over the same names at diff 0
// simulates nothing new.
func TestMatrixCacheSharing(t *testing.T) {
	h := matrixHarness(4)
	RunMatrix(h, matrixNames, matrixNames, []int{0, 3})
	before := h.Engine.Stats()
	RunMatrix(h, matrixNames, matrixNames, []int{0})
	after := h.Engine.Stats()
	if after.Simulated != before.Simulated {
		t.Errorf("diff=0 re-run simulated %d new jobs, want 0 (all cells shared)",
			after.Simulated-before.Simulated)
	}
	if after.Hits <= before.Hits {
		t.Errorf("diff=0 re-run recorded no cache hits: %+v -> %+v", before, after)
	}
}

// TestHarnessWithoutEngine: a hand-built harness (no Engine field) still
// measures, creating a private pool on demand.
func TestHarnessWithoutEngine(t *testing.T) {
	h := matrixHarness(2)
	h.Engine = nil
	h.Workers = 2
	res := h.RunSingle(microbench.CPUInt)
	if res.IPC <= 0 {
		t.Errorf("engine-less harness made no progress: %+v", res)
	}
}

// benchMatrix regenerates a small sweep; serial and parallel variants
// share sizing so their time/op is directly comparable.
func benchMatrix(b *testing.B, workers int) {
	names := []string{microbench.CPUInt, microbench.LdIntL1, microbench.LdIntL2, microbench.LdIntMem}
	diffs := []int{0, 1, 2, -1, -2}
	for i := 0; i < b.N; i++ {
		h := Quick()
		h.IterScale = 0.1
		h.Engine = engine.New(workers) // fresh cache: measure simulation, not memoization
		m := RunMatrix(h, names, names, diffs)
		if len(m.Cells) != len(names)*len(names) {
			b.Fatalf("matrix incomplete: %d cells", len(m.Cells))
		}
		st := h.Engine.Stats()
		b.ReportMetric(float64(st.Simulated)/float64(st.Submitted), "simulated/job")
		b.ReportMetric(float64(st.Hits), "cache-hits")
	}
}

// BenchmarkMatrixSerial is the single-worker reference for RunMatrix.
func BenchmarkMatrixSerial(b *testing.B) { benchMatrix(b, 1) }

// BenchmarkMatrixParallel fans the same matrix out across all cores; on
// a 4+ core machine time/op drops roughly by the core count.
func BenchmarkMatrixParallel(b *testing.B) { benchMatrix(b, 0) }

// BenchmarkMatrixCached measures the memoized path: every job after the
// first iteration is a cache hit.
func BenchmarkMatrixCached(b *testing.B) {
	names := []string{microbench.CPUInt, microbench.LdIntL1, microbench.LdIntL2, microbench.LdIntMem}
	diffs := []int{0, 1, 2, -1, -2}
	h := Quick()
	h.IterScale = 0.1
	h.Engine = engine.New(0)
	RunMatrix(h, names, names, diffs) // warm the cache
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		RunMatrix(h, names, names, diffs)
	}
	b.ReportMetric(float64(h.Engine.Stats().Hits)/float64(b.N), "cache-hits/op")
}
