// Package experiments regenerates every table and figure of the paper's
// evaluation section on the simulated POWER5. Each experiment returns a
// typed result with a Render method producing the same rows/series the
// paper reports, plus the paper's own numbers for side-by-side comparison.
//
// All measurement paths are batched: experiments describe their runs as
// engine.Jobs — workloads resolved through the engine's unified registry,
// so micro-benchmarks, SPEC stand-ins and custom kernels mix freely — and
// submit them to the harness's shared batch engine, which fans
// independent simulations out across CPU cores and memoizes results, so
// baselines shared between experiments (the (4,4) co-runs, the
// single-thread IPCs) are simulated once.
//
// Every experiment takes a context: cancelling it stops the sweep,
// returns the partial results measured so far (marked Partial on matrix
// results) alongside the context's error, and leaves the completed work
// in the engine cache so a retry resumes where the sweep stopped.
package experiments

import (
	"context"
	"errors"
	"fmt"

	"power5prio/internal/core"
	"power5prio/internal/engine"
	"power5prio/internal/fame"
	"power5prio/internal/prio"
	"power5prio/internal/workload"
)

// Harness bundles the configuration every experiment shares.
type Harness struct {
	Chip core.Config
	Fame fame.Options
	// IterScale shrinks micro-benchmark repetition lengths (1.0 = the
	// defaults; tests and benches use smaller values).
	IterScale float64
	// Privilege used for in-stream priority changes (the paper's patched
	// kernel exposes the supervisor range to applications).
	Privilege prio.Privilege
	// Workers bounds the batch engine's concurrency when the harness has
	// to create its own engine (0 = all cores).
	Workers int
	// Engine executes measurement batches. Default and Quick install a
	// fresh engine; copies of a Harness share it, so experiments run from
	// the same harness reuse each other's cached baselines. Workload
	// names resolve in this engine's registry.
	Engine *engine.Engine
	// Progress, when non-nil, receives every finished job of a harness
	// batch (cache hits included, cancelled jobs excluded). Calls are
	// serialized by the engine.
	Progress func(engine.Result)
}

// Default returns the full-fidelity harness (paper methodology: MAIV 1%,
// at least 10 repetitions).
func Default() Harness {
	return Harness{
		Chip:      core.DefaultConfig(),
		Fame:      fame.DefaultOptions(),
		IterScale: 1.0,
		Privilege: prio.Supervisor,
		Engine:    engine.New(0),
	}
}

// Quick returns a reduced harness for tests and benches: fewer repetitions
// and shorter kernels. Shapes are preserved; absolute noise grows.
func Quick() Harness {
	h := Default()
	h.Fame = fame.Options{MinReps: 3, WarmupReps: 1, MaxCycles: 120_000_000}
	h.IterScale = 0.25
	return h
}

// engine returns the harness's batch engine, creating a private one when
// the harness was built by hand without one.
func (h Harness) engine() *engine.Engine {
	if h.Engine != nil {
		return h.Engine
	}
	return engine.New(h.Workers)
}

// resolve maps a workload name to its registry ref. Experiment inputs are
// compiled in (or validated by the public facade), so an unknown name is
// a harness bug, not user input.
func (h Harness) resolve(eng *engine.Engine, name string) workload.Ref {
	ref, err := eng.Registry().Resolve(name)
	if err != nil {
		panic(fmt.Sprintf("experiments: %v", err))
	}
	return ref
}

// pairJob describes a co-run of two named workloads at explicit levels.
// The names may come from different workload families.
func (h Harness) pairJob(eng *engine.Engine, nameP, nameS string, pp, ps prio.Level) engine.Job {
	return engine.Pair(h.resolve(eng, nameP), h.resolve(eng, nameS), pp, ps, h.Privilege, h.IterScale, h.Chip, h.Fame)
}

// singleJob describes a single-thread run.
func (h Harness) singleJob(eng *engine.Engine, name string) engine.Job {
	return engine.Single(h.resolve(eng, name), h.Privilege, h.IterScale, h.Chip, h.Fame)
}

// isCancel reports whether a job error is the batch context's error.
func isCancel(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// progressFunc adapts the harness Progress hook to the engine callback.
func (h Harness) progressFunc() func(int, engine.Result) {
	if h.Progress == nil {
		return nil
	}
	return func(_ int, r engine.Result) {
		if r.Err == nil {
			h.Progress(r)
		}
	}
}

// run submits a batch and unwraps the results. Jobs skipped by a
// cancelled context leave zero-valued entries and set the returned error;
// any other failure panics — experiment inputs are compiled in, so it is
// a harness bug, not user input.
func (h Harness) run(ctx context.Context, eng *engine.Engine, jobs []engine.Job) ([]fame.PairResult, error) {
	results := eng.RunFunc(ctx, jobs, h.progressFunc())
	out := make([]fame.PairResult, len(results))
	var err error
	for i, r := range results {
		if r.Err != nil {
			if isCancel(r.Err) {
				err = r.Err
				continue
			}
			panic(fmt.Sprintf("experiments: job %d (%s+%s): %v", i, r.Job.Primary, r.Job.Secondary, r.Err))
		}
		out[i] = r.Pair
	}
	return out, err
}

// RunPairLevels measures a co-scheduled pair at explicit priority levels.
// The two names may come from different workload families.
func (h Harness) RunPairLevels(ctx context.Context, nameP, nameS string, pp, ps prio.Level) (fame.PairResult, error) {
	eng := h.engine()
	res, err := h.run(ctx, eng, []engine.Job{h.pairJob(eng, nameP, nameS, pp, ps)})
	if err != nil {
		return fame.PairResult{}, err
	}
	return res[0], nil
}

// RunSingle measures a workload alone on the core (ST mode).
func (h Harness) RunSingle(ctx context.Context, name string) (fame.ThreadResult, error) {
	eng := h.engine()
	res, err := h.run(ctx, eng, []engine.Job{h.singleJob(eng, name)})
	if err != nil {
		return fame.ThreadResult{}, err
	}
	return res[0].Thread[0], nil
}

// MeasureDiffs measures a pair at each priority difference in diffs
// (each in [-5,+5], mapped to the paper's level pairs) as one batch:
// the settings simulate concurrently and repeats are cache hits.
func (h Harness) MeasureDiffs(ctx context.Context, nameP, nameS string, diffs []int) ([]fame.PairResult, error) {
	eng := h.engine()
	jobs := make([]engine.Job, len(diffs))
	for i, d := range diffs {
		pp, ps := DiffPair(d)
		jobs[i] = h.pairJob(eng, nameP, nameS, pp, ps)
	}
	return h.run(ctx, eng, jobs)
}

// diffPairs maps a priority difference diff in [-5,+5] (at index diff+5)
// to the level pair the paper's experiments use: the primary thread moves
// first through the supervisor range (5,4)...(6,1), mirrored for negative
// differences.
var diffPairs = [11][2]prio.Level{
	0:  {prio.VeryLow, prio.High}, // diff -5
	1:  {prio.Low, prio.High},
	2:  {prio.MediumLow, prio.High},
	3:  {prio.Medium, prio.High},
	4:  {prio.Medium, prio.MediumHigh},
	5:  {prio.Medium, prio.Medium}, // diff 0
	6:  {prio.MediumHigh, prio.Medium},
	7:  {prio.High, prio.Medium},
	8:  {prio.High, prio.MediumLow},
	9:  {prio.High, prio.Low},
	10: {prio.High, prio.VeryLow}, // diff +5
}

// DiffPair maps a priority difference in [-5,+5] to the paper's level
// pair for that difference.
func DiffPair(diff int) (prio.Level, prio.Level) {
	if diff < -5 || diff > 5 {
		panic(fmt.Sprintf("experiments: priority difference %d out of range [-5,5]", diff))
	}
	p := diffPairs[diff+5]
	return p[0], p[1]
}

// Meas is one co-run measurement: per-thread and total IPC.
type Meas struct {
	Primary   float64
	Secondary float64
	Total     float64
}

// PairKey identifies a (primary, secondary) workload pair.
type PairKey struct{ P, S string }

// MatrixResult holds co-run measurements over a set of priority
// differences, plus single-thread IPCs; every micro-benchmark table and
// figure derives from it.
type MatrixResult struct {
	Primaries   []string
	Secondaries []string
	Diffs       []int
	Cells       map[PairKey]map[int]Meas
	SingleIPC   map[string]float64
	// Partial marks a matrix whose sweep was cancelled: cells measured
	// before cancellation are present, the rest are missing.
	Partial bool
}

// batch accumulates jobs paired with the closure that consumes each
// job's result, so building and assigning cannot drift apart.
type batch struct {
	jobs   []engine.Job
	assign []func(fame.PairResult)
}

func (b *batch) add(j engine.Job, f func(fame.PairResult)) {
	b.jobs = append(b.jobs, j)
	b.assign = append(b.assign, f)
}

// runWith submits the batch and assigns every completed result; cancelled
// jobs are skipped and surface as the returned error.
func (b *batch) runWith(ctx context.Context, h Harness, eng *engine.Engine) error {
	results := eng.RunFunc(ctx, b.jobs, h.progressFunc())
	var err error
	for i, r := range results {
		if r.Err != nil {
			if isCancel(r.Err) {
				err = r.Err
				continue
			}
			panic(fmt.Sprintf("experiments: job %d (%s+%s): %v", i, r.Job.Primary, r.Job.Secondary, r.Err))
		}
		b.assign[i](r.Pair)
	}
	return err
}

// RunMatrix measures every (primary, secondary) pair at every priority
// difference, plus each primary alone in ST mode. The whole matrix is
// submitted as one batch: independent cells simulate concurrently and
// repeated combinations (e.g. the shared diff=0 baseline) are cache hits.
// Workload names resolve through the engine registry, so primaries and
// secondaries may mix families and include registered custom kernels.
//
// Cancelling ctx returns the partial matrix (Partial set, missing cells
// absent) together with the context's error.
func RunMatrix(ctx context.Context, h Harness, primaries, secondaries []string, diffs []int) (*MatrixResult, error) {
	r := &MatrixResult{
		Primaries:   primaries,
		Secondaries: secondaries,
		Diffs:       diffs,
		Cells:       make(map[PairKey]map[int]Meas),
		SingleIPC:   make(map[string]float64),
	}
	eng := h.engine()
	var b batch
	for _, p := range primaries {
		b.add(h.singleJob(eng, p), func(res fame.PairResult) {
			r.SingleIPC[p] = res.Thread[0].IPC
		})
		for _, s := range secondaries {
			cell := make(map[int]Meas)
			r.Cells[PairKey{p, s}] = cell
			for _, d := range diffs {
				pp, ps := DiffPair(d)
				b.add(h.pairJob(eng, p, s, pp, ps), func(res fame.PairResult) {
					cell[d] = Meas{
						Primary:   res.Thread[0].IPC,
						Secondary: res.Thread[1].IPC,
						Total:     res.TotalIPC,
					}
				})
			}
		}
	}
	err := b.runWith(ctx, h, eng)
	r.Partial = err != nil
	return r, err
}

// Has reports whether the matrix holds a measurement for the combination
// (always true for complete runs over in-matrix keys).
func (m *MatrixResult) Has(p, s string, diff int) bool {
	cell, ok := m.Cells[PairKey{p, s}]
	if !ok {
		return false
	}
	_, ok = cell[diff]
	return ok
}

// At returns the measurement for a pair at a difference. It panics if the
// combination was not part of the matrix (harness bug, not user input) —
// except on a Partial matrix, where unmeasured combinations return the
// zero Meas so interrupted sweeps can still render.
func (m *MatrixResult) At(p, s string, diff int) Meas {
	cell, ok := m.Cells[PairKey{p, s}]
	if !ok {
		if m.Partial {
			return Meas{}
		}
		panic(fmt.Sprintf("experiments: pair (%s,%s) not in matrix", p, s))
	}
	meas, ok := cell[diff]
	if !ok {
		if m.Partial {
			return Meas{}
		}
		panic(fmt.Sprintf("experiments: diff %d not in matrix for (%s,%s)", diff, p, s))
	}
	return meas
}

// RelPrimary returns the primary thread's performance at diff relative to
// the equal-priority baseline (the paper's Figures 2 and 3 y-axis).
func (m *MatrixResult) RelPrimary(p, s string, diff int) float64 {
	base := m.At(p, s, 0).Primary
	if base == 0 {
		return 0
	}
	return m.At(p, s, diff).Primary / base
}

// RelTotal returns total IPC at diff relative to the equal-priority
// baseline (the paper's Figure 4 y-axis).
func (m *MatrixResult) RelTotal(p, s string, diff int) float64 {
	base := m.At(p, s, 0).Total
	if base == 0 {
		return 0
	}
	return m.At(p, s, diff).Total / base
}
