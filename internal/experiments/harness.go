// Package experiments regenerates every table and figure of the paper's
// evaluation section on the simulated POWER5. Each experiment returns a
// typed result with a Render method producing the same rows/series the
// paper reports, plus the paper's own numbers for side-by-side comparison.
package experiments

import (
	"fmt"

	"power5prio/internal/core"
	"power5prio/internal/fame"
	"power5prio/internal/isa"
	"power5prio/internal/microbench"
	"power5prio/internal/prio"
)

// Harness bundles the configuration every experiment shares.
type Harness struct {
	Chip core.Config
	Fame fame.Options
	// IterScale shrinks micro-benchmark repetition lengths (1.0 = the
	// defaults; tests and benches use smaller values).
	IterScale float64
	// Privilege used for in-stream priority changes (the paper's patched
	// kernel exposes the supervisor range to applications).
	Privilege prio.Privilege
}

// Default returns the full-fidelity harness (paper methodology: MAIV 1%,
// at least 10 repetitions).
func Default() Harness {
	return Harness{
		Chip:      core.DefaultConfig(),
		Fame:      fame.DefaultOptions(),
		IterScale: 1.0,
		Privilege: prio.Supervisor,
	}
}

// Quick returns a reduced harness for tests and benches: fewer repetitions
// and shorter kernels. Shapes are preserved; absolute noise grows.
func Quick() Harness {
	h := Default()
	h.Fame = fame.Options{MinReps: 3, WarmupReps: 1, MaxCycles: 120_000_000}
	h.IterScale = 0.25
	return h
}

// kernel builds a micro-benchmark at the harness scale.
func (h Harness) kernel(name string) *isa.Kernel {
	k, err := microbench.BuildWith(name, microbench.Params{IterScale: h.IterScale})
	if err != nil {
		panic(err)
	}
	return k
}

// RunPairLevels measures a co-scheduled pair at explicit priority levels.
func (h Harness) RunPairLevels(nameP, nameS string, pp, ps prio.Level) fame.PairResult {
	ch := core.NewChip(h.Chip)
	ch.PlacePair(h.kernel(nameP), h.kernel(nameS), pp, ps, h.Privilege)
	return fame.Measure(ch, h.Fame)
}

// RunSingle measures a benchmark alone on the core (ST mode).
func (h Harness) RunSingle(name string) fame.ThreadResult {
	ch := core.NewChip(h.Chip)
	ch.PlacePair(h.kernel(name), nil, prio.Medium, prio.Medium, h.Privilege)
	return fame.Measure(ch, h.Fame).Thread[0]
}

// DiffPair maps a priority difference in [-5,+5] to the level pair the
// paper's experiments use: the primary thread moves first through the
// supervisor range (5,4)...(6,1), mirrored for negative differences.
func DiffPair(diff int) (prio.Level, prio.Level) {
	pairs := map[int][2]prio.Level{
		0:  {prio.Medium, prio.Medium},
		1:  {prio.MediumHigh, prio.Medium},
		2:  {prio.High, prio.Medium},
		3:  {prio.High, prio.MediumLow},
		4:  {prio.High, prio.Low},
		5:  {prio.High, prio.VeryLow},
		-1: {prio.Medium, prio.MediumHigh},
		-2: {prio.Medium, prio.High},
		-3: {prio.MediumLow, prio.High},
		-4: {prio.Low, prio.High},
		-5: {prio.VeryLow, prio.High},
	}
	p, ok := pairs[diff]
	if !ok {
		panic(fmt.Sprintf("experiments: priority difference %d out of range [-5,5]", diff))
	}
	return p[0], p[1]
}

// Meas is one co-run measurement: per-thread and total IPC.
type Meas struct {
	Primary   float64
	Secondary float64
	Total     float64
}

// PairKey identifies a (primary, secondary) workload pair.
type PairKey struct{ P, S string }

// MatrixResult holds co-run measurements over a set of priority
// differences, plus single-thread IPCs; every micro-benchmark table and
// figure derives from it.
type MatrixResult struct {
	Primaries   []string
	Secondaries []string
	Diffs       []int
	Cells       map[PairKey]map[int]Meas
	SingleIPC   map[string]float64
}

// RunMatrix measures every (primary, secondary) pair at every priority
// difference, plus each primary alone in ST mode.
func RunMatrix(h Harness, primaries, secondaries []string, diffs []int) *MatrixResult {
	r := &MatrixResult{
		Primaries:   primaries,
		Secondaries: secondaries,
		Diffs:       diffs,
		Cells:       make(map[PairKey]map[int]Meas),
		SingleIPC:   make(map[string]float64),
	}
	for _, p := range primaries {
		r.SingleIPC[p] = h.RunSingle(p).IPC
		for _, s := range secondaries {
			key := PairKey{p, s}
			r.Cells[key] = make(map[int]Meas)
			for _, d := range diffs {
				pp, ps := DiffPair(d)
				res := h.RunPairLevels(p, s, pp, ps)
				r.Cells[key][d] = Meas{
					Primary:   res.Thread[0].IPC,
					Secondary: res.Thread[1].IPC,
					Total:     res.TotalIPC,
				}
			}
		}
	}
	return r
}

// At returns the measurement for a pair at a difference; it panics if the
// combination was not part of the matrix (harness bug, not user input).
func (m *MatrixResult) At(p, s string, diff int) Meas {
	cell, ok := m.Cells[PairKey{p, s}]
	if !ok {
		panic(fmt.Sprintf("experiments: pair (%s,%s) not in matrix", p, s))
	}
	meas, ok := cell[diff]
	if !ok {
		panic(fmt.Sprintf("experiments: diff %d not in matrix for (%s,%s)", diff, p, s))
	}
	return meas
}

// RelPrimary returns the primary thread's performance at diff relative to
// the equal-priority baseline (the paper's Figures 2 and 3 y-axis).
func (m *MatrixResult) RelPrimary(p, s string, diff int) float64 {
	base := m.At(p, s, 0).Primary
	if base == 0 {
		return 0
	}
	return m.At(p, s, diff).Primary / base
}

// RelTotal returns total IPC at diff relative to the equal-priority
// baseline (the paper's Figure 4 y-axis).
func (m *MatrixResult) RelTotal(p, s string, diff int) float64 {
	base := m.At(p, s, 0).Total
	if base == 0 {
		return 0
	}
	return m.At(p, s, diff).Total / base
}
