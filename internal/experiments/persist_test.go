package experiments

import (
	"context"
	"strings"
	"testing"

	"power5prio/internal/cachestore"
	"power5prio/internal/engine"
)

// regenerate runs a representative slice of the paper's evaluation —
// Table 3 (the 6x6 matrix + ST column), Table 4 (the non-Job pipeline
// rows, exercising the Memo path) and both Figure 5 sweeps — on a fresh
// engine backed by the persistent store at dir, returning the rendered
// output and the engine counters.
func regenerate(t *testing.T, dir string) (string, engine.Stats) {
	t.Helper()
	st, err := cachestore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	h := Quick()
	h.Engine = engine.NewWith(2, nil, engine.WithStore(st))
	ctx := context.Background()

	var out strings.Builder
	t3, err := Table3(ctx, h)
	if err != nil {
		t.Fatal(err)
	}
	out.WriteString(t3.Render().CSV())
	t4, err := Table4(ctx, h)
	if err != nil {
		t.Fatal(err)
	}
	out.WriteString(t4.Render().CSV())
	for _, fig := range []func(context.Context, Harness) (Fig5Result, error){Fig5a, Fig5b} {
		f, err := fig(ctx, h)
		if err != nil {
			t.Fatal(err)
		}
		out.WriteString(f.Render().CSV())
	}
	return out.String(), h.Engine.Stats()
}

// TestPersistentWarmRegeneration is the acceptance scenario: a second
// quick regeneration sharing the first run's cache directory must
// perform zero simulations for the built-in workloads — every lookup a
// disk hit — and produce bit-identical output.
func TestPersistentWarmRegeneration(t *testing.T) {
	if testing.Short() {
		t.Skip("matrix experiments are long tests")
	}
	dir := t.TempDir()

	coldOut, cold := regenerate(t, dir)
	if cold.Simulated == 0 || cold.DiskWrites == 0 {
		t.Fatalf("cold run did no work: %+v", cold)
	}
	if cold.DiskHits != 0 {
		t.Fatalf("cold run hit a fresh store: %+v", cold)
	}

	warmOut, warm := regenerate(t, dir)
	if warm.Simulated != 0 {
		t.Errorf("warm run simulated %d jobs, want 0", warm.Simulated)
	}
	if warm.DiskMisses != 0 {
		t.Errorf("warm run missed the disk cache %d times, want 0", warm.DiskMisses)
	}
	// Every entry the cold run persisted (jobs + memoized pipeline runs)
	// is consumed exactly once by the warm run's unique lookups.
	if warm.DiskHits != cold.DiskWrites {
		t.Errorf("warm disk hits %d, want one per cold write (%d)", warm.DiskHits, cold.DiskWrites)
	}
	if warm.Hits != warm.Submitted {
		t.Errorf("warm run: %d/%d jobs served from cache", warm.Hits, warm.Submitted)
	}
	if warmOut != coldOut {
		t.Error("warm regeneration output differs from cold run")
	}
}
