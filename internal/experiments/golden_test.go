package experiments

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"power5prio/internal/core"
	"power5prio/internal/fame"
	"power5prio/internal/prio"
)

// updateGolden refreshes the committed golden files from the current
// simulator:
//
//	go test ./internal/experiments -run Golden -update
//
// Do this only when a simulator change is intentional, and review the
// diff — these files are the regression baseline for the paper's tables
// and figures.
var updateGolden = flag.Bool("update", false, "rewrite testdata/golden files from the current simulator")

// goldenHarness pins the quick-mode measurement parameters the golden
// files were generated with, independently of Quick(): retuning Quick()
// must not silently invalidate the regression baseline.
func goldenHarness() Harness {
	h := Default()
	h.Fame = fame.Options{MinReps: 3, WarmupReps: 1, MaxCycles: 120_000_000}
	h.IterScale = 0.25
	h.Chip = core.DefaultConfig()
	return h
}

// goldenShared shares one engine across the golden tests so the tables
// and figures reuse each other's baselines, like one p5exp run.
var goldenShared = goldenHarness()

// checkGolden compares v's canonical JSON against the committed golden
// file (or rewrites it under -update).
func checkGolden(t *testing.T, name string, v any) {
	t.Helper()
	got, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')
	path := filepath.Join("testdata", "golden", name)
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", path, len(got))
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file %s (generate with -update): %v", path, err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s: regenerated results differ from the golden baseline at %s\n"+
			"first difference near byte %d\n"+
			"if the simulator change is intentional, refresh with:\n"+
			"  go test ./internal/experiments -run Golden -update",
			t.Name(), path, firstDiff(got, want))
	}
}

// firstDiff returns the first index where the two byte slices differ.
func firstDiff(a, b []byte) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return i
		}
	}
	return n
}

// Golden documents use only slices in deterministic order (never maps),
// so the serialized form is canonical.

type goldenIPC struct {
	Name string
	IPC  float64
}

type goldenTable3 struct {
	Names     []string
	SingleIPC []goldenIPC
	// Cells in primary-major order: primary IPC ("pt") and total IPC
	// ("tt") for every (primary, secondary) pair at priorities (4,4).
	Cells []goldenTable3Cell
}

type goldenTable3Cell struct {
	Primary   string
	Secondary string
	PT        float64
	ST        float64
	TT        float64
}

type goldenTable4 struct {
	Rows           []Table4Row
	BestLabel      string
	BestGain       float64
	InversionWorse bool
}

type goldenFig5 struct {
	NameP, NameS string
	Points       []Fig5Point
	PeakGain     float64
}

type goldenFig6 struct {
	Names     []string
	FGLevels  []prio.Level
	SingleIPC []goldenIPC
	// Cells in foreground-major, background-minor, level order.
	Cells []goldenFig6Cell
}

type goldenFig6Cell struct {
	FG, BG string
	Level  prio.Level
	FGIPC  float64
	BGIPC  float64
}

// TestGoldenTables regenerates Table 3 and Table 4 in quick mode and
// diffs them against the committed baselines.
func TestGoldenTables(t *testing.T) {
	if testing.Short() {
		t.Skip("matrix experiments are long tests")
	}
	ctx := context.Background()

	t3, err := Table3(ctx, goldenShared)
	if err != nil {
		t.Fatal(err)
	}
	g3 := goldenTable3{Names: t3.Names}
	for _, n := range t3.Names {
		g3.SingleIPC = append(g3.SingleIPC, goldenIPC{Name: n, IPC: t3.Matrix.SingleIPC[n]})
	}
	for _, p := range t3.Names {
		for _, s := range t3.Names {
			m := t3.Matrix.At(p, s, 0)
			g3.Cells = append(g3.Cells, goldenTable3Cell{
				Primary: p, Secondary: s, PT: m.Primary, ST: m.Secondary, TT: m.Total,
			})
		}
	}
	checkGolden(t, "table3.json", g3)

	t4, err := Table4(ctx, goldenShared)
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "table4.json", goldenTable4{
		Rows: t4.Rows, BestLabel: t4.BestLabel, BestGain: t4.BestGain,
		InversionWorse: t4.InversionWorse,
	})
}

// TestGoldenFigures regenerates Figures 5 and 6 in quick mode and diffs
// them against the committed baselines.
func TestGoldenFigures(t *testing.T) {
	if testing.Short() {
		t.Skip("matrix experiments are long tests")
	}
	ctx := context.Background()

	for _, fig := range []struct {
		name string
		run  func(context.Context, Harness) (Fig5Result, error)
	}{
		{"fig5a.json", Fig5a},
		{"fig5b.json", Fig5b},
	} {
		r, err := fig.run(ctx, goldenShared)
		if err != nil {
			t.Fatal(err)
		}
		checkGolden(t, fig.name, goldenFig5{
			NameP: r.NameP, NameS: r.NameS, Points: r.Points, PeakGain: r.PeakGain,
		})
	}

	f6, err := Fig6(ctx, goldenShared)
	if err != nil {
		t.Fatal(err)
	}
	g6 := goldenFig6{Names: f6.Names, FGLevels: f6.FGLevels}
	for _, n := range f6.Names {
		g6.SingleIPC = append(g6.SingleIPC, goldenIPC{Name: n, IPC: f6.STIPC[n]})
	}
	for _, fg := range f6.Names {
		for _, bg := range f6.Names {
			for _, lv := range f6.FGLevels {
				c := f6.Cells[fg][bg][lv]
				g6.Cells = append(g6.Cells, goldenFig6Cell{
					FG: fg, BG: bg, Level: lv, FGIPC: c.FG, BGIPC: c.BG,
				})
			}
		}
	}
	checkGolden(t, "fig6.json", g6)
}

// TestGoldenFilesCommitted guards against a refreshed simulator without
// refreshed baselines reaching CI half-updated: every expected golden
// file must exist (content is checked by the tests above).
func TestGoldenFilesCommitted(t *testing.T) {
	for _, name := range []string{"table3.json", "table4.json", "fig5a.json", "fig5b.json", "fig6.json", "calib.json"} {
		if _, err := os.Stat(filepath.Join("testdata", "golden", name)); err != nil {
			t.Errorf("golden file %s missing (generate with -update): %v", name, err)
		}
	}
}
