package experiments

import (
	"context"
	"strings"
	"testing"
)

// TestGoldenCalib regenerates the tier-0 calibration comparison in
// quick mode and diffs it against the committed baseline. CalibResult
// serializes ordered slices only, so the form is canonical.
func TestGoldenCalib(t *testing.T) {
	if testing.Short() {
		t.Skip("matrix experiments are long tests")
	}
	c, err := Calib(context.Background(), goldenShared)
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "calib.json", c)

	// The accuracy gate itself: every residual covered by its error bar,
	// and the summary numbers inside the committed tolerance. This fails
	// — independently of the golden diff — when a model or simulator
	// change degrades tier-0 answers past the contract.
	if !c.WithinBounds() {
		for _, r := range c.Exceeded() {
			t.Errorf("residual escaped its error bar: (%s,%s,%+d) |resid| %.3f > bar %.2f [%s|%s]",
				r.Primary, r.Secondary, r.Diff, r.AbsResidual(), r.ErrorBar, r.ClassP, r.ClassS)
		}
	}
	if c.MaxAbsResidual > c.Tolerance {
		t.Errorf("max abs residual %.4f exceeds default tolerance %.4f", c.MaxAbsResidual, c.Tolerance)
	}
}

// TestCalibShape checks the result structure without running the full
// matrix: row ordering, count, and rendering.
func TestCalibShape(t *testing.T) {
	if testing.Short() {
		t.Skip("matrix experiments are long tests")
	}
	c, err := Calib(context.Background(), goldenShared)
	if err != nil {
		t.Fatal(err)
	}
	want := len(c.Workloads) * len(c.Workloads) * len(c.Diffs)
	if len(c.Rows) != want {
		t.Fatalf("%d rows, want %d", len(c.Rows), want)
	}
	i := 0
	for _, p := range c.Workloads {
		for _, s := range c.Workloads {
			for _, d := range c.Diffs {
				r := c.Rows[i]
				if r.Primary != p || r.Secondary != s || r.Diff != d {
					t.Fatalf("row %d is (%s,%s,%+d), want (%s,%s,%+d)", i, r.Primary, r.Secondary, r.Diff, p, s, d)
				}
				if r.SimulatedP <= 0 || r.ErrorBar <= 0 {
					t.Errorf("row %d: simulated %v, bar %v", i, r.SimulatedP, r.ErrorBar)
				}
				i++
			}
		}
	}
	if c.MeanAbsResidual <= 0 || c.MeanAbsResidual > c.MaxAbsResidual {
		t.Errorf("mean %v / max %v residuals inconsistent", c.MeanAbsResidual, c.MaxAbsResidual)
	}
	out := c.Render()
	if !strings.Contains(out, "within committed bounds") {
		t.Errorf("Render() reports violations:\n%s", out)
	}
}

// TestCalibCancelled: a cancelled calibration returns no partial table.
func TestCalibCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if c, err := Calib(ctx, goldenHarness()); err == nil || c != nil {
		t.Errorf("cancelled Calib returned (%v, %v), want (nil, ctx error)", c, err)
	}
}
