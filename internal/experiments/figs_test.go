package experiments

import (
	"testing"

	"power5prio/internal/microbench"
	"power5prio/internal/prio"
)

func TestDiffPairMapping(t *testing.T) {
	cases := map[int][2]prio.Level{
		0:  {4, 4},
		1:  {5, 4},
		2:  {6, 4},
		3:  {6, 3},
		4:  {6, 2},
		5:  {6, 1},
		-5: {1, 6},
	}
	for d, want := range cases {
		p, s := DiffPair(d)
		if p != want[0] || s != want[1] {
			t.Errorf("DiffPair(%d) = (%d,%d), want (%d,%d)", d, p, s, want[0], want[1])
		}
		if int(p)-int(s) != d {
			t.Errorf("DiffPair(%d) difference is %d", d, int(p)-int(s))
		}
	}
}

func TestDiffPairPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("DiffPair accepted diff 6")
		}
	}()
	DiffPair(6)
}

// figHarness is smaller than Quick: the figure sweeps run many pairs.
func figHarness() Harness {
	h := Quick()
	h.IterScale = 0.12
	return h
}

// TestFig2PositivePrioritiesHelp: raising the primary's priority must not
// hurt it, and decode-bound primaries must gain substantially by +2.
func TestFig2PositivePrioritiesHelp(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep test")
	}
	h := figHarness()
	names := []string{microbench.LdIntL1, microbench.CPUInt, microbench.LdIntMem}
	m := mustMatrix(t, h, names, names, []int{0, 2, 5})
	// Decode-bound benchmarks gain from +2 against compute partners.
	for _, p := range []string{microbench.LdIntL1, microbench.CPUInt} {
		rel := m.RelPrimary(p, microbench.CPUInt, 2)
		if rel < 1.15 {
			t.Errorf("%s at +2 vs cpu_int: rel %.2f, want >= 1.15 (paper saturates near max by +2)", p, rel)
		}
		rel5 := m.RelPrimary(p, microbench.CPUInt, 5)
		if rel5 < rel*0.95 {
			t.Errorf("%s at +5 (%.2f) fell below +2 (%.2f)", p, rel5, rel)
		}
	}
	// Memory-bound primaries gain little against compute partners...
	relMem := m.RelPrimary(microbench.LdIntMem, microbench.CPUInt, 5)
	if relMem > 1.3 {
		t.Errorf("ldint_mem at +5 vs cpu_int: rel %.2f, want ~1.0 (insensitive)", relMem)
	}
	// ...but gain against another memory-bound thread (paper: 1.7x).
	relMM := m.RelPrimary(microbench.LdIntMem, microbench.LdIntMem, 5)
	if relMM < 1.25 {
		t.Errorf("ldint_mem at +5 vs ldint_mem: rel %.2f, want >= 1.25 (paper ~1.7)", relMM)
	}
}

// TestFig3NegativePrioritiesDevastate: the paper's headline asymmetry —
// negative differences cost far more than positive ones gain.
func TestFig3NegativePrioritiesDevastate(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep test")
	}
	h := figHarness()
	// cpu_int at -5 vs a memory thread: paper reports up to 42x slowdown.
	m := mustMatrix(t, h, []string{microbench.CPUInt}, []string{microbench.LdIntMem, microbench.CPUInt}, []int{0, -5})
	slow := 1 / m.RelPrimary(microbench.CPUInt, microbench.LdIntMem, -5)
	if slow < 8 {
		t.Errorf("cpu_int at -5 vs ldint_mem: slowdown %.1fx, want >= 8x (paper ~42x)", slow)
	}
	slowCPU := 1 / m.RelPrimary(microbench.CPUInt, microbench.CPUInt, -5)
	if slowCPU < 5 {
		t.Errorf("cpu_int at -5 vs cpu_int: slowdown %.1fx, want >= 5x (paper ~20x)", slowCPU)
	}
}

// TestFig3MemInsensitiveToNegative: ldint_mem barely notices -5 against a
// compute partner (paper Figure 3f).
func TestFig3MemInsensitiveToNegative(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep test")
	}
	h := figHarness()
	m := mustMatrix(t, h, []string{microbench.LdIntMem}, []string{microbench.CPUInt}, []int{0, -5})
	slow := 1 / m.RelPrimary(microbench.LdIntMem, microbench.CPUInt, -5)
	if slow > 2.5 {
		t.Errorf("ldint_mem at -5 vs cpu_int: slowdown %.1fx, want < 2.5x (paper < 2.5x)", slow)
	}
}

// TestFig4ThroughputRule: prioritizing the higher-IPC thread of a pair
// improves total throughput; deprioritizing it hurts.
func TestFig4ThroughputRule(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep test")
	}
	h := figHarness()
	m := mustMatrix(t, h, []string{microbench.LdIntL1}, []string{microbench.LdIntMem}, []int{0, 4, -4})
	up := m.RelTotal(microbench.LdIntL1, microbench.LdIntMem, 4)
	down := m.RelTotal(microbench.LdIntL1, microbench.LdIntMem, -4)
	if up <= 1.1 {
		t.Errorf("prioritizing high-IPC thread: total rel %.2f, want > 1.1 (paper up to 2x)", up)
	}
	if down >= 0.9 {
		t.Errorf("deprioritizing high-IPC thread: total rel %.2f, want < 0.9", down)
	}
}

// TestFigRenderShapes: rendering produces one table per primary with the
// right number of series.
func TestFigRenderShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep test")
	}
	h := figHarness()
	h.IterScale = 0.05
	names := []string{microbench.CPUInt, microbench.LdIntMem}
	m := mustMatrix(t, h, names, names, []int{0, 1})
	f := FigCurves{Title: "t", Names: names, Diffs: []int{1}, Matrix: m, rel: (*MatrixResult).RelPrimary}
	tables := f.Render()
	if len(tables) != 2 {
		t.Fatalf("%d tables, want 2", len(tables))
	}
	if len(tables[0].Rows) != 2 {
		t.Errorf("%d rows, want 2 series", len(tables[0].Rows))
	}
}
