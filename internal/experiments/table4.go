package experiments

import (
	"context"
	"fmt"

	"power5prio/internal/apps"
	"power5prio/internal/prio"
	"power5prio/internal/report"
)

// Table4Row is one measured pipeline configuration.
type Table4Row struct {
	Label        string
	PrioFFT      prio.Level
	PrioLU       prio.Level
	FFT, LU, Itr float64 // cycles (ST row: sequential sum)
}

// Table4Result reproduces Table 4: FFT/LU pipeline stage and iteration
// times across priority settings, including the single-thread baseline.
type Table4Result struct {
	Rows []Table4Row
	// BestGain is the iteration-time improvement of the best SMT setting
	// over the default (4,4) pair.
	BestGain float64
	// BestLabel identifies the best setting.
	BestLabel string
	// InversionWorse reports whether over-prioritizing (6,3) is worse than
	// the optimum, the paper's cautionary result.
	InversionWorse bool
}

// table4Pairs are the SMT rows of Table 4.
var table4Pairs = [][2]prio.Level{
	{prio.Medium, prio.Medium},
	{prio.MediumHigh, prio.Medium},
	{prio.High, prio.Medium},
	{prio.High, prio.MediumLow},
}

// pipelineSchema versions the persistent-cache key of FFT/LU pipeline
// runs, which are not FAME jobs and so cannot be keyed as engine Jobs.
const pipelineSchema = "power5prio/pipeline/v1"

// pipelineKey is the content a pipeline run's result depends on: the
// full pipeline configuration (chip included) and the stage priorities.
// Single distinguishes the sequential baseline from SMT runs.
type pipelineKey struct {
	Cfg    apps.Config
	PF, PL prio.Level
	Single bool
}

// Table4 regenerates the paper's Table 4 on the simulated machine. The
// pipeline runs are not FAME jobs, so they go through the engine's
// generic worker pool: the single-thread baseline and the four SMT
// settings simulate concurrently, then the rows fold serially so the
// result is identical for any worker count. On an engine with a
// persistent store, each run is memoized on disk (keyed by the pipeline
// configuration and stage priorities), so a warm regeneration simulates
// nothing. Cancelling ctx aborts the table (its five rows are one unit;
// there is no meaningful partial).
func Table4(ctx context.Context, h Harness) (Table4Result, error) {
	cfg := apps.DefaultConfig()
	cfg.Chip = h.Chip
	cfg.Scale = h.IterScale
	var r Table4Result

	eng := h.engine()
	var st apps.StageTimes
	runs := make([]apps.Result, len(table4Pairs))
	errs := make([]error, len(table4Pairs)+1)
	if err := eng.ForEach(ctx, len(table4Pairs)+1, func(i int) {
		if i == 0 {
			_, errs[0] = eng.Memo(pipelineSchema, pipelineKey{Cfg: cfg, Single: true}, &st,
				func() (err error) { st, err = apps.SingleThread(cfg); return err })
			return
		}
		pair := table4Pairs[i-1]
		_, errs[i] = eng.Memo(pipelineSchema, pipelineKey{Cfg: cfg, PF: pair[0], PL: pair[1]}, &runs[i-1],
			func() (err error) { runs[i-1], err = apps.Run(cfg, pair[0], pair[1]); return err })
	}); err != nil {
		return r, err
	}
	for _, err := range errs {
		if err != nil {
			return r, err
		}
	}
	r.Rows = append(r.Rows, Table4Row{
		Label: "single-thread", FFT: st.FFT, LU: st.LU, Itr: st.Iter,
	})

	var base, best float64
	for i, pair := range table4Pairs {
		res := runs[i]
		if res.TimedOut {
			return r, fmt.Errorf("experiments: table4 run (%d,%d) timed out", pair[0], pair[1])
		}
		row := Table4Row{
			Label:   fmt.Sprintf("(%d,%d)", pair[0], pair[1]),
			PrioFFT: pair[0], PrioLU: pair[1],
			FFT: res.Mean.FFT, LU: res.Mean.LU, Itr: res.Mean.Iter,
		}
		r.Rows = append(r.Rows, row)
		if pair[0] == prio.Medium && pair[1] == prio.Medium {
			base = row.Itr
			best = row.Itr
			r.BestLabel = row.Label
		}
		if row.Itr < best && pair != table4Pairs[len(table4Pairs)-1] {
			best = row.Itr
			r.BestLabel = row.Label
		}
	}
	if base > 0 {
		r.BestGain = 1 - best/base
	}
	last := r.Rows[len(r.Rows)-1]
	r.InversionWorse = last.Itr > best
	return r, nil
}

// Render produces the Table 4 layout, including the paper's numbers.
func (r Table4Result) Render() *report.Table {
	t := report.NewTable(
		fmt.Sprintf("Table 4: FFT/LU pipeline times in cycles (best SMT gain %.1f%% at %s; paper 9.3%% at (6,4))",
			r.BestGain*100, r.BestLabel),
		"priorities", "FFT", "LU", "iteration", "paper_FFT(s)", "paper_LU(s)", "paper_iter(s)")
	for i, row := range r.Rows {
		p := PaperTable4Rows[i]
		t.AddRow(row.Label,
			fmt.Sprintf("%.0f", row.FFT), fmt.Sprintf("%.0f", row.LU), fmt.Sprintf("%.0f", row.Itr),
			report.F2(p.FFT), report.F2(p.LU), report.F2(p.Iter))
	}
	return t
}
