package experiments

import (
	"context"
	"testing"

	"power5prio/internal/microbench"
	"power5prio/internal/prio"
)

// fig6Subset runs a reduced Figure 6 grid for tests.
func fig6Subset(t *testing.T, fgs, bgs []string, levels []prio.Level) Fig6Result {
	t.Helper()
	if testing.Short() {
		t.Skip("transparency grid is a long test")
	}
	h := Quick()
	h.IterScale = 0.12
	r := Fig6Result{
		Names:    fgs,
		FGLevels: levels,
		STIPC:    make(map[string]float64),
		Cells:    make(map[string]map[string]map[prio.Level]Fig6Cell),
	}
	ctx := context.Background()
	for _, fg := range fgs {
		st, err := h.RunSingle(ctx, fg)
		if err != nil {
			t.Fatal(err)
		}
		r.STIPC[fg] = st.IPC
		r.Cells[fg] = make(map[string]map[prio.Level]Fig6Cell)
		for _, bg := range bgs {
			r.Cells[fg][bg] = make(map[prio.Level]Fig6Cell)
			for _, lv := range levels {
				res, err := h.RunPairLevels(ctx, fg, bg, lv, prio.VeryLow)
				if err != nil {
					t.Fatal(err)
				}
				r.Cells[fg][bg][lv] = Fig6Cell{FG: res.Thread[0].IPC, BG: res.Thread[1].IPC}
			}
		}
	}
	return r
}

// TestFig6TransparencyAtHighPriority: a priority-1 background thread costs
// a priority-6 foreground little (paper: < 10% for latency-bound
// foregrounds; high-IPC foregrounds suffer the most).
func TestFig6TransparencyAtHighPriority(t *testing.T) {
	fgs := []string{microbench.CPUFP, microbench.LngChainCPUInt, microbench.CPUInt}
	bgs := []string{microbench.CPUInt}
	r := fig6Subset(t, fgs, bgs, []prio.Level{prio.High})
	for _, fg := range fgs {
		rel := r.RelTime(fg, microbench.CPUInt, prio.High)
		if rel > 1.25 {
			t.Errorf("%s at (6,1) with cpu_int bg: time %.2fx of ST, want near-transparent (< 1.25x)", fg, rel)
		}
		if rel < 0.9 {
			t.Errorf("%s at (6,1): rel time %.2f implausibly below ST", fg, rel)
		}
	}
}

// TestFig6EffectGrowsAsForegroundDrops: lowering the foreground priority
// toward the background's increases the interference (Figure 6c).
func TestFig6EffectGrowsAsForegroundDrops(t *testing.T) {
	fgs := []string{microbench.CPUFP}
	bgs := []string{microbench.LdIntMem}
	levels := []prio.Level{prio.High, prio.Medium, prio.Low}
	r := fig6Subset(t, fgs, bgs, levels)
	at6 := r.RelTime(microbench.CPUFP, microbench.LdIntMem, prio.High)
	at2 := r.RelTime(microbench.CPUFP, microbench.LdIntMem, prio.Low)
	if at2 < at6 {
		t.Errorf("interference should grow as fg priority drops: (6,1) %.2f vs (2,1) %.2f", at6, at2)
	}
}

// TestFig6BackgroundGetsMoreAsForegroundDrops: the background thread's IPC
// rises as the foreground priority falls (Figure 6d).
func TestFig6BackgroundGetsMoreAsForegroundDrops(t *testing.T) {
	fgs := []string{microbench.CPUInt}
	bgs := []string{microbench.CPUInt}
	levels := []prio.Level{prio.High, prio.Low}
	r := fig6Subset(t, fgs, bgs, levels)
	bg6 := r.AvgBackgroundIPC(microbench.CPUInt, prio.High)
	bg2 := r.AvgBackgroundIPC(microbench.CPUInt, prio.Low)
	if bg2 <= bg6 {
		t.Errorf("background IPC should rise as fg priority drops: (6,1) %.3f vs (2,1) %.3f", bg6, bg2)
	}
}

// TestFig6MemForegroundRobust: ldint_mem as foreground barely notices a
// compute background (paper: ~7%), even at low foreground priority.
func TestFig6MemForegroundRobust(t *testing.T) {
	fgs := []string{microbench.LdIntMem}
	bgs := []string{microbench.CPUInt}
	r := fig6Subset(t, fgs, bgs, []prio.Level{prio.Low})
	rel := r.RelTime(microbench.LdIntMem, microbench.CPUInt, prio.Low)
	if rel > 1.6 {
		t.Errorf("ldint_mem fg at (2,1): %.2fx of ST, want robust (paper ~1.07x)", rel)
	}
}
