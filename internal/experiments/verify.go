package experiments

import (
	"context"
	"fmt"

	"power5prio/internal/microbench"
)

// Finding is one checked claim: the paper's statement, what the simulator
// measured, and whether the shape holds.
type Finding struct {
	ID       string
	Claim    string
	Measured string
	Pass     bool
}

// String renders a one-line verdict.
func (f Finding) String() string {
	mark := "PASS"
	if !f.Pass {
		mark = "FAIL"
	}
	return fmt.Sprintf("[%s] %-8s %s — measured %s", mark, f.ID, f.Claim, f.Measured)
}

// VerifyMicrobenchClaims runs a compact set of measurements and checks the
// paper's headline micro-benchmark claims (Sections 5.1-5.3) as explicit
// pass/fail findings. It is the machine-checkable core of EXPERIMENTS.md.
// The measurements are one RunMatrix batch, so they fan out across the
// harness engine's workers like every other experiment. A cancelled run
// returns no findings with the context's error — a partial claim check
// proves nothing.
func VerifyMicrobenchClaims(ctx context.Context, h Harness) ([]Finding, error) {
	names := []string{microbench.LdIntL1, microbench.CPUInt, microbench.LdIntMem}
	m, err := RunMatrix(ctx, h, names, names, []int{0, 2, 5, -5})
	if err != nil {
		return nil, err
	}
	var out []Finding

	add := func(id, claim string, measured string, pass bool) {
		out = append(out, Finding{ID: id, Claim: claim, Measured: measured, Pass: pass})
	}

	// 1. Prioritizing a cpu-bound thread buys a large speedup, saturating
	// near +2 (paper: up to 2.5x; knee at +2).
	rel2 := m.RelPrimary(microbench.LdIntL1, microbench.CPUInt, 2)
	rel5 := m.RelPrimary(microbench.LdIntL1, microbench.CPUInt, 5)
	add("F2-knee",
		"cpu-bound speedup large by +2 and near-saturated vs +5",
		fmt.Sprintf("+2: %.2fx, +5: %.2fx", rel2, rel5),
		rel2 > 1.4 && rel2 > 0.85*rel5)

	// 2. Negative priorities devastate cpu-bound threads (paper: 20-42x).
	slow := 1 / m.RelPrimary(microbench.CPUInt, microbench.LdIntMem, -5)
	add("F3-neg",
		"cpu-bound thread at -5 loses an order of magnitude or more",
		fmt.Sprintf("%.0fx slowdown", slow),
		slow >= 10)

	// 3. Memory-bound threads are insensitive except against each other
	// (paper Fig 2f/3f).
	memVsCPU := m.RelPrimary(microbench.LdIntMem, microbench.CPUInt, 5)
	memVsMem := m.RelPrimary(microbench.LdIntMem, microbench.LdIntMem, 5)
	add("F2f-mem",
		"memory thread gains ~nothing vs compute, substantially vs memory",
		fmt.Sprintf("vs cpu: %.2fx, vs mem: %.2fx", memVsCPU, memVsMem),
		memVsCPU < 1.25 && memVsMem > 1.4)

	// 4. Total throughput rule (paper Section 5.3): prioritize the
	// higher-IPC thread.
	up := m.RelTotal(microbench.LdIntL1, microbench.LdIntMem, 5)
	down := m.RelTotal(microbench.LdIntL1, microbench.LdIntMem, -5)
	add("F4-rule",
		"total IPC rises prioritizing the high-IPC thread, collapses otherwise",
		fmt.Sprintf("+5: %.2fx, -5: %.2fx", up, down),
		up > 1.3 && down < 0.5)

	// 5. Equal-priority identical threads split evenly (Table 3 diagonal).
	d := m.At(microbench.CPUInt, microbench.CPUInt, 0)
	ratio := d.Primary / d.Secondary
	add("T3-diag",
		"identical threads at (4,4) perform identically",
		fmt.Sprintf("pt/st ratio %.2f", ratio),
		ratio > 0.85 && ratio < 1.18)

	return out, nil
}
