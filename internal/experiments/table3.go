package experiments

import (
	"context"

	"power5prio/internal/microbench"
	"power5prio/internal/report"
)

// Table3Result reproduces Table 3: single-thread IPC and the 6x6 SMT (4,4)
// co-run matrix (primary-thread IPC and total IPC per cell).
type Table3Result struct {
	Names  []string
	Matrix *MatrixResult
}

// Table3 regenerates the paper's Table 3. The 6x6 grid plus the ST
// column is submitted as one batch; its (4,4) cells are the same jobs
// Figures 2-4 use as baselines, so a shared harness measures them once.
// A cancelled run returns the partial matrix with the context's error.
func Table3(ctx context.Context, h Harness) (Table3Result, error) {
	names := microbench.Presented()
	m, err := RunMatrix(ctx, h, names, names, []int{0})
	return Table3Result{Names: names, Matrix: m}, err
}

// Render produces the table in the paper's layout: one row per primary
// benchmark, with its ST IPC and per-secondary (pt, tt) pairs.
func (r Table3Result) Render() *report.Table {
	header := []string{"benchmark", "IPC_ST"}
	for _, s := range r.Names {
		header = append(header, s+"/pt", s+"/tt")
	}
	t := report.NewTable("Table 3: IPC in ST mode and in SMT with priorities (4,4)", header...)
	for _, p := range r.Names {
		row := []string{p, report.F2(r.Matrix.SingleIPC[p])}
		for _, s := range r.Names {
			m := r.Matrix.At(p, s, 0)
			row = append(row, report.F2(m.Primary), report.F2(m.Total))
		}
		t.AddRow(row...)
	}
	return t
}

// RenderComparison produces a paper-vs-measured table for EXPERIMENTS.md.
func (r Table3Result) RenderComparison() *report.Table {
	t := report.NewTable("Table 3 paper vs simulated",
		"primary", "secondary", "pt_paper", "pt_sim", "tt_paper", "tt_sim")
	for _, p := range r.Names {
		t.AddRow(p, "(ST)", report.F2(PaperTable3ST[p]), report.F2(r.Matrix.SingleIPC[p]), "-", "-")
		for _, s := range r.Names {
			m := r.Matrix.At(p, s, 0)
			pc := PaperTable3[p][s]
			t.AddRow(p, s, report.F2(pc.PT), report.F2(m.Primary), report.F2(pc.TT), report.F2(m.Total))
		}
	}
	return t
}
