package experiments

import (
	"context"
	"testing"

	"power5prio/internal/microbench"
)

// table3Once caches the Quick Table 3 run across tests in this package.
var table3Cache *Table3Result

func table3(t *testing.T) Table3Result {
	t.Helper()
	if testing.Short() {
		t.Skip("matrix experiments are long tests")
	}
	if table3Cache == nil {
		r, err := Table3(context.Background(), Quick())
		if err != nil {
			t.Fatal(err)
		}
		table3Cache = &r
	}
	return *table3Cache
}

func TestTable3RenderAndLog(t *testing.T) {
	r := table3(t)
	t.Logf("\n%s", r.RenderComparison().String())
	if got := len(r.Names); got != 6 {
		t.Fatalf("%d benchmarks, want 6", got)
	}
}

// TestTable3EqualPairSplitsEvenly: identical workloads at (4,4) perform
// identically (paper: 1.15/1.15 for ldint_l1).
func TestTable3EqualPairSplitsEvenly(t *testing.T) {
	r := table3(t)
	for _, n := range r.Names {
		m := r.Matrix.At(n, n, 0)
		if m.Primary == 0 || m.Secondary == 0 {
			t.Fatalf("%s self-pair made no progress", n)
		}
		ratio := m.Primary / m.Secondary
		if ratio < 0.8 || ratio > 1.25 {
			t.Errorf("%s self-pair asymmetric: pt %.3f vs st %.3f", n, m.Primary, m.Secondary)
		}
	}
}

// TestTable3LdintL1Halves: a throughput-bound benchmark loses about half
// its performance against a copy of itself.
func TestTable3LdintL1Halves(t *testing.T) {
	r := table3(t)
	st := r.Matrix.SingleIPC[microbench.LdIntL1]
	pt := r.Matrix.At(microbench.LdIntL1, microbench.LdIntL1, 0).Primary
	frac := pt / st
	if frac < 0.35 || frac > 0.65 {
		t.Errorf("ldint_l1 self-pair fraction of ST = %.2f, want ~0.5 (paper 1.15/2.29)", frac)
	}
}

// TestTable3MemInsensitive: ldint_mem keeps its ST performance against
// every non-memory partner (paper row: 0.02 everywhere except vs itself).
func TestTable3MemInsensitive(t *testing.T) {
	r := table3(t)
	st := r.Matrix.SingleIPC[microbench.LdIntMem]
	for _, s := range []string{microbench.LdIntL1, microbench.CPUInt, microbench.CPUFP, microbench.LngChainCPUInt} {
		pt := r.Matrix.At(microbench.LdIntMem, s, 0).Primary
		if pt < 0.6*st {
			t.Errorf("ldint_mem vs %s: pt %.4f dropped below 60%% of ST %.4f", s, pt, st)
		}
	}
}

// TestTable3MemPairCollapses: two memory-bound threads halve each other
// (paper: 0.02 ST -> 0.01 co-run) via DRAM channel serialization.
func TestTable3MemPairCollapses(t *testing.T) {
	r := table3(t)
	st := r.Matrix.SingleIPC[microbench.LdIntMem]
	pt := r.Matrix.At(microbench.LdIntMem, microbench.LdIntMem, 0).Primary
	if pt > 0.75*st {
		t.Errorf("ldint_mem self-pair pt %.4f, want well below ST %.4f (paper halves)", pt, st)
	}
}

// TestTable3L2PairOverflows: two L2-resident working sets overflow the
// shared L2 and degrade beyond the fair share (paper: 0.27 ST -> 0.11).
func TestTable3L2PairOverflows(t *testing.T) {
	r := table3(t)
	st := r.Matrix.SingleIPC[microbench.LdIntL2]
	pt := r.Matrix.At(microbench.LdIntL2, microbench.LdIntL2, 0).Primary
	if pt > 0.7*st {
		t.Errorf("ldint_l2 self-pair pt %.3f, want well below ST %.3f (capacity overflow)", pt, st)
	}
}

// TestTable3L2InsensitiveToCompute: ldint_l2 keeps near-ST performance
// against compute partners (paper: 0.27 vs cpu_int, ldint_l1).
func TestTable3L2InsensitiveToCompute(t *testing.T) {
	r := table3(t)
	st := r.Matrix.SingleIPC[microbench.LdIntL2]
	for _, s := range []string{microbench.CPUInt, microbench.LdIntL1} {
		pt := r.Matrix.At(microbench.LdIntL2, s, 0).Primary
		if pt < 0.6*st {
			t.Errorf("ldint_l2 vs %s: pt %.3f below 60%% of ST %.3f", s, pt, st)
		}
	}
}

// TestTable3MemHurtsL1: the memory-bound partner degrades ldint_l1 well
// below its fair half (paper: 2.29 -> 0.79) by clogging shared queues.
func TestTable3MemHurtsL1(t *testing.T) {
	r := table3(t)
	st := r.Matrix.SingleIPC[microbench.LdIntL1]
	pt := r.Matrix.At(microbench.LdIntL1, microbench.LdIntMem, 0).Primary
	frac := pt / st
	if frac > 0.62 {
		t.Errorf("ldint_l1 vs ldint_mem keeps %.2f of ST; paper shows a drop to ~0.35", frac)
	}
	if frac < 0.1 {
		t.Errorf("ldint_l1 vs ldint_mem at %.2f of ST: balancing should prevent starvation", frac)
	}
}

// TestTable3TotalsConsistent: tt = pt + secondary IPC in every cell.
func TestTable3TotalsConsistent(t *testing.T) {
	r := table3(t)
	for _, p := range r.Names {
		for _, s := range r.Names {
			m := r.Matrix.At(p, s, 0)
			if diff := m.Total - m.Primary - m.Secondary; diff > 1e-9 || diff < -1e-9 {
				t.Errorf("(%s,%s): tt %.4f != pt %.4f + st %.4f", p, s, m.Total, m.Primary, m.Secondary)
			}
		}
	}
}

// TestTable3SMTBeatsSTForCompute: co-running two compute-bound threads
// yields more total IPC than one alone (paper: cpu_int 1.14 ST vs 1.22 tt).
func TestTable3SMTBeatsSTForCompute(t *testing.T) {
	r := table3(t)
	st := r.Matrix.SingleIPC[microbench.CPUFP]
	tt := r.Matrix.At(microbench.CPUFP, microbench.CPUFP, 0).Total
	if tt <= st {
		t.Errorf("cpu_fp SMT total %.3f not above ST %.3f (SMT should help latency-bound work)", tt, st)
	}
}
