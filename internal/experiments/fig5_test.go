package experiments

import (
	"context"
	"testing"

	"power5prio/internal/prio"
)

// TestFig5aThroughputCaseStudy: prioritizing h264ref over mcf must raise
// total IPC, peaking well above baseline (paper: +23.7%).
func TestFig5aThroughputCaseStudy(t *testing.T) {
	if testing.Short() {
		t.Skip("case-study sweep")
	}
	h := Quick()
	h.IterScale = 0.2
	r, err := Fig5a(context.Background(), h)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", r.Render().String())
	if len(r.Points) != 6 {
		t.Fatalf("%d points, want 6", len(r.Points))
	}
	if r.PeakGain < 0.08 {
		t.Errorf("peak gain %.1f%%, want >= 8%% (paper +23.7%%)", r.PeakGain*100)
	}
	// mcf must slow down at the peak but not collapse (paper: -32%).
	base := r.Points[0].IPCS
	last := r.Points[len(r.Points)-1].IPCS
	if last >= base {
		t.Errorf("mcf did not slow down under prioritization: %.3f -> %.3f", base, last)
	}
}

// TestFig5bAppluEquake: the FP pair gains as well (paper: +14%).
func TestFig5bAppluEquake(t *testing.T) {
	if testing.Short() {
		t.Skip("case-study sweep")
	}
	h := Quick()
	h.IterScale = 0.2
	r, err := Fig5b(context.Background(), h)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", r.Render().String())
	if r.PeakGain < 0.05 {
		t.Errorf("peak gain %.1f%%, want >= 5%% (paper +14%%)", r.PeakGain*100)
	}
}

// TestFig5BaselineFirst: the sweep starts at the default priorities.
func TestFig5BaselineFirst(t *testing.T) {
	if fig5Pairs[0] != [2]prio.Level{prio.Medium, prio.Medium} {
		t.Fatal("Figure 5 sweep must start at (4,4)")
	}
}
