package experiments

import (
	"context"
	"testing"
)

func runTable4(t *testing.T) Table4Result {
	t.Helper()
	if testing.Short() {
		t.Skip("pipeline case study is a long test")
	}
	h := Quick()
	h.IterScale = 0.25
	r, err := Table4(context.Background(), h)
	if err != nil {
		t.Fatalf("Table4: %v", err)
	}
	return r
}

func TestTable4ShapeAndLog(t *testing.T) {
	r := runTable4(t)
	t.Logf("\n%s", r.Render().String())
	if len(r.Rows) != 5 {
		t.Fatalf("%d rows, want 5", len(r.Rows))
	}

	st, base := r.Rows[0], r.Rows[1]
	// FFT dominates LU in single-thread mode (paper: 1.86 vs 0.26).
	if st.FFT < 4*st.LU {
		t.Errorf("ST stage imbalance too small: FFT %.0f vs LU %.0f (want ~7x)", st.FFT, st.LU)
	}
	// At (4,4) FFT is the long pole and LU waits (paper: 2.05 vs 0.42).
	if base.Itr != base.FFT {
		t.Errorf("(4,4) iteration %.0f != FFT %.0f; FFT must be the long pole", base.Itr, base.FFT)
	}
	// LU slows substantially under SMT (paper: 1.6x).
	if base.LU < 1.3*st.LU {
		t.Errorf("(4,4) LU %.0f vs ST %.0f: want >= 1.3x slowdown", base.LU, st.LU)
	}
	// FFT slows only mildly at (4,4) (paper: +10%).
	if base.FFT > 1.35*st.FFT {
		t.Errorf("(4,4) FFT %.0f vs ST %.0f: slowdown too large", base.FFT, st.FFT)
	}
}

// TestTable4PrioritizingFFTHelps: raising FFT's priority shortens the
// iteration. The paper's optimum is (6,4) with 9.3% over (4,4); our
// simulator enforces equation (1) exactly, which shifts the optimum to
// (5,4) (the real machine's effective share at small differences was
// gentler on the deprioritized thread) — see EXPERIMENTS.md.
func TestTable4PrioritizingFFTHelps(t *testing.T) {
	r := runTable4(t)
	base := r.Rows[1].Itr                      // (4,4)
	best := minF(r.Rows[2].Itr, r.Rows[3].Itr) // best of (5,4), (6,4)
	if best >= base {
		t.Errorf("prioritizing FFT did not help: best %.0f vs (4,4) %.0f", best, base)
	}
	if r.BestGain < 0.03 {
		t.Errorf("best gain %.1f%%, want >= 3%% (paper 9.3%%)", r.BestGain*100)
	}
	// The optimum also beats running the stages sequentially (paper: 10%
	// better than single-thread mode).
	if best >= r.Rows[0].Itr {
		t.Errorf("best SMT iteration %.0f not better than sequential %.0f", best, r.Rows[0].Itr)
	}
}

func minF(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

// TestTable4OverPrioritizationInverts: (6,3) pushes LU past FFT and makes
// the iteration worse — the paper's cautionary result.
func TestTable4OverPrioritizationInverts(t *testing.T) {
	r := runTable4(t)
	inv := r.Rows[4] // (6,3)
	if inv.Itr != inv.LU {
		t.Errorf("(6,3): iteration %.0f != LU %.0f; LU must become the long pole", inv.Itr, inv.LU)
	}
	if !r.InversionWorse {
		t.Error("(6,3) should be worse than the optimum")
	}
	// LU collapses at -3 (paper: 0.26s ST -> 2.33s).
	if inv.LU < 3*r.Rows[0].LU {
		t.Errorf("(6,3) LU %.0f vs ST %.0f: want a large collapse", inv.LU, r.Rows[0].LU)
	}
}
