package experiments

import (
	"context"
	"fmt"
	"math"
	"strings"

	"power5prio/internal/analytic"
	"power5prio/internal/fame"
	"power5prio/internal/microbench"
)

// Calibration experiment: the accuracy contract of the tier-0
// analytical estimator (internal/analytic), made reproducible.
//
// Calib runs every pair of a representative workload set across the
// priority-difference range twice — once through the analytical model
// and once through the simulator — and reports the residuals next to
// the error bar the model attached to each prediction. The quick-mode
// result is pinned as the golden calib.json, and WithinBounds is the
// gate CI runs on every change: a model or simulator change that pushes
// any residual past its committed class bound fails the build instead
// of silently degrading tier-0 answers.

// CalibWorkloads returns the calibration matrix workload set: the
// compute/branch/cache-level spectrum the residual bounds were measured
// on, including the cache-capacity pairs (L2×L3 footprints) that drive
// the worst mem×mem residuals.
func CalibWorkloads() []string {
	return []string{
		microbench.CPUInt, microbench.CPUFP, microbench.BrMiss,
		microbench.LdIntL2, microbench.LdIntL3, microbench.LdIntMem,
	}
}

// CalibDiffs returns the priority differences of the calibration
// matrix — the range the residual bounds were measured over.
func CalibDiffs() []int { return []int{-4, -2, 0, 2, 4} }

// CalibRow is one (primary, secondary, diff) cell: the model's
// prediction, the simulator's answer, and their difference per thread.
type CalibRow struct {
	Primary   string `json:"primary"`
	Secondary string `json:"secondary"`
	Diff      int    `json:"diff"`
	// ClassP/ClassS are the workload classes the error bar was looked
	// up under.
	ClassP analytic.Class `json:"class_p"`
	ClassS analytic.Class `json:"class_s"`
	// PredictedP/S and SimulatedP/S are the per-thread IPCs from the
	// model and the simulator.
	PredictedP float64 `json:"predicted_p"`
	PredictedS float64 `json:"predicted_s"`
	SimulatedP float64 `json:"simulated_p"`
	SimulatedS float64 `json:"simulated_s"`
	// ResidualP/S are predicted − simulated (signed).
	ResidualP float64 `json:"residual_p"`
	ResidualS float64 `json:"residual_s"`
	// ErrorBar is the bound the model promised for this prediction.
	ErrorBar float64 `json:"error_bar"`
}

// AbsResidual returns the row's worst per-thread absolute residual —
// the number the error bar must cover.
func (r CalibRow) AbsResidual() float64 {
	return math.Max(math.Abs(r.ResidualP), math.Abs(r.ResidualS))
}

// CalibResult holds the full calibration comparison in deterministic
// order: primary-major, secondary-minor, then diff.
type CalibResult struct {
	Workloads []string   `json:"workloads"`
	Diffs     []int      `json:"diffs"`
	Rows      []CalibRow `json:"rows"`
	// MaxAbsResidual and MeanAbsResidual summarize all per-thread
	// residuals of the matrix.
	MaxAbsResidual  float64 `json:"max_abs_residual"`
	MeanAbsResidual float64 `json:"mean_abs_residual"`
	// Tolerance is the loosest committed class bound
	// (analytic.DefaultTolerance): the tolerance at which every
	// in-domain pair is served by tier 0.
	Tolerance float64 `json:"tolerance"`
}

// WithinBounds reports whether every row's residual is covered by the
// error bar its prediction carried — the CI accuracy gate.
func (c *CalibResult) WithinBounds() bool {
	for _, r := range c.Rows {
		if r.AbsResidual() > r.ErrorBar {
			return false
		}
	}
	return true
}

// Exceeded returns the rows whose residual escaped the promised error
// bar (empty on a healthy model).
func (c *CalibResult) Exceeded() []CalibRow {
	var out []CalibRow
	for _, r := range c.Rows {
		if r.AbsResidual() > r.ErrorBar {
			out = append(out, r)
		}
	}
	return out
}

// Calib measures the calibration matrix: simulator ground truth for
// every (primary, secondary, diff) cell as one engine batch, model
// predictions for the same jobs, residuals per thread. A cancelled run
// returns no result with the context's error — a partial residual
// table proves nothing about the bounds.
func Calib(ctx context.Context, h Harness) (*CalibResult, error) {
	names := CalibWorkloads()
	diffs := CalibDiffs()
	eng := h.engine()
	model := analytic.New(eng)

	res := &CalibResult{Workloads: names, Diffs: diffs}
	var b batch
	for _, p := range names {
		for _, s := range names {
			for _, d := range diffs {
				pp, ps := DiffPair(d)
				job := h.pairJob(eng, p, s, pp, ps)
				pred, err := model.Describe(job)
				if err != nil {
					return nil, fmt.Errorf("experiments: calib predict (%s,%s,%+d): %w", p, s, d, err)
				}
				row := CalibRow{
					Primary: p, Secondary: s, Diff: d,
					ClassP: pred.ClassP, ClassS: pred.ClassS,
					PredictedP: pred.Estimate.Pair.Thread[0].IPC,
					PredictedS: pred.Estimate.Pair.Thread[1].IPC,
					ErrorBar:   pred.Estimate.ErrorBar,
				}
				res.Rows = append(res.Rows, row)
				i := len(res.Rows) - 1
				b.add(job, func(sim fame.PairResult) {
					r := &res.Rows[i]
					r.SimulatedP = sim.Thread[0].IPC
					r.SimulatedS = sim.Thread[1].IPC
					r.ResidualP = r.PredictedP - r.SimulatedP
					r.ResidualS = r.PredictedS - r.SimulatedS
				})
			}
		}
	}
	if err := b.runWith(ctx, h, eng); err != nil {
		return nil, err
	}

	var sum float64
	for _, r := range res.Rows {
		sum += math.Abs(r.ResidualP) + math.Abs(r.ResidualS)
		if a := r.AbsResidual(); a > res.MaxAbsResidual {
			res.MaxAbsResidual = a
		}
	}
	if n := len(res.Rows); n > 0 {
		res.MeanAbsResidual = sum / float64(2*n)
	}
	res.Tolerance = analytic.DefaultTolerance()
	return res, nil
}

// Render formats the comparison as a text table with the summary and
// any bound violations at the bottom.
func (c *CalibResult) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Tier-0 estimator calibration: %d workloads × %d diffs (%d pairs)\n\n",
		len(c.Workloads), len(c.Diffs), len(c.Rows))
	fmt.Fprintf(&sb, "%-18s %-18s %4s  %9s %9s %8s | %9s %9s %8s | %6s\n",
		"primary", "secondary", "diff", "pred_p", "sim_p", "resid_p", "pred_s", "sim_s", "resid_s", "bar")
	for _, r := range c.Rows {
		fmt.Fprintf(&sb, "%-18s %-18s %+4d  %9.3f %9.3f %+8.3f | %9.3f %9.3f %+8.3f | %6.2f\n",
			r.Primary, r.Secondary, r.Diff,
			r.PredictedP, r.SimulatedP, r.ResidualP,
			r.PredictedS, r.SimulatedS, r.ResidualS, r.ErrorBar)
	}
	fmt.Fprintf(&sb, "\nmax abs residual  %.4f\nmean abs residual %.4f\ndefault tolerance %.4f\n",
		c.MaxAbsResidual, c.MeanAbsResidual, c.Tolerance)
	if ex := c.Exceeded(); len(ex) > 0 {
		fmt.Fprintf(&sb, "\nBOUND VIOLATIONS (%d):\n", len(ex))
		for _, r := range ex {
			fmt.Fprintf(&sb, "  (%s, %s, %+d): residual %.3f > bar %.2f [%s|%s]\n",
				r.Primary, r.Secondary, r.Diff, r.AbsResidual(), r.ErrorBar, r.ClassP, r.ClassS)
		}
	} else {
		sb.WriteString("\nall residuals within committed bounds\n")
	}
	return sb.String()
}
