package experiments

import (
	"strings"
	"testing"
)

// TestMethodologyNoise: an L2-resident measurement on the experiment core
// degrades when cache-hungry noise runs on the sibling core — the reason
// the paper isolates its experiments on the second core.
func TestMethodologyNoise(t *testing.T) {
	if testing.Short() {
		t.Skip("chip-level simulation")
	}
	h := Quick()
	h.IterScale = 0.2
	r := MethodologyNoise(h)
	t.Logf("\n%s", r.Render().String())
	if r.CleanIPC <= 0 || r.NoisyIPC <= 0 {
		t.Fatalf("no progress: %+v", r)
	}
	if r.NoisyIPC >= r.CleanIPC {
		t.Errorf("noise on the sibling core did not hurt: clean %.3f vs noisy %.3f",
			r.CleanIPC, r.NoisyIPC)
	}
	if r.Distortion < 0.05 {
		t.Errorf("distortion %.1f%% too small to justify the paper's isolation methodology",
			r.Distortion*100)
	}
	if !strings.Contains(r.Render().String(), "Methodology") {
		t.Error("render missing title")
	}
}
