package chaos

import (
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// chattyHandler writes a known multi-kilobyte body so truncation lands
// mid-stream.
func chattyHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		for i := 0; i < 64; i++ {
			io.WriteString(w, strings.Repeat("x", 63)+"\n")
		}
	})
}

// TestTransportFaults pins the client-side seam: rules fire in plan
// order against matching paths — a reset before the request leaves, a
// synthesized 500, then clean pass-through.
func TestTransportFaults(t *testing.T) {
	srv := httptest.NewServer(chattyHandler())
	defer srv.Close()

	inj := NewInjector(Plan{Rules: []Rule{
		{Op: OpHTTP, Target: "/run", Fault: FaultConnReset, Count: 1},
		{Op: OpHTTP, Target: "/run", Fault: FaultHTTP500, Count: 1},
	}})
	client := &http.Client{Transport: WrapTransport(nil, inj)}

	if _, err := client.Get(srv.URL + "/run"); err == nil || !strings.Contains(err.Error(), "injected connection reset") {
		t.Fatalf("first request error = %v, want injected reset", err)
	}
	resp, err := client.Get(srv.URL + "/run")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("second request status = %s, want injected 500", resp.Status)
	}
	// Non-matching path never faults; the armed rules are spent anyway.
	resp, err = client.Get(srv.URL + "/health")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("health = %v / %v, want clean 200", resp, err)
	}
	resp.Body.Close()
	resp, err = client.Get(srv.URL + "/run")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("post-cap request = %v / %v, want clean 200", resp, err)
	}
	resp.Body.Close()
}

// TestTransportTruncate pins the mid-stream cut: the response starts
// normally, then the body read fails with ErrUnexpectedEOF after the
// byte budget — a dropped connection, not a clean EOF.
func TestTransportTruncate(t *testing.T) {
	srv := httptest.NewServer(chattyHandler())
	defer srv.Close()

	inj := NewInjector(Plan{Rules: []Rule{{Op: OpHTTP, Fault: FaultTruncate, Bytes: 100}}})
	client := &http.Client{Transport: WrapTransport(nil, inj)}
	resp, err := client.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("read error = %v, want ErrUnexpectedEOF", err)
	}
	if len(body) != 100 {
		t.Fatalf("read %d bytes before the cut, want 100", len(body))
	}
}

// TestMiddlewareFaults pins the server-side seam: a delayed-but-intact
// reply, an injected 500, a connection aborted before any response, and
// a body cut after the byte budget.
func TestMiddlewareFaults(t *testing.T) {
	inj := NewInjector(Plan{Rules: []Rule{
		{Op: OpHTTP, Fault: FaultHTTP500, Count: 1},
		{Op: OpHTTP, Fault: FaultConnReset, Count: 1},
		{Op: OpHTTP, Fault: FaultTruncate, Bytes: 64, Count: 1},
	}})
	srv := httptest.NewServer(Middleware(chattyHandler(), inj))
	defer srv.Close()

	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("first request status = %s, want injected 500", resp.Status)
	}

	if resp, err := http.Get(srv.URL); err == nil {
		resp.Body.Close()
		t.Fatal("aborted request returned a response, want a transport error")
	}

	resp, err = http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err == nil {
		t.Fatalf("truncated body read cleanly (%d bytes), want a mid-stream failure", len(body))
	}
	if len(body) != 64 {
		t.Fatalf("read %d bytes before the cut, want 64", len(body))
	}

	resp, err = http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if b, _ := io.ReadAll(resp.Body); len(b) != 64*64 {
		t.Fatalf("post-cap body = %d bytes, want the full %d", len(b), 64*64)
	}
}
