package chaos

import (
	"errors"
	"strings"
	"testing"

	"power5prio/internal/cachestore"
	"power5prio/internal/engine"
)

// TestPutHookENOSPC pins the full-disk fault at the store layer: the
// write fails with the injected error and no entry appears.
func TestPutHookENOSPC(t *testing.T) {
	store, err := cachestore.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	store.SetPutHook(PutHook(NewInjector(Plan{Rules: []Rule{{Op: OpPut, Fault: FaultENOSPC}}})))

	k := cachestore.MustHashValue("test/v1", "payload")
	if err := store.Put(k, []byte("payload")); err == nil || !strings.Contains(err.Error(), "no space left on device") {
		t.Fatalf("hooked put error = %v, want injected ENOSPC", err)
	}
	if _, err := store.Get(k); !errors.Is(err, cachestore.ErrNotFound) {
		t.Fatalf("get after failed put = %v, want ErrNotFound", err)
	}
}

// TestPutHookTornWrite pins the torn-write fault: the put "succeeds",
// the next read detects the corruption via the checksum, unlinks the
// entry (self-heal), and a clean re-put restores it.
func TestPutHookTornWrite(t *testing.T) {
	store, err := cachestore.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	store.SetPutHook(PutHook(NewInjector(Plan{Rules: []Rule{{Op: OpPut, Fault: FaultTornWrite, Count: 1}}})))

	k := cachestore.MustHashValue("test/v1", "payload")
	if err := store.Put(k, []byte("payload")); err != nil {
		t.Fatalf("torn put must look successful (power loss is silent): %v", err)
	}
	if _, err := store.Get(k); !errors.Is(err, cachestore.ErrCorrupt) {
		t.Fatalf("get of torn entry = %v, want ErrCorrupt", err)
	}
	if _, err := store.Get(k); !errors.Is(err, cachestore.ErrNotFound) {
		t.Fatalf("get after self-heal = %v, want ErrNotFound (bad entry unlinked)", err)
	}
	if err := store.Put(k, []byte("payload")); err != nil {
		t.Fatalf("clean re-put: %v", err)
	}
	got, err := store.Get(k)
	if err != nil || string(got) != "payload" {
		t.Fatalf("get after re-put = %q / %v", got, err)
	}
}

// TestEngineSurvivesWriteFailure pins the engine's degrade-to-memory
// contract: when every cache write-back fails (full disk), each job
// still resolves successfully — a dead cache tier is a performance
// problem, never a batch error.
func TestEngineSurvivesWriteFailure(t *testing.T) {
	dir := t.TempDir()
	store, err := cachestore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	store.SetPutHook(PutHook(NewInjector(Plan{Rules: []Rule{{Op: OpPut, Fault: FaultENOSPC}}})))

	fb := &fakeBackend{}
	eng := engine.NewWith(0, nil, engine.WithStore(store), engine.WithBackend(fb))
	jobs := chaosJobs(4)
	res := eng.Run(nil, jobs)
	for i, r := range res {
		if r.Err != nil || r.Skipped {
			t.Fatalf("job %d = %+v, want success despite dead cache writes", i, r)
		}
		if r.Pair.TotalIPC != jobs[i].IterScale {
			t.Fatalf("job %d result drifted: %+v", i, r)
		}
	}
	if st := eng.Stats(); st.DiskWrites != 0 || st.Simulated != 4 {
		t.Fatalf("stats = %+v, want 4 simulated and 0 disk writes", st)
	}

	// Nothing persisted: a fresh engine on the same dir (no hook)
	// misses disk and re-simulates, still cleanly.
	store2, err := cachestore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	fb2 := &fakeBackend{}
	eng2 := engine.NewWith(0, nil, engine.WithStore(store2), engine.WithBackend(fb2))
	res2 := eng2.Run(nil, jobs)
	for i, r := range res2 {
		if r.Err != nil || r.Skipped || r.Pair != res[i].Pair {
			t.Fatalf("re-run job %d = %+v, want %+v", i, r, res[i])
		}
	}
	if st := eng2.Stats(); st.DiskHits != 0 || st.DiskWrites != 4 {
		t.Fatalf("re-run stats = %+v, want 0 disk hits and 4 writes on the healthy store", st)
	}
}
