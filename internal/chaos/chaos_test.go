package chaos

import (
	"os"
	"path/filepath"
	"testing"
	"time"
)

// TestDecideReplaysExactly pins the harness's core promise: the fault
// schedule is a pure function of (seed, rule, match ordinal), so a
// fresh injector fed the same call sequence makes identical decisions —
// and a different seed diverges.
func TestDecideReplaysExactly(t *testing.T) {
	plan := func(seed int64) Plan {
		return Plan{Seed: seed, Rules: []Rule{
			{Op: OpRun, Fault: FaultCrash, P: 0.3},
			{Op: OpHTTP, Target: "/v1/submit", Fault: FaultConnReset, P: 0.5, After: 2},
			{Op: OpPut, Fault: FaultENOSPC, P: 0.2, Count: 3},
		}}
	}
	drive := func(in *Injector) []int {
		var got []int
		for i := 0; i < 200; i++ {
			ops := []struct {
				op     Op
				target string
			}{
				{OpRun, "fleet"},
				{OpHTTP, "/v1/submit"},
				{OpHTTP, "/v1/health"},
				{OpPut, "sha256:abcd"},
			}
			c := ops[i%len(ops)]
			if d := in.decide(c.op, c.target); d != nil {
				got = append(got, d.rule)
			} else {
				got = append(got, -1)
			}
		}
		return got
	}

	a := drive(NewInjector(plan(42)))
	b := drive(NewInjector(plan(42)))
	if len(a) != len(b) {
		t.Fatalf("replay lengths differ: %d vs %d", len(a), len(b))
	}
	fired := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("decision %d differs on replay: %d vs %d", i, a[i], b[i])
		}
		if a[i] >= 0 {
			fired++
		}
	}
	if fired == 0 {
		t.Fatal("probabilistic plan never fired in 200 calls; schedule is vacuous")
	}

	c := drive(NewInjector(plan(7)))
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("seed 42 and seed 7 produced identical schedules")
	}
}

// TestDecideGates pins the deterministic gating knobs: After skips
// leading matches, Count caps firings, Target selects by substring, and
// the first firing rule wins a call while later rules still consume
// their ordinals.
func TestDecideGates(t *testing.T) {
	in := NewInjector(Plan{Seed: 1, Rules: []Rule{
		{Op: OpHTTP, Target: "/v1/submit", Fault: FaultHTTP500, After: 1, Count: 2},
		{Op: OpHTTP, Fault: FaultConnReset, After: 3},
	}})

	if d := in.decide(OpHTTP, "/v1/health"); d != nil {
		t.Fatalf("health call hit rule %d, want no match before After", d.rule)
	}
	// Submit call 1: rule 0 still in After (ordinal 0); rule 1 at
	// ordinal 1 (health consumed 0), still in After.
	if d := in.decide(OpHTTP, "/v1/submit"); d != nil {
		t.Fatalf("submit call 1 fired rule %d, want pass-through", d.rule)
	}
	// Submit calls 2 and 3: rule 0 past After, fires — and keeps
	// winning over rule 1, whose ordinal advances regardless.
	for call := 2; call <= 3; call++ {
		d := in.decide(OpHTTP, "/v1/submit")
		if d == nil || d.rule != 0 || d.fault != FaultHTTP500 {
			t.Fatalf("submit call %d = %+v, want rule 0 http-500", call, d)
		}
	}
	// Rule 0 hit its Count cap; rule 1 (ordinal 4 now, past After 3)
	// takes over.
	d := in.decide(OpHTTP, "/v1/submit")
	if d == nil || d.rule != 1 || d.fault != FaultConnReset {
		t.Fatalf("post-cap call = %+v, want rule 1 conn-reset", d)
	}
	if in.Fired(0) != 2 || in.Fired(1) != 1 {
		t.Fatalf("fired counts = %d/%d, want 2/1", in.Fired(0), in.Fired(1))
	}
	if in.TotalFired() != 3 {
		t.Fatalf("TotalFired = %d, want 3", in.TotalFired())
	}
}

// TestPlanValidate pins the rejection of unexpressible plans.
func TestPlanValidate(t *testing.T) {
	cases := []struct {
		name string
		rule Rule
	}{
		{"unknown op", Rule{Op: "disk", Fault: FaultENOSPC}},
		{"fault on wrong seam", Rule{Op: OpRun, Fault: FaultENOSPC}},
		{"slow without delay", Rule{Op: OpRun, Fault: FaultSlow}},
		{"http crash", Rule{Op: OpHTTP, Fault: FaultCrash}},
	}
	for _, c := range cases {
		if err := (Plan{Rules: []Rule{c.rule}}).Validate(); err == nil {
			t.Errorf("%s: plan validated, want error", c.name)
		}
	}
	ok := Plan{Seed: 9, Rules: []Rule{
		{Op: OpRun, Fault: FaultSlow, Delay: Duration(time.Millisecond)},
		{Op: OpPut, Fault: FaultTornWrite, Bytes: 10},
	}}
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid plan rejected: %v", err)
	}
}

// TestLoadPlan pins the file format: human-readable durations, strict
// field checking, and validation at load time.
func TestLoadPlan(t *testing.T) {
	dir := t.TempDir()
	good := filepath.Join(dir, "plan.json")
	if err := os.WriteFile(good, []byte(`{
		"seed": 1234,
		"rules": [
			{"op": "run", "target": "fleet", "fault": "slow", "delay": "50ms"},
			{"op": "http", "fault": "truncate", "bytes": 256, "after": 1}
		]
	}`), 0o644); err != nil {
		t.Fatal(err)
	}
	p, err := Load(good)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if p.Seed != 1234 || len(p.Rules) != 2 || p.Rules[0].Delay.Std() != 50*time.Millisecond {
		t.Fatalf("loaded plan = %+v", p)
	}

	bad := filepath.Join(dir, "bad.json")
	os.WriteFile(bad, []byte(`{"seed": 1, "rules": [{"op": "run", "fault": "slow", "delay": "50ms", "chance": 0.5}]}`), 0o644)
	if _, err := Load(bad); err == nil {
		t.Fatal("plan with unknown field loaded, want error")
	}
	invalid := filepath.Join(dir, "invalid.json")
	os.WriteFile(invalid, []byte(`{"seed": 1, "rules": [{"op": "put", "fault": "crash"}]}`), 0o644)
	if _, err := Load(invalid); err == nil {
		t.Fatal("semantically invalid plan loaded, want error")
	}
}
