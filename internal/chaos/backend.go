package chaos

import (
	"context"
	"fmt"
	"time"

	"power5prio/internal/engine"
)

// Backend wraps an engine.Backend with OpRun faults: crash-mid-batch,
// skip-without-error and straggler delays. It preserves the backend
// contract — one result per job in order, never-attempted jobs carry
// Skipped — so everything above (engine caching, daemon requeue, client
// resume) sees exactly the failures a real fleet produces.
type Backend struct {
	inner engine.Backend
	inj   *Injector
}

// WrapBackend decorates a backend with the injector's OpRun rules
// (matched against the inner backend's name).
func WrapBackend(b engine.Backend, inj *Injector) *Backend {
	return &Backend{inner: b, inj: inj}
}

// Name identifies the wrapper in diagnostics.
func (b *Backend) Name() string { return "chaos(" + b.inner.Name() + ")" }

// Capacity forwards to the wrapped backend.
func (b *Backend) Capacity() int { return b.inner.Capacity() }

// Healthy forwards to the wrapped backend: the injector breaks work,
// not liveness probes (probe faults belong on the HTTP seam).
func (b *Backend) Healthy(ctx context.Context) error { return b.inner.Healthy(ctx) }

// Run implements engine.Backend; see RunProgress.
func (b *Backend) Run(ctx context.Context, jobs []engine.Job) ([]engine.Result, error) {
	return b.RunProgress(ctx, jobs, nil)
}

// RunProgress consults the plan once per batch, then executes through
// the wrapped backend — whole, delayed, or cut short mid-batch.
func (b *Backend) RunProgress(ctx context.Context, jobs []engine.Job, done func(i int, r engine.Result)) ([]engine.Result, error) {
	d := b.inj.decide(OpRun, b.inner.Name())
	if d == nil {
		return b.runInner(ctx, jobs, done)
	}
	switch d.fault {
	case FaultSlow:
		select {
		case <-time.After(d.delay):
		case <-ctx.Done():
			out := make([]engine.Result, len(jobs))
			for i, j := range jobs {
				out[i] = engine.Result{Job: j, Err: ctx.Err(), Skipped: true}
				if done != nil {
					done(i, out[i])
				}
			}
			return out, nil
		}
		return b.runInner(ctx, jobs, done)
	case FaultCrash, FaultSkip:
		// Execute the leading half, strand the rest — the shape of a
		// worker dying (crash: with a backend-level error) or silently
		// dropping work (skip: no error at all).
		n := len(jobs) / 2
		prefix, innerErr := b.runInner(ctx, jobs[:n], done)
		var cause error
		if d.fault == FaultCrash {
			cause = fmt.Errorf("chaos: injected worker crash after %d of %d jobs (rule %d)", n, len(jobs), d.rule)
		} else {
			cause = fmt.Errorf("chaos: injected skip of %d of %d jobs (rule %d)", len(jobs)-n, len(jobs), d.rule)
		}
		out := make([]engine.Result, len(jobs))
		copy(out, prefix)
		for k := n; k < len(jobs); k++ {
			out[k] = engine.Result{Job: jobs[k], Err: cause, Skipped: true}
			if done != nil {
				done(k, out[k])
			}
		}
		if innerErr != nil {
			return out, innerErr
		}
		if d.fault == FaultCrash {
			return out, cause
		}
		return out, nil
	default:
		return b.runInner(ctx, jobs, done)
	}
}

func (b *Backend) runInner(ctx context.Context, jobs []engine.Job, done func(i int, r engine.Result)) ([]engine.Result, error) {
	if pb, ok := b.inner.(engine.ProgressBackend); ok {
		return pb.RunProgress(ctx, jobs, done)
	}
	out, err := b.inner.Run(ctx, jobs)
	if done != nil {
		for i, r := range out {
			done(i, r)
		}
	}
	return out, err
}
