package chaos_test

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"power5prio/internal/cachestore"
	"power5prio/internal/chaos"
	"power5prio/internal/engine"
	"power5prio/internal/fame"
	"power5prio/internal/service"
)

// synthBackend derives each result deterministically from the job, so
// "byte-identical to a fault-free run" reduces to exact Pair equality
// however many times chaos forces a job to re-run.
type synthBackend struct {
	mu   sync.Mutex
	jobs int
}

func (b *synthBackend) Name() string                  { return "synth" }
func (b *synthBackend) Capacity() int                 { return 4 }
func (b *synthBackend) Healthy(context.Context) error { return nil }

func (b *synthBackend) Run(ctx context.Context, jobs []engine.Job) ([]engine.Result, error) {
	b.mu.Lock()
	b.jobs += len(jobs)
	b.mu.Unlock()
	out := make([]engine.Result, len(jobs))
	for i, j := range jobs {
		out[i] = engine.Result{Job: j, Pair: fame.PairResult{
			TotalIPC: 2 * j.IterScale,
			Cycles:   uint64(1000 * j.IterScale),
		}}
	}
	return out, nil
}

func soakJobs(n int) []engine.Job {
	jobs := make([]engine.Job, n)
	for i := range jobs {
		jobs[i].IterScale = 1 + float64(i%20) // duplicates past 20: dedup under fire
	}
	return jobs
}

// soakPlan is the seeded fault schedule the soak runs under: worker
// crashes and stragglers at the backend, truncated streams, resets and
// 5xx on the wire, and a flaky disk under the cache store.
func soakPlan() chaos.Plan {
	return chaos.Plan{Seed: 20080614, Rules: []chaos.Rule{
		{Op: chaos.OpRun, Fault: chaos.FaultCrash, P: 0.25},
		{Op: chaos.OpRun, Fault: chaos.FaultSlow, Delay: chaos.Duration(10 * time.Millisecond), P: 0.3},
		{Op: chaos.OpHTTP, Target: service.SubmitPath, Fault: chaos.FaultTruncate, Bytes: 900, After: 1, Count: 2},
		{Op: chaos.OpHTTP, Target: service.SubmitPath, Fault: chaos.FaultConnReset, After: 6, Count: 1},
		{Op: chaos.OpHTTP, Target: service.SubmitPath, Fault: chaos.FaultHTTP500, After: 10, Count: 1},
		{Op: chaos.OpPut, Fault: chaos.FaultENOSPC, P: 0.4},
		{Op: chaos.OpPut, Fault: chaos.FaultTornWrite, P: 0.2},
	}}
}

// TestChaosSoak drives two concurrent clients through a chaos-wrapped
// daemon — faults injected at the backend, the wire (both sides), and
// the cache store — and restarts the daemon gracefully mid-run. Every
// job must resolve with a result byte-identical to a fault-free run:
// the repo's determinism contract, under fire. (The CI chaos step runs
// the same shape against real p5d/p5worker binaries and seeded plan
// files; this in-process soak keeps the contract pinned in `go test`.)
func TestChaosSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short")
	}
	inj := chaos.NewInjector(soakPlan())
	cacheDir := t.TempDir()

	// Fault-free baseline.
	jobs := soakJobs(30)
	baseline := engine.NewWith(0, nil, engine.WithBackend(&synthBackend{})).Run(nil, jobs)
	for i, r := range baseline {
		if r.Err != nil || r.Skipped {
			t.Fatalf("baseline job %d = %+v", i, r)
		}
	}

	newDaemon := func() (*service.Daemon, context.CancelFunc) {
		store, err := cachestore.Open(cacheDir)
		if err != nil {
			t.Fatal(err)
		}
		store.SetPutHook(chaos.PutHook(inj))
		eng := engine.NewWith(0, nil,
			engine.WithStore(store),
			engine.WithBackend(chaos.WrapBackend(&synthBackend{}, inj)))
		d := service.New(eng, nil, service.Config{
			BatchMax:    8,
			Dispatchers: 2,
			JobTimeout:  5 * time.Second,
		})
		ctx, cancel := context.WithCancel(context.Background())
		go d.Run(ctx)
		return d, cancel
	}

	d1, cancel1 := newDaemon()
	defer cancel1()

	// The stable "listen address": a front whose daemon is swapped out
	// mid-run, as a restarted process reclaims its port. Faults on the
	// serving side of the wire ride chaos.Middleware; in-flight streams
	// keep the handler they started on.
	var front atomic.Value
	front.Store(chaos.Middleware(d1.Handler(), inj))
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		front.Load().(http.Handler).ServeHTTP(w, r)
	}))
	defer srv.Close()

	// Graceful restart once a few results have landed: drain, close,
	// bring up a successor on the same address and cache dir.
	var restartOnce sync.Once
	var progressed atomic.Int64
	restarted := make(chan struct{})
	noteProgress := func() {
		if progressed.Add(1) == 5 {
			restartOnce.Do(func() {
				go func() {
					defer close(restarted)
					d1.Drain()
					d2, cancel2 := newDaemon()
					t.Cleanup(func() { d2.Close(); cancel2() })
					front.Store(chaos.Middleware(d2.Handler(), inj))
					d1.Close()
				}()
			})
		}
	}

	runClient := func(id string) ([]engine.Result, error) {
		cl := service.NewClient(srv.URL,
			service.WithClientID(id),
			service.WithSubmitChunk(16),
			service.WithIdleTimeout(3*time.Second),
			service.WithBackpressureCap(time.Minute),
			service.WithHTTPClient(&http.Client{Transport: chaos.WrapTransport(nil, inj)}))
		return cl.RunProgress(context.Background(), jobs, func(int, engine.Result) { noteProgress() })
	}

	var wg sync.WaitGroup
	results := make([][]engine.Result, 2)
	errs := make([]error, 2)
	for i, id := range []string{"alice", "bob"} {
		wg.Add(1)
		go func() {
			defer wg.Done()
			results[i], errs[i] = runClient(id)
		}()
	}
	wgdone := make(chan struct{})
	go func() { wg.Wait(); close(wgdone) }()
	select {
	case <-wgdone:
	case <-time.After(90 * time.Second):
		t.Fatal("soak did not complete within 90s")
	}

	for i, id := range []string{"alice", "bob"} {
		if errs[i] != nil {
			t.Fatalf("client %s: %v", id, errs[i])
		}
		for k, r := range results[i] {
			if r.Err != nil || r.Skipped {
				t.Fatalf("client %s job %d = %+v, want clean result under chaos", id, k, r)
			}
			if r.Pair != baseline[k].Pair {
				t.Fatalf("client %s job %d = %+v, differs from fault-free baseline %+v",
					id, k, r.Pair, baseline[k].Pair)
			}
		}
	}
	select {
	case <-restarted:
	case <-time.After(5 * time.Second):
		t.Fatal("the mid-run restart never triggered")
	}
	if inj.TotalFired() == 0 {
		t.Fatal("the chaos schedule never fired; the soak proved nothing")
	}
	t.Logf("soak complete: %d faults injected across %d rules", inj.TotalFired(), len(soakPlan().Rules))
}
