package chaos

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"

	"power5prio/internal/engine"
	"power5prio/internal/fame"
)

// fakeBackend synthesizes results instantly; the tests exercise the
// decorator, not simulation.
type fakeBackend struct {
	mu   sync.Mutex
	jobs int
}

func (b *fakeBackend) Name() string                  { return "fake" }
func (b *fakeBackend) Capacity() int                 { return 4 }
func (b *fakeBackend) Healthy(context.Context) error { return nil }

func (b *fakeBackend) Run(ctx context.Context, jobs []engine.Job) ([]engine.Result, error) {
	b.mu.Lock()
	b.jobs += len(jobs)
	b.mu.Unlock()
	out := make([]engine.Result, len(jobs))
	for i, j := range jobs {
		out[i] = engine.Result{Job: j, Pair: fame.PairResult{TotalIPC: j.IterScale}}
	}
	return out, nil
}

func chaosJobs(n int) []engine.Job {
	jobs := make([]engine.Job, n)
	for i := range jobs {
		jobs[i].IterScale = 1 + float64(i)
	}
	return jobs
}

// TestBackendCrash pins the crash fault: half the batch executes, the
// rest comes back skipped with the injected cause, and the call itself
// fails — exactly a worker dying mid-batch.
func TestBackendCrash(t *testing.T) {
	inner := &fakeBackend{}
	b := WrapBackend(inner, NewInjector(Plan{Rules: []Rule{{Op: OpRun, Fault: FaultCrash, Count: 1}}}))
	if got := b.Name(); got != "chaos(fake)" {
		t.Fatalf("Name = %q", got)
	}

	var mu sync.Mutex
	reported := make(map[int]bool)
	out, err := b.RunProgress(context.Background(), chaosJobs(4), func(i int, r engine.Result) {
		mu.Lock()
		reported[i] = true
		mu.Unlock()
	})
	if err == nil || !strings.Contains(err.Error(), "injected worker crash") {
		t.Fatalf("crash run error = %v, want injected crash", err)
	}
	if len(out) != 4 {
		t.Fatalf("got %d results, want 4", len(out))
	}
	for i, r := range out[:2] {
		if r.Err != nil || r.Skipped || r.Pair.TotalIPC != 1+float64(i) {
			t.Fatalf("executed job %d = %+v", i, r)
		}
	}
	for i, r := range out[2:] {
		if !r.Skipped || r.Err == nil {
			t.Fatalf("stranded job %d = %+v, want skipped with cause", 2+i, r)
		}
	}
	for i := 0; i < 4; i++ {
		if !reported[i] {
			t.Fatalf("done callback never fired for job %d", i)
		}
	}

	// Count: 1 — the next batch passes through whole.
	out, err = b.Run(context.Background(), chaosJobs(3))
	if err != nil {
		t.Fatalf("post-cap run: %v", err)
	}
	for i, r := range out {
		if r.Err != nil || r.Skipped {
			t.Fatalf("post-cap job %d = %+v", i, r)
		}
	}
}

// TestBackendSkip pins the silent-drop fault: stranded jobs are skipped
// but the call succeeds — no backend-level error for the engine to act
// on, exactly the shape the daemon's requeue path must absorb.
func TestBackendSkip(t *testing.T) {
	b := WrapBackend(&fakeBackend{}, NewInjector(Plan{Rules: []Rule{{Op: OpRun, Fault: FaultSkip, Count: 1}}}))
	out, err := b.Run(context.Background(), chaosJobs(4))
	if err != nil {
		t.Fatalf("skip fault must not fail the call: %v", err)
	}
	skipped := 0
	for _, r := range out {
		if r.Skipped {
			skipped++
			if r.Err == nil {
				t.Fatalf("skipped result carries no cause: %+v", r)
			}
		}
	}
	if skipped != 2 {
		t.Fatalf("%d jobs skipped, want 2", skipped)
	}
}

// TestBackendSlow pins the straggler fault: the batch completes intact,
// later than the injected delay — and a dead context cuts the stall
// short with everything skipped.
func TestBackendSlow(t *testing.T) {
	delay := 30 * time.Millisecond
	plan := Plan{Rules: []Rule{{Op: OpRun, Fault: FaultSlow, Delay: Duration(delay), Count: 1}}}

	b := WrapBackend(&fakeBackend{}, NewInjector(plan))
	start := time.Now()
	out, err := b.Run(context.Background(), chaosJobs(2))
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < delay {
		t.Fatalf("slow run finished in %s, want >= %s", elapsed, delay)
	}
	for i, r := range out {
		if r.Err != nil || r.Skipped {
			t.Fatalf("delayed job %d = %+v, want intact result", i, r)
		}
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	out, err = WrapBackend(&fakeBackend{}, NewInjector(plan)).Run(ctx, chaosJobs(2))
	if err != nil {
		t.Fatalf("cancelled slow run must not fail the call: %v", err)
	}
	for i, r := range out {
		if !r.Skipped {
			t.Fatalf("cancelled job %d = %+v, want skipped", i, r)
		}
	}
}
