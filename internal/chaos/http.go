package chaos

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"
)

// Transport wraps an http.RoundTripper with OpHTTP faults on outgoing
// requests: connection resets before the request leaves, injected
// delays, synthesized 500s, and response bodies cut mid-stream (matched
// against the request's URL path).
type Transport struct {
	inner http.RoundTripper
	inj   *Injector
}

// WrapTransport decorates a transport (nil = http.DefaultTransport).
func WrapTransport(rt http.RoundTripper, inj *Injector) *Transport {
	if rt == nil {
		rt = http.DefaultTransport
	}
	return &Transport{inner: rt, inj: inj}
}

// defaultTruncateBytes is how much body survives FaultTruncate when the
// rule sets no byte count — enough for a stream header plus a result or
// two, so truncation lands mid-stream rather than before it opens.
const defaultTruncateBytes = 512

// RoundTrip implements http.RoundTripper.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	d := t.inj.decide(OpHTTP, req.URL.Path)
	if d == nil {
		return t.inner.RoundTrip(req)
	}
	switch d.fault {
	case FaultConnReset:
		if req.Body != nil {
			req.Body.Close()
		}
		return nil, fmt.Errorf("chaos: injected connection reset on %s (rule %d)", req.URL.Path, d.rule)
	case FaultSlow:
		select {
		case <-time.After(d.delay):
		case <-req.Context().Done():
			if req.Body != nil {
				req.Body.Close()
			}
			return nil, req.Context().Err()
		}
		return t.inner.RoundTrip(req)
	case FaultHTTP500:
		if req.Body != nil {
			req.Body.Close()
		}
		return &http.Response{
			Status:     "500 Internal Server Error",
			StatusCode: http.StatusInternalServerError,
			Proto:      "HTTP/1.1",
			ProtoMajor: 1,
			ProtoMinor: 1,
			Header:     make(http.Header),
			Body:       io.NopCloser(strings.NewReader(fmt.Sprintf("chaos: injected 500 on %s (rule %d)\n", req.URL.Path, d.rule))),
			Request:    req,
		}, nil
	case FaultTruncate:
		resp, err := t.inner.RoundTrip(req)
		if err != nil {
			return resp, err
		}
		remain := d.bytes
		if remain <= 0 {
			remain = defaultTruncateBytes
		}
		resp.Body = &truncatedBody{rc: resp.Body, remain: remain}
		resp.ContentLength = -1
		return resp, nil
	default:
		return t.inner.RoundTrip(req)
	}
}

// truncatedBody yields the first remain bytes, then fails the read the
// way a dropped connection does.
type truncatedBody struct {
	rc     io.ReadCloser
	remain int64
}

func (b *truncatedBody) Read(p []byte) (int, error) {
	if b.remain <= 0 {
		return 0, io.ErrUnexpectedEOF
	}
	if int64(len(p)) > b.remain {
		p = p[:b.remain]
	}
	n, err := b.rc.Read(p)
	b.remain -= int64(n)
	if err == nil && b.remain <= 0 {
		err = io.ErrUnexpectedEOF
	}
	return n, err
}

func (b *truncatedBody) Close() error { return b.rc.Close() }

// Middleware wraps an HTTP handler with OpHTTP faults on incoming
// requests: delays before handling, 500 replies, connections aborted
// mid-response, and responses cut after a byte budget. Wrap a worker's
// or daemon's handler with it to inject faults on the serving side of
// the wire (p5worker -chaos does exactly this).
func Middleware(next http.Handler, inj *Injector) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		d := inj.decide(OpHTTP, r.URL.Path)
		if d == nil {
			next.ServeHTTP(w, r)
			return
		}
		switch d.fault {
		case FaultSlow:
			select {
			case <-time.After(d.delay):
			case <-r.Context().Done():
				return
			}
			next.ServeHTTP(w, r)
		case FaultHTTP500:
			http.Error(w, fmt.Sprintf("chaos: injected 500 on %s (rule %d)", r.URL.Path, d.rule), http.StatusInternalServerError)
		case FaultConnReset:
			// ErrAbortHandler makes the server drop the connection
			// without a reply or a logged stack — the client sees the
			// exchange die mid-air, exactly like a reset.
			panic(http.ErrAbortHandler)
		case FaultTruncate:
			remain := d.bytes
			if remain <= 0 {
				remain = defaultTruncateBytes
			}
			tw := &truncatingWriter{w: w, remain: remain}
			next.ServeHTTP(tw, r)
			if tw.tripped {
				panic(http.ErrAbortHandler)
			}
		default:
			next.ServeHTTP(w, r)
		}
	})
}

// truncatingWriter passes through remain bytes, then fails writes and
// marks itself tripped so Middleware aborts the connection — the client
// observes a stream cut mid-line, not a clean end-of-body.
type truncatingWriter struct {
	w       http.ResponseWriter
	remain  int64
	tripped bool
}

func (t *truncatingWriter) Header() http.Header { return t.w.Header() }

func (t *truncatingWriter) WriteHeader(code int) { t.w.WriteHeader(code) }

func (t *truncatingWriter) Write(p []byte) (int, error) {
	if t.tripped {
		return 0, io.ErrClosedPipe
	}
	if int64(len(p)) > t.remain {
		p = p[:t.remain]
		t.tripped = true
	}
	n, err := t.w.Write(p)
	t.remain -= int64(n)
	if err == nil && t.tripped {
		if f, ok := t.w.(http.Flusher); ok {
			f.Flush() // push the partial bytes out before the abort
		}
		err = io.ErrClosedPipe
	}
	return n, err
}

// Flush forwards to the wrapped writer (the NDJSON stream flushes per
// event).
func (t *truncatingWriter) Flush() {
	if f, ok := t.w.(http.Flusher); ok {
		f.Flush()
	}
}
