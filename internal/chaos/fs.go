package chaos

import (
	"errors"
	"fmt"

	"power5prio/internal/cachestore"
)

// PutHook returns a cachestore put hook driven by the injector's OpPut
// rules (matched against the entry key's hex spelling). FaultENOSPC
// fails the write the way a full disk does; FaultTornWrite persists
// only an entry prefix, which the store's checksum must detect on the
// next read. Install with cachestore.WithPutHook or Store.SetPutHook.
func PutHook(inj *Injector) cachestore.PutHook {
	return func(k cachestore.Key, encoded []byte) ([]byte, error) {
		d := inj.decide(OpPut, k.String())
		if d == nil {
			return encoded, nil
		}
		switch d.fault {
		case FaultENOSPC:
			return nil, fmt.Errorf("chaos: injected write failure (rule %d): %w", d.rule, errNoSpace)
		case FaultTornWrite:
			n := d.bytes
			if n <= 0 || n >= int64(len(encoded)) {
				n = int64(len(encoded)) / 2
			}
			return encoded[:n], nil
		default:
			return encoded, nil
		}
	}
}

// errNoSpace mirrors the OS's ENOSPC message without importing
// syscall, keeping the shim portable.
var errNoSpace = errors.New("no space left on device")
