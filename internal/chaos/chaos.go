// Package chaos is the deterministic fault-injection harness for the
// serving stack: a seeded fault plan drives decorators wrapped around
// the stack's existing seams — an engine.Backend (worker crash
// mid-batch, straggler, skip-without-error), an http.RoundTripper and
// server middleware (connection reset, mid-stream truncation, delayed
// responses, 5xx bursts), and a cachestore put hook (full disk, torn
// writes) — so resilience is tested systematically instead of
// anecdotally.
//
// Determinism is the point: every fault decision is a pure function of
// (plan seed, rule index, per-rule match ordinal), not of wall clock or
// a shared RNG stream, so a failing schedule replays exactly from its
// seed even when goroutine interleavings differ between runs. The soak
// test in this package drives clients, workers and the daemon through a
// seeded schedule and asserts the merged results are byte-identical to
// a fault-free run — the repo's determinism contract, under fire.
package chaos

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
	"sync"
	"time"
)

// Op names the seam a rule attaches to.
type Op string

const (
	// OpRun matches one Backend.Run/RunProgress call (target: the
	// wrapped backend's Name).
	OpRun Op = "run"
	// OpHTTP matches one HTTP request, on the client RoundTripper or
	// the server middleware (target: the request's URL path).
	OpHTTP Op = "http"
	// OpPut matches one cachestore entry write (target: the entry key
	// in hex).
	OpPut Op = "put"
)

// Fault names what happens when a rule fires.
type Fault string

const (
	// FaultCrash (OpRun) executes half the batch, then fails the rest
	// as skipped with a backend-level error — a worker dying mid-batch.
	FaultCrash Fault = "crash"
	// FaultSkip (OpRun) executes half the batch and returns the rest
	// skipped *without* a backend error — work silently not attempted.
	FaultSkip Fault = "skip"
	// FaultSlow (OpRun, OpHTTP) delays the call by Delay — a straggler.
	FaultSlow Fault = "slow"
	// FaultConnReset (OpHTTP) fails the exchange at the transport:
	// the RoundTripper errors without sending, the middleware aborts
	// the connection mid-handling.
	FaultConnReset Fault = "conn-reset"
	// FaultTruncate (OpHTTP) cuts the response body after Bytes bytes —
	// a mid-NDJSON-stream disconnect.
	FaultTruncate Fault = "truncate"
	// FaultHTTP500 (OpHTTP) replaces the response with a 500 (pair
	// with Count for a burst).
	FaultHTTP500 Fault = "http-500"
	// FaultENOSPC (OpPut) fails the entry write as a full disk would.
	FaultENOSPC Fault = "enospc"
	// FaultTornWrite (OpPut) persists only a prefix of the entry — a
	// write torn by power loss; the store's checksum must catch it.
	FaultTornWrite Fault = "torn-write"
)

// Duration is a time.Duration that unmarshals from JSON strings like
// "50ms", so plan files stay readable.
type Duration time.Duration

// Std converts to the standard library type.
func (d Duration) Std() time.Duration { return time.Duration(d) }

// MarshalJSON renders the duration as a string.
func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

// UnmarshalJSON accepts a duration string or integer nanoseconds.
func (d *Duration) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err == nil {
		v, err := time.ParseDuration(s)
		if err != nil {
			return fmt.Errorf("chaos: bad duration %q: %w", s, err)
		}
		*d = Duration(v)
		return nil
	}
	var n int64
	if err := json.Unmarshal(b, &n); err != nil {
		return fmt.Errorf("chaos: duration must be a string like \"50ms\" or integer nanoseconds, got %s", b)
	}
	*d = Duration(n)
	return nil
}

// Rule arms one fault at one seam. Matching is by Op plus an optional
// Target substring; firing is gated by After (skip the first matches),
// Count (fire at most this many times) and P (probability per match).
type Rule struct {
	Op     Op     `json:"op"`
	Target string `json:"target,omitempty"` // substring of backend name / URL path / entry key; empty matches all
	Fault  Fault  `json:"fault"`
	// P is the per-match firing probability in (0,1); 0 (and >= 1)
	// means every match past After fires — the deterministic form used
	// for counted schedules.
	P float64 `json:"p,omitempty"`
	// After skips the first After matches before the rule may fire.
	After int `json:"after,omitempty"`
	// Count caps total firings (0 = unlimited).
	Count int `json:"count,omitempty"`
	// Delay is the stall length for FaultSlow.
	Delay Duration `json:"delay,omitempty"`
	// Bytes is how much body/entry survives FaultTruncate/FaultTornWrite
	// (0 picks a fault-specific default).
	Bytes int64 `json:"bytes,omitempty"`
}

// Plan is one reproducible fault schedule. The zero plan injects
// nothing.
type Plan struct {
	Seed  int64  `json:"seed"`
	Rules []Rule `json:"rules"`
}

// Validate rejects rules with unknown ops or faults, and faults armed
// on a seam that cannot express them.
func (p Plan) Validate() error {
	valid := map[Op][]Fault{
		OpRun:  {FaultCrash, FaultSkip, FaultSlow},
		OpHTTP: {FaultConnReset, FaultTruncate, FaultHTTP500, FaultSlow},
		OpPut:  {FaultENOSPC, FaultTornWrite},
	}
	for i, r := range p.Rules {
		faults, ok := valid[r.Op]
		if !ok {
			return fmt.Errorf("chaos: rule %d: unknown op %q", i, r.Op)
		}
		found := false
		for _, f := range faults {
			if f == r.Fault {
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("chaos: rule %d: fault %q cannot fire on op %q", i, r.Fault, r.Op)
		}
		if r.Fault == FaultSlow && r.Delay <= 0 {
			return fmt.Errorf("chaos: rule %d: %q needs a positive delay", i, FaultSlow)
		}
	}
	return nil
}

// Load reads a JSON plan file and validates it.
func Load(path string) (Plan, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return Plan{}, fmt.Errorf("chaos: load plan: %w", err)
	}
	var p Plan
	dec := json.NewDecoder(strings.NewReader(string(raw)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&p); err != nil {
		return Plan{}, fmt.Errorf("chaos: load plan %s: %w", path, err)
	}
	if err := p.Validate(); err != nil {
		return Plan{}, fmt.Errorf("chaos: plan %s: %w", path, err)
	}
	return p, nil
}

// Injector makes the fault decisions for one plan. One injector may be
// shared by every decorator in a process (all methods are safe for
// concurrent use); decisions for each rule depend only on the plan seed
// and that rule's own match ordinal, so two rules never perturb each
// other's schedules and concurrent seams stay independently
// reproducible.
type Injector struct {
	plan Plan

	mu      sync.Mutex
	matched []uint64 // per-rule match ordinal (next match's n)
	fired   []int    // per-rule firings so far
}

// NewInjector builds an injector for the plan. It panics on an invalid
// plan (Load has already validated file-loaded ones).
func NewInjector(p Plan) *Injector {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	return &Injector{
		plan:    p,
		matched: make([]uint64, len(p.Rules)),
		fired:   make([]int, len(p.Rules)),
	}
}

// Fired reports how many times rule r has fired.
func (in *Injector) Fired(r int) int {
	in.mu.Lock()
	defer in.mu.Unlock()
	if r < 0 || r >= len(in.fired) {
		return 0
	}
	return in.fired[r]
}

// TotalFired reports firings across every rule.
func (in *Injector) TotalFired() int {
	in.mu.Lock()
	defer in.mu.Unlock()
	n := 0
	for _, f := range in.fired {
		n += f
	}
	return n
}

// decision is one armed fault handed to a decorator.
type decision struct {
	rule  int
	fault Fault
	delay time.Duration
	bytes int64
}

// decide consumes one match at the seam and returns the fault to
// inject, or nil to pass through. Every rule matching (op, target)
// advances its own ordinal whether or not it fires; the first rule that
// fires wins the call.
func (in *Injector) decide(op Op, target string) *decision {
	in.mu.Lock()
	defer in.mu.Unlock()
	var hit *decision
	for r := range in.plan.Rules {
		rule := &in.plan.Rules[r]
		if rule.Op != op {
			continue
		}
		if rule.Target != "" && !strings.Contains(target, rule.Target) {
			continue
		}
		n := in.matched[r]
		in.matched[r]++
		if hit != nil {
			continue // a prior rule won this call; ordinal still consumed
		}
		if n < uint64(rule.After) {
			continue
		}
		if rule.Count > 0 && in.fired[r] >= rule.Count {
			continue
		}
		if rule.P > 0 && rule.P < 1 && chance(in.plan.Seed, r, n) >= rule.P {
			continue
		}
		in.fired[r]++
		hit = &decision{rule: r, fault: rule.Fault, delay: rule.Delay.Std(), bytes: rule.Bytes}
	}
	return hit
}

// chance maps (seed, rule, match ordinal) to a uniform [0,1) value via
// a splitmix64-style mix — stateless, so the decision for a rule's nth
// match is identical whatever order concurrent seams reach it.
func chance(seed int64, rule int, n uint64) float64 {
	x := uint64(seed)
	x ^= uint64(rule+1) * 0x9E3779B97F4A7C15
	x += (n + 1) * 0xBF58476D1CE4E5B9
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return float64(x>>11) / float64(1<<53)
}
