package core

import (
	"testing"

	"power5prio/internal/isa"
	"power5prio/internal/microbench"
	"power5prio/internal/prio"
)

// benchKernel builds a fresh kernel per machine: kernels with pattern
// closures carry state and must never be shared between chips.
func benchKernel(b *testing.B, name string) *isa.Kernel {
	b.Helper()
	k, err := microbench.BuildWith(name, microbench.Params{Iters: 16})
	if err != nil {
		b.Fatal(err)
	}
	return k
}

// simulate advances the chip by exactly b.N simulated cycles, through
// the event wheel when advance is set and by pure stepping otherwise,
// and reports simulated throughput.
func simulate(b *testing.B, name string, advance bool) {
	ch := NewChip(DefaultConfig())
	ch.PlacePair(benchKernel(b, name), benchKernel(b, name),
		prio.Medium, prio.Medium, prio.Supervisor)
	c := ch.ExperimentCore()
	b.ResetTimer()
	target := c.Cycle() + uint64(b.N)
	for c.Cycle() < target {
		if advance && ch.AdvanceToNextEvent(target) > 0 {
			continue
		}
		ch.Step()
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "sim_cycles/s")
}

// BenchmarkAdvanceBusy pins the busy-path cost of the event wheel: a
// CPU-bound pair decodes nearly every cycle, so almost every
// AdvanceToNextEvent attempt must bail and fall through to Step. The
// removal of the failed-attempt backoff rides on this staying within
// noise of BenchmarkStepBusy — the O(1) decode-grant bail is the only
// extra work per busy cycle.
func BenchmarkAdvanceBusy(b *testing.B) { simulate(b, microbench.CPUInt, true) }

// BenchmarkStepBusy is the pure-stepping baseline for BenchmarkAdvanceBusy.
func BenchmarkStepBusy(b *testing.B) { simulate(b, microbench.CPUInt, false) }

// BenchmarkAdvanceMemPair exercises the profitable path: a memory-bound
// pair spends most cycles waiting on the LMQ and the miss throttle, so
// nearly every window is skipped in closed form.
func BenchmarkAdvanceMemPair(b *testing.B) { simulate(b, microbench.LdIntMem, true) }

// BenchmarkStepMemPair is the pure-stepping baseline for BenchmarkAdvanceMemPair.
func BenchmarkStepMemPair(b *testing.B) { simulate(b, microbench.LdIntMem, false) }
