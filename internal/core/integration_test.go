package core

import (
	"testing"

	"power5prio/internal/fame"
	"power5prio/internal/microbench"
	"power5prio/internal/prio"
)

// TestDeterminism: two identical runs produce bit-identical statistics.
// The simulator is single-goroutine and seeded; any divergence indicates
// hidden global state.
func TestDeterminism(t *testing.T) {
	run := func() (uint64, uint64, uint64) {
		ka, err := microbench.BuildWith(microbench.CPUInt, microbench.Params{Iters: 24})
		if err != nil {
			t.Fatal(err)
		}
		kb, err := microbench.BuildWith(microbench.BrMiss, microbench.Params{Iters: 24})
		if err != nil {
			t.Fatal(err)
		}
		ch := NewChip(DefaultConfig())
		ch.PlacePair(ka, kb, prio.High, prio.MediumLow, prio.User)
		for i := 0; i < 30000; i++ {
			ch.Step()
		}
		c := ch.ExperimentCore()
		return c.Stats(0).Instructions, c.Stats(1).Instructions, c.Stats(1).BranchMispredicts
	}
	a0, a1, am := run()
	b0, b1, bm := run()
	if a0 != b0 || a1 != b1 || am != bm {
		t.Errorf("non-deterministic: run1 (%d,%d,%d) vs run2 (%d,%d,%d)", a0, a1, am, b0, b1, bm)
	}
	if a0 == 0 || a1 == 0 {
		t.Fatal("no progress")
	}
}

// TestInstructionConservation: across a mix of workload pairs, retired
// instructions per completed repetition must exactly equal the kernel's
// dynamic length — squash/replay must neither lose nor duplicate work.
func TestInstructionConservation(t *testing.T) {
	if testing.Short() {
		t.Skip("integration sweep")
	}
	names := []string{microbench.CPUInt, microbench.BrMiss, microbench.LdIntL1, microbench.LdIntL2}
	for _, na := range names {
		for _, nb := range names {
			ka, err := microbench.BuildWith(na, microbench.Params{IterScale: 0.1})
			if err != nil {
				t.Fatal(err)
			}
			kb, err := microbench.BuildWith(nb, microbench.Params{IterScale: 0.1})
			if err != nil {
				t.Fatal(err)
			}
			ch := NewChip(DefaultConfig())
			ch.PlacePair(ka, kb, prio.MediumHigh, prio.MediumLow, prio.User)
			res := fame.Measure(ch, fame.Options{MinReps: 2, WarmupReps: 0, MaxCycles: 40_000_000})
			if res.TimedOut {
				t.Errorf("(%s,%s) timed out", na, nb)
				continue
			}
			if got, want := res.Thread[0].Instructions, res.Thread[0].Reps*ka.DynLen(); got != want {
				t.Errorf("(%s,%s): thread 0 retired %d, want %d", na, nb, got, want)
			}
			if got, want := res.Thread[1].Instructions, res.Thread[1].Reps*kb.DynLen(); got != want {
				t.Errorf("(%s,%s): thread 1 retired %d, want %d", na, nb, got, want)
			}
		}
	}
}

// TestDecodeGrantAccounting: the sum of decode slots granted to both
// threads can never exceed total cycles (one slot per cycle), and equals
// it when both threads are active at normal priorities.
func TestDecodeGrantAccounting(t *testing.T) {
	k, err := microbench.BuildWith(microbench.CPUInt, microbench.Params{Iters: 16})
	if err != nil {
		t.Fatal(err)
	}
	ch := NewChip(DefaultConfig())
	ch.PlacePair(k, k, prio.Medium, prio.Medium, prio.User)
	const cycles = 10000
	for i := 0; i < cycles; i++ {
		ch.Step()
	}
	c := ch.ExperimentCore()
	granted := c.Stats(0).DecodeGranted + c.Stats(1).DecodeGranted
	if granted != cycles {
		t.Errorf("granted %d slots over %d cycles; equal-priority SMT must grant every slot", granted, cycles)
	}
}

// TestSharesMatchFormula: measured decode-grant fractions track equation
// (1) within rounding for several priority pairs.
func TestSharesMatchFormula(t *testing.T) {
	pairs := [][2]prio.Level{{6, 4}, {6, 2}, {4, 5}, {2, 6}}
	for _, p := range pairs {
		k, err := microbench.BuildWith(microbench.CPUInt, microbench.Params{Iters: 16})
		if err != nil {
			t.Fatal(err)
		}
		ch := NewChip(DefaultConfig())
		ch.PlacePair(k, k, p[0], p[1], prio.User)
		const cycles = 64000
		for i := 0; i < cycles; i++ {
			ch.Step()
		}
		c := ch.ExperimentCore()
		g0 := float64(c.Stats(0).DecodeGranted)
		g1 := float64(c.Stats(1).DecodeGranted)
		frac := g0 / (g0 + g1)
		want := prio.Share(int(p[0]) - int(p[1]))
		if diff := frac - want; diff > 0.01 || diff < -0.01 {
			t.Errorf("(%d,%d): measured grant share %.4f, formula %.4f", p[0], p[1], frac, want)
		}
	}
}
