package core

import (
	"testing"

	"power5prio/internal/isa"
	"power5prio/internal/prio"
)

func TestPOWER6LikeConfigValid(t *testing.T) {
	if err := POWER6LikeConfig().Validate(); err != nil {
		t.Fatalf("POWER6LikeConfig invalid: %v", err)
	}
}

// TestPriorityEffectRobustAcrossPresets: the headline behaviour —
// prioritization shifting throughput between identical threads — holds on
// both machine presets.
func TestPriorityEffectRobustAcrossPresets(t *testing.T) {
	build := func() *isa.Kernel {
		b := isa.NewBuilder("k")
		a := b.Reg("a")
		one := b.Reg("one")
		for i := 0; i < 8; i++ {
			b.Op2(isa.OpIntAdd, a, iReg(i, a, one), one)
		}
		b.Branch(isa.BranchLoop, a)
		return b.MustBuild(16)
	}
	for _, cfg := range []Config{DefaultConfig(), POWER6LikeConfig()} {
		ch := NewChip(cfg)
		ch.PlacePair(build(), build(), prio.High, prio.Low, prio.User)
		c := ch.ExperimentCore()
		for i := 0; i < 20000; i++ {
			ch.Step()
		}
		hi, lo := c.Stats(0).Instructions, c.Stats(1).Instructions
		if hi <= 4*lo {
			t.Errorf("preset: prioritized thread %d vs victim %d; want a wide split", hi, lo)
		}
	}
}

// iReg alternates dependency targets so the kernel has some ILP.
func iReg(i int, a, one isa.Reg) isa.Reg {
	if i%2 == 0 {
		return a
	}
	return one
}
