// Package core assembles the chip-level simulator: a POWER5-like chip with
// two SMT cores sharing an L2/L3 hierarchy, plus convenience runners that
// place workloads on hardware threads the way the paper's methodology does
// (experiments run on the second core, with the first kept free of noise).
package core

import (
	"fmt"

	"power5prio/internal/isa"
	"power5prio/internal/mem"
	"power5prio/internal/pipeline"
	"power5prio/internal/prio"
)

// Thread base addresses keep co-scheduled workloads in disjoint address
// spaces, as separate processes would be.
const (
	BaseThread0 = uint64(0)
	BaseThread1 = uint64(1) << 42
)

// Config aggregates the chip configuration.
type Config struct {
	Mem  mem.Config
	Pipe pipeline.Config
	// ExperimentCore is the core used by the runners (the paper isolates
	// measurement on the second core).
	ExperimentCore int
}

// DefaultConfig returns the POWER5-like default chip.
func DefaultConfig() Config {
	return Config{
		Mem:            mem.DefaultConfig(),
		Pipe:           pipeline.DefaultConfig(),
		ExperimentCore: 1,
	}
}

// POWER6LikeConfig returns a sensitivity-analysis preset loosely modelled
// on the POWER6 (the paper notes it carries a similar priority mechanism):
// roughly twice the clock, so memory looks twice as far away, with a
// larger L2 and faster L3 attach. The priority conclusions should be
// robust under this preset; bench_test.go exercises it.
func POWER6LikeConfig() Config {
	cfg := DefaultConfig()
	cfg.Mem.L2 = mem.CacheConfig{SizeBytes: 4 << 20, Ways: 8, LineBytes: 128}
	cfg.Mem.LatL2 = 24
	cfg.Mem.LatL3 = 140
	cfg.Mem.LatMem = 460
	cfg.Mem.TLBWalkLat = 160
	cfg.Pipe.LatFPAdd = 7
	cfg.Pipe.LatFPMul = 7
	cfg.Pipe.MispredictPenalty = 10
	return cfg
}

// Validate checks the aggregate configuration.
func (c Config) Validate() error {
	if err := c.Mem.Validate(); err != nil {
		return err
	}
	if err := c.Pipe.Validate(); err != nil {
		return err
	}
	if c.ExperimentCore < 0 || c.ExperimentCore >= c.Mem.Cores {
		return fmt.Errorf("core: ExperimentCore %d out of range (%d cores)", c.ExperimentCore, c.Mem.Cores)
	}
	return nil
}

// Chip is one POWER5-like chip: cores plus the shared memory hierarchy.
type Chip struct {
	cfg   Config
	Hier  *mem.Hierarchy
	Cores []*pipeline.Core

	// skipDefer aims the next advance attempt at a known wake cycle
	// after a skippable-but-short window, so the analysis is not redone
	// on cycles the event wheel already proved uneventful. Which windows
	// get skipped never affects results, only wall-clock time.
	skipDefer uint64
}

// NewChip builds a chip. It panics on an invalid configuration.
func NewChip(cfg Config) *Chip {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	h := mem.NewHierarchy(cfg.Mem)
	ch := &Chip{cfg: cfg, Hier: h}
	for i := 0; i < cfg.Mem.Cores; i++ {
		ch.Cores = append(ch.Cores, pipeline.NewCore(cfg.Pipe, h, i))
	}
	return ch
}

// Config returns the chip configuration.
func (ch *Chip) Config() Config { return ch.cfg }

// ExperimentCore returns the core designated for measurements.
func (ch *Chip) ExperimentCore() *pipeline.Core { return ch.Cores[ch.cfg.ExperimentCore] }

// Step advances every core one cycle (cores are cycle-synchronous).
func (ch *Chip) Step() {
	for _, c := range ch.Cores {
		c.Step()
	}
}

// minSkip declines event windows shorter than this many cycles. By the
// time a window's length is known the analysis cost is already sunk, so
// the threshold is low: it only guards the closed-form jump itself.
// The decode-grant early bail inside pipeline.Core.NextEvent uses the
// same value to reject busy cores in O(1) before any queue walking. Any
// positive value is semantics-preserving.
const minSkip = 2

// AdvanceToNextEvent fast-forwards the whole chip to its next posted
// event: every core reports the earliest cycle at which its state can
// change (pipeline.Core.NextEvent — decode grants including the
// miss-throttle countdown, LMQ completions, dependency result times,
// pending-branch resolutions, redirect expiries, balance-window
// boundaries), and all cores jump to the minimum, never beyond bound
// cycles (measured on the cores' shared clock). It returns the number
// of cycles skipped, zero when any core has work due this cycle, the
// window is too short, or bound has been reached.
//
// There is no failed-attempt backoff: events are exact, so an attempt
// only comes back empty when work is genuinely due now — and busy
// cycles never reach the event computation at all, because a cycle
// that progressed (pipeline.Core.Progressed) cannot open a skippable
// window, which makes the busy path two flag loads. (The previous
// idle-only skipper needed an exponential backoff with a prime cap to
// avoid phase-locking against the power-of-two decode windows; exact
// events made it dead weight and it was removed — BenchmarkAdvanceBusy
// pins the busy-path cost against BenchmarkStepBusy.)
//
// Advancing is bit-identical to stepping: results, statistics and
// timeouts are unchanged, only wall-clock time is saved.
func (ch *Chip) AdvanceToNextEvent(bound uint64) uint64 {
	now := ch.Cores[0].Cycle()
	if bound <= now || now < ch.skipDefer {
		return 0
	}
	for _, c := range ch.Cores {
		if c.Progressed() {
			return 0
		}
	}
	wake := pipeline.NoEvent
	for _, c := range ch.Cores {
		w, ok := c.NextEvent(minSkip)
		if !ok {
			return 0
		}
		if w < wake {
			wake = w
		}
	}
	if wake > bound {
		wake = bound
	}
	if wake <= now || wake-now < minSkip {
		// Skippable but too short to jump: the wake cycle is when work
		// can resume, so aim the next attempt there.
		if wake > now {
			ch.skipDefer = wake
		}
		return 0
	}
	for _, c := range ch.Cores {
		c.FastForward(wake)
	}
	return wake - now
}

// PlacePair installs two kernels on the experiment core with the given
// priorities and software privilege. Either kernel may be nil to leave the
// corresponding hardware thread idle (single-thread runs). Streams marked
// Prewarm are pre-installed into the shared caches.
func (ch *Chip) PlacePair(ka, kb *isa.Kernel, pa, pb prio.Level, priv prio.Privilege) {
	c := ch.ExperimentCore()
	if ka != nil {
		c.SetWorkload(0, isa.NewStreamAt(ka, BaseThread0), priv)
	} else {
		c.SetWorkload(0, nil, priv)
		pa = prio.ThreadOff
	}
	if kb != nil {
		c.SetWorkload(1, isa.NewStreamAt(kb, BaseThread1), priv)
	} else {
		c.SetWorkload(1, nil, priv)
		pb = prio.ThreadOff
	}
	ch.prewarm(ka, kb)
	c.SetPriority(0, pa)
	c.SetPriority(1, pb)
}

// Place installs a kernel on an arbitrary (core, thread) context — used
// to model background noise on the non-experiment core, the situation the
// paper's methodology isolates away (Section 4.1). The address space
// offset keeps each context's footprint disjoint.
func (ch *Chip) Place(core, thread int, k *isa.Kernel, p prio.Level, priv prio.Privilege) {
	c := ch.Cores[core]
	base := uint64(core*2+thread+2) << 42
	c.SetWorkload(thread, isa.NewStreamAt(k, base), priv)
	c.SetPriority(thread, p)
	seen := map[uint64]bool{}
	for _, s := range k.Streams {
		if !s.Prewarm || seen[s.Base] {
			continue
		}
		seen[s.Base] = true
		for a := uint64(0); a < s.Footprint; a += isa.CacheLineSize {
			ch.Hier.Prefill(core, base+s.Base+a)
		}
	}
}

// prewarmRange is one contiguous footprint to pre-install.
type prewarmRange struct{ base, size uint64 }

// prewarm installs Prewarm-marked stream footprints of both kernels into
// the shared caches, interleaving lines across threads so neither starts
// with an LRU advantage when the combined footprints overflow a level.
func (ch *Chip) prewarm(ka, kb *isa.Kernel) {
	collect := func(k *isa.Kernel, base uint64) []prewarmRange {
		if k == nil {
			return nil
		}
		var out []prewarmRange
		seen := map[uint64]bool{}
		for _, s := range k.Streams {
			if !s.Prewarm || seen[s.Base] {
				continue
			}
			seen[s.Base] = true
			out = append(out, prewarmRange{base: base + s.Base, size: s.Footprint})
		}
		return out
	}
	fill := func(rs []prewarmRange, off uint64) bool {
		any := false
		for _, r := range rs {
			if off < r.size {
				ch.Hier.Prefill(ch.cfg.ExperimentCore, r.base+off)
				any = true
			}
		}
		return any
	}
	ra := collect(ka, BaseThread0)
	rb := collect(kb, BaseThread1)
	for off := uint64(0); ; off += isa.CacheLineSize {
		a := fill(ra, off)
		b := fill(rb, off)
		if !a && !b {
			return
		}
	}
}
