package core

import (
	"testing"

	"power5prio/internal/isa"
	"power5prio/internal/prio"
)

func buildTiny(t *testing.T) *isa.Kernel {
	t.Helper()
	b := isa.NewBuilder("tiny")
	a := b.Reg("a")
	b.Op2(isa.OpIntAdd, a, a, a)
	b.Branch(isa.BranchLoop, a)
	k, err := b.Build(8)
	if err != nil {
		t.Fatal(err)
	}
	return k
}

func TestDefaultConfigValid(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("DefaultConfig invalid: %v", err)
	}
}

func TestConfigValidateRejects(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ExperimentCore = 5
	if err := cfg.Validate(); err == nil {
		t.Error("accepted out-of-range ExperimentCore")
	}
	cfg = DefaultConfig()
	cfg.Mem.Cores = 0
	if err := cfg.Validate(); err == nil {
		t.Error("accepted invalid mem config")
	}
	cfg = DefaultConfig()
	cfg.Pipe.GCTEntries = 0
	if err := cfg.Validate(); err == nil {
		t.Error("accepted invalid pipeline config")
	}
}

func TestNewChipBuildsAllCores(t *testing.T) {
	ch := NewChip(DefaultConfig())
	if len(ch.Cores) != 2 {
		t.Fatalf("got %d cores, want 2", len(ch.Cores))
	}
	if ch.ExperimentCore() != ch.Cores[1] {
		t.Error("experiment core is not the second core (paper methodology)")
	}
}

func TestPlacePairAndRun(t *testing.T) {
	ch := NewChip(DefaultConfig())
	k := buildTiny(t)
	ch.PlacePair(k, k, prio.Medium, prio.Medium, prio.User)
	for i := 0; i < 2000; i++ {
		ch.Step()
	}
	c := ch.ExperimentCore()
	if c.Stats(0).Instructions == 0 || c.Stats(1).Instructions == 0 {
		t.Error("paired workloads made no progress")
	}
	// The noise core stays idle.
	if ch.Cores[0].Stats(0).Instructions != 0 {
		t.Error("noise core executed instructions")
	}
}

func TestPlacePairSingleThread(t *testing.T) {
	ch := NewChip(DefaultConfig())
	ch.PlacePair(buildTiny(t), nil, prio.Medium, prio.Medium, prio.User)
	c := ch.ExperimentCore()
	if c.Priority(1) != prio.ThreadOff {
		t.Errorf("idle thread priority = %v, want thread-off", c.Priority(1))
	}
	for i := 0; i < 500; i++ {
		ch.Step()
	}
	if c.Stats(0).Instructions == 0 {
		t.Error("single thread made no progress")
	}
}

func TestPlacePairPrewarm(t *testing.T) {
	ch := NewChip(DefaultConfig())
	b := isa.NewBuilder("warm")
	v := b.Reg("v")
	s := b.Stream(isa.StreamSpec{
		Kind: isa.StreamChase, Footprint: 256 << 10, Seed: 9, Prewarm: true,
	})
	b.Load(v, s, isa.Reg(-1))
	b.Branch(isa.BranchLoop, v)
	k, err := b.Build(16)
	if err != nil {
		t.Fatal(err)
	}
	ch.PlacePair(k, nil, prio.Medium, prio.Medium, prio.User)
	for i := 0; i < 4000; i++ {
		ch.Step()
	}
	// With prewarm, a 256KB chase must hit L2, never memory.
	st := ch.Hier.StatsFor(ch.Config().ExperimentCore, 0)
	if st.Hits[3] != 0 { // HitMem
		t.Errorf("prewarmed chase went to memory %d times", st.Hits[3])
	}
	if st.Hits[1] == 0 { // HitL2
		t.Error("prewarmed chase never hit L2")
	}
}

func TestBaseAddressesDisjoint(t *testing.T) {
	if BaseThread0 == BaseThread1 {
		t.Fatal("thread bases must differ")
	}
	// 1<<42 exceeds any configured footprint.
	if BaseThread1 < (1 << 32) {
		t.Error("thread 1 base too low; address spaces could overlap")
	}
}
