// Package cmdutil holds the flag plumbing shared by the p5* commands:
// CPU/heap profiling setup and the -fastforward switch. Commands are
// expected to call the returned stop function on every exit path that
// matters (os.Exit skips deferred functions).
package cmdutil

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	"power5prio/internal/fame"
)

// SetFastForward parses a -fastforward flag value (on|off, with
// true/false/1/0 accepted as spellings) and applies it globally. It
// exits with code 2 on anything else, prefixing messages with prog.
func SetFastForward(prog, v string) {
	switch v {
	case "on", "true", "1":
		fame.SetFastForward(true)
	case "off", "false", "0":
		fame.SetFastForward(false)
	default:
		fmt.Fprintf(os.Stderr, "%s: -fastforward must be on or off, got %q\n", prog, v)
		os.Exit(2)
	}
}

// StartProfiles begins CPU profiling (when cpu is non-empty) and
// returns the function that stops it and writes the heap profile (when
// mem is non-empty). Call the returned function exactly once before the
// process exits; it is safe to call when neither profile was requested.
func StartProfiles(prog, cpu, mem string) func() {
	if cpu != "" {
		f, err := os.Create(cpu)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", prog, err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", prog, err)
			os.Exit(1)
		}
	}
	return func() {
		if cpu != "" {
			pprof.StopCPUProfile()
		}
		if mem != "" {
			f, err := os.Create(mem)
			if err != nil {
				fmt.Fprintf(os.Stderr, "%s: %v\n", prog, err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "%s: %v\n", prog, err)
			}
		}
	}
}
