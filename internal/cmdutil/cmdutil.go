// Package cmdutil holds the flag plumbing shared by the p5* commands —
// the persistent cache directory, the fast-forward switch, CPU/heap
// profiling and the -remote worker-fleet wiring — so every command
// (including new ones like p5worker) spells them identically and gets
// them from one place. Commands are expected to call the returned stop
// function on every exit path that matters (os.Exit skips deferred
// functions).
package cmdutil

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"power5prio/internal/analytic"
	"power5prio/internal/cachestore"
	"power5prio/internal/engine"
	"power5prio/internal/fame"
	"power5prio/internal/remote"
	"power5prio/internal/service"
)

// Common carries the flag values every p5* command shares. Register
// with AddCommonFlags, then call Init after flag.Parse.
type Common struct {
	prog        string
	CacheDir    string
	FastForward string
	CPUProfile  string
	MemProfile  string
}

// AddCommonFlags registers the shared flags (-cache-dir, -fastforward,
// -cpuprofile, -memprofile) on fs and returns their destination.
func AddCommonFlags(prog string, fs *flag.FlagSet) *Common {
	c := &Common{prog: prog}
	fs.StringVar(&c.CacheDir, "cache-dir", "", "persist simulation results in this directory (reused across runs, shareable between commands and workers)")
	fs.StringVar(&c.FastForward, "fastforward", "on", "idle-cycle fast-forward: on|off (results are identical either way; off for A/B debugging)")
	fs.StringVar(&c.CPUProfile, "cpuprofile", "", "write a CPU profile to this file")
	fs.StringVar(&c.MemProfile, "memprofile", "", "write a heap profile to this file on exit")
	return c
}

// Init applies the parsed shared flags: it installs the fast-forward
// setting and opens the persistent cache when -cache-dir was given
// (exiting with a message when the directory cannot be opened — a cache
// the user asked for must not be silently dropped). The returned store
// is nil without -cache-dir. Profiling is started separately with
// StartProfiles so commands with administrative early exits can defer
// it past them.
func (c *Common) Init() *cachestore.Store {
	SetFastForward(c.prog, c.FastForward)
	if c.CacheDir == "" {
		return nil
	}
	store, err := cachestore.Open(c.CacheDir)
	if err != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", c.prog, err)
		os.Exit(1)
	}
	return store
}

// StartProfiles starts the profiles the shared flags requested; call
// the returned stop function exactly once before the process exits.
func (c *Common) StartProfiles() func() {
	return StartProfiles(c.prog, c.CPUProfile, c.MemProfile)
}

// ParseRemote splits a -remote value ("host:port[,host:port...]", or
// full http:// URLs) into worker addresses, exiting with code 2 when
// none remain.
func ParseRemote(prog, spec string) []string {
	var addrs []string
	for _, p := range strings.Split(spec, ",") {
		if p = strings.TrimSpace(p); p != "" {
			addrs = append(addrs, p)
		}
	}
	if len(addrs) == 0 {
		fmt.Fprintf(os.Stderr, "%s: -remote needs at least one worker address (host:port[,host:port...])\n", prog)
		os.Exit(2)
	}
	return addrs
}

// healthWait bounds how long RemoteBackend waits for workers to come
// up — long enough for a fleet started moments earlier (e.g. by a CI
// script) to bind its sockets, short enough that a typo fails fast.
const healthWait = 5 * time.Second

// RemoteBackend builds the sharded fleet backend for a -remote value
// and health-checks the fleet before any job is risked, retrying
// briefly so a worker still binding its socket is not declared dead.
// It waits for the *full* fleet within the grace window, but a fleet
// that never completes starts degraded rather than failing: the
// circuit breaker exists precisely so the survivors serve the sweep
// while dead workers are excluded (and rejoin via re-probe). Each dead
// worker is reported as a warning; only a fleet with no reachable
// worker at all exits with an error.
func RemoteBackend(ctx context.Context, prog, spec string) *remote.ShardedBackend {
	addrs := ParseRemote(prog, spec)
	b := remote.New(addrs...)
	deadline := time.Now().Add(healthWait)
	for {
		alive, down := b.FleetHealth(ctx)
		if alive == len(addrs) {
			return b
		}
		if time.Now().After(deadline) || ctx.Err() != nil {
			if alive == 0 {
				fmt.Fprintf(os.Stderr, "%s: no worker reachable (%d probed):\n", prog, len(addrs))
				for _, err := range down {
					fmt.Fprintf(os.Stderr, "%s:   %v\n", prog, err)
				}
				os.Exit(1)
			}
			fmt.Fprintf(os.Stderr, "%s: warning: fleet degraded, %d of %d workers reachable; continuing (dead workers rejoin via re-probe):\n",
				prog, alive, len(addrs))
			for _, err := range down {
				fmt.Fprintf(os.Stderr, "%s:   %v\n", prog, err)
			}
			return b
		}
		time.Sleep(200 * time.Millisecond)
	}
}

// ServiceBackend builds the client backend for a -submit value (a p5d
// daemon address), health-checking the daemon with the same grace
// window RemoteBackend gives a fleet. clientID names the tenant for
// the daemon's fair scheduling ("" = a per-process default).
func ServiceBackend(ctx context.Context, prog, addr, clientID string) *service.Client {
	c := service.NewClient(addr, service.WithClientID(clientID))
	deadline := time.Now().Add(healthWait)
	for {
		err := c.Healthy(ctx)
		if err == nil {
			return c
		}
		if time.Now().After(deadline) || ctx.Err() != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", prog, err)
			os.Exit(1)
		}
		time.Sleep(200 * time.Millisecond)
	}
}

// EstimateFlagHelp is the shared usage string for the -estimate flag
// the measurement commands register.
const EstimateFlagHelp = "tier-0 analytical answers: off|always|default|<tolerance> — serve model predictions whose error bar (absolute per-thread IPC) is within the tolerance; \"default\" uses the committed calibration bound. Estimated results are flagged and never cached."

// ParseEstimate parses an -estimate flag value into the engine mode it
// names: "off" (exact answers only), "always" (serve every answer the
// model offers), "default" (accept error bars up to the committed
// calibration tolerance, so every in-domain pair is served by tier 0),
// or a number — the largest error bar, in absolute per-thread IPC, to
// accept before escalating to simulation. It exits with code 2 on
// anything else, prefixing the message with prog.
func ParseEstimate(prog, v string) engine.EstimateMode {
	switch v {
	case "off":
		return engine.EstimateOff()
	case "always":
		return engine.EstimateAlways()
	case "default":
		return engine.EstimateTolerance(analytic.DefaultTolerance())
	}
	tol, err := strconv.ParseFloat(v, 64)
	if err != nil || tol < 0 {
		fmt.Fprintf(os.Stderr, "%s: -estimate must be off, always, default or a non-negative error-bar tolerance, got %q\n", prog, v)
		os.Exit(2)
	}
	return engine.EstimateTolerance(tol)
}

// SetFastForward parses a -fastforward flag value (on|off, with
// true/false/1/0 accepted as spellings) and applies it globally. It
// exits with code 2 on anything else, prefixing messages with prog.
func SetFastForward(prog, v string) {
	switch v {
	case "on", "true", "1":
		fame.SetFastForward(true)
	case "off", "false", "0":
		fame.SetFastForward(false)
	default:
		fmt.Fprintf(os.Stderr, "%s: -fastforward must be on or off, got %q\n", prog, v)
		os.Exit(2)
	}
}

// StartProfiles begins CPU profiling (when cpu is non-empty) and
// returns the function that stops it and writes the heap profile (when
// mem is non-empty). Call the returned function exactly once before the
// process exits; it is safe to call when neither profile was requested.
func StartProfiles(prog, cpu, mem string) func() {
	if cpu != "" {
		f, err := os.Create(cpu)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", prog, err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", prog, err)
			os.Exit(1)
		}
	}
	return func() {
		if cpu != "" {
			pprof.StopCPUProfile()
		}
		if mem != "" {
			f, err := os.Create(mem)
			if err != nil {
				fmt.Fprintf(os.Stderr, "%s: %v\n", prog, err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "%s: %v\n", prog, err)
			}
		}
	}
}
