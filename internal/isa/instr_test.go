package isa

import "testing"

func TestOpString(t *testing.T) {
	cases := map[Op]string{
		OpNop: "nop", OpIntAdd: "intadd", OpIntMul: "intmul", OpIntDiv: "intdiv",
		OpFPAdd: "fpadd", OpFPMul: "fpmul", OpLoad: "load", OpStore: "store",
		OpBranch: "branch", OpPrioSet: "prioset",
	}
	for op, want := range cases {
		if got := op.String(); got != want {
			t.Errorf("Op(%d).String() = %q, want %q", op, got, want)
		}
	}
	if got := Op(200).String(); got != "op(200)" {
		t.Errorf("unknown op String() = %q", got)
	}
}

func TestUnitOf(t *testing.T) {
	cases := map[Op]Unit{
		OpNop: UnitFX, OpIntAdd: UnitFX, OpIntMul: UnitFX, OpIntDiv: UnitFX,
		OpPrioSet: UnitFX,
		OpFPAdd:   UnitFP, OpFPMul: UnitFP,
		OpLoad: UnitLS, OpStore: UnitLS,
		OpBranch: UnitBR,
	}
	for op, want := range cases {
		if got := UnitOf(op); got != want {
			t.Errorf("UnitOf(%v) = %v, want %v", op, got, want)
		}
	}
}

func TestUnitString(t *testing.T) {
	names := map[Unit]string{UnitFX: "FX", UnitLS: "LS", UnitFP: "FP", UnitBR: "BR"}
	for u, want := range names {
		if got := u.String(); got != want {
			t.Errorf("Unit(%d).String() = %q, want %q", u, got, want)
		}
	}
}
