package isa

import (
	"strings"
	"testing"
)

// buildAccum builds a tiny accumulator loop:
//
//	t = x * x     (independent per iteration)
//	a = a + t     (loop-carried chain)
//	branch loop
func buildAccum(t *testing.T, iters int) *Kernel {
	t.Helper()
	b := NewBuilder("accum")
	x := b.Reg("x")
	tmp := b.Reg("tmp")
	a := b.Reg("a")
	b.Op2(OpIntMul, tmp, x, x)
	b.Op2(OpIntAdd, a, a, tmp)
	b.Branch(BranchLoop, a)
	k, err := b.Build(iters)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return k
}

func TestBuilderDistances(t *testing.T) {
	k := buildAccum(t, 4)
	if len(k.Body) != 3 {
		t.Fatalf("body length = %d, want 3", len(k.Body))
	}
	// tmp = x*x: x never written -> loop invariant -> no deps.
	if k.Body[0].DepA != NoDep || k.Body[0].DepB != NoDep {
		t.Errorf("mul deps = (%d,%d), want (NoDep,NoDep)", k.Body[0].DepA, k.Body[0].DepB)
	}
	// a = a + tmp: a last written at body[1] of previous iteration ->
	// distance = 1 + (3-1) = 3; tmp written at body[0] -> distance 1.
	if k.Body[1].DepA != 3 {
		t.Errorf("add DepA (loop-carried a) = %d, want 3", k.Body[1].DepA)
	}
	if k.Body[1].DepB != 1 {
		t.Errorf("add DepB (tmp) = %d, want 1", k.Body[1].DepB)
	}
	// branch reads a, written one slot earlier.
	if k.Body[2].DepA != 1 {
		t.Errorf("branch DepA = %d, want 1", k.Body[2].DepA)
	}
}

func TestBuilderIntraIterationDistance(t *testing.T) {
	b := NewBuilder("seq")
	a := b.Reg("a")
	c := b.Reg("c")
	b.Op2(OpIntAdd, a, a, a) // body[0] writes a
	b.Nop()                  // body[1]
	b.Op2(OpIntAdd, c, a, a) // body[2] reads a -> distance 2
	k, err := b.Build(1)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if k.Body[2].DepA != 2 || k.Body[2].DepB != 2 {
		t.Errorf("deps = (%d,%d), want (2,2)", k.Body[2].DepA, k.Body[2].DepB)
	}
}

func TestBuilderUndeclaredRegister(t *testing.T) {
	b := NewBuilder("bad")
	a := b.Reg("a")
	b.Op2(OpIntAdd, a, Reg(42), a)
	if _, err := b.Build(1); err == nil {
		t.Fatal("Build accepted undeclared register")
	}
}

func TestBuilderEmptyBody(t *testing.T) {
	b := NewBuilder("empty")
	if _, err := b.Build(1); err == nil {
		t.Fatal("Build accepted empty body")
	}
}

func TestKernelValidate(t *testing.T) {
	valid := buildAccum(t, 2)
	if err := valid.Validate(); err != nil {
		t.Fatalf("valid kernel rejected: %v", err)
	}

	tests := []struct {
		name string
		mut  func(*Kernel)
		want string
	}{
		{"zero iters", func(k *Kernel) { k.Iters = 0 }, "Iters"},
		{"empty body", func(k *Kernel) { k.Body = nil }, "empty body"},
		{"bad depA", func(k *Kernel) { k.Body[0].DepA = 0 }, "DepA"},
		{"bad depB", func(k *Kernel) { k.Body[0].DepB = -7 }, "DepB"},
		{"branch kind on non-branch", func(k *Kernel) { k.Body[0].Branch = BranchLoop }, "non-branch"},
		{"branch without kind", func(k *Kernel) { k.Body[2].Branch = BranchNone }, "BranchNone"},
		{"bad priority", func(k *Kernel) {
			k.Body[0] = Template{Op: OpPrioSet, DepA: NoDep, DepB: NoDep, Stream: -1, Prio: 9}
		}, "priority"},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			k := buildAccum(t, 2)
			tc.mut(k)
			err := k.Validate()
			if err == nil {
				t.Fatalf("Validate accepted %s", tc.name)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestKernelValidateStreams(t *testing.T) {
	b := NewBuilder("mem")
	a := b.Reg("a")
	s := b.Stream(StreamSpec{Kind: StreamChase, Footprint: 4096})
	b.Load(a, s, regNone)
	b.Branch(BranchLoop, a)
	k, err := b.Build(2)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}

	k.Body[0].Stream = 5
	if err := k.Validate(); err == nil {
		t.Error("Validate accepted out-of-range stream index")
	}
	k.Body[0].Stream = 0
	k.Streams[0].Footprint = 0
	if err := k.Validate(); err == nil {
		t.Error("Validate accepted zero footprint")
	}
	k.Streams[0] = StreamSpec{Kind: StreamStride, Footprint: 4096, Stride: 0}
	if err := k.Validate(); err == nil {
		t.Error("Validate accepted zero stride")
	}
}

func TestDynLen(t *testing.T) {
	k := buildAccum(t, 7)
	if got, want := k.DynLen(), uint64(21); got != want {
		t.Errorf("DynLen = %d, want %d", got, want)
	}
}

func TestMustBuildPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustBuild did not panic on invalid kernel")
		}
	}()
	NewBuilder("empty").MustBuild(1)
}
