// Package isa defines the instruction representation consumed by the
// pipeline simulator: static instruction templates with register-renamed
// dependency distances, and the dynamic instruction streams produced by
// expanding a loop kernel.
//
// The representation is deliberately small: the paper's micro-benchmarks
// (Table 2) and case-study applications only need integer/floating-point
// arithmetic, loads/stores with controllable locality, branches with
// controllable predictability, and the or-nop priority-setting instruction.
package isa

import "fmt"

// Op is the execution class of an instruction. It determines which
// functional unit executes it and with which latency.
type Op uint8

// Instruction classes. The latencies associated with each class live in the
// pipeline configuration, not here.
const (
	// OpNop executes in one cycle on the FXU and writes no result.
	OpNop Op = iota
	// OpIntAdd is a short-latency integer ALU operation (add/sub/logical).
	OpIntAdd
	// OpIntMul is a long-latency integer multiply.
	OpIntMul
	// OpIntDiv is a very long latency integer divide.
	OpIntDiv
	// OpFPAdd is a pipelined floating-point add/sub.
	OpFPAdd
	// OpFPMul is a pipelined floating-point multiply (fused ops use this too).
	OpFPMul
	// OpLoad reads memory; its latency depends on where the line is found.
	OpLoad
	// OpStore writes memory. Stores never block completion (the simulator
	// models an infinite store buffer) but occupy an LSU issue slot.
	OpStore
	// OpBranch is a conditional branch resolved at execute.
	OpBranch
	// OpPrioSet is the POWER5 `or X,X,X` priority-setting no-op. It carries
	// the requested priority level in Instr.Prio and takes effect at
	// completion, subject to privilege checking by the pipeline.
	OpPrioSet

	opCount = iota
)

var opNames = [opCount]string{
	"nop", "intadd", "intmul", "intdiv", "fpadd", "fpmul",
	"load", "store", "branch", "prioset",
}

// String returns the mnemonic for the op class.
func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Unit is the functional-unit class an op issues to.
type Unit uint8

// Functional-unit classes of the POWER5-like core.
const (
	UnitFX Unit = iota // fixed-point units
	UnitLS             // load/store units
	UnitFP             // floating-point units
	UnitBR             // branch unit

	UnitCount = iota
)

var unitNames = [UnitCount]string{"FX", "LS", "FP", "BR"}

// String returns the unit mnemonic.
func (u Unit) String() string { return unitNames[u] }

// UnitOf maps an op class to the functional unit that executes it.
func UnitOf(op Op) Unit {
	switch op {
	case OpLoad, OpStore:
		return UnitLS
	case OpFPAdd, OpFPMul:
		return UnitFP
	case OpBranch:
		return UnitBR
	default:
		return UnitFX
	}
}

// NoDep marks an absent source dependency in a template.
const NoDep = -1

// BranchKind describes how a branch template resolves its outcome.
type BranchKind uint8

const (
	// BranchNone marks a non-branch instruction.
	BranchNone BranchKind = iota
	// BranchLoop closes the kernel loop body: taken on every iteration
	// except the last of a repetition. Highly predictable.
	BranchLoop
	// BranchPattern resolves from a per-kernel boolean pattern stream
	// (used by br_hit / br_miss: all-zeros vs pseudo-random).
	BranchPattern
)

// Template is one static instruction of a kernel loop body.
//
// Dependencies are expressed as distances in dynamic program order: DepA=3
// means "this instruction reads the result of the instruction 3 slots
// earlier in this thread's dynamic stream". Distances are produced by the
// Builder from virtual-register dataflow, so hand-writing them is rarely
// necessary. A distance of NoDep means no dependency on that operand.
type Template struct {
	Op     Op
	DepA   int        // distance to first source producer, or NoDep
	DepB   int        // distance to second source producer, or NoDep
	Stream int        // memory stream index for loads/stores, else -1
	Branch BranchKind // branch resolution kind for OpBranch
	Prio   int        // requested priority level for OpPrioSet
}

// Dyn is a dynamic instruction instance handed to the pipeline.
type Dyn struct {
	Seq    uint64 // per-thread dynamic sequence number (starts at 0)
	PC     uint64 // pseudo-PC, stable across iterations (body index << 2)
	Op     Op
	DepA   uint64 // producer seq; DepNone if none
	DepB   uint64
	Addr   uint64     // effective address for loads/stores
	Taken  bool       // branch outcome
	Branch BranchKind // branch kind (BranchNone if not a branch)
	Prio   int        // priority level for OpPrioSet
	// Marks: set on the last instruction of an iteration / repetition so the
	// measurement layer can account iteration and repetition boundaries.
	EndIter bool
	EndRep  bool
}

// DepNone is the sentinel producer sequence meaning "operand always ready".
const DepNone = ^uint64(0)
