package isa

import (
	"testing"
	"testing/quick"
)

func TestStreamSequenceAndMarks(t *testing.T) {
	k := buildAccum(t, 3) // body of 3, 3 iters -> 9 dyn per rep
	s := NewStream(k)
	for rep := 0; rep < 2; rep++ {
		for it := 0; it < 3; it++ {
			for j := 0; j < 3; j++ {
				d := s.Next()
				wantSeq := uint64(rep*9 + it*3 + j)
				if d.Seq != wantSeq {
					t.Fatalf("seq = %d, want %d", d.Seq, wantSeq)
				}
				wantEndIter := j == 2
				if d.EndIter != wantEndIter {
					t.Errorf("seq %d EndIter = %v, want %v", d.Seq, d.EndIter, wantEndIter)
				}
				wantEndRep := j == 2 && it == 2
				if d.EndRep != wantEndRep {
					t.Errorf("seq %d EndRep = %v, want %v", d.Seq, d.EndRep, wantEndRep)
				}
			}
		}
	}
	if s.EmittedReps() != 2 {
		t.Errorf("EmittedReps = %d, want 2", s.EmittedReps())
	}
}

func TestStreamLoopBranchOutcome(t *testing.T) {
	k := buildAccum(t, 3)
	s := NewStream(k)
	var outcomes []bool
	for i := 0; i < 9; i++ {
		d := s.Next()
		if d.Op == OpBranch {
			outcomes = append(outcomes, d.Taken)
		}
	}
	want := []bool{true, true, false}
	if len(outcomes) != len(want) {
		t.Fatalf("got %d branches, want %d", len(outcomes), len(want))
	}
	for i := range want {
		if outcomes[i] != want[i] {
			t.Errorf("branch %d taken = %v, want %v", i, outcomes[i], want[i])
		}
	}
}

func TestStreamDependencyResolution(t *testing.T) {
	k := buildAccum(t, 2)
	s := NewStream(k)
	// First instruction of the program: loop-carried deps point before the
	// start and must resolve to DepNone.
	d0 := s.Next() // mul, no deps anyway
	d1 := s.Next() // add: DepA dist 3 -> before start -> DepNone; DepB dist 1 -> seq 0
	if d0.DepA != DepNone {
		t.Errorf("d0.DepA = %d, want DepNone", d0.DepA)
	}
	if d1.DepA != DepNone {
		t.Errorf("d1.DepA = %d, want DepNone (before program start)", d1.DepA)
	}
	if d1.DepB != 0 {
		t.Errorf("d1.DepB = %d, want 0", d1.DepB)
	}
	s.Next()       // branch (seq 2)
	s.Next()       // mul (seq 3)
	d4 := s.Next() // add (seq 4): DepA dist 3 -> seq 1; DepB dist 1 -> seq 3
	if d4.DepA != 1 || d4.DepB != 3 {
		t.Errorf("d4 deps = (%d,%d), want (1,3)", d4.DepA, d4.DepB)
	}
}

func buildLoadKernel(t *testing.T, kind StreamKind, footprint uint64) *Kernel {
	t.Helper()
	b := NewBuilder("ld")
	v := b.Reg("v")
	st := b.Stream(StreamSpec{Kind: kind, Footprint: footprint, Stride: 256, Seed: 1})
	b.Load(v, st, regNone)
	b.Branch(BranchLoop, v)
	k, err := b.Build(64)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return k
}

func TestStreamChaseVisitsAllLines(t *testing.T) {
	const lines = 32
	k := buildLoadKernel(t, StreamChase, lines*CacheLineSize)
	s := NewStream(k)
	seen := map[uint64]bool{}
	for i := 0; i < lines*2; i++ {
		d := s.Next() // load
		if d.Op != OpLoad {
			t.Fatalf("expected load, got %v", d.Op)
		}
		if d.Addr%CacheLineSize != 0 {
			t.Fatalf("addr %#x not line aligned", d.Addr)
		}
		if d.Addr >= lines*CacheLineSize {
			t.Fatalf("addr %#x outside footprint", d.Addr)
		}
		seen[d.Addr] = true
		s.Next() // branch
	}
	if len(seen) != lines {
		t.Errorf("chase visited %d distinct lines in 2 laps, want %d", len(seen), lines)
	}
}

func TestStreamChaseCarriesDependency(t *testing.T) {
	k := buildLoadKernel(t, StreamChase, 64*CacheLineSize)
	s := NewStream(k)
	d0 := s.Next()
	if d0.DepA != DepNone {
		t.Errorf("first chase load DepA = %d, want DepNone", d0.DepA)
	}
	s.Next() // branch
	d2 := s.Next()
	if d2.DepA != d0.Seq {
		t.Errorf("second chase load DepA = %d, want %d (previous load)", d2.DepA, d0.Seq)
	}
}

func TestStreamStrideIndependentAndWraps(t *testing.T) {
	const lines = 8
	k := buildLoadKernel(t, StreamStride, lines*CacheLineSize)
	s := NewStream(k)
	var addrs []uint64
	for i := 0; i < lines+2; i++ {
		d := s.Next()
		if d.DepA != DepNone && d.Op == OpLoad {
			// stride loads must not carry chase dependencies
			t.Errorf("stride load %d has DepA = %d", i, d.DepA)
		}
		addrs = append(addrs, d.Addr)
		s.Next()
	}
	// stride 256 = 2 lines; with 8 lines we wrap after 4 accesses.
	if addrs[0] != addrs[4] {
		t.Errorf("stride stream did not wrap: addr[0]=%#x addr[4]=%#x", addrs[0], addrs[4])
	}
	if addrs[0] == addrs[1] {
		t.Error("stride stream did not advance")
	}
}

func TestStreamRandomStaysInFootprint(t *testing.T) {
	const fp = 16 * CacheLineSize
	k := buildLoadKernel(t, StreamRandom, fp)
	s := NewStream(k)
	for i := 0; i < 200; i++ {
		d := s.Next()
		if d.Op == OpLoad && d.Addr >= fp {
			t.Fatalf("random addr %#x outside footprint %#x", d.Addr, uint64(fp))
		}
	}
}

func TestStreamPatternBranch(t *testing.T) {
	b := NewBuilder("br")
	a := b.Reg("a")
	b.Op2(OpIntAdd, a, a, a)
	b.Branch(BranchPattern, a)
	b.Branch(BranchLoop, a)
	b.Pattern(func(n uint64) bool { return n%2 == 0 })
	k, err := b.Build(4)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	s := NewStream(k)
	var got []bool
	for i := 0; i < 12; i++ {
		d := s.Next()
		if d.Branch == BranchPattern {
			got = append(got, d.Taken)
		}
	}
	want := []bool{true, false, true, false}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("pattern branch %d = %v, want %v", i, got[i], want[i])
		}
	}
}

// Property: Sattolo cycle construction yields a single cycle covering all
// lines, for any size and seed.
func TestBuildCycleProperty(t *testing.T) {
	f := func(nRaw uint16, seed uint64) bool {
		n := uint64(nRaw%500) + 2
		next := buildCycle(n, seed)
		seen := make([]bool, n)
		cur := uint32(0)
		for i := uint64(0); i < n; i++ {
			if seen[cur] {
				return false // revisited before covering everything
			}
			seen[cur] = true
			cur = next[cur]
		}
		return cur == 0 // back at start after exactly n steps
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: dynamic deps always point strictly backwards.
func TestStreamDepsBackwardProperty(t *testing.T) {
	k := buildAccum(t, 5)
	s := NewStream(k)
	for i := 0; i < 500; i++ {
		d := s.Next()
		if d.DepA != DepNone && d.DepA >= d.Seq {
			t.Fatalf("seq %d DepA %d not strictly backwards", d.Seq, d.DepA)
		}
		if d.DepB != DepNone && d.DepB >= d.Seq {
			t.Fatalf("seq %d DepB %d not strictly backwards", d.Seq, d.DepB)
		}
	}
}

func TestRNGNonZero(t *testing.T) {
	r := newRNG(0) // zero seed must be remapped
	if r.next() == 0 {
		t.Error("rng produced 0 from remapped zero seed")
	}
}
