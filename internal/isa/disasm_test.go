package isa

import (
	"strings"
	"testing"
)

func TestDisassemble(t *testing.T) {
	b := NewBuilder("demo")
	v := b.Reg("v")
	s := b.Stream(StreamSpec{Kind: StreamChase, Footprint: 1 << 20, Prewarm: true})
	st := b.Stream(StreamSpec{Kind: StreamStride, Footprint: 4 << 10, Stride: 256})
	b.Load(v, s, Reg(-1))
	b.Op2(OpIntAdd, v, v, v)
	b.Store(st, v, Reg(-1))
	b.PrioSet(3)
	b.Branch(BranchLoop, v)
	k, err := b.Build(8)
	if err != nil {
		t.Fatal(err)
	}
	out := k.Disassemble()
	for _, want := range []string{
		"kernel demo", "5 instructions/iteration", "8 iterations",
		"load", "intadd", "store", "prioset", "branch", "loop",
		"prio=3", "s0", "s1",
		"chase 1MiB", "prewarm", "stride 4KiB", "stride 256",
		"<-1", // the add depends on the load one slot back
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Disassemble missing %q in:\n%s", want, out)
		}
	}
}

func TestDisassemblePatternBranch(t *testing.T) {
	b := NewBuilder("p")
	a := b.Reg("a")
	b.Op2(OpIntAdd, a, a, a)
	b.Branch(BranchPattern, a)
	b.Branch(BranchLoop, a)
	k := b.MustBuild(2)
	out := k.Disassemble()
	if !strings.Contains(out, "pattern") {
		t.Errorf("missing pattern branch annotation:\n%s", out)
	}
}

func TestInstructionMix(t *testing.T) {
	b := NewBuilder("mix")
	v := b.Reg("v")
	s := b.Stream(StreamSpec{Kind: StreamStride, Footprint: 4096, Stride: 128})
	b.Load(v, s, Reg(-1))
	b.Op2(OpFPAdd, v, v, v)
	b.Op2(OpIntAdd, v, v, v)
	b.Op2(OpIntMul, v, v, v)
	b.Branch(BranchLoop, v)
	k := b.MustBuild(2)
	mix := k.InstructionMix()
	if mix["LS"] != 1 || mix["FP"] != 1 || mix["FX"] != 2 || mix["BR"] != 1 {
		t.Errorf("mix = %v", mix)
	}
}

func TestFmtBytes(t *testing.T) {
	cases := map[uint64]string{
		64 << 20: "64MiB",
		16 << 10: "16KiB",
		100:      "100B",
		1536:     "1536B", // not a whole KiB
	}
	for in, want := range cases {
		if got := fmtBytes(in); got != want {
			t.Errorf("fmtBytes(%d) = %q, want %q", in, got, want)
		}
	}
}

func TestStreamKindName(t *testing.T) {
	if streamKindName(StreamKind(9)) != "kind(9)" {
		t.Error("unknown kind name")
	}
}
