package isa

import (
	"fmt"
	"strings"
)

// Disassemble renders the kernel's loop body as readable text, one line
// per instruction with dependency distances and stream annotations. It is
// a debugging and documentation aid:
//
//	0: load    s0 [chase 1.2MiB]
//	1: intadd  <-1 <-inv
//	2: store   s1 <-1
//	...
func (k *Kernel) Disassemble() string {
	var b strings.Builder
	fmt.Fprintf(&b, "kernel %s: %d instructions/iteration, %d iterations/repetition\n",
		k.Name, len(k.Body), k.Iters)
	for i, t := range k.Body {
		fmt.Fprintf(&b, "%3d: %-8s", i, t.Op)
		dep := func(d int) string {
			if d == NoDep {
				return "<-inv"
			}
			return fmt.Sprintf("<-%d", d)
		}
		switch t.Op {
		case OpLoad, OpStore:
			fmt.Fprintf(&b, " s%d", t.Stream)
		case OpBranch:
			switch t.Branch {
			case BranchLoop:
				b.WriteString(" loop")
			case BranchPattern:
				b.WriteString(" pattern")
			}
		case OpPrioSet:
			fmt.Fprintf(&b, " prio=%d", t.Prio)
		}
		if t.DepA != NoDep || t.DepB != NoDep {
			fmt.Fprintf(&b, "  [%s %s]", dep(t.DepA), dep(t.DepB))
		}
		b.WriteString("\n")
	}
	for i, s := range k.Streams {
		fmt.Fprintf(&b, "stream s%d: %s %s", i, streamKindName(s.Kind), fmtBytes(s.Footprint))
		if s.Kind == StreamStride {
			fmt.Fprintf(&b, " stride %d", s.Stride)
		}
		if s.Prewarm {
			b.WriteString(" prewarm")
		}
		b.WriteString("\n")
	}
	return b.String()
}

func streamKindName(k StreamKind) string {
	switch k {
	case StreamChase:
		return "chase"
	case StreamStride:
		return "stride"
	case StreamRandom:
		return "random"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// fmtBytes renders a byte count in a compact human unit.
func fmtBytes(n uint64) string {
	switch {
	case n >= 1<<20 && n%(1<<20) == 0:
		return fmt.Sprintf("%dMiB", n>>20)
	case n >= 1<<10 && n%(1<<10) == 0:
		return fmt.Sprintf("%dKiB", n>>10)
	default:
		return fmt.Sprintf("%dB", n)
	}
}

// InstructionMix counts the kernel body by unit class, a quick workload
// characterization used by documentation and tests.
func (k *Kernel) InstructionMix() map[string]int {
	mix := map[string]int{}
	for _, t := range k.Body {
		mix[UnitOf(t.Op).String()]++
	}
	return mix
}
