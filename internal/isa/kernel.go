package isa

import (
	"errors"
	"fmt"
)

// Kernel is a loop nest: a body of instruction templates executed Iters
// times per repetition. Kernels are the unit the FAME methodology repeats.
//
// The zero value is not useful; construct kernels with a Builder.
type Kernel struct {
	Name  string
	Body  []Template
	Iters int // micro-iterations per repetition

	// Streams configures one address generator per memory stream index
	// referenced by the body.
	Streams []StreamSpec

	// Pattern supplies outcomes for BranchPattern branches. Nil means
	// always-taken.
	Pattern PatternFunc
}

// PatternFunc returns the outcome of the n-th dynamic pattern branch.
type PatternFunc func(n uint64) bool

// StreamKind selects the address-generation strategy of a memory stream.
type StreamKind uint8

const (
	// StreamChase walks a pseudo-random permutation of the footprint,
	// touching one address per cache line. Each next address is treated as
	// data-dependent on the previous load of the stream (pointer chasing),
	// which reproduces the MLP≈1 serialization measured in the paper for
	// the ldint_*/ldfp_* micro-benchmarks (see DESIGN.md).
	StreamChase StreamKind = iota
	// StreamStride walks the footprint with a fixed stride, wrapping.
	// Successive accesses are independent (no added dependency).
	StreamStride
	// StreamRandom produces uniformly random line-aligned addresses inside
	// the footprint, independent accesses (mcf-style).
	StreamRandom
)

// StreamSpec describes one memory stream of a kernel.
type StreamSpec struct {
	Kind      StreamKind
	Footprint uint64 // bytes; rounded up to a whole number of lines
	Stride    uint64 // bytes, for StreamStride
	Base      uint64 // virtual base address (streams should not overlap)
	Seed      uint64 // RNG seed for chase permutation / random
	// Prewarm asks the runner to pre-install the footprint into the shared
	// caches before measuring, standing in for FAME steady state.
	Prewarm bool
}

// Validate checks structural invariants of the kernel.
func (k *Kernel) Validate() error {
	if len(k.Body) == 0 {
		return errors.New("isa: kernel has empty body")
	}
	if k.Iters <= 0 {
		return fmt.Errorf("isa: kernel %q: Iters must be positive, got %d", k.Name, k.Iters)
	}
	for i, t := range k.Body {
		if t.DepA != NoDep && t.DepA <= 0 {
			return fmt.Errorf("isa: kernel %q body[%d]: DepA must be positive or NoDep", k.Name, i)
		}
		if t.DepB != NoDep && t.DepB <= 0 {
			return fmt.Errorf("isa: kernel %q body[%d]: DepB must be positive or NoDep", k.Name, i)
		}
		isMem := t.Op == OpLoad || t.Op == OpStore
		if isMem {
			if t.Stream < 0 || t.Stream >= len(k.Streams) {
				return fmt.Errorf("isa: kernel %q body[%d]: stream %d out of range (%d streams)",
					k.Name, i, t.Stream, len(k.Streams))
			}
		}
		if t.Op == OpBranch && t.Branch == BranchNone {
			return fmt.Errorf("isa: kernel %q body[%d]: branch with BranchNone kind", k.Name, i)
		}
		if t.Op != OpBranch && t.Branch != BranchNone {
			return fmt.Errorf("isa: kernel %q body[%d]: non-branch with branch kind", k.Name, i)
		}
		if t.Op == OpPrioSet && (t.Prio < 0 || t.Prio > 7) {
			return fmt.Errorf("isa: kernel %q body[%d]: priority %d out of range", k.Name, i, t.Prio)
		}
	}
	for i, s := range k.Streams {
		if s.Footprint == 0 {
			return fmt.Errorf("isa: kernel %q stream %d: zero footprint", k.Name, i)
		}
		if s.Kind == StreamStride && s.Stride == 0 {
			return fmt.Errorf("isa: kernel %q stream %d: stride stream with zero stride", k.Name, i)
		}
	}
	return nil
}

// DynLen returns the number of dynamic instructions in one repetition.
func (k *Kernel) DynLen() uint64 { return uint64(len(k.Body)) * uint64(k.Iters) }

// ---------------------------------------------------------------------------
// Builder: virtual-register loop bodies -> dependency-distance templates.
// ---------------------------------------------------------------------------

// Reg is a virtual register handle produced by Builder.Reg.
type Reg int

// regNone marks an unused operand.
const regNone Reg = -1

type builderInstr struct {
	op      Op
	dst     Reg
	srcA    Reg
	srcB    Reg
	stream  int
	branch  BranchKind
	prio    int
	carried bool // dst is live across iterations even if rewritten (unused for now)
}

// Builder assembles a kernel loop body using named virtual registers and
// resolves register dataflow into the dependency distances the pipeline
// consumes. Loop-carried dependencies are resolved in steady state: a read
// of a register whose last write in the body occurs *after* the reading
// instruction refers to the previous iteration's write.
type Builder struct {
	name    string
	regs    []string
	body    []builderInstr
	streams []StreamSpec
	pattern PatternFunc
	err     error
}

// NewBuilder returns a Builder for a kernel with the given name.
func NewBuilder(name string) *Builder {
	return &Builder{name: name}
}

// Reg declares a virtual register. Names are for diagnostics only.
func (b *Builder) Reg(name string) Reg {
	b.regs = append(b.regs, name)
	return Reg(len(b.regs) - 1)
}

// Stream declares a memory stream and returns its index.
func (b *Builder) Stream(s StreamSpec) int {
	b.streams = append(b.streams, s)
	return len(b.streams) - 1
}

// Pattern sets the outcome function for BranchPattern branches.
func (b *Builder) Pattern(f PatternFunc) { b.pattern = f }

func (b *Builder) checkReg(r Reg, what string) {
	if b.err != nil {
		return
	}
	if r != regNone && (int(r) < 0 || int(r) >= len(b.regs)) {
		b.err = fmt.Errorf("isa: builder %q: %s register %d undeclared", b.name, what, r)
	}
}

func (b *Builder) emit(in builderInstr) {
	b.checkReg(in.dst, "destination")
	b.checkReg(in.srcA, "source A")
	b.checkReg(in.srcB, "source B")
	if b.err == nil {
		b.body = append(b.body, in)
	}
}

// Op1 emits a unary operation dst = op(src).
func (b *Builder) Op1(op Op, dst, src Reg) {
	b.emit(builderInstr{op: op, dst: dst, srcA: src, srcB: regNone, stream: -1})
}

// Op2 emits a binary operation dst = op(srcA, srcB).
func (b *Builder) Op2(op Op, dst, srcA, srcB Reg) {
	b.emit(builderInstr{op: op, dst: dst, srcA: srcA, srcB: srcB, stream: -1})
}

// Load emits dst = mem[stream.next] (address from the given stream; addr
// register models the address computation dependency).
func (b *Builder) Load(dst Reg, stream int, addr Reg) {
	b.emit(builderInstr{op: OpLoad, dst: dst, srcA: addr, srcB: regNone, stream: stream})
}

// Store emits mem[stream.next] = val.
func (b *Builder) Store(stream int, val, addr Reg) {
	b.emit(builderInstr{op: OpStore, dst: regNone, srcA: val, srcB: addr, stream: stream})
}

// Branch emits a conditional branch of the given kind, reading cond.
func (b *Builder) Branch(kind BranchKind, cond Reg) {
	b.emit(builderInstr{op: OpBranch, dst: regNone, srcA: cond, srcB: regNone, stream: -1, branch: kind})
}

// PrioSet emits an or-nop priority change request.
func (b *Builder) PrioSet(level int) {
	b.emit(builderInstr{op: OpPrioSet, dst: regNone, srcA: regNone, srcB: regNone, stream: -1, prio: level})
}

// Nop emits a one-cycle no-op.
func (b *Builder) Nop() {
	b.emit(builderInstr{op: OpNop, dst: regNone, srcA: regNone, srcB: regNone, stream: -1})
}

// Build resolves dataflow and returns the kernel with the given iteration
// count per repetition.
func (b *Builder) Build(iters int) (*Kernel, error) {
	if b.err != nil {
		return nil, b.err
	}
	if len(b.body) == 0 {
		return nil, fmt.Errorf("isa: builder %q: empty body", b.name)
	}
	n := len(b.body)
	// lastWrite[r] = body index of the last instruction writing r, or -1.
	lastWrite := make([]int, len(b.regs))
	for i := range lastWrite {
		lastWrite[i] = -1
	}
	for i, in := range b.body {
		if in.dst != regNone {
			lastWrite[in.dst] = i
		}
	}
	// prevWriteBefore returns the distance (in dynamic slots) from reader at
	// body index i to the most recent producer of r, assuming steady state
	// (the body repeats). Registers never written in the body are
	// loop-invariant: no dependency.
	dist := func(i int, r Reg) int {
		if r == regNone {
			return NoDep
		}
		// Find nearest write before i in this iteration.
		for j := i - 1; j >= 0; j-- {
			if b.body[j].dst == r {
				return i - j
			}
		}
		// Otherwise the last write in the previous iteration.
		if lw := lastWrite[r]; lw >= 0 {
			return i + (n - lw)
		}
		return NoDep
	}
	body := make([]Template, n)
	for i, in := range b.body {
		body[i] = Template{
			Op:     in.op,
			DepA:   dist(i, in.srcA),
			DepB:   dist(i, in.srcB),
			Stream: in.stream,
			Branch: in.branch,
			Prio:   in.prio,
		}
	}
	k := &Kernel{
		Name:    b.name,
		Body:    body,
		Iters:   iters,
		Streams: b.streams,
		Pattern: b.pattern,
	}
	if err := k.Validate(); err != nil {
		return nil, err
	}
	return k, nil
}

// MustBuild is Build that panics on error; for use in package-level kernel
// catalogues where the bodies are static and tested.
func (b *Builder) MustBuild(iters int) *Kernel {
	k, err := b.Build(iters)
	if err != nil {
		panic(err)
	}
	return k
}
