package isa

// CacheLineSize is the line size assumed by address generators. It matches
// the POWER5 L2/L3 line size of 128 bytes.
const CacheLineSize = 128

// rng is a small xorshift64* generator: deterministic, allocation-free.
type rng uint64

func newRNG(seed uint64) rng {
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	return rng(seed)
}

func (r *rng) next() uint64 {
	x := uint64(*r)
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	*r = rng(x)
	return x * 0x2545f4914f6cdd1d
}

// addrGen yields successive effective addresses for one memory stream.
type addrGen struct {
	spec  StreamSpec
	lines uint64 // footprint in lines
	pos   uint64 // current line index (chase/stride)
	r     rng
	perm  []uint32 // chase permutation: perm[i] = next line after i
}

func newAddrGen(spec StreamSpec) *addrGen {
	lines := (spec.Footprint + CacheLineSize - 1) / CacheLineSize
	if lines == 0 {
		lines = 1
	}
	g := &addrGen{spec: spec, lines: lines, r: newRNG(spec.Seed)}
	if spec.Kind == StreamChase {
		g.perm = buildCycle(lines, spec.Seed)
	}
	return g
}

// buildCycle builds a single-cycle permutation over n lines using a
// Sattolo shuffle, so a chase visits every line before repeating.
// Footprints are capped at 1<<32 lines (512 GiB), far beyond any workload.
func buildCycle(n uint64, seed uint64) []uint32 {
	r := newRNG(seed)
	p := make([]uint32, n)
	for i := range p {
		p[i] = uint32(i)
	}
	// Sattolo: exactly one cycle.
	for i := n - 1; i > 0; i-- {
		j := r.next() % i
		p[i], p[j] = p[j], p[i]
	}
	// p is now a permutation listing; convert "visit order" into successor
	// links: next[p[i]] = p[i+1].
	next := make([]uint32, n)
	for i := uint64(0); i+1 < n; i++ {
		next[p[i]] = p[i+1]
	}
	next[p[n-1]] = p[0]
	return next
}

// next returns the next effective address of the stream.
func (g *addrGen) next() uint64 {
	var line uint64
	switch g.spec.Kind {
	case StreamChase:
		line = g.pos
		g.pos = uint64(g.perm[g.pos])
	case StreamStride:
		line = g.pos
		g.pos = (g.pos + (g.spec.Stride+CacheLineSize-1)/CacheLineSize) % g.lines
	case StreamRandom:
		line = g.r.next() % g.lines
	}
	return g.spec.Base + line*CacheLineSize
}

// chained reports whether consecutive accesses of this stream carry a data
// dependency (pointer chasing).
func (g *addrGen) chained() bool { return g.spec.Kind == StreamChase }

// Stream expands a kernel into its dynamic instruction sequence. It is the
// per-thread program the pipeline fetches from; the kernel restarts
// automatically after each repetition (FAME-style continuous re-execution).
type Stream struct {
	k    *Kernel
	gens []*addrGen
	base uint64 // address-space offset added to every access
	seq  uint64 // next dynamic sequence number
	iter int    // current iteration within the repetition
	idx  int    // current index within the body
	npat uint64 // pattern-branch counter
	reps uint64 // completed repetitions emitted
	// lastLoad[s] = seq of the most recent load of stream s (for chasing).
	lastLoad []uint64
}

// NewStream returns a dynamic instruction stream for k. The kernel must be
// valid (see Kernel.Validate).
func NewStream(k *Kernel) *Stream {
	return NewStreamAt(k, 0)
}

// NewStreamAt returns a stream whose memory addresses are all offset by
// base. Co-scheduled workloads use disjoint bases to model separate address
// spaces.
func NewStreamAt(k *Kernel, base uint64) *Stream {
	gens := make([]*addrGen, len(k.Streams))
	for i, s := range k.Streams {
		gens[i] = newAddrGen(s)
	}
	ll := make([]uint64, len(k.Streams))
	for i := range ll {
		ll[i] = DepNone
	}
	return &Stream{k: k, gens: gens, lastLoad: ll, base: base}
}

// Kernel returns the kernel this stream expands.
func (s *Stream) Kernel() *Kernel { return s.k }

// EmittedReps returns the number of complete repetitions emitted so far.
func (s *Stream) EmittedReps() uint64 { return s.reps }

// Next produces the next dynamic instruction. The stream is infinite: the
// kernel repeats forever, with EndIter/EndRep marks on boundaries.
func (s *Stream) Next() Dyn {
	t := &s.k.Body[s.idx]
	d := Dyn{
		Seq:    s.seq,
		PC:     uint64(s.idx) << 2,
		Op:     t.Op,
		DepA:   DepNone,
		DepB:   DepNone,
		Branch: t.Branch,
		Prio:   t.Prio,
	}
	if t.DepA != NoDep && uint64(t.DepA) <= s.seq {
		d.DepA = s.seq - uint64(t.DepA)
	}
	if t.DepB != NoDep && uint64(t.DepB) <= s.seq {
		d.DepB = s.seq - uint64(t.DepB)
	}
	switch t.Op {
	case OpLoad, OpStore:
		g := s.gens[t.Stream]
		d.Addr = g.next() + s.base
		if g.chained() {
			// Pointer chase: this access depends on the previous load of
			// the same stream (fold into DepA if free, else DepB).
			if prev := s.lastLoad[t.Stream]; prev != DepNone {
				if d.DepA == DepNone {
					d.DepA = prev
				} else if d.DepB == DepNone || prev > d.DepB {
					d.DepB = prev
				}
			}
			if t.Op == OpLoad {
				s.lastLoad[t.Stream] = s.seq
			}
		}
	case OpBranch:
		switch t.Branch {
		case BranchLoop:
			d.Taken = s.iter+1 < s.k.Iters
		case BranchPattern:
			if s.k.Pattern != nil {
				d.Taken = s.k.Pattern(s.npat)
			} else {
				d.Taken = true
			}
			s.npat++
		}
	}
	// Advance cursor.
	s.seq++
	s.idx++
	if s.idx == len(s.k.Body) {
		s.idx = 0
		s.iter++
		d.EndIter = true
		if s.iter == s.k.Iters {
			s.iter = 0
			d.EndRep = true
			s.reps++
		}
	}
	return d
}
