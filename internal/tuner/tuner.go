// Package tuner is an extension beyond the paper: an automatic priority
// tuner that hill-climbs the priority difference of a co-scheduled pair to
// maximize a measured objective (total IPC by default). The paper's
// conclusion — "only priorities up to +/-2 should normally be used" —
// suggests exactly this kind of small, guided search; learning-based
// resource distribution is its reference [6].
package tuner

import (
	"fmt"

	"power5prio/internal/experiments"
)

// Objective measures the quantity to maximize at a priority difference.
type Objective func(diff int) float64

// Result describes a tuning run.
type Result struct {
	BestDiff  int
	BestValue float64
	Evals     int
	// Trace records the differences evaluated, in order.
	Trace []int
}

// HillClimb maximizes eval over the integer range [lo, hi] starting at
// start, moving one step at a time toward improvement. Evaluations are
// memoized; the search stops at a local maximum (the paper's measured
// curves are unimodal in the difference).
func HillClimb(eval Objective, start, lo, hi int) (Result, error) {
	if lo > hi {
		return Result{}, fmt.Errorf("tuner: empty range [%d,%d]", lo, hi)
	}
	if start < lo || start > hi {
		return Result{}, fmt.Errorf("tuner: start %d outside [%d,%d]", start, lo, hi)
	}
	cache := map[int]float64{}
	var res Result
	score := func(d int) float64 {
		if v, ok := cache[d]; ok {
			return v
		}
		v := eval(d)
		cache[d] = v
		res.Evals++
		res.Trace = append(res.Trace, d)
		return v
	}
	cur := start
	curV := score(cur)
	for {
		bestN, bestV := cur, curV
		for _, n := range []int{cur - 1, cur + 1} {
			if n < lo || n > hi {
				continue
			}
			if v := score(n); v > bestV {
				bestN, bestV = n, v
			}
		}
		if bestN == cur {
			break
		}
		cur, curV = bestN, bestV
	}
	res.BestDiff = cur
	res.BestValue = curV
	return res, nil
}

// TunePair hill-climbs the total IPC of a micro-benchmark pair over
// priority differences in [-5, +5], starting from the hardware default of
// equal priorities.
func TunePair(h experiments.Harness, nameP, nameS string) (Result, error) {
	eval := func(diff int) float64 {
		pp, ps := experiments.DiffPair(diff)
		return h.RunPairLevels(nameP, nameS, pp, ps).TotalIPC
	}
	return HillClimb(eval, 0, -5, 5)
}
