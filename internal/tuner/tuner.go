// Package tuner is an extension beyond the paper: an automatic priority
// tuner that hill-climbs the priority difference of a co-scheduled pair to
// maximize a measured objective (total IPC by default). The paper's
// conclusion — "only priorities up to +/-2 should normally be used" —
// suggests exactly this kind of small, guided search; learning-based
// resource distribution is its reference [6].
//
// Objectives are batch-shaped: the climber hands every unevaluated
// neighbour of the current point to one Objective call, so measurement
// backends route the candidates through the batch engine — they simulate
// concurrently and re-evaluations are engine cache hits.
package tuner

import (
	"context"
	"fmt"

	"power5prio/internal/experiments"
)

// Objective measures the quantity to maximize at each of the given
// priority differences, returning one value per difference in order.
type Objective func(diffs []int) ([]float64, error)

// Result describes a tuning run.
type Result struct {
	BestDiff  int
	BestValue float64
	Evals     int
	// Trace records the differences evaluated, in order.
	Trace []int
}

// HillClimb maximizes eval over the integer range [lo, hi] starting at
// start, moving one step at a time toward improvement. Each step's
// unevaluated candidates go to eval as one batch; evaluations are
// memoized, and the search stops at a local maximum (the paper's
// measured curves are unimodal in the difference).
func HillClimb(eval Objective, start, lo, hi int) (Result, error) {
	if lo > hi {
		return Result{}, fmt.Errorf("tuner: empty range [%d,%d]", lo, hi)
	}
	if start < lo || start > hi {
		return Result{}, fmt.Errorf("tuner: start %d outside [%d,%d]", start, lo, hi)
	}
	cache := map[int]float64{}
	var res Result
	// score evaluates every not-yet-measured diff in one objective call.
	score := func(diffs ...int) error {
		var missing []int
		for _, d := range diffs {
			if _, ok := cache[d]; !ok {
				missing = append(missing, d)
			}
		}
		if len(missing) == 0 {
			return nil
		}
		vals, err := eval(missing)
		if err != nil {
			return err
		}
		if len(vals) != len(missing) {
			return fmt.Errorf("tuner: objective returned %d values for %d differences", len(vals), len(missing))
		}
		for i, d := range missing {
			cache[d] = vals[i]
			res.Evals++
			res.Trace = append(res.Trace, d)
		}
		return nil
	}
	if err := score(start); err != nil {
		return Result{}, err
	}
	cur, curV := start, cache[start]
	for {
		var neighbors []int
		for _, n := range []int{cur - 1, cur + 1} {
			if n >= lo && n <= hi {
				neighbors = append(neighbors, n)
			}
		}
		if err := score(neighbors...); err != nil {
			return Result{}, err
		}
		bestN, bestV := cur, curV
		for _, n := range neighbors {
			if v := cache[n]; v > bestV {
				bestN, bestV = n, v
			}
		}
		if bestN == cur {
			break
		}
		cur, curV = bestN, bestV
	}
	res.BestDiff = cur
	res.BestValue = curV
	return res, nil
}

// TunePair hill-climbs the total IPC of a workload pair over priority
// differences in [-5, +5], starting from the hardware default of equal
// priorities. Candidates are submitted to the harness engine as one
// batch per step, so both neighbours of a point simulate concurrently
// and revisited settings are cache hits. The names may come from
// different workload families.
func TunePair(ctx context.Context, h experiments.Harness, nameP, nameS string) (Result, error) {
	eval := func(diffs []int) ([]float64, error) {
		results, err := h.MeasureDiffs(ctx, nameP, nameS, diffs)
		if err != nil {
			return nil, err
		}
		out := make([]float64, len(results))
		for i, r := range results {
			out[i] = r.TotalIPC
		}
		return out, nil
	}
	return HillClimb(eval, 0, -5, 5)
}
